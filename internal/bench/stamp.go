package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"yosompc/internal/telemetry"
)

// Trace and Metrics instrument every measured core run, mirroring the
// Workers knob: when set, the protocol executions behind the experiments
// record spans and worker-pool metrics into them. The byte reports the
// experiments are about are unaffected — telemetry observes the runs, it
// never participates in them. nil (the default) disables collection at
// zero cost.
var (
	Trace   *telemetry.Tracer
	Metrics *telemetry.Registry
)

// Stamped is an experiment result bundled with the telemetry of the runs
// that produced it, so a saved BENCH_*.json is self-describing: the
// numbers plus the phase spans and engine metrics behind them.
type Stamped struct {
	// Experiment is the harness name of the series (e.g. "online").
	Experiment string `json:"experiment"`
	// Result is the experiment's own row/point structure, verbatim.
	Result any `json:"result"`
	// Metrics is the registry snapshot at stamping time, if enabled.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
	// Spans are the recorded protocol spans, if tracing was enabled.
	Spans []telemetry.SpanRecord `json:"spans,omitempty"`
}

// Stamp bundles result with whatever telemetry the package-level Trace
// and Metrics collected so far.
func Stamp(experiment string, result any) Stamped {
	s := Stamped{Experiment: experiment, Result: result}
	if Metrics != nil {
		snap := Metrics.Snapshot()
		s.Metrics = &snap
	}
	if Trace != nil {
		s.Spans = Trace.Spans()
	}
	return s
}

// WriteStamped writes the stamped result as indented JSON to
// dir/BENCH_<experiment>.json and returns the path.
func WriteStamped(dir, experiment string, result any) (string, error) {
	data, err := json.MarshalIndent(Stamp(experiment, result), "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshaling %s stamp: %w", experiment, err)
	}
	path := filepath.Join(dir, "BENCH_"+experiment+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: writing %s stamp: %w", experiment, err)
	}
	return path, nil
}
