package bench

import (
	"strings"
	"testing"
)

func TestOnlineVsNShape(t *testing.T) {
	pts, err := OnlineVsN([]int{8, 16, 32}, 16, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Packed μ-stream per gate flat (k ∝ n); baseline grows ≥ 3×/4×-n.
	for i := 1; i < len(pts); i++ {
		if pts[i].CoreMuPerGate > 1.5*pts[0].CoreMuPerGate {
			t.Errorf("μ per gate grew: %+v", pts)
		}
		if pts[i].BaselineOnlinePerGate < 1.7*pts[i-1].BaselineOnlinePerGate {
			t.Errorf("baseline per gate did not grow ~linearly: %+v", pts)
		}
	}
	if s := FormatOnlineVsN(pts); !strings.Contains(s, "baseline") {
		t.Error("format output missing header")
	}
}

func TestImprovementFactorsShape(t *testing.T) {
	rows, err := ImprovementFactors(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("rows = %d, want 17 feasible Table-1 rows", len(rows))
	}
	for _, r := range rows {
		// The byte factor must reach at least ~the paper's k (bytes favour
		// us further at most rows because baseline elements are
		// Paillier-sized while μ-shares are field-sized; per-role KFF
		// delivery eats part of that at finite widths).
		if r.ByteFactor < 0.8*float64(r.PaperFactor) {
			t.Errorf("C=%d f=%.2f: byte factor %.0f below paper k=%d",
				r.C, r.F, r.ByteFactor, r.PaperFactor)
		}
		// The element factor is 2k·(c'/c) = 2k(1−2ε) ∈ [0.5k, 2.2k]
		// across Table 1's ε range (the paper rounds this to "factor k").
		if r.ElementFactor < 0.5*float64(r.PaperFactor) || r.ElementFactor > 2.2*float64(r.PaperFactor)+8 {
			t.Errorf("C=%d f=%.2f: element factor %.0f vs paper k=%d",
				r.C, r.F, r.ElementFactor, r.PaperFactor)
		}
	}
	// Headline claims: ≥28× at (1000, 0.05); >1000× at (20000, 0.20).
	for _, r := range rows {
		if r.C == 1000 && r.F == 0.05 && r.ByteFactor < 28 {
			t.Errorf("C=1000 f=0.05 factor %.0f < 28", r.ByteFactor)
		}
		if r.C == 20000 && r.F == 0.20 && r.ByteFactor < 1000 {
			t.Errorf("C=20000 f=0.20 factor %.0f < 1000", r.ByteFactor)
		}
	}
	if s := FormatImprovement(rows); !strings.Contains(s, "paper-k") {
		t.Error("format output missing header")
	}
}

func TestOfflineVsGatesLinear(t *testing.T) {
	pts, err := OfflineVsGates(8, 2, 2, []int{8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	// Offline per gate should be roughly constant (O(n|C|) total).
	for i := 1; i < len(pts); i++ {
		ratio := pts[i].PerGate / pts[0].PerGate
		if ratio > 1.6 || ratio < 0.4 {
			t.Errorf("offline per gate not ~constant in |C|: %+v", pts)
		}
	}
	if s := FormatOfflineScaling(pts); !strings.Contains(s, "B/gate") {
		t.Error("format output missing header")
	}
}

func TestOfflineVsNLinear(t *testing.T) {
	pts, err := OfflineVsN([]int{8, 16, 32}, 16, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Offline per gate grows with n (O(n) per gate): ≥1.5× per doubling.
	for i := 1; i < len(pts); i++ {
		if pts[i].PerGate < 1.5*pts[i-1].PerGate {
			t.Errorf("offline per gate not growing with n: %+v", pts)
		}
	}
}

func TestFailStopExperiment(t *testing.T) {
	res, err := FailStop(16, 0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("half-packing run with nε dropped roles did not complete")
	}
	if res.KHalf != res.KFull/2 {
		t.Errorf("k-half = %d, want %d", res.KHalf, res.KFull/2)
	}
	if res.Dropped != 4 {
		t.Errorf("dropped = %d, want 4", res.Dropped)
	}
	// Halving k doubles per-gate μ cost (±batch rounding).
	if res.Overhead < 1.5 || res.Overhead > 3 {
		t.Errorf("overhead = %v, want ≈2", res.Overhead)
	}
}

func TestFailStopTooSmall(t *testing.T) {
	if _, err := FailStop(4, 0.25, 4); err == nil {
		t.Error("accepted n·eps too small to halve")
	}
}

func TestPackingAblation(t *testing.T) {
	rows, err := PackingAblation(12, 2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Unpacked online μ cost must be ≈k× the packed cost (same circuit,
	// k=1 means one share per gate instead of per k gates).
	if rows[1].RelativeToFull < 3 {
		t.Errorf("unpacked not ~k× more expensive: %+v", rows)
	}
}

func TestTotalCost(t *testing.T) {
	pts, err := TotalCost([]int{8, 16}, 16, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.CoreTotal <= 0 || p.BaselineTotal <= 0 {
			t.Fatalf("non-positive totals: %+v", p)
		}
		// The packed protocol's total exceeds the baseline's — the win is
		// *where* the bytes are spent, not how many (paper's conclusion).
		if p.Ratio < 1 {
			t.Errorf("expected total-cost ratio ≥ 1, got %+v", p)
		}
	}
	if s := FormatTotalCost(pts); !strings.Contains(s, "ratio") {
		t.Error("format output missing header")
	}
}

func TestRobustComparison(t *testing.T) {
	row, err := RobustComparison(14, 3, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if row.ProofBytesSaved != 14*192 {
		t.Errorf("proof savings = %d, want %d", row.ProofBytesSaved, 14*192)
	}
	if row.RobustOnline >= row.ProofOnline {
		t.Errorf("robust online %d not below proof online %d", row.RobustOnline, row.ProofOnline)
	}
	// Packing budget shrinks: (n−3t−1)/2 < (n−t−1)/2.
	if row.MaxKRobust >= row.MaxKProof {
		t.Errorf("robust packing budget %d not below proof budget %d", row.MaxKRobust, row.MaxKProof)
	}
}

func TestKFFAblation(t *testing.T) {
	rows, err := KFFAblation(16, 3, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The naive mode's online phase carries the re-encryption bytes KFF
	// moves offline — several times more expensive online.
	if rows[1].RelativeToFull < 1.5 {
		t.Errorf("naive online only %.2f× of KFF online: %+v", rows[1].RelativeToFull, rows)
	}
	if rows[1].OfflineBytes >= rows[0].OfflineBytes {
		t.Errorf("naive offline not lighter: %+v", rows)
	}
}

func TestOfflineSpeedupEquivalence(t *testing.T) {
	// Small instance of E11. The assertion of record is ReportsEqual: the
	// byte report must be identical for every worker count — wall clock is
	// the only thing the pool may change (and on a single-CPU host it may
	// not even change that, so no speedup floor is asserted here).
	res, err := OfflineSpeedup(12, 2, 3, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReportsEqual {
		t.Errorf("serial and parallel offline reports diverged:\nserial: %+v\nparallel: %+v",
			res.SerialReport, res.ParallelReport)
	}
	if res.Muls != 32 || res.Workers != 4 {
		t.Errorf("result shape: %+v", res)
	}
	if res.Serial <= 0 || res.Parallel <= 0 || res.Speedup <= 0 {
		t.Errorf("non-positive timings: %+v", res)
	}
	if s := FormatOfflineSpeedup(res); !strings.Contains(s, "serial") || !strings.Contains(s, "reports identical") {
		t.Errorf("format output missing fields:\n%s", s)
	}
}

func TestOfflineSpeedupDefaultWorkers(t *testing.T) {
	// workers ≤ 0 resolves to one per CPU — never 0, never negative.
	res, err := OfflineSpeedup(8, 1, 2, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers < 1 {
		t.Errorf("workers resolved to %d", res.Workers)
	}
	if !res.ReportsEqual {
		t.Error("reports diverged at default worker count")
	}
}

func TestAmortizationCurve(t *testing.T) {
	pts, err := AmortizationCurve(12, 2, 3, []int{6, 24, 96})
	if err != nil {
		t.Fatal(err)
	}
	// Per-gate online cost strictly decreases toward the μ floor as the
	// fixed costs amortize over more gates.
	for i := 1; i < len(pts); i++ {
		if pts[i].OnlinePerGate >= pts[i-1].OnlinePerGate {
			t.Errorf("no amortization: %+v", pts)
		}
	}
	// The μ floor is flat.
	for _, p := range pts {
		if p.MuPerGate != pts[0].MuPerGate {
			t.Errorf("μ floor not flat: %+v", pts)
		}
	}
}

func TestSharingHotpath(t *testing.T) {
	rows, err := SharingHotpath([]int{64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.N != 64 || r.K != 16 || r.D != 32 {
		t.Errorf("geometry = (n=%d k=%d d=%d), want (64, 16, 32)", r.N, r.K, r.D)
	}
	if !r.Identical {
		t.Error("domain and naive reconstruction diverged")
	}
	if r.ShareNaive <= 0 || r.ShareDomain <= 0 {
		t.Errorf("non-positive timings: %+v", r)
	}
	if _, err := SharingHotpath([]int{2}, 1); err == nil {
		t.Error("n=2 (k=0) accepted")
	}
}
