package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"yosompc/internal/telemetry"
)

// A stamped experiment result must carry the telemetry of the measured
// runs that produced it, and round-trip through JSON.
func TestWriteStampedCarriesTelemetry(t *testing.T) {
	Trace = telemetry.NewTracer()
	Metrics = telemetry.NewRegistry()
	defer func() { Trace, Metrics = nil, nil }()

	pts, err := OfflineVsGates(8, 1, 2, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := WriteStamped(dir, "offline", pts)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_offline.json" {
		t.Fatalf("stamp path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Stamped
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("stamp does not parse: %v", err)
	}
	if got.Experiment != "offline" {
		t.Errorf("experiment = %q", got.Experiment)
	}
	if len(got.Spans) == 0 {
		t.Error("stamp has no spans despite tracing enabled")
	}
	var phases int
	for _, sp := range got.Spans {
		if sp.Name == "phase:offline" {
			phases++
		}
	}
	if phases == 0 {
		t.Error("stamp has no phase:offline span")
	}
	if got.Metrics == nil || got.Metrics.Counters["core.pool.tasks"] == 0 {
		t.Errorf("stamp metrics missing pool counters: %+v", got.Metrics)
	}
}

// With telemetry disabled (the default), stamps stay lean: no spans, no
// metrics block.
func TestWriteStampedDisabled(t *testing.T) {
	path, err := WriteStamped(t.TempDir(), "plain", map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got["spans"]; ok {
		t.Error("disabled stamp contains spans")
	}
	if _, ok := got["metrics"]; ok {
		t.Error("disabled stamp contains metrics")
	}
}
