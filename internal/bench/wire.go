package bench

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"strings"
	"time"

	"yosompc/internal/core"
	"yosompc/internal/pke"
	"yosompc/internal/transport"
	"yosompc/internal/tte"
)

// WireResult is experiment E13: a full protocol run mirrored into a live
// boardd server over TCP, comparing the server's *measured* byte report
// against the in-process meter, plus the codec throughput on the frames
// that run actually produced. It certifies that the repo's communication
// numbers are byte counts of real serialized traffic, not self-reports.
type WireResult struct {
	N, T, K int
	// Width is the workload width (mul gates of the wide-sum circuit).
	Width int
	// LocalBytes is the in-process meter's total.
	LocalBytes int64
	// RemoteBytes is the mirrored server's measured total.
	RemoteBytes int64
	// Postings is the number of board postings the run produced.
	Postings int64
	// ReportsMatch reports whether the full per-phase, per-category
	// breakdowns are identical between local and remote.
	ReportsMatch bool
	// FrameBytes is the total size of the run's entry frames (payloads
	// plus frame headers) — the bytes the throughput numbers are over.
	FrameBytes int64
	// EncodeMBps / DecodeMBps are the Entry codec's throughput on those
	// frames, in MB/s (10^6 bytes per second).
	EncodeMBps float64
	DecodeMBps float64
}

// WireExperiment runs the packed protocol with ideal backends, mirrored
// into a transport server listening on loopback, and measures both the
// accounting agreement and the codec throughput.
func WireExperiment(n, t, k, width int) (*WireResult, error) {
	circ, err := wideSum(width)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench: wire listener: %w", err)
	}
	server := transport.Serve(ln)
	defer server.Close()

	params := core.Params{N: n, T: t, K: k, TE: tte.NewSim(ModelBits), PKE: pke.NewSim(),
		Workers: Workers, Trace: Trace, Metrics: Metrics}
	proto, err := core.New(params, circ, nil)
	if err != nil {
		return nil, err
	}
	mirror, err := transport.AttachMirror(proto.Board(), server.Addr())
	if err != nil {
		return nil, err
	}
	res, err := proto.Run(defaultInputs(circ))
	if err != nil {
		return nil, err
	}
	if err := mirror.Close(); err != nil {
		return nil, err
	}
	if errs := mirror.Errors(); errs != 0 {
		return nil, fmt.Errorf("bench: %d mirrored posts failed to reach the server", errs)
	}

	remote := server.Report()
	out := &WireResult{
		N: n, T: t, K: k, Width: width,
		LocalBytes:   res.Report.Total,
		RemoteBytes:  remote.Total,
		Postings:     res.Report.Postings,
		ReportsMatch: reflect.DeepEqual(res.Report, remote),
	}

	entries := server.Entries(0)
	encoded := make([][]byte, len(entries))
	for i, e := range entries {
		enc, err := e.MarshalBinary()
		if err != nil {
			return nil, err
		}
		encoded[i] = enc
		out.FrameBytes += int64(len(enc))
	}
	out.EncodeMBps = throughput(out.FrameBytes, func() error {
		for _, e := range entries {
			if _, err := e.MarshalBinary(); err != nil {
				return err
			}
		}
		return nil
	})
	out.DecodeMBps = throughput(out.FrameBytes, func() error {
		var e transport.Entry
		for _, enc := range encoded {
			if err := e.UnmarshalBinary(enc); err != nil {
				return err
			}
		}
		return nil
	})
	// Decode sanity: the frames must survive a round trip bit-for-bit.
	var probe transport.Entry
	if err := probe.UnmarshalBinary(encoded[0]); err != nil {
		return nil, err
	}
	if re, _ := probe.MarshalBinary(); !bytes.Equal(re, encoded[0]) {
		return nil, fmt.Errorf("bench: entry codec round trip is not the identity")
	}
	return out, nil
}

// throughput runs pass (one sweep over total bytes) repeatedly for at
// least 100ms and returns MB/s. A pass that errors yields 0 — the caller's
// correctness checks will report the defect.
func throughput(total int64, pass func() error) float64 {
	const minDuration = 100 * time.Millisecond
	var passes int
	start := time.Now()
	for elapsed := time.Duration(0); elapsed < minDuration; elapsed = time.Since(start) {
		if err := pass(); err != nil {
			return 0
		}
		passes++
	}
	sec := time.Since(start).Seconds()
	return float64(total) * float64(passes) / sec / 1e6
}

// FormatWire renders the wire experiment as text.
func FormatWire(r *WireResult) string {
	var b strings.Builder
	match := "MATCH"
	if !r.ReportsMatch {
		match = "MISMATCH"
	}
	fmt.Fprintf(&b, "n=%d t=%d k=%d width=%d: %d postings mirrored over TCP\n",
		r.N, r.T, r.K, r.Width, r.Postings)
	fmt.Fprintf(&b, "local meter %d B, server measured %d B — per-phase/per-category %s\n",
		r.LocalBytes, r.RemoteBytes, match)
	fmt.Fprintf(&b, "entry codec on the run's %d frame bytes: encode %.0f MB/s, decode %.0f MB/s\n",
		r.FrameBytes, r.EncodeMBps, r.DecodeMBps)
	return b.String()
}
