package bench

import (
	"fmt"
	"strings"
	"time"

	"yosompc/internal/field"
	"yosompc/internal/sharing"
)

// SharingHotpathRow is one committee size of E12: wall-clock per-operation
// cost of the packed share algebra, cached-domain engine versus the seed
// naive interpolation path, with a bit-identity cross-check. Geometry is
// the protocol's own: k = n/4 packed secrets on degree d = n/2.
type SharingHotpathRow struct {
	K, D, N int
	// Reps is how many timed repetitions each figure averages over.
	Reps int
	// Per-operation wall clock of SharePacked / SharePackedNaive and
	// ReconstructPacked / ReconstructPackedNaive.
	ShareDomain, ShareNaive time.Duration
	ReconDomain, ReconNaive time.Duration
	// ShareSpeedup / ReconSpeedup are naive÷domain.
	ShareSpeedup, ReconSpeedup float64
	// Identical reports that the domain and naive reconstruction paths
	// returned bit-identical secrets, equal to the shared vector.
	Identical bool
}

// SharingHotpath measures E12 for the given committee sizes. The domain
// cache is warmed before timing, so the domain figures are the amortized
// steady state every offline batch after the first sees; the naive
// figures are the per-call cost the cache removes. When the package
// Metrics registry is set, the sharing domain-cache counters are mirrored
// into it (and therefore into the stamped artifact).
func SharingHotpath(ns []int, reps int) ([]SharingHotpathRow, error) {
	if reps < 1 {
		reps = 1
	}
	if Metrics != nil {
		sharing.Instrument(Metrics)
	}
	rows := make([]SharingHotpathRow, 0, len(ns))
	for _, n := range ns {
		k, d := n/4, n/2
		if k < 1 {
			return nil, fmt.Errorf("bench: sharing hotpath: n=%d too small", n)
		}
		secrets, err := field.RandomVec(k)
		if err != nil {
			return nil, err
		}
		if _, err := sharing.GetDomain(k, d, n); err != nil {
			return nil, err
		}
		measure := func(op func() error) (time.Duration, error) {
			start := time.Now()
			for r := 0; r < reps; r++ {
				if err := op(); err != nil {
					return 0, err
				}
			}
			return time.Since(start) / time.Duration(reps), nil
		}
		row := SharingHotpathRow{K: k, D: d, N: n, Reps: reps}
		if row.ShareDomain, err = measure(func() error {
			_, err := sharing.SharePacked(secrets, d, n)
			return err
		}); err != nil {
			return nil, err
		}
		if row.ShareNaive, err = measure(func() error {
			_, err := sharing.SharePackedNaive(secrets, d, n)
			return err
		}); err != nil {
			return nil, err
		}
		shares, err := sharing.SharePacked(secrets, d, n)
		if err != nil {
			return nil, err
		}
		if row.ReconDomain, err = measure(func() error {
			_, err := sharing.ReconstructPacked(shares, d, k)
			return err
		}); err != nil {
			return nil, err
		}
		if row.ReconNaive, err = measure(func() error {
			_, err := sharing.ReconstructPackedNaive(shares, d, k)
			return err
		}); err != nil {
			return nil, err
		}
		fast, err := sharing.ReconstructPacked(shares, d, k)
		if err != nil {
			return nil, err
		}
		naive, err := sharing.ReconstructPackedNaive(shares, d, k)
		if err != nil {
			return nil, err
		}
		row.Identical = field.EqualVec(fast, naive) && field.EqualVec(fast, secrets)
		if row.ShareDomain > 0 {
			row.ShareSpeedup = float64(row.ShareNaive) / float64(row.ShareDomain)
		}
		if row.ReconDomain > 0 {
			row.ReconSpeedup = float64(row.ReconNaive) / float64(row.ReconDomain)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSharingHotpath renders E12.
func FormatSharingHotpath(rows []SharingHotpathRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %-6s %14s %14s %9s %14s %14s %9s %s\n",
		"n", "k", "d", "share(domain)", "share(naive)", "speedup",
		"recon(domain)", "recon(naive)", "speedup", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-6d %-6d %14s %14s %8.1f× %14s %14s %8.1f× %v\n",
			r.N, r.K, r.D,
			r.ShareDomain.Round(time.Microsecond), r.ShareNaive.Round(time.Microsecond), r.ShareSpeedup,
			r.ReconDomain.Round(time.Microsecond), r.ReconNaive.Round(time.Microsecond), r.ReconSpeedup,
			r.Identical)
	}
	return b.String()
}
