// Package bench implements the experiment harness: each function
// regenerates one table or figure-style series from the paper's
// evaluation (see DESIGN.md's experiment index). Small and medium
// committees are *measured* by executing the instrumented protocols;
// Table-1-scale committees (up to ~41k roles) use the costmodel formulas,
// which the test suite validates byte-for-byte against measured runs.
package bench

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"yosompc/internal/baseline"
	"yosompc/internal/circuit"
	"yosompc/internal/comm"
	"yosompc/internal/core"
	"yosompc/internal/costmodel"
	"yosompc/internal/field"
	"yosompc/internal/parallel"
	"yosompc/internal/pke"
	"yosompc/internal/sortition"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

// ModelBits is the modelled Paillier modulus for communication accounting.
const ModelBits = 2048

// Workers configures the core engine's worker-pool size for every measured
// run (0 = one per CPU, 1 = serial). Byte reports are identical for any
// value — the knob only changes wall clock, so the communication
// experiments are unaffected by it.
var Workers int

// defaultInputs builds deterministic inputs for a circuit.
func defaultInputs(c *circuit.Circuit) map[int][]field.Element {
	in := map[int][]field.Element{}
	for _, client := range c.Clients() {
		vals := make([]field.Element, c.InputCount(client))
		for i := range vals {
			vals[i] = field.New(uint64(client*101 + i + 1))
		}
		in[client] = vals
	}
	return in
}

// runCore executes the packed protocol with ideal backends and returns its
// communication report.
func runCore(n, t, k int, circ *circuit.Circuit, adv *yoso.Adversary) (comm.Report, error) {
	params := core.Params{N: n, T: t, K: k, TE: tte.NewSim(ModelBits), PKE: pke.NewSim(),
		Adversary: adv, Workers: Workers, Trace: Trace, Metrics: Metrics}
	proto, err := core.New(params, circ, nil)
	if err != nil {
		return comm.Report{}, err
	}
	res, err := proto.Run(defaultInputs(circ))
	if err != nil {
		return comm.Report{}, err
	}
	return res.Report, nil
}

// runBaseline executes the CDN baseline with ideal backends.
func runBaseline(n, t int, circ *circuit.Circuit, adv *yoso.Adversary) (comm.Report, error) {
	params := baseline.Params{N: n, T: t, TE: tte.NewSim(ModelBits), PKE: pke.NewSim(), Adversary: adv}
	proto, err := baseline.New(params, circ, nil)
	if err != nil {
		return comm.Report{}, err
	}
	res, err := proto.Run(defaultInputs(circ))
	if err != nil {
		return comm.Report{}, err
	}
	return res.Report, nil
}

// --- E1: online communication vs committee size ------------------------

// OnlineVsNPoint is one measured point of experiment E1.
type OnlineVsNPoint struct {
	N, T, K int
	// CoreMuPerGate is the packed protocol's per-gate μ-opening bytes.
	CoreMuPerGate float64
	// CoreOnlinePerGate is the packed protocol's total online bytes/gate.
	CoreOnlinePerGate float64
	// BaselineOnlinePerGate is the baseline's total online bytes/gate.
	BaselineOnlinePerGate float64
}

// OnlineVsN measures experiment E1: per-gate online communication of the
// packed protocol (flat in n, since k ∝ n) against the CDN baseline
// (linear in n). Committee sizes are measured directly with the ideal
// backends; eps sets k = ⌊n·eps⌋ and t = ⌊n(1/2−eps)⌋−1.
func OnlineVsN(ns []int, width, depth int, eps float64) ([]OnlineVsNPoint, error) {
	var out []OnlineVsNPoint
	for _, n := range ns {
		k := int(float64(n) * eps)
		if k < 1 {
			k = 1
		}
		t := int(float64(n)*(0.5-eps)) - 1
		if t < 0 {
			t = 0
		}
		circ, err := circuit.WideMul(width, depth)
		if err != nil {
			return nil, err
		}
		gates := float64(circ.NumMul())
		coreRep, err := runCore(n, t, k, circ, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: core n=%d: %w", n, err)
		}
		baseRep, err := runBaseline(n, (n-1)/2, circ, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: baseline n=%d: %w", n, err)
		}
		out = append(out, OnlineVsNPoint{
			N: n, T: t, K: k,
			CoreMuPerGate:         float64(coreRep.ByCat[comm.PhaseOnline][comm.CatMu]) / gates,
			CoreOnlinePerGate:     float64(coreRep.Phase(comm.PhaseOnline)) / gates,
			BaselineOnlinePerGate: float64(baseRep.Phase(comm.PhaseOnline)) / gates,
		})
	}
	return out, nil
}

// FormatOnlineVsN renders E1 as a table.
func FormatOnlineVsN(pts []OnlineVsNPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %-6s %-16s %-18s %-20s\n",
		"n", "t", "k", "ours μ B/gate", "ours online B/gate", "baseline online B/gate")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-6d %-6d %-6d %-16.1f %-18.1f %-20.1f\n",
			p.N, p.T, p.K, p.CoreMuPerGate, p.CoreOnlinePerGate, p.BaselineOnlinePerGate)
	}
	return b.String()
}

// --- E2: improvement factors at Table-1 parameters ---------------------

// ImprovementRow is one Table-1 row evaluated as experiment E2.
type ImprovementRow struct {
	C              int
	F              float64
	N, T, K        int
	NoGapN         int
	CoreOnline     int64
	BaselineOnline int64
	ByteFactor     float64
	ElementFactor  float64
	PaperFactor    int
}

// ImprovementFactors evaluates E2: for every feasible Table-1 row, the
// packed protocol at committee size c with packing k against the CDN
// baseline at the no-gap committee size c′ = 2t+1, on a one-layer workload
// of widthMult·n·k multiplication gates — the paper's amortization regime,
// in which each committee role processes Θ(widthMult·n) values so the
// O(n)-per-role KFF delivery amortizes. Costs come from the validated
// costmodel.
func ImprovementFactors(widthMult int) ([]ImprovementRow, error) {
	if widthMult < 1 {
		widthMult = 16
	}
	z := costmodel.SimSizes(ModelBits)
	var rows []ImprovementRow
	for _, row := range sortition.Table1() {
		if !row.Feasible {
			continue
		}
		n, t, k, _ := row.Result.CommitteeFor(false)
		width := widthMult * n * k
		shape := costmodel.Shape{
			Inputs: 16, InputClients: 2, Clients: 2, Outputs: 4,
			Muls: width, Depth: 1,
			BatchesPerLayer: []int{(width + k - 1) / k},
		}
		ours := costmodel.Core(n, t, k, shape, z)
		baseShape := shape
		baseShape.BatchesPerLayer = []int{width}
		nPrime := row.Result.NoGap
		base := costmodel.Baseline(nPrime, t, baseShape, z)
		// Element factor: baseline posts 2n′ partial-decryption elements
		// per gate; ours posts n/k μ-share elements per gate.
		elemFactor := float64(2*nPrime) / (float64(n) / float64(k))
		rows = append(rows, ImprovementRow{
			C: row.C, F: row.F, N: n, T: t, K: k, NoGapN: nPrime,
			CoreOnline:     ours.Online,
			BaselineOnline: base.Online,
			ByteFactor:     float64(base.Online) / float64(ours.Online),
			ElementFactor:  elemFactor,
			PaperFactor:    row.Result.K,
		})
	}
	return rows, nil
}

// FormatImprovement renders E2 as a table.
func FormatImprovement(rows []ImprovementRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-5s %-7s %-7s %-7s %-12s %-14s %-12s %-12s %-10s\n",
		"C", "f", "c", "c'", "k", "ours online", "baseline onl", "byte-factor", "elem-factor", "paper-k")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7d %-5.2f %-7d %-7d %-7d %-12s %-14s %-12.0f %-12.0f %-10d\n",
			r.C, r.F, r.N, r.NoGapN, r.K,
			comm.HumanBytes(r.CoreOnline), comm.HumanBytes(r.BaselineOnline),
			r.ByteFactor, r.ElementFactor, r.PaperFactor)
	}
	return b.String()
}

// --- E3: offline scaling -------------------------------------------------

// OfflineScalingPoint is one point of experiment E3.
type OfflineScalingPoint struct {
	N       int
	Muls    int
	Offline int64
	PerGate float64
}

// OfflineVsGates measures offline bytes against circuit size at fixed n —
// the O(n·|C|) claim's |C| axis.
func OfflineVsGates(n, t, k int, widths []int) ([]OfflineScalingPoint, error) {
	var out []OfflineScalingPoint
	for _, w := range widths {
		circ, err := circuit.WideMul(w, 1)
		if err != nil {
			return nil, err
		}
		rep, err := runCore(n, t, k, circ, nil)
		if err != nil {
			return nil, err
		}
		off := rep.Phase(comm.PhaseOffline)
		out = append(out, OfflineScalingPoint{
			N: n, Muls: circ.NumMul(), Offline: off,
			PerGate: float64(off) / float64(circ.NumMul()),
		})
	}
	return out, nil
}

// OfflineVsN measures offline bytes against committee size at fixed
// circuit — the O(n·|C|) claim's n axis (k scales with n).
func OfflineVsN(ns []int, width int, eps float64) ([]OfflineScalingPoint, error) {
	circ, err := circuit.WideMul(width, 1)
	if err != nil {
		return nil, err
	}
	var out []OfflineScalingPoint
	for _, n := range ns {
		k := int(float64(n) * eps)
		if k < 1 {
			k = 1
		}
		t := int(float64(n)*(0.5-eps)) - 1
		if t < 0 {
			t = 0
		}
		rep, err := runCore(n, t, k, circ, nil)
		if err != nil {
			return nil, err
		}
		off := rep.Phase(comm.PhaseOffline)
		out = append(out, OfflineScalingPoint{
			N: n, Muls: circ.NumMul(), Offline: off,
			PerGate: float64(off) / float64(circ.NumMul()),
		})
	}
	return out, nil
}

// FormatOfflineScaling renders E3 points.
func FormatOfflineScaling(pts []OfflineScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-8s %-14s %-14s\n", "n", "muls", "offline", "B/gate")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-6d %-8d %-14s %-14.1f\n", p.N, p.Muls, comm.HumanBytes(p.Offline), p.PerGate)
	}
	return b.String()
}

// --- E4: fail-stop tolerance ---------------------------------------------

// FailStopResult is experiment E4's outcome.
type FailStopResult struct {
	N, T         int
	KFull, KHalf int
	Dropped      int
	// Completed reports whether the half-packing run with dropped roles
	// delivered correct outputs.
	Completed bool
	// OnlineFull / OnlineHalf are the per-run online μ-opening bytes of
	// the all-honest full-k and half-k runs.
	OnlineFull, OnlineHalf int64
	// Overhead is OnlineHalf / OnlineFull (≈ the paper's factor-2 cost).
	Overhead float64
}

// FailStop measures §5.4: with the packing factor halved (k′ ≈ nε/2), the
// protocol completes even when ⌊nε⌋ honest roles crash in every committee,
// at roughly twice the per-gate online μ cost.
func FailStop(n int, eps float64, width int) (*FailStopResult, error) {
	kFull := int(float64(n) * eps)
	if kFull < 2 {
		return nil, fmt.Errorf("bench: n·eps = %d too small to halve", kFull)
	}
	kHalf := kFull / 2
	t := int(float64(n)*(0.5-eps)) - 1
	if t < 0 {
		t = 0
	}
	drop := int(float64(n) * eps)
	circ, err := circuit.WideMul(width, 1)
	if err != nil {
		return nil, err
	}
	full, err := runCore(n, t, kFull, circ, nil)
	if err != nil {
		return nil, err
	}
	// The §5.4 price: the same computation with k′ = k/2, all honest —
	// "cutting by a factor of two the gains in communication".
	halfHonest, err := runCore(n, t, kHalf, circ, nil)
	if err != nil {
		return nil, err
	}
	// The §5.4 benefit: with k′, the run survives ⌊nε⌋ crashed honest
	// roles in every committee.
	adv := yoso.NewAdversary(0, drop, 424242)
	_, dropErr := runCore(n, t, kHalf, circ, adv)
	res := &FailStopResult{
		N: n, T: t, KFull: kFull, KHalf: kHalf, Dropped: drop,
		Completed:  dropErr == nil,
		OnlineFull: full.ByCat[comm.PhaseOnline][comm.CatMu],
		OnlineHalf: halfHonest.ByCat[comm.PhaseOnline][comm.CatMu],
	}
	res.Overhead = float64(res.OnlineHalf) / float64(res.OnlineFull)
	return res, nil
}

// --- Ablations -----------------------------------------------------------

// AblationRow compares the packed protocol against itself with a design
// element disabled.
type AblationRow struct {
	Name           string
	OnlineBytes    int64
	OnlinePerGate  float64
	OfflineBytes   int64
	RelativeToFull float64
}

// PackingAblation quantifies the packed-sharing contribution: k as chosen
// (≈ nε) versus k = 1, which degenerates each batch to a single gate (the
// per-gate cost then scales like the unpacked CDN approach's share count).
func PackingAblation(n, t, k, width int) ([]AblationRow, error) {
	circ, err := circuit.WideMul(width, 1)
	if err != nil {
		return nil, err
	}
	gates := float64(circ.NumMul())
	full, err := runCore(n, t, k, circ, nil)
	if err != nil {
		return nil, err
	}
	unpacked, err := runCore(n, t, 1, circ, nil)
	if err != nil {
		return nil, err
	}
	// Compare the μ-opening stream — the per-gate online cost packing
	// targets; the KFF-delivery component is identical in both runs.
	fullOn := full.ByCat[comm.PhaseOnline][comm.CatMu]
	unpOn := unpacked.ByCat[comm.PhaseOnline][comm.CatMu]
	return []AblationRow{
		{
			Name: fmt.Sprintf("packed k=%d", k), OnlineBytes: fullOn,
			OnlinePerGate: float64(fullOn) / gates,
			OfflineBytes:  full.Phase(comm.PhaseOffline), RelativeToFull: 1,
		},
		{
			Name: "unpacked k=1", OnlineBytes: unpOn,
			OnlinePerGate:  float64(unpOn) / gates,
			OfflineBytes:   unpacked.Phase(comm.PhaseOffline),
			RelativeToFull: float64(unpOn) / float64(fullOn),
		},
	}, nil
}

// --- Total-cost comparison (limitation figure) ---------------------------

// TotalCostPoint compares end-to-end (setup+offline+online) bytes.
type TotalCostPoint struct {
	N             int
	CoreTotal     int64
	BaselineTotal int64
	// Ratio is CoreTotal / BaselineTotal — above 1 where the offline
	// investment exceeds the baseline's entire cost.
	Ratio float64
}

// TotalCost measures the honest limitation the paper's conclusion notes
// ("our preprocessing unfortunately does not benefit from the packing
// parameter k"): summing all phases, the packed protocol pays more than
// the baseline — the win is moving Θ(n)-per-gate work out of the
// input-dependent online phase, not reducing total bytes.
func TotalCost(ns []int, width int, eps float64) ([]TotalCostPoint, error) {
	circ, err := circuit.WideMul(width, 1)
	if err != nil {
		return nil, err
	}
	var out []TotalCostPoint
	for _, n := range ns {
		k := int(float64(n) * eps)
		if k < 1 {
			k = 1
		}
		t := int(float64(n)*(0.5-eps)) - 1
		if t < 0 {
			t = 0
		}
		coreRep, err := runCore(n, t, k, circ, nil)
		if err != nil {
			return nil, err
		}
		baseRep, err := runBaseline(n, (n-1)/2, circ, nil)
		if err != nil {
			return nil, err
		}
		p := TotalCostPoint{N: n, CoreTotal: coreRep.Total, BaselineTotal: baseRep.Total}
		p.Ratio = float64(p.CoreTotal) / float64(p.BaselineTotal)
		out = append(out, p)
	}
	return out, nil
}

// FormatTotalCost renders the comparison.
func FormatTotalCost(pts []TotalCostPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-14s %-16s %-8s\n", "n", "ours total", "baseline total", "ratio")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-6d %-14s %-16s %-8.2f\n",
			p.N, comm.HumanBytes(p.CoreTotal), comm.HumanBytes(p.BaselineTotal), p.Ratio)
	}
	return b.String()
}

// --- E9: robust (IT-GOD) vs proof-filtered mode --------------------------

// RobustRow compares the two GOD mechanisms at one committee size.
type RobustRow struct {
	N, T, K int
	// ProofOnline / RobustOnline are total online bytes.
	ProofOnline, RobustOnline int64
	// ProofBytesSaved is the per-run μ-layer proof saving.
	ProofBytesSaved int64
	// MaxKProof / MaxKRobust are the largest packing factors each mode
	// admits at (n, t): the robust mode's cost is packing budget.
	MaxKProof, MaxKRobust int
}

// RobustComparison measures E9 on a wide one-layer circuit.
func RobustComparison(n, t, k, width int) (*RobustRow, error) {
	circ, err := circuit.WideMul(width, 1)
	if err != nil {
		return nil, err
	}
	in := defaultInputs(circ)
	runMode := func(robust bool) (comm.Report, error) {
		params := core.Params{
			N: n, T: t, K: k,
			TE: tte.NewSim(ModelBits), PKE: pke.NewSim(),
			Robust: robust,
		}
		proto, err := core.New(params, circ, nil)
		if err != nil {
			return comm.Report{}, err
		}
		res, err := proto.Run(in)
		if err != nil {
			return comm.Report{}, err
		}
		return res.Report, nil
	}
	proofRep, err := runMode(false)
	if err != nil {
		return nil, err
	}
	robustRep, err := runMode(true)
	if err != nil {
		return nil, err
	}
	row := &RobustRow{
		N: n, T: t, K: k,
		ProofOnline:  proofRep.Phase(comm.PhaseOnline),
		RobustOnline: robustRep.Phase(comm.PhaseOnline),
		MaxKProof:    (n - t - 1) / 2,
		MaxKRobust:   (n - 3*t - 1) / 2,
	}
	row.ProofBytesSaved = proofRep.ByCat[comm.PhaseOnline][comm.CatProof] -
		robustRep.ByCat[comm.PhaseOnline][comm.CatProof]
	if row.MaxKProof < 1 {
		row.MaxKProof = 1
	}
	if row.MaxKRobust < 1 {
		row.MaxKRobust = 1
	}
	return row, nil
}

// KFFAblation quantifies the keys-for-future contribution: the same
// computation with NoKFF (the paper's §3.2 naive approach) pays the packed
// share re-encryptions during the online phase.
func KFFAblation(n, t, k, width int) ([]AblationRow, error) {
	circ, err := circuit.WideMul(width, 1)
	if err != nil {
		return nil, err
	}
	gates := float64(circ.NumMul())
	runMode := func(noKFF bool) (comm.Report, error) {
		params := core.Params{
			N: n, T: t, K: k,
			TE: tte.NewSim(ModelBits), PKE: pke.NewSim(),
			NoKFF: noKFF,
		}
		proto, err := core.New(params, circ, nil)
		if err != nil {
			return comm.Report{}, err
		}
		res, err := proto.Run(defaultInputs(circ))
		if err != nil {
			return comm.Report{}, err
		}
		return res.Report, nil
	}
	withKFF, err := runMode(false)
	if err != nil {
		return nil, err
	}
	naive, err := runMode(true)
	if err != nil {
		return nil, err
	}
	kffOn := withKFF.Phase(comm.PhaseOnline)
	naiveOn := naive.Phase(comm.PhaseOnline)
	return []AblationRow{
		{
			Name: "with KFF", OnlineBytes: kffOn,
			OnlinePerGate: float64(kffOn) / gates,
			OfflineBytes:  withKFF.Phase(comm.PhaseOffline), RelativeToFull: 1,
		},
		{
			Name: "naive (no KFF)", OnlineBytes: naiveOn,
			OnlinePerGate:  float64(naiveOn) / gates,
			OfflineBytes:   naive.Phase(comm.PhaseOffline),
			RelativeToFull: float64(naiveOn) / float64(kffOn),
		},
	}, nil
}

// --- Amortization curve ---------------------------------------------------

// AmortizationPoint is one point of the width sweep: online bytes per gate
// as the per-committee workload grows.
type AmortizationPoint struct {
	Width         int
	OnlinePerGate float64
	// MuPerGate is the flat μ-opening component (the asymptote's floor).
	MuPerGate float64
}

// AmortizationCurve measures how the fixed online costs (KFF delivery, tsk
// hand-off, output delivery) amortize as circuit width grows — the
// convergence to the paper's O(1)-per-gate asymptote. Fixed (n, t, k);
// one-layer product circuits reduced to a single output so the per-output
// cost does not mask the floor.
func AmortizationCurve(n, t, k int, widths []int) ([]AmortizationPoint, error) {
	var out []AmortizationPoint
	for _, w := range widths {
		circ, err := wideSum(w)
		if err != nil {
			return nil, err
		}
		rep, err := runCore(n, t, k, circ, nil)
		if err != nil {
			return nil, err
		}
		gates := float64(circ.NumMul())
		out = append(out, AmortizationPoint{
			Width:         w,
			OnlinePerGate: float64(rep.Phase(comm.PhaseOnline)) / gates,
			MuPerGate:     float64(rep.ByCat[comm.PhaseOnline][comm.CatMu]) / gates,
		})
	}
	return out, nil
}

// wideSum builds `width` independent products summed into one output.
func wideSum(width int) (*circuit.Circuit, error) {
	b := circuit.NewBuilder()
	xs := make([]circuit.WireID, width)
	ys := make([]circuit.WireID, width)
	for i := range xs {
		xs[i] = b.Input(0)
	}
	for i := range ys {
		ys[i] = b.Input(1)
	}
	acc := b.Mul(xs[0], ys[0])
	for i := 1; i < width; i++ {
		acc = b.Add(acc, b.Mul(xs[i], ys[i]))
	}
	b.Output(acc, 0)
	return b.Build()
}

// FormatAmortization renders the curve.
func FormatAmortization(pts []AmortizationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-20s %-16s\n", "width", "online B/gate", "μ-floor B/gate")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8d %-20.1f %-16.1f\n", p.Width, p.OnlinePerGate, p.MuPerGate)
	}
	return b.String()
}

// --- E11: offline-phase wall clock, serial vs worker pool ----------------

// OfflineSpeedupResult compares the offline-phase wall clock of the serial
// engine (Workers=1) against the worker pool, and cross-checks the
// serial-equivalence guarantee: both runs must produce the same
// communication report, byte for byte.
type OfflineSpeedupResult struct {
	N, T, K int
	// Muls is the number of multiplication gates preprocessed.
	Muls int
	// Workers is the pool size of the parallel run (resolved from 0).
	Workers int
	// Serial and Parallel are the setup+offline wall-clock times.
	Serial, Parallel time.Duration
	// Speedup is Serial/Parallel (> 1 means the pool is faster).
	Speedup float64
	// ReportsEqual confirms the two runs metered identical bytes in every
	// phase and category — the engine's serial-equivalence guarantee.
	ReportsEqual bool
	// SerialReport and ParallelReport are the two runs' full breakdowns.
	SerialReport, ParallelReport comm.Report
}

// OfflineSpeedup measures E11: wall-clock time of the offline phase
// (setup + Steps 1–6) at a representative size, serial vs pooled, with the
// ideal backends. `workers` ≤ 0 resolves to one worker per CPU. Note the
// speedup is bounded by the machine's CPU count — on a single-core host
// the two runs tie (modulo scheduling noise), which is itself evidence the
// pool adds no metering or bookkeeping cost.
func OfflineSpeedup(n, t, k, width, workers int) (*OfflineSpeedupResult, error) {
	circ, err := circuit.WideMul(width, 1)
	if err != nil {
		return nil, err
	}
	runOffline := func(w int) (time.Duration, comm.Report, error) {
		params := core.Params{N: n, T: t, K: k, TE: tte.NewSim(ModelBits), PKE: pke.NewSim(), Workers: w}
		proto, err := core.New(params, circ, nil)
		if err != nil {
			return 0, comm.Report{}, err
		}
		start := time.Now()
		prepared, err := proto.Prepare()
		if err != nil {
			return 0, comm.Report{}, err
		}
		return time.Since(start), prepared.OfflineReport(), nil
	}
	serial, serialRep, err := runOffline(1)
	if err != nil {
		return nil, fmt.Errorf("bench: serial offline: %w", err)
	}
	workers = parallel.Normalize(workers)
	par, parRep, err := runOffline(workers)
	if err != nil {
		return nil, fmt.Errorf("bench: parallel offline (workers=%d): %w", workers, err)
	}
	res := &OfflineSpeedupResult{
		N: n, T: t, K: k, Muls: circ.NumMul(), Workers: workers,
		Serial: serial, Parallel: par,
		ReportsEqual:   reflect.DeepEqual(serialRep, parRep),
		SerialReport:   serialRep,
		ParallelReport: parRep,
	}
	if par > 0 {
		res.Speedup = float64(serial) / float64(par)
	}
	return res, nil
}

// FormatOfflineSpeedup renders E11.
func FormatOfflineSpeedup(r *OfflineSpeedupResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d t=%d k=%d, %d mul gates\n", r.N, r.T, r.K, r.Muls)
	fmt.Fprintf(&b, "%-22s %v\n", "serial (workers=1):", r.Serial.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-22s %v\n", fmt.Sprintf("pooled (workers=%d):", r.Workers), r.Parallel.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-22s %.2f×\n", "speedup:", r.Speedup)
	fmt.Fprintf(&b, "%-22s %v\n", "reports identical:", r.ReportsEqual)
	return b.String()
}
