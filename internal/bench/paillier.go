package bench

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"strings"
	"time"

	"yosompc/internal/modexp"
	"yosompc/internal/nizk"
	"yosompc/internal/paillier"
	"yosompc/internal/tte"
)

// PaillierHotpathRow is E14a: per-operation wall clock of the Paillier /
// Damgård–Jurik crypto kernels, modexp engine versus the retained naive
// references, at one modulus size. Every engine figure is produced by the
// exact code path the protocol driver runs; Identical reports that engine
// and naive outputs matched bit-for-bit during the measurement.
type PaillierHotpathRow struct {
	// Bits is the Paillier modulus size (ciphertexts live mod Bits·2).
	Bits int
	// Reps is how many timed repetitions each figure averages over.
	Reps int
	// Encryption: closed-form (1+N)^m + nonce power vs double full
	// exponentiation (per ciphertext).
	EncEngine, EncNaive time.Duration
	// Decryption: CRT split over p^{s+1}/q^{s+1} vs single full-width
	// exponentiation (per ciphertext).
	DecEngine, DecNaive time.Duration
	// Proof verification: cached fixed-base g^Z + Straus A·h^e fold vs
	// two independent exponentiations (per EqExp proof, warm cache).
	VerifyEngine, VerifyNaive time.Duration
	// Batched encryption: EncryptMany at 1 worker vs the default pool
	// (per ciphertext, batch of BatchSize).
	BatchSize                  int
	BatchSerial, BatchParallel time.Duration
	// Speedups are naive÷engine (serial÷parallel for the batch).
	EncSpeedup, DecSpeedup, VerifySpeedup, BatchSpeedup float64
	// Identical reports bit-identity of engine vs naive outputs across
	// all differential measurements above.
	Identical bool
}

// PaillierHotpath measures E14a against the given dealer key. The modexp
// table cache is warmed before the verification timing, so the verify
// figure is the amortized steady state a committee's proof checker sees;
// encryption and decryption have no warm-up (their speedups are purely
// algebraic). The EqExp witness is sized like a Δ-scaled key share for a
// witnessN-member committee (|Δ·d_i| ≈ log₂(n!) + |N^s·m| bits), the
// magnitude partial-decryption proofs actually carry. When the package
// Metrics registry is set, the engine's cache counters are mirrored into
// it.
func PaillierHotpath(sk *paillier.PrivateKey, reps, batch, witnessN int) (*PaillierHotpathRow, error) {
	if witnessN < 2 {
		witnessN = 1024
	}
	if reps < 1 {
		reps = 1
	}
	if batch < 2 {
		batch = 8
	}
	if Metrics != nil {
		modexp.Instrument(Metrics)
	}
	dj, err := paillier.NewDJKey(sk, 1)
	if err != nil {
		return nil, err
	}
	row := &PaillierHotpathRow{Bits: sk.N.BitLen(), Reps: reps, BatchSize: batch, Identical: true}
	measure := func(op func() error) (time.Duration, error) {
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(reps), nil
	}

	// Encryption: same (m, r) through both paths, outputs compared.
	m, err := rand.Int(rand.Reader, sk.N)
	if err != nil {
		return nil, err
	}
	nonce, err := sk.PublicKey.RandomUnit(rand.Reader)
	if err != nil {
		return nil, err
	}
	var encEngine, encNaive *paillier.Ciphertext
	if row.EncEngine, err = measure(func() error {
		encEngine, err = dj.EncryptWithNonce(m, nonce)
		return err
	}); err != nil {
		return nil, err
	}
	if row.EncNaive, err = measure(func() error {
		encNaive, err = dj.EncryptWithNonceNaive(m, nonce)
		return err
	}); err != nil {
		return nil, err
	}
	row.Identical = row.Identical && encEngine.C.Cmp(encNaive.C) == 0

	// Decryption of the ciphertext just produced.
	var decEngine, decNaive *big.Int
	if row.DecEngine, err = measure(func() error {
		decEngine, err = dj.Decrypt(encEngine)
		return err
	}); err != nil {
		return nil, err
	}
	if row.DecNaive, err = measure(func() error {
		decNaive, err = dj.DecryptNaive(encEngine)
		return err
	}); err != nil {
		return nil, err
	}
	row.Identical = row.Identical && decEngine.Cmp(decNaive) == 0 && decEngine.Cmp(m) == 0 //yosolint:vartime differential cross-check on a known benchmark plaintext

	// Proof verification over Z*_{N²} with a witness sized like a
	// Δ-scaled key share for a witnessN-member committee. Three warm-up
	// verifications promote the bases into the fixed-base table cache
	// before timing.
	wBits := factorialBits(witnessN) + uint(sk.N.BitLen()) + uint(sk.N.BitLen())/2
	w, err := rand.Int(rand.Reader, new(big.Int).Lsh(bigIntOne, wBits))
	if err != nil {
		return nil, err
	}
	g1, g2, h1, h2, proof, err := eqExpFixture(dj.Ns1, w)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 3; i++ {
		if !nizk.VerifyEqExp(dj.Ns1, g1, g2, h1, h2, proof) {
			return nil, fmt.Errorf("bench: paillier: warm-up verification rejected an honest proof")
		}
	}
	verdictEngine, verdictNaive := false, false
	if row.VerifyEngine, err = measure(func() error {
		verdictEngine = nizk.VerifyEqExp(dj.Ns1, g1, g2, h1, h2, proof)
		return nil
	}); err != nil {
		return nil, err
	}
	if row.VerifyNaive, err = measure(func() error {
		verdictNaive = nizk.VerifyEqExpNaive(dj.Ns1, g1, g2, h1, h2, proof)
		return nil
	}); err != nil {
		return nil, err
	}
	row.Identical = row.Identical && verdictEngine && verdictNaive

	// Batched encryption throughput (nonces are fresh per call, so the
	// figures are per-ciphertext wall clock, not a bit-identity check —
	// worker-count independence is pinned by the package tests).
	ms := make([]*big.Int, batch)
	for i := range ms {
		if ms[i], err = rand.Int(rand.Reader, sk.N); err != nil {
			return nil, err
		}
	}
	if row.BatchSerial, err = measure(func() error {
		_, err := dj.EncryptMany(rand.Reader, ms, 1)
		return err
	}); err != nil {
		return nil, err
	}
	row.BatchSerial /= time.Duration(batch)
	if row.BatchParallel, err = measure(func() error {
		_, err := dj.EncryptMany(rand.Reader, ms, 0)
		return err
	}); err != nil {
		return nil, err
	}
	row.BatchParallel /= time.Duration(batch)

	if row.EncEngine > 0 {
		row.EncSpeedup = float64(row.EncNaive) / float64(row.EncEngine)
	}
	if row.DecEngine > 0 {
		row.DecSpeedup = float64(row.DecNaive) / float64(row.DecEngine)
	}
	if row.VerifyEngine > 0 {
		row.VerifySpeedup = float64(row.VerifyNaive) / float64(row.VerifyEngine)
	}
	if row.BatchParallel > 0 {
		row.BatchSpeedup = float64(row.BatchSerial) / float64(row.BatchParallel)
	}
	return row, nil
}

var bigIntOne = big.NewInt(1)

// factorialBits returns the bit length of n! (the Shoup scaling factor Δ
// for an n-member committee).
func factorialBits(n int) uint {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return uint(f.BitLen())
}

// eqExpFixture builds one honest EqExp statement and proof with witness w.
func eqExpFixture(modulus, w *big.Int) (g1, g2, h1, h2 *big.Int, proof *nizk.EqExpProof, err error) {
	square := func() (*big.Int, error) {
		r, err := rand.Int(rand.Reader, modulus)
		if err != nil {
			return nil, err
		}
		r.Mul(r, r)
		r.Mod(r, modulus)
		if r.Sign() == 0 {
			r.SetInt64(4)
		}
		return r, nil
	}
	if g1, err = square(); err != nil {
		return
	}
	if g2, err = square(); err != nil {
		return
	}
	if h1, err = modexp.ExpSigned(g1, w, modulus); err != nil {
		return
	}
	if h2, err = modexp.ExpSigned(g2, w, modulus); err != nil {
		return
	}
	wBound := new(big.Int).Lsh(bigIntOne, uint(w.BitLen())+1)
	proof, err = nizk.ProveEqExp(modulus, g1, g2, h1, h2, w, wBound)
	return
}

// PaillierOpeningRow is E14b: the offline phase's opening-round kernel —
// t+1 threshold partial decryptions plus one Combine — at committee size
// N, engine versus naive. The Δ = N! scaling makes the exponent sizes
// (and therefore the figures) authentic for an N-member committee even
// though only t+1 members speak.
type PaillierOpeningRow struct {
	// N is the committee size (Δ = N!); T the reconstruction threshold;
	// Parts = T+1 the number of partials combined.
	N, T, Parts int
	// Bits is the Paillier modulus size.
	Bits int
	// Reps is how many timed repetitions each figure averages over.
	Reps int
	// Per-partial c^{2Δd_i}: CRT engine vs full-width naive.
	PartialEngine, PartialNaive time.Duration
	// Combine Π v_i^{2Λ_i}: one Straus multi-exp vs t+1 exponentiations.
	CombineEngine, CombineNaive time.Duration
	// Whole opening round: (t+1)·partial + combine.
	RoundEngine, RoundNaive time.Duration
	// Speedups are naive÷engine.
	PartialSpeedup, CombineSpeedup, RoundSpeedup float64
	// Identical reports that engine and naive opened to the same value.
	Identical bool
}

// PaillierOpeningKernel measures E14b: the threshold-decryption round the
// offline phase performs per Beaver opening, at committee size n with
// threshold t, under the given dealer key.
func PaillierOpeningKernel(sk *paillier.PrivateKey, n, t, reps int) (*PaillierOpeningRow, error) {
	if reps < 1 {
		reps = 1
	}
	if Metrics != nil {
		modexp.Instrument(Metrics)
	}
	sc, err := tte.NewThreshold(sk)
	if err != nil {
		return nil, err
	}
	pk, shares, err := sc.KeyGen(n, t)
	if err != nil {
		return nil, err
	}
	want := big.NewInt(123456789)
	ct, err := sc.Encrypt(pk, want, big.NewInt(1<<30))
	if err != nil {
		return nil, err
	}
	row := &PaillierOpeningRow{N: n, T: t, Parts: t + 1, Bits: sk.N.BitLen(), Reps: reps}
	measure := func(op func() error) (time.Duration, error) {
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(reps), nil
	}

	speakers := shares[:t+1]
	// Per-partial figures average over the t+1 speakers (share magnitudes
	// differ slightly, so one share would under-represent the round).
	parts := make([]tte.PartialDec, t+1)
	if row.PartialEngine, err = measure(func() error {
		for i, sh := range speakers {
			if parts[i], err = sc.PartialDecrypt(pk, sh, ct); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	row.PartialEngine /= time.Duration(t + 1)
	partsNaive := make([]tte.PartialDec, t+1)
	if row.PartialNaive, err = measure(func() error {
		for i, sh := range speakers {
			if partsNaive[i], err = sc.PartialDecryptNaive(pk, sh, ct); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	row.PartialNaive /= time.Duration(t + 1)

	var openEngine, openNaive *big.Int
	if row.CombineEngine, err = measure(func() error {
		openEngine, err = sc.Combine(pk, ct, parts) //yosolint:vartime benchmark opening of a known test value; partials are public board messages
		return err
	}); err != nil {
		return nil, err
	}
	if row.CombineNaive, err = measure(func() error {
		openNaive, err = sc.CombineNaive(pk, ct, partsNaive) //yosolint:vartime benchmark opening of a known test value; partials are public board messages
		return err
	}); err != nil {
		return nil, err
	}
	row.Identical = openEngine.Cmp(openNaive) == 0 && openEngine.Cmp(want) == 0

	row.RoundEngine = time.Duration(t+1)*row.PartialEngine + row.CombineEngine
	row.RoundNaive = time.Duration(t+1)*row.PartialNaive + row.CombineNaive
	if row.PartialEngine > 0 {
		row.PartialSpeedup = float64(row.PartialNaive) / float64(row.PartialEngine)
	}
	if row.CombineEngine > 0 {
		row.CombineSpeedup = float64(row.CombineNaive) / float64(row.CombineEngine)
	}
	if row.RoundEngine > 0 {
		row.RoundSpeedup = float64(row.RoundNaive) / float64(row.RoundEngine)
	}
	return row, nil
}

// FormatPaillierHotpath renders E14a.
func FormatPaillierHotpath(r *PaillierHotpathRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "modulus %d bits, %d reps, batch %d\n", r.Bits, r.Reps, r.BatchSize)
	fmt.Fprintf(&b, "%-22s %14s %14s %9s\n", "operation", "engine", "naive", "speedup")
	line := func(name string, eng, naive time.Duration, sp float64) {
		fmt.Fprintf(&b, "%-22s %14s %14s %8.1f×\n", name,
			eng.Round(time.Microsecond), naive.Round(time.Microsecond), sp)
	}
	line("encrypt", r.EncEngine, r.EncNaive, r.EncSpeedup)
	line("decrypt", r.DecEngine, r.DecNaive, r.DecSpeedup)
	line("verify EqExp (warm)", r.VerifyEngine, r.VerifyNaive, r.VerifySpeedup)
	fmt.Fprintf(&b, "%-22s %14s %14s %8.1f×   (per ct, %d workers vs 1)\n", "encrypt batch",
		r.BatchParallel.Round(time.Microsecond), r.BatchSerial.Round(time.Microsecond),
		r.BatchSpeedup, Workers)
	fmt.Fprintf(&b, "identical: %v\n", r.Identical)
	return b.String()
}

// FormatPaillierOpening renders E14b.
func FormatPaillierOpening(r *PaillierOpeningRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "committee n=%d t=%d (Δ=n!), modulus %d bits, %d reps\n", r.N, r.T, r.Bits, r.Reps)
	fmt.Fprintf(&b, "%-22s %14s %14s %9s\n", "operation", "engine", "naive", "speedup")
	line := func(name string, eng, naive time.Duration, sp float64) {
		fmt.Fprintf(&b, "%-22s %14s %14s %8.1f×\n", name,
			eng.Round(time.Microsecond), naive.Round(time.Microsecond), sp)
	}
	line("partial decrypt", r.PartialEngine, r.PartialNaive, r.PartialSpeedup)
	line(fmt.Sprintf("combine (%d parts)", r.Parts), r.CombineEngine, r.CombineNaive, r.CombineSpeedup)
	line("opening round", r.RoundEngine, r.RoundNaive, r.RoundSpeedup)
	fmt.Fprintf(&b, "identical: %v\n", r.Identical)
	return b.String()
}
