// Package nizk provides the non-interactive zero-knowledge machinery the
// protocol attaches to every published value.
//
// Two kinds of proofs are provided:
//
//   - Real Fiat–Shamir sigma protocols where a standard 1:1 construction
//     exists: knowledge of a Paillier plaintext (used when roles publish
//     TEnc ciphertexts of their random contributions) and equality of
//     exponents in Z*_{N²} (the Shoup-style partial-decryption proof).
//
//   - Attested proofs for the paper's composite relations (the Re-encrypt /
//     Decrypt relation bundling PKE decryptions, TKRec, TPDec, resharing and
//     n re-encryptions — a Groth–Maller SNARK in the paper). An Authority,
//     created alongside the CRS during trusted setup, issues a constant-size
//     MAC over the statement; only statements the runtime attests as
//     honestly computed verify. This preserves exactly the property the
//     protocol consumes — a publicly checkable, constant-size "this role
//     behaved correctly" bit — at a realistic 192-byte proof size.
//     DESIGN.md records this substitution.
package nizk

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// AttestedProofSize is the modelled constant proof size in bytes
// (a Groth–Maller style SNARK proof plus encoding overhead).
const AttestedProofSize = 192

// Proof is an attested proof blob of constant size.
type Proof struct {
	data [AttestedProofSize]byte
}

// Size returns the proof's wire size.
func (p Proof) Size() int { return AttestedProofSize }

// Bytes returns the proof encoding.
func (p Proof) Bytes() []byte { return p.data[:] }

// ProofFromBytes rebuilds a proof from its encoding.
func ProofFromBytes(data []byte) (Proof, error) {
	var p Proof
	if len(data) != AttestedProofSize {
		return p, fmt.Errorf("nizk: proof must be %d bytes, got %d", AttestedProofSize, len(data))
	}
	copy(p.data[:], data)
	return p, nil
}

// Authority issues and verifies attested proofs. It is part of the trusted
// setup (the CRS analogue for the composite relations) and is shared by all
// honest roles of a protocol run.
type Authority struct {
	key [32]byte
}

// NewAuthority creates a fresh authority with a random MAC key.
func NewAuthority() (*Authority, error) {
	a := &Authority{}
	if _, err := rand.Read(a.key[:]); err != nil {
		return nil, fmt.Errorf("nizk: authority key: %w", err)
	}
	return a, nil
}

// MustNewAuthority is NewAuthority panicking on randomness failure.
func MustNewAuthority() *Authority {
	a, err := NewAuthority()
	if err != nil {
		panic(err)
	}
	return a
}

// Attest issues a proof for the statement. The protocol runtime calls this
// only on behalf of roles that executed the relation honestly; a deviating
// role cannot obtain a verifying proof (knowledge soundness, by fiat of the
// substitution).
func (a *Authority) Attest(statement []byte) Proof {
	var p Proof
	mac := hmac.New(sha256.New, a.key[:])
	mac.Write(statement)
	sum := mac.Sum(nil)
	// Fill the constant-size blob deterministically from the MAC.
	for i := 0; i < AttestedProofSize; i += len(sum) {
		copy(p.data[i:], sum)
		h := sha256.Sum256(sum)
		sum = h[:]
	}
	mac.Reset()
	mac.Write(statement)
	copy(p.data[:32], mac.Sum(nil))
	return p
}

// Forge returns a proof that will not verify — the output of an adversarial
// role that deviated from the relation and tries to publish anyway.
func (a *Authority) Forge() Proof {
	var p Proof
	// A forgery is overwhelmingly unlikely to match the MAC; random bytes
	// model it. Randomness failure degrades to a zero proof, still invalid.
	_, _ = rand.Read(p.data[:])
	return p
}

// Verify checks an attested proof against its statement.
func (a *Authority) Verify(statement []byte, p Proof) bool {
	want := a.Attest(statement)
	return hmac.Equal(want.data[:32], p.data[:32])
}

// ErrBadProof is the generic verification failure.
var ErrBadProof = errors.New("nizk: proof does not verify")

// Statement is a helper for building canonical statement encodings: a
// domain-separated SHA-256 accumulator.
type Statement struct {
	h       []byte
	started bool
}

// NewStatement starts a statement under a domain-separation label.
func NewStatement(label string) *Statement {
	h := sha256.New()
	h.Write([]byte("yosompc/statement/"))
	h.Write([]byte(label))
	return &Statement{h: h.Sum(nil)}
}

// Add mixes a component into the statement.
func (s *Statement) Add(component []byte) *Statement {
	h := sha256.New()
	h.Write(s.h)
	h.Write(component)
	s.h = h.Sum(nil)
	return s
}

// AddString mixes a string component into the statement.
func (s *Statement) AddString(component string) *Statement {
	return s.Add([]byte(component))
}

// Bytes returns the canonical statement digest.
func (s *Statement) Bytes() []byte {
	out := make([]byte, len(s.h))
	copy(out, s.h)
	return out
}
