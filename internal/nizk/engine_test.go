package nizk

import (
	"crypto/rand"
	"math/big"
	"testing"

	"yosompc/internal/modexp"
	"yosompc/internal/paillier"
)

// eqExpInstance builds an honest EqExp statement over Z*_{N²} with the
// given (possibly negative) witness.
func eqExpInstance(t *testing.T, modulus, w *big.Int) (g1, g2, h1, h2 *big.Int) {
	t.Helper()
	square := func() *big.Int {
		r, err := rand.Int(rand.Reader, modulus)
		if err != nil {
			t.Fatalf("sampling base: %v", err)
		}
		r.Mul(r, r)
		r.Mod(r, modulus)
		if r.Sign() == 0 {
			r.SetInt64(4)
		}
		return r
	}
	g1, g2 = square(), square()
	var err error
	if h1, err = modexp.ExpSigned(g1, w, modulus); err != nil {
		t.Fatalf("h1: %v", err)
	}
	if h2, err = modexp.ExpSigned(g2, w, modulus); err != nil {
		t.Fatalf("h2: %v", err)
	}
	return g1, g2, h1, h2
}

// TestVerifyEqExpEngineMatchesNaive pins the engine verification path
// (cached fixed-base g^Z plus the Straus A·h^e fold) to the retained
// naive reference on honest, tampered, and negative-witness proofs.
func TestVerifyEqExpEngineMatchesNaive(t *testing.T) {
	pk := &paillier.FixedTestKey(0).PublicKey
	wBound := new(big.Int).Lsh(big.NewInt(1), 256)
	for _, wc := range []struct {
		name string
		w    *big.Int
	}{
		{"positive", big.NewInt(0xdeadbeef)},
		{"negative", big.NewInt(-0x1337c0de)},
		{"zero", big.NewInt(0)},
	} {
		t.Run(wc.name, func(t *testing.T) {
			g1, g2, h1, h2 := eqExpInstance(t, pk.N2, wc.w)
			proof, err := ProveEqExp(pk.N2, g1, g2, h1, h2, wc.w, wBound)
			if err != nil {
				t.Fatalf("ProveEqExp: %v", err)
			}
			// The engine's fixed-base cache promotes on second use: verify
			// three times so both the cold and the table-served paths run,
			// and every round must agree with the naive verifier.
			for round := 0; round < 3; round++ {
				eng := VerifyEqExp(pk.N2, g1, g2, h1, h2, proof)
				ref := VerifyEqExpNaive(pk.N2, g1, g2, h1, h2, proof)
				if eng != ref {
					t.Fatalf("round %d: engine verdict %v != naive %v", round, eng, ref)
				}
				if !eng {
					t.Fatalf("round %d: honest proof rejected", round)
				}
			}
			bad := &EqExpProof{A1: proof.A1, A2: proof.A2, Z: new(big.Int).Add(proof.Z, big.NewInt(1))}
			if VerifyEqExp(pk.N2, g1, g2, h1, h2, bad) {
				t.Fatal("engine accepted a tampered proof")
			}
			if VerifyEqExpNaive(pk.N2, g1, g2, h1, h2, bad) {
				t.Fatal("naive accepted a tampered proof")
			}
		})
	}
}
