package nizk

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"

	"yosompc/internal/modexp"
	"yosompc/internal/paillier"
)

// Real Fiat–Shamir sigma protocols. Challenges are 128 bits; responses
// carry 80 bits of statistical masking.

const (
	challengeBits = 128
	maskBits      = 80
)

var bigOne = big.NewInt(1)

// PlaintextProof is a proof of knowledge of (m, r) with
// c = (1+N)^m · r^N mod N² — the relation roles prove when publishing
// encryptions of their random contributions (offline Steps 1, 2, 4).
type PlaintextProof struct {
	// A is the prover's commitment (1+N)^x · s^N mod N².
	A *big.Int
	// Zm is the masked plaintext response x + e·m (over the integers).
	Zm *big.Int
	// Zr is the masked nonce response s·r^e mod N.
	Zr *big.Int
}

// Size returns the proof's wire size in bytes.
func (p *PlaintextProof) Size() int {
	return (p.A.BitLen() + p.Zm.BitLen() + p.Zr.BitLen() + 23) / 8
}

// ProvePlaintext proves knowledge of the plaintext m and nonce r of c,
// which must have been produced by pk.EncryptWithNonce(m, r).
func ProvePlaintext(pk *paillier.PublicKey, c *paillier.Ciphertext, m, r *big.Int) (*PlaintextProof, error) {
	// x masks e·m: m < N and e < 2^challengeBits, so x is sampled from
	// [0, N·2^(challengeBits+maskBits)).
	xBound := new(big.Int).Lsh(pk.N, challengeBits+maskBits)
	x, err := rand.Int(rand.Reader, xBound)
	if err != nil {
		return nil, fmt.Errorf("nizk: sampling commitment: %w", err)
	}
	s, err := pk.RandomUnit(rand.Reader)
	if err != nil {
		return nil, err
	}
	// A = (1+N)^x · s^N mod N².
	a := new(big.Int).Mul(new(big.Int).Mod(x, pk.N), pk.N)
	a.Add(a, bigOne)
	a.Mod(a, pk.N2)
	sn := new(big.Int).Exp(s, pk.N, pk.N2)
	a.Mul(a, sn)
	a.Mod(a, pk.N2)

	e := plaintextChallenge(pk, c, a)

	zm := new(big.Int).Mul(e, m)
	zm.Add(zm, x)
	zr := new(big.Int).Exp(r, e, pk.N)
	zr.Mul(zr, s)
	zr.Mod(zr, pk.N)
	return &PlaintextProof{A: a, Zm: zm, Zr: zr}, nil
}

// VerifyPlaintext checks a PlaintextProof: (1+N)^Zm · Zr^N ≡ A · c^e (mod N²).
func VerifyPlaintext(pk *paillier.PublicKey, c *paillier.Ciphertext, proof *PlaintextProof) bool {
	if proof == nil || proof.A == nil || proof.Zm == nil || proof.Zr == nil {
		return false
	}
	if proof.Zm.Sign() < 0 || proof.Zr.Sign() <= 0 || proof.Zr.Cmp(pk.N) >= 0 {
		return false
	}
	// Range check on Zm: at most x_max + e_max·N.
	zmBound := new(big.Int).Lsh(pk.N, challengeBits+maskBits+1)
	if proof.Zm.Cmp(zmBound) > 0 {
		return false
	}
	e := plaintextChallenge(pk, c, proof.A)
	// LHS = (1+N)^Zm · Zr^N.
	lhs := new(big.Int).Mul(new(big.Int).Mod(proof.Zm, pk.N), pk.N)
	lhs.Add(lhs, bigOne)
	lhs.Mod(lhs, pk.N2)
	zrn := new(big.Int).Exp(proof.Zr, pk.N, pk.N2)
	lhs.Mul(lhs, zrn)
	lhs.Mod(lhs, pk.N2)
	// RHS = A · c^e.
	rhs := new(big.Int).Exp(c.C, e, pk.N2)
	rhs.Mul(rhs, proof.A)
	rhs.Mod(rhs, pk.N2)
	return lhs.Cmp(rhs) == 0
}

func plaintextChallenge(pk *paillier.PublicKey, c *paillier.Ciphertext, a *big.Int) *big.Int {
	return challenge("paillier-plaintext", pk.N.Bytes(), c.C.Bytes(), a.Bytes())
}

// EqExpProof proves knowledge of w with h1 = g1^w and h2 = g2^w in Z*_{N²}
// — the Shoup-style relation certifying a partial decryption against a
// verification key.
type EqExpProof struct {
	// A1, A2 are the commitments g1^x, g2^x.
	A1, A2 *big.Int
	// Z is the response x + e·w over the integers.
	Z *big.Int
}

// Size returns the proof's wire size in bytes.
func (p *EqExpProof) Size() int {
	return (p.A1.BitLen() + p.A2.BitLen() + p.Z.BitLen() + 23) / 8
}

// ProveEqExp proves h1 = g1^w ∧ h2 = g2^w (mod modulus). wBound is a public
// upper bound on |w| used to size the masking randomness. Signed witnesses
// are supported (key shares go negative after integer resharing).
func ProveEqExp(modulus, g1, g2, h1, h2, w, wBound *big.Int) (*EqExpProof, error) {
	xBound := new(big.Int).Lsh(wBound, challengeBits+maskBits)
	x, err := rand.Int(rand.Reader, xBound)
	if err != nil {
		return nil, fmt.Errorf("nizk: sampling commitment: %w", err)
	}
	// The bases recur — g1 = c² across a committee's partials for the
	// same ciphertext, g2 = v across the whole run — so the commitments
	// go through the engine's fixed-base table cache.
	a1, err := modexp.ExpCachedSigned(g1, x, modulus)
	if err != nil {
		return nil, err
	}
	a2, err := modexp.ExpCachedSigned(g2, x, modulus)
	if err != nil {
		return nil, err
	}
	e := eqExpChallenge(modulus, g1, g2, h1, h2, a1, a2)
	z := new(big.Int).Mul(e, w)
	z.Add(z, x)
	return &EqExpProof{A1: a1, A2: a2, Z: z}, nil
}

// VerifyEqExp checks an EqExpProof: g^Z ≡ A · h^e (mod modulus) for both
// base/public pairs, with signed Z supported via modular inversion. The
// engine path serves the long g^Z exponentiation from the fixed-base
// table cache (the bases recur exactly as in ProveEqExp) and folds
// A·h^e into one Straus pass; VerifyEqExpNaive keeps the plain
// reference, and both sides compare the same canonical residues, so the
// verdicts — and the intermediate values — are identical.
func VerifyEqExp(modulus, g1, g2, h1, h2 *big.Int, proof *EqExpProof) bool {
	return verifyEqExp(modulus, g1, g2, h1, h2, proof, true)
}

// VerifyEqExpNaive is the retained naive reference for VerifyEqExp: two
// independent exponentiations per pair, no tables. The differential
// tests and the paillier hot-path benchmark pin the engine path to it.
func VerifyEqExpNaive(modulus, g1, g2, h1, h2 *big.Int, proof *EqExpProof) bool {
	return verifyEqExp(modulus, g1, g2, h1, h2, proof, false)
}

func verifyEqExp(modulus, g1, g2, h1, h2 *big.Int, proof *EqExpProof, engine bool) bool {
	if proof == nil || proof.A1 == nil || proof.A2 == nil || proof.Z == nil {
		return false
	}
	e := eqExpChallenge(modulus, g1, g2, h1, h2, proof.A1, proof.A2)
	check := func(g, h, a *big.Int) bool {
		var lhs, rhs *big.Int
		var err error
		if engine {
			lhs, err = modexp.ExpCachedSigned(g, proof.Z, modulus)
			if err != nil {
				return false
			}
			rhs, err = modexp.MultiExp(modulus, []*big.Int{h, a}, []*big.Int{e, bigOne})
			if err != nil {
				return false
			}
		} else {
			lhs, err = modexp.ExpSigned(g, proof.Z, modulus)
			if err != nil {
				return false
			}
			rhs = new(big.Int).Exp(h, e, modulus)
			rhs.Mul(rhs, a)
			rhs.Mod(rhs, modulus)
		}
		return lhs.Cmp(rhs) == 0
	}
	return check(g1, h1, proof.A1) && check(g2, h2, proof.A2)
}

func eqExpChallenge(modulus, g1, g2, h1, h2, a1, a2 *big.Int) *big.Int {
	return challenge("eq-exp", modulus.Bytes(), g1.Bytes(), g2.Bytes(),
		h1.Bytes(), h2.Bytes(), a1.Bytes(), a2.Bytes())
}

// challenge derives a challengeBits-bit Fiat–Shamir challenge.
func challenge(label string, components ...[]byte) *big.Int {
	h := sha256.New()
	h.Write([]byte("yosompc/challenge/"))
	h.Write([]byte(label))
	for _, c := range components {
		var lenBuf [8]byte
		n := len(c)
		for i := 7; i >= 0; i-- {
			lenBuf[i] = byte(n)
			n >>= 8
		}
		h.Write(lenBuf[:])
		h.Write(c)
	}
	sum := h.Sum(nil)
	return new(big.Int).SetBytes(sum[:challengeBits/8])
}
