package nizk

import (
	"encoding"
	"io"
)

// Proof wire format: the raw 192-byte constant-size blob, no framing — the
// enclosing message versions it. See docs/WIRE.md.

// EncodedSize returns the exact encoded length in bytes — constant for the
// attested-proof model.
func (p Proof) EncodedSize() int { return AttestedProofSize }

// MarshalBinary implements encoding.BinaryMarshaler.
func (p Proof) MarshalBinary() ([]byte, error) { return p.Bytes(), nil }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *Proof) UnmarshalBinary(data []byte) error {
	dec, err := ProofFromBytes(data)
	if err != nil {
		return err
	}
	*p = dec
	return nil
}

// WriteTo implements io.WriterTo.
func (p Proof) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(p.data[:])
	return int64(n), err
}

// ReadFrom implements io.ReaderFrom: exactly AttestedProofSize bytes.
func (p *Proof) ReadFrom(r io.Reader) (int64, error) {
	n, err := io.ReadFull(r, p.data[:])
	return int64(n), err
}

var (
	_ encoding.BinaryMarshaler   = Proof{}
	_ encoding.BinaryUnmarshaler = (*Proof)(nil)
	_ io.WriterTo                = Proof{}
	_ io.ReaderFrom              = (*Proof)(nil)
)
