package nizk

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"

	"yosompc/internal/paillier"
)

func TestAttestVerify(t *testing.T) {
	a := MustNewAuthority()
	st := NewStatement("test").AddString("hello").Bytes()
	p := a.Attest(st)
	if !a.Verify(st, p) {
		t.Error("honest proof rejected")
	}
}

func TestAttestWrongStatement(t *testing.T) {
	a := MustNewAuthority()
	st1 := NewStatement("test").AddString("one").Bytes()
	st2 := NewStatement("test").AddString("two").Bytes()
	p := a.Attest(st1)
	if a.Verify(st2, p) {
		t.Error("proof verified against different statement")
	}
}

func TestForgeDoesNotVerify(t *testing.T) {
	a := MustNewAuthority()
	st := NewStatement("test").AddString("target").Bytes()
	for i := 0; i < 8; i++ {
		if a.Verify(st, a.Forge()) {
			t.Fatal("forged proof verified")
		}
	}
}

func TestDistinctAuthoritiesDisagree(t *testing.T) {
	a1 := MustNewAuthority()
	a2 := MustNewAuthority()
	st := NewStatement("test").AddString("x").Bytes()
	if a2.Verify(st, a1.Attest(st)) {
		t.Error("proof from a different authority verified")
	}
}

func TestProofSerializationRoundTrip(t *testing.T) {
	a := MustNewAuthority()
	st := NewStatement("test").AddString("serialize").Bytes()
	p := a.Attest(st)
	p2, err := ProofFromBytes(p.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Verify(st, p2) {
		t.Error("round-tripped proof rejected")
	}
	if _, err := ProofFromBytes([]byte{1, 2, 3}); err == nil {
		t.Error("accepted short proof encoding")
	}
}

func TestProofConstantSize(t *testing.T) {
	a := MustNewAuthority()
	small := a.Attest([]byte("s"))
	large := a.Attest(bytes.Repeat([]byte("x"), 10000))
	if small.Size() != AttestedProofSize || large.Size() != AttestedProofSize {
		t.Errorf("sizes %d, %d; want constant %d", small.Size(), large.Size(), AttestedProofSize)
	}
}

func TestStatementOrderSensitive(t *testing.T) {
	s1 := NewStatement("l").AddString("a").AddString("b").Bytes()
	s2 := NewStatement("l").AddString("b").AddString("a").Bytes()
	if bytes.Equal(s1, s2) {
		t.Error("statement digest insensitive to component order")
	}
	s3 := NewStatement("other").AddString("a").AddString("b").Bytes()
	if bytes.Equal(s1, s3) {
		t.Error("statement digest insensitive to label")
	}
}

func TestPlaintextProofHonest(t *testing.T) {
	sk := paillier.FixedTestKey(2)
	pk := &sk.PublicKey
	m := big.NewInt(123456789)
	r, err := pk.RandomUnit(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pk.EncryptWithNonce(m, r)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := ProvePlaintext(pk, c, m, r)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyPlaintext(pk, c, proof) {
		t.Error("honest plaintext proof rejected")
	}
}

func TestPlaintextProofWrongCiphertext(t *testing.T) {
	sk := paillier.FixedTestKey(2)
	pk := &sk.PublicKey
	m := big.NewInt(42)
	r, err := pk.RandomUnit(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pk.EncryptWithNonce(m, r)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := ProvePlaintext(pk, c, m, r)
	if err != nil {
		t.Fatal(err)
	}
	other, err := pk.Encrypt(rand.Reader, big.NewInt(43))
	if err != nil {
		t.Fatal(err)
	}
	if VerifyPlaintext(pk, other, proof) {
		t.Error("proof verified against a different ciphertext")
	}
}

func TestPlaintextProofTampered(t *testing.T) {
	sk := paillier.FixedTestKey(2)
	pk := &sk.PublicKey
	m := big.NewInt(7)
	r, err := pk.RandomUnit(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pk.EncryptWithNonce(m, r)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := ProvePlaintext(pk, c, m, r)
	if err != nil {
		t.Fatal(err)
	}
	tampered := &PlaintextProof{
		A:  proof.A,
		Zm: new(big.Int).Add(proof.Zm, big.NewInt(1)),
		Zr: proof.Zr,
	}
	if VerifyPlaintext(pk, c, tampered) {
		t.Error("tampered proof verified")
	}
	if VerifyPlaintext(pk, c, nil) {
		t.Error("nil proof verified")
	}
	if VerifyPlaintext(pk, c, &PlaintextProof{A: proof.A, Zm: big.NewInt(-1), Zr: proof.Zr}) {
		t.Error("negative Zm accepted")
	}
	huge := new(big.Int).Lsh(pk.N, 512)
	if VerifyPlaintext(pk, c, &PlaintextProof{A: proof.A, Zm: huge, Zr: proof.Zr}) {
		t.Error("out-of-range Zm accepted")
	}
}

func TestPlaintextProofSize(t *testing.T) {
	sk := paillier.FixedTestKey(2)
	pk := &sk.PublicKey
	m := big.NewInt(1)
	r, err := pk.RandomUnit(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pk.EncryptWithNonce(m, r)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := ProvePlaintext(pk, c, m, r)
	if err != nil {
		t.Fatal(err)
	}
	if proof.Size() <= 0 {
		t.Error("non-positive proof size")
	}
}

func TestEqExpProofHonest(t *testing.T) {
	// Shoup-style setting: modulus N², bases c^4 and v, witness Δ·d_i.
	sk := paillier.FixedTestKey(2)
	mod := sk.N2
	g1 := big.NewInt(12345)
	g1.Exp(g1, big.NewInt(2), mod) // square → in QR
	g2 := big.NewInt(67890)
	g2.Exp(g2, big.NewInt(2), mod)
	w := big.NewInt(987654321)
	h1 := new(big.Int).Exp(g1, w, mod)
	h2 := new(big.Int).Exp(g2, w, mod)
	proof, err := ProveEqExp(mod, g1, g2, h1, h2, w, big.NewInt(1_000_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyEqExp(mod, g1, g2, h1, h2, proof) {
		t.Error("honest eq-exp proof rejected")
	}
}

func TestEqExpProofUnequalExponents(t *testing.T) {
	sk := paillier.FixedTestKey(2)
	mod := sk.N2
	g1 := new(big.Int).Exp(big.NewInt(3), big.NewInt(2), mod)
	g2 := new(big.Int).Exp(big.NewInt(5), big.NewInt(2), mod)
	w := big.NewInt(1111)
	h1 := new(big.Int).Exp(g1, w, mod)
	// h2 uses a DIFFERENT exponent — the claim is false.
	h2 := new(big.Int).Exp(g2, big.NewInt(2222), mod)
	proof, err := ProveEqExp(mod, g1, g2, h1, h2, w, big.NewInt(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if VerifyEqExp(mod, g1, g2, h1, h2, proof) {
		t.Error("proof of a false eq-exp statement verified")
	}
}

func TestEqExpProofTampered(t *testing.T) {
	sk := paillier.FixedTestKey(2)
	mod := sk.N2
	g1 := new(big.Int).Exp(big.NewInt(3), big.NewInt(2), mod)
	g2 := new(big.Int).Exp(big.NewInt(5), big.NewInt(2), mod)
	w := big.NewInt(77)
	h1 := new(big.Int).Exp(g1, w, mod)
	h2 := new(big.Int).Exp(g2, w, mod)
	proof, err := ProveEqExp(mod, g1, g2, h1, h2, w, big.NewInt(100))
	if err != nil {
		t.Fatal(err)
	}
	bad := &EqExpProof{A1: proof.A1, A2: proof.A2, Z: new(big.Int).Add(proof.Z, big.NewInt(1))}
	if VerifyEqExp(mod, g1, g2, h1, h2, bad) {
		t.Error("tampered eq-exp proof verified")
	}
	if VerifyEqExp(mod, g1, g2, h1, h2, nil) {
		t.Error("nil proof verified")
	}
}

func BenchmarkAttest(b *testing.B) {
	a := MustNewAuthority()
	st := NewStatement("bench").AddString("x").Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Attest(st)
	}
}

func BenchmarkVerifyPlaintext(b *testing.B) {
	sk := paillier.FixedTestKey(2)
	pk := &sk.PublicKey
	m := big.NewInt(5)
	r, err := pk.RandomUnit(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	c, err := pk.EncryptWithNonce(m, r)
	if err != nil {
		b.Fatal(err)
	}
	proof, err := ProvePlaintext(pk, c, m, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !VerifyPlaintext(pk, c, proof) {
			b.Fatal("proof rejected")
		}
	}
}
