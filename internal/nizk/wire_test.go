package nizk

import (
	"bytes"
	"testing"
)

// TestProofEncodedSize pins the constant proof size model against the
// actual encoding.
func TestProofEncodedSize(t *testing.T) {
	var p Proof
	if p.EncodedSize() != AttestedProofSize {
		t.Fatalf("Proof.EncodedSize = %d, want %d", p.EncodedSize(), AttestedProofSize)
	}
	enc, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != p.EncodedSize() {
		t.Fatalf("Proof encoded to %d bytes, EncodedSize says %d", len(enc), p.EncodedSize())
	}
}

// FuzzProofRoundTrip feeds arbitrary bytes through the Proof decoders:
// only exact-size inputs are accepted, and accepted inputs round-trip
// identically through both the buffer and stream codecs.
func FuzzProofRoundTrip(f *testing.F) {
	f.Add(make([]byte, AttestedProofSize))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Proof
		if err := p.UnmarshalBinary(data); err != nil {
			if len(data) == AttestedProofSize {
				t.Fatalf("exact-size input rejected: %v", err)
			}
			return
		}
		if len(data) != AttestedProofSize {
			t.Fatalf("decoder accepted %d bytes, want exactly %d", len(data), AttestedProofSize)
		}
		enc, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("round trip changed bytes")
		}
		var sp Proof
		if _, err := sp.ReadFrom(bytes.NewReader(data)); err != nil {
			t.Fatalf("stream decoder rejected exact-size input: %v", err)
		}
		var out bytes.Buffer
		if _, err := sp.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("stream round trip changed bytes")
		}
	})
}
