// Package monitor derives protocol progress from the public bulletin
// board alone. YOSO's role-speaks-once discipline makes this exact rather
// than heuristic: every committee announces its expected speakers in a
// manifest (transport.Manifest, posted under comm.PhaseSystem before the
// committee speaks), every member posts as "committee/index" exactly once,
// and committees speak in sequential steps — so completion fractions,
// missing-speaker sets, straggler wait times, and the §5.4 fail-stop
// margin (missing speakers vs the n−quorum the reconstruction tolerates)
// are all readable off the board, with no in-process hooks.
//
// A Monitor ingests transport entries from any source: an in-process
// transport.Board (AttachBoard), a remote boardd stream (RunTail), a
// one-shot dump (transport.Fetch + Ingest), or a server-side observer
// (transport.Server.Observe). All timing is board time — the receive
// stamps entries carry — so a monitor tailing a remote board needs no
// clock of its own.
package monitor

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"yosompc/internal/comm"
	"yosompc/internal/telemetry"
	"yosompc/internal/transport"
)

// Monitor is the board-derived protocol-progress engine. It is safe for
// concurrent use; a nil *Monitor ignores all calls, so wiring one in is
// zero-cost when monitoring is off.
type Monitor struct {
	mu         sync.Mutex
	committees map[string]*committee // keyed proc + "\x00" + name
	order      []*committee          // registration order
	current    map[string]*committee // per-proc committee currently speaking
	infra      map[string]*infraState
	infraOrder []*infraState
	lastUS     int64 // board-clock time of the latest entry seen
	entries    int64
	manifests  int64
	bytes      int64
	unexpected int64 // speaker-shaped posts with no registered committee

	// Telemetry instruments; nil (no-op) until Instrument is called.
	entriesC    *telemetry.Counter // monitor.entries
	manifestsC  *telemetry.Counter // monitor.manifests
	bytesC      *telemetry.Counter // monitor.bytes
	committeesG *telemetry.Gauge   // monitor.committees
	settledG    *telemetry.Gauge   // monitor.committees_settled
	expectedG   *telemetry.Gauge   // monitor.speakers_expected
	postedG     *telemetry.Gauge   // monitor.speakers_posted
	stragglersG *telemetry.Gauge   // monitor.stragglers
	marginG     *telemetry.Gauge   // monitor.failstop_margin_min
}

// committee is the state machine node for one (proc, committee) pair.
type committee struct {
	proc    string
	name    string
	phase   string
	n       int
	quorum  int
	posted  map[int]*speaker
	firstUS int64 // board time of the committee's first speech
	lastUS  int64 // board time of its latest speech
	bytes   int64
	posts   int64
	settled bool // a later committee of the same proc began speaking
}

// speaker records one member's observed posts (a role may post payload
// plus proof in its single speech slot — one speech, possibly several
// board entries).
type speaker struct {
	firstUS int64
	bytes   int64
	posts   int64
}

// infraState aggregates non-committee posters (setup, setup-dealer,
// role-assignment, client/N) by proc and name class.
type infraState struct {
	proc  string
	class string
	posts int64
	bytes int64
}

// New returns an empty monitor.
func New() *Monitor {
	return &Monitor{
		committees: map[string]*committee{},
		current:    map[string]*committee{},
		infra:      map[string]*infraState{},
	}
}

// Instrument registers the monitor's metrics on reg:
//
//	monitor.entries             counter  entries ingested
//	monitor.manifests           counter  committee manifests seen
//	monitor.bytes               counter  payload bytes ingested
//	monitor.committees          gauge    committees registered
//	monitor.committees_settled  gauge    committees confirmed finished
//	monitor.speakers_expected   gauge    Σ manifest n
//	monitor.speakers_posted     gauge    Σ distinct posted speakers
//	monitor.stragglers          gauge    missing speakers of active committees
//	monitor.failstop_margin_min gauge    min (tolerated − missing) over active committees
//
// A nil registry (or nil monitor) is a no-op.
func (m *Monitor) Instrument(reg *telemetry.Registry) {
	if m == nil || reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entriesC = reg.Counter("monitor.entries")
	m.manifestsC = reg.Counter("monitor.manifests")
	m.bytesC = reg.Counter("monitor.bytes")
	m.committeesG = reg.Gauge("monitor.committees")
	m.settledG = reg.Gauge("monitor.committees_settled")
	m.expectedG = reg.Gauge("monitor.speakers_expected")
	m.postedG = reg.Gauge("monitor.speakers_posted")
	m.stragglersG = reg.Gauge("monitor.stragglers")
	m.marginG = reg.Gauge("monitor.failstop_margin_min")
}

// key returns the committee map key: committees are disambiguated by the
// posting process so two runs mirroring into one boardd never merge.
func key(proc, name string) string { return proc + "\x00" + name }

// speakerOf splits a committee-member role name "committee/idx". The
// committee part may itself contain slashes; the index is the last
// segment.
func speakerOf(from string) (string, int, bool) {
	i := strings.LastIndexByte(from, '/')
	if i <= 0 || i == len(from)-1 {
		return "", 0, false
	}
	idx, err := strconv.Atoi(from[i+1:])
	if err != nil || idx <= 0 {
		return "", 0, false
	}
	return from[:i], idx, true
}

// Ingest feeds one board entry through the state machine. Entries must
// arrive in a consistent per-board order (sequence order); feeding the
// same board twice double-counts.
func (m *Monitor) Ingest(e transport.Entry) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries++
	m.bytes += int64(e.Size)
	m.entriesC.Inc()
	m.bytesC.Add(int64(e.Size))
	when := e.Trace.RecvUS
	if when > m.lastUS {
		m.lastUS = when
	}
	proc := e.Trace.Proc

	if e.Category == string(comm.CatManifest) {
		var man transport.Manifest
		if err := man.UnmarshalBinary(e.Payload); err == nil {
			k := key(proc, man.Committee)
			if _, dup := m.committees[k]; !dup {
				c := &committee{
					proc:   proc,
					name:   man.Committee,
					phase:  man.Phase,
					n:      man.N,
					quorum: man.Quorum,
					posted: map[int]*speaker{},
				}
				m.committees[k] = c
				m.order = append(m.order, c)
			}
			m.manifests++
			m.manifestsC.Inc()
		}
		m.export()
		return
	}

	if name, idx, ok := speakerOf(e.From); ok {
		if c := m.committees[key(proc, name)]; c != nil && idx >= 1 && idx <= c.n {
			sp := c.posted[idx]
			if sp == nil {
				sp = &speaker{firstUS: when}
				c.posted[idx] = sp
			}
			sp.posts++
			sp.bytes += int64(e.Size)
			c.posts++
			c.bytes += int64(e.Size)
			if c.firstUS == 0 || when < c.firstUS {
				c.firstUS = when
			}
			if when > c.lastUS {
				c.lastUS = when
			}
			// Committee steps run sequentially: once a different committee
			// of the same process starts speaking, the previous one has
			// had its turn — its missing members are confirmed fail-stops,
			// not stragglers.
			if prev := m.current[proc]; prev != nil && prev != c {
				prev.settled = true
			}
			m.current[proc] = c
			m.export()
			return
		}
		if c := m.committees[key(proc, name)]; c == nil && !isInfraFrom(e.From) {
			m.unexpected++
		}
	}

	// Non-committee poster: setup, dealer, role assignment, clients.
	class := e.From
	if i := strings.IndexByte(class, '/'); i > 0 {
		class = class[:i]
	}
	ik := key(proc, class)
	st := m.infra[ik]
	if st == nil {
		st = &infraState{proc: proc, class: class}
		m.infra[ik] = st
		m.infraOrder = append(m.infraOrder, st)
	}
	st.posts++
	st.bytes += int64(e.Size)
	m.export()
}

// isInfraFrom reports whether a slash-bearing From is a known
// infrastructure poster rather than an unregistered committee member.
func isInfraFrom(from string) bool {
	return strings.HasPrefix(from, "client/")
}

// export updates the registered gauges; callers hold m.mu.
func (m *Monitor) export() {
	if m.committeesG == nil {
		return
	}
	var settled, expected, posted, stragglers int64
	minMargin := int64(1<<63 - 1)
	for _, c := range m.order {
		expected += int64(c.n)
		posted += int64(len(c.posted))
		if c.settled {
			settled++
		}
		if c.settled || len(c.posted) > 0 {
			missing := int64(c.n - len(c.posted))
			stragglers += missing
			if margin := int64(c.n-c.quorum) - missing; margin < minMargin {
				minMargin = margin
			}
		}
	}
	m.committeesG.Set(int64(len(m.order)))
	m.settledG.Set(settled)
	m.expectedG.Set(expected)
	m.postedG.Set(posted)
	m.stragglersG.Set(stragglers)
	if minMargin != 1<<63-1 {
		m.marginG.Set(minMargin)
	}
}

// AttachBoard subscribes the monitor to an in-process board: every posting
// is converted to its entry form and ingested synchronously.
func (m *Monitor) AttachBoard(b *transport.Board) {
	if m == nil || b == nil {
		return
	}
	b.Observe(func(p transport.Posting) {
		m.Ingest(transport.Entry{
			Seq:      p.Seq,
			From:     p.From,
			Phase:    string(p.Phase),
			Category: string(p.Category),
			Trace:    p.Trace,
			Size:     p.Size,
			Payload:  p.Bytes,
		})
	})
}

// AttachServer subscribes the monitor to a board server's accepted posts —
// the hook boardd's own /progress endpoint uses.
func (m *Monitor) AttachServer(s *transport.Server) {
	if m == nil || s == nil {
		return
	}
	s.Observe(func(e transport.Entry) { m.Ingest(e) })
}

// RunTail streams a remote board into the monitor from sequence `since`.
// The returned stop function ends the stream, waits for the ingest
// goroutine, and reports how the stream terminated (nil after a clean
// close or voluntary stop).
func (m *Monitor) RunTail(addr string, since int) (func() error, error) {
	entries, closer, err := transport.Tail(addr, since)
	if err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Terminates when the tail stream closes its channel.
		for e := range entries {
			m.Ingest(e)
		}
	}()
	return func() error {
		err := closer()
		<-done
		return err
	}, nil
}

// sortedInfra returns the infra groups in deterministic order.
func (m *Monitor) sortedInfra() []*infraState {
	out := make([]*infraState, len(m.infraOrder))
	copy(out, m.infraOrder)
	sort.Slice(out, func(i, j int) bool {
		if out[i].proc != out[j].proc {
			return out[i].proc < out[j].proc
		}
		return out[i].class < out[j].class
	})
	return out
}
