package monitor

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yosompc/internal/transport"
)

// stampedEntry builds a board entry carrying a poster/receiver stamp pair.
func stampedEntry(proc string, seq int, postUS, recvUS int64) transport.Entry {
	return transport.Entry{
		Seq:      seq,
		From:     "offB1/1",
		Phase:    "offline",
		Category: "beaver-triples",
		Trace:    transport.TraceContext{Proc: proc, Span: uint64(seq), PostUS: postUS, RecvUS: recvUS},
		Size:     4,
		Payload:  []byte{1, 2, 3, 4},
	}
}

func TestClockOffsetMedian(t *testing.T) {
	entries := []transport.Entry{
		stampedEntry("a", 0, 100, 150), // delta 50
		stampedEntry("a", 1, 200, 290), // delta 90
		stampedEntry("a", 2, 300, 370), // delta 70
		stampedEntry("b", 3, 100, 95),  // proc b, negative skew
	}
	off, ok := clockOffset(entries, "a")
	if !ok || off != 70 {
		t.Errorf("offset(a) = %d, %v; want median 70", off, ok)
	}
	off, ok = clockOffset(entries, "b")
	if !ok || off != -5 {
		t.Errorf("offset(b) = %d, %v; want -5", off, ok)
	}
	if _, ok := clockOffset(entries, "c"); ok {
		t.Error("offset for unseen proc should report no samples")
	}
}

func TestMergeTracesAligns(t *testing.T) {
	// Board clock is the reference. Proc a's clock runs 1000µs behind the
	// board (offset +1000); proc b's runs 500µs ahead (offset −500).
	entries := []transport.Entry{
		stampedEntry("a", 0, 9000, 10000),
		stampedEntry("b", 1, 11500, 11000),
		stampedEntry("a", 2, 11000, 12000),
	}
	procs := []ProcessTrace{
		{Proc: "a", EpochUS: 8000, Events: []Event{
			{Name: "offline", Ph: "X", Ts: 500, Dur: 3000, Tid: 1},
		}},
		{Proc: "b", EpochUS: 11200, Events: []Event{
			{Name: "offline", Ph: "X", Ts: 100, Dur: 200, Tid: 1},
		}},
	}
	mt, err := MergeTraces(entries, procs)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Offsets["a"] != 1000 || mt.Offsets["b"] != -500 {
		t.Fatalf("offsets = %v", mt.Offsets)
	}
	if err := mt.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Aligned board time of proc a's span start: 8000+500+1000 = 9500,
	// which is also the earliest instant on the merged timeline (base), so
	// its merged ts is 0. Board entry 0 lands at 10000−9500 = 500.
	var aSpan, bSpan *Event
	var boardTs []int64
	for i := range mt.Events {
		ev := &mt.Events[i]
		if ev.Ph == "X" && ev.Pid == 1 {
			aSpan = ev
		}
		if ev.Ph == "X" && ev.Pid == 2 {
			bSpan = ev
		}
		if ev.Ph == "i" && ev.Pid == 0 {
			boardTs = append(boardTs, ev.Ts)
		}
	}
	if aSpan == nil || aSpan.Ts != 0 {
		t.Errorf("proc a span = %+v, want ts 0", aSpan)
	}
	// Proc b span: 11200+100−500−9500 = 1300.
	if bSpan == nil || bSpan.Ts != 1300 {
		t.Errorf("proc b span = %+v, want ts 1300", bSpan)
	}
	want := []int64{500, 1500, 2500}
	if len(boardTs) != 3 || boardTs[0] != want[0] || boardTs[1] != want[1] || boardTs[2] != want[2] {
		t.Errorf("board instants = %v, want %v", boardTs, want)
	}
}

func TestMergeTracesFailureModes(t *testing.T) {
	entries := []transport.Entry{stampedEntry("a", 0, 100, 150)}
	if _, err := MergeTraces(entries, nil); err == nil {
		t.Error("empty proc list should fail")
	}
	if _, err := MergeTraces(entries, []ProcessTrace{{Proc: ""}}); err == nil {
		t.Error("unnamed trace should fail")
	}
	if _, err := MergeTraces(entries, []ProcessTrace{{Proc: "a", EpochUS: 1}, {Proc: "a", EpochUS: 1}}); err == nil {
		t.Error("duplicate proc should fail")
	}
	if _, err := MergeTraces(entries, []ProcessTrace{{Proc: "ghost", EpochUS: 1}}); err == nil {
		t.Error("proc with no board samples should fail")
	}
}

func TestValidateCatchesBadDocuments(t *testing.T) {
	good := func() *MergedTrace {
		return &MergedTrace{Events: []Event{
			{Name: "process_name", Ph: "M", Pid: 0, Args: map[string]any{"name": "board"}},
			{Name: "post", Ph: "i", Ts: 10, Pid: 0, S: "t"},
			{Name: "post", Ph: "i", Ts: 20, Pid: 0, S: "t"},
		}}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good doc rejected: %v", err)
	}
	bad := good()
	bad.Events[2].Ts = 5
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "monotone") {
		t.Errorf("non-monotone board lane not caught: %v", err)
	}
	bad = good()
	bad.Events[1].Ph = "Q"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "unknown phase kind") {
		t.Errorf("unknown kind not caught: %v", err)
	}
	bad = good()
	bad.Events[1].Ts = -3
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative ts not caught: %v", err)
	}
	bad = good()
	bad.Events[1].Pid = 7
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "process_name") {
		t.Errorf("unnamed lane not caught: %v", err)
	}
}

func TestReadTraceFileAndWriteFile(t *testing.T) {
	dir := t.TempDir()
	// A trace exported by a proc-attributed tracer.
	doc := map[string]any{
		"traceEvents": []Event{{Name: "offline", Ph: "X", Ts: 5, Dur: 10, Pid: 1, Tid: 1}},
		"metadata":    map[string]any{"proc": "a", "epoch_us": 8000},
	}
	raw, _ := json.Marshal(doc)
	path := filepath.Join(dir, "a.trace.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	pt, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Proc != "a" || pt.EpochUS != 8000 || len(pt.Events) != 1 {
		t.Fatalf("parsed = %+v", pt)
	}
	// Unattributed traces are rejected with a pointer to the fix.
	bare, _ := json.Marshal(map[string]any{"traceEvents": []Event{}})
	barePath := filepath.Join(dir, "bare.trace.json")
	os.WriteFile(barePath, bare, 0o644)
	if _, err := ReadTraceFile(barePath); err == nil || !strings.Contains(err.Error(), "SetProc") {
		t.Errorf("unattributed trace: %v", err)
	}

	entries := []transport.Entry{stampedEntry("a", 0, 9000, 10000)}
	mt, err := MergeTraces(entries, []ProcessTrace{pt})
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "merged.trace.json")
	if err := mt.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []Event        `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("merged doc is not JSON: %v", err)
	}
	if parsed.Metadata["merged"] != true {
		t.Errorf("metadata = %v", parsed.Metadata)
	}
	if len(parsed.TraceEvents) < 3 {
		t.Errorf("merged events = %+v", parsed.TraceEvents)
	}
	// WriteFile refuses to persist an invalid document.
	badDoc := &MergedTrace{Events: []Event{{Name: "x", Ph: "Q"}}}
	if err := badDoc.WriteFile(filepath.Join(dir, "bad.json")); err == nil {
		t.Error("invalid doc written without error")
	}

	var buf bytes.Buffer
	if _, err := mt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("WriteTo output is not valid JSON")
	}
}
