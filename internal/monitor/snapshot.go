package monitor

import (
	"fmt"
	"io"
	"strings"
)

// Snapshot is the monitor's point-in-time progress document — the JSON
// body of the /progress endpoint (docs/OBSERVABILITY.md documents the
// schema). All times are board-clock Unix microseconds.
type Snapshot struct {
	// BoardUS is the receive stamp of the latest entry seen.
	BoardUS int64 `json:"board_us"`
	// Entries and Bytes count everything ingested, manifests included.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Expected and Posted sum speakers over all registered committees;
	// Fraction is Posted/Expected and Complete is Fraction == 1.
	Expected int     `json:"expected"`
	Posted   int     `json:"posted"`
	Fraction float64 `json:"fraction"`
	Complete bool    `json:"complete"`
	// MarginMin is the tightest fail-stop margin over committees that
	// have started (or finished) speaking: tolerated − missing, where
	// tolerated = n − quorum. Negative means some committee has lost more
	// speakers than reconstruction tolerates. Nil until a committee
	// speaks.
	MarginMin *int `json:"margin_min,omitempty"`
	// Unexpected counts speaker-shaped posts with no registered
	// committee — a manifest gap or a misbehaving poster.
	Unexpected int64 `json:"unexpected,omitempty"`

	Phases     []PhaseProgress   `json:"phases,omitempty"`
	Committees []CommitteeStatus `json:"committees,omitempty"`
	Infra      []InfraStatus     `json:"infra,omitempty"`
}

// PhaseProgress aggregates the committees whose speeches belong to one
// protocol phase, in first-manifest order.
type PhaseProgress struct {
	Phase    string  `json:"phase"`
	Expected int     `json:"expected"`
	Posted   int     `json:"posted"`
	Fraction float64 `json:"fraction"`
	Complete bool    `json:"complete"`
}

// CommitteeStatus is one committee's progress.
type CommitteeStatus struct {
	// Proc is the posting process ("" for a single-board run).
	Proc      string `json:"proc,omitempty"`
	Committee string `json:"committee"`
	Phase     string `json:"phase"`
	N         int    `json:"n"`
	Quorum    int    `json:"quorum"`
	Posted    int    `json:"posted"`
	// Tolerated is the fail-stop budget n − quorum; Margin is
	// Tolerated − len(Missing), meaningful once the committee is active.
	Tolerated int `json:"tolerated"`
	Margin    int `json:"margin"`
	// Active means at least one member has spoken; Settled means a later
	// committee of the same process began speaking, so missing members
	// are confirmed fail-stops rather than stragglers.
	Active  bool `json:"active"`
	Settled bool `json:"settled"`
	// Missing lists expected speakers not yet seen. While the committee
	// is active but unsettled they are also reported as Stragglers with
	// the time the board has been waiting on them.
	Missing    []string    `json:"missing,omitempty"`
	Stragglers []Straggler `json:"stragglers,omitempty"`
	Bytes      int64       `json:"bytes"`
	Posts      int64       `json:"posts"`
	FirstUS    int64       `json:"first_us,omitempty"`
	LastUS     int64       `json:"last_us,omitempty"`
	// RateBps is the committee's posting throughput (bytes per second)
	// over its active window, 0 when the window is a single instant.
	RateBps float64 `json:"rate_bps,omitempty"`
}

// Straggler is one expected speaker the board is still waiting on.
type Straggler struct {
	Role string `json:"role"`
	// WaitUS is board time elapsed between the committee starting to
	// speak and the latest entry seen — how long the role has kept the
	// protocol waiting.
	WaitUS int64 `json:"wait_us"`
}

// InfraStatus aggregates a non-committee poster class (setup,
// setup-dealer, role-assignment, client).
type InfraStatus struct {
	Proc  string `json:"proc,omitempty"`
	Class string `json:"class"`
	Posts int64  `json:"posts"`
	Bytes int64  `json:"bytes"`
}

// Snapshot renders the current state. A nil monitor returns the zero
// snapshot.
func (m *Monitor) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s.BoardUS = m.lastUS
	s.Entries = m.entries
	s.Bytes = m.bytes
	s.Unexpected = m.unexpected

	phaseIdx := map[string]int{}
	for _, c := range m.order {
		posted := len(c.posted)
		cs := CommitteeStatus{
			Proc:      c.proc,
			Committee: c.name,
			Phase:     c.phase,
			N:         c.n,
			Quorum:    c.quorum,
			Posted:    posted,
			Tolerated: c.n - c.quorum,
			Margin:    c.n - c.quorum - (c.n - posted),
			Active:    posted > 0,
			Settled:   c.settled,
			Bytes:     c.bytes,
			Posts:     c.posts,
			FirstUS:   c.firstUS,
			LastUS:    c.lastUS,
		}
		if window := c.lastUS - c.firstUS; window > 0 {
			cs.RateBps = float64(c.bytes) / (float64(window) / 1e6)
		}
		for i := 1; i <= c.n; i++ {
			if c.posted[i] == nil {
				cs.Missing = append(cs.Missing, fmt.Sprintf("%s/%d", c.name, i))
			}
		}
		if cs.Active && !cs.Settled {
			wait := m.lastUS - c.firstUS
			for _, role := range cs.Missing {
				cs.Stragglers = append(cs.Stragglers, Straggler{Role: role, WaitUS: wait})
			}
		}
		if cs.Active || cs.Settled {
			if s.MarginMin == nil || cs.Margin < *s.MarginMin {
				margin := cs.Margin
				s.MarginMin = &margin
			}
		}
		s.Expected += c.n
		s.Posted += posted

		pi, ok := phaseIdx[c.phase]
		if !ok {
			pi = len(s.Phases)
			phaseIdx[c.phase] = pi
			s.Phases = append(s.Phases, PhaseProgress{Phase: c.phase})
		}
		s.Phases[pi].Expected += c.n
		s.Phases[pi].Posted += posted

		s.Committees = append(s.Committees, cs)
	}
	for i := range s.Phases {
		p := &s.Phases[i]
		if p.Expected > 0 {
			p.Fraction = float64(p.Posted) / float64(p.Expected)
		}
		p.Complete = p.Posted == p.Expected && p.Expected > 0
	}
	if s.Expected > 0 {
		s.Fraction = float64(s.Posted) / float64(s.Expected)
	}
	s.Complete = s.Expected > 0 && s.Posted == s.Expected
	for _, st := range m.sortedInfra() {
		s.Infra = append(s.Infra, InfraStatus{Proc: st.proc, Class: st.class, Posts: st.posts, Bytes: st.bytes})
	}
	return s
}

// bar renders a fixed-width completion bar.
func bar(fraction float64, width int) string {
	filled := int(fraction * float64(width))
	if filled > width {
		filled = width
	}
	return strings.Repeat("█", filled) + strings.Repeat("░", width-filled)
}

// WriteText renders the snapshot as the live terminal view used by
// yosowatch and yosompc -monitor.
func (s Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "progress %5.1f%%  speakers %d/%d  entries %d  bytes %d",
		100*s.Fraction, s.Posted, s.Expected, s.Entries, s.Bytes)
	if s.MarginMin != nil {
		fmt.Fprintf(w, "  min-margin %d", *s.MarginMin)
	}
	fmt.Fprintln(w)
	for _, p := range s.Phases {
		fmt.Fprintf(w, "  %-8s %s %4d/%-4d\n", p.Phase, bar(p.Fraction, 20), p.Posted, p.Expected)
	}
	for _, c := range s.Committees {
		state := "forming"
		switch {
		case c.Settled && c.Posted == c.N:
			state = "done"
		case c.Settled:
			state = fmt.Sprintf("done, %d fail-stopped", len(c.Missing))
		case c.Active:
			state = "speaking"
		}
		name := c.Committee
		if c.Proc != "" {
			name = c.Proc + ":" + c.Committee
		}
		fmt.Fprintf(w, "  %-22s %3d/%-3d margin %+d  %s\n", name, c.Posted, c.N, c.Margin, state)
		for _, st := range c.Stragglers {
			fmt.Fprintf(w, "    waiting on %-18s %8.1f ms\n", st.Role, float64(st.WaitUS)/1e3)
		}
	}
	for _, inf := range s.Infra {
		name := inf.Class
		if inf.Proc != "" {
			name = inf.Proc + ":" + inf.Class
		}
		fmt.Fprintf(w, "  %-22s %3d posts, %d B\n", name, inf.Posts, inf.Bytes)
	}
}
