package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"yosompc/internal/transport"
)

// Cross-process trace correlation: each process exports a Chrome trace
// whose timestamps are offsets from its own tracer epoch, on its own
// clock. The board provides the shared timeline — every entry carries the
// poster's send time (poster clock) and the board's receive time (board
// clock), so the per-process clock offset to the board is estimated as
// the median of RecvUS − PostUS over that process's posts, and every
// process's spans can be shifted onto board time. The merged document
// carries the board's own lane (instant events per entry) plus one
// process lane per input trace.

// Event is one Chrome trace_event record — the exported counterpart of
// the telemetry package's internal event type, shaped for reading trace
// files back and writing merged ones.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ProcessTrace is one process's parsed Chrome trace plus the metadata a
// process-attributed tracer stamps (telemetry.Tracer.SetProc): the process
// name and the tracer epoch in poster-clock Unix microseconds.
type ProcessTrace struct {
	Proc    string
	EpochUS int64
	Events  []Event
}

// ReadTraceFile parses a Chrome trace document written by a
// process-attributed tracer. It fails if the metadata block is missing —
// an unattributed trace cannot be placed on the shared timeline.
func ReadTraceFile(path string) (ProcessTrace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ProcessTrace{}, err
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
		Metadata    struct {
			Proc    string `json:"proc"`
			EpochUS int64  `json:"epoch_us"`
		} `json:"metadata"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return ProcessTrace{}, fmt.Errorf("monitor: parsing trace %s: %w", path, err)
	}
	if doc.Metadata.Proc == "" || doc.Metadata.EpochUS == 0 {
		return ProcessTrace{}, fmt.Errorf("monitor: trace %s has no process metadata; export it from a tracer with SetProc", path)
	}
	return ProcessTrace{Proc: doc.Metadata.Proc, EpochUS: doc.Metadata.EpochUS, Events: doc.TraceEvents}, nil
}

// MergedTrace is the combined cross-process document.
type MergedTrace struct {
	// Events is the merged event stream: pid 0 is the board lane, pids
	// 1..len(procs) the process lanes in input order. Offsets maps each
	// process name to its estimated clock offset (µs to add to poster
	// time to get board time).
	Events  []Event
	Offsets map[string]int64
}

// clockOffset estimates proc's clock offset to the board clock as the
// median of RecvUS − PostUS over its stamped entries.
func clockOffset(entries []transport.Entry, proc string) (int64, bool) {
	var deltas []int64
	for _, e := range entries {
		if e.Trace.Proc == proc && e.Trace.PostUS > 0 && e.Trace.RecvUS > 0 {
			deltas = append(deltas, e.Trace.RecvUS-e.Trace.PostUS)
		}
	}
	if len(deltas) == 0 {
		return 0, false
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i] < deltas[j] })
	return deltas[len(deltas)/2], true
}

// MergeTraces aligns the per-process traces onto the board timeline given
// the board's entries (from transport.Fetch or a completed tail) and
// returns one end-to-end document. Every process must have posted at
// least one stamped entry — without board samples there is nothing to
// align against.
func MergeTraces(entries []transport.Entry, procs []ProcessTrace) (*MergedTrace, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("monitor: no process traces to merge")
	}
	seen := map[string]bool{}
	offsets := map[string]int64{}
	for _, p := range procs {
		if p.Proc == "" {
			return nil, fmt.Errorf("monitor: process trace without a name")
		}
		if seen[p.Proc] {
			return nil, fmt.Errorf("monitor: duplicate process trace %q", p.Proc)
		}
		seen[p.Proc] = true
		off, ok := clockOffset(entries, p.Proc)
		if !ok {
			return nil, fmt.Errorf("monitor: no stamped board entries from process %q to align its clock", p.Proc)
		}
		offsets[p.Proc] = off
	}

	// base is the earliest instant on the board timeline, so merged
	// timestamps start near zero.
	base := int64(1<<63 - 1)
	for _, e := range entries {
		if e.Trace.RecvUS > 0 && e.Trace.RecvUS < base {
			base = e.Trace.RecvUS
		}
	}
	for _, p := range procs {
		off := offsets[p.Proc]
		for _, ev := range p.Events {
			if ts := p.EpochUS + ev.Ts + off; ts < base {
				base = ts
			}
		}
	}
	if base == 1<<63-1 {
		base = 0
	}

	mt := &MergedTrace{Offsets: offsets}
	mt.Events = append(mt.Events, Event{
		Name: "process_name", Ph: "M", Pid: 0, Args: map[string]any{"name": "board"},
	})
	sorted := append([]transport.Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	for _, e := range sorted {
		if e.Trace.RecvUS <= 0 {
			continue
		}
		args := map[string]any{"seq": e.Seq, "from": e.From, "bytes": e.Size}
		if e.Trace.Proc != "" {
			args["proc"] = e.Trace.Proc
		}
		if e.Trace.Span != 0 {
			args["span"] = e.Trace.Span
		}
		mt.Events = append(mt.Events, Event{
			Name: e.Category, Ph: "i", Ts: e.Trace.RecvUS - base, Pid: 0, Tid: 0, S: "t", Args: args,
		})
	}
	for i, p := range procs {
		pid := i + 1
		off := offsets[p.Proc]
		mt.Events = append(mt.Events, Event{
			Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": p.Proc},
		})
		for _, ev := range p.Events {
			shifted := ev
			shifted.Ts = p.EpochUS + ev.Ts + off - base
			shifted.Pid = pid
			mt.Events = append(mt.Events, shifted)
		}
	}
	return mt, nil
}

// Validate checks the merged document against the trace_event schema
// subset the repo emits: known phase kinds, non-negative aligned
// timestamps and durations, a process_name metadata record per lane, and
// board-lane instants monotone in document order (receive stamps are
// taken under the board's append lock, so any regression here is a merge
// bug, not clock noise).
func (mt *MergedTrace) Validate() error {
	named := map[int]bool{}
	lastBoard := int64(-1)
	for i, ev := range mt.Events {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				named[ev.Pid] = true
			}
			continue
		case "X", "i":
		default:
			return fmt.Errorf("monitor: event %d has unknown phase kind %q", i, ev.Ph)
		}
		if ev.Ts < 0 {
			return fmt.Errorf("monitor: event %d (%s) has negative aligned timestamp %d", i, ev.Name, ev.Ts)
		}
		if ev.Dur < 0 {
			return fmt.Errorf("monitor: event %d (%s) has negative duration %d", i, ev.Name, ev.Dur)
		}
		if ev.Ph == "i" && ev.Pid == 0 {
			if ev.Ts < lastBoard {
				return fmt.Errorf("monitor: board instants not monotone at event %d (%d after %d)", i, ev.Ts, lastBoard)
			}
			lastBoard = ev.Ts
		}
	}
	pids := map[int]bool{}
	for _, ev := range mt.Events {
		pids[ev.Pid] = true
	}
	for pid := range pids {
		if !named[pid] {
			return fmt.Errorf("monitor: lane %d has no process_name metadata", pid)
		}
	}
	return nil
}

// WriteTo writes the merged document in Chrome trace_event format.
func (mt *MergedTrace) WriteTo(w io.Writer) (int64, error) {
	doc := struct {
		TraceEvents     []Event        `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		Metadata        map[string]any `json:"metadata"`
	}{
		TraceEvents:     mt.Events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"merged": true, "offsets_us": mt.Offsets},
	}
	buf, err := json.Marshal(doc)
	if err != nil {
		return 0, err
	}
	buf = append(buf, '\n')
	n, err := w.Write(buf)
	return int64(n), err
}

// WriteFile validates and writes the merged document to path.
func (mt *MergedTrace) WriteFile(path string) error {
	if err := mt.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = mt.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("monitor: write merged trace %s: %w", path, err)
	}
	return nil
}
