package monitor

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"yosompc/internal/comm"
	"yosompc/internal/telemetry"
	"yosompc/internal/transport"
)

func manifestEntry(t *testing.T, proc, name, phase string, n, quorum int, recvUS int64) transport.Entry {
	t.Helper()
	man := transport.Manifest{Committee: name, Phase: phase, N: n, Quorum: quorum}
	payload, err := man.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return transport.Entry{
		From:     "role-assignment",
		Phase:    string(comm.PhaseSystem),
		Category: string(comm.CatManifest),
		Trace:    transport.TraceContext{Proc: proc, RecvUS: recvUS},
		Size:     len(payload),
		Payload:  payload,
	}
}

func speechEntry(proc, from, phase string, size int, recvUS int64) transport.Entry {
	return transport.Entry{
		From:     from,
		Phase:    phase,
		Category: string(comm.CatBeaver),
		Trace:    transport.TraceContext{Proc: proc, PostUS: recvUS - 10, RecvUS: recvUS},
		Size:     size,
		Payload:  make([]byte, size),
	}
}

func TestProgressAndCompletion(t *testing.T) {
	m := New()
	m.Ingest(manifestEntry(t, "", "offB1", "offline", 3, 2, 100))
	m.Ingest(manifestEntry(t, "", "onC1", "online", 2, 2, 110))
	s := m.Snapshot()
	if s.Expected != 5 || s.Posted != 0 || s.Complete || s.Fraction != 0 {
		t.Fatalf("after manifests: %+v", s)
	}
	if len(s.Phases) != 2 || s.Phases[0].Phase != "offline" || s.Phases[1].Phase != "online" {
		t.Fatalf("phases = %+v", s.Phases)
	}
	for i, from := range []string{"offB1/1", "offB1/2", "offB1/3"} {
		m.Ingest(speechEntry("", from, "offline", 64, int64(200+10*i)))
	}
	s = m.Snapshot()
	if s.Posted != 3 || s.Phases[0].Fraction != 1 || !s.Phases[0].Complete {
		t.Fatalf("offline incomplete: %+v", s)
	}
	if s.Phases[1].Fraction != 0 {
		t.Fatalf("online should be untouched: %+v", s.Phases[1])
	}
	m.Ingest(speechEntry("", "onC1/1", "online", 32, 300))
	m.Ingest(speechEntry("", "onC1/2", "online", 32, 310))
	s = m.Snapshot()
	if !s.Complete || s.Fraction != 1 || s.Posted != 5 {
		t.Fatalf("run should be complete: %+v", s)
	}
	// A role posting payload + proof counts once as a speaker, twice as posts.
	m.Ingest(speechEntry("", "onC1/2", "online", 16, 320))
	s = m.Snapshot()
	if s.Posted != 5 || s.Committees[1].Posts != 3 {
		t.Fatalf("double speech miscounted: %+v", s.Committees[1])
	}
}

func TestStragglersAndFailStopMargin(t *testing.T) {
	m := New()
	// n=4, quorum=2: tolerates 2 fail-stops.
	m.Ingest(manifestEntry(t, "", "offR", "offline", 4, 2, 100))
	m.Ingest(manifestEntry(t, "", "offDec", "offline", 2, 2, 101))
	m.Ingest(speechEntry("", "offR/1", "offline", 8, 1000))
	m.Ingest(speechEntry("", "offR/3", "offline", 8, 2000))
	s := m.Snapshot()
	c := s.Committees[0]
	if !c.Active || c.Settled {
		t.Fatalf("offR should be active, unsettled: %+v", c)
	}
	if len(c.Stragglers) != 2 || c.Stragglers[0].Role != "offR/2" || c.Stragglers[1].Role != "offR/4" {
		t.Fatalf("stragglers = %+v", c.Stragglers)
	}
	// Wait time is board time since the committee started speaking.
	if c.Stragglers[0].WaitUS != 1000 {
		t.Errorf("wait = %d, want 1000", c.Stragglers[0].WaitUS)
	}
	// tolerated 2, missing 2 → margin 0: at the edge, still reconstructable.
	if c.Margin != 0 || s.MarginMin == nil || *s.MarginMin != 0 {
		t.Errorf("margin = %d, min = %v", c.Margin, s.MarginMin)
	}
	// The next committee speaking settles offR: its missing members are
	// confirmed fail-stops, no longer stragglers.
	m.Ingest(speechEntry("", "offDec/1", "offline", 8, 3000))
	s = m.Snapshot()
	c = s.Committees[0]
	if !c.Settled || len(c.Stragglers) != 0 || len(c.Missing) != 2 {
		t.Fatalf("after settle: %+v", c)
	}
	// A third fail-stop would breach the quorum: margin goes negative.
	m2 := New()
	m2.Ingest(manifestEntry(t, "", "offR", "offline", 4, 2, 100))
	m2.Ingest(manifestEntry(t, "", "next", "offline", 1, 1, 101))
	m2.Ingest(speechEntry("", "offR/1", "offline", 8, 1000))
	m2.Ingest(speechEntry("", "next/1", "offline", 8, 2000))
	s2 := m2.Snapshot()
	if got := s2.Committees[0].Margin; got != -1 {
		t.Errorf("breached margin = %d, want -1", got)
	}
	if s2.MarginMin == nil || *s2.MarginMin != -1 {
		t.Errorf("min margin = %v, want -1", s2.MarginMin)
	}
}

// Two processes mirroring into one board keep separate committee state:
// the same committee name never merges across procs, and one proc's
// committees do not settle the other's.
func TestCrossProcessKeying(t *testing.T) {
	m := New()
	m.Ingest(manifestEntry(t, "a", "offB1", "offline", 2, 1, 100))
	m.Ingest(manifestEntry(t, "b", "offB1", "offline", 3, 2, 101))
	m.Ingest(speechEntry("a", "offB1/1", "offline", 8, 200))
	m.Ingest(speechEntry("b", "offB1/1", "offline", 8, 201))
	m.Ingest(speechEntry("a", "offB1/2", "offline", 8, 202))
	s := m.Snapshot()
	if len(s.Committees) != 2 {
		t.Fatalf("committees = %+v", s.Committees)
	}
	if s.Committees[0].Proc != "a" || s.Committees[0].Posted != 2 {
		t.Errorf("proc a committee = %+v", s.Committees[0])
	}
	if s.Committees[1].Proc != "b" || s.Committees[1].Posted != 1 || s.Committees[1].Settled {
		t.Errorf("proc b committee = %+v", s.Committees[1])
	}
}

func TestInfraAttributionAndUnexpected(t *testing.T) {
	m := New()
	m.Ingest(speechEntry("", "setup", "setup", 100, 10))
	m.Ingest(speechEntry("", "setup-dealer", "offline", 50, 20))
	m.Ingest(speechEntry("", "client/7", "online", 30, 30))
	m.Ingest(speechEntry("", "client/9", "online", 30, 40))
	// Speaker-shaped post with no manifest: counted as unexpected.
	m.Ingest(speechEntry("", "ghost/1", "offline", 8, 50))
	s := m.Snapshot()
	if s.Unexpected != 1 {
		t.Errorf("unexpected = %d, want 1", s.Unexpected)
	}
	classes := map[string]InfraStatus{}
	for _, inf := range s.Infra {
		classes[inf.Class] = inf
	}
	if classes["client"].Posts != 2 || classes["client"].Bytes != 60 {
		t.Errorf("client infra = %+v", classes["client"])
	}
	if classes["setup"].Posts != 1 || classes["setup-dealer"].Posts != 1 {
		t.Errorf("infra = %+v", s.Infra)
	}
}

func TestMonitorMetricsExport(t *testing.T) {
	m := New()
	reg := telemetry.NewRegistry()
	m.Instrument(reg)
	m.Ingest(manifestEntry(t, "", "offB1", "offline", 3, 2, 100))
	m.Ingest(speechEntry("", "offB1/1", "offline", 64, 200))
	snap := reg.Snapshot()
	if snap.Counters["monitor.entries"] != 2 || snap.Counters["monitor.manifests"] != 1 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if snap.Gauges["monitor.committees"] != 1 || snap.Gauges["monitor.speakers_expected"] != 3 ||
		snap.Gauges["monitor.speakers_posted"] != 1 || snap.Gauges["monitor.stragglers"] != 2 {
		t.Errorf("gauges = %+v", snap.Gauges)
	}
	// tolerated 1, missing 2 → margin −1.
	if snap.Gauges["monitor.failstop_margin_min"] != -1 {
		t.Errorf("margin gauge = %d", snap.Gauges["monitor.failstop_margin_min"])
	}
}

func TestAttachBoardDerivesProgress(t *testing.T) {
	b := transport.NewBoard(nil)
	b.SetProc("run")
	m := New()
	m.AttachBoard(b)
	man, _ := transport.Manifest{Committee: "onOut", Phase: "online", N: 2, Quorum: 1}.MarshalBinary()
	b.Post("role-assignment", comm.PhaseSystem, comm.CatManifest, man, nil)
	b.Post("onOut/1", comm.PhaseOnline, comm.CatOutput, []byte{1, 2, 3}, nil)
	s := m.Snapshot()
	if s.Posted != 1 || s.Expected != 2 || s.Committees[0].Proc != "run" {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.BoardUS == 0 {
		t.Error("board time not derived from posting stamps")
	}
}

func TestRunTailIngestsRemoteBoard(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.Serve(ln)
	defer srv.Close()
	m := New()
	stop, err := m.RunTail(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	man, _ := transport.Manifest{Committee: "offB2", Phase: "offline", N: 1, Quorum: 1}.MarshalBinary()
	if _, err := c.Post("role-assignment", comm.PhaseSystem, comm.CatManifest, man); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post("offB2/1", comm.PhaseOffline, comm.CatBeaver, []byte{1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Snapshot().Posted != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("tail never delivered: %+v", m.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
	if s := m.Snapshot(); !s.Complete {
		t.Errorf("snapshot after stop = %+v", s)
	}
}

func TestSnapshotJSONAndText(t *testing.T) {
	m := New()
	m.Ingest(manifestEntry(t, "", "offB1", "offline", 2, 1, 100))
	m.Ingest(speechEntry("", "offB1/1", "offline", 8, 200))
	s := m.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"fraction":0.5`, `"margin_min":0`, `"stragglers"`, `"offB1/2"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("progress JSON missing %s:\n%s", key, data)
		}
	}
	var buf strings.Builder
	s.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "offB1") || !strings.Contains(out, "waiting on offB1/2") {
		t.Errorf("text view:\n%s", out)
	}
}

func TestNilMonitorIsInert(t *testing.T) {
	var m *Monitor
	m.Ingest(transport.Entry{From: "x"})
	m.Instrument(telemetry.NewRegistry())
	m.AttachBoard(transport.NewBoard(nil))
	if s := m.Snapshot(); s.Entries != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestSpeakerOf(t *testing.T) {
	cases := []struct {
		in   string
		name string
		idx  int
		ok   bool
	}{
		{"offB1/3", "offB1", 3, true},
		{"on-layer2/12", "on-layer2", 12, true},
		{"client/7", "client", 7, true},
		{"setup", "", 0, false},
		{"offB1/", "", 0, false},
		{"offB1/x", "", 0, false},
		{"offB1/0", "", 0, false},
		{"/3", "", 0, false},
	}
	for _, c := range cases {
		name, idx, ok := speakerOf(c.in)
		if name != c.name || idx != c.idx || ok != c.ok {
			t.Errorf("speakerOf(%q) = %q, %d, %v", c.in, name, idx, ok)
		}
	}
}
