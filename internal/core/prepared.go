package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"yosompc/internal/comm"
	"yosompc/internal/field"
)

// The offline/online split is the deployment story of the paper: the
// circuit-dependent preprocessing runs ahead of time (committees churn
// through it whenever the network is idle), and once inputs arrive only
// the cheap online phase runs. Prepare/Execute expose that split: one
// Prepare produces the correlated randomness for exactly one Execute
// (λ-values and Beaver triples are one-time pads — reuse would leak
// linear relations between executions, so Execute enforces single use).

// ErrAlreadyExecuted rejects a second Execute on the same preprocessing.
var ErrAlreadyExecuted = errors.New("core: preprocessing already consumed; Prepare again")

// Prepared is the output of the setup + offline phases, waiting for
// inputs.
type Prepared struct {
	r    *run
	mu   sync.Mutex
	used bool
}

// Prepare runs Π_YOSO-Setup and Π_YOSO-Offline Steps 1–4 (everything that
// can happen before inputs exist). The returned Prepared supports exactly
// one Execute.
func (p *Protocol) Prepare() (*Prepared, error) {
	return p.PrepareContext(context.Background())
}

// PrepareContext is Prepare with cancellation: the run aborts between
// committee steps once ctx is done (a partially preprocessed run is
// discarded — correlations are never reused).
func (p *Protocol) PrepareContext(ctx context.Context) (*Prepared, error) {
	r := &run{p: p, ctx: ctx}
	r.initTelemetry()
	r.beginPhase("setup")
	r.logStep("setup phase starting", "n", p.params.N, "t", p.params.T, "k", p.params.K)
	if err := r.setup(); err != nil {
		r.endPhase()
		r.rootSp.End()
		return nil, fmt.Errorf("core: setup: %w", err)
	}
	r.endPhase()
	r.beginPhase("offline")
	r.logStep("offline phase starting", "muls", p.circ.NumMul(), "depth", p.circ.Depth())
	if err := r.offline(); err != nil {
		r.endPhase()
		r.rootSp.End()
		return nil, fmt.Errorf("core: offline: %w", err)
	}
	r.endPhase()
	r.logSpan(r.rootSp, "preprocessing complete",
		"offline-bytes", p.board.Report().Phase(comm.PhaseOffline))
	return &Prepared{r: r}, nil
}

// OfflineReport returns the communication spent so far (setup + offline).
func (pp *Prepared) OfflineReport() comm.Report { return pp.r.p.board.Report() }

// Execute runs the online phase on the prepared correlations. It consumes
// the preprocessing: a second call returns ErrAlreadyExecuted.
func (pp *Prepared) Execute(inputs map[int][]field.Element) (*Result, error) {
	pp.mu.Lock()
	if pp.used {
		pp.mu.Unlock()
		return nil, ErrAlreadyExecuted
	}
	pp.used = true
	pp.mu.Unlock()

	p := pp.r.p
	for _, client := range p.circ.Clients() {
		if len(inputs[client]) != p.circ.InputCount(client) {
			return nil, fmt.Errorf("%w: client %d supplied %d of %d inputs",
				ErrWrongInputs, client, len(inputs[client]), p.circ.InputCount(client))
		}
	}
	pp.r.beginPhase("online")
	pp.r.logStep("online phase starting")
	outputs, err := pp.r.online(inputs)
	pp.r.endPhase()
	pp.r.rootSp.End()
	if err != nil {
		return nil, fmt.Errorf("core: online: %w", err)
	}
	pp.r.logSpan(nil, "online phase complete", "online-bytes", p.board.Report().Phase(comm.PhaseOnline))
	return &Result{
		Outputs:  outputs,
		Report:   p.board.Report(),
		Excluded: pp.r.excluded,
		Audit:    p.audit.Events(),
		Rounds:   9 + p.circ.Depth(),
	}, nil
}
