package core

import (
	"fmt"
	"sort"

	"yosompc/internal/circuit"
	"yosompc/internal/comm"
	"yosompc/internal/field"
	"yosompc/internal/pke"
	"yosompc/internal/sharing"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

// sortedKeys returns an int-keyed map's keys in ascending order: map-shaped
// payloads must encode deterministically.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// online executes the offline/online boundary (OffRe's speak: Steps 5–6 +
// tsk hand-off) and Π_YOSO-Online: future key distribution, inputs, layer
// by layer multiplication, and output delivery.
func (r *run) online(inputs map[int][]field.Element) (map[int][]field.Element, error) {
	p := r.p.params
	var err error

	// The online phase begins: role assignment publishes the online
	// committees' role keys.
	if r.onC1, err = r.p.assign.FormCommittee("onC1", p.N, comm.PhaseOnline); err != nil {
		return nil, err
	}
	depth := r.p.circ.Depth()
	r.layers = make([]*yoso.Committee, depth)
	for l := 0; l < depth; l++ {
		c, err := r.p.assign.FormCommittee(fmt.Sprintf("on-layer%d", l+1), p.N, comm.PhaseOnline)
		if err != nil {
			return nil, err
		}
		r.layers[l] = c
	}
	if r.onOut, err = r.p.assign.FormCommittee("onOut", p.N, comm.PhaseOnline); err != nil {
		return nil, err
	}

	// Boundary speak: the bridging committee hands tsk to OnC1 now that
	// the online role keys exist. This is its only job — everything else
	// in the offline phase finished before inputs were known.
	if err := r.offBridgeSpeak(); err != nil {
		return nil, fmt.Errorf("tsk boundary hand-off: %w", err)
	}

	// Future key distribution: OnC1 re-encrypts KFF secret keys to the
	// now-known role keys and hands tsk to the output committee.
	if err := r.onC1Speak(); err != nil {
		return nil, fmt.Errorf("future key distribution: %w", err)
	}

	// Input: each client opens λ for its input wires and publishes μ = v−λ.
	sp := r.stepSpan("input")
	err = r.onlineInput(inputs)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("input: %w", err)
	}
	r.propagateLinear()

	// Multiplication layers.
	for l := 0; l < depth; l++ {
		lsp := r.stepSpan("mu-layer")
		lsp.SetInt("layer", int64(l+1))
		err := r.onlineLayer(l)
		lsp.End()
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", l+1, err)
		}
		r.propagateLinear()
	}

	// Output.
	return r.onlineOutput()
}

// envBundle is a broadcast bundle of addressed envelopes (the YOSO
// "point-to-point over the board" pattern).
type envBundle struct{ envs []envelope }

func (b envBundle) wireSize() int {
	s := 0
	for _, e := range b.envs {
		s += e.Ct.Size()
	}
	return s
}

func (b envBundle) encodeWire(p *Params) ([]byte, error) {
	return appendEnvelopes(p, make([]byte, 0, b.wireSize()), b.envs)
}

// reencPayload is the OffRe committee's single broadcast: Re-encrypt
// envelopes for input-wire λ's (Step 5), packed shares (Step 6), and the
// tsk resharing for OnC1.
type reencPayload struct {
	inputs  map[int]envelope   // input gate index → envelope to client KFF
	left    map[int][]envelope // batch → per-target-index envelope
	right   map[int][]envelope
	gamma   map[int][]envelope
	reshare []envelope
}

func (p reencPayload) wireSize() int {
	s := 0
	for _, e := range p.inputs {
		s += e.Ct.Size()
	}
	for _, envs := range p.left {
		for _, e := range envs {
			s += e.Ct.Size()
		}
	}
	for _, envs := range p.right {
		for _, e := range envs {
			s += e.Ct.Size()
		}
	}
	for _, envs := range p.gamma {
		for _, e := range envs {
			s += e.Ct.Size()
		}
	}
	for _, e := range p.reshare {
		s += e.Ct.Size()
	}
	return s
}

func (p reencPayload) encodeWire(pp *Params) ([]byte, error) {
	out := make([]byte, 0, p.wireSize())
	var err error
	for _, gi := range sortedKeys(p.inputs) {
		if out, err = appendEnvelopes(pp, out, []envelope{p.inputs[gi]}); err != nil {
			return nil, err
		}
	}
	for _, m := range []map[int][]envelope{p.left, p.right, p.gamma} {
		for _, bi := range sortedKeys(m) {
			if out, err = appendEnvelopes(pp, out, m[bi]); err != nil {
				return nil, err
			}
		}
	}
	return appendEnvelopes(pp, out, p.reshare)
}

// offReSpeak runs the OffRe committee (offline Steps 5 and 6): each
// member reconstructs its tsk share, posts partial decryptions of every
// value being re-encrypted — each encrypted under the recipient's KFF
// public key — and reshares tsk to the bridging committee. Every target
// key is known during the offline phase, so this speak happens entirely
// before inputs exist (it is called from offline()).
func (r *run) offReSpeak() error {
	p := r.p.params
	te := p.TE
	shares, err := r.recoverShares(r.offRe, comm.PhaseOffline)
	if err != nil {
		return err
	}
	if p.NoKFF {
		// §3.2 naive ablation: nothing to re-encrypt yet (the online
		// role keys do not exist and there are no KFFs) — OffRe only
		// passes tsk onward; OnC1 will pay the re-encryption online.
		posts, err := r.tskCommitteeSpeak(r.offRe, shares, comm.PhaseOffline,
			"steps-5-6-nokff", nil, r.offBridge,
			func(i int) pke.PublicKey { return r.offBridge.Role(i).PublicKey() })
		if err != nil {
			return err
		}
		r.storeHandoff("offBridge", posts)
		return nil
	}
	gates := r.p.circ.Gates()

	// Per-member work item list: (ciphertext, target KFF key).
	type item struct {
		ct  tte.Ciphertext
		key pke.PublicKey
	}
	var inputItems []item
	var inputGateIdx []int
	for _, client := range r.p.circ.Clients() {
		for _, gi := range r.p.circ.InputGates(client) {
			kff := r.kffClient[client]
			inputItems = append(inputItems, item{ct: r.wireCt[gates[gi].Out], key: kff.pub})
			inputGateIdx = append(inputGateIdx, gi)
		}
	}

	nEnvs := len(inputItems) + 3*len(r.batches)*p.N + p.N
	garbSize := nEnvs * (r.tpk.CiphertextSize() + 60)

	posts, err := r.committeeStep(r.offRe, comm.PhaseOffline, comm.CatReencrypt, "steps-5-6",
		func(i int) (sized, error) {
			sh := shares[i-1]
			if sh == nil {
				return nil, fmt.Errorf("role %d has no tsk share", i)
			}
			payload := reencPayload{
				inputs: map[int]envelope{},
				left:   map[int][]envelope{},
				right:  map[int][]envelope{},
				gamma:  map[int][]envelope{},
			}
			from := r.offRe.Role(i).Name()
			encPartial := func(ct tte.Ciphertext, key pke.PublicKey, to string) (envelope, error) {
				part, err := te.PartialDecrypt(r.tpk, sh, ct)
				if err != nil {
					return envelope{}, err
				}
				data, err := te.EncodePartial(part)
				if err != nil {
					return envelope{}, err
				}
				env, err := key.Encrypt(data)
				if err != nil {
					return envelope{}, err
				}
				return envelope{From: from, To: to, Ct: env}, nil
			}
			// Step 5: input-wire λ's to client KFFs.
			for j, it := range inputItems {
				env, err := encPartial(it.ct, it.key, fmt.Sprintf("client-kff/%d", j))
				if err != nil {
					return nil, err
				}
				payload.inputs[inputGateIdx[j]] = env
			}
			// Step 6: packed shares to the layer roles' KFFs.
			for bi, b := range r.batches {
				kffs := r.kffLayer[b.Layer-1]
				for target := 0; target < p.N; target++ {
					le, err := encPartial(b.packedLeft[target], kffs[target].pub, "layer-kff")
					if err != nil {
						return nil, err
					}
					re, err := encPartial(b.packedRight[target], kffs[target].pub, "layer-kff")
					if err != nil {
						return nil, err
					}
					ge, err := encPartial(b.packedGamma[target], kffs[target].pub, "layer-kff")
					if err != nil {
						return nil, err
					}
					payload.left[bi] = append(payload.left[bi], le)
					payload.right[bi] = append(payload.right[bi], re)
					payload.gamma[bi] = append(payload.gamma[bi], ge)
				}
			}
			// Reshare tsk to the bridging committee's role keys.
			subs, err := te.Reshare(r.tpk, sh)
			if err != nil {
				return nil, err
			}
			for _, sub := range subs {
				data, err := te.EncodeSubShare(sub)
				if err != nil {
					return nil, err
				}
				env, err := r.offBridge.Role(sub.To()).PublicKey().Encrypt(data)
				if err != nil {
					return nil, err
				}
				payload.reshare = append(payload.reshare, envelope{
					From: from, To: fmt.Sprintf("offBridge/%d", sub.To()), Ct: env,
				})
			}
			return payload, nil
		},
		func(i int) sized { return garbage{size: garbSize} })
	if err != nil {
		return err
	}

	// File the verified envelopes for their recipients.
	byTarget := map[int][]envelope{}
	for _, raw := range posts {
		payload, ok := raw.(reencPayload)
		if !ok {
			continue
		}
		for gi, env := range payload.inputs {
			r.inputEnv[gi] = append(r.inputEnv[gi], env)
		}
		for bi, envs := range payload.left {
			b := r.batches[bi]
			if b.envLeft == nil {
				b.envLeft = make([][]envelope, p.N)
				b.envRight = make([][]envelope, p.N)
				b.envGamma = make([][]envelope, p.N)
			}
			for target, env := range envs {
				b.envLeft[target] = append(b.envLeft[target], env)
			}
			for target, env := range payload.right[bi] {
				b.envRight[target] = append(b.envRight[target], env)
			}
			for target, env := range payload.gamma[bi] {
				b.envGamma[target] = append(b.envGamma[target], env)
			}
		}
		for _, env := range payload.reshare {
			var idx int
			if _, err := fmt.Sscanf(env.To, "offBridge/%d", &idx); err == nil {
				byTarget[idx] = append(byTarget[idx], env)
			}
		}
	}
	r.handoffs["offBridge"] = byTarget
	return nil
}

// offBridgeSpeak has the bridging committee reconstruct its tsk shares
// and reshare them to OnC1 — the only offline work that must wait for the
// online role keys. It is metered as offline communication.
func (r *run) offBridgeSpeak() error {
	shares, err := r.recoverShares(r.offBridge, comm.PhaseOffline)
	if err != nil {
		return err
	}
	posts, err := r.tskCommitteeSpeak(r.offBridge, shares, comm.PhaseOffline,
		"tsk-bridge", nil, r.onC1, func(i int) pke.PublicKey { return r.onC1.Role(i).PublicKey() })
	if err != nil {
		return err
	}
	r.storeHandoff("onC1", posts)
	return nil
}

// kffDelivery is OnC1's broadcast: for every KFF owner, the partial
// decryptions of its KFF secret, re-encrypted under the owner's role key,
// plus the tsk resharing for the output committee.
type kffDelivery struct {
	layer   map[[2]int]envelope // {layer, index-1} → envelope
	client  map[int]envelope
	reshare []envelope
}

func (d kffDelivery) wireSize() int {
	s := 0
	for _, e := range d.layer {
		s += e.Ct.Size()
	}
	for _, e := range d.client {
		s += e.Ct.Size()
	}
	for _, e := range d.reshare {
		s += e.Ct.Size()
	}
	return s
}

func (d kffDelivery) encodeWire(p *Params) ([]byte, error) {
	lkeys := make([][2]int, 0, len(d.layer))
	for k := range d.layer {
		lkeys = append(lkeys, k)
	}
	sort.Slice(lkeys, func(i, j int) bool {
		if lkeys[i][0] != lkeys[j][0] {
			return lkeys[i][0] < lkeys[j][0]
		}
		return lkeys[i][1] < lkeys[j][1]
	})
	out := make([]byte, 0, d.wireSize())
	var err error
	for _, k := range lkeys {
		if out, err = appendEnvelopes(p, out, []envelope{d.layer[k]}); err != nil {
			return nil, err
		}
	}
	for _, id := range sortedKeys(d.client) {
		if out, err = appendEnvelopes(p, out, []envelope{d.client[id]}); err != nil {
			return nil, err
		}
	}
	return appendEnvelopes(p, out, d.reshare)
}

// onC1Speak is the online "future key distribution": OnC1 re-encrypts each
// KFF secret key towards the owner's role-assignment key, and reshares tsk
// to OnOut (needed for output delivery).
func (r *run) onC1Speak() error {
	p := r.p.params
	te := p.TE
	shares, err := r.recoverShares(r.onC1, comm.PhaseOnline)
	if err != nil {
		return err
	}
	if p.NoKFF {
		return r.onC1SpeakNoKFF(shares)
	}
	nKff := len(r.kffClient)
	for _, kl := range r.kffLayer {
		nKff += len(kl)
	}
	garbSize := (nKff + p.N) * (r.tpk.CiphertextSize() + 60)

	posts, err := r.committeeStep(r.onC1, comm.PhaseOnline, comm.CatKFF, "future-key-distribution",
		func(i int) (sized, error) {
			sh := shares[i-1]
			if sh == nil {
				return nil, fmt.Errorf("role %d has no tsk share", i)
			}
			from := r.onC1.Role(i).Name()
			payload := kffDelivery{layer: map[[2]int]envelope{}, client: map[int]envelope{}}
			encTo := func(ct tte.Ciphertext, key pke.PublicKey, to string) (envelope, error) {
				part, err := te.PartialDecrypt(r.tpk, sh, ct)
				if err != nil {
					return envelope{}, err
				}
				data, err := te.EncodePartial(part)
				if err != nil {
					return envelope{}, err
				}
				env, err := key.Encrypt(data)
				if err != nil {
					return envelope{}, err
				}
				return envelope{From: from, To: to, Ct: env}, nil
			}
			for l, kl := range r.kffLayer {
				for j := range kl {
					owner := r.layers[l].Role(j + 1)
					env, err := encTo(kl[j].secretCt, owner.PublicKey(), owner.Name())
					if err != nil {
						return nil, err
					}
					payload.layer[[2]int{l, j}] = env
				}
			}
			for id, kff := range r.kffClient {
				env, err := encTo(kff.secretCt, r.clients[id].role.PublicKey(), fmt.Sprintf("client/%d", id))
				if err != nil {
					return nil, err
				}
				payload.client[id] = env
			}
			subs, err := te.Reshare(r.tpk, sh)
			if err != nil {
				return nil, err
			}
			for _, sub := range subs {
				data, err := te.EncodeSubShare(sub)
				if err != nil {
					return nil, err
				}
				env, err := r.onOut.Role(sub.To()).PublicKey().Encrypt(data)
				if err != nil {
					return nil, err
				}
				payload.reshare = append(payload.reshare, envelope{
					From: from, To: fmt.Sprintf("onOut/%d", sub.To()), Ct: env,
				})
			}
			return payload, nil
		},
		func(i int) sized { return garbage{size: garbSize} })
	if err != nil {
		return err
	}

	byTarget := map[int][]envelope{}
	for _, raw := range posts {
		payload, ok := raw.(kffDelivery)
		if !ok {
			continue
		}
		for key, env := range payload.layer {
			r.kffLayer[key[0]][key[1]].delivered = append(r.kffLayer[key[0]][key[1]].delivered, env)
		}
		for id, env := range payload.client {
			r.kffClient[id].delivered = append(r.kffClient[id].delivered, env)
		}
		for _, env := range payload.reshare {
			var idx int
			if _, err := fmt.Sscanf(env.To, "onOut/%d", &idx); err == nil {
				byTarget[idx] = append(byTarget[idx], env)
			}
		}
	}
	r.handoffs["onOut"] = byTarget
	return nil
}

// onC1SpeakNoKFF is the §3.2 naive ablation's online step: OnC1 uses its
// tsk shares to re-encrypt every packed share to the layer roles' role
// keys and every input-wire λ to the client keys — the Θ(n²·batches)
// communication the KFF machinery moves offline — then reshares tsk to
// the output committee.
func (r *run) onC1SpeakNoKFF(shares []tte.KeyShare) error {
	p := r.p.params
	te := p.TE
	gates := r.p.circ.Gates()
	type item struct {
		ct  tte.Ciphertext
		key pke.PublicKey
	}
	var inputItems []item
	var inputGateIdx []int
	for _, client := range r.p.circ.Clients() {
		for _, gi := range r.p.circ.InputGates(client) {
			inputItems = append(inputItems, item{ct: r.wireCt[gates[gi].Out], key: r.clients[client].role.PublicKey()})
			inputGateIdx = append(inputGateIdx, gi)
		}
	}
	nEnvs := len(inputItems) + 3*len(r.batches)*p.N + p.N
	garbSize := nEnvs * (r.tpk.CiphertextSize() + 60)

	posts, err := r.committeeStep(r.onC1, comm.PhaseOnline, comm.CatReencrypt, "online-reencrypt-nokff",
		func(i int) (sized, error) {
			sh := shares[i-1]
			if sh == nil {
				return nil, fmt.Errorf("role %d has no tsk share", i)
			}
			payload := reencPayload{
				inputs: map[int]envelope{},
				left:   map[int][]envelope{},
				right:  map[int][]envelope{},
				gamma:  map[int][]envelope{},
			}
			from := r.onC1.Role(i).Name()
			encPartial := func(ct tte.Ciphertext, key pke.PublicKey, to string) (envelope, error) {
				part, err := te.PartialDecrypt(r.tpk, sh, ct)
				if err != nil {
					return envelope{}, err
				}
				data, err := te.EncodePartial(part)
				if err != nil {
					return envelope{}, err
				}
				env, err := key.Encrypt(data)
				if err != nil {
					return envelope{}, err
				}
				return envelope{From: from, To: to, Ct: env}, nil
			}
			for j, it := range inputItems {
				env, err := encPartial(it.ct, it.key, "client")
				if err != nil {
					return nil, err
				}
				payload.inputs[inputGateIdx[j]] = env
			}
			for bi, b := range r.batches {
				layer := r.layers[b.Layer-1]
				for target := 0; target < p.N; target++ {
					key := layer.Role(target + 1).PublicKey()
					le, err := encPartial(b.packedLeft[target], key, "layer-role")
					if err != nil {
						return nil, err
					}
					re, err := encPartial(b.packedRight[target], key, "layer-role")
					if err != nil {
						return nil, err
					}
					ge, err := encPartial(b.packedGamma[target], key, "layer-role")
					if err != nil {
						return nil, err
					}
					payload.left[bi] = append(payload.left[bi], le)
					payload.right[bi] = append(payload.right[bi], re)
					payload.gamma[bi] = append(payload.gamma[bi], ge)
				}
			}
			subs, err := te.Reshare(r.tpk, sh)
			if err != nil {
				return nil, err
			}
			for _, sub := range subs {
				data, err := te.EncodeSubShare(sub)
				if err != nil {
					return nil, err
				}
				env, err := r.onOut.Role(sub.To()).PublicKey().Encrypt(data)
				if err != nil {
					return nil, err
				}
				payload.reshare = append(payload.reshare, envelope{
					From: from, To: fmt.Sprintf("onOut/%d", sub.To()), Ct: env,
				})
			}
			return payload, nil
		},
		func(i int) sized { return garbage{size: garbSize} })
	if err != nil {
		return err
	}

	byTarget := map[int][]envelope{}
	for _, raw := range posts {
		payload, ok := raw.(reencPayload)
		if !ok {
			continue
		}
		for gi, env := range payload.inputs {
			r.inputEnv[gi] = append(r.inputEnv[gi], env)
		}
		for bi, envs := range payload.left {
			b := r.batches[bi]
			if b.envLeft == nil {
				b.envLeft = make([][]envelope, p.N)
				b.envRight = make([][]envelope, p.N)
				b.envGamma = make([][]envelope, p.N)
			}
			for target, env := range envs {
				b.envLeft[target] = append(b.envLeft[target], env)
			}
			for target, env := range payload.right[bi] {
				b.envRight[target] = append(b.envRight[target], env)
			}
			for target, env := range payload.gamma[bi] {
				b.envGamma[target] = append(b.envGamma[target], env)
			}
		}
		for _, env := range payload.reshare {
			var idx int
			if _, err := fmt.Sscanf(env.To, "onOut/%d", &idx); err == nil {
				byTarget[idx] = append(byTarget[idx], env)
			}
		}
	}
	r.handoffs["onOut"] = byTarget
	return nil
}

// openKFF recovers a KFF secret key from its delivered envelopes using the
// owner's role secret key.
func (r *run) openKFF(entry *kffEntry, ownerSK pke.SecretKey, phase comm.Phase) (pke.SecretKey, error) {
	v, err := r.combineEnvelopes(ownerSK, entry.delivered, entry.secretCt)
	if err != nil {
		return nil, err
	}
	r.p.audit.Record(phase, ValKFFSecret, KeyRole)
	buf := make([]byte, pke.SecretKeySize)
	v.FillBytes(buf)
	return r.p.params.PKE.SecretKeyFromBytes(buf)
}

// muBundle is a client's or layer role's broadcast of μ openings/shares.
type muBundle struct{ vals []field.Element }

func (m muBundle) wireSize() int { return len(m.vals) * field.ElementSize }

func (m muBundle) encodeWire(*Params) ([]byte, error) {
	return field.AppendVecBytes(make([]byte, 0, m.wireSize()), m.vals), nil
}

// onlineInput has every client open λ^α for each of its input wires (via
// its KFF) and publish μ^α = v^α − λ^α.
func (r *run) onlineInput(inputs map[int][]field.Element) error {
	gates := r.p.circ.Gates()
	for _, client := range r.p.circ.Clients() {
		inGates := r.p.circ.InputGates(client)
		if len(inGates) == 0 {
			continue
		}
		cs := r.clients[client]
		inputKey := cs.role.SecretKey()
		keyClass := KeyClient
		if !r.p.params.NoKFF {
			kff := r.kffClient[client]
			kffSK, err := r.openKFF(kff, cs.role.SecretKey(), comm.PhaseOnline)
			if err != nil {
				return fmt.Errorf("client %d KFF: %w", client, err)
			}
			inputKey = kffSK
			keyClass = KeyKFF
		}
		mus := make([]field.Element, len(inGates))
		for j, gi := range inGates {
			lambdaInt, err := r.combineEnvelopes(inputKey, r.inputEnv[gi], r.wireCt[gates[gi].Out])
			if err != nil {
				return fmt.Errorf("client %d input %d: %w", client, j, err)
			}
			r.p.audit.Record(comm.PhaseOnline, ValWireLambda, keyClass)
			lambda := reduceToField(lambdaInt)
			mus[j] = inputs[client][j].Sub(lambda)
		}
		post, err := r.speak(cs.role, comm.PhaseOnline, comm.CatInput, "client-input",
			func() (sized, error) { return muBundle{vals: mus}, nil },
			func() sized { return garbage{size: len(mus) * field.ElementSize} })
		if err != nil {
			return err
		}
		if !r.valid(cs.role, "client-input", post) {
			// A silent/cheating client falls back to the default input 0
			// (the ideal functionality's default); μ = −λ would require
			// opening λ publicly, which the driver models by excluding
			// the client's outputs instead. Honest-client runs never hit
			// this path.
			return fmt.Errorf("%w: client %d input rejected", ErrNotEnough, client)
		}
		for j, gi := range inGates {
			w := gates[gi].Out
			r.mu[w] = mus[j]
			r.muKnown[w] = true
		}
	}
	return nil
}

// propagateLinear computes μ for linear gates whose inputs are known — the
// "anyone can locally add μ's" rule.
func (r *run) propagateLinear() {
	for _, g := range r.p.circ.Gates() {
		switch g.Kind {
		case circuit.KindConst:
			// v = Const and λ = 0, so μ = Const, publicly known upfront.
			if !r.muKnown[g.Out] {
				r.mu[g.Out] = g.Const
				r.muKnown[g.Out] = true
			}
		case circuit.KindAdd:
			if r.muKnown[g.A] && r.muKnown[g.B] && !r.muKnown[g.Out] {
				r.mu[g.Out] = r.mu[g.A].Add(r.mu[g.B])
				r.muKnown[g.Out] = true
			}
		case circuit.KindSub:
			if r.muKnown[g.A] && r.muKnown[g.B] && !r.muKnown[g.Out] {
				r.mu[g.Out] = r.mu[g.A].Sub(r.mu[g.B])
				r.muKnown[g.Out] = true
			}
		case circuit.KindConstMul:
			if r.muKnown[g.A] && !r.muKnown[g.Out] {
				r.mu[g.Out] = g.Const.Mul(r.mu[g.A])
				r.muKnown[g.Out] = true
			}
		}
	}
}

// onlineLayer runs the multiplication committee of layer l (0-based): each
// member opens its packed λ/Γ shares via its KFF, forms its μ^γ share
//
//	μ_i^γ = μ_i^α·μ_i^β + μ_i^α·λ_i^β + μ_i^β·λ_i^α + λ_i^Γ,
//
// and broadcasts one field element per batch; anyone reconstructs μ^γ from
// t+2(k−1)+1 verified shares.
func (r *run) onlineLayer(l int) error {
	p := r.p.params
	c := r.layers[l]
	gates := r.p.circ.Gates()

	// The layer's batches and their public μ input vectors.
	var layerBatches []*batchState
	for _, b := range r.batches {
		if b.Layer == l+1 {
			layerBatches = append(layerBatches, b)
		}
	}
	if len(layerBatches) == 0 {
		c.SpeakAll()
		return nil
	}
	muLeft := make([][]field.Element, len(layerBatches))
	muRight := make([][]field.Element, len(layerBatches))
	// One cached constant-packing domain per batch width, fetched outside
	// the per-member closure: every ConstantPackedShare below is then a
	// precomputed-row inner product with no cache lookup in the hot loop.
	constDoms := make([]*sharing.ConstDomain, len(layerBatches))
	for bi, b := range layerBatches {
		muLeft[bi] = make([]field.Element, b.k)
		muRight[bi] = make([]field.Element, b.k)
		for j, gi := range b.Gates {
			g := gates[gi]
			if !r.muKnown[g.A] || !r.muKnown[g.B] {
				return fmt.Errorf("core: layer %d gate %d inputs not yet public", l+1, gi)
			}
			muLeft[bi][j] = r.mu[g.A]
			muRight[bi][j] = r.mu[g.B]
		}
		cd, err := sharing.GetConstDomain(b.k)
		if err != nil {
			return err
		}
		constDoms[bi] = cd
	}

	computeShares := func(i int) (sized, error) {
		role := c.Role(i)
		shareKey := role.SecretKey()
		keyClass := KeyRole
		if !p.NoKFF {
			kff := &r.kffLayer[l][i-1]
			kffSK, err := r.openKFF(kff, role.SecretKey(), comm.PhaseOnline)
			if err != nil {
				return nil, err
			}
			shareKey = kffSK
			keyClass = KeyKFF
		}
		vals := make([]field.Element, len(layerBatches))
		for bi, b := range layerBatches {
			lamA, err := r.combineEnvelopes(shareKey, b.envLeft[i-1], b.packedLeft[i-1])
			if err != nil {
				return nil, err
			}
			lamB, err := r.combineEnvelopes(shareKey, b.envRight[i-1], b.packedRight[i-1])
			if err != nil {
				return nil, err
			}
			lamG, err := r.combineEnvelopes(shareKey, b.envGamma[i-1], b.packedGamma[i-1])
			if err != nil {
				return nil, err
			}
			r.p.audit.Record(comm.PhaseOnline, ValPackedShare, keyClass)
			la, lb, lg := reduceToField(lamA), reduceToField(lamB), reduceToField(lamG)
			sa, err := constDoms[bi].Share(muLeft[bi], i)
			if err != nil {
				return nil, err
			}
			sb, err := constDoms[bi].Share(muRight[bi], i)
			if err != nil {
				return nil, err
			}
			// μ_i^γ = μ_i^α·μ_i^β + μ_i^α·λ_i^β + μ_i^β·λ_i^α + λ_i^Γ.
			vals[bi] = sa.Value.Mul(sb.Value).
				Add(sa.Value.Mul(lb)).
				Add(sb.Value.Mul(la)).
				Add(lg)
		}
		return muBundle{vals: vals}, nil
	}

	if p.Robust {
		// IT-GOD path (§5.3 alternative): bare shares, no proofs;
		// Berlekamp–Welch decodes up to t lies out.
		posts := r.layerStepRobust(c, l, computeShares, len(layerBatches))
		for bi, b := range layerBatches {
			var shares []sharing.Share
			for i := 1; i <= c.N(); i++ {
				raw, ok := posts[i]
				if !ok {
					continue
				}
				shares = append(shares, sharing.Share{Index: i, Value: raw.(muBundle).vals[bi]})
			}
			degree := p.T + 2*(b.k-1)
			muGamma, err := sharing.ReconstructRobust(shares, degree, b.k, p.T)
			if err != nil {
				return fmt.Errorf("batch %d (robust): %w", bi, err)
			}
			for j, gi := range b.Gates {
				w := gates[gi].Out
				r.mu[w] = muGamma[j]
				r.muKnown[w] = true
			}
		}
		return nil
	}

	posts, err := r.committeeStep(c, comm.PhaseOnline, comm.CatMu, fmt.Sprintf("mu-layer%d", l+1),
		computeShares,
		func(i int) sized { return garbage{size: len(layerBatches) * field.ElementSize} })
	if err != nil {
		return err
	}

	// Reconstruct μ^γ per batch from verified shares.
	for bi, b := range layerBatches {
		bsp := r.stepSpan("reconstruct-batch")
		bsp.SetInt("batch", int64(bi))
		bsp.SetInt("gates", int64(b.k))
		var shares []sharing.Share
		for i := 1; i <= c.N(); i++ {
			raw, ok := posts[i]
			if !ok {
				continue
			}
			shares = append(shares, sharing.Share{Index: i, Value: raw.(muBundle).vals[bi]})
		}
		degree := p.T + 2*(b.k-1)
		muGamma, err := reconstructShares(shares, degree, b.k)
		bsp.End()
		if err != nil {
			return fmt.Errorf("batch %d: %w", bi, err)
		}
		for j, gi := range b.Gates {
			w := gates[gi].Out
			r.mu[w] = muGamma[j]
			r.muKnown[w] = true
		}
	}
	return nil
}

// layerStepRobust runs a μ layer without proofs: honest roles post their
// shares, malicious roles post uniformly random lies (type-correct —
// anything else would be trivially discardable), fail-stop roles post
// nothing. All posted bundles are returned; decoding sorts them out.
func (r *run) layerStepRobust(c *yoso.Committee, l int,
	honest func(i int) (sized, error), nBatches int) map[int]any {
	type outcome struct {
		payload sized
		ok      bool
	}
	results := make([]outcome, c.N())
	// Members run on the worker pool; results stay slot-indexed. Honest
	// errors are swallowed (treated as crashes), so the fan-out itself
	// never fails.
	_ = r.pfor(c.N(), func(idx0 int) error {
		idx := idx0 + 1
		role := c.Role(idx)
		switch role.Behavior {
		case yoso.FailStop:
			return nil
		case yoso.Malicious:
			lies := make([]field.Element, nBatches)
			for j := range lies {
				lies[j] = field.MustRandom()
			}
			payload := muBundle{vals: lies}
			enc, err := encodePost(&r.p.params, payload)
			if err != nil {
				return nil // treated as a crash; decoding tolerates it
			}
			role.Post(comm.PhaseOnline, comm.CatMu, enc, payload)
			results[idx-1] = outcome{payload: payload, ok: true}
		default:
			payload, err := honest(idx)
			if err != nil {
				return nil // treated as a crash; decoding tolerates it
			}
			enc, err := encodePost(&r.p.params, payload)
			if err != nil {
				return nil
			}
			role.Post(comm.PhaseOnline, comm.CatMu, enc, payload)
			results[idx-1] = outcome{payload: payload, ok: true}
		}
		return nil
	})
	posts := make(map[int]any, c.N())
	for idx1, res := range results {
		if res.ok {
			posts[idx1+1] = res.payload
		}
	}
	for i := 1; i <= c.N(); i++ {
		role := c.Role(i)
		if role.Behavior != yoso.Honest {
			r.excluded = append(r.excluded, fmt.Sprintf("%s@mu-layer%d (%s)", role.Name(), l+1, role.Behavior))
		}
	}
	c.SpeakAll()
	return posts
}

// outputPayload is OnOut's broadcast: Re-encrypt* envelopes of output-wire
// λ's under the receiving clients' keys (no further tsk resharing).
type outputPayload struct {
	envs map[int]envelope // output gate index → envelope
}

func (o outputPayload) wireSize() int {
	s := 0
	for _, e := range o.envs {
		s += e.Ct.Size()
	}
	return s
}

func (o outputPayload) encodeWire(p *Params) ([]byte, error) {
	out := make([]byte, 0, o.wireSize())
	var err error
	for _, gi := range sortedKeys(o.envs) {
		if out, err = appendEnvelopes(p, out, []envelope{o.envs[gi]}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// onlineOutput re-encrypts each output wire's λ to its client, who opens
// v = μ + λ.
func (r *run) onlineOutput() (map[int][]field.Element, error) {
	p := r.p.params
	te := p.TE
	gates := r.p.circ.Gates()
	shares, err := r.recoverShares(r.onOut, comm.PhaseOnline)
	if err != nil {
		return nil, err
	}
	type outGate struct {
		gi     int
		client int
		wire   circuit.WireID
	}
	var outs []outGate
	for _, client := range r.p.circ.Clients() {
		for _, gi := range r.p.circ.OutputGates(client) {
			outs = append(outs, outGate{gi: gi, client: client, wire: gates[gi].A})
		}
	}
	garbSize := len(outs) * (r.tpk.CiphertextSize() + 60)

	posts, err := r.committeeStep(r.onOut, comm.PhaseOnline, comm.CatOutput, "output",
		func(i int) (sized, error) {
			sh := shares[i-1]
			if sh == nil {
				return nil, fmt.Errorf("role %d has no tsk share", i)
			}
			from := r.onOut.Role(i).Name()
			payload := outputPayload{envs: map[int]envelope{}}
			for _, og := range outs {
				part, err := te.PartialDecrypt(r.tpk, sh, r.wireCt[og.wire])
				if err != nil {
					return nil, err
				}
				data, err := te.EncodePartial(part)
				if err != nil {
					return nil, err
				}
				env, err := r.clients[og.client].role.PublicKey().Encrypt(data)
				if err != nil {
					return nil, err
				}
				payload.envs[og.gi] = envelope{From: from, To: fmt.Sprintf("client/%d", og.client), Ct: env}
			}
			return payload, nil
		},
		func(i int) sized { return garbage{size: garbSize} })
	if err != nil {
		return nil, err
	}

	byGate := map[int][]envelope{}
	for _, raw := range posts {
		payload, ok := raw.(outputPayload)
		if !ok {
			continue
		}
		for gi, env := range payload.envs {
			byGate[gi] = append(byGate[gi], env)
		}
	}

	outputs := map[int][]field.Element{}
	for _, og := range outs {
		if !r.muKnown[og.wire] {
			return nil, fmt.Errorf("core: output wire %d has no public μ", og.wire)
		}
		cs := r.clients[og.client]
		lamInt, err := r.combineEnvelopes(clientSecret(cs), byGate[og.gi], r.wireCt[og.wire])
		if err != nil {
			return nil, fmt.Errorf("output gate %d: %w", og.gi, err)
		}
		r.p.audit.Record(comm.PhaseOnline, ValOutput, KeyClient)
		v := r.mu[og.wire].Add(reduceToField(lamInt))
		outputs[og.client] = append(outputs[og.client], v)
	}
	return outputs, nil
}

// clientSecret returns the client's long-term secret key. Clients are
// known machines: their keys outlive their single input-role broadcast.
func clientSecret(cs *clientState) pke.SecretKey {
	return cs.role.SecretKey()
}
