package core

import (
	"testing"

	"yosompc/internal/circuit"
	"yosompc/internal/monitor"
	"yosompc/internal/yoso"
)

// TestMonitorDerivesRunProgressFromBoard pins the monitor acceptance
// contract: attached to a run's board and given nothing else, the monitor
// reports every committee complete for an all-honest run, and for a
// fail-stop run it identifies the silent members and the remaining §5.4
// margin — all derived from manifests and postings alone.
func TestMonitorDerivesRunProgressFromBoard(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {2, 3}, 1: {4, 5}})

	t.Run("honest", func(t *testing.T) {
		proto, err := New(simParams(7, 1, 2, nil), circ, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := monitor.New()
		m.AttachBoard(proto.Board())
		if _, err := proto.Run(in); err != nil {
			t.Fatal(err)
		}
		s := m.Snapshot()
		if !s.Complete || s.Fraction != 1 {
			t.Fatalf("honest run not complete: %+v", s)
		}
		for _, c := range s.Committees {
			if c.Posted != c.N || len(c.Missing) != 0 {
				t.Errorf("committee %s incomplete: %+v", c.Committee, c)
			}
			if c.Quorum != 1+2*(2-1)+1 { // t + 2(k−1) + 1
				t.Errorf("committee %s quorum = %d", c.Committee, c.Quorum)
			}
		}
		if s.Unexpected != 0 {
			t.Errorf("unexpected posts: %d", s.Unexpected)
		}
	})

	t.Run("failstop", func(t *testing.T) {
		adv := yoso.NewAdversary(0, 1, 7) // one silent member per committee
		proto, err := New(simParams(7, 1, 2, adv), circ, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := monitor.New()
		m.AttachBoard(proto.Board())
		if _, err := proto.Run(in); err != nil {
			t.Fatal(err)
		}
		s := m.Snapshot()
		if s.Complete {
			t.Fatal("fail-stop run reported complete")
		}
		// Every committee tolerates n − quorum = 7 − 4 = 3 fail-stops and
		// lost exactly one, so the minimum margin is 2.
		if s.MarginMin == nil || *s.MarginMin != 2 {
			t.Fatalf("margin = %v, want 2", s.MarginMin)
		}
		for _, c := range s.Committees {
			if c.Posted != c.N-1 || len(c.Missing) != 1 {
				t.Errorf("committee %s: posted %d, missing %v", c.Committee, c.Posted, c.Missing)
			}
		}
	})
}
