// Package core implements the paper's YOSO MPC protocol (Section 5): the
// trusted setup with keys-for-future (KFF), the offline phase preparing
// packed wire randomness under a linearly homomorphic threshold encryption,
// and the online phase computing μ = v − λ openings with O(1) amortized
// communication per gate.
//
// Committee schedule (one broadcast per role, per the YOSO model):
//
//	offline:  OffB1 (Beaver a-parts) → OffB2 (Beaver b/c-parts)
//	          → OffR (wire randomness + packing helpers)
//	          → OffDec (holds tsk epoch 0: decrypts ε/δ, reshares tsk)
//	          → OffRe (re-encrypts λ/Γ packed shares and input-wire λ's to
//	            KFFs, reshares tsk to OffBridge)
//	boundary: OffBridge (single purpose: hands tsk to OnC1 once the online
//	          role keys exist, so OffRe never waits for them)
//	online:   OnC1 (re-encrypts KFF secret keys to role keys, reshares tsk
//	          to the output committee)
//	          → clients publish μ for their input wires
//	          → one committee per multiplication layer publishes μ-shares
//	          → OnOut re-encrypts output-wire λ's to the receiving clients
//
// All "everyone computes" steps (homomorphic evaluation over public
// ciphertexts, share reconstruction from public postings) are executed once
// by the driver, as any bulletin-board observer could.
package core

import (
	"errors"
	"fmt"
	"log/slog"

	"yosompc/internal/parallel"
	"yosompc/internal/pke"
	"yosompc/internal/telemetry"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

// TE is the threshold-encryption surface the protocol needs: the paper's
// eight-algorithm API plus wire serialization.
type TE interface {
	tte.Scheme
	tte.Codec
}

// Params configures a protocol run.
type Params struct {
	// N is the committee size.
	N int
	// T is the per-committee corruption bound; the protocol requires
	// T + 2(K−1) + 1 ≤ N (the reconstruction threshold of §5.3).
	T int
	// K is the packing factor (≈ N·ε, or ≈ N·ε/2 in fail-stop mode).
	K int
	// TE is the threshold-encryption backend.
	TE TE
	// PKE is the role/KFF encryption backend.
	PKE pke.Scheme
	// Adversary corrupts committees; nil means all-honest.
	Adversary *yoso.Adversary
	// Logger, when non-nil, receives structured progress events (phase
	// transitions, committee steps, exclusions). Nil disables logging.
	// When Trace is also set, events carry the ID of the span they
	// happened under, so logs and trace files cross-reference.
	Logger *slog.Logger
	// Trace, when non-nil, receives hierarchical spans (protocol → phase
	// → committee step → member / gate batch) with wall-clock, board-byte
	// deltas, and worker attribution. Nil disables tracing at zero cost:
	// the instrumented paths call through nil-receiver no-ops.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, receives the run's counters, gauges, and
	// histograms (worker-pool utilization, queue depth). Nil disables
	// metrics at zero cost.
	Metrics *telemetry.Registry
	// Proc names the OS process for cross-process correlation: postings
	// carry it in their trace context (so a shared boardd can attribute
	// entries) and Chrome trace exports embed it (so monitor.MergeTraces
	// can align this process's spans onto the board timeline). Empty for
	// single-process runs.
	Proc string
	// NoKFF disables the keys-for-future machinery — the paper's §3.2
	// "naive" ablation: packed shares stay under tpk through the offline
	// phase and the first online committee re-encrypts them to the (by
	// then known) role keys, moving the Θ(n²·batches) re-encryption cost
	// into the online phase. Used by the KFF ablation benchmark.
	NoKFF bool
	// Workers bounds the worker-pool parallelism of the execution engine:
	// committee-member contribution loops and the driver's "everyone
	// computes" loops (contribution sums, homomorphic packing, opening
	// combination) fan out over at most Workers goroutines. 0 (the
	// default) means runtime.NumCPU(); 1 forces the fully serial path.
	// The worker count never changes what is produced: posted bundles,
	// metered byte counts, and audit totals are identical for every value
	// (see EffectiveWorkers).
	Workers int
	// Robust switches the online μ-opening to information-theoretic
	// guaranteed output delivery: layer roles post bare shares without
	// proofs and cheaters are *decoded out* by Berlekamp–Welch error
	// correction instead of filtered by NIZK verification. This saves the
	// per-layer proof broadcasts but needs the stronger committee bound
	// 3T + 2(K−1) + 1 ≤ N (degree + 2·errors + 1 shares to decode).
	Robust bool
}

// Errors reported by parameter validation and the run driver.
var (
	ErrBadParams   = errors.New("core: invalid parameters")
	ErrNotEnough   = errors.New("core: not enough honest contributions for guaranteed output delivery")
	ErrWrongInputs = errors.New("core: client inputs do not match the circuit")
)

// Validate checks structural soundness of the parameters.
func (p *Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("%w: n=%d", ErrBadParams, p.N)
	case p.T < 0 || p.T >= p.N:
		return fmt.Errorf("%w: t=%d for n=%d", ErrBadParams, p.T, p.N)
	case p.K < 1:
		return fmt.Errorf("%w: k=%d", ErrBadParams, p.K)
	case p.T+2*(p.K-1)+1 > p.N:
		return fmt.Errorf("%w: reconstruction threshold t+2(k-1)+1 = %d exceeds n = %d",
			ErrBadParams, p.T+2*(p.K-1)+1, p.N)
	case p.Robust && 3*p.T+2*(p.K-1)+1 > p.N:
		return fmt.Errorf("%w: robust decoding threshold 3t+2(k-1)+1 = %d exceeds n = %d",
			ErrBadParams, 3*p.T+2*(p.K-1)+1, p.N)
	case p.Workers < 0:
		return fmt.Errorf("%w: workers=%d", ErrBadParams, p.Workers)
	case p.TE == nil:
		return fmt.Errorf("%w: missing TE backend", ErrBadParams)
	case p.PKE == nil:
		return fmt.Errorf("%w: missing PKE backend", ErrBadParams)
	}
	return nil
}

// ReconstructionThreshold returns the number of μ-shares needed to open a
// batch: t + 2(k−1) + 1 (paper §5.3).
func (p *Params) ReconstructionThreshold() int { return p.T + 2*(p.K-1) + 1 }

// PackedDegree returns the degree t+k−1 of the packed λ/Γ sharings.
func (p *Params) PackedDegree() int { return p.T + p.K - 1 }

// EffectiveWorkers resolves the Workers knob: 0 (or any value below 1)
// means one worker per CPU, anything else is taken literally.
func (p *Params) EffectiveWorkers() int { return parallel.Normalize(p.Workers) }
