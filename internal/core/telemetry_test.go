package core

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"

	"yosompc/internal/circuit"
	"yosompc/internal/telemetry"
)

// TestTelemetryPhaseSpansCoverWallClock pins the tracing acceptance
// contract: a traced small-committee run produces a Chrome-loadable trace
// whose setup/offline/online phase spans sum to within 5% of the measured
// wall clock, with board bytes bridged onto the spans and worker-pool
// metrics populated.
func TestTelemetryPhaseSpansCoverWallClock(t *testing.T) {
	circ, err := circuit.WideMul(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := simParams(12, 2, 3, nil)
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	params.Trace = tr
	params.Metrics = reg
	proto, err := New(params, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{
		0: {2, 3, 4, 5, 2, 3, 4, 5},
		1: {6, 7, 2, 3, 6, 7, 2, 3},
	})
	start := time.Now()
	res, err := proto.Run(in)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	var phaseSum time.Duration
	seen := map[string]bool{}
	var root *telemetry.SpanRecord
	for i, sp := range spans {
		if sp.Name == "protocol" {
			root = &spans[i]
		}
		if strings.HasPrefix(sp.Name, "phase:") {
			seen[sp.Name] = true
			phaseSum += time.Duration(sp.DurUS) * time.Microsecond
		}
	}
	for _, want := range []string{"phase:setup", "phase:offline", "phase:online"} {
		if !seen[want] {
			t.Errorf("missing %s span", want)
		}
	}
	if root == nil {
		t.Fatal("missing protocol root span")
	}

	// Phase spans must account for the run's wall clock within 5%.
	diff := wall - phaseSum
	if diff < 0 {
		diff = -diff
	}
	if diff > wall/20 {
		t.Errorf("phase spans sum to %v, wall clock %v (diff %v > 5%%)", phaseSum, wall, diff)
	}

	// The meter bridge: the root span covers every posting of the run.
	if root.Bytes != res.Report.Total {
		t.Errorf("root span bytes = %d, report total = %d", root.Bytes, res.Report.Total)
	}
	if root.Postings != res.Report.Postings {
		t.Errorf("root span postings = %d, report = %d", root.Postings, res.Report.Postings)
	}

	// Committee-member spans carry worker attribution.
	var attributed bool
	for _, sp := range spans {
		if sp.Name == "member" && sp.Worker >= 0 {
			attributed = true
			break
		}
	}
	if !attributed {
		t.Error("no worker-attributed member span")
	}

	// Per-gate-batch spans exist for packing and reconstruction.
	for _, want := range []string{"pack-batch", "reconstruct-batch", "mu-layer", "committee:beaver-a"} {
		found := false
		for _, sp := range spans {
			if sp.Name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %q span", want)
		}
	}

	// The Chrome export is loadable: valid JSON, complete events only.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Ts  *int64 `json:"ts"`
			Dur *int64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) != len(spans) {
		t.Errorf("chrome trace has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil {
			t.Fatalf("malformed trace event: %+v", ev)
		}
	}

	// Worker-pool metrics populated.
	snap := reg.Snapshot()
	if snap.Counters["core.pool.tasks"] == 0 {
		t.Error("core.pool.tasks counter never incremented")
	}
	if snap.Counters["core.pool.busy_ns"] == 0 {
		t.Error("core.pool.busy_ns counter never incremented")
	}
	if snap.Gauges["core.pool.workers"] != int64(params.EffectiveWorkers()) {
		t.Errorf("core.pool.workers = %d, want %d",
			snap.Gauges["core.pool.workers"], params.EffectiveWorkers())
	}
	if snap.Histograms["core.pool.task_ns"].Count == 0 {
		t.Error("core.pool.task_ns histogram empty")
	}
}

// TestTelemetryLoggerCarriesSpanIDs pins satellite coverage: with Logger
// and Trace both set, phase and offline-step events carry the span ID,
// and the offline driver now logs its steps.
func TestTelemetryLoggerCarriesSpanIDs(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	params := simParams(6, 1, 2, nil)
	params.Logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	params.Trace = telemetry.NewTracer()
	proto, err := New(params, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2}, 1: {3, 4}})
	if _, err := proto.Run(in); err != nil {
		t.Fatal(err)
	}

	wantMsgs := map[string]bool{
		"yosompc: setup phase starting":   false,
		"yosompc: offline phase starting": false,
		"yosompc: offline step starting":  false,
		"yosompc: offline step complete":  false,
		"yosompc: online phase starting":  false,
		"yosompc: committee spoke":        false,
	}
	dec := json.NewDecoder(&logBuf)
	for dec.More() {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		msg, _ := line["msg"].(string)
		if _, tracked := wantMsgs[msg]; !tracked {
			continue
		}
		id, ok := line["span"].(float64)
		if !ok || id == 0 {
			t.Errorf("log event %q missing span ID: %v", msg, line)
		}
		wantMsgs[msg] = true
	}
	for msg, seen := range wantMsgs {
		if !seen {
			t.Errorf("expected log event %q never emitted", msg)
		}
	}
}

// TestTelemetryDisabledRunUnchanged: a run with nil Trace/Metrics still
// works and the nil logger path stays silent (no spans leak into logs).
func TestTelemetryDisabledRunUnchanged(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	params := simParams(6, 1, 2, nil)
	proto, err := New(params, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2}, 1: {3, 4}})
	res, err := proto.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs[0]) != 1 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}
