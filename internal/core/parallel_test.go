package core

import (
	"reflect"
	"sort"
	"testing"

	"yosompc/internal/circuit"
	"yosompc/internal/field"
	"yosompc/internal/yoso"
)

// runWithWorkers executes one run at the given worker count and returns the
// observable record: result plus the sorted audit-event multiset.
func runWithWorkers(t *testing.T, params Params, workers int, circ *circuit.Circuit, in map[int][]field.Element) (*Result, []string) {
	t.Helper()
	params.Workers = workers
	res := runAndCompare(t, params, circ, in)
	events := make([]string, len(res.Audit))
	for i, e := range res.Audit {
		events[i] = e.String()
	}
	sort.Strings(events)
	return res, events
}

// The engine's contract: the worker count changes wall clock only. Every
// observable — outputs, the metered communication report, the excluded
// list, the round count, the audit-event multiset — is identical between
// the serial path (Workers=1) and any pool size.
func TestWorkersSerialEquivalence(t *testing.T) {
	circ, err := circuit.WideMul(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {2, 3, 4, 5}, 1: {6, 7, 2, 3}})
	serial, serialEvents := runWithWorkers(t, simParams(12, 2, 3, nil), 1, circ, in)
	for _, workers := range []int{2, 8} {
		par, parEvents := runWithWorkers(t, simParams(12, 2, 3, nil), workers, circ, in)
		if !reflect.DeepEqual(serial.Report, par.Report) {
			t.Errorf("workers=%d: report diverged from serial:\nserial: %+v\nparallel: %+v",
				workers, serial.Report, par.Report)
		}
		for client, vals := range serial.Outputs {
			if !field.EqualVec(par.Outputs[client], vals) {
				t.Errorf("workers=%d: client %d outputs %v, serial %v",
					workers, client, par.Outputs[client], vals)
			}
		}
		if par.Rounds != serial.Rounds {
			t.Errorf("workers=%d: rounds = %d, serial %d", workers, par.Rounds, serial.Rounds)
		}
		if !reflect.DeepEqual(serialEvents, parEvents) {
			t.Errorf("workers=%d: audit multiset diverged (serial %d events, parallel %d)",
				workers, len(serialEvents), len(parEvents))
		}
	}
}

// The same contract must survive an active adversary: exclusions, robust
// decoding and fail-stop gaps all run through the pool.
func TestWorkersSerialEquivalenceAdversarial(t *testing.T) {
	circ, err := circuit.InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	run := func(workers int) (*Result, []string) {
		// n=12, t=2, k=2: 2 malicious + 2 crashed leaves 8 honest ≥ 7.
		params := simParams(12, 2, 2, yoso.NewAdversary(2, 2, 13))
		return runWithWorkers(t, params, workers, circ, in)
	}
	serial, serialEvents := run(1)
	par, parEvents := run(8)
	if !reflect.DeepEqual(serial.Report, par.Report) {
		t.Errorf("adversarial report diverged:\nserial: %+v\nparallel: %+v", serial.Report, par.Report)
	}
	sortedExcluded := func(res *Result) []string {
		out := append([]string(nil), res.Excluded...)
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(sortedExcluded(serial), sortedExcluded(par)) {
		t.Errorf("excluded diverged: serial %v, parallel %v", serial.Excluded, par.Excluded)
	}
	if !reflect.DeepEqual(serialEvents, parEvents) {
		t.Errorf("adversarial audit multiset diverged (serial %d events, parallel %d)",
			len(serialEvents), len(parEvents))
	}
}

// Robust (IT-GOD) mode drives the partial-decryption fan-in and
// Berlekamp–Welch correction through the pool.
func TestWorkersSerialEquivalenceRobust(t *testing.T) {
	circ, err := circuit.InnerProduct(4)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3, 4}, 1: {5, 6, 7, 8}})
	run := func(workers int) (*Result, []string) {
		params := simParams(14, 3, 2, yoso.NewAdversary(3, 0, 41))
		params.Robust = true
		return runWithWorkers(t, params, workers, circ, in)
	}
	serial, serialEvents := run(1)
	par, parEvents := run(6)
	if !reflect.DeepEqual(serial.Report, par.Report) {
		t.Errorf("robust report diverged:\nserial: %+v\nparallel: %+v", serial.Report, par.Report)
	}
	if !reflect.DeepEqual(serialEvents, parEvents) {
		t.Errorf("robust audit multiset diverged (serial %d events, parallel %d)",
			len(serialEvents), len(parEvents))
	}
	if par.Outputs[0][0] != field.New(70) || serial.Outputs[0][0] != field.New(70) {
		t.Errorf("robust outputs: serial %v, parallel %v", serial.Outputs[0][0], par.Outputs[0][0])
	}
}

func TestEffectiveWorkers(t *testing.T) {
	p := Params{}
	if got := p.EffectiveWorkers(); got < 1 {
		t.Errorf("default workers = %d, want ≥ 1", got)
	}
	p.Workers = 3
	if got := p.EffectiveWorkers(); got != 3 {
		t.Errorf("workers = %d, want 3", got)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	params := simParams(6, 1, 2, nil)
	params.Workers = -1
	if _, err := New(params, circ, nil); err == nil {
		t.Error("negative worker count accepted")
	}
}
