package core

import (
	"crypto/sha256"
	"fmt"
	"math/big"

	"yosompc/internal/comm"
	"yosompc/internal/pke"
)

// kffSecretBound bounds the integer encoding of a KFF secret key
// (pke.SecretKeySize = 32 bytes).
var kffSecretBound = new(big.Int).Lsh(big.NewInt(1), 8*pke.SecretKeySize)

// setup executes Π_YOSO-Setup (paper §5.1):
//
//  1. generate keys-for-future for every role of every online mul-layer
//     committee and for every client, publishing the public halves and
//     TEnc'ing the secret halves under tpk;
//  2. publish the NIZK CRS (the attestation authority stands in for it);
//  3. run TKGen; the epoch-0 shares are handed to the first tsk-holding
//     offline committee when the offline phase forms it.
func (r *run) setup() error {
	p := r.p.params
	te := p.TE

	// TKGen.
	tpk, shares, err := te.KeyGen(p.N, p.T)
	if err != nil {
		return fmt.Errorf("TKGen: %w", err)
	}
	r.tpk = tpk
	r.offDecShares = shares
	// Publishing tpk: the public key's real board announcement bytes.
	tpkEnc, err := te.EncodePublicKey(tpk)
	if err != nil {
		return fmt.Errorf("encoding tpk announcement: %w", err)
	}
	r.p.board.Post("setup", comm.PhaseSetup, comm.CatCRS, tpkEnc, tpk)

	// NIZK CRS: the authority key takes the place of the Groth–Maller crs;
	// a 32-byte digest of the label stands in for the crs bytes.
	crs := sha256.Sum256([]byte("nizkaok-crs"))
	r.p.board.Post("setup", comm.PhaseSetup, comm.CatCRS, crs[:], "nizkaok-crs")

	// Known parties (clients). They are long-lived machines: their single
	// *input-role* broadcast is still enforced, but their keys survive to
	// receive outputs.
	r.clients = map[int]*clientState{}
	for _, id := range r.p.circ.Clients() {
		role, err := r.p.assign.NewKnownParty("client", id, comm.PhaseSetup)
		if err != nil {
			return err
		}
		r.clients[id] = &clientState{id: id, role: role}
	}

	// Keys for future: one per online mul-layer role, one per client.
	// The NoKFF ablation (§3.2's naive approach) skips them entirely and
	// re-encrypts under role keys during the online phase instead.
	depth := r.p.circ.Depth()
	r.kffClient = map[int]*kffEntry{}
	if !p.NoKFF {
		r.kffLayer = make([][]kffEntry, depth)
		for l := 0; l < depth; l++ {
			r.kffLayer[l] = make([]kffEntry, p.N)
			for i := 0; i < p.N; i++ {
				entry, err := r.newKFF(fmt.Sprintf("on-layer%d/%d", l+1, i+1))
				if err != nil {
					return err
				}
				r.kffLayer[l][i] = *entry
			}
		}
		for _, id := range r.p.circ.Clients() {
			if r.p.circ.InputCount(id) == 0 {
				continue // only input-contributing parties get a KFF (§5.1)
			}
			entry, err := r.newKFF(fmt.Sprintf("client/%d", id))
			if err != nil {
				return err
			}
			r.kffClient[id] = entry
		}
	}

	r.initWireState()
	return nil
}

// newKFF mints one key-for-future: publish pk, TEnc(tpk, sk).
func (r *run) newKFF(owner string) (*kffEntry, error) {
	p := r.p.params
	pub, sec, err := p.PKE.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("KFF keygen for %s: %w", owner, err)
	}
	skBytes := sec.Bytes()
	skInt := new(big.Int).SetBytes(skBytes)
	clear(skBytes)
	ct, err := p.TE.Encrypt(r.tpk, skInt, kffSecretBound)
	if err != nil {
		return nil, fmt.Errorf("TEnc of KFF secret for %s: %w", owner, err)
	}
	ctEnc, err := p.TE.EncodeCiphertext(ct)
	if err != nil {
		return nil, fmt.Errorf("encoding KFF ciphertext for %s: %w", owner, err)
	}
	r.p.board.Post("setup", comm.PhaseSetup, comm.CatKFF, append(pub.Bytes(), ctEnc...), pub)
	return &kffEntry{pub: pub, secretCt: ct}, nil
}
