package core

import (
	"context"
	"fmt"
	"math/big"

	"yosompc/internal/circuit"
	"yosompc/internal/comm"
	"yosompc/internal/field"
	"yosompc/internal/modexp"
	"yosompc/internal/nizk"
	"yosompc/internal/parallel"
	"yosompc/internal/pke"
	"yosompc/internal/sharing"
	"yosompc/internal/telemetry"
	"yosompc/internal/transport"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

// Protocol is a configured instance of the paper's YOSO MPC protocol for
// one circuit. Create it with New and execute it with Run.
type Protocol struct {
	params Params
	circ   *circuit.Circuit
	board  *transport.Board
	assign *yoso.Assignment
	auth   *nizk.Authority
	audit  *Auditor
}

// Result is the outcome of a protocol run.
type Result struct {
	// Outputs maps each client to its output values in gate order.
	Outputs map[int][]field.Element
	// Report is the communication breakdown of the run.
	Report comm.Report
	// Excluded lists roles whose proofs failed verification (malicious)
	// and roles that never spoke (fail-stop).
	Excluded []string
	// Audit is the key-usage trace (paper Figure 1).
	Audit []AuditEvent
	// Rounds is the number of sequential broadcast rounds (committee
	// speaks; parallel client speaks count as one round).
	Rounds int
}

// New configures a protocol run. A nil meter creates a private one.
func New(params Params, circ *circuit.Circuit, meter *comm.Meter) (*Protocol, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if circ == nil {
		return nil, fmt.Errorf("%w: nil circuit", ErrBadParams)
	}
	auth, err := nizk.NewAuthority()
	if err != nil {
		return nil, err
	}
	board := transport.NewBoard(meter)
	board.SetProc(params.Proc)
	assign := yoso.NewAssignment(board, params.PKE, params.Adversary)
	// Committee manifests advertise the packed reconstruction quorum, so a
	// board observer knows how many fail-stops each committee tolerates.
	assign.Quorum = params.ReconstructionThreshold()
	return &Protocol{
		params: params,
		circ:   circ,
		board:  board,
		assign: assign,
		auth:   auth,
		audit:  &Auditor{},
	}, nil
}

// Board exposes the bulletin board (for inspection in tests and tools).
func (p *Protocol) Board() *transport.Board { return p.board }

// Run executes setup, offline and online phases and returns the outputs.
// It is Prepare followed by a single Execute; callers that want the
// deployment-realistic split (preprocess ahead of time, run online when
// inputs arrive) use those directly.
func (p *Protocol) Run(inputs map[int][]field.Element) (*Result, error) {
	for _, client := range p.circ.Clients() {
		if len(inputs[client]) != p.circ.InputCount(client) {
			return nil, fmt.Errorf("%w: client %d supplied %d of %d inputs",
				ErrWrongInputs, client, len(inputs[client]), p.circ.InputCount(client))
		}
	}
	prepared, err := p.Prepare()
	if err != nil {
		return nil, err
	}
	return prepared.Execute(inputs)
}

// envelope is an addressed (PKE-encrypted) message on the board.
type envelope struct {
	From string
	To   string
	Ct   pke.Ciphertext
}

// beaverTriple holds the tpk-encrypted triple of one multiplication gate.
type beaverTriple struct {
	a, b, c tte.Ciphertext
}

// batchState carries everything the protocol accumulates for one batch of
// (at most) k multiplication gates.
type batchState struct {
	circuit.MulBatch
	// k is the effective packing width (may be below params.K on the
	// tail batch of a layer).
	k int
	// helpers[kind][j] are the summed helper encryptions for packing
	// (kind 0 = left λ, 1 = right λ, 2 = Γ), t per vector.
	helpers [][]tte.Ciphertext
	// packedLeft/packedRight/packedGamma are the per-index packed-share
	// ciphertexts under tpk (offline Step 4).
	packedLeft, packedRight, packedGamma []tte.Ciphertext
	// envLeft/envRight/envGamma[i] are the Re-encrypt envelope sets
	// addressed to online role i+1's KFF (offline Step 6): one envelope
	// per OffRe member carrying a partial decryption.
	envLeft, envRight, envGamma [][]envelope
}

// run is the mutable state of one protocol execution.
type run struct {
	p *Protocol
	// ctx cancels the run between committee steps.
	ctx context.Context

	// committees (see the schedule in the package comment)
	offB1, offB2, offR, offDec, offRe *yoso.Committee
	// offBridge holds tsk across the offline/online boundary: OffRe can
	// then speak entirely within the offline phase (all its targets are
	// KFFs and offBridge's role keys), and only this single-purpose
	// committee waits for the online role keys.
	offBridge   *yoso.Committee
	onC1, onOut *yoso.Committee
	layers      []*yoso.Committee

	// clients
	clients map[int]*clientState

	// threshold encryption state
	tpk tte.PublicKey
	// tskShares holds the current committee's reconstructed shares while
	// the driver executes that committee's step; the dealer's epoch-0
	// shares go to offDec.
	offDecShares []tte.KeyShare
	// handoffs[committee name][target index] collects encrypted tsk
	// subshares addressed to that committee's members.
	handoffs map[string]map[int][]envelope

	// keys-for-future: one per online mul-layer role and one per client
	kffLayer  [][]kffEntry // [layer][index-1]
	kffClient map[int]*kffEntry

	// per-wire λ ciphertexts under tpk
	wireCt []tte.Ciphertext

	// per-mul-gate Beaver triples (indexed by gate index in circ.Gates())
	beaver map[int]*beaverTriple

	// per-mul-gate Γ ciphertexts (λ^α·λ^β − λ^γ under tpk)
	gammaCt map[int]tte.Ciphertext

	// batches in layer order
	batches []*batchState

	// input-wire λ envelopes: for each input gate index, the Re-encrypt
	// envelopes addressed to the owning client's KFF.
	inputEnv map[int][]envelope

	// public μ values per wire
	mu      []field.Element
	muKnown []bool

	// bookkeeping
	excluded []string

	// telemetry (all nil when disabled — every use is a nil-receiver
	// no-op, so the hot paths stay allocation-free without branching)
	rootSp  *telemetry.Span // whole-run span
	phaseSp *telemetry.Span // currently open phase span
	obs     parallel.Observer
}

// clientState is the driver's view of one client (an input/output role).
type clientState struct {
	id   int
	role *yoso.Role
}

// kffEntry is one key-for-future: the public key, the TEnc of the secret,
// and (after OnC1's step) the envelope re-encrypting the secret to the
// owner's role key.
type kffEntry struct {
	pub       pke.PublicKey
	secretCt  tte.Ciphertext
	delivered []envelope // partial-decryption envelopes under the owner's role key
}

// --- shared helpers ---------------------------------------------------

// rolePost is one role's step contribution as read back from the board:
// the payload and the attached proof. Fail-stop roles never produce one.
type rolePost struct {
	payload any
	proof   nizk.Proof
}

// sized is implemented by step payloads: wireSize is the modelled encoded
// length (the costmodel anchor) and encodeWire produces the actual bytes
// that go on the board. speak cross-checks the two per message, so the
// self-reported accounting can never drift from what really travels.
type sized interface {
	wireSize() int
	encodeWire(p *Params) ([]byte, error)
}

// encodePost produces a payload's wire bytes and verifies them against the
// modelled wireSize. A mismatch is a codec/costmodel bug, surfaced as an
// error rather than silently mis-metered. It deliberately takes only the
// codec-bearing Params, never run state: everything a payload encodes is
// already public (ciphertexts, proofs, masked openings).
func encodePost(p *Params, payload sized) ([]byte, error) {
	enc, err := payload.encodeWire(p)
	if err != nil {
		return nil, fmt.Errorf("encoding %T: %w", payload, err)
	}
	if len(enc) != payload.wireSize() {
		return nil, fmt.Errorf("core: %T encodes to %d bytes but models wireSize %d",
			payload, len(enc), payload.wireSize())
	}
	return enc, nil
}

// appendEnvelopes appends each envelope's sealed-ciphertext encoding to dst.
// The From/To routing is driver bookkeeping kept in memory; only the PKE
// ciphertext travels on the board.
func appendEnvelopes(p *Params, dst []byte, envs []envelope) ([]byte, error) {
	for _, e := range envs {
		enc, err := p.PKE.EncodeCiphertext(e.Ct)
		if err != nil {
			return nil, err
		}
		dst = append(dst, enc...)
	}
	return dst, nil
}

// speak executes one role's speaking step. Honest roles compute their
// payload with `honest` and attach an attested proof; malicious roles post
// the payload from `malicious` (type-correct garbage) with a forged proof;
// fail-stop roles post nothing. The returned pointer is nil when nothing
// reached the board.
func (r *run) speak(role *yoso.Role, phase comm.Phase, cat comm.Category, label string,
	honest func() (sized, error), malicious func() sized) (*rolePost, error) {
	switch role.Behavior {
	case yoso.FailStop:
		return nil, nil
	case yoso.Malicious:
		payload := malicious()
		enc, err := encodePost(&r.p.params, payload)
		if err != nil {
			return nil, fmt.Errorf("core: %s at %s: %w", role.Name(), label, err)
		}
		proof := r.p.auth.Forge()
		role.Post(phase, cat, enc, payload)
		role.Post(phase, comm.CatProof, proof.Bytes(), proof)
		return &rolePost{payload: payload, proof: proof}, nil
	default:
		payload, err := honest()
		if err != nil {
			return nil, fmt.Errorf("core: %s at %s: %w", role.Name(), label, err)
		}
		enc, err := encodePost(&r.p.params, payload)
		if err != nil {
			return nil, fmt.Errorf("core: %s at %s: %w", role.Name(), label, err)
		}
		proof := r.p.auth.Attest(r.statement(label, role.Name()))
		role.Post(phase, cat, enc, payload)
		role.Post(phase, comm.CatProof, proof.Bytes(), proof)
		return &rolePost{payload: payload, proof: proof}, nil
	}
}

// logStep emits a structured progress event when a logger is configured.
// Events under an open phase span carry its ID, so log lines and trace
// files cross-reference.
func (r *run) logStep(label string, attrs ...any) {
	r.logSpan(r.phaseSp, label, attrs...)
}

// logSpan is logStep against an explicit span (phase transitions log
// against the span they open, not the one they close).
func (r *run) logSpan(sp *telemetry.Span, label string, attrs ...any) {
	if lg := r.p.params.Logger; lg != nil {
		if id := sp.ID(); id != 0 {
			attrs = append([]any{"span", id}, attrs...)
		}
		lg.Info("yosompc: "+label, attrs...)
	}
}

// initTelemetry opens the run's root span, bridges the tracer to the
// board meter (spans then carry byte deltas), and builds the worker-pool
// observer. With telemetry disabled everything stays nil.
func (r *run) initTelemetry() {
	pr := &r.p.params
	pr.Trace.BindMeter(r.p.board.Meter())
	// Name the trace export after the process so merged cross-process
	// views attribute this run's spans (the board already carries Proc on
	// every posting via SetProc in New).
	if pr.Proc != "" {
		pr.Trace.SetProc(pr.Proc)
	}
	r.rootSp = pr.Trace.Start("protocol")
	r.p.board.SetTraceSpan(r.rootSp.ID())
	r.rootSp.SetInt("n", int64(pr.N))
	r.rootSp.SetInt("t", int64(pr.T))
	r.rootSp.SetInt("k", int64(pr.K))
	r.rootSp.SetInt("workers", int64(pr.EffectiveWorkers()))
	if pr.Metrics != nil {
		r.obs = telemetry.NewPoolStats(pr.Metrics, "core.pool", pr.EffectiveWorkers())
		// Mirror the share-algebra domain-cache and modexp table-cache
		// counters into this run's registry (process-global caches: last
		// instrumented run wins).
		sharing.Instrument(pr.Metrics)
		modexp.Instrument(pr.Metrics)
	}
}

// beginPhase opens a phase span (setup/offline/online) under the run
// root; step spans child from it until endPhase.
func (r *run) beginPhase(name string) *telemetry.Span {
	r.phaseSp = r.rootSp.Child("phase:" + name)
	// Postings made during the phase carry the phase span's ID in their
	// trace context, linking board entries back to this trace.
	r.p.board.SetTraceSpan(r.phaseSp.ID())
	return r.phaseSp
}

// endPhase closes the current phase span.
func (r *run) endPhase() {
	r.phaseSp.End()
	r.phaseSp = nil
	r.p.board.SetTraceSpan(r.rootSp.ID())
}

// stepSpan opens a span under the current phase (or the run root outside
// any phase). Nil — and allocation-free — when tracing is disabled.
func (r *run) stepSpan(name string) *telemetry.Span {
	if r.phaseSp != nil {
		return r.phaseSp.Child(name)
	}
	return r.rootSp.Child(name)
}

// pfor fans fn over the run's worker pool, feeding per-task events to
// the pool observer when metrics are enabled.
func (r *run) pfor(n int, fn func(i int) error) error {
	return parallel.ForObserved(r.ctx, r.workers(), n, fn, r.obs)
}

func (r *run) statement(label, roleName string) []byte {
	return nizk.NewStatement(label).AddString(roleName).Bytes()
}

// valid reports whether a role's posted proof verifies for the step.
func (r *run) valid(role *yoso.Role, label string, post *rolePost) bool {
	if post == nil {
		return false
	}
	return r.p.auth.Verify(r.statement(label, role.Name()), post.proof)
}

// workers resolves the run's worker-pool size (see Params.Workers).
func (r *run) workers() int { return r.p.params.EffectiveWorkers() }

// committeeStep runs `speak` for every member of a committee and returns
// the map of verified posts (index → payload). Members whose proofs fail or
// who never spoke are recorded in r.excluded. After the step the committee
// receives the Spoke token.
//
// Members execute on the run's worker pool — they are independent machines,
// and the per-role work (threshold exponentiations, envelope encryptions)
// dominates real-backend wall clock. The first member error cancels the
// remaining members and aborts the step. The board serializes postings
// internally; results stay slot-indexed, so the verified/excluded
// bookkeeping (joined after all members finish, in member order) and the
// metered byte counts are independent of the worker count.
func (r *run) committeeStep(c *yoso.Committee, phase comm.Phase, cat comm.Category, label string,
	honest func(i int) (sized, error), malicious func(i int) sized) (map[int]any, error) {
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: %s: %w", label, err)
		}
	}
	sp := r.stepSpan("committee:" + label)
	sp.SetStr("committee", c.Name)
	sp.SetInt("members", int64(c.N()))
	// Committee steps run sequentially, so stamping the step span for the
	// duration attributes every member posting to it; the phase span
	// resumes when the step ends.
	r.p.board.SetTraceSpan(sp.ID())
	defer func() { r.p.board.SetTraceSpan(r.phaseSp.ID()) }()
	results := make([]*rolePost, c.N())
	err := parallel.ForWorker(r.ctx, r.workers(), c.N(), func(worker, idx0 int) error {
		msp := sp.Child("member")
		msp.SetInt("index", int64(idx0+1))
		msp.SetWorker(worker)
		idx := idx0 + 1
		post, err := r.speak(c.Role(idx), phase, cat, label,
			func() (sized, error) { return honest(idx) },
			func() sized { return malicious(idx) })
		msp.End()
		if err != nil {
			return err
		}
		results[idx0] = post
		return nil
	}, r.obs)
	if err != nil {
		sp.End()
		return nil, err
	}
	verified := make(map[int]any, c.N())
	for idx1, post := range results {
		idx := idx1 + 1
		role := c.Role(idx)
		if r.valid(role, label, post) {
			verified[idx] = post.payload
		} else {
			r.excluded = append(r.excluded, fmt.Sprintf("%s@%s (%s)", role.Name(), label, role.Behavior))
			r.logSpan(sp, "role excluded", "role", role.Name(), "step", label, "behavior", role.Behavior.String())
		}
	}
	c.SpeakAll()
	sp.SetInt("verified", int64(len(verified)))
	sp.End()
	r.logSpan(sp, "committee spoke", "committee", c.Name, "step", label,
		"verified", len(verified), "of", c.N())
	return verified, nil
}

// onesVec returns a slice of m big.Int ones — the (1)^|S| coefficient
// vector of TEval sums.
func onesVec(m int) []*big.Int {
	out := make([]*big.Int, m)
	for i := range out {
		out[i] = big.NewInt(1)
	}
	return out
}

// fieldCoeff lifts a field element to the non-negative integer coefficient
// TEval expects.
func fieldCoeff(e field.Element) *big.Int { return new(big.Int).SetUint64(e.Uint64()) }

// boundP is the public bound on a single field-element plaintext.
var boundP = new(big.Int).SetUint64(field.Modulus)

// reduceToField maps a decrypted integer to the MPC field.
func reduceToField(v *big.Int) field.Element { return field.FromBig(v) }

// combineEnvelopes decrypts the partial-decryption envelopes addressed to
// `who`, decodes them, and combines them into the integer plaintext.
func (r *run) combineEnvelopes(sk pke.SecretKey, envs []envelope, ct tte.Ciphertext) (*big.Int, error) {
	te := r.p.params.TE
	var parts []tte.PartialDec
	for _, env := range envs {
		part, err := r.decryptPartial(sk, env.Ct)
		if err != nil {
			// Envelope not for us or corrupted — skip; GOD relies on
			// the honest majority of envelopes.
			continue
		}
		parts = append(parts, part)
	}
	v, err := te.Combine(r.tpk, ct, parts)
	if err != nil {
		return nil, fmt.Errorf("%w: combining %d envelopes: %v", ErrNotEnough, len(envs), err)
	}
	return v, nil
}

// decryptPartial opens one partial-decryption envelope and decodes it,
// wiping the decrypted plaintext before returning — the raw bytes carry
// the partial decryption and must not outlive the decode.
func (r *run) decryptPartial(sk pke.SecretKey, ct pke.Ciphertext) (tte.PartialDec, error) {
	data, err := sk.Decrypt(ct)
	if err != nil {
		return nil, err
	}
	defer clear(data)
	return r.p.params.TE.DecodePartial(r.tpk, data)
}

// reconstructShares interpolates packed secrets from μ-shares.
func reconstructShares(shares []sharing.Share, degree, k int) ([]field.Element, error) {
	if len(shares) < degree+1 {
		return nil, fmt.Errorf("%w: have %d shares, need %d", ErrNotEnough, len(shares), degree+1)
	}
	return sharing.ReconstructPacked(shares[:degree+1], degree, k)
}
