package core

import (
	"fmt"
	"sync"

	"yosompc/internal/comm"
)

// KeyClass names a key family in the paper's Figure 1 key-usage flow.
type KeyClass string

// Key classes.
const (
	KeyTPK    KeyClass = "tpk"      // threshold public key / tsk shares
	KeyKFF    KeyClass = "kff"      // keys-for-future
	KeyRole   KeyClass = "role-key" // YOSO role-assignment keys
	KeyClient KeyClass = "client"   // client long-term keys
)

// ValueClass names a protocol secret category.
type ValueClass string

// Value classes.
const (
	ValKFFSecret   ValueClass = "kff-secret-key"
	ValTskShare    ValueClass = "tsk-share"
	ValWireLambda  ValueClass = "wire-lambda"
	ValPackedShare ValueClass = "packed-share"
	ValBeaverOpen  ValueClass = "beaver-opening"
	ValOutput      ValueClass = "output-lambda"
)

// AuditEvent records one decryption: which value class was opened under
// which key class during which phase. Tests assert the trace matches the
// paper's Figure 1 (e.g. packed shares are only ever opened under KFF keys,
// KFF secrets only under role keys re-encrypted by the first online
// committee).
type AuditEvent struct {
	Phase comm.Phase
	Value ValueClass
	Key   KeyClass
}

// String implements fmt.Stringer.
func (e AuditEvent) String() string {
	return fmt.Sprintf("%s: %s under %s", e.Phase, e.Value, e.Key)
}

// Auditor collects audit events. The zero value is ready to use and safe
// for concurrent use.
type Auditor struct {
	mu     sync.Mutex
	events []AuditEvent
}

// Record appends an event.
func (a *Auditor) Record(phase comm.Phase, val ValueClass, key KeyClass) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events = append(a.events, AuditEvent{Phase: phase, Value: val, Key: key})
}

// Events returns a snapshot of the trace.
func (a *Auditor) Events() []AuditEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AuditEvent, len(a.events))
	copy(out, a.events)
	return out
}

// Count returns the number of events matching the given classes; empty
// strings match anything.
func (a *Auditor) Count(phase comm.Phase, val ValueClass, key KeyClass) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, e := range a.events {
		if (phase == "" || e.Phase == phase) &&
			(val == "" || e.Value == val) &&
			(key == "" || e.Key == key) {
			n++
		}
	}
	return n
}
