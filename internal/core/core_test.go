package core

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"

	"yosompc/internal/circuit"
	"yosompc/internal/comm"
	"yosompc/internal/field"
	"yosompc/internal/paillier"
	"yosompc/internal/pke"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

// simParams returns fast ideal-backend parameters.
func simParams(n, t, k int, adv *yoso.Adversary) Params {
	return Params{
		N:         n,
		T:         t,
		K:         k,
		TE:        tte.NewSim(512),
		PKE:       pke.NewSim(),
		Adversary: adv,
	}
}

// realParams returns real-crypto parameters (threshold Paillier + ECIES).
func realParams(tb testing.TB, n, t, k int, adv *yoso.Adversary) Params {
	tb.Helper()
	te, err := tte.NewThreshold(paillier.FixedTestKey(3))
	if err != nil {
		tb.Fatal(err)
	}
	return Params{
		N:         n,
		T:         t,
		K:         k,
		TE:        te,
		PKE:       pke.NewECIES(),
		Adversary: adv,
	}
}

func inputsOf(vals map[int][]uint64) map[int][]field.Element {
	out := map[int][]field.Element{}
	for c, vs := range vals {
		es := make([]field.Element, len(vs))
		for i, v := range vs {
			es[i] = field.New(v)
		}
		out[c] = es
	}
	return out
}

// runAndCompare executes the protocol and checks outputs against the
// plaintext evaluator.
func runAndCompare(t *testing.T, params Params, circ *circuit.Circuit, in map[int][]field.Element) *Result {
	t.Helper()
	want, err := circ.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(params, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for client, vals := range want {
		if !field.EqualVec(res.Outputs[client], vals) {
			t.Errorf("client %d outputs = %v, want %v", client, res.Outputs[client], vals)
		}
	}
	return res
}

func TestInnerProductSim(t *testing.T) {
	circ, err := circuit.InnerProduct(4)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3, 4}, 1: {5, 6, 7, 8}})
	// ⟨x,y⟩ = 5+12+21+32 = 70
	res := runAndCompare(t, simParams(8, 2, 2, nil), circ, in)
	if res.Outputs[0][0] != field.New(70) {
		t.Errorf("inner product = %v, want 70", res.Outputs[0][0])
	}
}

func TestAdditionOnlyCircuit(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	z := b.Input(1)
	sum := b.Add(b.Add(x, y), z)
	b.Output(sum, 0)
	b.Output(sum, 1)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {10}, 1: {20, 30}})
	res := runAndCompare(t, simParams(5, 1, 1, nil), circ, in)
	if res.Outputs[0][0] != field.New(60) || res.Outputs[1][0] != field.New(60) {
		t.Errorf("outputs = %v", res.Outputs)
	}
}

func TestSubAndConstMul(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	d := b.Sub(x, y)                 // x - y
	s := b.ConstMul(field.New(7), d) // 7(x-y)
	m := b.Mul(s, s)                 // 49(x-y)²
	b.Output(m, 0)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {9}, 1: {4}})
	// 49·25 = 1225
	res := runAndCompare(t, simParams(7, 2, 1, nil), circ, in)
	if res.Outputs[0][0] != field.New(1225) {
		t.Errorf("output = %v, want 1225", res.Outputs[0][0])
	}
}

func TestDeepCircuitSim(t *testing.T) {
	circ, err := circuit.PolyEval(4)
	if err != nil {
		t.Fatal(err)
	}
	// p(x) = 2 + 3x + x² + 4x³ + 2x⁴ at x=3: 2+9+9+108+162 = 290.
	in := inputsOf(map[int][]uint64{0: {2, 3, 1, 4, 2}, 1: {3}})
	res := runAndCompare(t, simParams(8, 2, 2, nil), circ, in)
	if res.Outputs[1][0] != field.New(290) {
		t.Errorf("p(3) = %v, want 290", res.Outputs[1][0])
	}
}

func TestWideCircuitPackingSim(t *testing.T) {
	// Width 8 with k=3 exercises multi-batch layers and tail batches.
	circ, err := circuit.WideMul(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {2, 3, 4, 5}, 1: {6, 7, 2, 3}})
	runAndCompare(t, simParams(12, 2, 3, nil), circ, in)
}

func TestStatisticsSim(t *testing.T) {
	circ, err := circuit.Statistics(3)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {2}, 1: {4}, 2: {6}})
	res := runAndCompare(t, simParams(8, 2, 2, nil), circ, in)
	if res.Outputs[0][0] != field.New(12) || res.Outputs[0][1] != field.New(24) {
		t.Errorf("stats outputs = %v", res.Outputs[0])
	}
}

func TestRandomCircuitsSim(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		circ, err := circuit.Random(6, 30, seed)
		if err != nil {
			t.Fatal(err)
		}
		in := inputsOf(map[int][]uint64{
			0: {3, 1, 4},
			1: {1, 5, 9},
		})
		runAndCompare(t, simParams(10, 2, 3, nil), circ, in)
	}
}

func TestInnerProductReal(t *testing.T) {
	if testing.Short() {
		t.Skip("real-crypto end-to-end in -short mode")
	}
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {3, 5}, 1: {7, 11}})
	// 21 + 55 = 76
	res := runAndCompare(t, realParams(t, 5, 1, 2, nil), circ, in)
	if res.Outputs[0][0] != field.New(76) {
		t.Errorf("inner product = %v, want 76", res.Outputs[0][0])
	}
}

func TestMaliciousRolesExcludedGOD(t *testing.T) {
	// t=2 malicious roles per committee: outputs must still be correct
	// (guaranteed output delivery) and the cheaters must appear in the
	// excluded list.
	circ, err := circuit.InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	adv := yoso.NewAdversary(2, 0, 11)
	res := runAndCompare(t, simParams(10, 2, 2, adv), circ, in)
	if len(res.Excluded) == 0 {
		t.Error("no roles excluded despite malicious adversary")
	}
}

func TestFailStopRolesToleratedGOD(t *testing.T) {
	// Fail-stop roles beyond the malicious budget: §5.4 — the protocol
	// proceeds when n − t_mal − failstops ≥ t + 2(k−1) + 1.
	circ, err := circuit.InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	// n=12, t=2, k=2: threshold = 2+2+1 = 5; drop 2 + 2 malicious → 8 honest ≥ 5.
	adv := yoso.NewAdversary(2, 2, 13)
	res := runAndCompare(t, simParams(12, 2, 2, adv), circ, in)
	if len(res.Excluded) == 0 {
		t.Error("no roles excluded despite fail-stop adversary")
	}
}

func TestMixedAdversaryReal(t *testing.T) {
	if testing.Short() {
		t.Skip("real-crypto end-to-end in -short mode")
	}
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {2, 3}, 1: {4, 5}})
	// n=7, t=1, k=2: threshold = 1+2+1 = 4; 1 malicious + 1 failstop → 5 honest.
	adv := yoso.NewAdversary(1, 1, 17)
	res := runAndCompare(t, realParams(t, 7, 1, 2, adv), circ, in)
	if res.Outputs[0][0] != field.New(23) {
		t.Errorf("inner product = %v, want 23", res.Outputs[0][0])
	}
}

func TestTooManyFailStopsFails(t *testing.T) {
	// With honest < t+1, threshold decryption cannot proceed: the run must
	// error, not return wrong outputs.
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2}, 1: {3, 4}})
	adv := yoso.NewAdversary(0, 4, 19) // 4 of 5 crash; t=2 needs 3 partials
	proto, err := New(simParams(5, 2, 1, adv), circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Run(in); err == nil {
		t.Error("run succeeded despite losing threshold quorum")
	}
}

func TestParamsValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"zero n", simParams(0, 0, 1, nil)},
		{"t too big", simParams(4, 4, 1, nil)},
		{"k zero", simParams(4, 1, 0, nil)},
		{"reconstruction impossible", simParams(5, 2, 3, nil)}, // 2+4+1 = 7 > 5
		{"nil TE", Params{N: 4, T: 1, K: 1, PKE: pke.NewSim()}},
		{"nil PKE", Params{N: 4, T: 1, K: 1, TE: tte.NewSim(512)}},
	}
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.p, circ, nil); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
	if _, err := New(simParams(4, 1, 1, nil), nil, nil); err == nil {
		t.Error("nil circuit accepted")
	}
}

func TestWrongInputCount(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(simParams(4, 1, 1, nil), circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Run(inputsOf(map[int][]uint64{0: {1}, 1: {3, 4}})); err == nil {
		t.Error("short input vector accepted")
	}
}

func TestOnlineCommunicationIndependentOfN(t *testing.T) {
	// The headline property (Theorem 1): the per-gate μ-opening stream —
	// the marginal online cost of a multiplication gate — is O(n/k)
	// bytes, so with k ∝ n·ε it is independent of n. The KFF-delivery
	// component is O(n) per role, amortized over the O(n) values each
	// role processes (the paper's wide-circuit assumption); the benchmark
	// harness measures that amortization separately.
	circ, err := circuit.WideMul(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{
		0: {1, 2, 3, 4, 5, 6, 7, 8},
		1: {2, 3, 4, 5, 6, 7, 8, 9},
	})
	gates := circ.NumMul()
	var perGate []float64
	for _, cfg := range []struct{ n, t, k int }{{8, 1, 3}, {16, 2, 6}, {32, 4, 12}} {
		res := runAndCompare(t, simParams(cfg.n, cfg.t, cfg.k, nil), circ, in)
		mu := res.Report.ByCat[comm.PhaseOnline][comm.CatMu]
		perGate = append(perGate, float64(mu)/float64(gates))
	}
	// n/k is constant across the three configs, so per-gate μ bytes must
	// be flat (exact equality up to batch-boundary rounding).
	for i := 1; i < len(perGate); i++ {
		if perGate[i] > perGate[0]*1.5 {
			t.Errorf("per-gate μ-opening bytes grew with n: %v", perGate)
		}
	}
}

func TestKeyUsageFlowAudit(t *testing.T) {
	// E7: the Fig. 1 key-usage flow. Packed shares and input λ's are only
	// ever opened under KFF keys; KFF secrets only under role keys; tsk
	// shares only under role keys; outputs only under client keys.
	circ, err := circuit.InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	res := runAndCompare(t, simParams(8, 2, 2, nil), circ, in)

	forbidden := map[ValueClass][]KeyClass{
		ValPackedShare: {KeyTPK, KeyRole, KeyClient},
		ValWireLambda:  {KeyTPK, KeyRole, KeyClient},
		ValKFFSecret:   {KeyTPK, KeyKFF, KeyClient},
		ValTskShare:    {KeyKFF, KeyClient, KeyTPK},
		ValOutput:      {KeyKFF, KeyRole, KeyTPK},
	}
	counts := map[ValueClass]int{}
	for _, e := range res.Audit {
		counts[e.Value]++
		for _, bad := range forbidden[e.Value] {
			if e.Key == bad {
				t.Errorf("audit violation: %v", e)
			}
		}
	}
	for _, val := range []ValueClass{ValPackedShare, ValWireLambda, ValKFFSecret, ValTskShare, ValOutput, ValBeaverOpen} {
		if counts[val] == 0 {
			t.Errorf("no audit events for %s", val)
		}
	}
}

func TestExcludedEmptyWhenHonest(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2}, 1: {3, 4}})
	res := runAndCompare(t, simParams(6, 1, 2, nil), circ, in)
	if len(res.Excluded) != 0 {
		t.Errorf("honest run excluded %v", res.Excluded)
	}
}

func TestReportPhasesPopulated(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2}, 1: {3, 4}})
	res := runAndCompare(t, simParams(6, 1, 2, nil), circ, in)
	for _, phase := range []comm.Phase{comm.PhaseSetup, comm.PhaseOffline, comm.PhaseOnline} {
		if res.Report.ByPhase[phase] == 0 {
			t.Errorf("phase %s has zero bytes", phase)
		}
	}
	if res.Report.Postings == 0 {
		t.Error("no postings recorded")
	}
}

func TestRoundsAccounting(t *testing.T) {
	// The YOSO round structure: 6 offline committees (incl. the tsk
	// bridge), OnC1, one client round, one committee per multiplication
	// layer, and the output committee — 9 + depth sequential broadcast
	// rounds.
	circ, err := circuit.PolyEval(3) // depth 3
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3, 4}, 1: {2}})
	res := runAndCompare(t, simParams(8, 2, 2, nil), circ, in)
	if res.Rounds != 12 {
		t.Errorf("rounds = %d, want 12 for depth 3", res.Rounds)
	}
}

func TestDeepCircuitRealDJ(t *testing.T) {
	// Damgård–Jurik degree 2 gives the integer headroom a deeper circuit
	// needs on the real backend (the per-wire bounds grow with depth).
	if testing.Short() {
		t.Skip("real crypto in -short mode")
	}
	te, err := tte.NewThresholdDJ(paillier.FixedTestKey(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{N: 5, T: 1, K: 1, TE: te, PKE: pke.NewECIES()}
	circ, err := circuit.PolyEval(3)
	if err != nil {
		t.Fatal(err)
	}
	// p(x) = 1 + 2x + 3x² + 4x³ at x = 5: 1+10+75+500 = 586.
	in := inputsOf(map[int][]uint64{0: {1, 2, 3, 4}, 1: {5}})
	res := runAndCompare(t, params, circ, in)
	if res.Outputs[1][0] != field.New(586) {
		t.Errorf("p(5) = %v, want 586", res.Outputs[1][0])
	}
}

func TestOutputOnlyClient(t *testing.T) {
	// Client 2 contributes no inputs but receives the product — it must
	// get no KFF yet still receive outputs under its long-term key.
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	p := b.Mul(x, y)
	b.Output(p, 2)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {6}, 1: {7}})
	res := runAndCompare(t, simParams(6, 1, 1, nil), circ, in)
	if res.Outputs[2][0] != field.New(42) {
		t.Errorf("output-only client got %v, want 42", res.Outputs[2][0])
	}
}

func TestEndToEndProperty(t *testing.T) {
	// Property: for random circuits, random inputs and random admissible
	// adversaries, the protocol output equals the plaintext evaluation.
	if testing.Short() {
		t.Skip("property sweep in -short mode")
	}
	for seed := int64(100); seed < 112; seed++ {
		circ, err := circuit.Random(4, 25, seed)
		if err != nil {
			t.Fatal(err)
		}
		rng := seed
		randVal := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return uint64(rng>>33) % 1000
		}
		in := map[int][]field.Element{}
		for _, client := range circ.Clients() {
			vals := make([]field.Element, circ.InputCount(client))
			for i := range vals {
				vals[i] = field.New(randVal())
			}
			in[client] = vals
		}
		// n=10, t=2, k=2: threshold 2+2+1=5; adversary budget up to
		// 2 malicious + 3 fail-stops keeps 5 honest.
		mal := int(randVal() % 3)
		fs := int(randVal() % 3)
		var adv *yoso.Adversary
		if mal+fs > 0 {
			adv = yoso.NewAdversary(mal, fs, seed)
		}
		runAndCompare(t, simParams(10, 2, 2, adv), circ, in)
	}
}

func TestRobustModeCorrectsLies(t *testing.T) {
	// IT-GOD: μ shares carry no proofs; t malicious roles post uniformly
	// random lies; Berlekamp–Welch decodes the truth.
	circ, err := circuit.InnerProduct(4)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3, 4}, 1: {5, 6, 7, 8}})
	// n=14, t=3, k=2: robust needs 3·3 + 2 + 1 = 12 ≤ 14.
	params := simParams(14, 3, 2, yoso.NewAdversary(3, 0, 41))
	params.Robust = true
	res := runAndCompare(t, params, circ, in)
	if res.Outputs[0][0] != field.New(70) {
		t.Errorf("robust inner product = %v, want 70", res.Outputs[0][0])
	}
}

func TestRobustModeWithFailStops(t *testing.T) {
	circ, err := circuit.InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	// n=16, t=3, k=2: decoding needs 3+2·3+... shares: degree t+2(k−1)=5,
	// need 5+2·3+1=12 posted; with 2 malicious + 2 crashed → 14 posted ≥ 12.
	params := simParams(16, 3, 2, yoso.NewAdversary(2, 2, 43))
	params.Robust = true
	runAndCompare(t, params, circ, in)
}

func TestRobustModeValidation(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	// 3·3 + 2(2−1) + 1 = 12 > 10: rejected.
	params := simParams(10, 3, 2, nil)
	params.Robust = true
	if _, err := New(params, circ, nil); err == nil {
		t.Error("robust params below decoding threshold accepted")
	}
}

func TestRobustModeSavesLayerProofs(t *testing.T) {
	// Robust μ layers post no proofs; the proof-based run posts n per layer.
	circ, err := circuit.WideMul(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3, 4}, 1: {5, 6, 7, 8}})
	base := runAndCompare(t, simParams(14, 3, 2, nil), circ, in)
	params := simParams(14, 3, 2, nil)
	params.Robust = true
	robust := runAndCompare(t, params, circ, in)
	baseProofs := base.Report.ByCat[comm.PhaseOnline][comm.CatProof]
	robustProofs := robust.Report.ByCat[comm.PhaseOnline][comm.CatProof]
	// Two layers × 14 roles × 192 B saved.
	if baseProofs-robustProofs != 2*14*192 {
		t.Errorf("proof savings = %d, want %d", baseProofs-robustProofs, 2*14*192)
	}
}

func TestPrepareExecuteSplit(t *testing.T) {
	circ, err := circuit.InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(simParams(8, 2, 2, nil), circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := proto.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	offline := prepared.OfflineReport()
	if offline.Phase(comm.PhaseOnline) != 0 {
		t.Error("online bytes before Execute")
	}
	if offline.Phase(comm.PhaseOffline) == 0 {
		t.Error("no offline bytes after Prepare")
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	res, err := prepared.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0][0] != field.New(32) {
		t.Errorf("output = %v, want 32", res.Outputs[0][0])
	}
	// The correlated randomness is one-time: reuse must be refused.
	if _, err := prepared.Execute(in); err == nil {
		t.Error("second Execute on the same preprocessing accepted")
	}
}

func TestExecuteValidatesInputs(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(simParams(6, 1, 1, nil), circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := proto.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prepared.Execute(inputsOf(map[int][]uint64{0: {1}, 1: {2, 3}})); err == nil {
		t.Error("short inputs accepted by Execute")
	}
}

func TestDeepFermatCircuitSim(t *testing.T) {
	// The equality gadget is a ~120-mul, depth ~61 circuit: one committee
	// per layer — a schedule stress test for the committee machinery.
	if testing.Short() {
		t.Skip("deep schedule in -short mode")
	}
	circ, err := circuit.NotEqualsIndicator()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ a, b, want uint64 }{
		{123, 123, 0},
		{123, 124, 1},
	} {
		in := inputsOf(map[int][]uint64{0: {tc.a}, 1: {tc.b}})
		res := runAndCompare(t, simParams(6, 1, 1, nil), circ, in)
		if res.Outputs[0][0] != field.New(tc.want) {
			t.Errorf("neq(%d,%d) = %v, want %d", tc.a, tc.b, res.Outputs[0][0], tc.want)
		}
		if res.Rounds != 9+circ.Depth() {
			t.Errorf("rounds = %d, want %d", res.Rounds, 9+circ.Depth())
		}
	}
}

func TestLeakyRolesParticipate(t *testing.T) {
	// Honest-but-curious roles follow the protocol: outputs stay correct
	// and no leaky role is excluded.
	circ, err := circuit.InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	adv := &yoso.Adversary{Malicious: 1, Leaky: 2, Seed: 67}
	res := runAndCompare(t, simParams(10, 3, 2, adv), circ, in)
	for _, ex := range res.Excluded {
		if strings.Contains(ex, "leaky") {
			t.Errorf("leaky role excluded: %s", ex)
		}
	}
}

func TestFreshMasksAcrossRuns(t *testing.T) {
	// Privacy smoke test: the public μ openings are one-time-padded by
	// fresh λ's, so two runs on identical inputs publish different μ's.
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {11, 22}, 1: {33, 44}})
	collectMus := func() []field.Element {
		proto, err := New(simParams(6, 1, 1, nil), circ, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := proto.Run(in); err != nil {
			t.Fatal(err)
		}
		var mus []field.Element
		for _, p := range proto.Board().All() {
			if p.Category == comm.CatInput {
				if mb, ok := p.Payload.(muBundle); ok {
					mus = append(mus, mb.vals...)
				}
			}
		}
		return mus
	}
	a, b := collectMus(), collectMus()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("collected %d / %d μ openings", len(a), len(b))
	}
	if field.EqualVec(a, b) {
		t.Error("identical μ openings across runs — masks are not fresh")
	}
}

func TestNoKFFModeCorrect(t *testing.T) {
	// The §3.2 naive ablation must still compute correctly — it just pays
	// the re-encryption bytes online instead of offline.
	circ, err := circuit.WideMul(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {2, 3, 4}, 1: {5, 6, 7}})
	params := simParams(9, 2, 2, nil)
	params.NoKFF = true
	res := runAndCompare(t, params, circ, in)

	full := runAndCompare(t, simParams(9, 2, 2, nil), circ, in)
	// The naive mode's online phase must carry the Θ(n²·batches)
	// re-encryption traffic that KFF moves offline.
	naiveOnline := res.Report.Phase(comm.PhaseOnline)
	kffOnline := full.Report.Phase(comm.PhaseOnline)
	if naiveOnline <= kffOnline {
		t.Errorf("naive online %d not above KFF online %d", naiveOnline, kffOnline)
	}
	// And its offline phase must be lighter.
	if res.Report.Phase(comm.PhaseOffline) >= full.Report.Phase(comm.PhaseOffline) {
		t.Errorf("naive offline %d not below KFF offline %d",
			res.Report.Phase(comm.PhaseOffline), full.Report.Phase(comm.PhaseOffline))
	}
	// No keys-for-future appear anywhere in the naive run.
	for phase, cats := range res.Report.ByCat {
		if cats[comm.CatKFF] != 0 {
			t.Errorf("naive run posted KFF bytes in %s", phase)
		}
	}
}

func TestNoKFFWithAdversary(t *testing.T) {
	circ, err := circuit.InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	params := simParams(10, 2, 2, yoso.NewAdversary(2, 0, 83))
	params.NoKFF = true
	runAndCompare(t, params, circ, in)
}

func TestStructuredLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	params := simParams(8, 2, 2, yoso.NewAdversary(1, 0, 91))
	params.Logger = logger
	in := inputsOf(map[int][]uint64{0: {1, 2}, 1: {3, 4}})
	runAndCompare(t, params, circ, in)
	logs := buf.String()
	for _, want := range []string{
		"setup phase starting",
		"offline phase starting",
		"online phase starting",
		"committee spoke",
		"role excluded",
		"online phase complete",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q", want)
		}
	}
}

func TestPrepareContextCancellation(t *testing.T) {
	circ, err := circuit.WideMul(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(simParams(8, 2, 2, nil), circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first committee step must abort
	if _, err := proto.PrepareContext(ctx); err == nil {
		t.Error("cancelled prepare succeeded")
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestConstGateThroughProtocol(t *testing.T) {
	// Affine computation with a public constant: 3x + 10, plus a
	// const-involving multiplication to exercise the zero-λ wire.
	b := circuit.NewBuilder()
	x := b.Input(0)
	ten := b.Const(field.New(10))
	three := b.Const(field.New(3))
	b.Output(b.Add(b.Mul(three, x), ten), 0)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {9}})
	res := runAndCompare(t, simParams(7, 1, 1, nil), circ, in)
	if res.Outputs[0][0] != field.New(37) {
		t.Errorf("3·9+10 = %v, want 37", res.Outputs[0][0])
	}
}

func TestEqualsIndicatorThroughProtocolReal(t *testing.T) {
	// The full equality gadget (const wire + ~120 muls at depth ~61) on
	// the REAL threshold-Paillier backend — deep-schedule, real crypto.
	if testing.Short() {
		t.Skip("deep real-crypto run in -short mode")
	}
	circ, err := circuit.EqualsIndicator()
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {12345}, 1: {12345}})
	res := runAndCompare(t, realParams(t, 4, 1, 1, nil), circ, in)
	if res.Outputs[0][0] != field.One {
		t.Errorf("eq = %v, want 1", res.Outputs[0][0])
	}
}

func TestSingletonCommittee(t *testing.T) {
	// Degenerate n=1, t=0, k=1: every committee is a single role; all
	// quorums are size 1. The protocol must still be exact.
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {3, 4}, 1: {5, 6}})
	res := runAndCompare(t, simParams(1, 0, 1, nil), circ, in)
	if res.Outputs[0][0] != field.New(39) {
		t.Errorf("output = %v, want 39", res.Outputs[0][0])
	}
}

func TestPackingLargerThanWidth(t *testing.T) {
	// k exceeds every layer's width: batches clamp to the layer size.
	circ, err := circuit.WideMul(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {2}, 1: {3}})
	runAndCompare(t, simParams(20, 2, 8, nil), circ, in)
}

func TestPlaintextCapacityExhaustionFailsLoudly(t *testing.T) {
	// A modelled 64-bit modulus cannot hold Σ of n 61-bit λ contributions:
	// the run must return a bound error, never silently wrap.
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{N: 6, T: 1, K: 1, TE: tte.NewSim(64), PKE: pke.NewSim()}
	proto, err := New(params, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = proto.Run(inputsOf(map[int][]uint64{0: {1, 2}, 1: {3, 4}}))
	if err == nil {
		t.Fatal("tiny plaintext capacity accepted")
	}
	if !errors.Is(err, tte.ErrPlaintextTooBig) {
		t.Errorf("err = %v, want ErrPlaintextTooBig in chain", err)
	}
}
