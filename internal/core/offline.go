package core

import (
	"fmt"
	"math/big"

	"yosompc/internal/circuit"
	"yosompc/internal/comm"
	"yosompc/internal/field"
	"yosompc/internal/pke"
	"yosompc/internal/sharing"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

// initWireState allocates the run's per-wire bookkeeping.
func (r *run) initWireState() {
	n := r.p.circ.NumWires()
	r.wireCt = make([]tte.Ciphertext, n)
	r.mu = make([]field.Element, n)
	r.muKnown = make([]bool, n)
	r.beaver = map[int]*beaverTriple{}
	r.handoffs = map[string]map[int][]envelope{}
	r.inputEnv = map[int][]envelope{}
}

// garbage is the type-correct stand-in a malicious role broadcasts: the
// driver never consumes its content (the forged proof excludes it), so only
// the modelled size matters for metering.
type garbage struct{ size int }

func (g garbage) wireSize() int { return g.size }

// encodeWire emits size zero bytes: garbage content is never consumed, but
// it must occupy exactly the modelled space on the board.
func (g garbage) encodeWire(*Params) ([]byte, error) { return make([]byte, g.size), nil }

// ctBundle is a broadcast bundle of threshold ciphertexts.
type ctBundle struct{ cts []tte.Ciphertext }

func (b ctBundle) wireSize() int {
	s := 0
	for _, ct := range b.cts {
		s += ct.Size()
	}
	return s
}

func (b ctBundle) encodeWire(p *Params) ([]byte, error) {
	out := make([]byte, 0, b.wireSize())
	for _, ct := range b.cts {
		enc, err := p.TE.EncodeCiphertext(ct)
		if err != nil {
			return nil, err
		}
		out = append(out, enc...)
	}
	return out, nil
}

// offline executes the whole of Π_YOSO-Offline: Steps 1–4, the OffDec
// committee's speak (ε/δ decryption + tsk resharing), and the OffRe
// committee's speak (Steps 5–6: re-encryption of all preprocessed secrets
// to the recipients' KFFs). Nothing here depends on inputs or on online
// role keys — tsk crosses the boundary via the dedicated offBridge
// committee, which speaks at online start (see online.go).
func (r *run) offline() error {
	p := r.p.params
	var err error
	if r.offB1, err = r.p.assign.FormCommittee("offB1", p.N, comm.PhaseOffline); err != nil {
		return err
	}
	if r.offB2, err = r.p.assign.FormCommittee("offB2", p.N, comm.PhaseOffline); err != nil {
		return err
	}
	if r.offR, err = r.p.assign.FormCommittee("offR", p.N, comm.PhaseOffline); err != nil {
		return err
	}
	if r.offDec, err = r.p.assign.FormCommittee("offDec", p.N, comm.PhaseOffline); err != nil {
		return err
	}
	if r.offRe, err = r.p.assign.FormCommittee("offRe", p.N, comm.PhaseOffline); err != nil {
		return err
	}
	if r.offBridge, err = r.p.assign.FormCommittee("offBridge", p.N, comm.PhaseOffline); err != nil {
		return err
	}

	// Trusted-dealer delivery of epoch-0 tsk shares to OffDec (the paper's
	// "give tsk_i to C^Off_{1,i}"): each share travels as a real PKE
	// envelope sealed under the receiving role's key, metered as setup
	// bytes. The driver additionally hands the shares over in-process.
	te := p.TE
	for i, sh := range r.offDecShares {
		data, err := te.EncodeKeyShare(sh)
		if err != nil {
			return fmt.Errorf("encoding dealer tsk share %d: %w", i+1, err)
		}
		ct, err := r.offDec.Role(i + 1).PublicKey().Encrypt(data)
		if err != nil {
			return fmt.Errorf("sealing dealer tsk share %d: %w", i+1, err)
		}
		enc, err := p.PKE.EncodeCiphertext(ct)
		if err != nil {
			return fmt.Errorf("encoding dealer envelope %d: %w", i+1, err)
		}
		env := envelope{From: "setup-dealer", To: fmt.Sprintf("offDec/%d", i+1), Ct: ct}
		r.p.board.Post("setup-dealer", comm.PhaseSetup, comm.CatReshare, enc, env)
	}
	r.logStep("offline committees formed", "committees", 6, "size", p.N)

	r.buildBatches()
	r.logStep("mul batches built", "batches", len(r.batches), "k", p.K)

	if err := r.offlineStep("beaver", "step 1 (Beaver)", r.offlineBeaver); err != nil {
		return err
	}
	if err := r.offlineStep("wire-randomness", "step 2 (wire randomness)", r.offlineWireRandomness); err != nil {
		return err
	}
	if err := r.offlineStep("dependent-wires", "step 3 (dependent wires)", r.offlineDependentWires); err != nil {
		return err
	}
	if err := r.offlineStep("packing", "step 4 (packing)", r.offlinePack); err != nil {
		return err
	}
	if err := r.offlineStep("reencrypt-to-kffs", "steps 5-6 (re-encrypt to KFFs)", r.offReSpeak); err != nil {
		return err
	}
	return nil
}

// offlineStep runs one offline driver step inside a span and logs its
// start and completion with the span ID — the offline phase's structured
// progress trail (the online phase logs per committee step instead).
func (r *run) offlineStep(name, label string, fn func() error) error {
	sp := r.stepSpan("offline:" + name)
	r.logSpan(sp, "offline step starting", "step", name)
	err := fn()
	sp.End()
	if err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	r.logSpan(sp, "offline step complete", "step", name)
	return nil
}

// buildBatches groups the circuit's multiplication gates into packed
// batches of at most k gates per layer.
func (r *run) buildBatches() {
	for _, mb := range r.p.circ.MulBatches(r.p.params.K) {
		r.batches = append(r.batches, &batchState{MulBatch: mb, k: len(mb.Gates)})
	}
}

// mulGateIndices returns the indices of all multiplication gates.
func (r *run) mulGateIndices() []int {
	var out []int
	for i, g := range r.p.circ.Gates() {
		if g.Kind == circuit.KindMul {
			out = append(out, i)
		}
	}
	return out
}

// offlineBeaver is Step 1: committees OffB1 and OffB2 prepare one Beaver
// triple (c^a, c^b, c^c) under tpk per multiplication gate.
func (r *run) offlineBeaver() error {
	p := r.p.params
	te := p.TE
	muls := r.mulGateIndices()
	if len(muls) == 0 {
		return nil
	}
	garbSize := len(muls) * r.tpk.CiphertextSize()

	// OffB1: each role encrypts a random a-contribution per gate.
	aPosts, err := r.committeeStep(r.offB1, comm.PhaseOffline, comm.CatBeaver, "beaver-a",
		func(i int) (sized, error) {
			ms := make([]*big.Int, len(muls))
			for g := range muls {
				ms[g] = fieldCoeff(field.MustRandom())
			}
			cts, err := tte.EncryptAll(te, r.tpk, ms, boundP, r.workers())
			if err != nil {
				return nil, err
			}
			return ctBundle{cts: cts}, nil
		},
		func(i int) sized { return garbage{size: garbSize} })
	if err != nil {
		return err
	}
	cA, err := r.sumContributions(aPosts, len(muls))
	if err != nil {
		return err
	}

	// OffB2: each role encrypts b-contributions and homomorphically forms
	// c-contributions c_i^c = b_i · c^a.
	bcSize := 2 * garbSize
	bcPosts, err := r.committeeStep(r.offB2, comm.PhaseOffline, comm.CatBeaver, "beaver-bc",
		func(i int) (sized, error) {
			ms := make([]*big.Int, len(muls))
			for g := range muls {
				ms[g] = fieldCoeff(field.MustRandom())
			}
			bs, err := tte.EncryptAll(te, r.tpk, ms, boundP, r.workers())
			if err != nil {
				return nil, err
			}
			cs := make([]tte.Ciphertext, len(muls))
			for g := range muls {
				cct, err := te.Eval(r.tpk, []tte.Ciphertext{cA[g]}, []*big.Int{ms[g]})
				if err != nil {
					return nil, err
				}
				cs[g] = cct
			}
			return bundle2{a: ctBundle{bs}, b: ctBundle{cs}}, nil
		},
		func(i int) sized { return garbage{size: bcSize} })
	if err != nil {
		return err
	}
	cB := make([]tte.Ciphertext, len(muls))
	cC := make([]tte.Ciphertext, len(muls))
	// "Everyone computes" the per-gate b/c sums — independent per gate, so
	// the loop fans out over the worker pool, slot-indexed per gate.
	if err := r.pfor(len(muls), func(g int) error {
		var bParts, cParts []tte.Ciphertext
		for i := 1; i <= r.offB2.N(); i++ {
			payload, ok := bcPosts[i]
			if !ok {
				continue
			}
			bb := payload.(bundle2)
			bParts = append(bParts, bb.a.cts[g])
			cParts = append(cParts, bb.b.cts[g])
		}
		if len(bParts) == 0 {
			return fmt.Errorf("%w: no valid Beaver b-contributions", ErrNotEnough)
		}
		sumB, err := te.Eval(r.tpk, bParts, onesVec(len(bParts)))
		if err != nil {
			return err
		}
		sumC, err := te.Eval(r.tpk, cParts, onesVec(len(cParts)))
		if err != nil {
			return err
		}
		cB[g], cC[g] = sumB, sumC
		return nil
	}); err != nil {
		return err
	}
	for g, gi := range muls {
		r.beaver[gi] = &beaverTriple{a: cA[g], b: cB[g], c: cC[g]}
	}
	return nil
}

// bundle2 pairs two ciphertext bundles in one broadcast.
type bundle2 struct{ a, b ctBundle }

func (b bundle2) wireSize() int { return b.a.wireSize() + b.b.wireSize() }

func (b bundle2) encodeWire(p *Params) ([]byte, error) {
	ea, err := b.a.encodeWire(p)
	if err != nil {
		return nil, err
	}
	eb, err := b.b.encodeWire(p)
	if err != nil {
		return nil, err
	}
	return append(ea, eb...), nil
}

// sumContributions adds each position's valid contributions: the standard
// "everyone computes TEval(tpk, {c_i}_{i∈S}, (1)^|S|)" pattern. Positions
// are independent, so the loop fans out over the worker pool; the output
// stays slot-indexed by position (TEval is commutative over the
// contribution set, so the result is worker-count independent).
func (r *run) sumContributions(posts map[int]any, count int) ([]tte.Ciphertext, error) {
	te := r.p.params.TE
	out := make([]tte.Ciphertext, count)
	err := r.pfor(count, func(pos int) error {
		var parts []tte.Ciphertext
		for _, payload := range posts {
			parts = append(parts, payload.(ctBundle).cts[pos])
		}
		if len(parts) == 0 {
			return fmt.Errorf("%w: no valid contributions at position %d", ErrNotEnough, pos)
		}
		sum, err := te.Eval(r.tpk, parts, onesVec(len(parts)))
		if err != nil {
			return err
		}
		out[pos] = sum
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// offlineWireRandomness is Step 2 plus the helper encryptions of Step 4:
// committee OffR contributes fresh randomness for every output wire of an
// input or multiplication gate, and t extra random values per packed
// vector (3 vectors per batch: left λ, right λ, Γ).
func (r *run) offlineWireRandomness() error {
	p := r.p.params
	te := p.TE
	gates := r.p.circ.Gates()
	var targets []int // wire ids needing fresh λ
	for _, g := range gates {
		if g.Kind == circuit.KindInput || g.Kind == circuit.KindMul {
			targets = append(targets, int(g.Out))
		}
	}
	helpersPer := 3 * p.T * len(r.batches)
	total := len(targets) + helpersPer
	garbSize := total * r.tpk.CiphertextSize()

	posts, err := r.committeeStep(r.offR, comm.PhaseOffline, comm.CatLambda, "wire-randomness",
		func(i int) (sized, error) {
			ms := make([]*big.Int, total)
			for j := range ms {
				ms[j] = fieldCoeff(field.MustRandom())
			}
			cts, err := tte.EncryptAll(te, r.tpk, ms, boundP, r.workers())
			if err != nil {
				return nil, err
			}
			return ctBundle{cts: cts}, nil
		},
		func(i int) sized { return garbage{size: garbSize} })
	if err != nil {
		return err
	}
	sums, err := r.sumContributions(posts, total)
	if err != nil {
		return err
	}
	for j, w := range targets {
		r.wireCt[w] = sums[j]
	}
	// Helper layout: batch-major, then vector kind (0=left,1=right,2=Γ),
	// then t helpers.
	hbase := len(targets)
	for bi, b := range r.batches {
		b.helpers = make([][]tte.Ciphertext, 3)
		for kind := 0; kind < 3; kind++ {
			b.helpers[kind] = make([]tte.Ciphertext, p.T)
			for j := 0; j < p.T; j++ {
				b.helpers[kind][j] = sums[hbase+(bi*3+kind)*p.T+j]
			}
		}
	}
	return nil
}

// offlineDependentWires is Step 3: everyone locally derives λ-ciphertexts
// for linear gates; the OffDec committee threshold-decrypts the Beaver
// openings ε = λ^α + λ^x and δ = λ^β + λ^y for every multiplication gate
// and reshares tsk to OffRe; everyone then forms c^Γ per gate.
func (r *run) offlineDependentWires() error {
	p := r.p.params
	te := p.TE
	gates := r.p.circ.Gates()

	// Local: λ-ciphertexts for linear gates, in topological order.
	pm1 := new(big.Int).SetUint64(field.Modulus - 1)
	for _, g := range gates {
		switch g.Kind {
		case circuit.KindConst:
			// Public constants carry no secret: λ = 0, and everyone can
			// form the canonical zero ciphertext (the empty TEval).
			ct, err := te.Eval(r.tpk, nil, nil)
			if err != nil {
				return err
			}
			r.wireCt[g.Out] = ct
		case circuit.KindAdd:
			ct, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.A], r.wireCt[g.B]},
				[]*big.Int{big.NewInt(1), big.NewInt(1)})
			if err != nil {
				return err
			}
			r.wireCt[g.Out] = ct
		case circuit.KindSub:
			// λ^a − λ^b encoded as λ^a + (p−1)·λ^b (mod p).
			ct, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.A], r.wireCt[g.B]},
				[]*big.Int{big.NewInt(1), pm1})
			if err != nil {
				return err
			}
			r.wireCt[g.Out] = ct
		case circuit.KindConstMul:
			ct, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.A]},
				[]*big.Int{fieldCoeff(g.Const)})
			if err != nil {
				return err
			}
			r.wireCt[g.Out] = ct
		}
	}

	muls := r.mulGateIndices()
	if len(muls) == 0 {
		// Still hand tsk onward: OffDec only reshares.
		_, err := r.offDecSpeak(nil)
		return err
	}

	// ε/δ ciphertexts per mul gate — independent per gate, slot-indexed so
	// the opened order is identical to the serial path.
	open := make([]tte.Ciphertext, 2*len(muls))
	if err := r.pfor(len(muls), func(m int) error {
		gi := muls[m]
		g := gates[gi]
		bt := r.beaver[gi]
		eps, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.A], bt.a}, onesVec(2))
		if err != nil {
			return err
		}
		del, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.B], bt.b}, onesVec(2))
		if err != nil {
			return err
		}
		open[2*m], open[2*m+1] = eps, del
		return nil
	}); err != nil {
		return err
	}

	openings, err := r.offDecSpeak(open)
	if err != nil {
		return err
	}

	// Everyone: c^Γ = ε·c^β + (p−δ)·c^x + c^z + (p−1)·c^γ. Gates are
	// independent; results land in a slot-indexed slice and the gammaCt map
	// is filled serially afterwards (map writes are not concurrency-safe).
	gammas := make([]tte.Ciphertext, len(muls))
	if err := r.pfor(len(muls), func(m int) error {
		gi := muls[m]
		g := gates[gi]
		bt := r.beaver[gi]
		eps := openings[2*m]
		del := openings[2*m+1]
		r.p.audit.Record(comm.PhaseOffline, ValBeaverOpen, KeyTPK)
		gamma, err := te.Eval(r.tpk,
			[]tte.Ciphertext{r.wireCt[g.B], bt.a, bt.c, r.wireCt[g.Out]},
			[]*big.Int{fieldCoeff(eps), fieldCoeff(del.Neg()), big.NewInt(1), pm1})
		if err != nil {
			return err
		}
		gammas[m] = gamma
		return nil
	}); err != nil {
		return err
	}
	if r.gammaCt == nil {
		r.gammaCt = map[int]tte.Ciphertext{}
	}
	for m, gi := range muls {
		r.gammaCt[gi] = gammas[m]
	}
	return nil
}

// decPayload is the OffDec committee's single broadcast: partial
// decryptions for every opened ciphertext plus encrypted tsk subshares for
// the next committee.
type decPayload struct {
	partials []tte.PartialDec
	// partEnc caches each partial's wire encoding, produced alongside the
	// partial itself so wireSize and encodeWire agree byte-for-byte (the
	// real-backend encoding length is value-dependent).
	partEnc [][]byte
	reshare []envelope
}

func (d decPayload) wireSize() int {
	s := 0
	for _, e := range d.partEnc {
		s += len(e)
	}
	for _, e := range d.reshare {
		s += e.Ct.Size()
	}
	return s
}

func (d decPayload) encodeWire(p *Params) ([]byte, error) {
	out := make([]byte, 0, d.wireSize())
	for _, e := range d.partEnc {
		out = append(out, e...)
	}
	return appendEnvelopes(p, out, d.reshare)
}

// offDecSpeak runs the OffDec committee: publish partial decryptions of
// `open` (possibly empty) and reshare tsk to OffRe. It returns the opened
// values reduced into the field.
func (r *run) offDecSpeak(open []tte.Ciphertext) ([]field.Element, error) {
	posts, err := r.tskCommitteeSpeak(r.offDec, r.offDecShares, comm.PhaseOffline,
		"offdec-open", open, r.offRe, func(i int) pke.PublicKey { return r.offRe.Role(i).PublicKey() })
	if err != nil {
		return nil, err
	}
	r.storeHandoff("offRe", posts)
	return r.combineOpenings(open, posts)
}

// tskCommitteeSpeak is the shared Decrypt/Re-encrypt skeleton (paper
// Protocols 1 and 2): every member of committee c holding the tsk shares
// in `shares` publishes partial decryptions of the `open` ciphertexts and,
// when `next` is non-nil, reshares its tsk share to the next committee
// under the supplied target keys.
func (r *run) tskCommitteeSpeak(c *yoso.Committee, shares []tte.KeyShare, phase comm.Phase,
	label string, open []tte.Ciphertext, next *yoso.Committee,
	targetKey func(i int) pke.PublicKey) (map[int]any, error) {
	p := r.p.params
	te := p.TE
	garbSize := len(open)*r.tpk.CiphertextSize() + p.N*(r.tpk.CiphertextSize()+60)
	return r.committeeStep(c, phase, comm.CatPartial, label,
		func(i int) (sized, error) {
			sh := shares[i-1]
			if sh == nil {
				return nil, fmt.Errorf("role %d has no tsk share", i)
			}
			payload := decPayload{}
			for _, ct := range open {
				part, err := te.PartialDecrypt(r.tpk, sh, ct)
				if err != nil {
					return nil, err
				}
				penc, err := te.EncodePartial(part)
				if err != nil {
					return nil, err
				}
				payload.partials = append(payload.partials, part)
				payload.partEnc = append(payload.partEnc, penc)
			}
			if next != nil {
				subs, err := te.Reshare(r.tpk, sh)
				if err != nil {
					return nil, err
				}
				for _, sub := range subs {
					data, err := te.EncodeSubShare(sub)
					if err != nil {
						return nil, err
					}
					env, err := targetKey(sub.To()).Encrypt(data)
					if err != nil {
						return nil, err
					}
					payload.reshare = append(payload.reshare, envelope{
						From: c.Role(i).Name(),
						To:   fmt.Sprintf("%s/%d", next.Name, sub.To()),
						Ct:   env,
					})
				}
			}
			return payload, nil
		},
		func(i int) sized { return garbage{size: garbSize} })
}

// storeHandoff files the verified resharing envelopes for the next
// committee, indexed by target member.
func (r *run) storeHandoff(nextName string, posts map[int]any) {
	byTarget := map[int][]envelope{}
	for _, payload := range posts {
		dp, ok := payload.(decPayload)
		if !ok {
			continue
		}
		for _, env := range dp.reshare {
			var idx int
			if _, err := fmt.Sscanf(env.To, nextName+"/%d", &idx); err != nil {
				continue
			}
			byTarget[idx] = append(byTarget[idx], env)
		}
	}
	r.handoffs[nextName] = byTarget
}

// combineOpenings combines the verified partial decryptions of each opened
// ciphertext and reduces into the field. The per-opening TDec fan-in is
// independent per position, so it runs on the worker pool, slot-indexed.
func (r *run) combineOpenings(open []tte.Ciphertext, posts map[int]any) ([]field.Element, error) {
	te := r.p.params.TE
	out := make([]field.Element, len(open))
	err := r.pfor(len(open), func(j int) error {
		var parts []tte.PartialDec
		for _, payload := range posts {
			dp, ok := payload.(decPayload)
			if !ok || j >= len(dp.partials) {
				continue
			}
			parts = append(parts, dp.partials[j])
		}
		v, err := te.Combine(r.tpk, open[j], parts)
		if err != nil {
			return fmt.Errorf("%w: opening %d: %v", ErrNotEnough, j, err)
		}
		out[j] = reduceToField(v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// recoverShares lets each member of a committee reconstruct its tsk share
// from the envelopes filed for it (TKRec after decrypting with the role
// secret key).
func (r *run) recoverShares(c *yoso.Committee, phase comm.Phase) ([]tte.KeyShare, error) {
	te := r.p.params.TE
	byTarget := r.handoffs[c.Name]
	shares := make([]tte.KeyShare, c.N())
	for i := 1; i <= c.N(); i++ {
		role := c.Role(i)
		if role.Behavior == yoso.FailStop {
			continue // crashed before reading
		}
		var subs []tte.SubShare
		for _, env := range byTarget[i] {
			sub, err := r.decryptSubShare(role.SecretKey(), env.Ct)
			if err != nil {
				continue
			}
			subs = append(subs, sub)
		}
		sh, err := te.RecoverShare(r.tpk, i, subs)
		if err != nil {
			return nil, fmt.Errorf("%w: recovering tsk share for %s: %v", ErrNotEnough, role.Name(), err)
		}
		r.p.audit.Record(phase, ValTskShare, KeyRole)
		shares[i-1] = sh
	}
	return shares, nil
}

// decryptSubShare opens one handoff envelope with the role secret key and
// decodes the key sub-share, wiping the decrypted plaintext before
// returning — the raw bytes carry the same secret as the sub-share and
// must not outlive the decode.
func (r *run) decryptSubShare(sk pke.SecretKey, ct pke.Ciphertext) (tte.SubShare, error) {
	data, err := sk.Decrypt(ct)
	if err != nil {
		return nil, err
	}
	defer clear(data)
	return r.p.params.TE.DecodeSubShare(r.tpk, data)
}

// offlinePack is Step 4: everyone locally assembles, per batch, the packed
// share ciphertexts of the left-input λ vector, the right-input λ vector,
// and the Γ vector, interpolating homomorphically through the k wire
// values and the t helper encryptions.
func (r *run) offlinePack() error {
	p := r.p.params
	te := p.TE
	gates := r.p.circ.Gates()
	for bi, b := range r.batches {
		sp := r.stepSpan("pack-batch")
		sp.SetInt("batch", int64(bi))
		sp.SetInt("gates", int64(b.k))
		sp.SetInt("layer", int64(b.Layer))
		// The l_j(i) coefficient rows come straight from the cached
		// evaluation domain — shared across batches of the same width and
		// across runs, with no per-batch clone. Shapes outside the domain
		// envelope (never produced by valid Params) fall back to the
		// general helper.
		var (
			rowAt func(i int) []field.Element
			err   error
		)
		if dom, derr := sharing.GetDomain(b.k, p.T+b.k-1, p.N); derr == nil {
			rowAt = func(i int) []field.Element { return dom.ShareRow(i + 1) }
		} else {
			var rows [][]field.Element
			if rows, err = sharing.PackingLagrangeCoeffs(b.k, p.T, p.N); err != nil {
				sp.End()
				return err
			}
			rowAt = func(i int) []field.Element { return rows[i] }
		}
		left := make([]tte.Ciphertext, b.k)
		right := make([]tte.Ciphertext, b.k)
		gamma := make([]tte.Ciphertext, b.k)
		for j, gi := range b.Gates {
			g := gates[gi]
			left[j] = r.wireCt[g.A]
			right[j] = r.wireCt[g.B]
			gamma[j] = r.gammaCt[gi]
		}
		pack := func(vals []tte.Ciphertext, helpers []tte.Ciphertext) ([]tte.Ciphertext, error) {
			points := append(append([]tte.Ciphertext{}, vals...), helpers...)
			out := make([]tte.Ciphertext, p.N)
			// One homomorphic interpolation per share index — the
			// packing-helper hot loop, fanned out slot-indexed per index.
			err := r.pfor(p.N, func(i int) error {
				row := rowAt(i)
				coeffs := make([]*big.Int, len(points))
				for j := range coeffs {
					coeffs[j] = fieldCoeff(row[j])
				}
				ct, err := te.Eval(r.tpk, points, coeffs)
				if err != nil {
					return err
				}
				out[i] = ct
				return nil
			})
			if err != nil {
				return nil, err
			}
			return out, nil
		}
		if b.packedLeft, err = pack(left, b.helpers[0]); err != nil {
			sp.End()
			return err
		}
		if b.packedRight, err = pack(right, b.helpers[1]); err != nil {
			sp.End()
			return err
		}
		if b.packedGamma, err = pack(gamma, b.helpers[2]); err != nil {
			sp.End()
			return err
		}
		sp.End()
	}
	return nil
}
