// Package circuit represents arithmetic circuits over the MPC field and
// prepares the batch layout the packed protocol consumes: multiplication
// gates are grouped by multiplicative depth into batches of at most k, the
// packing factor.
package circuit

import (
	"errors"
	"fmt"

	"yosompc/internal/field"
)

// WireID identifies a wire; wires are numbered densely from 0 in creation
// order.
type WireID int

// GateKind enumerates gate types.
type GateKind int

// Gate kinds. Add, Sub and ConstMul are "free" (linear) gates; Mul consumes
// preprocessed material; Input/Output delimit client interaction.
const (
	KindInput GateKind = iota + 1
	KindAdd
	KindSub
	KindConstMul
	KindMul
	KindOutput
	// KindConst introduces a public constant wire: its value is part of
	// the circuit description, carries no secret (λ = 0), and costs no
	// communication.
	KindConst
)

// String implements fmt.Stringer.
func (k GateKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindAdd:
		return "add"
	case KindSub:
		return "sub"
	case KindConstMul:
		return "constmul"
	case KindMul:
		return "mul"
	case KindOutput:
		return "output"
	case KindConst:
		return "const"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Gate is one circuit gate. Out is unset (-1) for Output gates.
type Gate struct {
	Kind GateKind
	// A and B are input wires; B is unset (-1) except for Add/Sub/Mul.
	A, B WireID
	// Const is the scalar of a ConstMul gate.
	Const field.Element
	// Out is the output wire.
	Out WireID
	// Client owns the value of an Input or Output gate.
	Client int
}

// Circuit is an immutable arithmetic circuit in topological order.
type Circuit struct {
	gates    []Gate
	numWires int
	// inputsByClient[c] lists input gate indices of client c in order.
	inputsByClient map[int][]int
	// outputsByClient[c] lists output gate indices of client c in order.
	outputsByClient map[int][]int
	// mulDepth[w] is the multiplicative depth of the value on wire w.
	mulDepth []int
	numMul   int
	numAdd   int
}

// Errors returned by the builder and evaluator.
var (
	ErrNoOutputs   = errors.New("circuit: no output gates")
	ErrBadWire     = errors.New("circuit: wire does not exist")
	ErrMissingData = errors.New("circuit: missing client input")
)

// Builder assembles a circuit. Methods panic on structurally invalid wires
// (using a wire before creating it), since that is a programming error, and
// Build returns errors for semantic problems.
type Builder struct {
	gates    []Gate
	numWires int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) newWire() WireID {
	w := WireID(b.numWires)
	b.numWires++
	return w
}

func (b *Builder) checkWire(w WireID) {
	if int(w) < 0 || int(w) >= b.numWires {
		panic(fmt.Sprintf("circuit: %v used before definition", w))
	}
}

// Input adds an input gate owned by client and returns its wire.
func (b *Builder) Input(client int) WireID {
	out := b.newWire()
	b.gates = append(b.gates, Gate{Kind: KindInput, A: -1, B: -1, Out: out, Client: client})
	return out
}

// Add returns a wire carrying a + b.
func (b *Builder) Add(a, bb WireID) WireID {
	b.checkWire(a)
	b.checkWire(bb)
	out := b.newWire()
	b.gates = append(b.gates, Gate{Kind: KindAdd, A: a, B: bb, Out: out})
	return out
}

// Sub returns a wire carrying a - b.
func (b *Builder) Sub(a, bb WireID) WireID {
	b.checkWire(a)
	b.checkWire(bb)
	out := b.newWire()
	b.gates = append(b.gates, Gate{Kind: KindSub, A: a, B: bb, Out: out})
	return out
}

// ConstMul returns a wire carrying c·a.
func (b *Builder) ConstMul(c field.Element, a WireID) WireID {
	b.checkWire(a)
	out := b.newWire()
	b.gates = append(b.gates, Gate{Kind: KindConstMul, A: a, B: -1, Const: c, Out: out})
	return out
}

// Mul returns a wire carrying a · b.
func (b *Builder) Mul(a, bb WireID) WireID {
	b.checkWire(a)
	b.checkWire(bb)
	out := b.newWire()
	b.gates = append(b.gates, Gate{Kind: KindMul, A: a, B: bb, Out: out})
	return out
}

// Output marks wire a as an output delivered to client.
func (b *Builder) Output(a WireID, client int) {
	b.checkWire(a)
	b.gates = append(b.gates, Gate{Kind: KindOutput, A: a, B: -1, Out: -1, Client: client})
}

// Const returns a wire carrying the public constant c.
func (b *Builder) Const(c field.Element) WireID {
	out := b.newWire()
	b.gates = append(b.gates, Gate{Kind: KindConst, A: -1, B: -1, Const: c, Out: out})
	return out
}

// Build finalizes the circuit.
func (b *Builder) Build() (*Circuit, error) {
	c := &Circuit{
		gates:           append([]Gate(nil), b.gates...),
		numWires:        b.numWires,
		inputsByClient:  map[int][]int{},
		outputsByClient: map[int][]int{},
		mulDepth:        make([]int, b.numWires),
	}
	hasOutput := false
	for i, g := range c.gates {
		switch g.Kind {
		case KindInput:
			c.inputsByClient[g.Client] = append(c.inputsByClient[g.Client], i)
			c.mulDepth[g.Out] = 0
		case KindAdd, KindSub:
			c.mulDepth[g.Out] = max(c.mulDepth[g.A], c.mulDepth[g.B])
			c.numAdd++
		case KindConstMul:
			c.mulDepth[g.Out] = c.mulDepth[g.A]
			c.numAdd++
		case KindMul:
			c.mulDepth[g.Out] = max(c.mulDepth[g.A], c.mulDepth[g.B]) + 1
			c.numMul++
		case KindOutput:
			c.outputsByClient[g.Client] = append(c.outputsByClient[g.Client], i)
			hasOutput = true
		case KindConst:
			c.mulDepth[g.Out] = 0
			c.numAdd++
		default:
			return nil, fmt.Errorf("circuit: gate %d has unknown kind %v", i, g.Kind)
		}
	}
	if !hasOutput {
		return nil, ErrNoOutputs
	}
	return c, nil
}

// Gates returns the gates in topological order. The slice must not be
// mutated.
func (c *Circuit) Gates() []Gate { return c.gates }

// NumWires returns the number of wires.
func (c *Circuit) NumWires() int { return c.numWires }

// NumMul returns the number of multiplication gates.
func (c *Circuit) NumMul() int { return c.numMul }

// NumLinear returns the number of free (add/sub/constmul) gates.
func (c *Circuit) NumLinear() int { return c.numAdd }

// Depth returns the multiplicative depth of the circuit.
func (c *Circuit) Depth() int {
	d := 0
	for _, g := range c.gates {
		if g.Kind == KindMul && c.mulDepth[g.Out] > d {
			d = c.mulDepth[g.Out]
		}
	}
	return d
}

// Clients returns the sorted set of client ids appearing on inputs or
// outputs.
func (c *Circuit) Clients() []int {
	seen := map[int]bool{}
	for cl := range c.inputsByClient {
		seen[cl] = true
	}
	for cl := range c.outputsByClient {
		seen[cl] = true
	}
	out := make([]int, 0, len(seen))
	for cl := range seen {
		out = append(out, cl)
	}
	sortInts(out)
	return out
}

// InputGates returns the indices of client's input gates in order.
func (c *Circuit) InputGates(client int) []int { return c.inputsByClient[client] }

// OutputGates returns the indices of client's output gates in order.
func (c *Circuit) OutputGates(client int) []int { return c.outputsByClient[client] }

// InputCount returns the number of inputs client must supply.
func (c *Circuit) InputCount(client int) int { return len(c.inputsByClient[client]) }

// Eval is the plaintext reference evaluator: it computes all wire values
// from the client inputs and returns each client's outputs in gate order.
func (c *Circuit) Eval(inputs map[int][]field.Element) (map[int][]field.Element, error) {
	wires, err := c.EvalWires(inputs)
	if err != nil {
		return nil, err
	}
	out := map[int][]field.Element{}
	for client, gates := range c.outputsByClient {
		vals := make([]field.Element, len(gates))
		for i, gi := range gates {
			vals[i] = wires[c.gates[gi].A]
		}
		out[client] = vals
	}
	return out, nil
}

// EvalWires computes every wire value. Exposed for protocol tests that
// compare intermediate wire values.
func (c *Circuit) EvalWires(inputs map[int][]field.Element) ([]field.Element, error) {
	wires := make([]field.Element, c.numWires)
	given := map[int]int{}
	for _, g := range c.gates {
		switch g.Kind {
		case KindInput:
			vals := inputs[g.Client]
			idx := given[g.Client]
			if idx >= len(vals) {
				return nil, fmt.Errorf("%w: client %d supplied %d of %d inputs",
					ErrMissingData, g.Client, len(vals), len(c.inputsByClient[g.Client]))
			}
			wires[g.Out] = vals[idx]
			given[g.Client] = idx + 1
		case KindAdd:
			wires[g.Out] = wires[g.A].Add(wires[g.B])
		case KindSub:
			wires[g.Out] = wires[g.A].Sub(wires[g.B])
		case KindConstMul:
			wires[g.Out] = g.Const.Mul(wires[g.A])
		case KindMul:
			wires[g.Out] = wires[g.A].Mul(wires[g.B])
		case KindConst:
			wires[g.Out] = g.Const
		case KindOutput:
			// no wire effect
		}
	}
	return wires, nil
}

// MulBatch is a group of at most k multiplication gates at the same
// multiplicative depth, evaluated together as one packed unit.
type MulBatch struct {
	// Layer is the multiplicative depth (1-based).
	Layer int
	// Gates are indices into Gates() of the member mul gates.
	Gates []int
}

// MulBatches groups multiplication gates by layer into batches of at most k.
// Every batch's gates all have inputs available once the previous layers'
// outputs are public, so the protocol can process layer l batches after
// reconstructing layer l-1.
func (c *Circuit) MulBatches(k int) []MulBatch {
	if k < 1 {
		k = 1
	}
	byLayer := map[int][]int{}
	maxLayer := 0
	for i, g := range c.gates {
		if g.Kind != KindMul {
			continue
		}
		l := c.mulDepth[g.Out]
		byLayer[l] = append(byLayer[l], i)
		if l > maxLayer {
			maxLayer = l
		}
	}
	var out []MulBatch
	for l := 1; l <= maxLayer; l++ {
		gates := byLayer[l]
		for start := 0; start < len(gates); start += k {
			end := min(start+k, len(gates))
			out = append(out, MulBatch{Layer: l, Gates: append([]int(nil), gates[start:end]...)})
		}
	}
	return out
}

// MaxWidth returns the largest number of multiplication gates in any layer —
// the "circuit width" of the paper's amortization assumption.
func (c *Circuit) MaxWidth() int {
	byLayer := map[int]int{}
	w := 0
	for _, g := range c.gates {
		if g.Kind != KindMul {
			continue
		}
		l := c.mulDepth[g.Out]
		byLayer[l]++
		if byLayer[l] > w {
			w = byLayer[l]
		}
	}
	return w
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
