package circuit

import (
	"fmt"
	"math/rand" //yosolint:simulation seeded benchmark-circuit generator; carries no secrets

	"yosompc/internal/field"
)

// Standard circuit generators used by the examples and the benchmark
// harness. Each returns the circuit together with a description of the
// client layout it expects.

// InnerProduct builds ⟨x, y⟩ for two clients holding vectors of length n;
// client 0 holds x, client 1 holds y, client 0 receives the result.
func InnerProduct(n int) (*Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuit: inner product needs n ≥ 1, got %d", n)
	}
	b := NewBuilder()
	xs := make([]WireID, n)
	ys := make([]WireID, n)
	for i := 0; i < n; i++ {
		xs[i] = b.Input(0)
	}
	for i := 0; i < n; i++ {
		ys[i] = b.Input(1)
	}
	acc := b.Mul(xs[0], ys[0])
	for i := 1; i < n; i++ {
		acc = b.Add(acc, b.Mul(xs[i], ys[i]))
	}
	b.Output(acc, 0)
	return b.Build()
}

// PolyEval builds the evaluation of client 0's degree-d polynomial (d+1
// coefficient inputs) at client 1's secret point; client 1 receives the
// result. Horner's rule gives multiplicative depth d.
func PolyEval(d int) (*Circuit, error) {
	if d < 1 {
		return nil, fmt.Errorf("circuit: poly eval needs degree ≥ 1, got %d", d)
	}
	b := NewBuilder()
	coeffs := make([]WireID, d+1)
	for i := range coeffs {
		coeffs[i] = b.Input(0)
	}
	x := b.Input(1)
	acc := coeffs[d]
	for i := d - 1; i >= 0; i-- {
		acc = b.Add(b.Mul(acc, x), coeffs[i])
	}
	b.Output(acc, 1)
	return b.Build()
}

// MatVecMul builds A·x for client 0's d×d matrix and client 1's d-vector;
// client 1 receives the d results. Width d², depth 1.
func MatVecMul(d int) (*Circuit, error) {
	if d < 1 {
		return nil, fmt.Errorf("circuit: matvec needs d ≥ 1, got %d", d)
	}
	b := NewBuilder()
	mat := make([][]WireID, d)
	for i := range mat {
		mat[i] = make([]WireID, d)
		for j := range mat[i] {
			mat[i][j] = b.Input(0)
		}
	}
	vec := make([]WireID, d)
	for j := range vec {
		vec[j] = b.Input(1)
	}
	for i := 0; i < d; i++ {
		acc := b.Mul(mat[i][0], vec[0])
		for j := 1; j < d; j++ {
			acc = b.Add(acc, b.Mul(mat[i][j], vec[j]))
		}
		b.Output(acc, 1)
	}
	return b.Build()
}

// Statistics builds n·Σx_i² − (Σx_i)² — n² times the population variance —
// over one input per client for clients 0..n-1; every client receives both
// the sum Σx_i and the variance numerator. This is the federated-statistics
// workload of the privatestats example.
func Statistics(n int) (*Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuit: statistics needs n ≥ 2 clients, got %d", n)
	}
	b := NewBuilder()
	xs := make([]WireID, n)
	for i := range xs {
		xs[i] = b.Input(i)
	}
	sum := xs[0]
	for i := 1; i < n; i++ {
		sum = b.Add(sum, xs[i])
	}
	sumSq := b.Mul(xs[0], xs[0])
	for i := 1; i < n; i++ {
		sumSq = b.Add(sumSq, b.Mul(xs[i], xs[i]))
	}
	nSumSq := b.ConstMul(field.New(uint64(n)), sumSq)
	variance := b.Sub(nSumSq, b.Mul(sum, sum))
	for i := 0; i < n; i++ {
		b.Output(sum, i)
		b.Output(variance, i)
	}
	return b.Build()
}

// WideMul builds `width` independent products per layer for `depth` layers
// (layer l multiplies layer l-1's outputs pairwise in a ring). It is the
// canonical wide-circuit benchmark shape: width O(n) is the paper's
// amortization assumption.
func WideMul(width, depth int) (*Circuit, error) {
	if width < 2 || depth < 1 {
		return nil, fmt.Errorf("circuit: wide mul needs width ≥ 2 and depth ≥ 1, got %d×%d", width, depth)
	}
	b := NewBuilder()
	cur := make([]WireID, width)
	for i := range cur {
		cur[i] = b.Input(i % 2)
	}
	for l := 0; l < depth; l++ {
		next := make([]WireID, width)
		for i := range next {
			next[i] = b.Mul(cur[i], cur[(i+1)%width])
		}
		cur = next
	}
	for _, w := range cur {
		b.Output(w, 0)
	}
	return b.Build()
}

// Random builds a random circuit with nInputs inputs split across two
// clients and approximately nGates gates (a mix of add/sub/constmul/mul),
// with a single output to client 0. The generator is deterministic in seed,
// so failures reproduce.
func Random(nInputs, nGates int, seed int64) (*Circuit, error) {
	if nInputs < 2 {
		return nil, fmt.Errorf("circuit: random circuit needs ≥ 2 inputs, got %d", nInputs)
	}
	// Deliberately deterministic in seed so failing circuits reproduce;
	// circuit topology is public data, never secret randomness.
	rng := rand.New(rand.NewSource(seed)) //yosolint:simulation reproducible public test-circuit topology
	b := NewBuilder()
	wires := make([]WireID, 0, nInputs+nGates)
	for i := 0; i < nInputs; i++ {
		wires = append(wires, b.Input(i%2))
	}
	pick := func() WireID { return wires[rng.Intn(len(wires))] }
	for g := 0; g < nGates; g++ {
		var w WireID
		switch rng.Intn(4) {
		case 0:
			w = b.Add(pick(), pick())
		case 1:
			w = b.Sub(pick(), pick())
		case 2:
			w = b.ConstMul(field.New(uint64(rng.Int63n(1000)+1)), pick())
		default:
			w = b.Mul(pick(), pick())
		}
		wires = append(wires, w)
	}
	b.Output(wires[len(wires)-1], 0)
	return b.Build()
}

// NonZeroIndicator builds the Fermat indicator x^(p−1), which is 1 for
// x ≠ 0 and 0 for x = 0 — the standard way to get boolean tests out of
// pure field arithmetic. Client `client` supplies x and receives the
// indicator. Square-and-multiply over the exponent p−1 costs ~120
// multiplications at depth ~61; every multiplication layer gets its own
// committee, so this circuit also doubles as a deep-schedule stress test.
func NonZeroIndicator(client int) (*Circuit, error) {
	b := NewBuilder()
	x := b.Input(client)
	out := nonZeroGadget(b, x)
	b.Output(out, client)
	return b.Build()
}

// NotEqualsIndicator builds (a−b)^(p−1): 0 when client 0's input equals
// client 1's input, 1 otherwise. Client 0 receives the indicator.
func NotEqualsIndicator() (*Circuit, error) {
	b := NewBuilder()
	a := b.Input(0)
	bb := b.Input(1)
	d := b.Sub(a, bb)
	b.Output(nonZeroGadget(b, d), 0) // 0 ⇔ equal, 1 ⇔ different
	return b.Build()
}

// EqualsIndicator builds 1 − (a−b)^(p−1): 1 when client 0's input equals
// client 1's input, 0 otherwise, using a public constant-1 wire.
func EqualsIndicator() (*Circuit, error) {
	b := NewBuilder()
	a := b.Input(0)
	bb := b.Input(1)
	one := b.Const(field.One)
	d := b.Sub(a, bb)
	b.Output(b.Sub(one, nonZeroGadget(b, d)), 0)
	return b.Build()
}

// MembershipIndicator builds the private-set-membership test: client 0
// holds a query x, client 1 holds m set elements; client 0 learns 1 iff x
// is in the set, via 1 − Π (1 − eq(x, s_i)). The Fermat equality gadget
// makes this ~120·m multiplications — a deep, narrow stress workload.
func MembershipIndicator(m int) (*Circuit, error) {
	if m < 1 {
		return nil, fmt.Errorf("circuit: membership needs m ≥ 1, got %d", m)
	}
	b := NewBuilder()
	x := b.Input(0)
	set := make([]WireID, m)
	for i := range set {
		set[i] = b.Input(1)
	}
	one := b.Const(field.One)
	// Π (1 − eq_i) = Π neq_i: 1 iff x matches no element.
	acc := nonZeroGadget(b, b.Sub(x, set[0]))
	for i := 1; i < m; i++ {
		acc = b.Mul(acc, nonZeroGadget(b, b.Sub(x, set[i])))
	}
	b.Output(b.Sub(one, acc), 0)
	return b.Build()
}

// nonZeroGadget emits the square-and-multiply chain for x^(p−1).
// p − 1 = 2^61 − 2 = 0b111…110 (sixty 1-bits then a 0), so Horner over
// the bits from most significant to least significant gives depth ≤ 122.
func nonZeroGadget(b *Builder, x WireID) WireID {
	exp := field.Modulus - 1
	// Find the top bit.
	top := 63
	for top >= 0 && (exp>>uint(top))&1 == 0 {
		top--
	}
	acc := x // handles the leading 1-bit
	for i := top - 1; i >= 0; i-- {
		acc = b.Mul(acc, acc)
		if (exp>>uint(i))&1 == 1 {
			acc = b.Mul(acc, x)
		}
	}
	return acc
}
