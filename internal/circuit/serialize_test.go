package circuit

import (
	"strings"
	"testing"

	"yosompc/internal/field"
)

func TestParseBasic(t *testing.T) {
	src := `
# (x + y) · 3x for two clients
input 0        # w0 = x
input 1        # w1 = y
add w0 w1      # w2
constmul 3 w0  # w3
mul w2 w3      # w4
output w4 0
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Eval(inputs(map[int][]uint64{0: {5}, 1: {2}}))
	if err != nil {
		t.Fatal(err)
	}
	// (5+2)·15 = 105.
	if out[0][0] != field.New(105) {
		t.Errorf("output = %v, want 105", out[0][0])
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	generators := map[string]func() (*Circuit, error){
		"inner-product": func() (*Circuit, error) { return InnerProduct(3) },
		"poly-eval":     func() (*Circuit, error) { return PolyEval(2) },
		"stats":         func() (*Circuit, error) { return Statistics(3) },
		"wide":          func() (*Circuit, error) { return WideMul(4, 2) },
		"random":        func() (*Circuit, error) { return Random(4, 20, 99) },
	}
	for name, gen := range generators {
		t.Run(name, func(t *testing.T) {
			orig, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := Parse(strings.NewReader(Format(orig)))
			if err != nil {
				t.Fatal(err)
			}
			if Format(parsed) != Format(orig) {
				t.Error("format not stable under round trip")
			}
			in := inputs(map[int][]uint64{})
			for _, client := range orig.Clients() {
				vals := make([]uint64, orig.InputCount(client))
				for i := range vals {
					vals[i] = uint64(client*3 + i + 1)
				}
				m := inputs(map[int][]uint64{client: vals})
				in[client] = m[client]
			}
			wantOut, err := orig.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			gotOut, err := parsed.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			for client, want := range wantOut {
				if !field.EqualVec(gotOut[client], want) {
					t.Errorf("client %d: %v vs %v", client, gotOut[client], want)
				}
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown gate":      "frobnicate w0 w1\n",
		"wrong arity":       "add w0\n",
		"undefined wire":    "input 0\nadd w0 w5\noutput w0 0\n",
		"bad wire syntax":   "input 0\nadd w0 x1\noutput w0 0\n",
		"negative wire":     "input 0\nadd w0 w-1\noutput w0 0\n",
		"bad scalar":        "input 0\nconstmul abc w0\noutput w0 0\n",
		"bad client":        "input banana\n",
		"negative client":   "input -2\n",
		"no outputs":        "input 0\n",
		"bad output client": "input 0\noutput w0 x\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(src)); err == nil {
				t.Errorf("accepted %q", src)
			}
		})
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	src := "\n\n# leading comment\n   input 0   \ninput 0\n\tadd w0 w1\noutput w2 0 # trailing\n"
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumWires() != 3 {
		t.Errorf("wires = %d", c.NumWires())
	}
}
