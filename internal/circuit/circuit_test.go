package circuit

import (
	"strings"
	"testing"

	"yosompc/internal/field"
)

func inputs(vals map[int][]uint64) map[int][]field.Element {
	out := map[int][]field.Element{}
	for c, vs := range vals {
		es := make([]field.Element, len(vs))
		for i, v := range vs {
			es[i] = field.New(v)
		}
		out[c] = es
	}
	return out
}

func TestBuilderBasicEval(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	sum := b.Add(x, y)
	prod := b.Mul(x, y)
	diff := b.Sub(prod, sum)
	scaled := b.ConstMul(field.New(10), diff)
	b.Output(scaled, 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// x=7, y=3: ((7·3) − (7+3)) · 10 = 110.
	out, err := c.Eval(inputs(map[int][]uint64{0: {7}, 1: {3}}))
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0][0]; got != field.New(110) {
		t.Errorf("output = %v, want 110", got)
	}
}

func TestBuildRequiresOutput(t *testing.T) {
	b := NewBuilder()
	b.Input(0)
	if _, err := b.Build(); err != ErrNoOutputs {
		t.Errorf("err = %v, want ErrNoOutputs", err)
	}
}

func TestUseBeforeDefinitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for undefined wire")
		}
	}()
	b := NewBuilder()
	b.Add(WireID(5), WireID(6))
}

func TestEvalMissingInput(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(0)
	b.Output(b.Add(x, y), 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Eval(inputs(map[int][]uint64{0: {1}})); err == nil {
		t.Error("accepted missing input")
	}
}

func TestCounts(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(0)
	m1 := b.Mul(x, y)
	m2 := b.Mul(m1, y)
	s := b.Add(m1, m2)
	b.Output(s, 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumMul() != 2 {
		t.Errorf("NumMul = %d, want 2", c.NumMul())
	}
	if c.NumLinear() != 1 {
		t.Errorf("NumLinear = %d, want 1", c.NumLinear())
	}
	if c.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", c.Depth())
	}
}

func TestMulBatchesLayering(t *testing.T) {
	// Two layer-1 muls feeding one layer-2 mul.
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(0)
	m1 := b.Mul(x, y)
	m2 := b.Mul(y, x)
	m3 := b.Mul(m1, m2)
	b.Output(m3, 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	batches := c.MulBatches(4)
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	if batches[0].Layer != 1 || len(batches[0].Gates) != 2 {
		t.Errorf("layer 1 batch: %+v", batches[0])
	}
	if batches[1].Layer != 2 || len(batches[1].Gates) != 1 {
		t.Errorf("layer 2 batch: %+v", batches[1])
	}
}

func TestMulBatchesRespectK(t *testing.T) {
	c, err := WideMul(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 4, 10, 100} {
		batches := c.MulBatches(k)
		total := 0
		for _, bt := range batches {
			if len(bt.Gates) > k {
				t.Errorf("k=%d: batch of %d gates", k, len(bt.Gates))
			}
			total += len(bt.Gates)
		}
		if total != c.NumMul() {
			t.Errorf("k=%d: batched %d of %d muls", k, total, c.NumMul())
		}
	}
	if got := c.MulBatches(0); len(got) != c.NumMul() {
		t.Errorf("k=0 should clamp to 1, got %d batches", len(got))
	}
}

func TestAddDoesNotIncreaseDepth(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(0)
	m := b.Mul(x, y)
	a := b.Add(m, x)
	a = b.Add(a, y)
	m2 := b.Mul(a, x)
	b.Output(m2, 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", c.Depth())
	}
}

func TestClients(t *testing.T) {
	b := NewBuilder()
	x := b.Input(3)
	y := b.Input(1)
	b.Output(b.Add(x, y), 7)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := c.Clients()
	want := []int{1, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("Clients = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Clients = %v, want %v", got, want)
		}
	}
	if c.InputCount(3) != 1 || c.InputCount(7) != 0 {
		t.Error("InputCount wrong")
	}
}

func TestInnerProduct(t *testing.T) {
	c, err := InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Eval(inputs(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}}))
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0][0]; got != field.New(32) {
		t.Errorf("⟨x,y⟩ = %v, want 32", got)
	}
	if c.MaxWidth() != 3 {
		t.Errorf("width = %d, want 3", c.MaxWidth())
	}
}

func TestPolyEval(t *testing.T) {
	c, err := PolyEval(3)
	if err != nil {
		t.Fatal(err)
	}
	// p(x) = 1 + 2x + 3x² + 4x³ at x = 2 → 1+4+12+32 = 49.
	out, err := c.Eval(inputs(map[int][]uint64{0: {1, 2, 3, 4}, 1: {2}}))
	if err != nil {
		t.Fatal(err)
	}
	if got := out[1][0]; got != field.New(49) {
		t.Errorf("p(2) = %v, want 49", got)
	}
	if c.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", c.Depth())
	}
}

func TestMatVecMul(t *testing.T) {
	c, err := MatVecMul(2)
	if err != nil {
		t.Fatal(err)
	}
	// [[1,2],[3,4]]·[5,6] = [17, 39].
	out, err := c.Eval(inputs(map[int][]uint64{0: {1, 2, 3, 4}, 1: {5, 6}}))
	if err != nil {
		t.Fatal(err)
	}
	if out[1][0] != field.New(17) || out[1][1] != field.New(39) {
		t.Errorf("A·x = %v", out[1])
	}
}

func TestStatistics(t *testing.T) {
	c, err := Statistics(3)
	if err != nil {
		t.Fatal(err)
	}
	// x = [2, 4, 6]: sum = 12; 3·(4+16+36) − 144 = 168 − 144 = 24.
	out, err := c.Eval(inputs(map[int][]uint64{0: {2}, 1: {4}, 2: {6}}))
	if err != nil {
		t.Fatal(err)
	}
	for client := 0; client < 3; client++ {
		if out[client][0] != field.New(12) {
			t.Errorf("client %d sum = %v, want 12", client, out[client][0])
		}
		if out[client][1] != field.New(24) {
			t.Errorf("client %d variance·n² = %v, want 24", client, out[client][1])
		}
	}
}

func TestWideMul(t *testing.T) {
	c, err := WideMul(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumMul() != 12 {
		t.Errorf("NumMul = %d, want 12", c.NumMul())
	}
	if c.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", c.Depth())
	}
	if c.MaxWidth() != 4 {
		t.Errorf("MaxWidth = %d, want 4", c.MaxWidth())
	}
	// All-ones inputs: every product stays 1.
	out, err := c.Eval(inputs(map[int][]uint64{0: {1, 1}, 1: {1, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out[0] {
		if v != field.One {
			t.Errorf("output = %v, want 1", v)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	c1, err := Random(6, 40, 42)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Random(6, 40, 42)
	if err != nil {
		t.Fatal(err)
	}
	in := inputs(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	o1, err := c1.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := c2.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if o1[0][0] != o2[0][0] {
		t.Error("same seed produced different circuits")
	}
	c3, err := Random(6, 40, 43)
	if err != nil {
		t.Fatal(err)
	}
	if c3.NumMul() == 0 && c3.NumLinear() == 0 {
		t.Error("random circuit has no gates")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := InnerProduct(0); err == nil {
		t.Error("InnerProduct(0) accepted")
	}
	if _, err := PolyEval(0); err == nil {
		t.Error("PolyEval(0) accepted")
	}
	if _, err := MatVecMul(0); err == nil {
		t.Error("MatVecMul(0) accepted")
	}
	if _, err := Statistics(1); err == nil {
		t.Error("Statistics(1) accepted")
	}
	if _, err := WideMul(1, 1); err == nil {
		t.Error("WideMul(1,1) accepted")
	}
	if _, err := Random(1, 5, 0); err == nil {
		t.Error("Random(1,...) accepted")
	}
}

func TestGateKindString(t *testing.T) {
	kinds := []GateKind{KindInput, KindAdd, KindSub, KindConstMul, KindMul, KindOutput, GateKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestNonZeroIndicator(t *testing.T) {
	c, err := NonZeroIndicator(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ in, want uint64 }{
		{0, 0}, {1, 1}, {7, 1}, {field.Modulus - 1, 1},
	} {
		out, err := c.Eval(inputs(map[int][]uint64{0: {tc.in}}))
		if err != nil {
			t.Fatal(err)
		}
		if out[0][0] != field.New(tc.want) {
			t.Errorf("indicator(%d) = %v, want %d", tc.in, out[0][0], tc.want)
		}
	}
	if c.Depth() < 60 {
		t.Errorf("depth = %d, expected ~61+", c.Depth())
	}
}

func TestNotEqualsIndicator(t *testing.T) {
	c, err := NotEqualsIndicator()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b uint64
		want uint64 // 0 ⇔ equal
	}{
		{5, 5, 0}, {5, 6, 1}, {0, 0, 0}, {0, 1, 1},
	}
	for _, tc := range cases {
		out, err := c.Eval(inputs(map[int][]uint64{0: {tc.a}, 1: {tc.b}}))
		if err != nil {
			t.Fatal(err)
		}
		if out[0][0] != field.New(tc.want) {
			t.Errorf("neq(%d,%d) = %v, want %d", tc.a, tc.b, out[0][0], tc.want)
		}
	}
}

func TestConstGate(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	five := b.Const(field.New(5))
	b.Output(b.Add(b.Mul(x, five), five), 0) // 5x + 5
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Eval(inputs(map[int][]uint64{0: {7}}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != field.New(40) {
		t.Errorf("5·7+5 = %v, want 40", out[0][0])
	}
}

func TestConstSerializeRoundTrip(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	k := b.Const(field.New(42))
	b.Output(b.Sub(k, x), 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(strings.NewReader(Format(c)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c2.Eval(inputs(map[int][]uint64{0: {40}}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != field.New(2) {
		t.Errorf("42−40 = %v, want 2", out[0][0])
	}
}

func TestOptimizerFoldsConsts(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	a := b.Const(field.New(3))
	bb := b.Const(field.New(4))
	sum := b.Add(a, bb)   // folds to const 7
	prod := b.Mul(sum, x) // becomes constmul 7·x
	b.Output(prod, 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumMul() != 0 {
		t.Errorf("const·x not folded to constmul: %d muls remain", opt.NumMul())
	}
	out, err := opt.Eval(inputs(map[int][]uint64{0: {6}}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != field.New(42) {
		t.Errorf("7·6 = %v, want 42", out[0][0])
	}
}

func TestEqualsIndicatorWithConst(t *testing.T) {
	c, err := EqualsIndicator()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ a, b, want uint64 }{
		{9, 9, 1}, {9, 8, 0},
	} {
		out, err := c.Eval(inputs(map[int][]uint64{0: {tc.a}, 1: {tc.b}}))
		if err != nil {
			t.Fatal(err)
		}
		if out[0][0] != field.New(tc.want) {
			t.Errorf("eq(%d,%d) = %v, want %d", tc.a, tc.b, out[0][0], tc.want)
		}
	}
}

func TestMembershipIndicator(t *testing.T) {
	c, err := MembershipIndicator(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		x    uint64
		want uint64
	}{
		{20, 1}, {30, 1}, {99, 0},
	} {
		out, err := c.Eval(inputs(map[int][]uint64{0: {tc.x}, 1: {10, 20, 30}}))
		if err != nil {
			t.Fatal(err)
		}
		if out[0][0] != field.New(tc.want) {
			t.Errorf("member(%d) = %v, want %d", tc.x, out[0][0], tc.want)
		}
	}
	if _, err := MembershipIndicator(0); err == nil {
		t.Error("accepted m=0")
	}
}
