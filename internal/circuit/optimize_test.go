package circuit

import (
	"testing"

	"yosompc/internal/field"
)

// evalBoth checks that Optimize preserves the circuit's function for the
// given inputs and returns (original, optimized).
func evalBoth(t *testing.T, c *Circuit, in map[int][]field.Element) (*Circuit, *Circuit) {
	t.Helper()
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := opt.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	for client, vals := range want {
		if !field.EqualVec(got[client], vals) {
			t.Errorf("client %d: optimized %v, original %v", client, got[client], vals)
		}
	}
	return c, opt
}

func TestOptimizeDeadMulElimination(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	b.Mul(x, y) // dead: never reaches an output
	b.Mul(y, y) // dead
	b.Output(b.Add(x, y), 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, opt := evalBoth(t, c, inputs(map[int][]uint64{0: {3}, 1: {4}}))
	if opt.NumMul() != 0 {
		t.Errorf("dead muls survived: %d", opt.NumMul())
	}
}

func TestOptimizeCSE(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	m1 := b.Mul(x, y)
	m2 := b.Mul(y, x) // same product, commuted
	b.Output(b.Add(m1, m2), 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, opt := evalBoth(t, c, inputs(map[int][]uint64{0: {5}, 1: {7}}))
	if opt.NumMul() != 1 {
		t.Errorf("commuted duplicate mul not merged: %d muls", opt.NumMul())
	}
}

func TestOptimizeConstFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	a := b.ConstMul(field.New(3), x)
	bb := b.ConstMul(field.New(5), a) // 15·x
	one := b.ConstMul(field.One, bb)  // identity
	b.Output(one, 0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, opt := evalBoth(t, c, inputs(map[int][]uint64{0: {2}}))
	// One surviving constmul (15·x); the 1· disappears.
	if opt.NumLinear() != 1 {
		t.Errorf("const chain not folded: %d linear gates", opt.NumLinear())
	}
}

func TestOptimizeZeroCollapse(t *testing.T) {
	b := NewBuilder()
	x := b.Input(0)
	z1 := b.Sub(x, x)               // 0
	z2 := b.ConstMul(field.Zero, x) // 0
	b.Output(b.Add(z1, z2), 0)      // 0
	b.Output(b.Mul(z1, x), 0)       // 0
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	orig, opt := evalBoth(t, c, inputs(map[int][]uint64{0: {9}}))
	if opt.NumWires() >= orig.NumWires() {
		t.Errorf("zero collapse did not shrink: %d vs %d wires", opt.NumWires(), orig.NumWires())
	}
}

func TestOptimizePreservesFunctionOnGenerators(t *testing.T) {
	gens := map[string]func() (*Circuit, error){
		"inner":  func() (*Circuit, error) { return InnerProduct(4) },
		"poly":   func() (*Circuit, error) { return PolyEval(3) },
		"stats":  func() (*Circuit, error) { return Statistics(3) },
		"wide":   func() (*Circuit, error) { return WideMul(4, 3) },
		"random": func() (*Circuit, error) { return Random(5, 50, 7) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			c, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			in := map[int][]field.Element{}
			for _, client := range c.Clients() {
				vals := make([]field.Element, c.InputCount(client))
				for i := range vals {
					vals[i] = field.New(uint64(client*13 + i + 2))
				}
				in[client] = vals
			}
			orig, opt := evalBoth(t, c, in)
			if opt.NumMul() > orig.NumMul() {
				t.Errorf("optimizer added muls: %d > %d", opt.NumMul(), orig.NumMul())
			}
		})
	}
}

func TestOptimizeRandomCircuitsShrink(t *testing.T) {
	// Random circuits have a single output, so most gates are dead; the
	// optimizer must remove them all.
	c, err := Random(4, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumMul()+opt.NumLinear() >= c.NumMul()+c.NumLinear() {
		t.Errorf("no shrink: %d+%d vs %d+%d gates",
			opt.NumMul(), opt.NumLinear(), c.NumMul(), c.NumLinear())
	}
}

func TestOptimizeKeepsInputLayout(t *testing.T) {
	// Unused inputs must survive (the client interface is fixed).
	b := NewBuilder()
	x := b.Input(0)
	b.Input(0) // unused
	b.Input(1) // unused
	b.Output(x, 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.InputCount(0) != 2 || opt.InputCount(1) != 1 {
		t.Errorf("input layout changed: %d/%d", opt.InputCount(0), opt.InputCount(1))
	}
	// And evaluation still works with the full input vectors.
	evalBoth(t, c, inputs(map[int][]uint64{0: {8, 9}, 1: {10}}))
}

func TestOptimizeIdempotent(t *testing.T) {
	c, err := Random(4, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	once, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Optimize(once)
	if err != nil {
		t.Fatal(err)
	}
	if Format(once) != Format(twice) {
		t.Error("optimizer not idempotent")
	}
}
