package circuit

import (
	"fmt"

	"yosompc/internal/field"
)

// Optimize rewrites a circuit into an equivalent one with (usually) fewer
// gates:
//
//   - dead-gate elimination: gates whose outputs never reach an output
//     gate are dropped (multiplications are the expensive resource — every
//     dead mul costs Beaver triples, λ randomness and packing slots);
//   - common-subexpression elimination: structurally identical gates on
//     the same input wires are merged (Add/Mul treated as commutative);
//   - algebraic identities: x·1 → x-scaled wiring via ConstMul folding,
//     c₁·(c₂·x) → (c₁c₂)·x, 1·x constmul dropped, 0·x and x−x collapse
//     to an explicit zero wire (0·input) so that the wire count stays
//     well-defined without constant gates.
//
// Optimize never changes the observable outputs: for every input
// assignment, Eval on the result equals Eval on the original.
func Optimize(c *Circuit) (*Circuit, error) {
	// Folding can orphan intermediate gates (3·x survives liveness until
	// 5·(3·x) is rewritten to 15·x), so iterate to a fixpoint; each pass
	// strictly shrinks or stabilizes, and two passes suffice in practice.
	prev := c
	for iter := 0; iter < 4; iter++ {
		next, err := optimizeOnce(prev)
		if err != nil {
			return nil, err
		}
		if len(next.gates) >= len(prev.gates) && iter > 0 {
			return prev, nil
		}
		if len(next.gates) == len(prev.gates) {
			return next, nil
		}
		prev = next
	}
	return prev, nil
}

func optimizeOnce(c *Circuit) (*Circuit, error) {
	live := liveWires(c)
	b := NewBuilder()
	// remap[old wire] = new wire.
	remap := make([]WireID, c.numWires)
	for i := range remap {
		remap[i] = -1
	}
	// cse maps a canonical gate signature to its new output wire.
	cse := map[string]WireID{}
	// constMulOf[w] = (c, src) when w was produced by ConstMul(c, src),
	// enabling c₁·(c₂·x) folding.
	type cm struct {
		c   field.Element
		src WireID
	}
	constMulOf := map[WireID]cm{}
	// constOf[w] holds the value of a public-constant wire, enabling full
	// constant folding through linear and multiplication gates.
	constOf := map[WireID]field.Element{}
	emitConst := func(v field.Element) WireID {
		key := fmt.Sprintf("const %d", v.Uint64())
		if w, ok := cse[key]; ok {
			return w
		}
		w := b.Const(v)
		cse[key] = w
		constOf[w] = v
		return w
	}
	// zeroWire caches the synthesized zero wire (0 · first live wire).
	var zeroWire WireID = -1
	zero := func(anchor WireID) WireID {
		if zeroWire == -1 {
			zeroWire = b.ConstMul(field.Zero, anchor)
		}
		return zeroWire
	}

	emit := func(sig string, mk func() WireID) WireID {
		if w, ok := cse[sig]; ok {
			return w
		}
		w := mk()
		cse[sig] = w
		return w
	}

	for gi, g := range c.gates {
		if g.Kind != KindOutput && !live[g.Out] {
			continue
		}
		switch g.Kind {
		case KindInput:
			// Inputs are never deduplicated or dropped: the client's
			// input layout is part of the interface.
			remap[g.Out] = b.Input(g.Client)
		case KindConst:
			remap[g.Out] = emitConst(g.Const)
		case KindAdd:
			a, bb := remap[g.A], remap[g.B]
			if va, okA := constOf[a]; okA {
				if vb, okB := constOf[bb]; okB {
					remap[g.Out] = emitConst(va.Add(vb))
					continue
				}
			}
			if a > bb { // canonical order: Add commutes
				a, bb = bb, a
			}
			remap[g.Out] = emit(fmt.Sprintf("add %d %d", a, bb), func() WireID { return b.Add(a, bb) })
		case KindSub:
			a, bb := remap[g.A], remap[g.B]
			if va, okA := constOf[a]; okA {
				if vb, okB := constOf[bb]; okB {
					remap[g.Out] = emitConst(va.Sub(vb))
					continue
				}
			}
			if a == bb {
				remap[g.Out] = zero(a)
				continue
			}
			remap[g.Out] = emit(fmt.Sprintf("sub %d %d", a, bb), func() WireID { return b.Sub(a, bb) })
		case KindConstMul:
			src := remap[g.A]
			coeff := g.Const
			// Fold nested constants.
			if inner, ok := constMulOf[src]; ok {
				coeff = coeff.Mul(inner.c)
				src = inner.src
			}
			switch {
			case coeff.IsZero():
				remap[g.Out] = zero(src)
			case coeff == field.One:
				remap[g.Out] = src
			default:
				w := emit(fmt.Sprintf("cmul %d %d", coeff.Uint64(), src),
					func() WireID { return b.ConstMul(coeff, src) })
				remap[g.Out] = w
				constMulOf[w] = cm{c: coeff, src: src}
			}
		case KindMul:
			a, bb := remap[g.A], remap[g.B]
			// A multiplication by a public constant is a free ConstMul;
			// two constants fold entirely.
			if va, okA := constOf[a]; okA {
				if vb, okB := constOf[bb]; okB {
					remap[g.Out] = emitConst(va.Mul(vb))
					continue
				}
				remap[g.Out] = emit(fmt.Sprintf("cmul %d %d", va.Uint64(), bb),
					func() WireID { return b.ConstMul(va, bb) })
				continue
			}
			if vb, okB := constOf[bb]; okB {
				remap[g.Out] = emit(fmt.Sprintf("cmul %d %d", vb.Uint64(), a),
					func() WireID { return b.ConstMul(vb, a) })
				continue
			}
			if a > bb { // canonical order: Mul commutes
				a, bb = bb, a
			}
			remap[g.Out] = emit(fmt.Sprintf("mul %d %d", a, bb), func() WireID { return b.Mul(a, bb) })
		case KindOutput:
			b.Output(remap[g.A], g.Client)
		default:
			return nil, fmt.Errorf("circuit: optimize: gate %d has unknown kind %v", gi, g.Kind)
		}
	}
	return b.Build()
}

// liveWires marks every wire that (transitively) feeds an output gate.
func liveWires(c *Circuit) []bool {
	live := make([]bool, c.numWires)
	// Walk backwards: outputs seed liveness; a gate's inputs become live
	// when its output is.
	for i := len(c.gates) - 1; i >= 0; i-- {
		g := c.gates[i]
		switch g.Kind {
		case KindOutput:
			live[g.A] = true
		case KindAdd, KindSub, KindMul:
			if live[g.Out] {
				live[g.A] = true
				live[g.B] = true
			}
		case KindConstMul:
			if live[g.Out] {
				live[g.A] = true
			}
		case KindConst:
			// kept only if live; no inputs
		case KindInput:
			// Inputs are always retained (interface stability), whether
			// or not they are live.
			live[g.Out] = true
		}
	}
	return live
}
