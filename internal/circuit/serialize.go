package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"yosompc/internal/field"
)

// Text format for circuits, one gate per line, wires named w<N> in
// creation order:
//
//	# comments and blank lines are ignored
//	input <client>            # creates the next wire
//	add <wire> <wire>
//	sub <wire> <wire>
//	constmul <scalar> <wire>
//	mul <wire> <wire>
//	output <wire> <client>
//
// The format round-trips through Format/Parse and feeds cmd/yosompc's
// -file flag.

// Format renders a circuit in the text format.
func Format(c *Circuit) string {
	var b strings.Builder
	for _, g := range c.gates {
		switch g.Kind {
		case KindInput:
			fmt.Fprintf(&b, "input %d\n", g.Client)
		case KindAdd:
			fmt.Fprintf(&b, "add w%d w%d\n", g.A, g.B)
		case KindSub:
			fmt.Fprintf(&b, "sub w%d w%d\n", g.A, g.B)
		case KindConstMul:
			fmt.Fprintf(&b, "constmul %d w%d\n", g.Const.Uint64(), g.A)
		case KindMul:
			fmt.Fprintf(&b, "mul w%d w%d\n", g.A, g.B)
		case KindOutput:
			fmt.Fprintf(&b, "output w%d %d\n", g.A, g.Client)
		case KindConst:
			fmt.Fprintf(&b, "const %d\n", g.Const.Uint64())
		}
	}
	return b.String()
}

// Parse reads the text format and builds the circuit.
func Parse(r io.Reader) (*Circuit, error) {
	b := NewBuilder()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := parseGate(b, fields); err != nil {
			return nil, fmt.Errorf("circuit: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("circuit: reading: %w", err)
	}
	return b.Build()
}

func parseGate(b *Builder, fields []string) error {
	op := fields[0]
	argc := map[string]int{
		"input": 1, "add": 2, "sub": 2, "constmul": 2, "mul": 2, "output": 2, "const": 1,
	}
	want, ok := argc[op]
	if !ok {
		return fmt.Errorf("unknown gate %q", op)
	}
	if len(fields)-1 != want {
		return fmt.Errorf("%s takes %d operands, got %d", op, want, len(fields)-1)
	}
	switch op {
	case "input":
		client, err := parseClient(fields[1])
		if err != nil {
			return err
		}
		b.Input(client)
	case "add", "sub", "mul":
		a, err := parseWire(b, fields[1])
		if err != nil {
			return err
		}
		bb, err := parseWire(b, fields[2])
		if err != nil {
			return err
		}
		switch op {
		case "add":
			b.Add(a, bb)
		case "sub":
			b.Sub(a, bb)
		case "mul":
			b.Mul(a, bb)
		}
	case "constmul":
		scalar, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad scalar %q: %v", fields[1], err)
		}
		a, err := parseWire(b, fields[2])
		if err != nil {
			return err
		}
		b.ConstMul(field.New(scalar), a)
	case "const":
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad constant %q: %v", fields[1], err)
		}
		b.Const(field.New(v))
	case "output":
		a, err := parseWire(b, fields[1])
		if err != nil {
			return err
		}
		client, err := parseClient(fields[2])
		if err != nil {
			return err
		}
		b.Output(a, client)
	}
	return nil
}

func parseWire(b *Builder, s string) (WireID, error) {
	if !strings.HasPrefix(s, "w") {
		return 0, fmt.Errorf("bad wire %q (want wN)", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad wire %q", s)
	}
	if n >= b.numWires {
		return 0, fmt.Errorf("wire w%d used before definition (have %d wires)", n, b.numWires)
	}
	return WireID(n), nil
}

func parseClient(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad client %q", s)
	}
	return n, nil
}
