package circuit

import (
	"strings"
	"testing"
)

// FuzzParse checks that arbitrary inputs never panic the parser and that
// accepted circuits round-trip through Format.
func FuzzParse(f *testing.F) {
	f.Add("input 0\ninput 1\nmul w0 w1\noutput w2 0\n")
	f.Add("# comment\ninput 0\nconstmul 42 w0\noutput w1 7\n")
	f.Add("input 0\nadd w0 w0\nsub w1 w0\noutput w2 0\n")
	f.Add("")
	f.Add("garbage\n\x00\xff")
	f.Add("input 0\noutput w99 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted circuits must survive a Format/Parse round trip.
		c2, err := Parse(strings.NewReader(Format(c)))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if Format(c) != Format(c2) {
			t.Fatal("round trip changed the circuit")
		}
	})
}
