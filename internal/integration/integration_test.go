// Package integration holds cross-module end-to-end scenarios that no
// single package owns: backend consistency, pipeline composition
// (parse → optimize → execute), and batched preprocessing.
package integration

import (
	"strings"
	"testing"

	"yosompc/internal/baseline"
	"yosompc/internal/circuit"
	"yosompc/internal/core"
	"yosompc/internal/field"
	"yosompc/internal/paillier"
	"yosompc/internal/pke"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

func simParams(n, t, k int) core.Params {
	return core.Params{N: n, T: t, K: k, TE: tte.NewSim(512), PKE: pke.NewSim()}
}

func realParams(tb testing.TB, n, t, k int) core.Params {
	tb.Helper()
	te, err := tte.NewThreshold(paillier.FixedTestKey(2))
	if err != nil {
		tb.Fatal(err)
	}
	return core.Params{N: n, T: t, K: k, TE: te, PKE: pke.NewECIES()}
}

func run(t *testing.T, params core.Params, circ *circuit.Circuit, in map[int][]field.Element) *core.Result {
	t.Helper()
	proto, err := core.New(params, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBackendsAgree runs the same computation on the ideal and the real
// backend and on the CDN baseline: all three must produce the plaintext
// evaluator's outputs.
func TestBackendsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("real crypto in -short mode")
	}
	circ, err := circuit.Statistics(3)
	if err != nil {
		t.Fatal(err)
	}
	in := map[int][]field.Element{
		0: {field.New(10)}, 1: {field.New(20)}, 2: {field.New(33)},
	}
	want, err := circ.Eval(in)
	if err != nil {
		t.Fatal(err)
	}

	simRes := run(t, simParams(8, 2, 2), circ, in)
	realRes := run(t, realParams(t, 6, 1, 2), circ, in)

	bproto, err := baseline.New(baseline.Params{N: 5, T: 2, TE: tte.NewSim(512), PKE: pke.NewSim()}, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := bproto.Run(in)
	if err != nil {
		t.Fatal(err)
	}

	for client, vals := range want {
		for _, got := range [][]field.Element{simRes.Outputs[client], realRes.Outputs[client], baseRes.Outputs[client]} {
			if !field.EqualVec(got, vals) {
				t.Errorf("client %d: %v, want %v", client, got, vals)
			}
		}
	}
}

// TestParseOptimizeExecutePipeline drives the full tooling pipeline: a
// text circuit with redundancy is parsed, optimized, and executed; the
// optimizer's multiplication savings translate into offline-byte savings.
func TestParseOptimizeExecutePipeline(t *testing.T) {
	src := `
# redundant: m1 and m2 are the same product; m3 is dead
input 0
input 1
mul w0 w1
mul w1 w0
mul w0 w0
add w2 w3
output w5 0
`
	parsed, err := circuit.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := circuit.Optimize(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumMul() >= parsed.NumMul() {
		t.Fatalf("optimizer kept %d of %d muls", opt.NumMul(), parsed.NumMul())
	}
	in := map[int][]field.Element{0: {field.New(6)}, 1: {field.New(7)}}
	resFull := run(t, simParams(6, 1, 1), parsed, in)
	resOpt := run(t, simParams(6, 1, 1), opt, in)
	if resFull.Outputs[0][0] != resOpt.Outputs[0][0] {
		t.Errorf("outputs differ: %v vs %v", resFull.Outputs[0][0], resOpt.Outputs[0][0])
	}
	if resFull.Outputs[0][0] != field.New(84) { // 42 + 42
		t.Errorf("output = %v, want 84", resFull.Outputs[0][0])
	}
	if resOpt.Report.Phase("offline") >= resFull.Report.Phase("offline") {
		t.Errorf("optimization did not reduce offline bytes: %d vs %d",
			resOpt.Report.Phase("offline"), resFull.Report.Phase("offline"))
	}
}

// TestBatchedPreprocessing prepares several executions ahead of time and
// consumes them one by one — the nightly-preprocessing deployment pattern.
func TestBatchedPreprocessing(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 3
	prepared := make([]*core.Prepared, batch)
	for i := range prepared {
		proto, err := core.New(simParams(6, 1, 1), circ, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := proto.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		prepared[i] = p
	}
	// Three different input sets against three independent preprocessings.
	cases := []struct {
		x, y []uint64
		want uint64
	}{
		{[]uint64{1, 2}, []uint64{3, 4}, 11},
		{[]uint64{5, 6}, []uint64{7, 8}, 83},
		{[]uint64{9, 1}, []uint64{2, 3}, 21},
	}
	for i, c := range cases {
		in := map[int][]field.Element{
			0: {field.New(c.x[0]), field.New(c.x[1])},
			1: {field.New(c.y[0]), field.New(c.y[1])},
		}
		res, err := prepared[i].Execute(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0][0] != field.New(c.want) {
			t.Errorf("case %d: %v, want %d", i, res.Outputs[0][0], c.want)
		}
	}
}

// TestRobustAndFailStopCombined exercises §5.4 and IT-GOD together: halved
// packing, crashed roles, and lying roles in every committee.
func TestRobustAndFailStopCombined(t *testing.T) {
	circ, err := circuit.WideMul(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := map[int][]field.Element{
		0: {field.New(2), field.New(3), field.New(4)},
		1: {field.New(5), field.New(6), field.New(7)},
	}
	want, err := circ.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	// n=20, t=3, k=2: robust decoding threshold 3·3+2+1 = 12; with 3
	// malicious + 3 crashed, 14 shares are posted (3 of them lies), and
	// decoding needs deg(7)+2·3+1 = 14 of which ≥ 11 honest. 14−3 lies
	// leaves 11 honest ✓.
	params := simParams(20, 3, 2)
	params.Robust = true
	params.Adversary = yoso.NewAdversary(3, 3, 73)
	res := run(t, params, circ, in)
	if !field.EqualVec(res.Outputs[0], want[0]) {
		t.Errorf("outputs %v, want %v", res.Outputs[0], want[0])
	}
}

// TestDifferentCircuitsShareNothing makes sure two protocol instances are
// fully isolated (no cross-talk through package state).
func TestDifferentCircuitsShareNothing(t *testing.T) {
	c1, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := circuit.PolyEval(2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := core.New(simParams(6, 1, 1), c1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.New(simParams(8, 2, 2), c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	go func() {
		_, err := p1.Run(map[int][]field.Element{0: {field.New(1), field.New(2)}, 1: {field.New(3), field.New(4)}})
		done <- err
	}()
	go func() {
		_, err := p2.Run(map[int][]field.Element{0: {field.New(1), field.New(1), field.New(1)}, 1: {field.New(2)}})
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
