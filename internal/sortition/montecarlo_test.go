package sortition

import (
	"math"
	"math/rand"
	"testing"
)

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mean := range []float64{0.5, 5, 25, 50, 500, 10000} {
		const trials = 20000
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			v := float64(poisson(rng, mean))
			sum += v
			sumSq += v * v
		}
		m := sum / trials
		variance := sumSq/trials - m*m
		// Poisson: mean == variance. Sample error ~ mean/sqrt(trials).
		tol := 5 * math.Sqrt(mean/trials) * math.Max(1, math.Sqrt(mean))
		if math.Abs(m-mean) > tol+0.05*mean {
			t.Errorf("mean %v: sample mean %.2f", mean, m)
		}
		if math.Abs(variance-mean) > 0.15*mean+1 {
			t.Errorf("mean %v: sample variance %.2f", mean, variance)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if poisson(rng, 0) != 0 {
		t.Error("Poisson(0) != 0")
	}
	if poisson(rng, -5) != 0 {
		t.Error("Poisson(negative) != 0")
	}
}

func TestSimulateNoViolations(t *testing.T) {
	// The bounds hold except with probability 2^-128, so 10k trials must
	// show zero violations, and the worst observed committee must sit
	// well inside the margins.
	rows := []struct {
		c int
		f float64
	}{
		{1000, 0.05},
		{5000, 0.10},
		{20000, 0.20},
	}
	for _, row := range rows {
		res, err := Analyze(row.c, row.f)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Simulate(10000, 42)
		if st.ViolationsT != 0 {
			t.Errorf("C=%d f=%.2f: %d corruption-threshold violations", row.c, row.f, st.ViolationsT)
		}
		if st.ViolationsGap != 0 {
			t.Errorf("C=%d f=%.2f: %d gap violations", row.c, row.f, st.ViolationsGap)
		}
		if st.ViolationsRecon != 0 {
			t.Errorf("C=%d f=%.2f: %d reconstruction violations", row.c, row.f, st.ViolationsRecon)
		}
		if st.MarginT < 1.05 {
			t.Errorf("C=%d f=%.2f: margin %.3f too tight (max corrupt %d vs t=%d)",
				row.c, row.f, st.MarginT, st.MaxCorrupt, res.T)
		}
		// Sample means must match the sortition expectations.
		if math.Abs(st.MeanCorrupt-row.f*float64(row.c)) > 0.05*row.f*float64(row.c) {
			t.Errorf("C=%d f=%.2f: mean corrupt %.1f, expected %.1f",
				row.c, row.f, st.MeanCorrupt, row.f*float64(row.c))
		}
		if math.Abs(st.MeanSize-float64(row.c)) > 0.02*float64(row.c) {
			t.Errorf("C=%d: mean size %.1f, expected %d", row.c, st.MeanSize, row.c)
		}
	}
}

func TestSimulateReproducible(t *testing.T) {
	res, err := Analyze(5000, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Simulate(1000, 9)
	b := res.Simulate(1000, 9)
	if a != b {
		t.Error("same seed produced different stats")
	}
	c := res.Simulate(1000, 10)
	if a == c {
		t.Error("different seeds produced identical stats")
	}
}

func TestTrialStatsString(t *testing.T) {
	res, err := Analyze(1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Simulate(100, 1).String(); len(s) == 0 {
		t.Error("empty stats string")
	}
}

func BenchmarkSimulate(b *testing.B) {
	res, err := Analyze(20000, 0.20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Simulate(1000, int64(i))
	}
}
