package sortition

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// paperTable1 is the paper's Table 1, transcribed verbatim. t/c/c'/k entries
// of -1 mark ⊥ rows.
var paperTable1 = []struct {
	c         int
	f         float64
	t, cc, cp int
	eps       float64
	k         int
}{
	{1000, 0.05, 446, 949, 893, 0.03, 28},
	{1000, 0.10, -1, -1, -1, 0, -1},
	{1000, 0.15, -1, -1, -1, 0, -1},
	{1000, 0.20, -1, -1, -1, 0, -1},
	{1000, 0.25, -1, -1, -1, 0, -1},
	{5000, 0.05, 1078, 4699, 2157, 0.27, 1271},
	{5000, 0.10, 1721, 4925, 3444, 0.15, 741},
	{5000, 0.15, 2293, 5106, 4588, 0.05, 259},
	{5000, 0.20, -1, -1, -1, 0, -1},
	{5000, 0.25, -1, -1, -1, 0, -1},
	{10000, 0.05, 1754, 9518, 3509, 0.32, 3004},
	{10000, 0.10, 2937, 9841, 5876, 0.20, 1982},
	{10000, 0.15, 4004, 10098, 8009, 0.10, 1045},
	{10000, 0.20, 4983, 10319, 9968, 0.02, 175},
	{10000, 0.25, -1, -1, -1, 0, -1},
	{20000, 0.05, 2998, 19264, 5998, 0.34, 6633},
	{20000, 0.10, 5216, 19723, 10433, 0.24, 4645},
	{20000, 0.15, 7237, 20088, 14476, 0.14, 2806},
	{20000, 0.20, 9107, 20401, 18215, 0.05, 1093},
	{20000, 0.25, -1, -1, -1, 0, -1},
	{40000, 0.05, 5331, 38907, 10664, 0.36, 14121},
	{40000, 0.10, 9552, 39558, 19106, 0.26, 10226},
	{40000, 0.15, 13437, 40074, 26875, 0.16, 6600},
	{40000, 0.20, 17047, 40517, 34096, 0.08, 3211},
	{40000, 0.25, 20408, 40911, 40818, 0.01, 47},
}

// within reports |a−b| ≤ tol; Table 1 integers should match exactly but a
// ±1 slack is allowed for rounding at the paper's print precision.
func within(a, b, tol int) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestTable1Reproduction(t *testing.T) {
	for _, row := range paperTable1 {
		res, err := Analyze(row.c, row.f)
		if row.t == -1 {
			if !errors.Is(err, ErrInfeasible) {
				t.Errorf("C=%d f=%.2f: want ⊥, got %+v (err %v)", row.c, row.f, res, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("C=%d f=%.2f: unexpected error %v", row.c, row.f, err)
			continue
		}
		if !within(res.T, row.t, 1) {
			t.Errorf("C=%d f=%.2f: t = %d, paper %d", row.c, row.f, res.T, row.t)
		}
		if !within(res.Committee, row.cc, 8) {
			t.Errorf("C=%d f=%.2f: c = %d, paper %d", row.c, row.f, res.Committee, row.cc)
		}
		if !within(res.NoGap, row.cp, 2) {
			t.Errorf("C=%d f=%.2f: c' = %d, paper %d", row.c, row.f, res.NoGap, row.cp)
		}
		if math.Abs(res.Eps-row.eps) > 0.0105 {
			t.Errorf("C=%d f=%.2f: eps = %.4f, paper %.2f", row.c, row.f, res.Eps, row.eps)
		}
		if !within(res.K, row.k, 3) {
			t.Errorf("C=%d f=%.2f: k = %d, paper %d", row.c, row.f, res.K, row.k)
		}
	}
}

func TestGapInequalityHolds(t *testing.T) {
	// The defining property: t ≤ c·(1/2 − ε).
	for _, row := range paperTable1 {
		if row.t == -1 {
			continue
		}
		res, err := Analyze(row.c, row.f)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.T) > float64(res.Committee)*(0.5-res.Eps)+1 {
			t.Errorf("C=%d f=%.2f: t=%d > c(1/2−ε)=%.1f",
				row.c, row.f, res.T, float64(res.Committee)*(0.5-res.Eps))
		}
	}
}

func TestReconstructionFeasible(t *testing.T) {
	// GOD needs n − t ≥ t + 2(k−1) + 1 honest shares (paper §5.4):
	// equivalently k − 1 ≤ n·ε, which the packing factor satisfies.
	for _, row := range paperTable1 {
		if row.t == -1 {
			continue
		}
		res, err := Analyze(row.c, row.f)
		if err != nil {
			t.Fatal(err)
		}
		n, tt, k, _ := res.CommitteeFor(false)
		if n-tt < tt+2*(k-1)+1 {
			t.Errorf("C=%d f=%.2f: honest %d < required %d for k=%d",
				row.c, row.f, n-tt, tt+2*(k-1)+1, k)
		}
	}
}

func TestFailStopHalvesPacking(t *testing.T) {
	res, err := Analyze(20000, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	_, _, kFull, _ := res.CommitteeFor(false)
	n, tt, kHalf, eps := res.CommitteeFor(true)
	if kHalf != kFull/2 {
		t.Errorf("fail-stop k = %d, want %d", kHalf, kFull/2)
	}
	// §5.4: with k ≈ nε/2, reconstruction threshold t+2(k−1)+1 stays below
	// n − t − nε (tolerating nε silent honest roles).
	drop := int(float64(n) * eps)
	if n-tt-drop < tt+2*(kHalf-1)+1 {
		t.Errorf("fail-stop margin violated: honest-after-drop %d < %d",
			n-tt-drop, tt+2*(kHalf-1)+1)
	}
}

func TestCommitteeForClampsK(t *testing.T) {
	r := Result{Committee: 10, T: 4, Eps: 0.01, K: 0}
	if _, _, k, _ := r.CommitteeFor(false); k != 1 {
		t.Errorf("k = %d, want clamped 1", k)
	}
	if _, _, k, _ := r.CommitteeFor(true); k != 1 {
		t.Errorf("fail-stop k = %d, want clamped 1", k)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(0, 0.1); err == nil {
		t.Error("accepted C=0")
	}
	if _, err := Analyze(1000, 0); err == nil {
		t.Error("accepted f=0")
	}
	if _, err := Analyze(1000, 1); err == nil {
		t.Error("accepted f=1")
	}
}

func TestMonotonicity(t *testing.T) {
	// For fixed f, larger C gives a larger (or equal) packing factor.
	prev := -1
	for _, c := range Table1CValues {
		res, err := Analyze(c, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.K <= prev {
			t.Errorf("k not increasing with C: k(%d) = %d after %d", c, res.K, prev)
		}
		prev = res.K
	}
	// For fixed C, larger f gives a smaller gap.
	prevEps := math.Inf(1)
	for _, f := range []float64{0.05, 0.10, 0.15, 0.20} {
		res, err := Analyze(20000, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Eps >= prevEps {
			t.Errorf("eps not decreasing with f: eps(%v) = %v", f, res.Eps)
		}
		prevEps = res.Eps
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 25 {
		t.Fatalf("Table1 has %d rows, want 25", len(rows))
	}
	feasible := 0
	for _, r := range rows {
		if r.Feasible {
			feasible++
		}
	}
	if feasible != 17 {
		t.Errorf("Table1 has %d feasible rows, paper has 17", feasible)
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable(Table1())
	if !strings.Contains(s, "⊥") {
		t.Error("formatted table missing ⊥ rows")
	}
	if !strings.Contains(s, "949") {
		t.Error("formatted table missing first feasible row")
	}
}

func TestResultString(t *testing.T) {
	res, err := Analyze(1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "t=446") {
		t.Errorf("String() = %q", res.String())
	}
}

// TestImprovementClaims verifies the paper's §1.1.2 headline numbers:
// "for 5% global corruptions we can already get 28× improvement by moving
// from committees of size 900 to 1000" (C=1000) and "for 20%, 1000× online
// improvement by moving from ≈18k to ≈20k" (C=20000).
func TestImprovementClaims(t *testing.T) {
	r1, err := Analyze(1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r1.K != 28 {
		t.Errorf("C=1000 f=0.05 improvement factor = %d, paper claims 28", r1.K)
	}
	r2, err := Analyze(20000, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if r2.K < 1000 {
		t.Errorf("C=20000 f=0.20 improvement factor = %d, paper claims >1000", r2.K)
	}
	if r2.NoGap < 18000 || r2.NoGap > 18500 {
		t.Errorf("C=20000 f=0.20 no-gap committee = %d, paper says ≈18k", r2.NoGap)
	}
	if r2.Committee < 20000 || r2.Committee > 20500 {
		t.Errorf("C=20000 f=0.20 gap committee = %d, paper says ≈20k", r2.Committee)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(20000, 0.15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Table1()
	}
}

func TestMinimalC(t *testing.T) {
	// Planning query: gap 0.10 at 15% corruption.
	res, err := MinimalC(0.15, 0.10, 200000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Eps < 0.10 {
		t.Errorf("achieved eps %.4f < target", res.Eps)
	}
	// Minimality: one granularity step below must miss the target.
	if res.C > 100 {
		below, err := Analyze(res.C-100, 0.15)
		if err == nil && below.Eps >= 0.10 {
			t.Errorf("C=%d also achieves the target; %d not minimal", res.C-100, res.C)
		}
	}
	// Cross-check against Table 1: C=10000 at f=0.15 gives eps≈0.10, so
	// the minimal C should be near 10000.
	if res.C < 5000 || res.C > 15000 {
		t.Errorf("minimal C = %d, expected near 10000", res.C)
	}
}

func TestMinimalCInfeasible(t *testing.T) {
	if _, err := MinimalC(0.25, 0.4, 50000, 1000); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if _, err := MinimalC(0.1, 0.1, 50, 100); err == nil {
		t.Error("accepted maxC below granularity")
	}
}

func TestEpsMonotoneInC(t *testing.T) {
	// The binary-search precondition: ε non-decreasing in C at fixed f.
	prev := -1.0
	for _, c := range []int{2000, 4000, 8000, 16000, 32000, 64000} {
		res, err := Analyze(c, 0.15)
		if err != nil {
			continue
		}
		if res.Eps < prev-1e-9 {
			t.Errorf("eps decreased: %v at C=%d after %v", res.Eps, c, prev)
		}
		prev = res.Eps
	}
}
