// Package sortition implements the paper's Section 6: the generalization of
// Benhamouda et al.'s cryptographic-sortition analysis to committees with a
// corruption *gap*, t < c·(1/2 − ε).
//
// Given the sortition parameter C (the expected committee size: each of the
// N parties self-selects with probability C/N) and the global corruption
// ratio f, the analysis computes:
//
//   - ε₁, ε₂ — the smallest slack values satisfying Eq. (2), so that the
//     number of corruptions φ in the sampled committee is below
//     t = fC(1+ε₁) + f(1−f)C(1+ε₂) + 1 except with probability 2^(−k₂);
//   - ε₃ — the smallest slack satisfying the left side of Eq. (6);
//   - δ = (1/2+ε)/(1/2−ε) — the largest gap multiplier the right side of
//     Eq. (6) allows, hence the gap ε itself;
//   - c = t/(1/2−ε) — the high-probability lower bound on committee size;
//   - c′ = 2t+1 — the bound the ε = 0 analysis of [6] yields;
//   - k = ⌊c·ε⌋ — the packing factor, the paper's online improvement.
//
// Security parameters follow the paper: k₁ = 64 (sortition grinding
// attempts), k₂ = k₃ = 128.
package sortition

import (
	"errors"
	"fmt"
	"math"
)

// Security parameters fixed by the paper (Section 6).
const (
	K1 = 64
	K2 = 128
	K3 = 128
)

// ErrInfeasible marks (C, f) combinations where no positive gap exists —
// the ⊥ entries of Table 1.
var ErrInfeasible = errors.New("sortition: no positive gap achievable for these parameters")

// Result is one row of the analysis.
type Result struct {
	// C is the sortition parameter (expected committee size).
	C int
	// F is the global corruption ratio.
	F float64
	// T is the corruption threshold: φ < T w.h.p. (the paper's t).
	T int
	// Committee is the high-probability lower bound c on committee size.
	Committee int
	// NoGap is c′ = 2t+1, the committee bound of the ε = 0 analysis.
	NoGap int
	// Eps is the achieved gap ε with t ≤ c(1/2 − ε).
	Eps float64
	// K is the packing factor ⌊c·ε⌋.
	K int
	// Eps1, Eps2, Eps3 are the internal slack parameters.
	Eps1, Eps2, Eps3 float64
}

// String renders the row in Table 1's column order.
func (r Result) String() string {
	return fmt.Sprintf("C=%d f=%.2f t=%d c=%d c'=%d eps=%.4f k=%d",
		r.C, r.F, r.T, r.Committee, r.NoGap, r.Eps, r.K)
}

// Analyze runs the Section 6 analysis for one (C, f) pair.
func Analyze(c int, f float64) (Result, error) {
	if c < 1 {
		return Result{}, fmt.Errorf("sortition: C = %d must be positive", c)
	}
	if f <= 0 || f >= 1 {
		return Result{}, fmt.Errorf("sortition: f = %v must be in (0, 1)", f)
	}
	ln2 := math.Ln2
	cf := float64(c) * f
	cf1f := float64(c) * f * (1 - f)

	// Eq. (4): smallest ε₁ with C ≥ (k₁+k₂+1)(2+ε₁)·ln2 / (f·ε₁²).
	a1 := float64(K1 + K2 + 1) // 193
	eps1 := 0.5*math.Sqrt((8*a1*cf*ln2+a1*a1*ln2*ln2)/(cf*cf)) + a1*ln2/(2*cf)
	// The closed form above is the positive root of cf·ε² − a₁ln2·ε − 2a₁ln2 = 0,
	// matching the paper's Eq. (4): 8·193 = 1544 and 193² = 37249.

	// Eq. (5): smallest ε₂ with C ≥ (k₂+1)(2+ε₂)·ln2 / (f(1−f)·ε₂²).
	a2 := float64(K2 + 1) // 129; Eq. (5): 8·129 = 1032 and 129² = 16641.
	eps2 := 0.5*math.Sqrt((8*a2*cf1f*ln2+a2*a2*ln2*ln2)/(cf1f*cf1f)) + a2*ln2/(2*cf1f)

	b1 := cf * (1 + eps1)
	b2 := cf1f * (1 + eps2)
	tReal := b1 + b2 + 1

	// Eq. (6) left: smallest ε₃.
	eps3 := math.Sqrt(2 * float64(K3) * ln2 / (float64(c) * (1 - f) * (1 - f)))
	if eps3 >= 1 {
		return Result{}, fmt.Errorf("%w: C=%d f=%v (ε₃ ≥ 1)", ErrInfeasible, c, f)
	}

	// Eq. (6) right: largest δ = (1/2+ε)/(1/2−ε).
	delta := (1 - eps3) * (1 - f) * (1 - f) * float64(c) / (b1 + b2)
	if delta <= 1 {
		return Result{}, fmt.Errorf("%w: C=%d f=%v (δ = %.4f ≤ 1)", ErrInfeasible, c, f, delta)
	}
	eps := (delta - 1) / (2 * (delta + 1))

	t := int(math.Floor(tReal))
	committee := int(math.Round(float64(t) / (0.5 - eps)))
	return Result{
		C:         c,
		F:         f,
		T:         t,
		Committee: committee,
		NoGap:     2*t + 1,
		Eps:       eps,
		K:         int(math.Floor(float64(committee) * eps)),
		Eps1:      eps1,
		Eps2:      eps2,
		Eps3:      eps3,
	}, nil
}

// Table1CValues and Table1FValues are the grids of the paper's Table 1.
var (
	Table1CValues = []int{1000, 5000, 10000, 20000, 40000}
	Table1FValues = []float64{0.05, 0.10, 0.15, 0.20, 0.25}
)

// Row is one Table 1 entry: a Result or an infeasibility marker.
type Row struct {
	C        int
	F        float64
	Feasible bool
	Result   Result
}

// Table1 regenerates every row of the paper's Table 1.
func Table1() []Row {
	var rows []Row
	for _, c := range Table1CValues {
		for _, f := range Table1FValues {
			res, err := Analyze(c, f)
			if err != nil {
				rows = append(rows, Row{C: c, F: f})
				continue
			}
			rows = append(rows, Row{C: c, F: f, Feasible: true, Result: res})
		}
	}
	return rows
}

// FormatTable renders rows in the paper's layout.
func FormatTable(rows []Row) string {
	out := fmt.Sprintf("%-7s %-5s %-7s %-7s %-7s %-7s %-7s\n", "C", "f", "t", "c", "c'", "eps", "k")
	for _, r := range rows {
		if !r.Feasible {
			out += fmt.Sprintf("%-7d %-5.2f %-7s %-7s %-7s %-7s %-7s\n", r.C, r.F, "⊥", "⊥", "⊥", "⊥", "⊥")
			continue
		}
		res := r.Result
		out += fmt.Sprintf("%-7d %-5.2f %-7d %-7d %-7d %-7.2f %-7d\n",
			r.C, r.F, res.T, res.Committee, res.NoGap, res.Eps, res.K)
	}
	return out
}

// CommitteeFor derives MPC protocol parameters from a sortition result:
// the committee size n, the corruption bound t, the gap ε, and the packing
// factor k, optionally halved for fail-stop tolerance (paper §5.4).
func (r Result) CommitteeFor(failStopTolerant bool) (n, t, k int, eps float64) {
	n = r.Committee
	t = r.T
	eps = r.Eps
	k = r.K
	if failStopTolerant {
		k = k / 2
	}
	if k < 1 {
		k = 1
	}
	return n, t, k, eps
}

// MinimalC searches for the smallest sortition parameter C (to the given
// granularity) whose analysis achieves gap at least targetEps at global
// corruption ratio f — the inverse planning query: "I want ε = 0.1 at
// f = 0.15; how large must committees be?". It returns ErrInfeasible when
// even maxC cannot reach the target.
func MinimalC(f, targetEps float64, maxC, granularity int) (Result, error) {
	if granularity < 1 {
		granularity = 100
	}
	if maxC < granularity {
		return Result{}, fmt.Errorf("sortition: maxC %d below granularity %d", maxC, granularity)
	}
	// The achieved ε is monotone in C (more expected members ⇒ tighter
	// concentration ⇒ bigger δ), so binary search applies.
	achieves := func(c int) bool {
		res, err := Analyze(c, f)
		return err == nil && res.Eps >= targetEps
	}
	lo, hi := 1, maxC/granularity
	if !achieves(hi * granularity) {
		return Result{}, fmt.Errorf("%w: eps=%.3f at f=%.2f needs C > %d", ErrInfeasible, targetEps, f, maxC)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if achieves(mid * granularity) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return Analyze(lo*granularity, f)
}
