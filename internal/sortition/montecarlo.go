package sortition

import (
	"fmt"
	"math"
	"math/rand"
)

// Monte Carlo validation of the Section 6 tail bounds. Cryptographic
// sortition includes each of the N parties independently with probability
// C/N; with f·N corrupt parties, the number of corrupt (resp. honest)
// committee members is Binomial(fN, C/N) ≈ Poisson(fC) (resp.
// Poisson((1−f)C)) in the YOSO regime C ≪ N. The analysis guarantees,
// except with probability 2^−128, that the sampled committee has fewer
// than t corruptions and size at least c = t/(1/2−ε); simulation cannot
// observe 2^−128 events, but it can confirm that typical committees sit
// far inside the bounds — which is exactly the safety margin the analysis
// buys.

// TrialStats summarizes a Monte Carlo run.
type TrialStats struct {
	// Trials is the number of sampled committees.
	Trials int
	// ViolationsT counts committees with ≥ t corruptions.
	ViolationsT int
	// ViolationsGap counts committees whose honest count fell below
	// δ·t with δ = (1/2+ε)/(1/2−ε) — the guarantee Eq. (6) bounds.
	ViolationsGap int
	// ViolationsRecon counts committees whose honest count fell below
	// the protocol's reconstruction threshold t + 2(k−1) + 1.
	ViolationsRecon int
	// MaxCorrupt is the largest observed corruption count.
	MaxCorrupt int
	// MeanCorrupt and MeanSize are sample means.
	MeanCorrupt, MeanSize float64
	// MinSize is the smallest observed committee.
	MinSize int
	// MarginT = t / MaxCorrupt: how far the worst observed committee sat
	// below the threshold (> 1 means never close).
	MarginT float64
}

// Simulate samples `trials` committees for the analysis row r and checks
// the two guarantees. The generator is seeded for reproducibility.
func (r Result) Simulate(trials int, seed int64) TrialStats {
	rng := rand.New(rand.NewSource(seed))
	corruptMean := r.F * float64(r.C)
	honestMean := (1 - r.F) * float64(r.C)
	delta := (0.5 + r.Eps) / (0.5 - r.Eps)
	reconThreshold := r.T + 2*(r.K-1) + 1
	st := TrialStats{Trials: trials, MinSize: math.MaxInt}
	var sumCorrupt, sumSize float64
	for i := 0; i < trials; i++ {
		corrupt := poisson(rng, corruptMean)
		honest := poisson(rng, honestMean)
		size := corrupt + honest
		sumCorrupt += float64(corrupt)
		sumSize += float64(size)
		if corrupt > st.MaxCorrupt {
			st.MaxCorrupt = corrupt
		}
		if size < st.MinSize {
			st.MinSize = size
		}
		if corrupt >= r.T {
			st.ViolationsT++
		}
		if float64(honest) < delta*float64(r.T) {
			st.ViolationsGap++
		}
		if honest < reconThreshold {
			st.ViolationsRecon++
		}
	}
	st.MeanCorrupt = sumCorrupt / float64(trials)
	st.MeanSize = sumSize / float64(trials)
	if st.MaxCorrupt > 0 {
		st.MarginT = float64(r.T) / float64(st.MaxCorrupt)
	}
	return st
}

// String renders the stats.
func (s TrialStats) String() string {
	return fmt.Sprintf("trials=%d violations(t)=%d violations(gap)=%d violations(recon)=%d maxCorrupt=%d meanCorrupt=%.1f meanSize=%.1f minSize=%d margin=%.2f",
		s.Trials, s.ViolationsT, s.ViolationsGap, s.ViolationsRecon, s.MaxCorrupt, s.MeanCorrupt, s.MeanSize, s.MinSize, s.MarginT)
}

// poisson samples Poisson(mean) — Knuth's product method for small means,
// and the PTRS transformed-rejection sampler (Hörmann 1993) for large
// ones, which stays O(1) for the committee-scale means (up to ~40 000)
// this package needs.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		return poissonKnuth(rng, mean)
	}
	return poissonPTRS(rng, mean)
}

func poissonKnuth(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm.
func poissonPTRS(rng *rand.Rand, mu float64) int {
	b := 0.931 + 2.53*math.Sqrt(mu)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mu + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mu)-mu-lg {
			return int(k)
		}
	}
}
