package yoso

import (
	"errors"
	"fmt"
	"sync"

	"yosompc/internal/comm"
	"yosompc/internal/transport"
)

// Broadcast implements the ideal broadcast functionality F_BC of the
// paper's Appendix C (after Gentry et al.): a round-indexed map
// y : N × Role → Msg. On (Send, R, x) in round r the functionality stores
// y(r, R) = x, leaks (R, x) to the (rushing) adversary, and delivers the
// Spoke token to R; on (Read, R, r') with r' < r it returns the full row
// y(r', ·).
//
// The MPC drivers in internal/core and internal/baseline use the raw
// transport.Board directly (their committee scheduler subsumes rounds);
// Broadcast exists as the faithful functionality for protocol-level
// reasoning and is exercised by the test suite and the round-structure
// assertions.
type Broadcast struct {
	mu    sync.Mutex
	round int
	// rows[r][roleName] is y(r, roleName).
	rows []map[string]any
	// board receives a metered copy of every send.
	board *transport.Board
	phase comm.Phase
	// leak receives (role, message) in send order — the rushing
	// adversary's view. Nil disables leakage recording.
	leak func(role string, msg any)
}

// Errors returned by the functionality.
var (
	ErrFutureRound = errors.New("yoso: cannot read the current or a future round")
	ErrDoubleSend  = errors.New("yoso: role already sent in this protocol")
)

// NewBroadcast creates the functionality at round 1, posting metered
// copies to board (nil allocates a private board).
func NewBroadcast(board *transport.Board, phase comm.Phase) *Broadcast {
	if board == nil {
		board = transport.NewBoard(nil)
	}
	return &Broadcast{
		round: 1,
		rows:  []map[string]any{nil, {}}, // rows[0] unused; rows[1] = round 1
		board: board,
		phase: phase,
	}
}

// SetLeak installs the adversary's rushing view.
func (b *Broadcast) SetLeak(leak func(role string, msg any)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.leak = leak
}

// Round returns the current round number.
func (b *Broadcast) Round() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.round
}

// NextRound advances the synchronous clock.
func (b *Broadcast) NextRound() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.round++
	b.rows = append(b.rows, map[string]any{})
}

// Send stores role's message for the current round, leaks it, meters its
// encoded bytes, and kills the role (Spoke). A role may send exactly once
// across the whole execution — the YOSO constraint, enforced here
// independently of the Role.Post guard.
func (b *Broadcast) Send(role *Role, wire []byte, msg any) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if role.HasSpoken() {
		return fmt.Errorf("%w: %s", ErrDoubleSend, role.Name())
	}
	for r := 1; r <= b.round; r++ {
		if _, dup := b.rows[r][role.Name()]; dup {
			return fmt.Errorf("%w: %s", ErrDoubleSend, role.Name())
		}
	}
	if role.Behavior != FailStop {
		b.rows[b.round][role.Name()] = msg
		//yosolint:blocking the row write and the board post must commit atomically under b.mu or readers observe rows the board never saw
		b.board.Post(role.Name(), b.phase, comm.CatMu, wire, msg)
		if b.leak != nil {
			b.leak(role.Name(), msg)
		}
	}
	// Spoke is delivered even to crashing roles: the machine is done.
	role.Spoke()
	return nil
}

// Read returns the row y(r, ·) for a past round r < current round. The
// returned map is a copy.
func (b *Broadcast) Read(r int) (map[string]any, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if r < 1 || r >= b.round {
		return nil, fmt.Errorf("%w: round %d (current %d)", ErrFutureRound, r, b.round)
	}
	out := make(map[string]any, len(b.rows[r]))
	for k, v := range b.rows[r] {
		out[k] = v
	}
	return out, nil
}
