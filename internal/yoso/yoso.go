// Package yoso implements the abstract-YOSO execution substrate: stateless
// roles grouped into committees, a role-assignment functionality minting
// per-role keys, Spoke-token enforcement (each role broadcasts exactly
// once), and a configurable adversary corrupting a random fraction of each
// committee.
//
// The MPC protocols in internal/core and internal/baseline are written
// against this substrate: they never address machines, only roles, and
// every role's entire contribution is the single message it posts to the
// bulletin board before being killed (its state erased).
package yoso

import (
	"errors"
	"fmt"
	"sync"

	"yosompc/internal/comm"
	"yosompc/internal/pke"
	"yosompc/internal/transport"
)

// Behavior classifies a role's corruption status.
type Behavior int

// Corruption statuses. Honest roles follow the protocol; Leaky roles are
// honest-but-curious (they follow the protocol but the adversary reads
// their state — the paper's Leaky set); Malicious roles are actively
// corrupt (arbitrary deviation, rushing); FailStop roles are honest but
// crash before speaking (paper Remark 1 / §5.4).
const (
	Honest Behavior = iota
	Leaky
	Malicious
	FailStop
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Leaky:
		return "leaky"
	case Malicious:
		return "malicious"
	case FailStop:
		return "fail-stop"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// FollowsProtocol reports whether a role with this behavior executes the
// honest code path (Honest and Leaky do; the leak is a property of the
// adversary's view, not of the role's actions).
func (b Behavior) FollowsProtocol() bool { return b == Honest || b == Leaky }

// ErrAlreadySpoke is returned (and then escalated to a panic, because it is
// a protocol bug, not a runtime condition) when a role attempts a second
// broadcast.
var ErrAlreadySpoke = errors.New("yoso: role already spoke")

// Role is one stateless protocol role. A role accumulates its outgoing
// message through Post calls within a single logical broadcast window and
// is killed by Spoke.
type Role struct {
	// Committee is the committee name, e.g. "off1" or "on2".
	Committee string
	// Index is the 1-based slot within the committee.
	Index int
	// Behavior is the role's corruption status.
	Behavior Behavior

	mu     sync.Mutex
	spoke  bool
	posted bool
	board  *transport.Board

	// keys minted by the role assignment; nil until assigned.
	pub pke.PublicKey
	sec pke.SecretKey
}

// Name returns the canonical "committee/index" name.
func (r *Role) Name() string { return fmt.Sprintf("%s/%d", r.Committee, r.Index) }

// PublicKey returns the role's assigned public key.
func (r *Role) PublicKey() pke.PublicKey { return r.pub }

// SecretKey returns the role's assigned secret key. Reading the secret key
// of a role that has already spoken panics: the machine erased it.
func (r *Role) SecretKey() pke.SecretKey {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spoke {
		panic(fmt.Sprintf("yoso: %s: secret state erased after Spoke", r.Name()))
	}
	return r.sec
}

// Post publishes one message of the role's single broadcast, carrying the
// message's binary encoding (the board meters len(wire)). A role may Post
// several board entries within its speaking window (they form one logical
// message), but any Post after Spoke is a protocol violation.
func (r *Role) Post(phase comm.Phase, cat comm.Category, wire []byte, payload any) {
	r.mu.Lock()
	if r.spoke {
		r.mu.Unlock()
		panic(fmt.Errorf("%w: %s posting in phase %s", ErrAlreadySpoke, r.Name(), phase))
	}
	if r.Behavior == FailStop {
		// A crashed role's messages never reach the board.
		r.mu.Unlock()
		return
	}
	r.posted = true
	// The speak-once decision is now recorded; release the lock before
	// the board call, which may block on a remote transport.
	r.mu.Unlock()
	r.board.Post(r.Name(), phase, cat, wire, payload)
}

// Spoke delivers the Spoke token: the role is killed and its state erased.
func (r *Role) Spoke() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spoke = true
	r.sec = nil
}

// HasSpoken reports whether the role has been killed.
func (r *Role) HasSpoken() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spoke
}

// Committee is an ordered set of n roles playing one protocol step.
type Committee struct {
	// Name is the committee identifier.
	Name string
	// Roles are the member roles, index i at Roles[i-1].
	Roles []*Role
}

// N returns the committee size.
func (c *Committee) N() int { return len(c.Roles) }

// Role returns the 1-based member i.
func (c *Committee) Role(i int) *Role { return c.Roles[i-1] }

// Honest returns the 1-based indices of protocol-following members
// (Honest and Leaky).
func (c *Committee) Honest() []int {
	var out []int
	for i, r := range c.Roles {
		if r.Behavior.FollowsProtocol() {
			out = append(out, i+1)
		}
	}
	return out
}

// CountBehavior returns how many members have the given behavior.
func (c *Committee) CountBehavior(b Behavior) int {
	n := 0
	for _, r := range c.Roles {
		if r.Behavior == b {
			n++
		}
	}
	return n
}

// SpeakAll delivers the Spoke token to every member — the committee's step
// is over and all its machines erase their state.
func (c *Committee) SpeakAll() {
	for _, r := range c.Roles {
		r.Spoke()
	}
}
