package yoso

import (
	"testing"

	"yosompc/internal/comm"
	"yosompc/internal/pke"
	"yosompc/internal/transport"
)

func newTestAssignment(adv *Adversary) (*Assignment, *transport.Board) {
	board := transport.NewBoard(nil)
	return NewAssignment(board, pke.NewSim(), adv), board
}

func TestFormCommittee(t *testing.T) {
	a, board := newTestAssignment(nil)
	c, err := a.FormCommittee("on1", 5, comm.PhaseOnline)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	for i := 1; i <= 5; i++ {
		r := c.Role(i)
		if r.Index != i || r.Committee != "on1" {
			t.Errorf("role %d misnamed: %s", i, r.Name())
		}
		if r.PublicKey() == nil || r.SecretKey() == nil {
			t.Errorf("role %d missing keys", i)
		}
		if r.Behavior != Honest {
			t.Errorf("role %d not honest under empty adversary", i)
		}
	}
	// Key publication is metered.
	if board.Report().ByPhase[comm.PhaseOnline] == 0 {
		t.Error("role keys not metered")
	}
	if _, err := a.FormCommittee("bad", 0, comm.PhaseOnline); err == nil {
		t.Error("accepted empty committee")
	}
}

func TestFormCommitteePublishesManifest(t *testing.T) {
	a, board := newTestAssignment(nil)
	a.Quorum = 3
	if _, err := a.FormCommittee("offB1", 5, comm.PhaseOffline); err != nil {
		t.Fatal(err)
	}
	first, err := board.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if first.From != "role-assignment" || first.Phase != comm.PhaseSystem || first.Category != comm.CatManifest {
		t.Fatalf("first posting = %+v, want system-phase manifest", first)
	}
	var man transport.Manifest
	if err := man.UnmarshalBinary(first.Bytes); err != nil {
		t.Fatal(err)
	}
	if man.Committee != "offB1" || man.Phase != "offline" || man.N != 5 || man.Quorum != 3 {
		t.Errorf("manifest = %+v", man)
	}
	// Manifest bytes are metered outside the protocol phases, so the
	// cost-model comparisons never see monitoring overhead.
	rep := board.Report()
	if rep.ByPhase[comm.PhaseSystem] == 0 {
		t.Error("manifest not metered under the system phase")
	}
	// A quorum above n (or 0) clamps to n: every member required.
	a.Quorum = 99
	if _, err := a.FormCommittee("tiny", 2, comm.PhaseOffline); err != nil {
		t.Fatal(err)
	}
	entry, _ := board.Get(board.Len() - 3) // manifest precedes the 2 role keys
	if err := man.UnmarshalBinary(entry.Bytes); err != nil {
		t.Fatal(err)
	}
	if man.Committee != "tiny" || man.Quorum != 2 {
		t.Errorf("clamped manifest = %+v", man)
	}
}

func TestSpokeEnforcement(t *testing.T) {
	a, board := newTestAssignment(nil)
	c, err := a.FormCommittee("c", 2, comm.PhaseOffline)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Role(1)
	r.Post(comm.PhaseOffline, comm.CatLambda, make([]byte, 10), "msg")
	if board.Len() != 4 { // 1 manifest + 2 role keys + 1 message
		t.Errorf("board has %d postings", board.Len())
	}
	r.Spoke()
	if !r.HasSpoken() {
		t.Error("HasSpoken false after Spoke")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic when posting after Spoke")
		}
	}()
	r.Post(comm.PhaseOffline, comm.CatLambda, make([]byte, 10), "again")
}

func TestSecretErasedAfterSpoke(t *testing.T) {
	a, _ := newTestAssignment(nil)
	c, err := a.FormCommittee("c", 1, comm.PhaseOffline)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Role(1)
	r.Spoke()
	defer func() {
		if recover() == nil {
			t.Error("no panic reading erased secret key")
		}
	}()
	_ = r.SecretKey()
}

func TestFailStopPostsNothing(t *testing.T) {
	a, board := newTestAssignment(NewAdversary(0, 3, 7))
	c, err := a.FormCommittee("c", 3, comm.PhaseOnline)
	if err != nil {
		t.Fatal(err)
	}
	before := board.Len()
	for i := 1; i <= 3; i++ {
		c.Role(i).Post(comm.PhaseOnline, comm.CatMu, make([]byte, 100), "x")
	}
	if board.Len() != before {
		t.Errorf("fail-stop roles posted %d messages", board.Len()-before)
	}
}

func TestAdversarySampleCounts(t *testing.T) {
	adv := NewAdversary(3, 2, 99)
	for trial := 0; trial < 10; trial++ {
		bs := adv.Sample(10)
		var m, f, h int
		for _, b := range bs {
			switch b {
			case Malicious:
				m++
			case FailStop:
				f++
			default:
				h++
			}
		}
		if m != 3 || f != 2 || h != 5 {
			t.Fatalf("sample counts m=%d f=%d h=%d", m, f, h)
		}
	}
}

func TestAdversarySampleClamps(t *testing.T) {
	adv := NewAdversary(5, 5, 1)
	bs := adv.Sample(6)
	var m, f int
	for _, b := range bs {
		switch b {
		case Malicious:
			m++
		case FailStop:
			f++
		}
	}
	if m != 5 || f != 1 {
		t.Errorf("clamping failed: m=%d f=%d", m, f)
	}
}

func TestAdversaryReproducible(t *testing.T) {
	a1 := NewAdversary(2, 1, 42)
	a2 := NewAdversary(2, 1, 42)
	for i := 0; i < 5; i++ {
		b1 := a1.Sample(8)
		b2 := a2.Sample(8)
		for j := range b1 {
			if b1[j] != b2[j] {
				t.Fatal("same seed produced different patterns")
			}
		}
	}
}

func TestAdversaryPositionsVary(t *testing.T) {
	adv := NewAdversary(1, 0, 5)
	positions := map[int]bool{}
	for i := 0; i < 50; i++ {
		for j, b := range adv.Sample(10) {
			if b == Malicious {
				positions[j] = true
			}
		}
	}
	if len(positions) < 3 {
		t.Errorf("malicious position nearly constant: %v", positions)
	}
}

func TestCommitteeHelpers(t *testing.T) {
	a, _ := newTestAssignment(NewAdversary(2, 1, 3))
	c, err := a.FormCommittee("c", 6, comm.PhaseOnline)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CountBehavior(Malicious); got != 2 {
		t.Errorf("malicious = %d", got)
	}
	if got := c.CountBehavior(FailStop); got != 1 {
		t.Errorf("fail-stop = %d", got)
	}
	if got := len(c.Honest()); got != 3 {
		t.Errorf("honest = %d", got)
	}
	c.SpeakAll()
	for i := 1; i <= 6; i++ {
		if !c.Role(i).HasSpoken() {
			t.Errorf("role %d alive after SpeakAll", i)
		}
	}
}

func TestBehaviorString(t *testing.T) {
	for _, b := range []Behavior{Honest, Malicious, FailStop, Behavior(9)} {
		if b.String() == "" {
			t.Errorf("empty string for %d", int(b))
		}
	}
}

func TestBoardPostingOrder(t *testing.T) {
	board := transport.NewBoard(nil)
	s1 := board.Post("a", comm.PhaseSetup, comm.CatCRS, []byte{1}, "one")
	s2 := board.Post("b", comm.PhaseSetup, comm.CatCRS, []byte{2, 2}, "two")
	if s1 != 0 || s2 != 1 {
		t.Errorf("sequence numbers %d, %d", s1, s2)
	}
	p, err := board.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Payload != "two" || p.From != "b" {
		t.Errorf("posting = %+v", p)
	}
	if _, err := board.Get(5); err == nil {
		t.Error("Get(5) succeeded on 2-entry board")
	}
	if len(board.All()) != 2 {
		t.Error("All() wrong length")
	}
}

func TestMeterAttribution(t *testing.T) {
	m := &comm.Meter{}
	m.Add(comm.PhaseOffline, comm.CatBeaver, 100)
	m.Add(comm.PhaseOffline, comm.CatLambda, 50)
	m.Add(comm.PhaseOnline, comm.CatMu, 25)
	r := m.Report()
	if r.Total != 175 || r.Postings != 3 {
		t.Errorf("total=%d postings=%d", r.Total, r.Postings)
	}
	if r.Phase(comm.PhaseOffline) != 150 {
		t.Errorf("offline = %d", r.Phase(comm.PhaseOffline))
	}
	if r.ByCat[comm.PhaseOnline][comm.CatMu] != 25 {
		t.Errorf("online/mu = %d", r.ByCat[comm.PhaseOnline][comm.CatMu])
	}
	if got := r.PerGate(comm.PhaseOnline, 5); got != 5.0 {
		t.Errorf("PerGate = %v", got)
	}
	if got := r.PerGate(comm.PhaseOnline, 0); got != 0 {
		t.Errorf("PerGate(0 gates) = %v", got)
	}
	if r.String() == "" {
		t.Error("empty report string")
	}
	m.Reset()
	if m.Report().Total != 0 {
		t.Error("Reset did not zero meter")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		100:     "100 B",
		2048:    "2.00 KiB",
		1 << 21: "2.00 MiB",
		1 << 31: "2.00 GiB",
	}
	for n, want := range cases {
		if got := comm.HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRatio(t *testing.T) {
	if comm.Ratio(10, 2) != 5 {
		t.Error("Ratio(10,2) != 5")
	}
	if comm.Ratio(10, 0) != 0 {
		t.Error("Ratio(10,0) != 0")
	}
}

func TestLeakyBehavior(t *testing.T) {
	adv := &Adversary{Malicious: 1, FailStops: 1, Leaky: 2, Seed: 61}
	bs := adv.Sample(8)
	counts := map[Behavior]int{}
	for _, b := range bs {
		counts[b]++
	}
	if counts[Malicious] != 1 || counts[FailStop] != 1 || counts[Leaky] != 2 || counts[Honest] != 4 {
		t.Errorf("counts = %v", counts)
	}
	if !Leaky.FollowsProtocol() || !Honest.FollowsProtocol() {
		t.Error("protocol-following behaviors misclassified")
	}
	if Malicious.FollowsProtocol() || FailStop.FollowsProtocol() {
		t.Error("deviating behaviors misclassified")
	}
}
