package yoso

import (
	"fmt"
	"math/rand" //yosolint:simulation adversary corruption sampling only; role keys come from pke.Scheme/crypto-rand

	"yosompc/internal/comm"
	"yosompc/internal/pke"
	"yosompc/internal/transport"
)

// Assignment is the role-assignment functionality: it samples each
// committee's corruption pattern (the adversary corrupts a uniformly random
// fraction of computation roles — Definition 1), mints per-role keypairs,
// and publishes the public keys on the board when the committee's phase
// begins. The probabilistic guarantees a real sortition layer provides for
// these corruption patterns are analysed in internal/sortition.
type Assignment struct {
	board *transport.Board
	pke   pke.Scheme
	adv   *Adversary

	// Quorum is the speaker count reconstruction needs from each formed
	// committee — the protocol driver sets it to its threshold (packed:
	// t+2(k−1)+1, baseline: t+1) before forming committees. It is
	// published in each committee's progress manifest so a board observer
	// can judge fail-stop margins; 0 means every member is required.
	Quorum int
}

// NewAssignment builds the functionality.
func NewAssignment(board *transport.Board, scheme pke.Scheme, adv *Adversary) *Assignment {
	if adv == nil {
		adv = &Adversary{}
	}
	return &Assignment{board: board, pke: scheme, adv: adv}
}

// FormCommittee samples and equips a fresh committee of n roles. Publishing
// the n role public keys is metered in the given phase. Before minting any
// key the committee's progress manifest (expected speakers and quorum) goes
// on the board under the system phase, so monitors derive expected-speaker
// sets from board contents alone and the manifest bytes never perturb the
// protocol phases' cost accounting.
func (a *Assignment) FormCommittee(name string, n int, phase comm.Phase) (*Committee, error) {
	if n < 1 {
		return nil, fmt.Errorf("yoso: committee %q size %d", name, n)
	}
	quorum := a.Quorum
	if quorum <= 0 || quorum > n {
		quorum = n
	}
	man := transport.Manifest{Committee: name, Phase: string(phase), N: n, Quorum: quorum}
	manWire, err := man.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("yoso: encoding manifest for %q: %w", name, err)
	}
	a.board.Post("role-assignment", comm.PhaseSystem, comm.CatManifest, manWire, man)
	behaviors := a.adv.Sample(n)
	c := &Committee{Name: name, Roles: make([]*Role, n)}
	for i := 1; i <= n; i++ {
		pub, sec, err := a.pke.GenerateKey()
		if err != nil {
			return nil, fmt.Errorf("yoso: minting role key for %s/%d: %w", name, i, err)
		}
		c.Roles[i-1] = &Role{
			Committee: name,
			Index:     i,
			Behavior:  behaviors[i-1],
			board:     a.board,
			pub:       pub,
			sec:       sec,
		}
		a.board.Post("role-assignment", phase, comm.CatRoleKeys, pub.Bytes(), pub)
	}
	return c, nil
}

// NewKnownParty creates a known-machine role (a client holding inputs or
// receiving outputs). Known parties are subject to chosen corruption in the
// model; this driver keeps them honest, and the behavior can be overridden
// by the caller afterwards.
func (a *Assignment) NewKnownParty(name string, index int, phase comm.Phase) (*Role, error) {
	pub, sec, err := a.pke.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("yoso: minting key for known party %s/%d: %w", name, index, err)
	}
	r := &Role{
		Committee: name,
		Index:     index,
		Behavior:  Honest,
		board:     a.board,
		pub:       pub,
		sec:       sec,
	}
	a.board.Post("role-assignment", phase, comm.CatRoleKeys, pub.Bytes(), pub)
	return r, nil
}

// Adversary samples corruption patterns. The zero value is the empty
// (all-honest) adversary.
type Adversary struct {
	// Malicious is the number of actively corrupted roles per committee.
	Malicious int
	// FailStops is the number of honest roles that crash per committee.
	FailStops int
	// Leaky is the number of honest-but-curious roles per committee:
	// they execute the protocol faithfully, but their internal state
	// counts toward the adversary's view (and hence toward t).
	Leaky int
	// Seed makes corruption patterns reproducible; 0 uses a fixed seed.
	Seed int64
	// rng drives which roles the simulated adversary corrupts. This is
	// environment modelling (Definition 1), not protocol randomness: a
	// deterministic, seedable source is required so experiments reproduce,
	// and no honest-party secret ever depends on it.
	rng *rand.Rand //yosolint:simulation deterministic adversary model, reproducible by Seed
}

// NewAdversary builds an adversary corrupting `malicious` roles actively
// and crashing `failStops` roles in every committee it touches.
func NewAdversary(malicious, failStops int, seed int64) *Adversary {
	return &Adversary{Malicious: malicious, FailStops: failStops, Seed: seed}
}

// Sample returns a behavior vector for a committee of n roles, with
// exactly min(Malicious, n) malicious, then fail-stop, then leaky members
// at uniformly random positions.
func (a *Adversary) Sample(n int) []Behavior {
	if a.rng == nil {
		seed := a.Seed
		if seed == 0 {
			seed = 0x59050 // arbitrary fixed default for reproducibility
		}
		a.rng = rand.New(rand.NewSource(seed)) //yosolint:simulation adversary corruption pattern, not secret randomness
	}
	out := make([]Behavior, n)
	perm := a.rng.Perm(n)
	m := a.Malicious
	if m > n {
		m = n
	}
	f := a.FailStops
	if m+f > n {
		f = n - m
	}
	l := a.Leaky
	if m+f+l > n {
		l = n - m - f
	}
	for _, i := range perm[:m] {
		out[i] = Malicious
	}
	for _, i := range perm[m : m+f] {
		out[i] = FailStop
	}
	for _, i := range perm[m+f : m+f+l] {
		out[i] = Leaky
	}
	return out
}
