package yoso

import (
	"errors"
	"testing"

	"yosompc/internal/comm"
	"yosompc/internal/pke"
	"yosompc/internal/transport"
)

func newBCWithCommittee(t *testing.T, n int, adv *Adversary) (*Broadcast, *Committee, *transport.Board) {
	t.Helper()
	board := transport.NewBoard(nil)
	assign := NewAssignment(board, pke.NewSim(), adv)
	c, err := assign.FormCommittee("bc", n, comm.PhaseOnline)
	if err != nil {
		t.Fatal(err)
	}
	return NewBroadcast(board, comm.PhaseOnline), c, board
}

func TestBroadcastSendRead(t *testing.T) {
	bc, c, _ := newBCWithCommittee(t, 3, nil)
	for i := 1; i <= 3; i++ {
		if err := bc.Send(c.Role(i), make([]byte, 8), i*100); err != nil {
			t.Fatal(err)
		}
	}
	bc.NextRound()
	row, err := bc.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 3 || row["bc/2"] != 200 {
		t.Errorf("round 1 row = %v", row)
	}
}

func TestBroadcastCannotReadCurrentRound(t *testing.T) {
	bc, c, _ := newBCWithCommittee(t, 1, nil)
	if err := bc.Send(c.Role(1), []byte{1}, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := bc.Read(1); !errors.Is(err, ErrFutureRound) {
		t.Errorf("read of current round: err = %v", err)
	}
	if _, err := bc.Read(0); !errors.Is(err, ErrFutureRound) {
		t.Errorf("read of round 0: err = %v", err)
	}
}

func TestBroadcastSpokeOnSend(t *testing.T) {
	bc, c, _ := newBCWithCommittee(t, 1, nil)
	r := c.Role(1)
	if err := bc.Send(r, []byte{1}, "once"); err != nil {
		t.Fatal(err)
	}
	if !r.HasSpoken() {
		t.Error("role alive after Send")
	}
	if err := bc.Send(r, []byte{1}, "twice"); !errors.Is(err, ErrDoubleSend) {
		t.Errorf("second send: err = %v", err)
	}
}

func TestBroadcastFailStopSilent(t *testing.T) {
	bc, c, _ := newBCWithCommittee(t, 2, NewAdversary(0, 2, 31))
	if err := bc.Send(c.Role(1), make([]byte, 8), "lost"); err != nil {
		t.Fatal(err)
	}
	bc.NextRound()
	row, err := bc.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 0 {
		t.Errorf("crashed role's message reached the board: %v", row)
	}
	// The crashed role is still killed.
	if !c.Role(1).HasSpoken() {
		t.Error("crashed role not Spoke'd")
	}
}

func TestBroadcastRushingLeak(t *testing.T) {
	bc, c, _ := newBCWithCommittee(t, 2, nil)
	var leaked []string
	bc.SetLeak(func(role string, msg any) {
		leaked = append(leaked, role)
	})
	if err := bc.Send(c.Role(1), []byte{1}, "a"); err != nil {
		t.Fatal(err)
	}
	if err := bc.Send(c.Role(2), []byte{2}, "b"); err != nil {
		t.Fatal(err)
	}
	// The adversary sees honest messages as they are sent, within the
	// round (rushing), before any NextRound.
	if len(leaked) != 2 || leaked[0] != "bc/1" {
		t.Errorf("leak order = %v", leaked)
	}
}

func TestBroadcastMetersBytes(t *testing.T) {
	bc, c, board := newBCWithCommittee(t, 1, nil)
	before := board.Report().Total
	if err := bc.Send(c.Role(1), make([]byte, 123), "payload"); err != nil {
		t.Fatal(err)
	}
	if got := board.Report().Total - before; got != 123 {
		t.Errorf("metered %d bytes, want 123", got)
	}
}

func TestBroadcastRowsIsolated(t *testing.T) {
	bc, c, _ := newBCWithCommittee(t, 2, nil)
	if err := bc.Send(c.Role(1), []byte{1}, "r1"); err != nil {
		t.Fatal(err)
	}
	bc.NextRound()
	if err := bc.Send(c.Role(2), []byte{2}, "r2"); err != nil {
		t.Fatal(err)
	}
	bc.NextRound()
	row1, err := bc.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	row2, err := bc.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(row1) != 1 || len(row2) != 1 || row1["bc/1"] != "r1" || row2["bc/2"] != "r2" {
		t.Errorf("rows = %v / %v", row1, row2)
	}
	// Mutating a returned row must not affect the functionality.
	row1["bc/1"] = "tampered"
	again, err := bc.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if again["bc/1"] != "r1" {
		t.Error("Read returns aliased state")
	}
	if bc.Round() != 3 {
		t.Errorf("round = %d", bc.Round())
	}
}
