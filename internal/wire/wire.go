// Package wire holds the shared primitives of the repo's binary message
// encodings: the format version byte, bounds-checked append/consume helpers
// for the length-prefixed field layouts, and adapters between the
// encoding.BinaryMarshaler/BinaryUnmarshaler pair and io.WriterTo /
// io.ReaderFrom streams.
//
// Every multiparty message type (packed share vectors, field-element
// batches, TE ciphertexts and partial decryptions, NIZK proofs, PKE
// envelopes, transport entries) builds its codec from these helpers so the
// byte counts the board meters are the byte counts that actually cross a
// wire. docs/WIRE.md documents the per-type layouts.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the wire-format version byte carried by framed messages
// (transport entries and requests). Codecs with fixed layouts (proofs,
// ciphertexts) omit it; the enclosing frame versions them. Version 2
// added the trace-context field to board entries and post frames.
const Version byte = 2

// MaxLen bounds any single length-prefixed field (1 GiB): a decoder reading
// attacker-supplied bytes must never allocate unbounded memory from a
// forged length prefix.
const MaxLen = 1 << 30

// ErrMalformed is the root error of every decode failure in this package.
var ErrMalformed = errors.New("wire: malformed message")

// All integers are big-endian, matching the rest of the repo's encodings.

// AppendUint32 appends a big-endian uint32.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// Uint32 consumes a big-endian uint32 and returns the remainder.
func Uint32(data []byte) (uint32, []byte, error) {
	if len(data) < 4 {
		return 0, nil, fmt.Errorf("%w: truncated uint32", ErrMalformed)
	}
	return binary.BigEndian.Uint32(data), data[4:], nil
}

// AppendUint64 appends a big-endian uint64.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// Uint64 consumes a big-endian uint64 and returns the remainder.
func Uint64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated uint64", ErrMalformed)
	}
	return binary.BigEndian.Uint64(data), data[8:], nil
}

// AppendBytes32 appends a u32 length prefix followed by b.
func AppendBytes32(dst, b []byte) []byte {
	dst = AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// Bytes32 consumes a u32-length-prefixed byte field and returns a copy of
// the payload plus the remainder.
func Bytes32(data []byte) ([]byte, []byte, error) {
	n, rest, err := Uint32(data)
	if err != nil {
		return nil, nil, err
	}
	if n > MaxLen {
		return nil, nil, fmt.Errorf("%w: field length %d exceeds limit", ErrMalformed, n)
	}
	if len(rest) < int(n) {
		return nil, nil, fmt.Errorf("%w: field needs %d bytes, have %d", ErrMalformed, n, len(rest))
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}

// AppendString8 appends a u8 length prefix followed by s. Strings longer
// than 255 bytes are a caller bug (role names, phases and categories are
// short by construction).
func AppendString8(dst []byte, s string) []byte {
	if len(s) > 255 {
		panic(fmt.Sprintf("wire: string field %q exceeds 255 bytes", s[:32]))
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

// String8 consumes a u8-length-prefixed string field.
func String8(data []byte) (string, []byte, error) {
	if len(data) < 1 {
		return "", nil, fmt.Errorf("%w: truncated string length", ErrMalformed)
	}
	n := int(data[0])
	if len(data) < 1+n {
		return "", nil, fmt.Errorf("%w: string needs %d bytes, have %d", ErrMalformed, n, len(data)-1)
	}
	return string(data[1 : 1+n]), data[1+n:], nil
}

// WriteBinary writes m's binary encoding to w — the io.WriterTo body shared
// by the codec types.
func WriteBinary(w io.Writer, m interface{ MarshalBinary() ([]byte, error) }) (int64, error) {
	buf, err := m.MarshalBinary()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadFull reads exactly len(buf) bytes, mapping a clean EOF at offset zero
// to io.EOF and a mid-field EOF to io.ErrUnexpectedEOF (the distinction
// stream decoders surface to their consumers).
func ReadFull(r io.Reader, buf []byte) (int, error) {
	return io.ReadFull(r, buf)
}

// ReadUint32 reads a big-endian uint32 from a stream.
func ReadUint32(r io.Reader) (uint32, int, error) {
	var buf [4]byte
	n, err := io.ReadFull(r, buf[:])
	if err != nil {
		return 0, n, err
	}
	return binary.BigEndian.Uint32(buf[:]), n, nil
}

// ReadUint64 reads a big-endian uint64 from a stream.
func ReadUint64(r io.Reader) (uint64, int, error) {
	var buf [8]byte
	n, err := io.ReadFull(r, buf[:])
	if err != nil {
		return 0, n, err
	}
	return binary.BigEndian.Uint64(buf[:]), n, nil
}

// ReadString8 reads a u8-length-prefixed string from a stream.
func ReadString8(r io.Reader) (string, int, error) {
	var l [1]byte
	n, err := io.ReadFull(r, l[:])
	if err != nil {
		return "", n, err
	}
	buf := make([]byte, int(l[0]))
	m, err := io.ReadFull(r, buf)
	n += m
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", n, err
	}
	return string(buf), n, nil
}

// ReadBytes32 reads a u32-length-prefixed byte field from a stream.
func ReadBytes32(r io.Reader) ([]byte, int, error) {
	v, n, err := ReadUint32(r)
	if err != nil {
		return nil, n, err
	}
	if v > MaxLen {
		return nil, n, fmt.Errorf("%w: field length %d exceeds limit", ErrMalformed, v)
	}
	buf := make([]byte, int(v))
	m, err := io.ReadFull(r, buf)
	n += m
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, n, err
	}
	return buf, n, nil
}
