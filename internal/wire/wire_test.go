package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestGoldenLayout pins the byte-level layout of every field helper: a
// change here changes every codec in the repo and must bump Version.
func TestGoldenLayout(t *testing.T) {
	buf := AppendUint32(nil, 0x01020304)
	buf = AppendUint64(buf, 0x0102030405060708)
	buf = AppendString8(buf, "ab")
	buf = AppendBytes32(buf, []byte{0xff})
	golden := []byte{
		0x01, 0x02, 0x03, 0x04, // uint32, big-endian
		0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, // uint64, big-endian
		0x02, 'a', 'b', // str8: u8 length | bytes
		0x00, 0x00, 0x00, 0x01, 0xff, // bytes32: u32 length | bytes
	}
	if !bytes.Equal(buf, golden) {
		t.Fatalf("encoded = %x, want %x", buf, golden)
	}

	v, rest, err := Uint32(buf)
	if err != nil || v != 0x01020304 {
		t.Fatalf("Uint32 = %#x, %v", v, err)
	}
	v64, rest, err := Uint64(rest)
	if err != nil || v64 != 0x0102030405060708 {
		t.Fatalf("Uint64 = %#x, %v", v64, err)
	}
	s, rest, err := String8(rest)
	if err != nil || s != "ab" {
		t.Fatalf("String8 = %q, %v", s, err)
	}
	b, rest, err := Bytes32(rest)
	if err != nil || !bytes.Equal(b, []byte{0xff}) || len(rest) != 0 {
		t.Fatalf("Bytes32 = %x, rest %x, %v", b, rest, err)
	}
}

func TestBytes32Copies(t *testing.T) {
	enc := AppendBytes32(nil, []byte{1, 2, 3})
	got, _, err := Bytes32(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc[4] = 9 // mutate the backing array after decode
	if got[0] != 1 {
		t.Error("Bytes32 aliases the input buffer instead of copying")
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, _, err := Uint32([]byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short uint32: %v", err)
	}
	if _, _, err := Uint64([]byte{1, 2, 3, 4, 5, 6, 7}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short uint64: %v", err)
	}
	if _, _, err := String8([]byte{}); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty string field: %v", err)
	}
	if _, _, err := String8([]byte{5, 'a'}); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated string: %v", err)
	}
	if _, _, err := Bytes32([]byte{0, 0, 0, 9, 1}); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated bytes32: %v", err)
	}
	// A forged length prefix beyond MaxLen must be rejected before any
	// allocation, not attempted.
	huge := AppendUint32(nil, MaxLen+1)
	if _, _, err := Bytes32(huge); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized bytes32 length: %v", err)
	}
	if _, _, err := ReadBytes32(bytes.NewReader(huge)); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized streamed bytes32 length: %v", err)
	}
}

func TestAppendString8PanicsOnLongString(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AppendString8 accepted a 256-byte string")
		}
	}()
	AppendString8(nil, strings.Repeat("x", 256))
}

// TestStreamEOFSemantics checks the stream readers' contract: EOF at a
// field boundary is io.EOF only for the first byte of a read; running dry
// mid-field is io.ErrUnexpectedEOF.
func TestStreamEOFSemantics(t *testing.T) {
	if _, _, err := ReadUint32(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty uint32 stream: %v, want io.EOF", err)
	}
	if _, _, err := ReadUint32(bytes.NewReader([]byte{1, 2})); err != io.ErrUnexpectedEOF {
		t.Errorf("partial uint32 stream: %v, want io.ErrUnexpectedEOF", err)
	}
	if _, _, err := ReadUint64(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty uint64 stream: %v, want io.EOF", err)
	}
	if _, _, err := ReadUint64(bytes.NewReader([]byte{1, 2, 3})); err != io.ErrUnexpectedEOF {
		t.Errorf("partial uint64 stream: %v, want io.ErrUnexpectedEOF", err)
	}
	if _, _, err := ReadString8(bytes.NewReader([]byte{3, 'a'})); err != io.ErrUnexpectedEOF {
		t.Errorf("partial string stream: %v, want io.ErrUnexpectedEOF", err)
	}
	if _, _, err := ReadBytes32(bytes.NewReader([]byte{0, 0, 0, 2, 7})); err != io.ErrUnexpectedEOF {
		t.Errorf("partial bytes32 stream: %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := AppendUint32(nil, 42)
	enc = AppendString8(enc, "phase")
	enc = AppendBytes32(enc, []byte("payload"))
	buf.Write(enc)

	v, n1, err := ReadUint32(&buf)
	if err != nil || v != 42 {
		t.Fatalf("ReadUint32 = %d, %v", v, err)
	}
	s, n2, err := ReadString8(&buf)
	if err != nil || s != "phase" {
		t.Fatalf("ReadString8 = %q, %v", s, err)
	}
	b, n3, err := ReadBytes32(&buf)
	if err != nil || string(b) != "payload" {
		t.Fatalf("ReadBytes32 = %q, %v", b, err)
	}
	if n1+n2+n3 != len(enc) {
		t.Errorf("byte counts sum to %d, encoded %d", n1+n2+n3, len(enc))
	}
}
