// Package parallel is the worker-pool execution engine behind the
// protocol drivers: bounded, errgroup-style fan-out (first error cancels
// the remaining work, no goroutine leaks) whose results stay slot-indexed
// so callers produce output that is byte-for-byte independent of the
// worker count.
//
// The committee-member contribution loops and the driver's "everyone
// computes" loops (contribution sums, homomorphic packing, opening
// combination) are embarrassingly parallel per party and per position;
// this package is how they fan out over the configured number of OS
// threads without changing what gets posted, metered, or audited.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWorkers is the worker count an unset (zero) configuration means:
// one worker per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// Normalize maps a configured worker count to the effective pool size:
// values below 1 mean DefaultWorkers, 1 means the fully serial path.
func Normalize(workers int) int {
	if workers < 1 {
		return DefaultWorkers()
	}
	return workers
}

// For runs fn(i) for every i in [0, n) on at most `workers` goroutines
// (after Normalize). The first error cancels the remaining work and is
// returned after every started call has finished — workers never outlive
// the call. With one worker the loop runs inline on the caller's
// goroutine in index order, which is the engine's serial reference path.
//
// A nil ctx is treated as context.Background(); a ctx cancelled before or
// during the loop aborts it with ctx's error.
func For(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForObserved(ctx, workers, n, fn, nil)
}

// Observer receives one event per completed loop iteration. Implementations
// must be safe for concurrent use: workers report independently.
//
// The interface is structural so the telemetry layer can satisfy it without
// this package importing it; callers with telemetry disabled must pass a
// nil Observer (not a typed nil boxed into the interface).
type Observer interface {
	// TaskDone reports that iteration task finished on worker slot
	// `worker` after running for d, with `queued` iterations not yet
	// started at that moment (the engine's queue depth).
	TaskDone(worker, task int, d time.Duration, queued int)
}

// ForObserved is For with per-task observation. A nil obs adds no work at
// all — not even clock reads — so the unobserved loop stays the engine's
// zero-overhead reference path.
func ForObserved(ctx context.Context, workers, n int, fn func(i int) error, obs Observer) error {
	return ForWorker(ctx, workers, n, func(_, i int) error { return fn(i) }, obs)
}

// ForWorker is ForObserved where fn also receives the worker slot running
// the iteration (0 on the serial path) — the hook worker-attributed
// tracing needs. Worker identity never affects scheduling or results;
// it is attribution only.
func ForWorker(ctx context.Context, workers, n int, fn func(worker, i int) error, obs Observer) error {
	if n <= 0 {
		return nil
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if obs == nil {
				if err := fn(0, i); err != nil {
					return err
				}
				continue
			}
			start := time.Now()
			err := fn(0, i)
			obs.TaskDone(0, i, time.Since(start), n-i-1)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg    sync.WaitGroup
		once  sync.Once
		first error
		next  atomic.Int64
	)
	fail := func(err error) {
		once.Do(func() {
			first = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := gctx.Err(); err != nil {
					return
				}
				if obs == nil {
					if err := fn(w, i); err != nil {
						fail(err)
						return
					}
					continue
				}
				start := time.Now()
				err := fn(w, i)
				queued := n - int(next.Load())
				if queued < 0 {
					queued = 0
				}
				obs.TaskDone(w, i, time.Since(start), queued)
				if err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if first != nil {
		return first
	}
	// The parent context may have been cancelled without any fn erroring.
	return ctx.Err()
}
