package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// recorder is a race-safe test Observer.
type recorder struct {
	mu     sync.Mutex
	tasks  map[int]int // task -> worker
	queued []int
	busy   time.Duration
}

func (r *recorder) TaskDone(worker, task int, d time.Duration, queued int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tasks == nil {
		r.tasks = map[int]int{}
	}
	if _, dup := r.tasks[task]; dup {
		panic("task observed twice")
	}
	r.tasks[task] = worker
	r.queued = append(r.queued, queued)
	r.busy += d
}

func TestForObservedSerial(t *testing.T) {
	rec := &recorder{}
	const n = 5
	err := ForObserved(context.Background(), 1, n, func(i int) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.tasks) != n {
		t.Fatalf("observed %d tasks, want %d", len(rec.tasks), n)
	}
	for task, worker := range rec.tasks {
		if worker != 0 {
			t.Fatalf("serial task %d on worker %d", task, worker)
		}
	}
	// Serial queue depth drains deterministically: n-1, n-2, ..., 0.
	for i, q := range rec.queued {
		if q != n-i-1 {
			t.Fatalf("queued[%d] = %d, want %d", i, q, n-i-1)
		}
	}
	if rec.busy < n*100*time.Microsecond {
		t.Fatalf("busy %v below total sleep time", rec.busy)
	}
}

func TestForObservedPool(t *testing.T) {
	rec := &recorder{}
	const n, workers = 40, 4
	err := ForObserved(context.Background(), workers, n, func(i int) error {
		time.Sleep(50 * time.Microsecond)
		return nil
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.tasks) != n {
		t.Fatalf("observed %d tasks, want %d", len(rec.tasks), n)
	}
	for task, worker := range rec.tasks {
		if worker < 0 || worker >= workers {
			t.Fatalf("task %d attributed to out-of-range worker %d", task, worker)
		}
	}
	for i, q := range rec.queued {
		if q < 0 || q >= n {
			t.Fatalf("queued[%d] = %d out of range", i, q)
		}
	}
}

func TestForObservedErrorStillObserves(t *testing.T) {
	boom := errors.New("boom")
	rec := &recorder{}
	err := ForObserved(context.Background(), 1, 10, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	}, rec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failing task is observed too (4 tasks ran: 0,1,2,3).
	if len(rec.tasks) != 4 {
		t.Fatalf("observed %d tasks, want 4", len(rec.tasks))
	}
}

// TestForObservedNilMatchesFor pins that For delegates to the unobserved
// path: identical coverage with a nil observer.
func TestForObservedNilMatchesFor(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	err := ForObserved(context.Background(), 3, 20, func(i int) error {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Fatalf("covered %d of 20", len(seen))
	}
}
