package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalize(t *testing.T) {
	if got := Normalize(0); got != runtime.NumCPU() {
		t.Errorf("Normalize(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Normalize(-3); got != runtime.NumCPU() {
		t.Errorf("Normalize(-3) = %d", got)
	}
	if got := Normalize(7); got != 7 {
		t.Errorf("Normalize(7) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		counts := make([]int32, n)
		err := For(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForSerialOrder(t *testing.T) {
	var seen []int
	err := For(nil, 1, 5, func(i int) error {
		seen = append(seen, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial path out of order: %v", seen)
		}
	}
}

func TestForFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := For(context.Background(), 4, 1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("error did not cancel remaining work: ran %d of 1000", n)
	}
}

func TestForNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	_ = For(context.Background(), 16, 64, func(i int) error {
		if i%5 == 0 {
			return errors.New("spurious")
		}
		return nil
	})
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestForParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := For(ctx, 4, 100, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Serial path honours the context too.
	err = For(ctx, 1, 100, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
}

func TestForZeroItems(t *testing.T) {
	if err := For(context.Background(), 4, 0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
