package sharing

import (
	"bytes"
	"testing"

	"yosompc/internal/field"
)

// TestShareVecEncodedSize pins the ShareVec size model: a 4-byte count
// plus 12 bytes per share, and agreement with the actual encoding.
func TestShareVecEncodedSize(t *testing.T) {
	for _, n := range []int{0, 1, 5, 33} {
		v := make(ShareVec, n)
		for i := range v {
			v[i] = Share{Index: i + 1, Value: field.New(uint64(i) * 7919)}
		}
		want := 4 + n*ShareEncodedSize
		if got := v.EncodedSize(); got != want {
			t.Fatalf("ShareVec(%d).EncodedSize = %d, want %d", n, got, want)
		}
		enc, err := v.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != v.EncodedSize() {
			t.Fatalf("ShareVec(%d) encoded to %d bytes, EncodedSize says %d", n, len(enc), v.EncodedSize())
		}
	}
}

// FuzzShareVecRoundTrip feeds arbitrary bytes through the ShareVec
// decoders: any accepted input must re-encode identically through both
// the buffer and stream codecs, and the size model must match.
func FuzzShareVecRoundTrip(f *testing.F) {
	if enc, err := (ShareVec{{Index: 1, Value: field.New(42)}}).MarshalBinary(); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 2, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v ShareVec
		//yosolint:declassify fuzz corpus bytes are attacker-supplied inputs, not secret shares
		if err := v.UnmarshalBinary(data); err != nil {
			return
		}
		enc, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encoding accepted input: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, enc)
		}
		if len(enc) != v.EncodedSize() {
			t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), v.EncodedSize())
		}
		var sv ShareVec
		//yosolint:declassify same fuzz corpus bytes through the stream decoder
		if _, err := sv.ReadFrom(bytes.NewReader(data)); err != nil {
			t.Fatalf("stream decoder rejected bytes the buffer decoder accepted: %v", err)
		}
		var out bytes.Buffer
		if _, err := sv.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("stream round trip changed bytes: %x -> %x", data, out.Bytes())
		}
	})
}
