package sharing

import (
	"encoding/binary"
	"errors"
	"testing"

	"yosompc/internal/field"
)

// FuzzShamirRoundTrip checks the share→reconstruct identity over fuzzed
// parameters: packed sharings with arbitrary packing factor k, degree d
// and committee size n (subject to the validity constraints k-1 ≤ d ≤ n-1),
// reconstruction both from a minimal share subset and from the full set,
// and detection of a corrupted share whenever redundant shares exist. It
// complements the field and circuit fuzzers with coverage of the packing
// layer itself.
func FuzzShamirRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(1), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(4), uint8(7), uint8(16), []byte{0xff, 0xee, 0xdd, 0xcc})
	f.Add(uint8(2), uint8(3), uint8(5), []byte{})
	f.Add(uint8(9), uint8(200), uint8(255), []byte{9, 9, 9, 9, 9, 9, 9, 9, 1})
	f.Fuzz(func(t *testing.T, kRaw, dRaw, nRaw uint8, data []byte) {
		// Derive valid parameters: 1 ≤ n ≤ 32, k-1 ≤ d ≤ n-1, 1 ≤ k ≤ d+1.
		n := 1 + int(nRaw)%32
		d := int(dRaw) % n
		k := 1 + int(kRaw)%(d+1)

		secrets := make([]field.Element, k)
		for j := range secrets {
			var chunk [8]byte
			copy(chunk[:], data[min(8*j, len(data)):])
			secrets[j] = field.New(binary.LittleEndian.Uint64(chunk[:]))
		}

		shares, err := SharePacked(secrets, d, n)
		if err != nil {
			t.Fatalf("SharePacked(k=%d d=%d n=%d): %v", k, d, n, err)
		}
		if len(shares) != n {
			t.Fatalf("got %d shares, want n=%d", len(shares), n)
		}

		// Reconstruct from all n shares: the extras double as a consistency
		// check, which must pass for an honest sharing.
		got, err := ReconstructPacked(shares, d, k)
		if err != nil {
			t.Fatalf("ReconstructPacked(all): %v", err)
		}
		assertSecrets(t, secrets, got, "full share set")

		// Reconstruct from the minimal subset, taken from the tail so the
		// indices are not simply 1..d+1.
		minimal := shares[n-(d+1):]
		got, err = ReconstructPacked(minimal, d, k)
		if err != nil {
			t.Fatalf("ReconstructPacked(minimal tail): %v", err)
		}
		assertSecrets(t, secrets, got, "minimal share subset")

		// Standard Shamir is the k=1 packed case.
		if k == 1 {
			secret, err := ReconstructStandard(shares, d)
			if err != nil {
				t.Fatalf("ReconstructStandard: %v", err)
			}
			if secret != secrets[0] {
				t.Fatalf("standard reconstruction = %v, want %v", secret, secrets[0])
			}
		}

		// With redundant shares present, corrupting one must be detected.
		if n > d+1 {
			tampered := make([]Share, n)
			copy(tampered, shares)
			tampered[0].Value = tampered[0].Value.Add(field.One)
			if _, err := ReconstructPacked(tampered, d, k); !errors.Is(err, ErrInconsistentShares) {
				t.Fatalf("corrupted share went undetected (err=%v)", err)
			}
		}
	})
}

// FuzzDomainVsNaive differentially fuzzes the cached evaluation-domain
// engine against the seed Lagrange-basis reference: both paths are driven
// from identical fuzz-derived secrets AND randomness (through the
// shareWith / sharePackedNaiveWith seam), so any divergence — in share
// values, reconstructed secrets, or error behaviour — is a bug in one of
// them, not a sampling artifact.
func FuzzDomainVsNaive(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(1), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(4), uint8(7), uint8(16), []byte{0xff, 0xee, 0xdd, 0xcc})
	f.Add(uint8(3), uint8(2), uint8(4), []byte{})
	f.Add(uint8(9), uint8(200), uint8(255), []byte{9, 9, 9, 9, 9, 9, 9, 9, 1})
	f.Fuzz(func(t *testing.T, kRaw, dRaw, nRaw uint8, data []byte) {
		n := 1 + int(nRaw)%32
		d := int(dRaw) % n
		k := 1 + int(kRaw)%(d+1)

		at := func(i int) field.Element {
			var chunk [8]byte
			copy(chunk[:], data[min(8*i, len(data)):])
			return field.New(binary.LittleEndian.Uint64(chunk[:]))
		}
		secrets := make([]field.Element, k)
		for j := range secrets {
			secrets[j] = at(j)
		}
		rnd := make([]field.Element, d+1-k)
		for j := range rnd {
			rnd[j] = at(k + j)
		}

		dom, err := GetDomain(k, d, n)
		if err != nil {
			t.Fatalf("GetDomain(k=%d d=%d n=%d): %v", k, d, n, err)
		}
		fast := dom.shareWith(secrets, rnd)
		naive, err := sharePackedNaiveWith(secrets, rnd, d, n)
		if err != nil {
			t.Fatalf("naive share: %v", err)
		}
		for i := range fast {
			if fast[i] != naive[i] {
				t.Fatalf("share %d: domain=%+v naive=%+v", i, fast[i], naive[i])
			}
		}

		// Canonical full-set reconstruction, both paths.
		gotFast, err := ReconstructPacked(fast, d, k)
		if err != nil {
			t.Fatalf("ReconstructPacked: %v", err)
		}
		gotNaive, err := ReconstructPackedNaive(naive, d, k)
		if err != nil {
			t.Fatalf("ReconstructPackedNaive: %v", err)
		}
		if !field.EqualVec(gotFast, gotNaive) || !field.EqualVec(gotFast, secrets) {
			t.Fatalf("reconstruction: fast=%v naive=%v want=%v", gotFast, gotNaive, secrets)
		}

		// Non-canonical tail subset, both paths.
		tail := fast[n-(d+1):]
		gotFast, err = ReconstructPacked(tail, d, k)
		if err != nil {
			t.Fatalf("ReconstructPacked(tail): %v", err)
		}
		gotNaive, err = ReconstructPackedNaive(tail, d, k)
		if err != nil {
			t.Fatalf("ReconstructPackedNaive(tail): %v", err)
		}
		if !field.EqualVec(gotFast, gotNaive) {
			t.Fatalf("tail reconstruction: fast=%v naive=%v", gotFast, gotNaive)
		}

		// Corruption parity when redundancy exists: same detection, same
		// error text.
		if n > d+1 {
			tampered := make([]Share, n)
			copy(tampered, fast)
			tampered[n-1].Value = tampered[n-1].Value.Add(field.One)
			_, fastErr := ReconstructPacked(tampered, d, k)
			_, naiveErr := ReconstructPackedNaive(tampered, d, k)
			if !errors.Is(fastErr, ErrInconsistentShares) || !errors.Is(naiveErr, ErrInconsistentShares) {
				t.Fatalf("tampering: fast=%v naive=%v", fastErr, naiveErr)
			}
			if fastErr.Error() != naiveErr.Error() {
				t.Fatalf("error text diverged: fast=%q naive=%q", fastErr, naiveErr)
			}
		}

		// Constant-packing rows for the same k.
		cFast, err := ConstantPackedShare(secrets, n)
		if err != nil {
			t.Fatalf("ConstantPackedShare: %v", err)
		}
		cNaive, err := constantPackedShareNaive(secrets, n)
		if err != nil {
			t.Fatalf("constantPackedShareNaive: %v", err)
		}
		if cFast != cNaive {
			t.Fatalf("constant share: domain=%+v naive=%+v", cFast, cNaive)
		}
	})
}

func assertSecrets(t *testing.T, want, got []field.Element, from string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d secrets, want %d", from, len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("%s: secret %d = %v, want %v", from, j, got[j], want[j])
		}
	}
}
