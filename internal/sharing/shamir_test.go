package sharing

import (
	"testing"
	"testing/quick"

	"yosompc/internal/field"
)

func secretsOf(vs ...uint64) []field.Element {
	out := make([]field.Element, len(vs))
	for i, v := range vs {
		out[i] = field.New(v)
	}
	return out
}

func TestStandardShareReconstruct(t *testing.T) {
	secret := field.New(42)
	const d, n = 3, 10
	shares, err := ShareStandard(secret, d, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != n {
		t.Fatalf("got %d shares", len(shares))
	}
	got, err := ReconstructStandard(shares[:d+1], d)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("reconstructed %v, want %v", got, secret)
	}
}

func TestStandardReconstructAnySubset(t *testing.T) {
	secret := field.New(777)
	const d, n = 2, 7
	shares, err := ShareStandard(secret, d, n)
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]int{{0, 1, 2}, {4, 5, 6}, {0, 3, 6}, {1, 2, 5}}
	for _, idx := range subsets {
		sub := make([]Share, len(idx))
		for i, j := range idx {
			sub[i] = shares[j]
		}
		got, err := ReconstructStandard(sub, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Errorf("subset %v reconstructed %v, want %v", idx, got, secret)
		}
	}
}

func TestPackedShareReconstruct(t *testing.T) {
	secrets := secretsOf(1, 2, 3, 4)
	const d, n = 9, 16 // k=4 ≤ d+1
	shares, err := SharePacked(secrets, d, n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReconstructPacked(shares[:d+1], d, len(secrets))
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, secrets) {
		t.Errorf("reconstructed %v, want %v", got, secrets)
	}
}

func TestPackedReconstructProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		secrets := make([]field.Element, len(raw))
		for i, v := range raw {
			secrets[i] = field.New(v)
		}
		k := len(secrets)
		d := k + 3 // some padding randomness
		n := d + 5
		shares, err := SharePacked(secrets, d, n)
		if err != nil {
			return false
		}
		got, err := ReconstructPacked(shares[n-d-1:], d, k)
		if err != nil {
			return false
		}
		return field.EqualVec(got, secrets)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNotEnoughShares(t *testing.T) {
	shares, err := ShareStandard(field.New(5), 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconstructStandard(shares[:4], 4); err == nil {
		t.Error("reconstruction with d shares succeeded")
	}
}

func TestInconsistentSharesDetected(t *testing.T) {
	shares, err := ShareStandard(field.New(5), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	shares[7].Value = shares[7].Value.Add(field.One) // corrupt one extra share
	if _, err := ReconstructStandard(shares, 2); err == nil {
		t.Error("corrupted share set accepted")
	}
}

func TestLinearHomomorphism(t *testing.T) {
	a := secretsOf(10, 20, 30)
	b := secretsOf(1, 2, 3)
	const d, n = 6, 12
	sa, err := SharePacked(a, d, n)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := SharePacked(b, d, n)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := AddShares(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReconstructPacked(sum[:d+1], d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, field.AddVec(a, b)) {
		t.Errorf("[[a]]+[[b]] reconstructed %v, want %v", got, field.AddVec(a, b))
	}
}

func TestMultiplicativeHomomorphism(t *testing.T) {
	// [[x*y]]_{d1+d2} = [[x]]_{d1} * [[y]]_{d2}: share-wise products of
	// degree-d1 and degree-d2 sharings reconstruct the Schur product at
	// degree d1+d2.
	x := secretsOf(3, 5, 7)
	y := secretsOf(11, 13, 17)
	const d1, d2, n = 4, 5, 12
	sx, err := SharePacked(x, d1, n)
	if err != nil {
		t.Fatal(err)
	}
	sy, err := SharePacked(y, d2, n)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := MulShares(sx, sy)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReconstructPacked(prod[:d1+d2+1], d1+d2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, field.MulVec(x, y)) {
		t.Errorf("[[x]]*[[y]] reconstructed %v, want %v", got, field.MulVec(x, y))
	}
}

func TestPublicVectorMultiplication(t *testing.T) {
	// Paper §3.2: c * [[x]]_{n-k} computed as [[c]]_{k-1} * [[x]]_{n-k},
	// reconstructable at degree n-1.
	const n = 12
	k := 3
	c := secretsOf(2, 4, 6)
	x := secretsOf(100, 200, 300)
	dx := n - k
	sx, err := SharePacked(x, dx, n)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ConstantPacked(c, n)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := MulShares(sc, sx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReconstructPacked(prod, n-1, k)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, field.MulVec(c, x)) {
		t.Errorf("c*[[x]] = %v, want %v", got, field.MulVec(c, x))
	}
}

func TestConstantPackedShareMatchesFull(t *testing.T) {
	c := secretsOf(9, 8, 7, 6)
	const n = 9
	full, err := ConstantPacked(c, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		one, err := ConstantPackedShare(c, i)
		if err != nil {
			t.Fatal(err)
		}
		if one != full[i-1] {
			t.Errorf("share %d: %v vs %v", i, one, full[i-1])
		}
	}
}

func TestPrivacyThreshold(t *testing.T) {
	// Any d-k+1 shares are independent of the secrets: with d=k (one random
	// padding point), a single share must not determine the secret. We test a
	// weaker observable property: two different secret vectors can produce
	// the same single-share value (statistically, shares of a fixed secret
	// vary across sharings).
	secrets := secretsOf(42, 43)
	seen := make(map[field.Element]bool)
	for i := 0; i < 32; i++ {
		shares, err := SharePacked(secrets, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		seen[shares[4].Value] = true
	}
	if len(seen) < 2 {
		t.Error("share of fixed secret constant across re-sharings — no privacy randomness")
	}
}

func TestValidateParams(t *testing.T) {
	cases := []struct {
		name    string
		k, d, n int
	}{
		{"k too small", 0, 3, 5},
		{"d below k-1", 4, 2, 5},
		{"d above n-1", 1, 5, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			secrets := make([]field.Element, c.k)
			if _, err := SharePacked(secrets, c.d, c.n); err == nil {
				t.Errorf("SharePacked(k=%d,d=%d,n=%d) accepted", c.k, c.d, c.n)
			}
		})
	}
}

func TestPackingLagrangeCoeffs(t *testing.T) {
	// The coefficient matrix applied to (secrets, padding) must produce
	// valid packed shares: reconstructing from them recovers the secrets.
	const k, tt, n = 3, 2, 10
	d := tt + k - 1
	secrets := secretsOf(5, 10, 15)
	padding := secretsOf(1234, 5678)
	rows, err := PackingLagrangeCoeffs(k, tt, n)
	if err != nil {
		t.Fatal(err)
	}
	points := append(field.CloneVec(secrets), padding...)
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		shares[i] = Share{Index: i + 1, Value: field.InnerProduct(rows[i], points)}
	}
	got, err := ReconstructPacked(shares[:d+1], d, k)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, secrets) {
		t.Errorf("packed via Lagrange coeffs reconstructed %v, want %v", got, secrets)
	}
}

func TestPackingLagrangeCoeffsInvalid(t *testing.T) {
	if _, err := PackingLagrangeCoeffs(0, 1, 4); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := PackingLagrangeCoeffs(1, -1, 4); err == nil {
		t.Error("accepted t=-1")
	}
}

func TestAddSharesMismatch(t *testing.T) {
	a := []Share{{Index: 1, Value: field.One}}
	b := []Share{{Index: 2, Value: field.One}}
	if _, err := AddShares(a, b); err == nil {
		t.Error("AddShares accepted index mismatch")
	}
	if _, err := AddShares(a, nil); err == nil {
		t.Error("AddShares accepted length mismatch")
	}
	if _, err := MulShares(a, b); err == nil {
		t.Error("MulShares accepted index mismatch")
	}
}

func TestSlotPoints(t *testing.T) {
	pts := SlotPoints(3)
	want := []field.Element{field.NewInt64(0), field.NewInt64(-1), field.NewInt64(-2)}
	if !field.EqualVec(pts, want) {
		t.Errorf("SlotPoints(3) = %v, want %v", pts, want)
	}
}

// BenchmarkSharePacked / BenchmarkReconstructPacked live in bench_test.go,
// where the cached domain engine and the seed naive path are measured
// side by side at n ∈ {64, 256, 1024}.
