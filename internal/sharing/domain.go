package sharing

import (
	"fmt"
	"sync"
	"sync/atomic"

	"yosompc/internal/field"
	"yosompc/internal/poly"
	"yosompc/internal/telemetry"
)

// The evaluation-domain engine: packed Shamir in this codebase always
// works over the same point geometry — secrets at the slot points
// 0, -1, ..., -(k-1), auxiliary randomness at 1..d+1-k, shares at 1..n —
// so the Lagrange algebra for a given (k, d, n) never changes between
// calls. A Domain precomputes that algebra once (barycentric weights plus
// the dense coefficient matrices for share generation, slot evaluation,
// and consistency checking) and every subsequent sharing or
// reconstruction is a cached-row inner product: one amortized O(n²)
// setup, then O(n·d) per sharing instead of the O(n³) per-call
// interpolation of the naive path.
//
// Domains live in a global copy-on-write cache with lock-free reads:
// writers clone the map under a mutex and atomically swap the pointer, so
// the worker-pool hot paths never contend on a lock once a domain is
// built. SharePackedNaive / ReconstructPackedNaive keep the original
// interpolation path alive as the reference implementation; the
// differential tests and FuzzDomainVsNaive pin the engine to it
// bit-for-bit.

// Domain is the precomputed share algebra of one packed-sharing shape:
// packing factor K, polynomial degree D, committee size N. All fields are
// immutable after construction; a Domain is safe for unbounded concurrent
// use.
type Domain struct {
	// K, D, N echo the cache key: k secrets on a degree-d polynomial
	// shared to parties 1..n.
	K, D, N int

	// basis is the share-generation point set: the k slot points followed
	// by the d+1-k auxiliary randomness points 1..d+1-k (the geometry of
	// randomPolynomialThrough). basisWeights are its barycentric weights.
	basis        []field.Element
	basisWeights []field.Element

	// genRows[i] is the coefficient row mapping the basis values
	// (secrets ‖ randomness) to party i+1's share — the n×(d+1)
	// share-generation matrix, exactly the l_j(i) vectors of
	// PackingLagrangeCoeffs.
	genRows [][]field.Element

	// prefix is the canonical reconstruction point set 1..d+1 (the share
	// indices ReconstructPacked sees when the first d+1 shares come from
	// parties 1..d+1 in order), with its barycentric weights.
	prefix        []field.Element
	prefixWeights []field.Element

	// slotRows[j] maps canonical-prefix share values to packed secret j;
	// checkRows[i] maps them to the redundant share of party d+2+i, the
	// consistency probe for extra shares.
	slotRows  [][]field.Element
	checkRows [][]field.Element
}

// domainKey identifies a Domain in the global cache.
type domainKey struct{ k, d, n int }

// reconKey identifies a reconstruction-only domain: the canonical-prefix
// weights and slot rows depend on (d, k) but not on any committee size.
type reconKey struct{ d, k int }

// reconDomain is the reconstruction slice of the algebra, cached
// separately because reconstruction never needs to know n.
type reconDomain struct {
	prefix        []field.Element
	prefixWeights []field.Element
	slotRows      [][]field.Element
}

// Global caches: copy-on-write maps behind atomic pointers. Readers are
// lock-free (one atomic load + map lookup); writers clone under domainMu.
var (
	domainMu    sync.Mutex
	domainCache atomic.Pointer[map[domainKey]*Domain]
	reconCache  atomic.Pointer[map[reconKey]*reconDomain]
	constCache  atomic.Pointer[map[int]*ConstDomain]

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// instruments mirrors hits/misses into a telemetry registry when one
	// is installed via Instrument. Counters are nil-safe, so the unset
	// state costs one atomic load per cache access.
	instruments atomic.Pointer[domainCounters]
)

type domainCounters struct{ hits, misses *telemetry.Counter }

// Instrument mirrors the domain-cache hit/miss counters into reg as
// "sharing.domain_cache_hits" / "sharing.domain_cache_misses". A nil reg
// detaches the previous registry. The cache is process-global, so when
// several instrumented runs overlap the last-installed registry wins;
// DomainCacheStats always reports the process-lifetime totals.
func Instrument(reg *telemetry.Registry) {
	if reg == nil {
		instruments.Store(nil)
		return
	}
	instruments.Store(&domainCounters{
		hits:   reg.Counter("sharing.domain_cache_hits"),
		misses: reg.Counter("sharing.domain_cache_misses"),
	})
}

// DomainCacheStats returns the process-lifetime domain-cache hit and miss
// counts (all three caches: full domains, reconstruction domains, and
// constant-packing domains).
func DomainCacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

func recordHit() {
	cacheHits.Add(1)
	instruments.Load().hitCounter().Inc()
}

func recordMiss() {
	cacheMisses.Add(1)
	instruments.Load().missCounter().Inc()
}

// hitCounter / missCounter are nil-receiver-safe accessors so the
// uninstrumented path never branches on the struct fields.
func (d *domainCounters) hitCounter() *telemetry.Counter {
	if d == nil {
		return nil
	}
	return d.hits
}

func (d *domainCounters) missCounter() *telemetry.Counter {
	if d == nil {
		return nil
	}
	return d.misses
}

// resetDomainCaches drops every cached domain and zeroes the counters —
// test seam only, so cache-statistics tests start deterministic.
func resetDomainCaches() {
	domainMu.Lock()
	defer domainMu.Unlock()
	domainCache.Store(nil)
	reconCache.Store(nil)
	constCache.Store(nil)
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

// GetDomain returns the cached evaluation domain for a degree-d packed
// sharing of k secrets to parties 1..n, building and publishing it on
// first use. Parameters are validated exactly like SharePacked.
func GetDomain(k, d, n int) (*Domain, error) {
	if err := validateParams(n, d, k); err != nil {
		return nil, err
	}
	key := domainKey{k, d, n}
	if m := domainCache.Load(); m != nil {
		if dom, ok := (*m)[key]; ok {
			recordHit()
			return dom, nil
		}
	}
	domainMu.Lock()
	defer domainMu.Unlock()
	old := domainCache.Load()
	if old != nil {
		if dom, ok := (*old)[key]; ok {
			recordHit()
			return dom, nil
		}
	}
	recordMiss()
	dom, err := buildDomain(k, d, n)
	if err != nil {
		return nil, err
	}
	next := make(map[domainKey]*Domain, 1)
	if old != nil {
		for kk, vv := range *old {
			next[kk] = vv
		}
	}
	next[key] = dom
	domainCache.Store(&next)
	return dom, nil
}

// buildDomain performs the one-time O(n²) precomputation.
func buildDomain(k, d, n int) (*Domain, error) {
	basis := SlotPoints(k)
	for i := 1; i <= d+1-k; i++ {
		basis = append(basis, field.New(uint64(i)))
	}
	basisWeights, err := poly.BarycentricWeights(basis)
	if err != nil {
		// Unreachable for the structurally distinct slot/aux geometry at
		// supported committee sizes; fail closed anyway.
		return nil, fmt.Errorf("sharing: domain (k=%d d=%d n=%d) basis: %w", k, d, n, err)
	}
	shareXs := ShareIndexPoints(n)
	prefix := shareXs[:d+1]
	prefixWeights, err := poly.BarycentricWeights(prefix)
	if err != nil {
		return nil, fmt.Errorf("sharing: domain (k=%d d=%d n=%d) prefix: %w", k, d, n, err)
	}
	return &Domain{
		K: k, D: d, N: n,
		basis:         basis,
		basisWeights:  basisWeights,
		genRows:       poly.EvalRowsFromWeights(basis, basisWeights, shareXs),
		prefix:        prefix,
		prefixWeights: prefixWeights,
		slotRows:      poly.EvalRowsFromWeights(prefix, prefixWeights, SlotPoints(k)),
		checkRows:     poly.EvalRowsFromWeights(prefix, prefixWeights, shareXs[d+1:]),
	}, nil
}

// ShareRow returns party `index`'s share-generation coefficient row: the
// d+1 coefficients applied to (secrets ‖ randomness) to obtain f(index).
// The returned slice aliases the domain's cache and must be treated as
// read-only.
func (dom *Domain) ShareRow(index int) []field.Element {
	return dom.genRows[index-1]
}

// shareWith applies the share-generation matrix to secrets ‖ rnd. It is
// the deterministic half of SharePacked, split out so differential tests
// can drive the fast and naive paths from identical randomness.
func (dom *Domain) shareWith(secrets, rnd []field.Element) []Share {
	v := make([]field.Element, 0, dom.D+1)
	v = append(append(v, secrets...), rnd...)
	defer field.Zeroize(v) // scratch copy of secrets ‖ randomness
	shares := make([]Share, dom.N)
	for i := range shares {
		shares[i] = Share{Index: i + 1, Value: field.InnerProductLazy(dom.genRows[i], v)}
	}
	return shares
}

// getReconDomain returns the cached reconstruction algebra for canonical
// share prefixes (indices exactly 1..d+1).
func getReconDomain(d, k int) *reconDomain {
	key := reconKey{d, k}
	if m := reconCache.Load(); m != nil {
		if rd, ok := (*m)[key]; ok {
			recordHit()
			return rd
		}
	}
	domainMu.Lock()
	defer domainMu.Unlock()
	old := reconCache.Load()
	if old != nil {
		if rd, ok := (*old)[key]; ok {
			recordHit()
			return rd
		}
	}
	recordMiss()
	prefix := ShareIndexPoints(d + 1)
	// Points 1..d+1 are distinct by construction, so the weights cannot
	// fail.
	weights, err := poly.BarycentricWeights(prefix)
	if err != nil {
		panic(fmt.Sprintf("sharing: canonical prefix weights (d=%d): %v", d, err))
	}
	rd := &reconDomain{
		prefix:        prefix,
		prefixWeights: weights,
		slotRows:      poly.EvalRowsFromWeights(prefix, weights, SlotPoints(k)),
	}
	next := make(map[reconKey]*reconDomain, 1)
	if old != nil {
		for kk, vv := range *old {
			next[kk] = vv
		}
	}
	next[key] = rd
	reconCache.Store(&next)
	return rd
}

// ConstDomain is the cached algebra of ConstantPacked sharings for one
// packing width k: the degree-(k-1) polynomial through the slot points,
// evaluated at share indices. Rows grow on demand (lock-free reads,
// copy-on-write growth) because callers ask for individual party indices
// rather than a fixed committee size.
type ConstDomain struct {
	k       int
	slots   []field.Element
	weights []field.Element
	// rows holds coefficient rows for indices 1..len(rows); grown
	// geometrically under domainMu, snapshotted atomically.
	rows atomic.Pointer[[][]field.Element]
}

// GetConstDomain returns the cached constant-packing domain for public
// vectors of width k.
func GetConstDomain(k int) (*ConstDomain, error) {
	if k < 1 {
		return nil, fmt.Errorf("sharing: constant domain: packing width k=%d < 1", k)
	}
	if m := constCache.Load(); m != nil {
		if cd, ok := (*m)[k]; ok {
			recordHit()
			return cd, nil
		}
	}
	domainMu.Lock()
	defer domainMu.Unlock()
	old := constCache.Load()
	if old != nil {
		if cd, ok := (*old)[k]; ok {
			recordHit()
			return cd, nil
		}
	}
	recordMiss()
	slots := SlotPoints(k)
	weights, err := poly.BarycentricWeights(slots)
	if err != nil {
		return nil, fmt.Errorf("sharing: constant domain (k=%d): %w", k, err)
	}
	cd := &ConstDomain{k: k, slots: slots, weights: weights}
	next := make(map[int]*ConstDomain, 1)
	if old != nil {
		for kk, vv := range *old {
			next[kk] = vv
		}
	}
	next[k] = cd
	constCache.Store(&next)
	return cd, nil
}

// Row returns the coefficient row of party `index` (1-based): k
// coefficients with f(index) = row·c for the degree-(k-1) polynomial
// through (slots, c). The slice aliases the cache — read-only. Indices
// below 1 are computed ad hoc without caching (no protocol caller uses
// them; the naive path accepted them, so the engine does too).
func (cd *ConstDomain) Row(index int) []field.Element {
	if index < 1 {
		return poly.EvalCoeffsFromWeights(cd.slots, cd.weights, ShareIndexPoint(index))
	}
	if rp := cd.rows.Load(); rp != nil && index <= len(*rp) {
		return (*rp)[index-1]
	}
	domainMu.Lock()
	defer domainMu.Unlock()
	rp := cd.rows.Load()
	have := 0
	if rp != nil {
		have = len(*rp)
	}
	if index <= have {
		return (*rp)[index-1]
	}
	grow := 2 * have
	if grow < index {
		grow = index
	}
	next := make([][]field.Element, grow)
	if rp != nil {
		copy(next, *rp)
	}
	for i := have; i < grow; i++ {
		next[i] = poly.EvalCoeffsFromWeights(cd.slots, cd.weights, ShareIndexPoint(i+1))
	}
	cd.rows.Store(&next)
	return next[index-1]
}

// Share returns party `index`'s share of the constant packed sharing of
// c, which must have width k.
func (cd *ConstDomain) Share(c []field.Element, index int) (Share, error) {
	if len(c) != cd.k {
		return Share{}, fmt.Errorf("sharing: constant domain k=%d applied to %d-vector", cd.k, len(c))
	}
	return Share{Index: index, Value: field.InnerProductLazy(cd.Row(index), c)}, nil
}
