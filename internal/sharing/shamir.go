// Package sharing implements Shamir secret sharing and its packed
// generalization (Franklin–Yung), the core algebraic tool of the paper.
//
// Conventions, following the paper's Section 3.2:
//
//   - Party i's share is the evaluation at x = i, for i in 1..n.
//   - Packed secrets occupy the "slot" points x = 0, -1, ..., -(k-1);
//     i.e. secret j (0-based) lives at x = -j (mod p).
//   - A degree-d packed sharing of k secrets needs d+1 shares to
//     reconstruct, and any d-k+1 shares are independent of the secrets.
//
// Standard Shamir is the k = 1 case with the single secret at x = 0.
package sharing

import (
	"errors"
	"fmt"

	"yosompc/internal/field"
	"yosompc/internal/poly"
)

// Share is one party's share of a (possibly packed) sharing: the evaluation
// of the sharing polynomial at X = Index.
type Share struct {
	// Index is the party index in 1..n (the evaluation point).
	Index int
	// Value is the polynomial evaluation at Index.
	Value field.Element
}

// ErrNotEnoughShares is returned when fewer shares than degree+1 are given.
var ErrNotEnoughShares = errors.New("sharing: not enough shares to reconstruct")

// ErrInconsistentShares is returned when the provided shares do not lie on a
// polynomial of the claimed degree. Detecting this matters for GOD: shares
// from roles whose proofs did not verify are excluded before reconstruction.
var ErrInconsistentShares = errors.New("sharing: shares are inconsistent with claimed degree")

// SlotPoint returns the evaluation point storing packed secret j (0-based):
// x = -j mod p.
func SlotPoint(j int) field.Element {
	return field.NewInt64(int64(-j))
}

// SlotPoints returns the k slot points 0, -1, ..., -(k-1).
func SlotPoints(k int) []field.Element {
	out := make([]field.Element, k)
	for j := range out {
		out[j] = SlotPoint(j)
	}
	return out
}

// ShareIndexPoint returns the evaluation point of party index i (1-based).
func ShareIndexPoint(i int) field.Element {
	return field.New(uint64(i))
}

// ShareIndexPoints returns the points for parties 1..n.
func ShareIndexPoints(n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		out[i] = ShareIndexPoint(i + 1)
	}
	return out
}

// MaxPackingCapacity returns the largest number of secrets a degree-d sharing
// can pack while keeping the share points 1..n distinct from the slot points.
// Slot points are 0, -1, ... which never collide with 1..n in F_p for the
// committee sizes this library supports, so the only bound is d+1.
func MaxPackingCapacity(d int) int { return d + 1 }

// Validate checks structural parameters shared by Share and Reconstruct.
func validateParams(n, d, k int) error {
	switch {
	case k < 1:
		return fmt.Errorf("sharing: packing factor k=%d < 1", k)
	case d < k-1:
		return fmt.Errorf("sharing: degree d=%d < k-1=%d cannot determine %d secrets", d, k-1, k)
	case d > n-1:
		return fmt.Errorf("sharing: degree d=%d > n-1=%d cannot be reconstructed by n parties", d, n-1)
	case n < 1:
		return fmt.Errorf("sharing: n=%d < 1", n)
	}
	return nil
}

// SharePacked produces a degree-d packed Shamir sharing of the k secrets for
// parties 1..n. The sharing polynomial passes through the secrets at the slot
// points and is uniformly random subject to that constraint (d-k+1 free
// coefficients are sampled uniformly by interpolating through d-k+1 extra
// random points).
//
// The shares are computed by the cached evaluation-domain engine (see
// domain.go): one precomputed n×(d+1) coefficient matrix per (k, d, n),
// applied to (secrets ‖ randomness) — bit-identical to SharePackedNaive
// for the same randomness, amortized O(n·d) instead of O(n³) per call.
func SharePacked(secrets []field.Element, d, n int) ([]Share, error) {
	k := len(secrets)
	if err := validateParams(n, d, k); err != nil {
		return nil, err
	}
	rnd, err := field.RandomVec(d + 1 - k)
	if err != nil {
		return nil, err
	}
	defer field.Zeroize(rnd)
	dom, err := GetDomain(k, d, n)
	if err != nil {
		return nil, err
	}
	return dom.shareWith(secrets, rnd), nil
}

// SharePackedNaive is the reference implementation of SharePacked:
// interpolate the sharing polynomial through (slots ‖ auxiliary
// randomness) by the original sum-of-scaled-Lagrange-basis construction,
// then evaluate it at every share index. It consumes randomness
// identically to SharePacked and produces identically distributed shares;
// the differential tests and FuzzDomainVsNaive pin the cached engine
// against it bit-for-bit. Use it for cross-checking and benchmarking
// only — it is the O(n³)-per-call path the domain engine exists to
// avoid, kept deliberately independent of the Newton and barycentric
// code the fast paths are built on.
func SharePackedNaive(secrets []field.Element, d, n int) ([]Share, error) {
	k := len(secrets)
	if err := validateParams(n, d, k); err != nil {
		return nil, err
	}
	rnd, err := field.RandomVec(d + 1 - k)
	if err != nil {
		return nil, err
	}
	defer field.Zeroize(rnd)
	return sharePackedNaiveWith(secrets, rnd, d, n)
}

// sharePackedNaiveWith is SharePackedNaive below the randomness seam.
func sharePackedNaiveWith(secrets, rnd []field.Element, d, n int) ([]Share, error) {
	f, err := randomPolynomialThrough(secrets, rnd, d)
	if err != nil {
		return nil, err
	}
	// The sharing polynomial's coefficients determine every secret slot;
	// wipe them once the share evaluations are done.
	defer f.Zeroize()
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		shares[i] = Share{Index: i + 1, Value: f.Eval(ShareIndexPoint(i + 1))}
	}
	return shares, nil
}

// ShareStandard produces a degree-d standard Shamir sharing of one secret
// (stored at x = 0) for parties 1..n.
func ShareStandard(secret field.Element, d, n int) ([]Share, error) {
	return SharePacked([]field.Element{secret}, d, n)
}

// randomPolynomialThrough returns the unique polynomial of degree ≤ d
// passing through (SlotPoint(j), secrets[j]) for each j and through the
// injected randomness rnd at the auxiliary points x = 1, 2, ... (which
// are disjoint from the slot points). Uniform rnd makes the polynomial
// uniformly random subject to the secret constraints. Reference path
// only: the construction is the original O(n³) Lagrange-basis sum.
func randomPolynomialThrough(secrets, rnd []field.Element, d int) (poly.Polynomial, error) {
	k := len(secrets)
	xs := SlotPoints(k)
	ys := field.CloneVec(secrets)
	extra := d + 1 - k
	if len(rnd) != extra {
		return poly.Polynomial{}, fmt.Errorf("sharing: %d randomness values for %d auxiliary points", len(rnd), extra)
	}
	for i := 0; i < extra; i++ {
		xs = append(xs, field.New(uint64(i+1)))
		ys = append(ys, rnd[i])
	}
	return interpolateLagrangeBasis(xs, ys)
}

// interpolateLagrangeBasis interpolates by summing scaled Lagrange basis
// polynomials — the seed algorithm every fast path in this package is
// differentially pinned against. Interpolation is unique and field
// arithmetic exact, so it agrees bit-for-bit with the Newton and
// barycentric routes while sharing no code with them.
func interpolateLagrangeBasis(xs, ys []field.Element) (poly.Polynomial, error) {
	if len(xs) != len(ys) {
		return poly.Polynomial{}, fmt.Errorf("sharing: interpolate: %d points vs %d values", len(xs), len(ys))
	}
	basis, err := poly.LagrangeBasis(xs)
	if err != nil {
		return poly.Polynomial{}, err
	}
	acc := poly.Zero()
	for i := range ys {
		acc = acc.Add(basis[i].ScalarMul(ys[i]))
	}
	return acc, nil
}

// ReconstructPacked recovers the k packed secrets from at least d+1 shares of
// a degree-d sharing. If more than d+1 shares are provided, the extras are
// used as a consistency check and ErrInconsistentShares is returned when any
// share deviates from the interpolated polynomial.
//
// When the first d+1 shares carry the canonical indices 1..d+1 (the
// committee fast path), the slot evaluations are cached coefficient rows
// from the domain engine; arbitrary index sets fall back to a one-off
// barycentric weight computation — still O(d²) instead of the naive
// O(d³). Both routes are bit-identical to ReconstructPackedNaive.
func ReconstructPacked(shares []Share, d, k int) ([]field.Element, error) {
	if len(shares) < d+1 {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(shares), d+1)
	}
	xs := make([]field.Element, d+1)
	ys := make([]field.Element, d+1)
	canonical := true
	for i := 0; i < d+1; i++ {
		if shares[i].Index != i+1 {
			canonical = false
		}
		xs[i] = ShareIndexPoint(shares[i].Index)
		ys[i] = shares[i].Value
	}
	var (
		weights  []field.Element
		slotRows [][]field.Element
	)
	if canonical {
		rd := getReconDomain(d, k)
		weights, slotRows = rd.prefixWeights, rd.slotRows
	} else {
		var err error
		if weights, err = poly.BarycentricWeights(xs); err != nil {
			return nil, err
		}
	}
	for _, s := range shares[d+1:] {
		row := poly.EvalCoeffsFromWeights(xs, weights, ShareIndexPoint(s.Index))
		if field.InnerProductLazy(row, ys) != s.Value { //yosolint:vartime reconstruction-side consistency check: the reconstructor holds >= d+1 shares and learns the secrets anyway
			return nil, fmt.Errorf("%w: share %d deviates", ErrInconsistentShares, s.Index)
		}
	}
	secrets := make([]field.Element, k)
	for j := 0; j < k; j++ {
		if slotRows != nil {
			secrets[j] = field.InnerProductLazy(slotRows[j], ys)
		} else {
			row := poly.EvalCoeffsFromWeights(xs, weights, SlotPoint(j))
			secrets[j] = field.InnerProductLazy(row, ys)
		}
	}
	return secrets, nil
}

// ReconstructPackedNaive is the reference implementation of
// ReconstructPacked: interpolate the sharing polynomial in coefficient
// form (seed O(d³) Lagrange-basis construction) and evaluate it at the
// slot points. Kept for differential testing and benchmarking of the
// cached engine.
func ReconstructPackedNaive(shares []Share, d, k int) ([]field.Element, error) {
	if len(shares) < d+1 {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(shares), d+1)
	}
	xs := make([]field.Element, d+1)
	ys := make([]field.Element, d+1)
	for i := 0; i < d+1; i++ {
		xs[i] = ShareIndexPoint(shares[i].Index)
		ys[i] = shares[i].Value
	}
	f, err := interpolateLagrangeBasis(xs, ys) //yosolint:vartime reconstruction-side interpolation: the caller holds the shares it interpolates
	if err != nil {
		return nil, err
	}
	for _, s := range shares[d+1:] {
		if f.Eval(ShareIndexPoint(s.Index)) != s.Value { //yosolint:vartime reconstruction-side consistency check on the naive reference path
			return nil, fmt.Errorf("%w: share %d deviates", ErrInconsistentShares, s.Index)
		}
	}
	secrets := make([]field.Element, k)
	for j := 0; j < k; j++ {
		secrets[j] = f.Eval(SlotPoint(j))
	}
	return secrets, nil
}

// ReconstructStandard recovers a single secret from a degree-d sharing.
func ReconstructStandard(shares []Share, d int) (field.Element, error) {
	secrets, err := ReconstructPacked(shares, d, 1)
	if err != nil {
		return field.Zero, err
	}
	return secrets[0], nil
}

// ConstantPacked returns the degree-(k-1) packed sharing of a public vector c:
// the unique polynomial of degree k-1 through the slots. Every party can
// compute its own share locally — this is the multiplication-friendliness
// trick from the paper's Section 3.2 (Step 1 of public-vector multiplication).
// Shares come from the cached constant-packing domain: one coefficient row
// per party, computed once per (k, index) process-wide.
func ConstantPacked(c []field.Element, n int) ([]Share, error) {
	k := len(c)
	if k == 0 {
		return nil, errors.New("sharing: empty public vector")
	}
	cd, err := GetConstDomain(k)
	if err != nil {
		return nil, err
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		if shares[i], err = cd.Share(c, i+1); err != nil {
			return nil, err
		}
	}
	return shares, nil
}

// ConstantPackedShare returns only party `index`'s share of the degree-(k-1)
// packed sharing of the public vector c — a cached-row inner product (the
// μ-opening hot path evaluates this once per member per batch per layer).
func ConstantPackedShare(c []field.Element, index int) (Share, error) {
	k := len(c)
	if k == 0 {
		return Share{}, errors.New("sharing: empty public vector")
	}
	cd, err := GetConstDomain(k)
	if err != nil {
		return Share{}, err
	}
	return cd.Share(c, index)
}

// constantPackedShareNaive is the reference path of ConstantPackedShare
// (direct Lagrange evaluation), pinned against the domain row by the
// differential tests.
func constantPackedShareNaive(c []field.Element, index int) (Share, error) {
	v, err := poly.EvalAt(SlotPoints(len(c)), c, ShareIndexPoint(index))
	if err != nil {
		return Share{}, err
	}
	return Share{Index: index, Value: v}, nil
}

// AddShares returns the share-wise sum of two sharings held by the same
// party set — the linear homomorphism [[x+y]]_d = [[x]]_d + [[y]]_d.
func AddShares(a, b []Share) ([]Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("sharing: add: %d vs %d shares", len(a), len(b))
	}
	out := make([]Share, len(a))
	for i := range a {
		if a[i].Index != b[i].Index {
			return nil, fmt.Errorf("sharing: add: index mismatch at %d: %d vs %d", i, a[i].Index, b[i].Index)
		}
		out[i] = Share{Index: a[i].Index, Value: a[i].Value.Add(b[i].Value)}
	}
	return out, nil
}

// MulShares returns the share-wise product — the degree-additive
// multiplication [[x*y]]_{d1+d2} = [[x]]_{d1} * [[y]]_{d2}.
func MulShares(a, b []Share) ([]Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("sharing: mul: %d vs %d shares", len(a), len(b))
	}
	out := make([]Share, len(a))
	for i := range a {
		if a[i].Index != b[i].Index {
			return nil, fmt.Errorf("sharing: mul: index mismatch at %d: %d vs %d", i, a[i].Index, b[i].Index)
		}
		out[i] = Share{Index: a[i].Index, Value: a[i].Value.Mul(b[i].Value)}
	}
	return out, nil
}

// PackingLagrangeCoeffs returns, for each target share index i in 1..n, the
// coefficient vector applied to the points
//
//	(slot_1..slot_k carrying the secrets, x=1..t carrying random padding)
//
// to obtain the packed share f(i) — exactly the l_j(i) vectors used in the
// homomorphic packing of offline Step 4. The returned matrix has n rows of
// t+k coefficients.
//
// The rows are served from the cached evaluation domain for (k, t+k-1, n)
// when that shape is valid, so repeated offline batches pay the O(n·(t+k))
// matrix construction once per process instead of O(n·(t+k)²) per call.
// Rows are cloned: callers may mutate them freely.
func PackingLagrangeCoeffs(k, t, n int) ([][]field.Element, error) {
	if k < 1 || t < 0 {
		return nil, fmt.Errorf("sharing: packing coeffs: invalid k=%d t=%d", k, t)
	}
	d := t + k - 1
	if validateParams(n, d, k) == nil {
		dom, err := GetDomain(k, d, n)
		if err != nil {
			return nil, err
		}
		rows := make([][]field.Element, n)
		for i := range rows {
			rows[i] = field.CloneVec(dom.genRows[i])
		}
		return rows, nil
	}
	// Shapes outside the domain engine's envelope (e.g. t+k > n, where the
	// packed degree exceeds what n parties could reconstruct) keep working
	// as before, via a one-off barycentric weight computation.
	xs := SlotPoints(k)
	for i := 1; i <= t; i++ {
		xs = append(xs, field.New(uint64(i)))
	}
	ws, err := poly.BarycentricWeights(xs)
	if err != nil {
		return nil, err
	}
	return poly.EvalRowsFromWeights(xs, ws, ShareIndexPoints(n)), nil
}

// ReconstructAtSlots interpolates the sharing polynomial from the given
// shares (claimed degree d) and returns its evaluations at the k slot points.
// Unlike ReconstructPacked it accepts shares at arbitrary distinct indices
// and does not require them sorted.
func ReconstructAtSlots(shares []Share, d, k int) ([]field.Element, error) {
	return ReconstructPacked(shares, d, k)
}
