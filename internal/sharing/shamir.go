// Package sharing implements Shamir secret sharing and its packed
// generalization (Franklin–Yung), the core algebraic tool of the paper.
//
// Conventions, following the paper's Section 3.2:
//
//   - Party i's share is the evaluation at x = i, for i in 1..n.
//   - Packed secrets occupy the "slot" points x = 0, -1, ..., -(k-1);
//     i.e. secret j (0-based) lives at x = -j (mod p).
//   - A degree-d packed sharing of k secrets needs d+1 shares to
//     reconstruct, and any d-k+1 shares are independent of the secrets.
//
// Standard Shamir is the k = 1 case with the single secret at x = 0.
package sharing

import (
	"errors"
	"fmt"

	"yosompc/internal/field"
	"yosompc/internal/poly"
)

// Share is one party's share of a (possibly packed) sharing: the evaluation
// of the sharing polynomial at X = Index.
type Share struct {
	// Index is the party index in 1..n (the evaluation point).
	Index int
	// Value is the polynomial evaluation at Index.
	Value field.Element
}

// ErrNotEnoughShares is returned when fewer shares than degree+1 are given.
var ErrNotEnoughShares = errors.New("sharing: not enough shares to reconstruct")

// ErrInconsistentShares is returned when the provided shares do not lie on a
// polynomial of the claimed degree. Detecting this matters for GOD: shares
// from roles whose proofs did not verify are excluded before reconstruction.
var ErrInconsistentShares = errors.New("sharing: shares are inconsistent with claimed degree")

// SlotPoint returns the evaluation point storing packed secret j (0-based):
// x = -j mod p.
func SlotPoint(j int) field.Element {
	return field.NewInt64(int64(-j))
}

// SlotPoints returns the k slot points 0, -1, ..., -(k-1).
func SlotPoints(k int) []field.Element {
	out := make([]field.Element, k)
	for j := range out {
		out[j] = SlotPoint(j)
	}
	return out
}

// ShareIndexPoint returns the evaluation point of party index i (1-based).
func ShareIndexPoint(i int) field.Element {
	return field.New(uint64(i))
}

// ShareIndexPoints returns the points for parties 1..n.
func ShareIndexPoints(n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		out[i] = ShareIndexPoint(i + 1)
	}
	return out
}

// MaxPackingCapacity returns the largest number of secrets a degree-d sharing
// can pack while keeping the share points 1..n distinct from the slot points.
// Slot points are 0, -1, ... which never collide with 1..n in F_p for the
// committee sizes this library supports, so the only bound is d+1.
func MaxPackingCapacity(d int) int { return d + 1 }

// Validate checks structural parameters shared by Share and Reconstruct.
func validateParams(n, d, k int) error {
	switch {
	case k < 1:
		return fmt.Errorf("sharing: packing factor k=%d < 1", k)
	case d < k-1:
		return fmt.Errorf("sharing: degree d=%d < k-1=%d cannot determine %d secrets", d, k-1, k)
	case d > n-1:
		return fmt.Errorf("sharing: degree d=%d > n-1=%d cannot be reconstructed by n parties", d, n-1)
	case n < 1:
		return fmt.Errorf("sharing: n=%d < 1", n)
	}
	return nil
}

// SharePacked produces a degree-d packed Shamir sharing of the k secrets for
// parties 1..n. The sharing polynomial passes through the secrets at the slot
// points and is uniformly random subject to that constraint (d-k+1 free
// coefficients are sampled uniformly by interpolating through d-k+1 extra
// random points).
func SharePacked(secrets []field.Element, d, n int) ([]Share, error) {
	k := len(secrets)
	if err := validateParams(n, d, k); err != nil {
		return nil, err
	}
	f, err := randomPolynomialThrough(secrets, d)
	if err != nil {
		return nil, err
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		shares[i] = Share{Index: i + 1, Value: f.Eval(ShareIndexPoint(i + 1))}
	}
	return shares, nil
}

// ShareStandard produces a degree-d standard Shamir sharing of one secret
// (stored at x = 0) for parties 1..n.
func ShareStandard(secret field.Element, d, n int) ([]Share, error) {
	return SharePacked([]field.Element{secret}, d, n)
}

// randomPolynomialThrough returns a uniformly random polynomial of degree ≤ d
// passing through (SlotPoint(j), secrets[j]) for each j.
func randomPolynomialThrough(secrets []field.Element, d int) (poly.Polynomial, error) {
	k := len(secrets)
	// Fix the polynomial by its values at d+1 points: the k slot points carry
	// the secrets and d+1-k auxiliary points carry fresh randomness. The
	// auxiliary points x = 1, 2, ... are disjoint from the slot points.
	xs := SlotPoints(k)
	ys := field.CloneVec(secrets)
	extra := d + 1 - k
	rnd, err := field.RandomVec(extra)
	if err != nil {
		return poly.Polynomial{}, err
	}
	for i := 0; i < extra; i++ {
		xs = append(xs, field.New(uint64(i+1)))
		ys = append(ys, rnd[i])
	}
	return poly.Interpolate(xs, ys)
}

// ReconstructPacked recovers the k packed secrets from at least d+1 shares of
// a degree-d sharing. If more than d+1 shares are provided, the extras are
// used as a consistency check and ErrInconsistentShares is returned when any
// share deviates from the interpolated polynomial.
func ReconstructPacked(shares []Share, d, k int) ([]field.Element, error) {
	if len(shares) < d+1 {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(shares), d+1)
	}
	xs := make([]field.Element, d+1)
	ys := make([]field.Element, d+1)
	for i := 0; i < d+1; i++ {
		xs[i] = ShareIndexPoint(shares[i].Index)
		ys[i] = shares[i].Value
	}
	f, err := poly.Interpolate(xs, ys)
	if err != nil {
		return nil, err
	}
	for _, s := range shares[d+1:] {
		if f.Eval(ShareIndexPoint(s.Index)) != s.Value {
			return nil, fmt.Errorf("%w: share %d deviates", ErrInconsistentShares, s.Index)
		}
	}
	secrets := make([]field.Element, k)
	for j := 0; j < k; j++ {
		secrets[j] = f.Eval(SlotPoint(j))
	}
	return secrets, nil
}

// ReconstructStandard recovers a single secret from a degree-d sharing.
func ReconstructStandard(shares []Share, d int) (field.Element, error) {
	secrets, err := ReconstructPacked(shares, d, 1)
	if err != nil {
		return field.Zero, err
	}
	return secrets[0], nil
}

// ConstantPacked returns the degree-(k-1) packed sharing of a public vector c:
// the unique polynomial of degree k-1 through the slots. Every party can
// compute its own share locally — this is the multiplication-friendliness
// trick from the paper's Section 3.2 (Step 1 of public-vector multiplication).
func ConstantPacked(c []field.Element, n int) ([]Share, error) {
	k := len(c)
	if k == 0 {
		return nil, errors.New("sharing: empty public vector")
	}
	f, err := poly.Interpolate(SlotPoints(k), c)
	if err != nil {
		return nil, err
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		shares[i] = Share{Index: i + 1, Value: f.Eval(ShareIndexPoint(i + 1))}
	}
	return shares, nil
}

// ConstantPackedShare returns only party `index`'s share of the degree-(k-1)
// packed sharing of the public vector c.
func ConstantPackedShare(c []field.Element, index int) (Share, error) {
	k := len(c)
	if k == 0 {
		return Share{}, errors.New("sharing: empty public vector")
	}
	v, err := poly.EvalAt(SlotPoints(k), c, ShareIndexPoint(index))
	if err != nil {
		return Share{}, err
	}
	return Share{Index: index, Value: v}, nil
}

// AddShares returns the share-wise sum of two sharings held by the same
// party set — the linear homomorphism [[x+y]]_d = [[x]]_d + [[y]]_d.
func AddShares(a, b []Share) ([]Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("sharing: add: %d vs %d shares", len(a), len(b))
	}
	out := make([]Share, len(a))
	for i := range a {
		if a[i].Index != b[i].Index {
			return nil, fmt.Errorf("sharing: add: index mismatch at %d: %d vs %d", i, a[i].Index, b[i].Index)
		}
		out[i] = Share{Index: a[i].Index, Value: a[i].Value.Add(b[i].Value)}
	}
	return out, nil
}

// MulShares returns the share-wise product — the degree-additive
// multiplication [[x*y]]_{d1+d2} = [[x]]_{d1} * [[y]]_{d2}.
func MulShares(a, b []Share) ([]Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("sharing: mul: %d vs %d shares", len(a), len(b))
	}
	out := make([]Share, len(a))
	for i := range a {
		if a[i].Index != b[i].Index {
			return nil, fmt.Errorf("sharing: mul: index mismatch at %d: %d vs %d", i, a[i].Index, b[i].Index)
		}
		out[i] = Share{Index: a[i].Index, Value: a[i].Value.Mul(b[i].Value)}
	}
	return out, nil
}

// PackingLagrangeCoeffs returns, for each target share index i in 1..n, the
// coefficient vector applied to the points
//
//	(slot_1..slot_k carrying the secrets, x=1..t carrying random padding)
//
// to obtain the packed share f(i) — exactly the l_j(i) vectors used in the
// homomorphic packing of offline Step 4. The returned matrix has n rows of
// t+k coefficients.
func PackingLagrangeCoeffs(k, t, n int) ([][]field.Element, error) {
	if k < 1 || t < 0 {
		return nil, fmt.Errorf("sharing: packing coeffs: invalid k=%d t=%d", k, t)
	}
	xs := SlotPoints(k)
	for i := 1; i <= t; i++ {
		xs = append(xs, field.New(uint64(i)))
	}
	rows := make([][]field.Element, n)
	for i := 1; i <= n; i++ {
		coeffs, err := poly.LagrangeCoeffs(xs, ShareIndexPoint(i))
		if err != nil {
			return nil, err
		}
		rows[i-1] = coeffs
	}
	return rows, nil
}

// ReconstructAtSlots interpolates the sharing polynomial from the given
// shares (claimed degree d) and returns its evaluations at the k slot points.
// Unlike ReconstructPacked it accepts shares at arbitrary distinct indices
// and does not require them sorted.
func ReconstructAtSlots(shares []Share, d, k int) ([]field.Element, error) {
	return ReconstructPacked(shares, d, k)
}
