package sharing

import (
	"context"
	"fmt"

	"yosompc/internal/field"
	"yosompc/internal/parallel"
)

// ShareManyPacked produces one degree-d packed sharing per secret vector in
// secretsBatch, fanning the per-sharing matrix applications over at most
// `workers` goroutines (parallel.Normalize semantics: <1 means one per CPU,
// 1 is the serial reference path).
//
// Randomness is sampled serially, in batch order, before the fan-out — so
// for a deterministic randomness source the output is byte-for-byte
// independent of the worker count, matching the engine-wide determinism
// contract of internal/parallel. The shares themselves are identical to
// calling SharePacked once per vector.
func ShareManyPacked(ctx context.Context, secretsBatch [][]field.Element, d, n, workers int) ([][]Share, error) {
	if len(secretsBatch) == 0 {
		return nil, nil
	}
	rnds := make([][]field.Element, len(secretsBatch))
	for b, secrets := range secretsBatch {
		if err := validateParams(n, d, len(secrets)); err != nil {
			return nil, fmt.Errorf("sharing: batch entry %d: %w", b, err)
		}
		rnd, err := field.RandomVec(d + 1 - len(secrets))
		if err != nil {
			return nil, err
		}
		rnds[b] = rnd
	}
	out := make([][]Share, len(secretsBatch))
	err := parallel.For(ctx, workers, len(secretsBatch), func(b int) error {
		dom, err := GetDomain(len(secretsBatch[b]), d, n)
		if err != nil {
			return fmt.Errorf("sharing: batch entry %d: %w", b, err)
		}
		out[b] = dom.shareWith(secretsBatch[b], rnds[b])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReconstructManyPacked recovers the k packed secrets of every sharing in
// sharesBatch (all of claimed degree d), fanning over at most `workers`
// goroutines. Results are slot-indexed: out[b] corresponds to
// sharesBatch[b] regardless of scheduling, and each entry is identical to
// calling ReconstructPacked on it. The first failing entry aborts the
// remaining work and is returned with its batch index.
func ReconstructManyPacked(ctx context.Context, sharesBatch [][]Share, d, k, workers int) ([][]field.Element, error) {
	if len(sharesBatch) == 0 {
		return nil, nil
	}
	out := make([][]field.Element, len(sharesBatch))
	err := parallel.For(ctx, workers, len(sharesBatch), func(b int) error {
		secrets, err := ReconstructPacked(sharesBatch[b], d, k)
		if err != nil {
			return fmt.Errorf("sharing: batch entry %d: %w", b, err)
		}
		out[b] = secrets
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
