package sharing

import (
	"context"
	"fmt"
	"testing"

	"yosompc/internal/field"
)

// Benchmark geometry: quarter packing, half-degree sharings — the shape
// the offline/online phases use at scale. "domain" is the cached engine,
// "naive" the seed Lagrange-basis path, both driven below the randomness
// seam so the numbers compare pure share algebra.
var benchSizes = []struct{ k, d, n int }{
	{16, 32, 64},
	{64, 128, 256},
	{256, 512, 1024},
}

func BenchmarkSharePacked(b *testing.B) {
	for _, s := range benchSizes {
		secrets := field.MustRandomVec(s.k)
		rnd := field.MustRandomVec(s.d + 1 - s.k)
		dom, err := GetDomain(s.k, s.d, s.n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("domain/n=%d", s.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dom.shareWith(secrets, rnd)
			}
		})
		b.Run(fmt.Sprintf("naive/n=%d", s.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sharePackedNaiveWith(secrets, rnd, s.d, s.n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReconstructPacked(b *testing.B) {
	for _, s := range benchSizes {
		secrets := field.MustRandomVec(s.k)
		shares, err := SharePacked(secrets, s.d, s.n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("domain/n=%d", s.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ReconstructPacked(shares, s.d, s.k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive/n=%d", s.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ReconstructPackedNaive(shares, s.d, s.k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkShareManyPacked(b *testing.B) {
	const batch = 32
	s := benchSizes[1]
	secretsBatch := make([][]field.Element, batch)
	for i := range secretsBatch {
		secretsBatch[i] = field.MustRandomVec(s.k)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ShareManyPacked(context.Background(), secretsBatch, s.d, s.n, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
