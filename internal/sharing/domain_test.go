package sharing

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"yosompc/internal/field"
	"yosompc/internal/poly"
	"yosompc/internal/telemetry"
)

// domainShapes is the (k, d, n) grid the differential tests sweep:
// standard Shamir, minimal degree (no auxiliary randomness), packed with
// and without redundancy, and committee-sized cases.
var domainShapes = []struct{ k, d, n int }{
	{1, 0, 1},
	{1, 3, 8},
	{3, 2, 4}, // d = k-1: zero auxiliary randomness points
	{3, 5, 8},
	{4, 7, 16},
	{5, 9, 10},
	{8, 15, 33},
}

func assertSharesEqual(t *testing.T, fast, naive []Share, label string) {
	t.Helper()
	if len(fast) != len(naive) {
		t.Fatalf("%s: %d vs %d shares", label, len(fast), len(naive))
	}
	for i := range fast {
		if fast[i] != naive[i] {
			t.Fatalf("%s: share %d: domain=%+v naive=%+v", label, i, fast[i], naive[i])
		}
	}
}

// TestSharePackedMatchesNaive drives the cached domain and the seed
// Lagrange-basis path from identical randomness and demands bit-identical
// shares across the shape grid.
func TestSharePackedMatchesNaive(t *testing.T) {
	for _, s := range domainShapes {
		secrets := field.MustRandomVec(s.k)
		rnd := field.MustRandomVec(s.d + 1 - s.k)
		dom, err := GetDomain(s.k, s.d, s.n)
		if err != nil {
			t.Fatalf("GetDomain(%+v): %v", s, err)
		}
		naive, err := sharePackedNaiveWith(secrets, rnd, s.d, s.n)
		if err != nil {
			t.Fatalf("naive(%+v): %v", s, err)
		}
		assertSharesEqual(t, dom.shareWith(secrets, rnd), naive, "k/d/n shape")
	}
}

// TestReconstructPackedMatchesNaive checks the canonical fast path, the
// non-canonical barycentric fallback, and corruption-detection parity
// (identical error text) against ReconstructPackedNaive.
func TestReconstructPackedMatchesNaive(t *testing.T) {
	for _, s := range domainShapes {
		secrets := field.MustRandomVec(s.k)
		shares, err := SharePacked(secrets, s.d, s.n)
		if err != nil {
			t.Fatalf("SharePacked(%+v): %v", s, err)
		}

		// Canonical: full committee, extras as consistency probes.
		fast, err := ReconstructPacked(shares, s.d, s.k)
		if err != nil {
			t.Fatalf("ReconstructPacked(full, %+v): %v", s, err)
		}
		naive, err := ReconstructPackedNaive(shares, s.d, s.k)
		if err != nil {
			t.Fatalf("ReconstructPackedNaive(full, %+v): %v", s, err)
		}
		if !field.EqualVec(fast, naive) || !field.EqualVec(fast, secrets) {
			t.Fatalf("full-set reconstruction mismatch: fast=%v naive=%v want=%v", fast, naive, secrets)
		}

		// Non-canonical: tail subset, indices not 1..d+1.
		tail := shares[s.n-(s.d+1):]
		fast, err = ReconstructPacked(tail, s.d, s.k)
		if err != nil {
			t.Fatalf("ReconstructPacked(tail, %+v): %v", s, err)
		}
		naive, err = ReconstructPackedNaive(tail, s.d, s.k)
		if err != nil {
			t.Fatalf("ReconstructPackedNaive(tail, %+v): %v", s, err)
		}
		if !field.EqualVec(fast, naive) || !field.EqualVec(fast, secrets) {
			t.Fatalf("tail reconstruction mismatch: fast=%v naive=%v want=%v", fast, naive, secrets)
		}

		// Corruption parity: when redundancy exists, both paths must reject
		// a tampered redundant share with the same error.
		if s.n > s.d+1 {
			tampered := make([]Share, s.n)
			copy(tampered, shares)
			tampered[s.n-1].Value = tampered[s.n-1].Value.Add(field.One)
			_, fastErr := ReconstructPacked(tampered, s.d, s.k)
			_, naiveErr := ReconstructPackedNaive(tampered, s.d, s.k)
			if !errors.Is(fastErr, ErrInconsistentShares) || !errors.Is(naiveErr, ErrInconsistentShares) {
				t.Fatalf("tampering missed: fast=%v naive=%v", fastErr, naiveErr)
			}
			if fastErr.Error() != naiveErr.Error() {
				t.Fatalf("error text diverged: fast=%q naive=%q", fastErr, naiveErr)
			}
		}
	}
}

// TestReconstructPackedDuplicateIndexParity: a repeated share index in the
// interpolation prefix must fail closed as ErrDuplicatePoint on both paths.
func TestReconstructPackedDuplicateIndexParity(t *testing.T) {
	shares := []Share{
		{Index: 3, Value: field.New(7)},
		{Index: 1, Value: field.New(9)},
		{Index: 3, Value: field.New(11)},
	}
	_, fastErr := ReconstructPacked(shares, 2, 1)
	_, naiveErr := ReconstructPackedNaive(shares, 2, 1)
	if !errors.Is(fastErr, poly.ErrDuplicatePoint) {
		t.Errorf("fast path: %v, want ErrDuplicatePoint", fastErr)
	}
	if !errors.Is(naiveErr, poly.ErrDuplicatePoint) {
		t.Errorf("naive path: %v, want ErrDuplicatePoint", naiveErr)
	}
}

// TestConstantPackedMatchesNaive pins the cached constant-packing rows
// against direct Lagrange evaluation, including slot-coinciding (index 0),
// negative (uncached) and growth-forcing large indices.
func TestConstantPackedMatchesNaive(t *testing.T) {
	for _, k := range []int{1, 2, 5, 9} {
		c := field.MustRandomVec(k)
		for _, index := range []int{-3, 0, 1, 2, 7, 40, 41, 129} {
			fast, err := ConstantPackedShare(c, index)
			if err != nil {
				t.Fatalf("ConstantPackedShare(k=%d, i=%d): %v", k, index, err)
			}
			naive, err := constantPackedShareNaive(c, index)
			if err != nil {
				t.Fatalf("naive(k=%d, i=%d): %v", k, index, err)
			}
			if fast != naive {
				t.Fatalf("k=%d index=%d: domain=%+v naive=%+v", k, index, fast, naive)
			}
		}
		shares, err := ConstantPacked(c, 17)
		if err != nil {
			t.Fatalf("ConstantPacked(k=%d): %v", k, err)
		}
		for i, s := range shares {
			naive, err := constantPackedShareNaive(c, i+1)
			if err != nil {
				t.Fatal(err)
			}
			if s != naive {
				t.Fatalf("k=%d: ConstantPacked share %d = %+v, naive %+v", k, i, s, naive)
			}
		}
		// Width mismatch must fail closed.
		cd, err := GetConstDomain(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cd.Share(append(field.CloneVec(c), field.One), 1); err == nil {
			t.Fatalf("k=%d: width mismatch accepted", k)
		}
	}
	if _, err := ConstantPacked(nil, 4); err == nil {
		t.Error("empty public vector accepted")
	}
}

// TestPackingLagrangeCoeffsMatchesReference pins both the cached-domain
// route and the out-of-envelope fallback against per-row LagrangeCoeffs,
// and checks that returned rows are safely mutable.
func TestPackingLagrangeCoeffsMatchesReference(t *testing.T) {
	shapes := []struct{ k, t, n int }{
		{1, 0, 1},  // domain route, degenerate
		{2, 3, 8},  // domain route
		{3, 0, 5},  // domain route, d = k-1
		{2, 5, 4},  // fallback: degree t+k-1 = 6 > n-1
		{1, 4, 3},  // fallback
		{4, 13, 9}, // fallback
	}
	for _, s := range shapes {
		rows, err := PackingLagrangeCoeffs(s.k, s.t, s.n)
		if err != nil {
			t.Fatalf("PackingLagrangeCoeffs(%+v): %v", s, err)
		}
		xs := SlotPoints(s.k)
		for i := 1; i <= s.t; i++ {
			xs = append(xs, field.New(uint64(i)))
		}
		for i := 1; i <= s.n; i++ {
			want, err := poly.LagrangeCoeffs(xs, ShareIndexPoint(i))
			if err != nil {
				t.Fatal(err)
			}
			if !field.EqualVec(rows[i-1], want) {
				t.Fatalf("shape %+v row %d differs from LagrangeCoeffs", s, i)
			}
		}
	}
	// Mutating a returned row must not poison the cache.
	rows, err := PackingLagrangeCoeffs(2, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	saved := field.CloneVec(rows[0])
	rows[0][0] = rows[0][0].Add(field.One)
	again, err := PackingLagrangeCoeffs(2, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(again[0], saved) {
		t.Fatal("mutating a PackingLagrangeCoeffs row corrupted the cached domain")
	}
	if _, err := PackingLagrangeCoeffs(0, 1, 4); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PackingLagrangeCoeffs(1, -1, 4); err == nil {
		t.Error("t=-1 accepted")
	}
}

// TestDomainCacheStatsAndInstrument checks miss-then-hit accounting and
// the mirroring of the counters into a telemetry registry.
func TestDomainCacheStatsAndInstrument(t *testing.T) {
	resetDomainCaches()
	reg := telemetry.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	if _, err := GetDomain(2, 3, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := GetDomain(2, 3, 8); err != nil {
		t.Fatal(err)
	}
	getReconDomain(3, 2)
	getReconDomain(3, 2)
	if _, err := GetConstDomain(2); err != nil {
		t.Fatal(err)
	}
	if _, err := GetConstDomain(2); err != nil {
		t.Fatal(err)
	}

	hits, misses := DomainCacheStats()
	if hits != 3 || misses != 3 {
		t.Fatalf("stats = (%d hits, %d misses), want (3, 3)", hits, misses)
	}
	if v := reg.Counter("sharing.domain_cache_hits").Value(); v != 3 {
		t.Errorf("telemetry hits = %d, want 3", v)
	}
	if v := reg.Counter("sharing.domain_cache_misses").Value(); v != 3 {
		t.Errorf("telemetry misses = %d, want 3", v)
	}
}

// TestDomainCacheConcurrent hammers every cache — full domains,
// reconstruction domains, constant rows (growth path) — from many
// goroutines, with cache resets interleaved, under the race detector.
func TestDomainCacheConcurrent(t *testing.T) {
	resetDomainCaches()
	secretsByShape := make([][]field.Element, len(domainShapes))
	for i, s := range domainShapes {
		secretsByShape[i] = field.MustRandomVec(s.k)
	}
	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				s := domainShapes[(g+it)%len(domainShapes)]
				secrets := secretsByShape[(g+it)%len(domainShapes)]
				shares, err := SharePacked(secrets, s.d, s.n)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := ReconstructPacked(shares, s.d, s.k)
				if err != nil {
					t.Error(err)
					return
				}
				if !field.EqualVec(got, secrets) {
					t.Errorf("shape %+v: round trip mismatch", s)
					return
				}
				// Constant-row growth races: ever-larger indices.
				if _, err := ConstantPackedShare(secrets, 1+g*iters+it); err != nil {
					t.Error(err)
					return
				}
				if g == 0 && it%16 == 0 {
					resetDomainCaches()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShareManyPacked checks the batch sharing API: every entry
// reconstructs to its secrets (via the independent naive path), for the
// serial and parallel worker configurations, and parameter errors carry
// the batch index.
func TestShareManyPacked(t *testing.T) {
	batch := [][]field.Element{
		field.MustRandomVec(2),
		field.MustRandomVec(4),
		field.MustRandomVec(1),
		field.MustRandomVec(4),
	}
	for _, workers := range []int{1, 4} {
		out, err := ShareManyPacked(context.Background(), batch, 7, 16, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(batch) {
			t.Fatalf("workers=%d: %d sharings, want %d", workers, len(out), len(batch))
		}
		for b, shares := range out {
			got, err := ReconstructPackedNaive(shares, 7, len(batch[b]))
			if err != nil {
				t.Fatalf("workers=%d entry %d: %v", workers, b, err)
			}
			if !field.EqualVec(got, batch[b]) {
				t.Fatalf("workers=%d entry %d: round trip mismatch", workers, b)
			}
		}
	}
	if out, err := ShareManyPacked(context.Background(), nil, 7, 16, 4); err != nil || out != nil {
		t.Fatalf("empty batch: (%v, %v)", out, err)
	}
	_, err := ShareManyPacked(context.Background(), [][]field.Element{field.MustRandomVec(1), field.MustRandomVec(9)}, 7, 16, 4)
	if err == nil || !strings.Contains(err.Error(), "entry 1") {
		t.Fatalf("oversized entry: %v, want batch-indexed parameter error", err)
	}
}

// TestReconstructManyPacked checks the batch reconstruction API against
// per-entry ReconstructPacked and batch-indexed error propagation.
func TestReconstructManyPacked(t *testing.T) {
	const d, k, n = 5, 3, 8
	batch := make([][]Share, 6)
	secrets := make([][]field.Element, len(batch))
	for b := range batch {
		secrets[b] = field.MustRandomVec(k)
		shares, err := SharePacked(secrets[b], d, n)
		if err != nil {
			t.Fatal(err)
		}
		batch[b] = shares
	}
	for _, workers := range []int{1, 3} {
		out, err := ReconstructManyPacked(context.Background(), batch, d, k, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for b := range batch {
			if !field.EqualVec(out[b], secrets[b]) {
				t.Fatalf("workers=%d entry %d: got %v, want %v", workers, b, out[b], secrets[b])
			}
		}
	}
	// Corrupt one entry: the error must identify it and wrap the sentinel.
	batch[4][n-1].Value = batch[4][n-1].Value.Add(field.One)
	_, err := ReconstructManyPacked(context.Background(), batch, d, k, 1)
	if !errors.Is(err, ErrInconsistentShares) || !strings.Contains(err.Error(), "entry 4") {
		t.Fatalf("corrupted batch entry: %v", err)
	}
	if out, err := ReconstructManyPacked(context.Background(), nil, d, k, 2); err != nil || out != nil {
		t.Fatalf("empty batch: (%v, %v)", out, err)
	}
}
