package sharing

import (
	"errors"
	"fmt"

	"yosompc/internal/field"
	"yosompc/internal/poly"
)

// Robust reconstruction via Berlekamp–Welch decoding: recover a degree-d
// sharing from shares of which up to e are adversarially WRONG, without
// knowing which — Reed–Solomon error correction over the share points.
// This is the information-theoretic route to guaranteed output delivery
// (the paper's conclusion asks about the IT setting; the computational
// protocol instead filters shares by NIZK verification). It needs
//
//	len(shares) ≥ d + 2e + 1,
//
// so with packed degree d = t+2(k−1) and e = t wrong shares the committee
// must satisfy n ≥ 3t + 2(k−1) + 1 — a strictly smaller packing budget
// than the proof-based route, which is exactly the trade-off the
// benchmarks quantify.

// ErrDecodingFailed is returned when no degree-d polynomial is consistent
// with the shares under the error budget.
var ErrDecodingFailed = errors.New("sharing: Berlekamp-Welch decoding failed")

// ReconstructRobust recovers the k packed secrets from shares of a
// degree-d sharing, tolerating up to maxErrors corrupted share values.
func ReconstructRobust(shares []Share, d, k, maxErrors int) ([]field.Element, error) {
	if maxErrors < 0 {
		return nil, fmt.Errorf("sharing: negative error budget %d", maxErrors)
	}
	if maxErrors == 0 {
		return ReconstructPacked(shares, d, k)
	}
	need := d + 2*maxErrors + 1
	if len(shares) < need {
		return nil, fmt.Errorf("%w: have %d shares, need %d for degree %d with %d errors",
			ErrNotEnoughShares, len(shares), need, d, maxErrors)
	}
	f, err := berlekampWelch(shares[:need], d, maxErrors)
	if err != nil {
		return nil, err
	}
	// Consistency check: the decoded polynomial must match all but at
	// most maxErrors of ALL provided shares.
	wrong := 0
	for _, s := range shares {
		if f.Eval(ShareIndexPoint(s.Index)) != s.Value { //yosolint:vartime reconstruction-side consistency check: the decoder holds >= d+1 shares and learns the secrets anyway
			wrong++
		}
	}
	if wrong > maxErrors {
		return nil, fmt.Errorf("%w: decoded polynomial conflicts with %d shares", ErrDecodingFailed, wrong)
	}
	secrets := make([]field.Element, k)
	for j := 0; j < k; j++ {
		secrets[j] = f.Eval(SlotPoint(j))
	}
	return secrets, nil
}

// berlekampWelch finds the unique degree ≤ d polynomial agreeing with all
// but ≤ e of the given points. It solves for E(x) (monic, degree e) and
// Q(x) (degree ≤ d+e) with Q(x_i) = y_i·E(x_i) for all i, then f = Q/E.
func berlekampWelch(shares []Share, d, e int) (poly.Polynomial, error) {
	n := len(shares)
	// Unknowns: e coefficients of E (E monic: E = x^e + Σ e_j x^j) and
	// d+e+1 coefficients of Q — total d+2e+1 = n unknowns, n equations.
	cols := d + 2*e + 1
	if n != cols {
		return poly.Polynomial{}, fmt.Errorf("sharing: BW needs exactly %d shares, got %d", cols, n)
	}
	// Row i: Σ_j e_j·(y_i·x_i^j) − Σ_l q_l·x_i^l = −y_i·x_i^e.
	m := make([][]field.Element, n)
	rhs := make([]field.Element, n)
	for i, s := range shares {
		x := ShareIndexPoint(s.Index)
		y := s.Value
		row := make([]field.Element, cols)
		xp := field.One
		for j := 0; j < e; j++ { // E coefficients (unknowns 0..e-1)
			row[j] = y.Mul(xp)
			xp = xp.Mul(x)
		}
		// xp = x^e now.
		rhs[i] = y.Mul(xp).Neg()
		xq := field.One
		for l := 0; l <= d+e; l++ { // Q coefficients (unknowns e..e+d+e)
			row[e+l] = xq.Neg()
			xq = xq.Mul(x)
		}
		m[i] = row
	}
	sol, err := solveLinearSystem(m, rhs) //yosolint:vartime BW decoding runs at reconstruction where the decoder learns the secrets; elimination pivoting is data-dependent by nature
	if err != nil {
		return poly.Polynomial{}, fmt.Errorf("%w: %v", ErrDecodingFailed, err)
	}
	eCoeffs := append([]field.Element{}, sol[:e]...)
	eCoeffs = append(eCoeffs, field.One)    // monic x^e
	ePoly := poly.New(eCoeffs)              //yosolint:vartime reconstruction-side: trims trailing zeros of the decoded error locator
	qPoly := poly.New(sol[e:])              //yosolint:vartime reconstruction-side: trims trailing zeros of the decoded Q polynomial
	f, rem, err := polyDivide(qPoly, ePoly) //yosolint:vartime reconstruction-side polynomial division of decoded values
	if err != nil {
		return poly.Polynomial{}, err
	}
	if !rem.IsZero() {
		return poly.Polynomial{}, fmt.Errorf("%w: E does not divide Q", ErrDecodingFailed)
	}
	if f.Degree() > d {
		return poly.Polynomial{}, fmt.Errorf("%w: quotient degree %d > %d", ErrDecodingFailed, f.Degree(), d)
	}
	return f, nil
}

// solveLinearSystem solves m·x = rhs by Gaussian elimination with partial
// pivoting over F_p. Under-determined systems pick the all-zero value for
// free variables (valid for BW: any solution yields the same f = Q/E).
func solveLinearSystem(m [][]field.Element, rhs []field.Element) ([]field.Element, error) {
	n := len(m)
	if n == 0 {
		return nil, nil
	}
	cols := len(m[0])
	row := 0
	pivotCol := make([]int, 0, cols)
	for col := 0; col < cols && row < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := row; r < n; r++ {
			if !m[r][col].IsZero() {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			continue
		}
		m[row], m[pivot] = m[pivot], m[row]
		rhs[row], rhs[pivot] = rhs[pivot], rhs[row]
		inv := m[row][col].MustInv()
		for c := col; c < cols; c++ {
			m[row][c] = m[row][c].Mul(inv)
		}
		rhs[row] = rhs[row].Mul(inv)
		for r := 0; r < n; r++ {
			if r == row || m[r][col].IsZero() {
				continue
			}
			factor := m[r][col]
			for c := col; c < cols; c++ {
				m[r][c] = m[r][c].Sub(factor.Mul(m[row][c]))
			}
			rhs[r] = rhs[r].Sub(factor.Mul(rhs[row]))
		}
		pivotCol = append(pivotCol, col)
		row++
	}
	// Check consistency of the remaining rows.
	for r := row; r < n; r++ {
		if !rhs[r].IsZero() {
			return nil, errors.New("inconsistent system")
		}
	}
	out := make([]field.Element, cols)
	for r, col := range pivotCol {
		out[col] = rhs[r]
	}
	return out, nil
}

// polyDivide returns (q, r) with a = q·b + r, deg r < deg b.
func polyDivide(a, b poly.Polynomial) (q, r poly.Polynomial, err error) {
	if b.IsZero() {
		return poly.Polynomial{}, poly.Polynomial{}, errors.New("sharing: division by zero polynomial")
	}
	rc := a.Coefficients()
	bc := b.Coefficients()
	db := len(bc) - 1
	lcInv := bc[db].MustInv()
	var qc []field.Element
	for len(rc) >= len(bc) {
		shift := len(rc) - len(bc)
		factor := rc[len(rc)-1].Mul(lcInv)
		if len(qc) < shift+1 {
			grown := make([]field.Element, shift+1)
			copy(grown, qc)
			qc = grown
		}
		qc[shift] = qc[shift].Add(factor)
		for i := 0; i <= db; i++ {
			rc[shift+i] = rc[shift+i].Sub(factor.Mul(bc[i]))
		}
		// Trim the (now zero) leading term and any new zero leaders.
		end := len(rc) - 1
		for end >= 0 && rc[end].IsZero() {
			end--
		}
		rc = rc[:end+1]
	}
	return poly.New(qc), poly.New(rc), nil
}
