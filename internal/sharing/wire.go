package sharing

import (
	"encoding"
	"fmt"
	"io"

	"yosompc/internal/field"
	"yosompc/internal/wire"
)

// Binary codec for shares and packed share vectors. Layout (big-endian):
//
//	Share:    u32 index | 8-byte element           (12 bytes)
//	ShareVec: u32 count | count × Share            (4 + 12·count bytes)
//
// See docs/WIRE.md.

// ShareEncodedSize is the fixed encoded size of one Share.
const ShareEncodedSize = 4 + field.ElementSize

// AppendShare appends the 12-byte encoding of sh.
func AppendShare(dst []byte, sh Share) []byte {
	dst = wire.AppendUint32(dst, uint32(sh.Index))
	return sh.Value.AppendBytes(dst)
}

// ShareFromBytes decodes one Share, returning the remainder.
func ShareFromBytes(data []byte) (Share, []byte, error) {
	idx, rest, err := wire.Uint32(data)
	if err != nil {
		return Share{}, nil, err
	}
	if len(rest) < field.ElementSize {
		return Share{}, nil, fmt.Errorf("%w: truncated share value", wire.ErrMalformed)
	}
	v, err := field.FromBytes(rest[:field.ElementSize])
	if err != nil {
		return Share{}, nil, err
	}
	return Share{Index: int(idx), Value: v}, rest[field.ElementSize:], nil
}

// ShareVec is a packed share vector — one row of a committee's sharing —
// with the standard binary-codec interfaces.
type ShareVec []Share

// EncodedSize returns the exact encoded length in bytes.
func (v ShareVec) EncodedSize() int { return 4 + len(v)*ShareEncodedSize }

// MarshalBinary implements encoding.BinaryMarshaler.
func (v ShareVec) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, v.EncodedSize())
	out = wire.AppendUint32(out, uint32(len(v)))
	for _, sh := range v {
		out = AppendShare(out, sh)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The encoding must
// consume the whole buffer.
func (v *ShareVec) UnmarshalBinary(data []byte) error {
	count, rest, err := wire.Uint32(data)
	if err != nil {
		return err
	}
	if uint64(count)*ShareEncodedSize > wire.MaxLen {
		return fmt.Errorf("%w: share count %d exceeds limit", wire.ErrMalformed, count)
	}
	if len(rest) != int(count)*ShareEncodedSize {
		return fmt.Errorf("%w: %d shares need %d bytes, have %d",
			wire.ErrMalformed, count, int(count)*ShareEncodedSize, len(rest))
	}
	out := make(ShareVec, count)
	for i := range out {
		out[i], rest, err = ShareFromBytes(rest)
		if err != nil {
			return fmt.Errorf("share %d: %w", i, err)
		}
	}
	*v = out
	return nil
}

// WriteTo implements io.WriterTo.
func (v ShareVec) WriteTo(w io.Writer) (int64, error) {
	return wire.WriteBinary(w, v)
}

// ReadFrom implements io.ReaderFrom.
func (v *ShareVec) ReadFrom(r io.Reader) (int64, error) {
	count, n, err := wire.ReadUint32(r)
	if err != nil {
		return int64(n), err
	}
	if uint64(count)*ShareEncodedSize > wire.MaxLen {
		return int64(n), fmt.Errorf("%w: share count %d exceeds limit", wire.ErrMalformed, count)
	}
	buf := make([]byte, int(count)*ShareEncodedSize)
	m, err := io.ReadFull(r, buf)
	n += m
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return int64(n), err
	}
	out := make(ShareVec, count)
	for i := range out {
		out[i], buf, err = ShareFromBytes(buf)
		if err != nil {
			return int64(n), fmt.Errorf("share %d: %w", i, err)
		}
	}
	*v = out
	return int64(n), nil
}

var (
	_ encoding.BinaryMarshaler   = ShareVec(nil)
	_ encoding.BinaryUnmarshaler = (*ShareVec)(nil)
	_ io.WriterTo                = ShareVec(nil)
	_ io.ReaderFrom              = (*ShareVec)(nil)
)
