package sharing

import (
	"math/rand"
	"testing"

	"yosompc/internal/field"
)

func corrupt(shares []Share, idx []int, rng *rand.Rand) []Share {
	out := make([]Share, len(shares))
	copy(out, shares)
	for _, i := range idx {
		out[i].Value = out[i].Value.Add(field.New(uint64(rng.Int63n(1<<40) + 1)))
	}
	return out
}

func TestRobustNoErrors(t *testing.T) {
	secrets := secretsOf(1, 2, 3)
	const d, n = 6, 15
	shares, err := SharePacked(secrets, d, n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReconstructRobust(shares, d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, secrets) {
		t.Errorf("got %v, want %v", got, secrets)
	}
}

func TestRobustCorrectsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	secrets := secretsOf(10, 20, 30)
	const k = 3
	for _, tc := range []struct{ d, n, e int }{
		{4, 13, 2}, // d + 2e + 1 = 9 ≤ 13
		{6, 15, 4}, // 15 exactly
		{2, 20, 6}, // lots of redundancy (k clipped to d+1 below)
	} {
		kk := k
		if kk > tc.d+1 {
			kk = tc.d + 1
		}
		shares, err := SharePacked(secrets[:kk], tc.d, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt e random positions.
		idx := rng.Perm(tc.n)[:tc.e]
		bad := corrupt(shares, idx, rng)
		got, err := ReconstructRobust(bad, tc.d, kk, tc.e)
		if err != nil {
			t.Fatalf("d=%d n=%d e=%d: %v", tc.d, tc.n, tc.e, err)
		}
		if !field.EqualVec(got, secrets[:kk]) {
			t.Errorf("d=%d n=%d e=%d: got %v, want %v", tc.d, tc.n, tc.e, got, secrets[:kk])
		}
	}
}

func TestRobustDetectsBudgetExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	secrets := secretsOf(7)
	const d, n, e = 3, 10, 2
	shares, err := SharePacked(secrets, d, n)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt e+2 positions but claim budget e: decoding must not return
	// a wrong value silently. (It may occasionally still decode correctly
	// if corruption lands outside the decoding window; re-check output.)
	bad := corrupt(shares, rng.Perm(n)[:e+2], rng)
	got, err := ReconstructRobust(bad, d, 1, e)
	if err == nil && got[0] != secrets[0] {
		t.Errorf("decoded wrong secret %v silently", got[0])
	}
}

func TestRobustTooFewShares(t *testing.T) {
	secrets := secretsOf(1)
	shares, err := SharePacked(secrets, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	// d + 2e + 1 = 3 + 4 + 1 = 8 > 6.
	if _, err := ReconstructRobust(shares, 3, 1, 2); err == nil {
		t.Error("accepted too few shares for the error budget")
	}
	if _, err := ReconstructRobust(shares, 3, 1, -1); err == nil {
		t.Error("accepted negative error budget")
	}
}

func TestRobustMatchesProofFilteredReconstruction(t *testing.T) {
	// The computational protocol filters t malicious shares by proofs and
	// interpolates; the IT route decodes them out. Same result.
	rng := rand.New(rand.NewSource(77))
	secrets := secretsOf(4, 5, 6)
	const d, n, e = 6, 19, 3 // 6 + 6 + 1 = 13 ≤ 19
	shares, err := SharePacked(secrets, d, n)
	if err != nil {
		t.Fatal(err)
	}
	badIdx := rng.Perm(n)[:e]
	bad := corrupt(shares, badIdx, rng)

	robust, err := ReconstructRobust(bad, d, 3, e)
	if err != nil {
		t.Fatal(err)
	}
	// Proof-filtered route: drop the known-bad shares.
	isBad := map[int]bool{}
	for _, i := range badIdx {
		isBad[i] = true
	}
	var filtered []Share
	for i, s := range bad {
		if !isBad[i] {
			filtered = append(filtered, s)
		}
	}
	viaProofs, err := ReconstructPacked(filtered[:d+1], d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(robust, viaProofs) {
		t.Errorf("robust %v != proof-filtered %v", robust, viaProofs)
	}
}

func TestRobustStress(t *testing.T) {
	// Many random (d, e, corruption pattern) combinations.
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(5)
		e := rng.Intn(4)
		n := d + 2*e + 1 + rng.Intn(4)
		k := 1 + rng.Intn(d+1)
		if k > d+1 {
			k = d + 1
		}
		secrets := make([]field.Element, k)
		for i := range secrets {
			secrets[i] = field.New(uint64(rng.Int63n(1 << 40)))
		}
		shares, err := SharePacked(secrets, d, n)
		if err != nil {
			t.Fatal(err)
		}
		bad := corrupt(shares, rng.Perm(n)[:e], rng)
		got, err := ReconstructRobust(bad, d, k, e)
		if err != nil {
			t.Fatalf("trial %d (d=%d n=%d e=%d k=%d): %v", trial, d, n, e, k, err)
		}
		if !field.EqualVec(got, secrets) {
			t.Errorf("trial %d: wrong secrets", trial)
		}
	}
}

func BenchmarkRobustReconstruct(b *testing.B) {
	secrets := field.MustRandomVec(4)
	const d, n, e = 10, 27, 8
	shares, err := SharePacked(secrets, d, n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	bad := corrupt(shares, rng.Perm(n)[:e], rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructRobust(bad, d, 4, e); err != nil {
			b.Fatal(err)
		}
	}
}
