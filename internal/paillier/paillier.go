// Package paillier implements the Paillier additively homomorphic
// encryption scheme over math/big, including the safe-prime key variant
// required by the threshold extension in package tte.
//
// Ciphertexts encrypt messages m ∈ Z_N as c = (1+N)^m · r^N mod N².
// The scheme is additively homomorphic: multiplying ciphertexts adds
// plaintexts, and exponentiation by a scalar multiplies the plaintext.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// ErrDecryption is returned when a ciphertext fails structural checks.
var ErrDecryption = errors.New("paillier: decryption failed")

// ErrMessageRange is returned when a plaintext is outside [0, N).
var ErrMessageRange = errors.New("paillier: message out of range")

// PublicKey is a Paillier public key.
type PublicKey struct {
	// N is the modulus p·q.
	N *big.Int
	// N2 is N², cached.
	N2 *big.Int
}

// PrivateKey is a Paillier private key. For safe-prime keys, M = p'·q'
// (with p = 2p'+1, q = 2q'+1) is populated; it is the order component used
// by the threshold extension.
type PrivateKey struct {
	PublicKey
	// P and Q are the prime factors of N.
	P, Q *big.Int
	// Lambda is lcm(P-1, Q-1).
	Lambda *big.Int
	// Mu is Lambda^{-1} mod N.
	Mu *big.Int
	// M is p'·q' for safe-prime keys, nil otherwise.
	M *big.Int
}

// Ciphertext is a Paillier ciphertext, an element of Z*_{N²}.
type Ciphertext struct {
	// C is the ciphertext value in [0, N²).
	C *big.Int
}

// GenerateKey creates a Paillier key with a modulus of the given bit length
// from two random primes. Keys produced this way support Enc/Dec and the
// homomorphic operations but not the threshold extension.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("paillier: modulus of %d bits is too small", bits)
	}
	p, err := rand.Prime(random, bits/2)
	if err != nil {
		return nil, fmt.Errorf("paillier: generating p: %w", err)
	}
	q, err := rand.Prime(random, bits-bits/2)
	if err != nil {
		return nil, fmt.Errorf("paillier: generating q: %w", err)
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("paillier: p == q")
	}
	return keyFromPrimes(p, q, nil)
}

// GenerateSafeKey creates a key whose factors are safe primes p = 2p'+1,
// q = 2q'+1. Safe primes make Z*_{N²} have the clean group structure that
// the Shoup-style threshold decryption in package tte relies on. Safe-prime
// search is expensive; tests should prefer FixedTestKey.
func GenerateSafeKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("paillier: modulus of %d bits is too small", bits)
	}
	p, pp, err := safePrime(random, bits/2)
	if err != nil {
		return nil, err
	}
	for {
		q, qp, err := safePrime(random, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) != 0 {
			m := new(big.Int).Mul(pp, qp)
			return keyFromPrimes(p, q, m)
		}
	}
}

// safePrime returns a safe prime sp = 2p'+1 of the given bit length along
// with p'.
func safePrime(random io.Reader, bits int) (sp, sophie *big.Int, err error) {
	for {
		p, err := rand.Prime(random, bits-1)
		if err != nil {
			return nil, nil, fmt.Errorf("paillier: generating safe prime: %w", err)
		}
		cand := new(big.Int).Lsh(p, 1)
		cand.Add(cand, one)
		if cand.ProbablyPrime(30) {
			return cand, p, nil
		}
	}
}

// NewKeyFromSafePrimes assembles a key from externally supplied safe primes.
// Both arguments must be safe primes; this is checked probabilistically.
func NewKeyFromSafePrimes(p, q *big.Int) (*PrivateKey, error) {
	pp := sophieOf(p)
	qp := sophieOf(q)
	if pp == nil || qp == nil {
		return nil, errors.New("paillier: supplied primes are not safe primes")
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("paillier: p == q")
	}
	return keyFromPrimes(p, q, new(big.Int).Mul(pp, qp))
}

func sophieOf(p *big.Int) *big.Int {
	if !p.ProbablyPrime(30) {
		return nil
	}
	s := new(big.Int).Sub(p, one)
	s.Rsh(s, 1)
	if !s.ProbablyPrime(30) {
		return nil
	}
	return s
}

func keyFromPrimes(p, q, m *big.Int) (*PrivateKey, error) {
	n := new(big.Int).Mul(p, q)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
	lambda := new(big.Int).Mul(pm1, qm1)
	lambda.Div(lambda, gcd)
	mu := new(big.Int).ModInverse(lambda, n)
	if mu == nil {
		return nil, errors.New("paillier: lambda not invertible mod N")
	}
	return &PrivateKey{
		PublicKey: PublicKey{N: n, N2: new(big.Int).Mul(n, n)},
		P:         p, Q: q,
		Lambda: lambda,
		Mu:     mu,
		M:      m,
	}, nil
}

// RandomUnit samples r uniformly from Z*_N.
func (pk *PublicKey) RandomUnit(random io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: sampling unit: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Encrypt encrypts m ∈ [0, N) with fresh randomness.
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	r, err := pk.RandomUnit(random)
	if err != nil {
		return nil, err
	}
	return pk.EncryptWithNonce(m, r)
}

// EncryptWithNonce encrypts m with the caller-supplied randomness r ∈ Z*_N.
// Exposing the nonce is needed by the NIZK layer, whose sigma protocols
// prove knowledge of (m, r).
func (pk *PublicKey) EncryptWithNonce(m, r *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		// The message itself stays out of the error: callers wrap errors
		// into logs and board posts, and m is plaintext.
		return nil, fmt.Errorf("%w: message outside [0, N)", ErrMessageRange)
	}
	// (1+N)^m = 1 + mN mod N².
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// Decrypt recovers the plaintext of c: m = L(c^λ mod N²)·μ mod N, where
// L(x) = (x-1)/N. It runs on the CRT engine path (crt.go), which is
// bit-identical for every unit ciphertext; DecryptNaive keeps the
// single-exponentiation reference.
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	return sk.DecryptCRT(c)
}

// DecryptNaive is the retained naive reference for Decrypt: one
// exponentiation by λ modulo N². The differential tests pin DecryptCRT
// to it bit-for-bit on unit ciphertexts.
func (sk *PrivateKey) DecryptNaive(c *Ciphertext) (*big.Int, error) {
	if err := sk.checkCiphertext(c); err != nil {
		return nil, err
	}
	u := new(big.Int).Exp(c.C, sk.Lambda, sk.N2)
	m := sk.lFunc(u)
	m.Mul(m, sk.Mu)
	m.Mod(m, sk.N)
	return m, nil
}

// lFunc computes L(x) = (x-1)/N, valid for x ≡ 1 (mod N).
func (sk *PrivateKey) lFunc(x *big.Int) *big.Int {
	l := new(big.Int).Sub(x, one)
	return l.Div(l, sk.N)
}

func (sk *PrivateKey) checkCiphertext(c *Ciphertext) error {
	if c == nil || c.C == nil || c.C.Sign() <= 0 || c.C.Cmp(sk.N2) >= 0 {
		return fmt.Errorf("%w: malformed ciphertext", ErrDecryption)
	}
	return nil
}

// Add returns a ciphertext encrypting the sum of the two plaintexts.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// ScalarMul returns a ciphertext encrypting s·m where m is a's plaintext.
// Negative scalars are supported via modular inversion of the ciphertext.
func (pk *PublicKey) ScalarMul(a *Ciphertext, s *big.Int) *Ciphertext {
	base := a.C
	exp := s
	if s.Sign() < 0 {
		base = new(big.Int).ModInverse(a.C, pk.N2)
		exp = new(big.Int).Neg(s)
	}
	c := new(big.Int).Exp(base, exp, pk.N2)
	return &Ciphertext{C: c}
}

// AddPlain returns a ciphertext encrypting m_a + s for public s.
func (pk *PublicKey) AddPlain(a *Ciphertext, s *big.Int) *Ciphertext {
	gs := new(big.Int).Mod(s, pk.N)
	gs.Mul(gs, pk.N)
	gs.Add(gs, one)
	gs.Mod(gs, pk.N2)
	c := gs.Mul(gs, a.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// EncryptZero returns a fresh encryption of 0, used for rerandomization.
func (pk *PublicKey) EncryptZero(random io.Reader) (*Ciphertext, error) {
	return pk.Encrypt(random, big.NewInt(0))
}

// Rerandomize multiplies c by a fresh encryption of zero.
func (pk *PublicKey) Rerandomize(random io.Reader, c *Ciphertext) (*Ciphertext, error) {
	z, err := pk.EncryptZero(random)
	if err != nil {
		return nil, err
	}
	return pk.Add(c, z), nil
}

// Clone returns a deep copy of the ciphertext.
func (c *Ciphertext) Clone() *Ciphertext {
	return &Ciphertext{C: new(big.Int).Set(c.C)}
}

// Bytes returns the minimal big-endian encoding of the ciphertext value.
func (c *Ciphertext) Bytes() []byte { return c.C.Bytes() }

// CiphertextFromBytes decodes a ciphertext produced by Bytes.
func CiphertextFromBytes(buf []byte) *Ciphertext {
	return &Ciphertext{C: new(big.Int).SetBytes(buf)}
}

// ByteLen returns the serialized length in bytes of ciphertexts under pk
// (the size of N², since ciphertexts are uniform in Z*_{N²}).
func (pk *PublicKey) ByteLen() int { return (pk.N2.BitLen() + 7) / 8 }

// PlaintextByteLen returns the maximum plaintext payload in whole bytes.
func (pk *PublicKey) PlaintextByteLen() int { return (pk.N.BitLen() - 1) / 8 }

// Equal reports whether two public keys are the same key.
func (pk *PublicKey) Equal(o *PublicKey) bool {
	return o != nil && pk.N.Cmp(o.N) == 0
}
