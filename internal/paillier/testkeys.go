package paillier

import (
	"fmt"
	"math/big"
	"sync"
)

// Pre-generated safe primes used by FixedTestKey. Safe-prime search is slow
// (seconds per prime), so tests and examples reuse these fixed values. They
// provide no security and must never be used outside tests/demos; production
// callers use GenerateSafeKey.
var fixedSafePrimes256 = []string{
	"d006bd49c255169d4f92bfae81a522de8540ee3ae0f5ed8cd3f2e7df5c7a1003",
	"f3451b709acc60893072b8e6ad0c66c2a471246dc28ed6c329524da1ed7ef953",
	"ffeb9a4706f48b1d26dc540ea34d6ac72f6d841cda2fbf7aae77b0ab1ad82267",
	"d002c8a7ed152176dbf20e07b6c7409c1b09666f643660ea54e06c57fa7b4817",
	"e535413c60fb13efddb642f6b0390bffb0468855a02410de227e9dcd85ba2c1f",
	"cb6f42ab27cda4bc53f747afe580d55fe2a32dcf46ee19141ca635a11622d22f",
	"e18be9a8c063c41f34c9aa11f97d91a58833384b860f1490e66a13d890ab51a7",
	"f4bd2d3b26dbb8bda32d9bb6cfb7a2c9c3b7cfddc5c646b26206c294c6ee28bf",
}

var fixedSafePrimes384 = []string{
	"cac00c87a4612bebe56131d1133f978dba3b4c89df8814eb899cbc875f6aa1be9398dd3f145d5148ce38354391a98813",
	"cae5d4cef7a63d94d7e5f7c4365ea6f6fa9687bd10101d1f015ceccd23c840d505207b7d630e843c049571dba688f9f7",
	"e0fb1cad46ffe27b91d49f3858c99b4dfdf0513194ec7f185a04f5c2ebdb9b13ef3e07d54319176354d5a021d95f6897",
	"cc6ad26d65233c08601e7d6bef91a1511d76d16ea4968b00e67504d8bbac8ecac28fc1c907926ef8ac6851026006da93",
}

var fixedSafePrimes1024 = []string{
	"e5ad3c6f9c04d7c5b1cac6094d6d6acd768cfd24c36569b22d59480f5a995175dd64c9f97662fa0e5a82051953f9616457be79455d005ead91759bc62ef3913caa49351544b79622d53cdbf8ed858262bd33623b2a6572f23090c36669c38aec08b546aa39470ad0f979a2c8487310631ed8011ce6366442e78efb00900c3433",
	"f90ed59e24b01f3093f348d7c36fabb044c6916439dc5957f15788d4f59efd440ec2de346619c015164a411dcf103fb532fdddec1671b5bc0a745f3e620b7b70cb2469b7b7f20cbdc579ed6774f97c7dc1b9be4fd2481a4fd98617ca62f0036de73530a7adf09001c9220bc41a392b3366ae4127600547c731a19ce0d3a653cb",
}

var (
	fixedKeyMu    sync.Mutex
	fixedKeyCache = map[int]*PrivateKey{}
)

// NumFixedTestKeys is the number of distinct 512-bit fixed test keys.
const NumFixedTestKeys = 4

// FixedTestKey returns the i-th deterministic 512-bit safe-prime key
// (i in [0, NumFixedTestKeys)). FOR TESTS AND DEMOS ONLY.
func FixedTestKey(i int) *PrivateKey {
	if i < 0 || i >= NumFixedTestKeys {
		panic(fmt.Sprintf("paillier: fixed test key index %d out of range", i))
	}
	fixedKeyMu.Lock()
	defer fixedKeyMu.Unlock()
	if k, ok := fixedKeyCache[i]; ok {
		return k
	}
	p := mustHex(fixedSafePrimes256[2*i])
	q := mustHex(fixedSafePrimes256[2*i+1])
	k, err := NewKeyFromSafePrimes(p, q)
	if err != nil {
		panic(fmt.Sprintf("paillier: fixed test key %d: %v", i, err))
	}
	fixedKeyCache[i] = k
	return k
}

// FixedTestKey768 returns the i-th deterministic 768-bit safe-prime key
// (i in {0, 1}). FOR TESTS AND DEMOS ONLY.
func FixedTestKey768(i int) *PrivateKey {
	if i < 0 || i >= 2 {
		panic(fmt.Sprintf("paillier: fixed 768-bit test key index %d out of range", i))
	}
	fixedKeyMu.Lock()
	defer fixedKeyMu.Unlock()
	idx := 100 + i
	if k, ok := fixedKeyCache[idx]; ok {
		return k
	}
	p := mustHex(fixedSafePrimes384[2*i])
	q := mustHex(fixedSafePrimes384[2*i+1])
	k, err := NewKeyFromSafePrimes(p, q)
	if err != nil {
		panic(fmt.Sprintf("paillier: fixed 768-bit test key %d: %v", i, err))
	}
	fixedKeyCache[idx] = k
	return k
}

// FixedTestKey2048 returns a deterministic 2048-bit safe-prime key, the
// production-representative modulus size the hot-path benchmarks
// measure at. FOR TESTS AND BENCHMARKS ONLY.
func FixedTestKey2048() *PrivateKey {
	fixedKeyMu.Lock()
	defer fixedKeyMu.Unlock()
	const idx = 200
	if k, ok := fixedKeyCache[idx]; ok {
		return k
	}
	p := mustHex(fixedSafePrimes1024[0])
	q := mustHex(fixedSafePrimes1024[1])
	k, err := NewKeyFromSafePrimes(p, q)
	if err != nil {
		panic(fmt.Sprintf("paillier: fixed 2048-bit test key: %v", err))
	}
	fixedKeyCache[idx] = k
	return k
}

func mustHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("paillier: bad embedded prime constant")
	}
	return v
}
