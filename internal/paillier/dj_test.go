package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func djKey(t testing.TB, s int) *DJKey {
	t.Helper()
	k, err := NewDJKey(FixedTestKey(1), s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDJDegreeOneMatchesPaillier(t *testing.T) {
	k := djKey(t, 1)
	m := big.NewInt(123456789)
	c, err := k.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	// A degree-1 DJ ciphertext is a plain Paillier ciphertext.
	got, err := k.Base.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Errorf("base decrypt = %v, want %v", got, m)
	}
	got, err = k.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Errorf("DJ decrypt = %v, want %v", got, m)
	}
}

func TestDJRoundTripHigherDegrees(t *testing.T) {
	for _, s := range []int{2, 3, 4} {
		k := djKey(t, s)
		msgs := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			new(big.Int).Sub(k.Base.N, big.NewInt(3)),         // > N^{s-1} regions
			new(big.Int).Rsh(k.Ns, 1),                         // huge: N^s / 2
			new(big.Int).Sub(k.MaxPlaintext(), big.NewInt(0)), // N^s − 1
		}
		for _, m := range msgs {
			c, err := k.Encrypt(rand.Reader, m)
			if err != nil {
				t.Fatalf("s=%d Encrypt(%v): %v", s, m, err)
			}
			got, err := k.Decrypt(c)
			if err != nil {
				t.Fatalf("s=%d Decrypt: %v", s, err)
			}
			if got.Cmp(m) != 0 {
				t.Errorf("s=%d: round trip got %v, want %v", s, got, m)
			}
		}
	}
}

func TestDJHomomorphism(t *testing.T) {
	k := djKey(t, 2)
	// Messages larger than N — impossible under plain Paillier.
	a := new(big.Int).Add(k.Base.N, big.NewInt(12345))
	b := new(big.Int).Lsh(k.Base.N, 1)
	ca, err := k.Encrypt(rand.Reader, a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := k.Encrypt(rand.Reader, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Decrypt(k.Add(ca, cb))
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Add(a, b)
	if got.Cmp(want) != 0 {
		t.Errorf("Enc(a)+Enc(b) = %v, want %v", got, want)
	}
	got, err = k.Decrypt(k.ScalarMul(ca, big.NewInt(1000)))
	if err != nil {
		t.Fatal(err)
	}
	want = new(big.Int).Mul(a, big.NewInt(1000))
	if got.Cmp(want) != 0 {
		t.Errorf("1000·Enc(a) = %v, want %v", got, want)
	}
}

func TestDJScalarMulNegative(t *testing.T) {
	k := djKey(t, 2)
	c, err := k.Encrypt(rand.Reader, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Decrypt(k.ScalarMul(c, big.NewInt(-2)))
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Sub(k.Ns, big.NewInt(14))
	if got.Cmp(want) != 0 {
		t.Errorf("-2·Enc(7) = %v, want N^s−14", got)
	}
}

func TestDJRerandomize(t *testing.T) {
	k := djKey(t, 2)
	c, err := k.Encrypt(rand.Reader, big.NewInt(55))
	if err != nil {
		t.Fatal(err)
	}
	r, err := k.Rerandomize(rand.Reader, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.C.Cmp(c.C) == 0 {
		t.Error("rerandomization did not change ciphertext")
	}
	got, err := k.Decrypt(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(55)) != 0 {
		t.Errorf("rerandomized decrypts to %v", got)
	}
}

func TestDJValidation(t *testing.T) {
	if _, err := NewDJKey(FixedTestKey(1), 0); err == nil {
		t.Error("accepted s=0")
	}
	if _, err := NewDJKey(nil, 1); err == nil {
		t.Error("accepted nil base key")
	}
	k := djKey(t, 2)
	if _, err := k.Encrypt(rand.Reader, big.NewInt(-1)); err == nil {
		t.Error("accepted negative message")
	}
	if _, err := k.Encrypt(rand.Reader, k.Ns); err == nil {
		t.Error("accepted message == N^s")
	}
	if _, err := k.Decrypt(&Ciphertext{C: big.NewInt(0)}); err == nil {
		t.Error("accepted zero ciphertext")
	}
	if _, err := k.Decrypt(nil); err == nil {
		t.Error("accepted nil ciphertext")
	}
}

func TestDJDLogDirect(t *testing.T) {
	k := djKey(t, 3)
	onePlusN := new(big.Int).Add(k.Base.N, big.NewInt(1))
	for _, i := range []*big.Int{big.NewInt(0), big.NewInt(42), new(big.Int).Rsh(k.Ns, 2)} {
		a := new(big.Int).Exp(onePlusN, i, k.Ns1)
		got, err := k.DLogOnePlusN(a)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(i) != 0 {
			t.Errorf("dLog((1+N)^%v) = %v", i, got)
		}
	}
}

func TestDJByteLen(t *testing.T) {
	k1 := djKey(t, 1)
	k3 := djKey(t, 3)
	if k3.ByteLen() <= k1.ByteLen() {
		t.Error("degree-3 ciphertexts not larger than degree-1")
	}
}

func BenchmarkDJDecryptS2(b *testing.B) {
	k, err := NewDJKey(FixedTestKey(1), 2)
	if err != nil {
		b.Fatal(err)
	}
	c, err := k.Encrypt(rand.Reader, big.NewInt(987654321))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}
