package paillier

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sync"

	"yosompc/internal/modexp"
	"yosompc/internal/parallel"
)

// The Damgård–Jurik engine paths: CRT exponentiation over the prime
// power factorization of N^{s+1} with exponent reduction modulo the
// per-prime group orders, the closed-form binomial expansion of
// (1+N)^m, and batched encryption over the shared worker pool. Every
// path here has a retained naive reference (DecryptNaive,
// EncryptWithNonceNaive, plain modexp.ExpSigned) that the differential
// tests and FuzzPaillierEngineVsNaive pin bit-for-bit.
//
// Why CRT wins: Z*_{N^{s+1}} ≅ Z*_{p^{s+1}} × Z*_{q^{s+1}}, so an
// exponentiation splits into two at half the modulus size (≈4× cheaper
// each in schoolbook terms), and on each branch the exponent reduces
// modulo the group order p^s(p−1) resp. q^s(q−1) — decisive for the
// threshold partials, whose exponents 2Δ·d_i carry log₂(n!) ≈ n·log n
// extra bits that reduction removes entirely. Garner recombination
// returns the unique residue mod N^{s+1}, which is exactly the value
// the naive path computes, so the speedup is bit-invisible.

// djState caches the degree-s CRT precomputation per DJKey.
type djState struct {
	ps1, qs1  *big.Int // p^{s+1}, q^{s+1}
	ordP      *big.Int // |Z*_{p^{s+1}}| = p^s·(p−1)
	ordQ      *big.Int // q^s·(q−1)
	qs1InvPs1 *big.Int // (q^{s+1})^{-1} mod p^{s+1}, Garner coefficient
	d         *big.Int // decryption exponent: ≡ 1 mod N^s, ≡ 0 mod λ
	dP, dQ    *big.Int // d reduced mod ordP / ordQ
	// kFactInvNs1[k] = (k!)^{-1} mod N^{s+1} for k = 1..s, the
	// closed-form binomial coefficients of (1+N)^m.
	kFactInvNs1 []*big.Int
}

var (
	djMu    sync.Mutex
	djCache = map[*DJKey]*djState{}
)

// djCRT returns the cached CRT state for k, building it on first use.
// The build runs outside djMu (it contains modular inversions that cost
// real time at production moduli); concurrent first callers may
// duplicate the work and the re-check keeps one winner — the crtState
// pattern above.
func (k *DJKey) djCRT() (*djState, error) {
	djMu.Lock()
	if st, ok := djCache[k]; ok {
		djMu.Unlock()
		return st, nil
	}
	djMu.Unlock()

	sk := k.Base
	st := &djState{}
	st.ps1 = powTo(sk.P, k.S+1)
	st.qs1 = powTo(sk.Q, k.S+1)
	st.ordP = new(big.Int).Sub(sk.P, one)
	st.ordP.Mul(st.ordP, powTo(sk.P, k.S))
	st.ordQ = new(big.Int).Sub(sk.Q, one)
	st.ordQ.Mul(st.ordQ, powTo(sk.Q, k.S))
	st.qs1InvPs1 = new(big.Int).ModInverse(st.qs1, st.ps1)
	lamInv := new(big.Int).ModInverse(sk.Lambda, k.Ns)
	if st.qs1InvPs1 == nil || lamInv == nil {
		return nil, fmt.Errorf("paillier: Damgård–Jurik CRT precomputation failed")
	}
	st.d = new(big.Int).Mul(sk.Lambda, lamInv) // ≡ 0 mod λ, ≡ 1 mod N^s
	st.dP = new(big.Int).Mod(st.d, st.ordP)
	st.dQ = new(big.Int).Mod(st.d, st.ordQ)
	st.kFactInvNs1 = make([]*big.Int, k.S+1)
	fact := big.NewInt(1)
	for i := 1; i <= k.S; i++ {
		fact.Mul(fact, big.NewInt(int64(i)))
		inv := new(big.Int).ModInverse(fact, k.Ns1)
		if inv == nil {
			return nil, fmt.Errorf("paillier: %d! not invertible mod N^{s+1}", i)
		}
		st.kFactInvNs1[i] = inv
	}

	djMu.Lock()
	defer djMu.Unlock()
	if prev, ok := djCache[k]; ok {
		return prev, nil
	}
	djCache[k] = st
	return st, nil
}

func powTo(b *big.Int, e int) *big.Int {
	r := big.NewInt(1)
	for i := 0; i < e; i++ {
		r.Mul(r, b)
	}
	return r
}

// ExpSignedCRT computes base^exp mod N^{s+1} through the CRT split,
// reducing the exponent modulo the per-prime group orders. It is
// bit-identical to modexp.ExpSigned(base, exp, k.Ns1) — including the
// not-invertible error for negative exponents on non-unit bases — and
// several times faster, more as the exponent outgrows the group order
// (the threshold partials' 2Δ·d_i case). Bases sharing a factor with N
// take the plain path, where exponent reduction would be unsound.
func (k *DJKey) ExpSignedCRT(base, exp *big.Int) (*big.Int, error) {
	st, err := k.djCRT()
	if err != nil {
		return nil, err
	}
	bp := new(big.Int).Mod(base, st.ps1)
	bq := new(big.Int).Mod(base, st.qs1)
	if new(big.Int).Mod(bp, k.Base.P).Sign() == 0 || new(big.Int).Mod(bq, k.Base.Q).Sign() == 0 {
		return modexp.ExpSigned(base, exp, k.Ns1)
	}
	// Mod is Euclidean, so a negative exponent reduces into [0, ord)
	// directly — no inversion needed on the CRT path.
	ep := new(big.Int).Mod(exp, st.ordP)
	eq := new(big.Int).Mod(exp, st.ordQ)
	xp := bp.Exp(bp, ep, st.ps1)
	xq := bq.Exp(bq, eq, st.qs1)
	return st.garner(xp, xq), nil
}

// garner recombines per-prime residues into the unique value mod
// N^{s+1}: x = xq + q^{s+1}·((xp − xq)·(q^{s+1})^{-1} mod p^{s+1}).
func (st *djState) garner(xp, xq *big.Int) *big.Int {
	diff := new(big.Int).Sub(xp, xq)
	diff.Mul(diff, st.qs1InvPs1)
	diff.Mod(diff, st.ps1)
	x := diff.Mul(diff, st.qs1)
	return x.Add(x, xq)
}

// onePlusNToM computes (1+N)^m mod N^{s+1} in closed form: the binomial
// series Σ_{k=0..s} C(m,k)·N^k truncates at k = s because N^{s+1} ≡ 0,
// and C(m,k) mod N^{s+1} = m·(m−1)···(m−k+1)·(k!)^{-1} since k! ≤ s! is
// coprime to N. That is s small multiplications in place of a full
// exponentiation by an up to s·log₂N-bit exponent. Requires m ≥ 0.
func (k *DJKey) onePlusNToM(st *djState, m *big.Int) *big.Int {
	res := big.NewInt(1)
	fall := big.NewInt(1) // falling factorial m·(m−1)···
	mRed := new(big.Int).Mod(m, k.Ns1)
	nPow := big.NewInt(1)
	t := new(big.Int)
	for kk := 1; kk <= k.S; kk++ {
		t.Sub(mRed, big.NewInt(int64(kk-1)))
		fall.Mul(fall, t)
		fall.Mod(fall, k.Ns1)
		nPow.Mul(nPow, k.Base.N)
		term := new(big.Int).Mul(fall, st.kFactInvNs1[kk])
		term.Mul(term, nPow)
		res.Add(res, term)
	}
	return res.Mod(res, k.Ns1)
}

// DecryptCRT recovers the plaintext of c with per-prime exponentiations
// and the cached decryption exponent. Bit-identical to DecryptNaive for
// every unit ciphertext (non-units fall back to the naive path inside
// ExpSignedCRT) and ≈4× faster, before counting the cached inversions.
func (k *DJKey) DecryptCRT(c *Ciphertext) (*big.Int, error) {
	if c == nil || c.C == nil || c.C.Sign() <= 0 || c.C.Cmp(k.Ns1) >= 0 {
		return nil, fmt.Errorf("%w: malformed ciphertext", ErrDecryption)
	}
	st, err := k.djCRT()
	if err != nil {
		return nil, err
	}
	bp := new(big.Int).Mod(c.C, st.ps1)
	bq := new(big.Int).Mod(c.C, st.qs1)
	var a *big.Int
	if new(big.Int).Mod(bp, k.Base.P).Sign() == 0 || new(big.Int).Mod(bq, k.Base.Q).Sign() == 0 {
		a = new(big.Int).Exp(c.C, st.d, k.Ns1)
	} else {
		xp := bp.Exp(bp, st.dP, st.ps1)
		xq := bq.Exp(bq, st.dQ, st.qs1)
		a = st.garner(xp, xq)
	}
	return k.DLogOnePlusN(a)
}

// EncryptWithNonce encrypts m with caller-supplied randomness r ∈ Z*_N
// through the engine paths: closed-form (1+N)^m plus one r^{N^s}
// exponentiation. Bit-identical to EncryptWithNonceNaive.
func (k *DJKey) EncryptWithNonce(m, r *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(k.Ns) >= 0 {
		// The message itself stays out of the error: callers wrap errors
		// into logs and board posts, and m is plaintext.
		return nil, fmt.Errorf("%w: message outside [0, N^s)", ErrMessageRange)
	}
	st, err := k.djCRT()
	if err != nil {
		return nil, err
	}
	gm := k.onePlusNToM(st, m)
	rn := new(big.Int).Exp(r, k.Ns, k.Ns1)
	c := gm.Mul(gm, rn)
	c.Mod(c, k.Ns1)
	return &Ciphertext{C: c}, nil
}

// EncryptMany encrypts a batch of messages over the shared worker pool.
// Randomness is sampled serially before any worker starts, so the
// output is bit-identical for every worker count (including the fully
// serial workers=1 path) given the same random stream.
func (k *DJKey) EncryptMany(random io.Reader, ms []*big.Int, workers int) ([]*Ciphertext, error) {
	rs := make([]*big.Int, len(ms))
	for i := range ms {
		r, err := k.Base.PublicKey.RandomUnit(random)
		if err != nil {
			return nil, err
		}
		rs[i] = r
	}
	out := make([]*Ciphertext, len(ms))
	err := parallel.For(context.Background(), workers, len(ms), func(i int) error {
		ct, err := k.EncryptWithNonce(ms[i], rs[i])
		if err != nil {
			return err
		}
		out[i] = ct
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EncryptMany encrypts a batch of plain-Paillier messages over the
// shared worker pool, with the same serial-randomness contract as
// DJKey.EncryptMany.
func (pk *PublicKey) EncryptMany(random io.Reader, ms []*big.Int, workers int) ([]*Ciphertext, error) {
	rs := make([]*big.Int, len(ms))
	for i := range ms {
		r, err := pk.RandomUnit(random)
		if err != nil {
			return nil, err
		}
		rs[i] = r
	}
	out := make([]*Ciphertext, len(ms))
	err := parallel.For(context.Background(), workers, len(ms), func(i int) error {
		ct, err := pk.EncryptWithNonce(ms[i], rs[i])
		if err != nil {
			return err
		}
		out[i] = ct
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
