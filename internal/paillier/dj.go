package paillier

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Damgård–Jurik generalization (the paper's reference [19]): plaintexts in
// Z_{N^s}, ciphertexts in Z*_{N^{s+1}},
//
//	c = (1+N)^m · r^{N^s} mod N^{s+1}.
//
// s = 1 recovers plain Paillier. Larger s enlarges the plaintext space
// without regenerating keys — which is how deployments of the protocol
// gain integer headroom for deep circuits (the homomorphic bounds in
// package tte grow with circuit depth).

// DJKey wraps a Paillier key for degree-s Damgård–Jurik operations.
type DJKey struct {
	// S is the generalization degree (plaintext space Z_{N^S}).
	S int
	// Base is the underlying Paillier key.
	Base *PrivateKey
	// Ns is N^S and Ns1 is N^(S+1), cached.
	Ns, Ns1 *big.Int
	// kFactInv caches k!^{-1} mod N^S for the dLog extraction.
	kFactInv []*big.Int
}

// ErrDJDegree rejects invalid generalization degrees.
var ErrDJDegree = errors.New("paillier: Damgård–Jurik degree must be ≥ 1")

// NewDJKey builds a degree-s view of an existing key.
func NewDJKey(base *PrivateKey, s int) (*DJKey, error) {
	if s < 1 {
		return nil, fmt.Errorf("%w: s=%d", ErrDJDegree, s)
	}
	if base == nil {
		return nil, errors.New("paillier: nil base key")
	}
	ns := new(big.Int).Set(base.N)
	for i := 1; i < s; i++ {
		ns.Mul(ns, base.N)
	}
	ns1 := new(big.Int).Mul(ns, base.N)
	k := &DJKey{S: s, Base: base, Ns: ns, Ns1: ns1}
	// Precompute k!^{-1} mod N^s for k = 2..s (dLog's inner loop).
	k.kFactInv = make([]*big.Int, s+1)
	fact := big.NewInt(1)
	for i := 2; i <= s; i++ {
		fact.Mul(fact, big.NewInt(int64(i)))
		inv := new(big.Int).ModInverse(fact, ns)
		if inv == nil {
			return nil, fmt.Errorf("paillier: %d! not invertible mod N^s", i)
		}
		k.kFactInv[i] = inv
	}
	return k, nil
}

// Encrypt encrypts m ∈ [0, N^S) with fresh randomness through the
// engine paths (closed-form message term plus one nonce
// exponentiation; see engine.go).
func (k *DJKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	r, err := k.Base.PublicKey.RandomUnit(random)
	if err != nil {
		return nil, err
	}
	return k.EncryptWithNonce(m, r)
}

// EncryptWithNonceNaive is the retained naive reference for
// EncryptWithNonce: (1+N)^m computed by a full big.Int.Exp over the up
// to s·log₂N-bit exponent m. The differential tests and
// FuzzPaillierEngineVsNaive pin the closed-form engine path to it
// bit-for-bit.
func (k *DJKey) EncryptWithNonceNaive(m, r *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(k.Ns) >= 0 {
		// The message itself stays out of the error: callers wrap errors
		// into logs and board posts, and m is plaintext.
		return nil, fmt.Errorf("%w: message outside [0, N^s)", ErrMessageRange)
	}
	onePlusN := new(big.Int).Add(k.Base.N, big.NewInt(1))
	gm := new(big.Int).Exp(onePlusN, m, k.Ns1)
	rn := new(big.Int).Exp(r, k.Ns, k.Ns1)
	c := gm.Mul(gm, rn)
	c.Mod(c, k.Ns1)
	return &Ciphertext{C: c}, nil
}

// Decrypt recovers m: c^d ≡ (1+N)^m (mod N^{s+1}) for d ≡ 1 (mod N^s),
// d ≡ 0 (mod λ), then the discrete log of (1+N)^m is extracted with the
// Damgård–Jurik recursive algorithm. It runs on the CRT engine path
// (engine.go); DecryptNaive keeps the single-exponentiation reference.
func (k *DJKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	return k.DecryptCRT(c)
}

// DecryptNaive is the retained naive reference for Decrypt: the
// decryption exponent is rebuilt per call and applied in one
// exponentiation modulo N^{s+1}.
func (k *DJKey) DecryptNaive(c *Ciphertext) (*big.Int, error) {
	if c == nil || c.C == nil || c.C.Sign() <= 0 || c.C.Cmp(k.Ns1) >= 0 {
		return nil, fmt.Errorf("%w: malformed ciphertext", ErrDecryption)
	}
	// d ≡ 1 mod N^s, d ≡ 0 mod λ via CRT (gcd(λ, N^s) = 1).
	lamInv := new(big.Int).ModInverse(k.Base.Lambda, k.Ns)
	if lamInv == nil {
		return nil, errors.New("paillier: λ not invertible mod N^s")
	}
	d := new(big.Int).Mul(k.Base.Lambda, lamInv) // ≡ 0 mod λ, ≡ 1 mod N^s
	a := new(big.Int).Exp(c.C, d, k.Ns1)
	return k.DLogOnePlusN(a)
}

// DLogOnePlusN extracts i from a = (1+N)^i mod N^{S+1} (Damgård–Jurik,
// Section 4.2). Exposed because the threshold combination in package tte
// needs the same extraction after exponent arithmetic.
func (k *DJKey) DLogOnePlusN(a *big.Int) (*big.Int, error) {
	n := k.Base.N
	i := new(big.Int)
	nPowJ := new(big.Int).Set(n) // N^j
	for j := 1; j <= k.S; j++ {
		nPowJ1 := new(big.Int).Mul(nPowJ, n) // N^{j+1}
		// t1 = L(a mod N^{j+1}) = ((a mod N^{j+1}) − 1) / N.
		t1 := new(big.Int).Mod(a, nPowJ1)
		t1.Sub(t1, big.NewInt(1))
		t1r := new(big.Int)
		t1.DivMod(t1, n, t1r)
		if t1r.Sign() != 0 {
			return nil, fmt.Errorf("%w: value is not a power of 1+N", ErrDecryption)
		}
		t2 := new(big.Int).Set(i)
		iter := new(big.Int).Set(i)
		for kk := 2; kk <= j; kk++ {
			iter.Sub(iter, big.NewInt(1))
			t2.Mul(t2, iter)
			t2.Mod(t2, nPowJ)
			// t1 -= t2 · N^{k-1} · (k!)^{-1} mod N^j
			term := new(big.Int).Exp(n, big.NewInt(int64(kk-1)), nPowJ)
			term.Mul(term, t2)
			term.Mul(term, k.kFactInv[kk])
			t1.Sub(t1, term)
			t1.Mod(t1, nPowJ)
		}
		i = t1
		nPowJ = nPowJ1
	}
	return i, nil
}

// Add returns a ciphertext of the plaintext sum.
func (k *DJKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, k.Ns1)
	return &Ciphertext{C: c}
}

// ScalarMul returns a ciphertext of s·m. Negative scalars use modular
// inversion of the ciphertext.
func (k *DJKey) ScalarMul(a *Ciphertext, s *big.Int) *Ciphertext {
	base := a.C
	exp := s
	if s.Sign() < 0 {
		base = new(big.Int).ModInverse(a.C, k.Ns1)
		exp = new(big.Int).Neg(s)
	}
	return &Ciphertext{C: new(big.Int).Exp(base, exp, k.Ns1)}
}

// Rerandomize multiplies by a fresh encryption of zero.
func (k *DJKey) Rerandomize(random io.Reader, c *Ciphertext) (*Ciphertext, error) {
	z, err := k.Encrypt(random, big.NewInt(0))
	if err != nil {
		return nil, err
	}
	return k.Add(c, z), nil
}

// ByteLen returns the wire size of degree-S ciphertexts.
func (k *DJKey) ByteLen() int { return (k.Ns1.BitLen() + 7) / 8 }

// MaxPlaintext returns N^S − 1.
func (k *DJKey) MaxPlaintext() *big.Int {
	return new(big.Int).Sub(k.Ns, big.NewInt(1))
}
