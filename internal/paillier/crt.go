package paillier

import (
	"fmt"
	"math/big"
	"sync"
)

// CRT-accelerated decryption: instead of one exponentiation modulo N², the
// plaintext is recovered modulo p and q separately (exponent p−1 resp.
// q−1, modulus p² resp. q²) and combined by the Chinese remainder theorem
// — roughly a 3–4× speedup, which matters in the offline phase where
// committees open two ciphertexts per multiplication gate.

// crtState caches the per-key precomputation.
type crtState struct {
	p2, q2 *big.Int // p², q²
	pm1    *big.Int // p−1
	qm1    *big.Int // q−1
	hp     *big.Int // L_p(g^{p−1} mod p²)^{-1} mod p, g = 1+N
	hq     *big.Int // L_q(g^{q−1} mod q²)^{-1} mod q
	qInvP  *big.Int // q^{-1} mod p
}

var (
	crtMu    sync.Mutex
	crtCache = map[*PrivateKey]*crtState{}
)

func (sk *PrivateKey) crt() (*crtState, error) {
	crtMu.Lock()
	if st, ok := crtCache[sk]; ok {
		crtMu.Unlock()
		return st, nil
	}
	crtMu.Unlock()

	// Precompute outside the lock: the two exponentiations cost real time
	// at production moduli, and holding crtMu across them would stall
	// decryptors of unrelated keys. Concurrent first callers may duplicate
	// the work; the re-check below keeps one winner.
	one := big.NewInt(1)
	st := &crtState{
		p2:  new(big.Int).Mul(sk.P, sk.P),
		q2:  new(big.Int).Mul(sk.Q, sk.Q),
		pm1: new(big.Int).Sub(sk.P, one),
		qm1: new(big.Int).Sub(sk.Q, one),
	}
	g := new(big.Int).Add(sk.N, one)
	lp := func(x, p *big.Int) *big.Int {
		l := new(big.Int).Sub(x, one)
		return l.Div(l, p)
	}
	gp := new(big.Int).Exp(g, st.pm1, st.p2)
	st.hp = new(big.Int).ModInverse(lp(gp, sk.P), sk.P)
	gq := new(big.Int).Exp(g, st.qm1, st.q2)
	st.hq = new(big.Int).ModInverse(lp(gq, sk.Q), sk.Q)
	st.qInvP = new(big.Int).ModInverse(sk.Q, sk.P)
	if st.hp == nil || st.hq == nil || st.qInvP == nil {
		return nil, fmt.Errorf("paillier: CRT precomputation failed")
	}

	crtMu.Lock()
	defer crtMu.Unlock()
	if prev, ok := crtCache[sk]; ok {
		return prev, nil
	}
	crtCache[sk] = st
	return st, nil
}

// DecryptCRT recovers the plaintext of c using per-prime exponentiations.
// It is equivalent to Decrypt and ~3–4× faster.
func (sk *PrivateKey) DecryptCRT(c *Ciphertext) (*big.Int, error) {
	if err := sk.checkCiphertext(c); err != nil {
		return nil, err
	}
	st, err := sk.crt()
	if err != nil {
		return nil, err
	}
	one := big.NewInt(1)
	// m mod p.
	cp := new(big.Int).Mod(c.C, st.p2)
	cp.Exp(cp, st.pm1, st.p2)
	mp := new(big.Int).Sub(cp, one)
	mp.Div(mp, sk.P)
	mp.Mul(mp, st.hp)
	mp.Mod(mp, sk.P)
	// m mod q.
	cq := new(big.Int).Mod(c.C, st.q2)
	cq.Exp(cq, st.qm1, st.q2)
	mq := new(big.Int).Sub(cq, one)
	mq.Div(mq, sk.Q)
	mq.Mul(mq, st.hq)
	mq.Mod(mq, sk.Q)
	// Garner recombination: m = mq + q·((mp − mq)·q^{-1} mod p).
	diff := new(big.Int).Sub(mp, mq)
	diff.Mul(diff, st.qInvP)
	diff.Mod(diff, sk.P)
	m := diff.Mul(diff, sk.Q)
	m.Add(m, mq)
	return m, nil
}
