package paillier

import (
	"bytes"
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"sync"
	"testing"

	"yosompc/internal/modexp"
)

// The engine-vs-naive differential suite: every CRT/closed-form/batched
// path pinned bit-for-bit against its retained naive reference.

func djTestKey(t testing.TB, s int) *DJKey {
	t.Helper()
	k, err := NewDJKey(FixedTestKey(0), s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestExpSignedCRTMatchesNaive(t *testing.T) {
	for _, s := range []int{1, 2, 3} {
		k := djTestKey(t, s)
		r := mrand.New(mrand.NewSource(int64(s)))
		for i := 0; i < 40; i++ {
			base := new(big.Int).Rand(r, k.Ns1)
			// Exponents both below and far above the group order, the
			// threshold-partial regime where reduction matters most.
			exp := new(big.Int).Rand(r, new(big.Int).Lsh(k.Ns1, uint(r.Intn(3))*512))
			if i%3 == 1 {
				exp.Neg(exp)
			}
			want, errN := modexp.ExpSigned(base, exp, k.Ns1)
			got, errE := k.ExpSignedCRT(base, exp)
			if (errN == nil) != (errE == nil) {
				t.Fatalf("s=%d case %d: err naive=%v engine=%v", s, i, errN, errE)
			}
			if errN == nil && got.Cmp(want) != 0 {
				t.Fatalf("s=%d case %d: engine=%v naive=%v", s, i, got, want)
			}
		}
	}
}

func TestExpSignedCRTNonUnitBase(t *testing.T) {
	k := djTestKey(t, 1)
	// base = P·x shares a factor with N: the engine must fall back and
	// agree with the naive path, including the error on negative
	// exponents.
	base := new(big.Int).Mul(k.Base.P, big.NewInt(7))
	exp := big.NewInt(12345)
	want, err := modexp.ExpSigned(base, exp, k.Ns1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.ExpSignedCRT(base, exp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("non-unit base: engine=%v naive=%v", got, want)
	}
	if _, err := k.ExpSignedCRT(base, new(big.Int).Neg(exp)); err == nil {
		t.Fatal("negative exponent on non-unit base: want not-invertible error")
	}
}

func TestDJDecryptCRTMatchesNaive(t *testing.T) {
	for _, s := range []int{1, 2, 3} {
		k := djTestKey(t, s)
		msgs := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			new(big.Int).Rsh(k.Ns, 1),
			new(big.Int).Sub(k.Ns, big.NewInt(1)),
		}
		for _, m := range msgs {
			c, err := k.Encrypt(rand.Reader, m)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := k.DecryptNaive(c)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := k.DecryptCRT(c)
			if err != nil {
				t.Fatal(err)
			}
			if slow.Cmp(fast) != 0 || fast.Cmp(m) != 0 {
				t.Errorf("s=%d m=%v: naive=%v crt=%v", s, m, slow, fast)
			}
		}
	}
}

func TestDJEncryptClosedFormMatchesNaive(t *testing.T) {
	for _, s := range []int{1, 2, 3} {
		k := djTestKey(t, s)
		r := mrand.New(mrand.NewSource(int64(100 + s)))
		for i := 0; i < 20; i++ {
			m := new(big.Int).Rand(r, k.Ns)
			nonce, err := k.Base.PublicKey.RandomUnit(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			want, err := k.EncryptWithNonceNaive(m, nonce)
			if err != nil {
				t.Fatal(err)
			}
			got, err := k.EncryptWithNonce(m, nonce)
			if err != nil {
				t.Fatal(err)
			}
			if got.C.Cmp(want.C) != 0 {
				t.Fatalf("s=%d case %d: closed form differs from Exp", s, i)
			}
		}
		// Range errors must match too.
		if _, err := k.EncryptWithNonce(new(big.Int).Neg(big.NewInt(1)), big.NewInt(3)); err == nil {
			t.Fatal("engine accepted negative message")
		}
		if _, err := k.EncryptWithNonce(k.Ns, big.NewInt(3)); err == nil {
			t.Fatal("engine accepted out-of-range message")
		}
	}
}

// TestEncryptManyWorkerCountIndependent pins the batched path: the same
// deterministic random stream must yield byte-identical ciphertexts at
// every worker count, and each must match a serial EncryptWithNonce.
func TestEncryptManyWorkerCountIndependent(t *testing.T) {
	k := djTestKey(t, 2)
	msgs := make([]*big.Int, 9)
	r := mrand.New(mrand.NewSource(42))
	for i := range msgs {
		msgs[i] = new(big.Int).Rand(r, k.Ns)
	}
	var runs [][]*Ciphertext
	for _, workers := range []int{1, 2, 8} {
		cts, err := k.EncryptMany(fixedStream(7), msgs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(cts) != len(msgs) {
			t.Fatalf("workers=%d: %d ciphertexts for %d messages", workers, len(cts), len(msgs))
		}
		runs = append(runs, cts)
	}
	for w := 1; w < len(runs); w++ {
		for i := range msgs {
			if !bytes.Equal(runs[0][i].Bytes(), runs[w][i].Bytes()) {
				t.Fatalf("message %d: run 0 and run %d differ", i, w)
			}
		}
	}
	for i, ct := range runs[0] {
		m, err := k.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if m.Cmp(msgs[i]) != 0 {
			t.Fatalf("message %d: round trip %v != %v", i, m, msgs[i])
		}
	}
}

func TestPublicKeyEncryptManyRoundTrip(t *testing.T) {
	sk := FixedTestKey(1)
	msgs := []*big.Int{big.NewInt(0), big.NewInt(7), new(big.Int).Sub(sk.N, big.NewInt(1))}
	cts, err := sk.PublicKey.EncryptMany(rand.Reader, msgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range cts {
		m, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if m.Cmp(msgs[i]) != 0 {
			t.Fatalf("message %d: %v != %v", i, m, msgs[i])
		}
	}
}

// fixedStream is a deterministic "random" source so two EncryptMany
// runs see the same nonce stream.
func fixedStream(seed int64) *deterministicReader {
	return &deterministicReader{r: mrand.New(mrand.NewSource(seed))}
}

type deterministicReader struct{ r *mrand.Rand }

func (d *deterministicReader) Read(p []byte) (int, error) { return d.r.Read(p) }

// TestDJStateConcurrentInit hammers the lazy CRT-state build from many
// goroutines; under -race it witnesses the double-checked init.
func TestDJStateConcurrentInit(t *testing.T) {
	k, err := NewDJKey(FixedTestKey(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(424242)
	c, err := k.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := k.DecryptCRT(c)
			if err != nil || got.Cmp(m) != 0 {
				t.Errorf("concurrent decrypt: %v, %v", got, err)
			}
		}()
	}
	wg.Wait()
}

func TestFixedTestKey2048(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-bit safe-prime verification is slow")
	}
	k := FixedTestKey2048()
	if got := k.N.BitLen(); got != 2048 {
		t.Fatalf("modulus is %d bits, want 2048", got)
	}
	if k.M == nil {
		t.Fatal("2048-bit fixed key is not a safe-prime key")
	}
	c, err := k.Encrypt(rand.Reader, big.NewInt(987654321))
	if err != nil {
		t.Fatal(err)
	}
	m, err := k.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != 987654321 {
		t.Fatalf("round trip: %v", m)
	}
}

// FuzzPaillierEngineVsNaive pins the paillier engine paths — CRT
// signed exponentiation, CRT decryption, and closed-form encryption —
// bit-for-bit against the retained naive references over fuzzer-chosen
// values and degrees.
func FuzzPaillierEngineVsNaive(f *testing.F) {
	f.Add([]byte{7}, []byte{3}, []byte{9}, uint8(1), false)
	f.Add([]byte{0xff, 0x01}, []byte{0x80, 0x55}, []byte{2}, uint8(2), true)
	f.Fuzz(func(t *testing.T, baseB, expB, mB []byte, degree uint8, neg bool) {
		s := int(degree%3) + 1
		k := djTestKey(t, s)

		base := new(big.Int).SetBytes(baseB)
		base.Mod(base, k.Ns1)
		exp := new(big.Int).SetBytes(expB)
		if exp.BitLen() > 8192 {
			t.Skip()
		}
		if neg {
			exp.Neg(exp)
		}
		want, errN := modexp.ExpSigned(base, exp, k.Ns1)
		got, errE := k.ExpSignedCRT(base, exp)
		if (errN == nil) != (errE == nil) {
			t.Fatalf("err mismatch: naive=%v engine=%v", errN, errE)
		}
		if errN == nil && got.Cmp(want) != 0 {
			t.Fatalf("ExpSignedCRT=%v naive=%v", got, want)
		}

		m := new(big.Int).SetBytes(mB)
		m.Mod(m, k.Ns)
		nonce := new(big.Int).SetBytes(baseB)
		nonce.Mod(nonce, k.Base.N)
		if nonce.Sign() == 0 || new(big.Int).GCD(nil, nil, nonce, k.Base.N).Cmp(big.NewInt(1)) != 0 {
			nonce = big.NewInt(3)
		}
		ctN, errN2 := k.EncryptWithNonceNaive(m, nonce)
		ctE, errE2 := k.EncryptWithNonce(m, nonce)
		if (errN2 == nil) != (errE2 == nil) {
			t.Fatalf("encrypt err mismatch: naive=%v engine=%v", errN2, errE2)
		}
		if errN2 == nil {
			if ctE.C.Cmp(ctN.C) != 0 {
				t.Fatal("closed-form encryption differs from naive")
			}
			dN, errN3 := k.DecryptNaive(ctN)
			dE, errE3 := k.DecryptCRT(ctN)
			if (errN3 == nil) != (errE3 == nil) {
				t.Fatalf("decrypt err mismatch: naive=%v engine=%v", errN3, errE3)
			}
			if errN3 == nil {
				if dN.Cmp(dE) != 0 {
					t.Fatalf("DecryptCRT=%v naive=%v", dE, dN)
				}
				if dN.Cmp(m) != 0 {
					t.Fatalf("round trip: got %v want %v", dN, m)
				}
			}
		}
	})
}
