package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func testKey(t testing.TB) *PrivateKey {
	t.Helper()
	return FixedTestKey(0)
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKey(t)
	messages := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(123456789),
		new(big.Int).Sub(sk.N, big.NewInt(1)),
	}
	for _, m := range messages {
		c, err := sk.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatalf("Encrypt(%v): %v", m, err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Cmp(m) != 0 {
			t.Errorf("round trip: got %v, want %v", got, m)
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.Encrypt(rand.Reader, big.NewInt(-1)); err == nil {
		t.Error("accepted negative message")
	}
	if _, err := sk.Encrypt(rand.Reader, sk.N); err == nil {
		t.Error("accepted message == N")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	sk := testKey(t)
	a, b := big.NewInt(1_000_003), big.NewInt(999_983)
	ca, err := sk.Encrypt(rand.Reader, a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := sk.Encrypt(rand.Reader, b)
	if err != nil {
		t.Fatal(err)
	}
	sum := sk.PublicKey.Add(ca, cb)
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Add(a, b)
	if got.Cmp(want) != 0 {
		t.Errorf("Enc(a)+Enc(b) decrypts to %v, want %v", got, want)
	}
}

func TestScalarMul(t *testing.T) {
	sk := testKey(t)
	m := big.NewInt(777)
	c, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	s := big.NewInt(12345)
	got, err := sk.Decrypt(sk.PublicKey.ScalarMul(c, s))
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mul(m, s)
	if got.Cmp(want) != 0 {
		t.Errorf("s·Enc(m) decrypts to %v, want %v", got, want)
	}
}

func TestScalarMulNegative(t *testing.T) {
	sk := testKey(t)
	m := big.NewInt(10)
	c, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sk.PublicKey.ScalarMul(c, big.NewInt(-3)))
	if err != nil {
		t.Fatal(err)
	}
	// -30 mod N
	want := new(big.Int).Sub(sk.N, big.NewInt(30))
	if got.Cmp(want) != 0 {
		t.Errorf("-3·Enc(10) decrypts to %v, want N-30", got)
	}
}

func TestAddPlain(t *testing.T) {
	sk := testKey(t)
	c, err := sk.Encrypt(rand.Reader, big.NewInt(100))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sk.PublicKey.AddPlain(c, big.NewInt(23)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(123)) != 0 {
		t.Errorf("Enc(100)+23 = %v, want 123", got)
	}
}

func TestRerandomizePreservesPlaintext(t *testing.T) {
	sk := testKey(t)
	c, err := sk.Encrypt(rand.Reader, big.NewInt(55))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sk.PublicKey.Rerandomize(rand.Reader, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.C.Cmp(c.C) == 0 {
		t.Error("rerandomization did not change ciphertext")
	}
	got, err := sk.Decrypt(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(55)) != 0 {
		t.Errorf("rerandomized decrypts to %v, want 55", got)
	}
}

func TestCiphertextsProbabilistic(t *testing.T) {
	sk := testKey(t)
	m := big.NewInt(42)
	c1, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	if c1.C.Cmp(c2.C) == 0 {
		t.Error("two encryptions of same message identical")
	}
}

func TestDecryptRejectsMalformed(t *testing.T) {
	sk := testKey(t)
	bad := []*Ciphertext{
		nil,
		{C: nil},
		{C: big.NewInt(0)},
		{C: new(big.Int).Set(sk.N2)},
	}
	for i, c := range bad {
		if _, err := sk.Decrypt(c); err == nil {
			t.Errorf("case %d: malformed ciphertext accepted", i)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	sk := testKey(t)
	c, err := sk.Encrypt(rand.Reader, big.NewInt(31337))
	if err != nil {
		t.Fatal(err)
	}
	c2 := CiphertextFromBytes(c.Bytes())
	got, err := sk.Decrypt(c2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(31337)) != 0 {
		t.Errorf("serialized round trip = %v", got)
	}
}

func TestGenerateKeySmall(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(99)
	c, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Errorf("fresh key round trip = %v", got)
	}
}

func TestGenerateKeyRejectsTiny(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 32); err == nil {
		t.Error("accepted 32-bit modulus")
	}
	if _, err := GenerateSafeKey(rand.Reader, 32); err == nil {
		t.Error("safe keygen accepted 32-bit modulus")
	}
}

func TestFixedTestKeysAreSafePrimeKeys(t *testing.T) {
	for i := 0; i < NumFixedTestKeys; i++ {
		k := FixedTestKey(i)
		if k.M == nil {
			t.Errorf("fixed key %d missing M (not safe-prime)", i)
		}
		// N = (2M + p' + q' + ...) sanity: p,q prime and p=2p'+1 form.
		pp := new(big.Int).Rsh(new(big.Int).Sub(k.P, big.NewInt(1)), 1)
		qp := new(big.Int).Rsh(new(big.Int).Sub(k.Q, big.NewInt(1)), 1)
		if new(big.Int).Mul(pp, qp).Cmp(k.M) != 0 {
			t.Errorf("fixed key %d: M != p'q'", i)
		}
	}
}

func TestFixedTestKey768(t *testing.T) {
	k := FixedTestKey768(0)
	if k.N.BitLen() < 760 {
		t.Errorf("768-bit key has %d-bit modulus", k.N.BitLen())
	}
	c, err := k.Encrypt(rand.Reader, big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(5)) != 0 {
		t.Error("768-bit key round trip failed")
	}
}

func TestFixedTestKeyPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range index")
		}
	}()
	FixedTestKey(NumFixedTestKeys)
}

func TestByteLens(t *testing.T) {
	sk := testKey(t)
	if got := sk.PublicKey.ByteLen(); got < 120 {
		t.Errorf("ByteLen = %d, want ~128 for 512-bit modulus", got)
	}
	if got := sk.PublicKey.PlaintextByteLen(); got < 60 {
		t.Errorf("PlaintextByteLen = %d", got)
	}
}

func TestPublicKeyEqual(t *testing.T) {
	a, b := FixedTestKey(0), FixedTestKey(1)
	if !a.PublicKey.Equal(&a.PublicKey) {
		t.Error("key != itself")
	}
	if a.PublicKey.Equal(&b.PublicKey) {
		t.Error("distinct keys compare equal")
	}
	if a.PublicKey.Equal(nil) {
		t.Error("key equals nil")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	sk := FixedTestKey(0)
	m := big.NewInt(123456)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	sk := FixedTestKey(0)
	c, err := sk.Encrypt(rand.Reader, big.NewInt(123456))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecryptCRTMatchesDecrypt(t *testing.T) {
	sk := testKey(t)
	msgs := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(999_983),
		new(big.Int).Rsh(sk.N, 1),
		new(big.Int).Sub(sk.N, big.NewInt(1)),
	}
	for _, m := range msgs {
		c, err := sk.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		// Decrypt now delegates to DecryptCRT, so the reference here is
		// the retained naive single-exponentiation path.
		slow, err := sk.DecryptNaive(c)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := sk.DecryptCRT(c)
		if err != nil {
			t.Fatal(err)
		}
		if slow.Cmp(fast) != 0 || fast.Cmp(m) != 0 {
			t.Errorf("m=%v: slow=%v fast=%v", m, slow, fast)
		}
	}
}

func TestDecryptCRTAfterHomomorphics(t *testing.T) {
	sk := testKey(t)
	c1, err := sk.Encrypt(rand.Reader, big.NewInt(1234))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.Encrypt(rand.Reader, big.NewInt(8766))
	if err != nil {
		t.Fatal(err)
	}
	sum := sk.PublicKey.ScalarMul(sk.PublicKey.Add(c1, c2), big.NewInt(7))
	got, err := sk.DecryptCRT(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(70000)) != 0 {
		t.Errorf("CRT decrypt of 7(1234+8766) = %v", got)
	}
}

func TestDecryptCRTRejectsMalformed(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.DecryptCRT(&Ciphertext{C: big.NewInt(0)}); err == nil {
		t.Error("CRT decrypt accepted zero ciphertext")
	}
}

func BenchmarkDecryptCRT(b *testing.B) {
	sk := FixedTestKey(0)
	c, err := sk.Encrypt(rand.Reader, big.NewInt(123456))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.DecryptCRT(c); err != nil {
			b.Fatal(err)
		}
	}
}
