package modexp

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"yosompc/internal/telemetry"
)

func testRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func randBig(r *rand.Rand, bits int) *big.Int {
	if bits <= 0 {
		return new(big.Int)
	}
	b := make([]byte, (bits+7)/8)
	r.Read(b)
	v := new(big.Int).SetBytes(b)
	return v.Rand(r, new(big.Int).Lsh(bigOne, uint(bits)))
}

// oddModulus returns a random odd modulus of the given size; odd keeps
// gcd(2,m)=1 so small even bases stay invertible often enough for the
// negative-exponent cases.
func oddModulus(r *rand.Rand, bits int) *big.Int {
	m := randBig(r, bits)
	m.SetBit(m, 0, 1)
	m.SetBit(m, bits-1, 1)
	return m
}

func TestExpSignedMatchesNaive(t *testing.T) {
	r := testRNG(1)
	for i := 0; i < 200; i++ {
		m := oddModulus(r, 64+r.Intn(512))
		base := randBig(r, m.BitLen())
		exp := randBig(r, r.Intn(700))
		if r.Intn(2) == 0 {
			exp.Neg(exp)
		}
		want, err := ExpSigned(base, exp, m)
		gotNaive := func() (*big.Int, bool) {
			b, e := base, exp
			if exp.Sign() < 0 {
				b = new(big.Int).ModInverse(base, m)
				if b == nil {
					return nil, false
				}
				e = new(big.Int).Neg(exp)
			}
			return new(big.Int).Exp(b, e, m), true
		}
		naive, ok := gotNaive()
		if !ok {
			if err == nil {
				t.Fatalf("case %d: naive failed to invert but engine returned %v", i, want)
			}
			continue
		}
		if err != nil {
			t.Fatalf("case %d: ExpSigned: %v", i, err)
		}
		if want.Cmp(naive) != 0 {
			t.Fatalf("case %d: ExpSigned=%v naive=%v", i, want, naive)
		}
	}
}

func TestFixedBaseMatchesExp(t *testing.T) {
	r := testRNG(2)
	for i := 0; i < 60; i++ {
		m := oddModulus(r, 96+r.Intn(512))
		base := randBig(r, m.BitLen())
		maxBits := 1 + r.Intn(900)
		tab := NewFixedBase(base, m, maxBits)
		for j := 0; j < 8; j++ {
			// Include exponents past the table bound to exercise the
			// fallback, and negatives for ExpSigned.
			exp := randBig(r, r.Intn(maxBits+128))
			got := tab.Exp(exp)
			want := new(big.Int).Exp(base, exp, m)
			if got.Cmp(want) != 0 {
				t.Fatalf("case %d/%d: table Exp=%v naive=%v (bits=%d maxBits=%d)", i, j, got, want, exp.BitLen(), maxBits)
			}
			exp.Neg(exp)
			gotS, err := tab.ExpSigned(exp)
			wantS, errN := ExpSigned(base, exp, m)
			if (err == nil) != (errN == nil) {
				t.Fatalf("case %d/%d: signed err mismatch: table=%v naive=%v", i, j, err, errN)
			}
			if err == nil && gotS.Cmp(wantS) != 0 {
				t.Fatalf("case %d/%d: table ExpSigned=%v naive=%v", i, j, gotS, wantS)
			}
		}
	}
}

func TestFixedBaseEdgeCases(t *testing.T) {
	m := big.NewInt(1000003)
	tab := NewFixedBase(big.NewInt(7), m, 256)
	if got := tab.Exp(new(big.Int)); got.Cmp(bigOne) != 0 {
		t.Fatalf("b^0 = %v, want 1", got)
	}
	if got := tab.Exp(bigOne); got.Cmp(big.NewInt(7)) != 0 {
		t.Fatalf("b^1 = %v, want 7", got)
	}
	// Base 0 and base ≡ 0 mod m.
	zt := NewFixedBase(new(big.Int), m, 64)
	if got := zt.Exp(big.NewInt(5)); got.Sign() != 0 {
		t.Fatalf("0^5 = %v, want 0", got)
	}
	if got := zt.Exp(new(big.Int)); got.Cmp(bigOne) != 0 {
		t.Fatalf("0^0 = %v, want 1 (big.Int.Exp convention)", got)
	}
}

func TestExpCachedSignedPromotion(t *testing.T) {
	resetCaches()
	r := testRNG(3)
	m := oddModulus(r, 512)
	base := randBig(r, 512)
	exp := randBig(r, 400)

	want, _ := ExpSigned(base, exp, m)
	// First use: plain path, sighting recorded, no table yet.
	got, err := ExpCachedSigned(base, exp, m)
	if err != nil || got.Cmp(want) != 0 {
		t.Fatalf("first use: got %v err %v", got, err)
	}
	if h, _ := CacheStats(); h != 0 {
		t.Fatalf("hits after first use = %d, want 0", h)
	}
	if lookupTable(keyOf(base, m), 1) != nil {
		t.Fatal("table built on first sighting; want promotion on second use")
	}
	// Second use: table built and used.
	got, err = ExpCachedSigned(base, exp, m)
	if err != nil || got.Cmp(want) != 0 {
		t.Fatalf("second use: got %v err %v", got, err)
	}
	if lookupTable(keyOf(base, m), exp.BitLen()) == nil {
		t.Fatal("no table after second use")
	}
	// Third use: cache hit, still bit-identical.
	got, err = ExpCachedSigned(base, exp, m)
	if err != nil || got.Cmp(want) != 0 {
		t.Fatalf("third use: got %v err %v", got, err)
	}
	if h, _ := CacheStats(); h != 1 {
		t.Fatalf("hits after third use = %d, want 1", h)
	}
	// Different exponents over the cached base, including negative.
	for i := 0; i < 20; i++ {
		e := randBig(r, r.Intn(600))
		if i%2 == 1 {
			e.Neg(e)
		}
		g, err1 := ExpCachedSigned(base, e, m)
		w, err2 := ExpSigned(base, e, m)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("exp %d: err mismatch %v vs %v", i, err1, err2)
		}
		if err1 == nil && g.Cmp(w) != 0 {
			t.Fatalf("exp %d: cached=%v naive=%v", i, g, w)
		}
	}
	resetCaches()
}

func TestExpCachedSignedSmallExponentBypass(t *testing.T) {
	resetCaches()
	m := big.NewInt(1000003)
	for i := 0; i < 5; i++ {
		got, err := ExpCachedSigned(big.NewInt(7), big.NewInt(123), m)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(big.NewInt(7), big.NewInt(123), m)
		if got.Cmp(want) != 0 {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if h, ms := CacheStats(); h != 0 || ms != 0 {
		t.Fatalf("small exponents touched the cache: hits=%d misses=%d", h, ms)
	}
	resetCaches()
}

func TestMultiExpMatchesNaiveProduct(t *testing.T) {
	r := testRNG(4)
	for i := 0; i < 80; i++ {
		m := oddModulus(r, 96+r.Intn(512))
		k := 1 + r.Intn(6)
		bases := make([]*big.Int, k)
		exps := make([]*big.Int, k)
		want := new(big.Int).Mod(bigOne, m)
		ok := true
		for j := 0; j < k; j++ {
			bases[j] = randBig(r, m.BitLen())
			exps[j] = randBig(r, r.Intn(500))
			if r.Intn(3) == 0 {
				exps[j].Neg(exps[j])
			}
			term, err := ExpSigned(bases[j], exps[j], m)
			if err != nil {
				ok = false
				break
			}
			want.Mul(want, term)
			want.Mod(want, m)
		}
		got, err := MultiExp(m, bases, exps)
		if !ok {
			if err == nil {
				t.Fatalf("case %d: naive not invertible but MultiExp returned %v", i, got)
			}
			continue
		}
		if err != nil {
			t.Fatalf("case %d: MultiExp: %v", i, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("case %d: MultiExp=%v naive=%v", i, got, want)
		}
	}
	// Empty input is the multiplicative identity.
	m := big.NewInt(97)
	got, err := MultiExp(m, nil, nil)
	if err != nil || got.Cmp(bigOne) != 0 {
		t.Fatalf("empty MultiExp = %v, %v; want 1", got, err)
	}
	// All-zero exponents too.
	got, err = MultiExp(m, []*big.Int{big.NewInt(5)}, []*big.Int{new(big.Int)})
	if err != nil || got.Cmp(bigOne) != 0 {
		t.Fatalf("zero-exponent MultiExp = %v, %v; want 1", got, err)
	}
}

func TestExpManySignedMatchesNaive(t *testing.T) {
	r := testRNG(5)
	for _, n := range []int{0, 1, 3, 4, 16} {
		m := oddModulus(r, 512)
		base := randBig(r, 512)
		exps := make([]*big.Int, n)
		for i := range exps {
			exps[i] = randBig(r, 300+r.Intn(200))
			if i%3 == 0 {
				exps[i].Neg(exps[i])
			}
		}
		// A random base may share a factor with m; the batch must then
		// fail exactly when the per-exponent naive path fails.
		naiveOK := true
		wants := make([]*big.Int, n)
		for i, e := range exps {
			w, err := ExpSigned(base, e, m)
			if err != nil {
				naiveOK = false
				break
			}
			wants[i] = w
		}
		got, err := ExpManySigned(base, m, exps)
		if !naiveOK {
			if err == nil {
				t.Fatalf("n=%d: naive not invertible but batch succeeded", n)
			}
			continue
		}
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range exps {
			if got[i].Cmp(wants[i]) != 0 {
				t.Fatalf("n=%d i=%d: batch=%v naive=%v", n, i, got[i], wants[i])
			}
		}
	}
}

func TestPowerLadderMatchesExp(t *testing.T) {
	resetCaches()
	r := testRNG(6)
	m := oddModulus(r, 256)
	base := randBig(r, 256)
	l := Ladder(base, m)
	// Non-monotone access pattern: the ladder must extend and backfill.
	for _, k := range []int{5, 0, 17, 3, 64, 63, 65, 1} {
		got, err := l.Pow(k)
		if err != nil {
			t.Fatalf("Pow(%d): %v", k, err)
		}
		want := new(big.Int).Exp(base, big.NewInt(int64(k)), m)
		if got.Cmp(want) != 0 {
			t.Fatalf("Pow(%d)=%v naive=%v", k, got, want)
		}
	}
	// Same (base, modulus) yields the same ladder instance.
	if Ladder(base, m) != l {
		t.Fatal("Ladder not cached per (base, modulus)")
	}
	resetCaches()
}

func TestInstrumentMirrorsCounters(t *testing.T) {
	resetCaches()
	reg := telemetry.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)
	r := testRNG(7)
	m := oddModulus(r, 256)
	base := randBig(r, 256)
	exp := randBig(r, 200)
	for i := 0; i < 3; i++ {
		if _, err := ExpCachedSigned(base, exp, m); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["modexp.table_cache_hits"] != 1 {
		t.Fatalf("telemetry hits = %d, want 1", snap.Counters["modexp.table_cache_hits"])
	}
	if snap.Counters["modexp.table_cache_misses"] != 2 {
		t.Fatalf("telemetry misses = %d, want 2", snap.Counters["modexp.table_cache_misses"])
	}
	resetCaches()
}

// TestCacheHammer drives the table cache, seen set, and ladders from
// many goroutines at once; run under -race it is the engine's
// concurrency witness.
func TestCacheHammer(t *testing.T) {
	resetCaches()
	r := testRNG(8)
	const nBases = 4
	m := oddModulus(r, 256)
	bases := make([]*big.Int, nBases)
	exps := make([]*big.Int, nBases)
	wants := make([]*big.Int, nBases)
	for i := range bases {
		bases[i] = randBig(r, 256)
		exps[i] = randBig(r, 200)
		w, err := ExpSigned(bases[i], exps[i], m)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				j := (g + i) % nBases
				got, err := ExpCachedSigned(bases[j], exps[j], m)
				if err != nil || got.Cmp(wants[j]) != 0 {
					t.Errorf("goroutine %d iter %d: got %v err %v", g, i, got, err)
					return
				}
				p, err := Ladder(bases[j], m).Pow(i % 9)
				if err != nil {
					t.Errorf("ladder: %v", err)
					return
				}
				want := new(big.Int).Exp(bases[j], big.NewInt(int64(i%9)), m)
				if p.Cmp(want) != 0 {
					t.Errorf("goroutine %d iter %d: ladder %v want %v", g, i, p, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if h, ms := CacheStats(); h == 0 || ms == 0 {
		t.Fatalf("hammer saw hits=%d misses=%d; want both non-zero", h, ms)
	}
	resetCaches()
}

// FuzzEngineVsNaive pins every engine path — cached signed exp,
// fixed-base tables, and multi-exp — bit-for-bit against plain
// big.Int.Exp references.
func FuzzEngineVsNaive(f *testing.F) {
	f.Add([]byte{7}, []byte{3}, []byte{5}, []byte{11}, []byte{97}, false, false)
	f.Add([]byte{2}, []byte{0xff, 0x01}, []byte{9}, []byte{0x80}, []byte{0xc1}, true, false)
	f.Add([]byte{0}, []byte{0}, []byte{1}, []byte{1}, []byte{3}, false, true)
	f.Fuzz(func(t *testing.T, baseB, expB, base2B, exp2B, modB []byte, neg1, neg2 bool) {
		mod := new(big.Int).SetBytes(modB)
		if mod.BitLen() < 2 || mod.BitLen() > 1024 {
			t.Skip()
		}
		base := new(big.Int).SetBytes(baseB)
		exp := new(big.Int).SetBytes(expB)
		base2 := new(big.Int).SetBytes(base2B)
		exp2 := new(big.Int).SetBytes(exp2B)
		if exp.BitLen() > 4096 || exp2.BitLen() > 4096 {
			t.Skip()
		}
		if neg1 {
			exp.Neg(exp)
		}
		if neg2 {
			exp2.Neg(exp2)
		}

		naive := func(b, e *big.Int) (*big.Int, bool) {
			bb := b
			if e.Sign() < 0 {
				bb = new(big.Int).ModInverse(b, mod)
				if bb == nil {
					return nil, false
				}
				e = new(big.Int).Neg(e)
			}
			return new(big.Int).Exp(bb, e, mod), true
		}

		// Path 1: cached signed exp, called twice so the second call
		// exercises table promotion when the exponent is large enough.
		resetCaches()
		want, ok := naive(base, exp)
		for call := 0; call < 3; call++ {
			got, err := ExpCachedSigned(base, exp, mod)
			if !ok {
				if err == nil {
					t.Fatalf("call %d: naive not invertible, engine returned %v", call, got)
				}
				break
			}
			if err != nil {
				t.Fatalf("call %d: %v", call, err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("call %d: engine=%v naive=%v", call, got, want)
			}
		}

		// Path 2: explicit fixed-base table.
		if exp.Sign() >= 0 {
			tab := NewFixedBase(base, mod, exp.BitLen()+1)
			if got := tab.Exp(exp); got.Cmp(new(big.Int).Exp(base, exp, mod)) != 0 {
				t.Fatalf("fixed-base: %v want %v", got, new(big.Int).Exp(base, exp, mod))
			}
		}

		// Path 3: two-term multi-exp vs naive product.
		w1, ok1 := naive(base, exp)
		w2, ok2 := naive(base2, exp2)
		got, err := MultiExp(mod, []*big.Int{base, base2}, []*big.Int{exp, exp2})
		if !ok1 || !ok2 {
			if err == nil {
				t.Fatalf("multi-exp: naive not invertible, engine returned %v", got)
			}
			return
		}
		if err != nil {
			t.Fatalf("multi-exp: %v", err)
		}
		want = new(big.Int).Mul(w1, w2)
		want.Mod(want, mod)
		if got.Cmp(want) != 0 {
			t.Fatalf("multi-exp=%v naive=%v", got, want)
		}
	})
}
