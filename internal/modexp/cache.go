package modexp

import (
	"math/big"
	"sync"
	"sync/atomic"

	"yosompc/internal/telemetry"
)

// The engine's process-global caches, in the internal/sharing domain-cache
// style: copy-on-write maps behind atomic pointers, lock-free reads,
// writers clone under a mutex, all heavy arithmetic (table builds, ladder
// extension) done OUTSIDE the lock with double-checked re-lookup.
//
// A fixed-base table costs roughly 2^w/w naive exponentiations to build,
// so caching every base seen once would lose money on one-shot bases
// (sigma-protocol commitments, fresh ciphertexts). Tables are therefore
// promoted on second use: the first ExpCachedSigned call on a (base,
// modulus) pair runs the plain path and records the sighting; the second
// builds and caches the table. Recurring bases — Shoup verification keys,
// a round's squared ciphertext c², partial-decryption shares — hit the
// table from their second or third use on, while one-shot bases never pay
// the build.

// tableKey identifies a cached fixed-base table. Bytes() is the canonical
// minimal big-endian encoding, so equal residues share an entry.
type tableKey struct{ base, modulus string }

func keyOf(base, modulus *big.Int) tableKey {
	return tableKey{string(base.Bytes()), string(modulus.Bytes())}
}

// Cache bounds, following the lagrange-cache pattern: wholesale clear on
// overflow. Long-running many-epoch processes cycle verification keys, so
// an unbounded map would grow without limit.
const (
	maxCachedTables = 64
	maxSeenBases    = 1024
)

var (
	cacheMu    sync.Mutex
	tableCache atomic.Pointer[map[tableKey]*FixedBase]
	seenCache  atomic.Pointer[map[tableKey]struct{}]
	ladderMu   sync.Mutex
	ladders    atomic.Pointer[map[tableKey]*PowerLadder]

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// instruments mirrors hits/misses into a telemetry registry when one
	// is installed via Instrument; Counter methods are nil-safe, so the
	// unset state costs one atomic load per cache access.
	instruments atomic.Pointer[engineCounters]
)

type engineCounters struct{ hits, misses *telemetry.Counter }

// Instrument mirrors the engine's table-cache hit/miss counters into reg
// as "modexp.table_cache_hits" / "modexp.table_cache_misses". A nil reg
// detaches the previous registry. The caches are process-global, so when
// several instrumented runs overlap the last-installed registry wins;
// CacheStats always reports the process-lifetime totals.
func Instrument(reg *telemetry.Registry) {
	if reg == nil {
		instruments.Store(nil)
		return
	}
	instruments.Store(&engineCounters{
		hits:   reg.Counter("modexp.table_cache_hits"),
		misses: reg.Counter("modexp.table_cache_misses"),
	})
}

// CacheStats returns the process-lifetime fixed-base table cache hit and
// miss counts. A miss is any ExpCachedSigned call served without a
// prebuilt table (including the sighting and build calls themselves).
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

func recordHit() {
	cacheHits.Add(1)
	if c := instruments.Load(); c != nil {
		c.hits.Inc()
	}
}

func recordMiss() {
	cacheMisses.Add(1)
	if c := instruments.Load(); c != nil {
		c.misses.Inc()
	}
}

// resetCaches drops every cached table, sighting, and ladder, and zeroes
// the stats. Test seam: the caches are process-global, so differential
// tests and race hammers reset them to get deterministic hit/miss counts.
func resetCaches() {
	cacheMu.Lock()
	tableCache.Store(nil)
	seenCache.Store(nil)
	cacheMu.Unlock()
	ladderMu.Lock()
	ladders.Store(nil)
	ladderMu.Unlock()
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

// lookupTable returns the cached table for key if one exists and covers
// at least bits exponent bits.
func lookupTable(key tableKey, bits int) *FixedBase {
	m := tableCache.Load()
	if m == nil {
		return nil
	}
	t := (*m)[key]
	if t == nil || t.bits < bits {
		return nil
	}
	return t
}

// noteSeen records a first sighting of key and reports whether the key
// had been seen before (i.e. this is at least the second use).
func noteSeen(key tableKey) bool {
	if m := seenCache.Load(); m != nil {
		if _, ok := (*m)[key]; ok {
			return true
		}
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	old := seenCache.Load()
	if old != nil {
		if _, ok := (*old)[key]; ok {
			return true
		}
	}
	next := make(map[tableKey]struct{}, 1)
	if old != nil && len(*old) < maxSeenBases {
		for k := range *old {
			next[k] = struct{}{}
		}
	}
	next[key] = struct{}{}
	seenCache.Store(&next)
	return false
}

// storeTable publishes a freshly built table, keeping whichever of the
// old and new entries covers more exponent bits. The build itself ran
// outside the lock; losing a race just wastes one build.
func storeTable(key tableKey, t *FixedBase) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	old := tableCache.Load()
	if old != nil {
		if prev := (*old)[key]; prev != nil && prev.bits >= t.bits {
			return
		}
	}
	next := make(map[tableKey]*FixedBase, 1)
	if old != nil && len(*old) < maxCachedTables {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[key] = t
	tableCache.Store(&next)
}

// minCachedExpBits is the smallest exponent size worth a table: below
// this the plain path is already a handful of multiplications.
const minCachedExpBits = 64

// ExpCachedSigned computes base^exp mod modulus through the fixed-base
// table cache: a cached table serves the call with one multiplication
// per exponent digit; an uncached base takes the plain ExpSigned path
// and is promoted to a table on its second sighting. The result is
// bit-identical to ExpSigned in every case.
func ExpCachedSigned(base, exp, modulus *big.Int) (*big.Int, error) {
	bits := exp.BitLen()
	if bits < minCachedExpBits {
		return ExpSigned(base, exp, modulus)
	}
	key := keyOf(base, modulus)
	if t := lookupTable(key, bits); t != nil {
		recordHit()
		return t.ExpSigned(exp)
	}
	recordMiss()
	if noteSeen(key) {
		// Second sighting (or a cached table too small for this
		// exponent): build outside any lock, sized with headroom so
		// nearby exponent sizes reuse it, then serve from the table so
		// the build call itself is pinned by the differential tests too.
		maxBits := bits + bits/8
		if mb := modulus.BitLen(); mb > maxBits {
			maxBits = mb
		}
		t := NewFixedBase(base, modulus, maxBits)
		storeTable(key, t)
		return t.ExpSigned(exp)
	}
	return ExpSigned(base, exp, modulus)
}

// PowerLadder caches consecutive powers base^0, base^1, ... mod modulus
// in a copy-on-write slice with geometric growth (the ConstDomain.Row
// pattern): epoch counters and Δ-power exponents grow by one per
// resharing, so each epoch's power is one multiplication on top of the
// last instead of a fresh Exp over an ever-longer exponent.
type PowerLadder struct {
	base    *big.Int
	modulus *big.Int
	mu      sync.Mutex
	powers  atomic.Pointer[[]*big.Int]
}

// Ladder returns the process-global power ladder for (base, modulus),
// creating it on first use.
func Ladder(base, modulus *big.Int) *PowerLadder {
	key := keyOf(base, modulus)
	if m := ladders.Load(); m != nil {
		if l := (*m)[key]; l != nil {
			return l
		}
	}
	ladderMu.Lock()
	defer ladderMu.Unlock()
	old := ladders.Load()
	if old != nil {
		if l := (*old)[key]; l != nil {
			return l
		}
	}
	l := &PowerLadder{
		base:    new(big.Int).Set(base),
		modulus: new(big.Int).Set(modulus),
	}
	next := make(map[tableKey]*PowerLadder, 1)
	if old != nil && len(*old) < maxCachedTables {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[key] = l
	ladders.Store(&next)
	return l
}

// Pow returns base^k mod modulus for k ≥ 0, extending the cached ladder
// by repeated multiplication when needed. Each power is the canonical
// residue, bit-identical to big.Int.Exp(base, k, modulus). Negative k
// falls back to the signed plain path.
func (l *PowerLadder) Pow(k int) (*big.Int, error) {
	if k < 0 {
		return ExpSigned(l.base, big.NewInt(int64(k)), l.modulus)
	}
	if p := l.powers.Load(); p != nil && k < len(*p) {
		return (*p)[k], nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	old := l.powers.Load()
	if old != nil && k < len(*old) {
		return (*old)[k], nil
	}
	// Grow geometrically so amortized extension is O(1) multiplications
	// per epoch. Only Mul/Mod run under the mutex — the ladder never
	// calls big.Int.Exp here.
	capNeeded := k + 1
	if old != nil && 2*len(*old) > capNeeded {
		capNeeded = 2 * len(*old)
	}
	next := make([]*big.Int, capNeeded)
	start := 0
	if old != nil {
		start = copy(next, *old)
	}
	for i := start; i < capNeeded; i++ {
		if i == 0 {
			next[i] = new(big.Int).Mod(bigOne, l.modulus)
			continue
		}
		v := new(big.Int).Mul(next[i-1], l.base)
		next[i] = v.Mod(v, l.modulus)
	}
	l.powers.Store(&next)
	return next[k], nil
}
