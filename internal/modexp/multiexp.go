package modexp

import "math/big"

// Straus interleaved multi-exponentiation: ∏ bases[i]^exps[i] mod
// modulus in one pass, sharing the squaring chain across all bases
// instead of squaring once per base. For k bases of b-bit exponents the
// naive product of k separate exponentiations costs ≈ k·1.5·b modular
// multiplications; Straus with window w costs b squarings (shared) plus
// ≈ k·b/w multiplications plus k·2^w precomputation — for the proof
// verifier's k=2 that is ≈ 1.5× fewer multiplications, and for
// Combine's k=t+1 products of verification-key powers the shared
// squaring chain dominates and the saving approaches k×/(1+k/w).

// multiExpWindow is Straus's per-base precomputation window. w=4 keeps
// the per-base table at 15 entries — negligible against the shared
// squaring chain for the exponent sizes here (hundreds to thousands of
// bits).
const multiExpWindow = 4

// MultiExp computes ∏ bases[i]^exps[i] mod modulus with signed
// exponents (a negative exponent inverts its base first, as ExpSigned
// does). The result is the canonical residue, bit-identical to the
// naive product of ExpSigned terms reduced mod modulus. Empty input
// yields 1 mod modulus.
func MultiExp(modulus *big.Int, bases, exps []*big.Int) (*big.Int, error) {
	if len(bases) != len(exps) {
		panic("modexp: MultiExp length mismatch")
	}
	acc := new(big.Int).Mod(bigOne, modulus)
	if len(bases) == 0 {
		return acc, nil
	}
	// Normalize to non-negative exponents over (possibly inverted)
	// bases, and build the 15-entry odd+even power table per base.
	maxBits := 0
	norm := make([]*big.Int, len(bases))
	pos := make([]*big.Int, len(exps))
	for i := range bases {
		b, e := bases[i], exps[i]
		if e.Sign() < 0 {
			inv := new(big.Int).ModInverse(b, modulus)
			if inv == nil {
				return nil, ErrNotInvertible
			}
			b = inv
			e = new(big.Int).Neg(e)
		}
		norm[i] = b
		pos[i] = e
		if bl := e.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	if maxBits == 0 {
		return acc, nil
	}
	tables := make([][]*big.Int, len(norm))
	for i, b := range norm {
		row := make([]*big.Int, (1<<multiExpWindow)-1)
		row[0] = new(big.Int).Mod(b, modulus)
		for j := 1; j < len(row); j++ {
			row[j] = new(big.Int).Mul(row[j-1], row[0])
			row[j].Mod(row[j], modulus)
		}
		tables[i] = row
	}
	// Walk the exponents one w-bit window at a time from the top:
	// w shared squarings, then one multiplication per base whose
	// current digit is non-zero.
	windows := (maxBits + multiExpWindow - 1) / multiExpWindow
	mask := uint(1<<multiExpWindow) - 1
	started := false
	for j := windows - 1; j >= 0; j-- {
		if started {
			for s := 0; s < multiExpWindow; s++ {
				acc.Mul(acc, acc)
				acc.Mod(acc, modulus)
			}
		}
		for i := range tables {
			digit := digitAt(pos[i], uint(j)*multiExpWindow, multiExpWindow, mask)
			if digit == 0 {
				continue
			}
			acc.Mul(acc, tables[i][digit-1])
			acc.Mod(acc, modulus)
			started = true
		}
	}
	return acc, nil
}
