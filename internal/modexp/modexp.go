// Package modexp is the big-integer exponentiation engine behind the
// Paillier/Damgård–Jurik hot paths: fixed-base windowed-exponentiation
// tables for recurring bases (the Shoup verification base V, per-round
// squared ciphertexts, the 1+N encryption base's algebraic shortcuts in
// package paillier), Straus interleaved multi-exponentiation for proof
// verification and threshold combination, and cached Δ-power ladders —
// all behind process-global copy-on-write caches with lock-free reads
// and hit/miss counters mirrored into telemetry, exactly the pattern of
// the packed-sharing domain engine in internal/sharing.
//
// The naive paths (plain math/big square-and-multiply via ExpSigned and
// big.Int.Exp) are retained throughout the callers as differential
// references; the tests and FuzzEngineVsNaive pin every engine path to
// them bit-for-bit. Engine outputs are canonical residues, so "equal as
// group elements" and "bit-identical" coincide.
//
// Side-channel posture: everything here is variable-time by
// construction — math/big has no constant-time path for any of these
// operations. This package is the sanctioned home for variable-time
// big-integer exponentiation (see internal/analysis/sidechannel): the
// justification that used to ride on per-call-site //yosolint:vartime
// directives for expSigned in tte and nizk lives here instead. Modular
// exponentiation is a one-way function — g^x publishes a value that
// hides x by the hardness of discrete log / factoring — so results are
// public by design even when exponents are secret; the residual
// timing-channel risk of math/big is documented in
// docs/STATIC_ANALYSIS.md.
package modexp

import (
	"errors"
	"math/big"
)

var bigOne = big.NewInt(1)

// ErrNotInvertible is returned when a negative exponent requires a base
// inversion that does not exist (gcd(base, modulus) ≠ 1).
var ErrNotInvertible = errors.New("modexp: base not invertible")

// ExpSigned computes base^exp mod modulus, supporting negative exponents
// via modular inversion of the base. It is the deduplicated home of the
// expSigned helpers that previously lived in internal/tte and
// internal/nizk, and it is the engine's naive reference path: plain
// math/big square-and-multiply, no tables, no CRT.
func ExpSigned(base, exp, modulus *big.Int) (*big.Int, error) {
	b, e := base, exp
	if exp.Sign() < 0 {
		b = new(big.Int).ModInverse(base, modulus)
		if b == nil {
			return nil, ErrNotInvertible
		}
		e = new(big.Int).Neg(exp)
	}
	return new(big.Int).Exp(b, e, modulus), nil
}

// FixedBase is a precomputed windowed-exponentiation table for one
// (base, modulus) pair: table[j][i-1] = base^(i · 2^(w·j)) mod modulus
// for w-bit digits i and digit positions j covering maxBits exponent
// bits. Exponentiation then costs one modular multiplication per
// non-zero digit — no squarings at all — roughly a (w+1)× reduction in
// multiplications over square-and-multiply at the price of
// ⌈maxBits/w⌉·(2^w−1) stored residues. All fields are immutable after
// construction; a FixedBase is safe for unbounded concurrent use.
type FixedBase struct {
	base    *big.Int
	modulus *big.Int
	window  uint
	bits    int
	table   [][]*big.Int
}

// maxTableEntries caps one table's precomputed residues: the window
// width shrinks until the table fits. At 2^13 entries a 4096-bit
// modulus costs ≤ 4 MiB per table — see docs/PERFORMANCE.md for the
// window-size trade-off.
const maxTableEntries = 1 << 13

// windowFor picks the widest window w ≤ 8 whose table for maxBits-bit
// exponents stays under maxTableEntries.
func windowFor(maxBits int) uint {
	for w := uint(8); w > 1; w-- {
		windows := (maxBits + int(w) - 1) / int(w)
		if windows*((1<<w)-1) <= maxTableEntries {
			return w
		}
	}
	return 1
}

// NewFixedBase builds the table covering exponents of up to maxBits
// bits. The base must be a canonical residue of the (positive) modulus.
func NewFixedBase(base, modulus *big.Int, maxBits int) *FixedBase {
	if maxBits < 1 {
		maxBits = 1
	}
	w := windowFor(maxBits)
	windows := (maxBits + int(w) - 1) / int(w)
	t := &FixedBase{
		base:    new(big.Int).Set(base),
		modulus: new(big.Int).Set(modulus),
		window:  w,
		bits:    maxBits,
		table:   make([][]*big.Int, windows),
	}
	// Row j starts from base^(2^(w·j)): w squarings of the previous
	// row's generator, then 2^w−2 multiplications fill the row.
	gen := new(big.Int).Set(base)
	gen.Mod(gen, modulus)
	for j := 0; j < windows; j++ {
		row := make([]*big.Int, (1<<w)-1)
		row[0] = new(big.Int).Set(gen)
		for i := 1; i < len(row); i++ {
			row[i] = new(big.Int).Mul(row[i-1], gen)
			row[i].Mod(row[i], modulus)
		}
		t.table[j] = row
		if j+1 < windows {
			gen = new(big.Int).Set(row[0])
			for s := uint(0); s < w; s++ {
				gen.Mul(gen, gen)
				gen.Mod(gen, modulus)
			}
		}
	}
	return t
}

// Bits returns the exponent size in bits the table covers.
func (t *FixedBase) Bits() int { return t.bits }

// Exp computes base^exp mod modulus from the table. Exponents longer
// than the table covers (or negative) fall back to the plain path, so
// the result is always exact.
func (t *FixedBase) Exp(exp *big.Int) *big.Int {
	if exp.Sign() < 0 || exp.BitLen() > t.bits {
		return new(big.Int).Exp(t.base, exp, t.modulus)
	}
	acc := big.NewInt(1)
	w := t.window
	mask := uint(1<<w) - 1
	bits := exp.BitLen()
	for j := 0; j*int(w) < bits; j++ {
		digit := digitAt(exp, uint(j)*w, w, mask)
		if digit == 0 {
			continue
		}
		acc.Mul(acc, t.table[j][digit-1])
		acc.Mod(acc, t.modulus)
	}
	return acc
}

// ExpSigned is Exp with negative-exponent support: base^(−e) is
// computed as (base^e)⁻¹ mod modulus, which is the same canonical
// residue the naive invert-the-base-first path produces.
func (t *FixedBase) ExpSigned(exp *big.Int) (*big.Int, error) {
	if exp.Sign() >= 0 {
		return t.Exp(exp), nil
	}
	pos := t.Exp(new(big.Int).Neg(exp))
	inv := new(big.Int).ModInverse(pos, t.modulus)
	if inv == nil {
		return nil, ErrNotInvertible
	}
	return inv, nil
}

// digitAt extracts the w-bit digit of exp starting at bit offset. Bit()
// is O(1), so a digit read is O(w) — noise next to the modular
// multiplication it selects.
func digitAt(exp *big.Int, offset, w, mask uint) uint {
	var d uint
	for i := uint(0); i < w; i++ {
		d |= exp.Bit(int(offset+i)) << i
	}
	return d & mask
}

// ExpManySigned computes base^exp for every exponent over one shared
// modulus. With enough exponents to amortize the table build it uses a
// fixed-base table sized to the largest |exp|; small batches take the
// plain path. Either way each result is bit-identical to ExpSigned.
func ExpManySigned(base, modulus *big.Int, exps []*big.Int) ([]*big.Int, error) {
	out := make([]*big.Int, len(exps))
	maxBits := 0
	for _, e := range exps {
		if b := e.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	// A table build costs about windows·2^w ≈ maxBits·2^w/w modular
	// multiplications, an exponentiation about 1.2·maxBits; the table
	// pays for itself from roughly four exponentiations up.
	if len(exps) >= 4 && maxBits >= 256 {
		t := NewFixedBase(base, modulus, maxBits)
		for i, e := range exps {
			v, err := t.ExpSigned(e)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	for i, e := range exps {
		v, err := ExpSigned(base, e, modulus)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
