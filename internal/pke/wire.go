package pke

import (
	"encoding/binary"
	"fmt"

	"yosompc/internal/wire"
)

// Envelope wire format. An encoded envelope is exactly Ciphertext.Size()
// bytes for both backends, so metered board traffic equals serialized
// traffic. Layouts (big-endian, see docs/WIRE.md):
//
//	ecies-x25519: 32-byte ephemeral X25519 key | nonce‖AES-GCM body‖tag
//	sim:          u64 key id | u32 msg len | msg | zero pad to 60+len(msg)
//
// The sim header (12 bytes) always fits inside the modelled 60-byte ECIES
// overhead, so the padded encoding is byte-for-byte the modelled size.

// eciesMinCT is the smallest well-formed ECIES envelope: ephemeral key,
// GCM nonce, GCM tag.
const eciesMinCT = 32 + 12 + 16

// EncodeCiphertext implements Scheme.
func (e *ECIES) EncodeCiphertext(ct Ciphertext) ([]byte, error) {
	ec, ok := ct.(*eciesCT)
	if !ok {
		return nil, ErrWrongKey
	}
	out := make([]byte, 0, ec.Size())
	out = append(out, ec.ephemeral...)
	return append(out, ec.sealed...), nil
}

// DecodeCiphertext implements Scheme.
func (e *ECIES) DecodeCiphertext(data []byte) (Ciphertext, error) {
	if len(data) < eciesMinCT {
		return nil, fmt.Errorf("%w: envelope needs ≥ %d bytes, have %d", ErrShortData, eciesMinCT, len(data))
	}
	ct := &eciesCT{ephemeral: make([]byte, 32), sealed: make([]byte, len(data)-32)}
	copy(ct.ephemeral, data[:32])
	copy(ct.sealed, data[32:])
	return ct, nil
}

// EncodeCiphertext implements Scheme: the envelope is padded to the
// modelled ECIES size so measured bytes match modelled bytes.
func (s *Sim) EncodeCiphertext(ct Ciphertext) ([]byte, error) {
	sc, ok := ct.(*simCT)
	if !ok {
		return nil, ErrWrongKey
	}
	out := make([]byte, sc.Size())
	binary.BigEndian.PutUint64(out, sc.keyID)
	binary.BigEndian.PutUint32(out[8:], uint32(len(sc.msg)))
	copy(out[12:], sc.msg)
	return out, nil
}

// DecodeCiphertext implements Scheme; it insists on the exact padded length
// so encode∘decode is the identity on bytes.
func (s *Sim) DecodeCiphertext(data []byte) (Ciphertext, error) {
	if len(data) < simOverhead {
		return nil, fmt.Errorf("%w: envelope needs ≥ %d bytes, have %d", ErrShortData, simOverhead, len(data))
	}
	msgLen := binary.BigEndian.Uint32(data[8:])
	if msgLen > wire.MaxLen || int(msgLen) != len(data)-simOverhead {
		return nil, fmt.Errorf("%w: message length %d in a %d-byte envelope", ErrShortData, msgLen, len(data))
	}
	ct := &simCT{keyID: binary.BigEndian.Uint64(data), msg: make([]byte, msgLen)}
	copy(ct.msg, data[12:12+msgLen])
	return ct, nil
}
