package pke

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
)

// Sim is the ideal PKE backend: payloads are stored in the clear inside the
// envelope and only decryptable by the matching key id, while wire sizes
// follow the same overhead model as the real ECIES construction
// (32-byte ephemeral key + 12-byte nonce + 16-byte tag). It exists so that
// large-committee sweeps spend no time on curve arithmetic while measuring
// identical byte counts.
type Sim struct{}

// simOverhead mirrors the ECIES envelope overhead in bytes.
const simOverhead = 32 + 12 + 16

// NewSim returns the ideal backend.
func NewSim() *Sim { return &Sim{} }

// Name implements Scheme.
func (s *Sim) Name() string { return "sim" }

type simPub struct {
	id   uint64
	seed [SecretKeySize]byte
}

type simSecret struct {
	id   uint64
	seed [SecretKeySize]byte
}

type simCT struct {
	keyID uint64
	msg   []byte
}

func (c *simCT) Size() int { return simOverhead + len(c.msg) }

// GenerateKey implements Scheme. The "secret" is a random 32-byte seed; the
// key id is derived from it so that SecretKeyFromBytes can re-associate.
func (s *Sim) GenerateKey() (PublicKey, SecretKey, error) {
	var seed [SecretKeySize]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, nil, fmt.Errorf("pke: sim keygen: %w", err)
	}
	id := seedID(seed)
	return &simPub{id: id, seed: seed}, &simSecret{id: id, seed: seed}, nil
}

// SecretKeyFromBytes implements Scheme.
func (s *Sim) SecretKeyFromBytes(data []byte) (SecretKey, error) {
	if len(data) != SecretKeySize {
		return nil, fmt.Errorf("pke: secret key must be %d bytes, got %d", SecretKeySize, len(data))
	}
	var seed [SecretKeySize]byte
	copy(seed[:], data)
	return &simSecret{id: seedID(seed), seed: seed}, nil
}

func seedID(seed [SecretKeySize]byte) uint64 {
	sum := sha256.Sum256(seed[:])
	return binary.BigEndian.Uint64(sum[:8])
}

// ctEqualID compares two key ids in constant time. The id is derived from
// the secret seed, so an early-exit comparison would let an attacker
// probing Decrypt with crafted envelopes learn matching prefixes of the
// derived key material byte by byte.
func ctEqualID(a, b uint64) bool {
	var ab, bb [8]byte
	binary.BigEndian.PutUint64(ab[:], a)
	binary.BigEndian.PutUint64(bb[:], b)
	return subtle.ConstantTimeCompare(ab[:], bb[:]) == 1
}

// Encrypt implements PublicKey.
func (p *simPub) Encrypt(msg []byte) (Ciphertext, error) {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	return &simCT{keyID: p.id, msg: cp}, nil
}

// Bytes implements PublicKey.
func (p *simPub) Bytes() []byte {
	out := make([]byte, 32)
	binary.BigEndian.PutUint64(out, p.id)
	return out
}

// Fingerprint implements PublicKey.
func (p *simPub) Fingerprint() string { return fmt.Sprintf("sim-%012x", p.id) }

// Decrypt implements SecretKey; it enforces that only the matching key
// opens the envelope, so key-routing bugs in the protocol fail loudly.
func (k *simSecret) Decrypt(ct Ciphertext) ([]byte, error) {
	sc, ok := ct.(*simCT)
	if !ok {
		return nil, ErrWrongKey
	}
	if !ctEqualID(sc.keyID, k.id) {
		return nil, fmt.Errorf("%w: envelope for key %012x, have %012x", ErrDecrypt, sc.keyID, k.id)
	}
	out := make([]byte, len(sc.msg))
	copy(out, sc.msg)
	return out, nil
}

// Bytes implements SecretKey.
func (k *simSecret) Bytes() []byte {
	out := make([]byte, SecretKeySize)
	copy(out, k.seed[:])
	return out
}

// Public implements SecretKey.
func (k *simSecret) Public() PublicKey { return &simPub{id: k.id, seed: k.seed} }
