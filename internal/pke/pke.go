// Package pke implements the public-key encryption used for role keys and
// keys-for-future (KFF): an ECIES construction over X25519 with AES-256-GCM
// payload encryption (all from the standard library), plus an ideal Sim
// backend with modelled sizes for large-scale communication sweeps.
//
// A KFF secret key must itself fit inside a threshold-encryption plaintext
// (it is encrypted under tpk during setup and re-encrypted to the role's
// real key during the online phase); X25519 secrets are 32 bytes, which is
// why ECIES rather than a second Paillier family is used here.
package pke

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// SecretKeySize is the size of an encoded secret key in bytes.
const SecretKeySize = 32

// Errors returned by the backends.
var (
	ErrDecrypt   = errors.New("pke: decryption failed")
	ErrWrongKey  = errors.New("pke: object belongs to a different backend")
	ErrShortData = errors.New("pke: malformed ciphertext")
)

// PublicKey is an encryption key.
type PublicKey interface {
	// Encrypt produces an envelope carrying msg.
	Encrypt(msg []byte) (Ciphertext, error)
	// Bytes returns the serialized public key.
	Bytes() []byte
	// Fingerprint returns a short stable identifier for logging/auditing.
	Fingerprint() string
}

// SecretKey is a decryption key.
type SecretKey interface {
	// Decrypt opens an envelope.
	Decrypt(ct Ciphertext) ([]byte, error)
	// Bytes returns the fixed-size secret encoding (SecretKeySize bytes),
	// suitable for encryption under the threshold key.
	Bytes() []byte
	// Public returns the matching public key.
	Public() PublicKey
}

// Ciphertext is a sealed envelope.
type Ciphertext interface {
	// Size returns the wire size in bytes.
	Size() int
}

// Scheme generates and rehydrates keys.
type Scheme interface {
	// Name identifies the backend ("ecies-x25519" or "sim").
	Name() string
	// GenerateKey mints a fresh keypair.
	GenerateKey() (PublicKey, SecretKey, error)
	// SecretKeyFromBytes reconstructs a secret key from its encoding —
	// the receiving role's step after a KFF hand-off.
	SecretKeyFromBytes(data []byte) (SecretKey, error)
	// EncodeCiphertext serializes an envelope; the encoding is exactly
	// Ciphertext.Size() bytes (docs/WIRE.md).
	EncodeCiphertext(ct Ciphertext) ([]byte, error)
	// DecodeCiphertext parses an envelope serialized by EncodeCiphertext.
	DecodeCiphertext(data []byte) (Ciphertext, error)
}

// ECIES is the real backend.
type ECIES struct{}

// NewECIES returns the real backend.
func NewECIES() *ECIES { return &ECIES{} }

// Name implements Scheme.
func (e *ECIES) Name() string { return "ecies-x25519" }

type eciesPub struct {
	pk *ecdh.PublicKey
}

type eciesSecret struct {
	sk *ecdh.PrivateKey
}

type eciesCT struct {
	ephemeral []byte // 32-byte ephemeral public key
	sealed    []byte // nonce || AES-GCM ciphertext+tag
}

func (c *eciesCT) Size() int { return len(c.ephemeral) + len(c.sealed) }

// GenerateKey implements Scheme.
func (e *ECIES) GenerateKey() (PublicKey, SecretKey, error) {
	sk, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("pke: generating key: %w", err)
	}
	return &eciesPub{pk: sk.PublicKey()}, &eciesSecret{sk: sk}, nil
}

// SecretKeyFromBytes implements Scheme.
func (e *ECIES) SecretKeyFromBytes(data []byte) (SecretKey, error) {
	if len(data) != SecretKeySize {
		return nil, fmt.Errorf("pke: secret key must be %d bytes, got %d", SecretKeySize, len(data))
	}
	sk, err := ecdh.X25519().NewPrivateKey(data)
	if err != nil {
		return nil, fmt.Errorf("pke: rebuilding secret key: %w", err)
	}
	return &eciesSecret{sk: sk}, nil
}

// Encrypt implements PublicKey: ECDH with an ephemeral key, key derivation
// via SHA-256 over the shared secret and both public keys, AES-256-GCM.
func (p *eciesPub) Encrypt(msg []byte) (Ciphertext, error) {
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pke: ephemeral key: %w", err)
	}
	shared, err := eph.ECDH(p.pk)
	if err != nil {
		return nil, fmt.Errorf("pke: ECDH: %w", err)
	}
	aead, err := deriveAEAD(shared, eph.PublicKey().Bytes(), p.pk.Bytes())
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("pke: nonce: %w", err)
	}
	sealed := aead.Seal(nonce, nonce, msg, nil)
	return &eciesCT{ephemeral: eph.PublicKey().Bytes(), sealed: sealed}, nil
}

// Bytes implements PublicKey.
func (p *eciesPub) Bytes() []byte { return p.pk.Bytes() }

// Fingerprint implements PublicKey.
func (p *eciesPub) Fingerprint() string {
	sum := sha256.Sum256(p.pk.Bytes())
	return fmt.Sprintf("%x", sum[:6])
}

// Decrypt implements SecretKey.
func (s *eciesSecret) Decrypt(ct Ciphertext) ([]byte, error) {
	ec, ok := ct.(*eciesCT)
	if !ok {
		return nil, ErrWrongKey
	}
	ephPK, err := ecdh.X25519().NewPublicKey(ec.ephemeral)
	if err != nil {
		return nil, fmt.Errorf("%w: bad ephemeral key", ErrDecrypt)
	}
	shared, err := s.sk.ECDH(ephPK)
	if err != nil {
		return nil, fmt.Errorf("%w: ECDH", ErrDecrypt)
	}
	aead, err := deriveAEAD(shared, ec.ephemeral, s.sk.PublicKey().Bytes())
	if err != nil {
		return nil, err
	}
	if len(ec.sealed) < aead.NonceSize() {
		return nil, ErrShortData
	}
	nonce, body := ec.sealed[:aead.NonceSize()], ec.sealed[aead.NonceSize():]
	msg, err := aead.Open(nil, nonce, body, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	return msg, nil
}

// Bytes implements SecretKey.
func (s *eciesSecret) Bytes() []byte { return s.sk.Bytes() }

// Public implements SecretKey.
func (s *eciesSecret) Public() PublicKey { return &eciesPub{pk: s.sk.PublicKey()} }

func deriveAEAD(shared, ephPub, recvPub []byte) (cipher.AEAD, error) {
	h := sha256.New()
	h.Write([]byte("yosompc/ecies/v1"))
	h.Write(shared)
	h.Write(ephPub)
	h.Write(recvPub)
	key := h.Sum(nil)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("pke: AES: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("pke: GCM: %w", err)
	}
	return aead, nil
}

var (
	_ Scheme = (*ECIES)(nil)
	_ Scheme = (*Sim)(nil)
)
