package pke

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func backends() map[string]Scheme {
	return map[string]Scheme{
		"ecies-x25519": NewECIES(),
		"sim":          NewSim(),
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for name, s := range backends() {
		t.Run(name, func(t *testing.T) {
			pk, sk, err := s.GenerateKey()
			if err != nil {
				t.Fatal(err)
			}
			msgs := [][]byte{
				{},
				[]byte("x"),
				[]byte("the quick brown fox"),
				bytes.Repeat([]byte{0xAB}, 4096),
			}
			for _, m := range msgs {
				ct, err := pk.Encrypt(m)
				if err != nil {
					t.Fatalf("Encrypt: %v", err)
				}
				got, err := sk.Decrypt(ct)
				if err != nil {
					t.Fatalf("Decrypt: %v", err)
				}
				if !bytes.Equal(got, m) {
					t.Errorf("round trip: got %d bytes, want %d", len(got), len(m))
				}
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	for name, s := range backends() {
		t.Run(name, func(t *testing.T) {
			pk, sk, err := s.GenerateKey()
			if err != nil {
				t.Fatal(err)
			}
			f := func(msg []byte) bool {
				ct, err := pk.Encrypt(msg)
				if err != nil {
					return false
				}
				got, err := sk.Decrypt(ct)
				return err == nil && bytes.Equal(got, msg)
			}
			cfg := &quick.Config{MaxCount: 25}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestWrongKeyFailsToDecrypt(t *testing.T) {
	for name, s := range backends() {
		t.Run(name, func(t *testing.T) {
			pk1, _, err := s.GenerateKey()
			if err != nil {
				t.Fatal(err)
			}
			_, sk2, err := s.GenerateKey()
			if err != nil {
				t.Fatal(err)
			}
			ct, err := pk1.Encrypt([]byte("secret"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sk2.Decrypt(ct); err == nil {
				t.Error("wrong key decrypted envelope")
			}
		})
	}
}

func TestSecretKeyBytesRoundTrip(t *testing.T) {
	// The KFF hand-off path: serialize sk, rebuild it, decrypt envelopes
	// addressed to the original public key.
	for name, s := range backends() {
		t.Run(name, func(t *testing.T) {
			pk, sk, err := s.GenerateKey()
			if err != nil {
				t.Fatal(err)
			}
			enc := sk.Bytes()
			if len(enc) != SecretKeySize {
				t.Fatalf("secret encoding is %d bytes, want %d", len(enc), SecretKeySize)
			}
			sk2, err := s.SecretKeyFromBytes(enc)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := pk.Encrypt([]byte("to the future"))
			if err != nil {
				t.Fatal(err)
			}
			got, err := sk2.Decrypt(ct)
			if err != nil {
				t.Fatalf("rebuilt key failed to decrypt: %v", err)
			}
			if string(got) != "to the future" {
				t.Errorf("got %q", got)
			}
		})
	}
}

func TestSecretKeyFromBytesRejectsBadLength(t *testing.T) {
	for name, s := range backends() {
		t.Run(name, func(t *testing.T) {
			if _, err := s.SecretKeyFromBytes([]byte{1, 2, 3}); err == nil {
				t.Error("accepted short secret key")
			}
		})
	}
}

func TestPublicFromSecretMatches(t *testing.T) {
	for name, s := range backends() {
		t.Run(name, func(t *testing.T) {
			pk, sk, err := s.GenerateKey()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pk.Bytes(), sk.Public().Bytes()) {
				t.Error("sk.Public() != pk")
			}
		})
	}
}

func TestFingerprintStable(t *testing.T) {
	for name, s := range backends() {
		t.Run(name, func(t *testing.T) {
			pk, _, err := s.GenerateKey()
			if err != nil {
				t.Fatal(err)
			}
			if pk.Fingerprint() == "" || pk.Fingerprint() != pk.Fingerprint() {
				t.Error("fingerprint unstable or empty")
			}
		})
	}
}

func TestCiphertextSizeModel(t *testing.T) {
	// Sim envelopes must model real ECIES overhead so that byte counts in
	// sim sweeps match the real backend's.
	real := NewECIES()
	sim := NewSim()
	rpk, _, err := real.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	spk, _, err := sim.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{7}, 100)
	rct, err := rpk.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	sct, err := spk.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	if rct.Size() != sct.Size() {
		t.Errorf("size mismatch: real %d vs sim %d", rct.Size(), sct.Size())
	}
}

func TestECIESTamperDetected(t *testing.T) {
	s := NewECIES()
	pk, sk, err := s.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := pk.Encrypt([]byte("integrity"))
	if err != nil {
		t.Fatal(err)
	}
	ec := ct.(*eciesCT)
	ec.sealed[len(ec.sealed)-1] ^= 1
	if _, err := sk.Decrypt(ec); !errors.Is(err, ErrDecrypt) {
		t.Errorf("tampered envelope: err = %v, want ErrDecrypt", err)
	}
}

func TestSimDecryptWrongBackend(t *testing.T) {
	real := NewECIES()
	sim := NewSim()
	rpk, _, err := real.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	_, ssk, err := sim.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := rpk.Encrypt([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ssk.Decrypt(ct); !errors.Is(err, ErrWrongKey) {
		t.Errorf("err = %v, want ErrWrongKey", err)
	}
}

// TestCTEqualID pins the constant-time comparison the sim backend's key
// routing rests on: equal ids match, every differing byte position (low,
// high, single bit) mismatches.
func TestCTEqualID(t *testing.T) {
	cases := []struct {
		a, b uint64
		want bool
	}{
		{0, 0, true},
		{0xDEADBEEFCAFE0123, 0xDEADBEEFCAFE0123, true},
		{0, 1, false},
		{1 << 63, 0, false},
		{0xDEADBEEFCAFE0123, 0xDEADBEEFCAFE0122, false},
		{0xDEADBEEFCAFE0123, 0x5EADBEEFCAFE0123, false},
	}
	for _, c := range cases {
		if got := ctEqualID(c.a, c.b); got != c.want {
			t.Errorf("ctEqualID(%#x, %#x) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestSimKeyRoutingComparisonPath asserts the sim Decrypt routing
// decision end to end: the matching key (including one rebuilt from its
// byte encoding, exercising the derived-id path) opens the envelope, a
// different key is rejected with ErrDecrypt.
func TestSimKeyRoutingComparisonPath(t *testing.T) {
	s := NewSim()
	_, ska, err := s.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	pkb, skb, err := s.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("routed payload")
	ct, err := pkb.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ska.Decrypt(ct); !errors.Is(err, ErrDecrypt) {
		t.Errorf("foreign key: err = %v, want ErrDecrypt", err)
	}
	got, err := skb.Decrypt(ct)
	if err != nil {
		t.Fatalf("matching key: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("plaintext = %q, want %q", got, msg)
	}
	rebuilt, err := s.SecretKeyFromBytes(skb.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rebuilt.Decrypt(ct); err != nil {
		t.Errorf("rebuilt matching key: %v", err)
	}
}

func BenchmarkECIESEncrypt(b *testing.B) {
	s := NewECIES()
	pk, _, err := s.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	msg := bytes.Repeat([]byte{1}, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.Encrypt(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECIESDecrypt(b *testing.B) {
	s := NewECIES()
	pk, sk, err := s.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	ct, err := pk.Encrypt(bytes.Repeat([]byte{1}, 256))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}
