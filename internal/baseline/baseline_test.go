package baseline

import (
	"testing"

	"yosompc/internal/circuit"
	"yosompc/internal/comm"
	"yosompc/internal/field"
	"yosompc/internal/paillier"
	"yosompc/internal/pke"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

func simParams(n, t int, adv *yoso.Adversary) Params {
	return Params{N: n, T: t, TE: tte.NewSim(512), PKE: pke.NewSim(), Adversary: adv}
}

func inputsOf(vals map[int][]uint64) map[int][]field.Element {
	out := map[int][]field.Element{}
	for c, vs := range vals {
		es := make([]field.Element, len(vs))
		for i, v := range vs {
			es[i] = field.New(v)
		}
		out[c] = es
	}
	return out
}

func runAndCompare(t *testing.T, params Params, circ *circuit.Circuit, in map[int][]field.Element) *Result {
	t.Helper()
	want, err := circ.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(params, circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for client, vals := range want {
		if !field.EqualVec(res.Outputs[client], vals) {
			t.Errorf("client %d outputs = %v, want %v", client, res.Outputs[client], vals)
		}
	}
	return res
}

func TestInnerProductSim(t *testing.T) {
	circ, err := circuit.InnerProduct(4)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3, 4}, 1: {5, 6, 7, 8}})
	res := runAndCompare(t, simParams(5, 2, nil), circ, in)
	if res.Outputs[0][0] != field.New(70) {
		t.Errorf("inner product = %v, want 70", res.Outputs[0][0])
	}
}

func TestDeepCircuitSim(t *testing.T) {
	circ, err := circuit.PolyEval(4)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {2, 3, 1, 4, 2}, 1: {3}})
	res := runAndCompare(t, simParams(5, 2, nil), circ, in)
	if res.Outputs[1][0] != field.New(290) {
		t.Errorf("p(3) = %v, want 290", res.Outputs[1][0])
	}
}

func TestLinearOnlyCircuit(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input(0)
	y := b.Input(1)
	b.Output(b.ConstMul(field.New(3), b.Sub(x, y)), 0)
	circ, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {10}, 1: {4}})
	res := runAndCompare(t, simParams(4, 1, nil), circ, in)
	if res.Outputs[0][0] != field.New(18) {
		t.Errorf("3(x−y) = %v, want 18", res.Outputs[0][0])
	}
}

func TestRealBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("real crypto in -short mode")
	}
	te, err := tte.NewThreshold(paillier.FixedTestKey(1))
	if err != nil {
		t.Fatal(err)
	}
	params := Params{N: 4, T: 1, TE: te, PKE: pke.NewECIES()}
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {3, 5}, 1: {7, 11}})
	res := runAndCompare(t, params, circ, in)
	if res.Outputs[0][0] != field.New(76) {
		t.Errorf("inner product = %v, want 76", res.Outputs[0][0])
	}
}

func TestMaliciousExcluded(t *testing.T) {
	circ, err := circuit.InnerProduct(3)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3}, 1: {4, 5, 6}})
	adv := yoso.NewAdversary(2, 0, 23)
	res := runAndCompare(t, simParams(6, 2, adv), circ, in)
	if len(res.Excluded) == 0 {
		t.Error("no roles excluded despite adversary")
	}
}

func TestQuorumLossFails(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2}, 1: {3, 4}})
	adv := yoso.NewAdversary(0, 3, 29) // 3 of 5 crash, t=2 needs 3 partials
	proto, err := New(simParams(5, 2, adv), circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Run(in); err == nil {
		t.Error("run succeeded without quorum")
	}
}

func TestValidation(t *testing.T) {
	circ, err := circuit.InnerProduct(2)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 0, T: 0, TE: tte.NewSim(512), PKE: pke.NewSim()},
		{N: 4, T: 2, TE: tte.NewSim(512), PKE: pke.NewSim()}, // 2t+1 > n
		{N: 4, T: 1, PKE: pke.NewSim()},
		{N: 4, T: 1, TE: tte.NewSim(512)},
	}
	for i, p := range bad {
		if _, err := New(p, circ, nil); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if _, err := New(simParams(4, 1, nil), nil, nil); err == nil {
		t.Error("nil circuit accepted")
	}
	proto, err := New(simParams(4, 1, nil), circ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Run(inputsOf(map[int][]uint64{0: {1}, 1: {1, 2}})); err == nil {
		t.Error("short inputs accepted")
	}
}

func TestOnlinePerGateGrowsWithN(t *testing.T) {
	// The baseline's defining cost: per-gate online partial-decryption
	// bytes grow linearly with n.
	circ, err := circuit.WideMul(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3, 4}, 1: {5, 6, 7, 8}})
	var per []float64
	for _, n := range []int{4, 8, 16} {
		res := runAndCompare(t, simParams(n, (n-1)/2, nil), circ, in)
		partial := res.Report.ByCat[comm.PhaseOnline][comm.CatPartial]
		per = append(per, float64(partial)/float64(circ.NumMul()))
	}
	if per[2] < 3*per[0] {
		t.Errorf("per-gate online cost did not grow ~linearly with n: %v", per)
	}
}

func TestRoundsAccounting(t *testing.T) {
	circ, err := circuit.PolyEval(3) // depth 3
	if err != nil {
		t.Fatal(err)
	}
	in := inputsOf(map[int][]uint64{0: {1, 2, 3, 4}, 1: {2}})
	res := runAndCompare(t, simParams(5, 2, nil), circ, in)
	if res.Rounds != 7 {
		t.Errorf("rounds = %d, want 7 for depth 3", res.Rounds)
	}
}
