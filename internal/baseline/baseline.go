// Package baseline implements the CDN-style YOSO MPC of Gentry et al.
// (CRYPTO 2021) — the comparison point of the paper's evaluation. The
// circuit is evaluated gate by gate on ciphertexts under a system-wide
// threshold key: addition is free, and every multiplication consumes a
// Beaver triple and two threshold decryptions, so each committee member
// publishes two partial decryptions per gate and reshares its tsk share to
// the next committee. Online communication is therefore Θ(n) elements per
// gate — the cost the packed protocol in internal/core removes.
//
// The implementation runs on the same substrate (threshold encryption,
// bulletin board, YOSO roles, adversary) and the same instrumentation, so
// byte counts are directly comparable.
package baseline

import (
	"errors"
	"fmt"
	"math/big"

	"yosompc/internal/circuit"
	"yosompc/internal/comm"
	"yosompc/internal/field"
	"yosompc/internal/nizk"
	"yosompc/internal/pke"
	"yosompc/internal/transport"
	"yosompc/internal/tte"
	"yosompc/internal/yoso"
)

// TE is the threshold-encryption surface the baseline needs.
type TE interface {
	tte.Scheme
	tte.Codec
}

// Params configures a baseline run.
type Params struct {
	// N is the committee size and T the corruption bound (t < n/2).
	N, T int
	// TE is the threshold-encryption backend.
	TE TE
	// PKE is the role-key encryption backend.
	PKE pke.Scheme
	// Adversary corrupts committees; nil means all-honest.
	Adversary *yoso.Adversary
}

// Errors reported by the baseline.
var (
	ErrBadParams = errors.New("baseline: invalid parameters")
	ErrNotEnough = errors.New("baseline: not enough honest contributions")
)

// Validate checks the parameters.
func (p *Params) Validate() error {
	switch {
	case p.N < 1 || p.T < 0 || p.T >= p.N:
		return fmt.Errorf("%w: n=%d t=%d", ErrBadParams, p.N, p.T)
	case 2*p.T+1 > p.N:
		return fmt.Errorf("%w: needs honest majority, n=%d t=%d", ErrBadParams, p.N, p.T)
	case p.TE == nil || p.PKE == nil:
		return fmt.Errorf("%w: missing backend", ErrBadParams)
	}
	return nil
}

// Result is the outcome of a baseline run.
type Result struct {
	// Outputs maps each client to its outputs in gate order.
	Outputs map[int][]field.Element
	// Report is the communication breakdown.
	Report comm.Report
	// Excluded lists roles whose proofs failed or who stayed silent.
	Excluded []string
	// Rounds is the number of sequential broadcast rounds.
	Rounds int
}

// Protocol is a configured baseline instance.
type Protocol struct {
	params Params
	circ   *circuit.Circuit
	board  *transport.Board
	assign *yoso.Assignment
	auth   *nizk.Authority
}

// New configures a baseline run. A nil meter creates a private one.
func New(params Params, circ *circuit.Circuit, meter *comm.Meter) (*Protocol, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if circ == nil {
		return nil, fmt.Errorf("%w: nil circuit", ErrBadParams)
	}
	auth, err := nizk.NewAuthority()
	if err != nil {
		return nil, err
	}
	board := transport.NewBoard(meter)
	assign := yoso.NewAssignment(board, params.PKE, params.Adversary)
	// Unpacked Shamir reconstruction needs t+1 shares, so committee
	// manifests advertise that quorum for fail-stop margin tracking.
	assign.Quorum = params.T + 1
	return &Protocol{
		params: params,
		circ:   circ,
		board:  board,
		assign: assign,
		auth:   auth,
	}, nil
}

// Board exposes the bulletin board.
func (p *Protocol) Board() *transport.Board { return p.board }

type run struct {
	p          *Protocol
	tpk        tte.PublicKey
	clients    map[int]*yoso.Role
	wireCt     []tte.Ciphertext
	beaver     map[int]*triple
	depthCache map[int]int
	excluded   []string
}

type triple struct{ a, b, c tte.Ciphertext }

var boundP = new(big.Int).SetUint64(field.Modulus)

func fieldCoeff(e field.Element) *big.Int { return new(big.Int).SetUint64(e.Uint64()) }

// Run executes the baseline protocol.
func (p *Protocol) Run(inputs map[int][]field.Element) (*Result, error) {
	for _, client := range p.circ.Clients() {
		if len(inputs[client]) != p.circ.InputCount(client) {
			return nil, fmt.Errorf("baseline: client %d supplied %d of %d inputs",
				client, len(inputs[client]), p.circ.InputCount(client))
		}
	}
	r := &run{p: p, clients: map[int]*yoso.Role{}, beaver: map[int]*triple{}}
	r.wireCt = make([]tte.Ciphertext, p.circ.NumWires())

	// Setup: TKGen + client keys.
	tpk, shares, err := p.params.TE.KeyGen(p.params.N, p.params.T)
	if err != nil {
		return nil, err
	}
	r.tpk = tpk
	tpkEnc, err := p.params.TE.EncodePublicKey(tpk)
	if err != nil {
		return nil, fmt.Errorf("baseline: encoding tpk announcement: %w", err)
	}
	p.board.Post("setup", comm.PhaseSetup, comm.CatCRS, tpkEnc, tpk)
	for _, id := range p.circ.Clients() {
		role, err := p.assign.NewKnownParty("client", id, comm.PhaseSetup)
		if err != nil {
			return nil, err
		}
		r.clients[id] = role
	}

	if err := r.offlineBeaver(); err != nil {
		return nil, fmt.Errorf("baseline offline: %w", err)
	}
	outputs, err := r.online(inputs, shares)
	if err != nil {
		return nil, fmt.Errorf("baseline online: %w", err)
	}
	// bOff1, bOff2, one client-input round, one committee per layer, bOut.
	return &Result{
		Outputs:  outputs,
		Report:   p.board.Report(),
		Excluded: r.excluded,
		Rounds:   4 + p.circ.Depth(),
	}, nil
}

// speakCommittee runs one committee step with per-role honest payloads of
// ciphertext bundles or partial-decryption bundles; honest closures return
// the payload together with its wire encoding (the bytes the board meters),
// and it returns the payloads of roles whose proofs verify.
func (r *run) speakCommittee(c *yoso.Committee, phase comm.Phase, cat comm.Category, label string,
	honest func(i int) (any, []byte, error), garbSize int) (map[int]any, error) {
	verified := map[int]any{}
	for i := 1; i <= c.N(); i++ {
		role := c.Role(i)
		switch role.Behavior {
		case yoso.FailStop:
			r.excluded = append(r.excluded, fmt.Sprintf("%s@%s (fail-stop)", role.Name(), label))
		case yoso.Malicious:
			role.Post(phase, cat, make([]byte, garbSize), "garbage")
			proof := r.p.auth.Forge()
			role.Post(phase, comm.CatProof, proof.Bytes(), proof)
			if r.p.auth.Verify(r.statement(label, role.Name()), proof) {
				verified[i] = nil // statistically impossible
			} else {
				r.excluded = append(r.excluded, fmt.Sprintf("%s@%s (malicious)", role.Name(), label))
			}
		default:
			payload, wire, err := honest(i)
			if err != nil {
				return nil, fmt.Errorf("baseline: %s at %s: %w", role.Name(), label, err)
			}
			role.Post(phase, cat, wire, payload)
			proof := r.p.auth.Attest(r.statement(label, role.Name()))
			role.Post(phase, comm.CatProof, proof.Bytes(), proof)
			verified[i] = payload
		}
	}
	c.SpeakAll()
	return verified, nil
}

func (r *run) statement(label, name string) []byte {
	return nizk.NewStatement("baseline/" + label).AddString(name).Bytes()
}

// offlineBeaver prepares one encrypted Beaver triple per multiplication
// gate, exactly as in the packed protocol's Step 1.
func (r *run) offlineBeaver() error {
	p := r.p.params
	te := p.TE
	var muls []int
	for i, g := range r.p.circ.Gates() {
		if g.Kind == circuit.KindMul {
			muls = append(muls, i)
		}
	}
	if len(muls) == 0 {
		return nil
	}
	b1, err := r.p.assign.FormCommittee("bOff1", p.N, comm.PhaseOffline)
	if err != nil {
		return err
	}
	b2, err := r.p.assign.FormCommittee("bOff2", p.N, comm.PhaseOffline)
	if err != nil {
		return err
	}
	ctSize := r.tpk.CiphertextSize()

	aPosts, err := r.speakCommittee(b1, comm.PhaseOffline, comm.CatBeaver, "beaver-a",
		func(i int) (any, []byte, error) {
			cts := make([]tte.Ciphertext, len(muls))
			var wire []byte
			for g := range muls {
				ct, err := te.Encrypt(r.tpk, fieldCoeff(field.MustRandom()), boundP)
				if err != nil {
					return nil, nil, err
				}
				cts[g] = ct
				enc, err := te.EncodeCiphertext(ct)
				if err != nil {
					return nil, nil, err
				}
				wire = append(wire, enc...)
			}
			return cts, wire, nil
		}, len(muls)*ctSize)
	if err != nil {
		return err
	}
	cA, err := r.sumPer(aPosts, len(muls))
	if err != nil {
		return err
	}

	type bc struct{ b, c []tte.Ciphertext }
	bcPosts, err := r.speakCommittee(b2, comm.PhaseOffline, comm.CatBeaver, "beaver-bc",
		func(i int) (any, []byte, error) {
			out := bc{b: make([]tte.Ciphertext, len(muls)), c: make([]tte.Ciphertext, len(muls))}
			var wire []byte
			for g := range muls {
				bv := field.MustRandom()
				bct, err := te.Encrypt(r.tpk, fieldCoeff(bv), boundP)
				if err != nil {
					return nil, nil, err
				}
				cct, err := te.Eval(r.tpk, []tte.Ciphertext{cA[g]}, []*big.Int{fieldCoeff(bv)})
				if err != nil {
					return nil, nil, err
				}
				out.b[g], out.c[g] = bct, cct
				for _, ct := range []tte.Ciphertext{bct, cct} {
					enc, err := te.EncodeCiphertext(ct)
					if err != nil {
						return nil, nil, err
					}
					wire = append(wire, enc...)
				}
			}
			return out, wire, nil
		}, 2*len(muls)*ctSize)
	if err != nil {
		return err
	}
	for g, gi := range muls {
		var bParts, cParts []tte.Ciphertext
		for _, raw := range bcPosts {
			pb, ok := raw.(bc)
			if !ok {
				continue
			}
			bParts = append(bParts, pb.b[g])
			cParts = append(cParts, pb.c[g])
		}
		if len(bParts) == 0 {
			return fmt.Errorf("%w: no Beaver b-contributions", ErrNotEnough)
		}
		sumB, err := te.Eval(r.tpk, bParts, ones(len(bParts)))
		if err != nil {
			return err
		}
		sumC, err := te.Eval(r.tpk, cParts, ones(len(cParts)))
		if err != nil {
			return err
		}
		r.beaver[gi] = &triple{a: cA[g], b: sumB, c: sumC}
	}
	return nil
}

func (r *run) sumPer(posts map[int]any, count int) ([]tte.Ciphertext, error) {
	te := r.p.params.TE
	out := make([]tte.Ciphertext, count)
	for pos := 0; pos < count; pos++ {
		var parts []tte.Ciphertext
		for _, raw := range posts {
			cts, ok := raw.([]tte.Ciphertext)
			if !ok {
				continue
			}
			parts = append(parts, cts[pos])
		}
		if len(parts) == 0 {
			return nil, fmt.Errorf("%w: position %d", ErrNotEnough, pos)
		}
		sum, err := te.Eval(r.tpk, parts, ones(len(parts)))
		if err != nil {
			return nil, err
		}
		out[pos] = sum
	}
	return out, nil
}

func ones(m int) []*big.Int {
	out := make([]*big.Int, m)
	for i := range out {
		out[i] = big.NewInt(1)
	}
	return out
}

// online evaluates the circuit gate by gate: clients post encrypted
// inputs; one committee per multiplication layer opens the Beaver masks
// and reshares tsk onward; a final committee re-encrypts outputs.
func (r *run) online(inputs map[int][]field.Element, dealerShares []tte.KeyShare) (map[int][]field.Element, error) {
	p := r.p.params
	te := p.TE
	gates := r.p.circ.Gates()
	// Inputs: each client broadcasts TEnc(tpk, v) per input wire.
	for _, client := range r.p.circ.Clients() {
		role := r.clients[client]
		inGates := r.p.circ.InputGates(client)
		var wire []byte
		cts := make([]tte.Ciphertext, len(inGates))
		for j := range inGates {
			ct, err := te.Encrypt(r.tpk, fieldCoeff(inputs[client][j]), boundP)
			if err != nil {
				return nil, err
			}
			cts[j] = ct
			enc, err := te.EncodeCiphertext(ct)
			if err != nil {
				return nil, err
			}
			wire = append(wire, enc...)
		}
		if len(wire) > 0 {
			role.Post(comm.PhaseOnline, comm.CatInput, wire, cts)
			proof := r.p.auth.Attest(r.statement("input", role.Name()))
			role.Post(comm.PhaseOnline, comm.CatProof, proof.Bytes(), proof)
		}
		for j, gi := range inGates {
			r.wireCt[gates[gi].Out] = cts[j]
		}
	}

	// Committees: one per multiplication layer plus the output committee.
	depth := r.p.circ.Depth()
	committees := make([]*yoso.Committee, 0, depth+1)
	for l := 1; l <= depth; l++ {
		c, err := r.p.assign.FormCommittee(fmt.Sprintf("bLayer%d", l), p.N, comm.PhaseOnline)
		if err != nil {
			return nil, err
		}
		committees = append(committees, c)
	}
	outC, err := r.p.assign.FormCommittee("bOut", p.N, comm.PhaseOnline)
	if err != nil {
		return nil, err
	}
	committees = append(committees, outC)

	// Dealer delivery of epoch-0 shares to the first committee: each share
	// travels as a real PKE envelope sealed under the receiving role's key
	// (the driver additionally hands the shares over in-process).
	shares := dealerShares
	for i, sh := range shares {
		data, err := te.EncodeKeyShare(sh)
		if err != nil {
			return nil, fmt.Errorf("baseline: encoding dealer tsk share %d: %w", i+1, err)
		}
		env, err := committees[0].Role(i + 1).PublicKey().Encrypt(data)
		if err != nil {
			return nil, fmt.Errorf("baseline: sealing dealer tsk share %d: %w", i+1, err)
		}
		enc, err := p.PKE.EncodeCiphertext(env)
		if err != nil {
			return nil, fmt.Errorf("baseline: encoding dealer envelope %d: %w", i+1, err)
		}
		r.p.board.Post("setup-dealer", comm.PhaseSetup, comm.CatReshare, enc, env)
	}

	// Group mul gates by layer.
	byLayer := map[int][]int{}
	for i, g := range gates {
		if g.Kind == circuit.KindMul {
			byLayer[r.mulDepthOf(i)] = append(byLayer[r.mulDepthOf(i)], i)
		}
	}

	handoff := map[int][]tte.SubShare{} // target index → subshares for next committee
	for l := 1; l <= depth; l++ {
		c := committees[l-1]
		next := committees[l]
		if l > 1 {
			if shares, err = r.recoverShares(c, handoff); err != nil {
				return nil, err
			}
		}
		// Linear propagation up to this layer.
		if err := r.propagateLinear(); err != nil {
			return nil, err
		}
		layerGates := byLayer[l]
		open := make([]tte.Ciphertext, 0, 2*len(layerGates))
		for _, gi := range layerGates {
			g := gates[gi]
			bt := r.beaver[gi]
			eps, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.A], bt.a}, ones(2))
			if err != nil {
				return nil, err
			}
			del, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.B], bt.b}, ones(2))
			if err != nil {
				return nil, err
			}
			open = append(open, eps, del)
		}
		handoffNext := map[int][]tte.SubShare{}
		posts, err := r.speakCommittee(c, comm.PhaseOnline, comm.CatPartial, fmt.Sprintf("layer%d", l),
			func(i int) (any, []byte, error) {
				sh := shares[i-1]
				if sh == nil {
					return nil, nil, fmt.Errorf("role %d has no tsk share", i)
				}
				parts := make([]tte.PartialDec, len(open))
				var wire []byte
				for j, ct := range open {
					part, err := te.PartialDecrypt(r.tpk, sh, ct)
					if err != nil {
						return nil, nil, err
					}
					parts[j] = part
					penc, err := te.EncodePartial(part)
					if err != nil {
						return nil, nil, err
					}
					wire = append(wire, penc...)
				}
				subs, err := te.Reshare(r.tpk, sh)
				if err != nil {
					return nil, nil, err
				}
				// Each subshare travels sealed under the receiving role's
				// key in the next committee.
				for _, sub := range subs {
					data, err := te.EncodeSubShare(sub)
					if err != nil {
						return nil, nil, err
					}
					env, err := next.Role(sub.To()).PublicKey().Encrypt(data)
					if err != nil {
						return nil, nil, err
					}
					enc, err := p.PKE.EncodeCiphertext(env)
					if err != nil {
						return nil, nil, err
					}
					wire = append(wire, enc...)
				}
				return partialBundle{parts: parts, subs: subs}, wire, nil
			}, 2*len(layerGates)*r.tpk.CiphertextSize()+p.N*(r.tpk.CiphertextSize()+60))
		if err != nil {
			return nil, err
		}
		// Combine openings and apply the Beaver identity.
		for j, gi := range layerGates {
			g := gates[gi]
			bt := r.beaver[gi]
			eps, err := r.combine(open[2*j], posts, 2*j)
			if err != nil {
				return nil, err
			}
			del, err := r.combine(open[2*j+1], posts, 2*j+1)
			if err != nil {
				return nil, err
			}
			// c^xy = ε·c^y + (p−δ)·c^a + c^c.
			out, err := te.Eval(r.tpk,
				[]tte.Ciphertext{r.wireCt[g.B], bt.a, bt.c},
				[]*big.Int{fieldCoeff(eps), fieldCoeff(del.Neg()), big.NewInt(1)})
			if err != nil {
				return nil, err
			}
			r.wireCt[g.Out] = out
		}
		// File the resharing for the next committee.
		for _, raw := range posts {
			pb, ok := raw.(partialBundle)
			if !ok {
				continue
			}
			for _, sub := range pb.subs {
				handoffNext[sub.To()] = append(handoffNext[sub.To()], sub)
			}
		}
		handoff = handoffNext
	}
	if err := r.propagateLinear(); err != nil {
		return nil, err
	}

	// Output: the final committee re-encrypts output wires to clients.
	if depth > 0 {
		if shares, err = r.recoverShares(outC, handoff); err != nil {
			return nil, err
		}
	}
	return r.outputs(outC, shares)
}

type partialBundle struct {
	parts []tte.PartialDec
	subs  []tte.SubShare
}

// mulDepthOf computes a gate's multiplicative depth via the circuit's
// batch metadata (MulBatches with k=1 yields one gate per batch).
func (r *run) mulDepthOf(gi int) int {
	if r.depthCache == nil {
		r.depthCache = map[int]int{}
		for _, mb := range r.p.circ.MulBatches(1) {
			for _, g := range mb.Gates {
				r.depthCache[g] = mb.Layer
			}
		}
	}
	return r.depthCache[gi]
}

// combine merges the verified partial decryptions at position pos.
func (r *run) combine(ct tte.Ciphertext, posts map[int]any, pos int) (field.Element, error) {
	te := r.p.params.TE
	var parts []tte.PartialDec
	for _, raw := range posts {
		pb, ok := raw.(partialBundle)
		if !ok || pos >= len(pb.parts) {
			continue
		}
		parts = append(parts, pb.parts[pos])
	}
	v, err := te.Combine(r.tpk, ct, parts)
	if err != nil {
		return field.Zero, fmt.Errorf("%w: %v", ErrNotEnough, err)
	}
	return field.FromBig(v), nil
}

// recoverShares rebuilds committee members' tsk shares from the previous
// committee's resharing.
func (r *run) recoverShares(c *yoso.Committee, handoff map[int][]tte.SubShare) ([]tte.KeyShare, error) {
	te := r.p.params.TE
	shares := make([]tte.KeyShare, c.N())
	for i := 1; i <= c.N(); i++ {
		if c.Role(i).Behavior == yoso.FailStop {
			continue
		}
		sh, err := te.RecoverShare(r.tpk, i, handoff[i])
		if err != nil {
			return nil, fmt.Errorf("%w: recovering tsk share for %s: %v", ErrNotEnough, c.Role(i).Name(), err)
		}
		shares[i-1] = sh
	}
	return shares, nil
}

// propagateLinear fills λ-free linear wires from their inputs.
func (r *run) propagateLinear() error {
	te := r.p.params.TE
	pm1 := new(big.Int).SetUint64(field.Modulus - 1)
	for _, g := range r.p.circ.Gates() {
		if g.Kind != circuit.KindAdd && g.Kind != circuit.KindSub &&
			g.Kind != circuit.KindConstMul && g.Kind != circuit.KindConst {
			continue
		}
		if r.wireCt[g.Out] != nil {
			continue
		}
		switch g.Kind {
		case circuit.KindConst:
			// Anyone can encrypt a public constant under tpk.
			ct, err := te.Encrypt(r.tpk, fieldCoeff(g.Const), boundP)
			if err != nil {
				return err
			}
			r.wireCt[g.Out] = ct
		case circuit.KindAdd:
			if r.wireCt[g.A] == nil || r.wireCt[g.B] == nil {
				continue
			}
			ct, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.A], r.wireCt[g.B]}, ones(2))
			if err != nil {
				return err
			}
			r.wireCt[g.Out] = ct
		case circuit.KindSub:
			if r.wireCt[g.A] == nil || r.wireCt[g.B] == nil {
				continue
			}
			ct, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.A], r.wireCt[g.B]},
				[]*big.Int{big.NewInt(1), pm1})
			if err != nil {
				return err
			}
			r.wireCt[g.Out] = ct
		case circuit.KindConstMul:
			if r.wireCt[g.A] == nil {
				continue
			}
			ct, err := te.Eval(r.tpk, []tte.Ciphertext{r.wireCt[g.A]}, []*big.Int{fieldCoeff(g.Const)})
			if err != nil {
				return err
			}
			r.wireCt[g.Out] = ct
		}
	}
	return nil
}

// outputs has the final committee re-encrypt each output wire to its
// client, who combines and unmasks.
func (r *run) outputs(outC *yoso.Committee, shares []tte.KeyShare) (map[int][]field.Element, error) {
	p := r.p.params
	te := p.TE
	gates := r.p.circ.Gates()
	type outGate struct {
		gi, client int
		wire       circuit.WireID
	}
	var outs []outGate
	for _, client := range r.p.circ.Clients() {
		for _, gi := range r.p.circ.OutputGates(client) {
			outs = append(outs, outGate{gi: gi, client: client, wire: gates[gi].A})
		}
	}
	posts, err := r.speakCommittee(outC, comm.PhaseOnline, comm.CatOutput, "output",
		func(i int) (any, []byte, error) {
			sh := shares[i-1]
			if sh == nil {
				return nil, nil, fmt.Errorf("role %d has no tsk share", i)
			}
			envs := make(map[int]pke.Ciphertext, len(outs))
			var wire []byte
			for _, og := range outs {
				part, err := te.PartialDecrypt(r.tpk, sh, r.wireCt[og.wire])
				if err != nil {
					return nil, nil, err
				}
				data, err := te.EncodePartial(part)
				if err != nil {
					return nil, nil, err
				}
				env, err := r.clients[og.client].PublicKey().Encrypt(data)
				if err != nil {
					return nil, nil, err
				}
				envs[og.gi] = env
				enc, err := p.PKE.EncodeCiphertext(env)
				if err != nil {
					return nil, nil, err
				}
				wire = append(wire, enc...)
			}
			return envs, wire, nil
		}, len(outs)*(r.tpk.CiphertextSize()+60))
	if err != nil {
		return nil, err
	}
	outputs := map[int][]field.Element{}
	for _, og := range outs {
		var parts []tte.PartialDec
		for _, raw := range posts {
			envs, ok := raw.(map[int]pke.Ciphertext)
			if !ok {
				continue
			}
			data, err := r.clients[og.client].SecretKey().Decrypt(envs[og.gi])
			if err != nil {
				continue
			}
			part, err := te.DecodePartial(r.tpk, data)
			if err != nil {
				continue
			}
			parts = append(parts, part)
		}
		v, err := te.Combine(r.tpk, r.wireCt[og.wire], parts)
		if err != nil {
			return nil, fmt.Errorf("%w: output %d: %v", ErrNotEnough, og.gi, err)
		}
		outputs[og.client] = append(outputs[og.client], field.FromBig(v))
	}
	return outputs, nil
}
