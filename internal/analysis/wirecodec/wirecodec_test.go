package wirecodec

import (
	"testing"

	"yosompc/internal/analysis/analysistest"
)

// TestFixtures runs the analyzer over the wire fixtures (quartet
// completeness, size model, fuzz coverage, size pins, in-package and
// external test variants) and the board fixtures (codec-less payloads at
// publication calls, the //yosolint:wireok escape hatch).
func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "wire", "board")
}
