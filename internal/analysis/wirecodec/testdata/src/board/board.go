// Package board exercises the codec-less payload rule: board publication
// calls fed []byte(string) conversions or fmt.Append* results are flagged;
// metadata strings and pre-encoded bytes are not.
package board

import "fmt"

// Board stands in for the bulletin-board client.
type Board struct{}

// Post mirrors the transport client's shape: string metadata plus wire
// bytes.
func (b *Board) Post(from, cat string, wire []byte) error { return nil }

// PublishText smuggles formatted text into the wire-bytes slot. The
// formatted category string is metadata and stays legal.
func PublishText(b *Board, n int) {
	_ = b.Post("p1", fmt.Sprintf("round-%d", n), []byte(fmt.Sprintf("count=%d", n))) // want `codec-less board payload`
}

// PublishAppend builds the payload with fmt.Appendf: same defect, no
// intermediate string conversion.
func PublishAppend(b *Board, n int) {
	_ = b.Post("p1", "sizes", fmt.Appendf(nil, "n=%d", n)) // want `codec-less board payload fmt.Appendf`
}

// PublishBytes posts pre-encoded bytes: clean.
func PublishBytes(b *Board, enc []byte) {
	_ = b.Post("p1", "shares", enc)
}

// PublishJustified posts a constant control frame with the intent
// recorded.
func PublishJustified(b *Board) {
	_ = b.Post("p1", "ping", []byte("ping")) //yosolint:wireok constant liveness frame, receiver never decodes it
}
