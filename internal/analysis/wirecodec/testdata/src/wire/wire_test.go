package wire

import "testing"

// FuzzGoodRoundTrip gives Good its decoder coverage.
func FuzzGoodRoundTrip(f *testing.F) {
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		var g Good
		if err := g.UnmarshalBinary(data[:1]); err != nil {
			return
		}
		if _, err := g.MarshalBinary(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzUnpinnedDecode covers Unpinned's decoder but never pins its size.
func FuzzUnpinnedDecode(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		var u Unpinned
		_ = u.UnmarshalBinary(data)
	})
}

// TestSizes pins Good and Unfuzzed (but not Unpinned).
func TestSizes(t *testing.T) {
	var g Good
	if g.EncodedSize() != 1 {
		t.Fatalf("Good.EncodedSize = %d, want 1", g.EncodedSize())
	}
	var u Unfuzzed
	if u.EncodedSize() != 0 {
		t.Fatalf("Unfuzzed.EncodedSize = %d, want 0", u.EncodedSize())
	}
}
