// Package wire exercises the wirecodec analyzer: quartet completeness,
// the EncodedSize requirement, fuzz-target coverage, size-model test
// pins, and the //yosolint:wireok escape hatch.
package wire

import "io"

// Good is the reference wire type: full quartet, explicit size model,
// fuzzed and pinned in wire_test.go.
type Good struct {
	b byte
}

func (g Good) MarshalBinary() ([]byte, error)     { return []byte{g.b}, nil }
func (g *Good) UnmarshalBinary(data []byte) error { g.b = data[0]; return nil }
func (g Good) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write([]byte{g.b})
	return int64(n), err
}
func (g *Good) ReadFrom(r io.Reader) (int64, error) {
	var p [1]byte
	n, err := r.Read(p[:])
	g.b = p[0]
	return int64(n), err
}
func (g Good) EncodedSize() int { return 1 }

// Partial has the marshal half only: the remote transport would have
// nothing to stream.
type Partial struct{} // want `wire type Partial implements MarshalBinary but not ReadFrom, UnmarshalBinary, WriteTo`

func (p Partial) MarshalBinary() ([]byte, error) { return nil, nil }

// NoSize has the full quartet but no size model and no fuzz target.
type NoSize struct{} // want `wire type NoSize has no EncodedSize method` `wire type NoSize has no Fuzz target`

func (s NoSize) MarshalBinary() ([]byte, error)       { return nil, nil }
func (s *NoSize) UnmarshalBinary(data []byte) error   { return nil }
func (s NoSize) WriteTo(w io.Writer) (int64, error)   { return 0, nil }
func (s *NoSize) ReadFrom(r io.Reader) (int64, error) { return 0, nil }

// Unfuzzed is complete and pinned but no fuzz target references it.
type Unfuzzed struct{} // want `wire type Unfuzzed has no Fuzz target exercising its codec`

func (u Unfuzzed) MarshalBinary() ([]byte, error)       { return nil, nil }
func (u *Unfuzzed) UnmarshalBinary(data []byte) error   { return nil }
func (u Unfuzzed) WriteTo(w io.Writer) (int64, error)   { return 0, nil }
func (u *Unfuzzed) ReadFrom(r io.Reader) (int64, error) { return 0, nil }
func (u Unfuzzed) EncodedSize() int                     { return 0 }

// Unpinned is complete and fuzzed but nothing asserts its size model.
type Unpinned struct{} // want `wire type Unpinned: EncodedSize is not pinned by any test`

func (u Unpinned) MarshalBinary() ([]byte, error)       { return nil, nil }
func (u *Unpinned) UnmarshalBinary(data []byte) error   { return nil }
func (u Unpinned) WriteTo(w io.Writer) (int64, error)   { return 0, nil }
func (u *Unpinned) ReadFrom(r io.Reader) (int64, error) { return 0, nil }
func (u Unpinned) EncodedSize() int                     { return 0 }

// Extern's fuzz target and size pin live in the external wire_test
// package (wire_ext_test.go): coverage counts across both test variants.
type Extern struct{}

func (e Extern) MarshalBinary() ([]byte, error)       { return nil, nil }
func (e *Extern) UnmarshalBinary(data []byte) error   { return nil }
func (e Extern) WriteTo(w io.Writer) (int64, error)   { return 0, nil }
func (e *Extern) ReadFrom(r io.Reader) (int64, error) { return 0, nil }
func (e Extern) EncodedSize() int                     { return 0 }

// Justified opts out with the mandatory justification: a local snapshot
// type that reuses the marshal name but never crosses the board.
type Justified struct{} //yosolint:wireok local debug snapshot, never posted to the board

func (j Justified) MarshalBinary() ([]byte, error) { return nil, nil }
