package wire_test

import (
	"testing"

	wire "yosompc/internal/analysis/wirecodec/testdata/src/wire"
)

// FuzzExternRoundTrip covers Extern from the external test package.
func FuzzExternRoundTrip(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		var e wire.Extern
		_ = e.UnmarshalBinary(data)
	})
}

// TestExternSize pins Extern's size model from the external test package.
func TestExternSize(t *testing.T) {
	var e wire.Extern
	if e.EncodedSize() != 0 {
		t.Fatalf("Extern.EncodedSize = %d, want 0", e.EncodedSize())
	}
}
