// Package wirecodec is the wire-hygiene analyzer of the yosolint suite.
// Every type that crosses the bulletin board travels as bytes; the repo's
// discipline (docs/WIRE.md, after lattigo's uniform BinaryMarshaler
// convention) is that such a type implements the full codec quartet —
// MarshalBinary, UnmarshalBinary, WriteTo, ReadFrom — plus an explicit
// EncodedSize model, and that its decoders are exercised by a fuzz target
// and its size model pinned by a test. This analyzer enforces all of it
// mechanically:
//
//   - a named type declaring MarshalBinary or UnmarshalBinary must
//     declare the whole quartet (the streaming halves are what the remote
//     transport actually calls);
//   - a quartet type must declare EncodedSize() int — the byte-accounting
//     contract the server-verified wire experiment audits;
//   - a quartet type must be referenced from some Fuzz* target in its
//     package's tests (in-package or external), so hostile bytes reach
//     its decoders; and
//   - a quartet type's EncodedSize must be called somewhere in those
//     tests, pinning the size model against silent format drift.
//
// Independently, board publication calls (Post/Publish/Broadcast in the
// board-facing packages) must not be fed text dressed up as wire bytes: a
// []byte(string) conversion or fmt.Append* result as an argument is a
// codec-less payload and is reported at the call.
//
// Core's in-process payloads go through the sized/encodeWire interface,
// whose length cross-check runs at runtime in encodePost — they never
// implement the quartet and are out of scope here. A type that is wire-
// adjacent but deliberately outside the discipline is acknowledged with
// `//yosolint:wireok <why>` on its declaration (or the offending call);
// the justification is mandatory and audited via cmd/yosolint -json.
package wirecodec

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/taint"
)

// Analyzer is the wirecodec analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "wirecodec",
	Doc:        "require the full MarshalBinary/UnmarshalBinary/WriteTo/ReadFrom quartet, a fuzz target, and a size-model test for every board-crossing type",
	Directives: []string{"wireok", "ignore"},
	RunModule:  run,
}

// quartet is the canonical method set, in report order.
var quartet = []string{"MarshalBinary", "UnmarshalBinary", "WriteTo", "ReadFrom"}

func run(mp *analysis.ModulePass) error {
	// Pass 1: collect test-side facts across the whole load. Test files
	// appear both merged into their package (in-package _test.go) and as
	// separate external test packages (path suffixed "_test"); the
	// filename suffix identifies them uniformly.
	fuzzRefs := map[string]bool{} // TypeKey -> referenced from a Fuzz* target
	sizePins := map[string]bool{} // TypeKey -> EncodedSize called in a test
	for _, pkg := range mp.Packages {
		collectTestFacts(pkg, fuzzRefs, sizePins)
	}
	// Pass 2: check wire types and board payloads of the target packages.
	for _, pkg := range mp.Packages {
		if pkg.DepOnly || strings.HasSuffix(pkg.Path, "_test") {
			continue
		}
		checkWireTypes(mp, pkg, fuzzRefs, sizePins)
		checkPayloads(mp, pkg)
	}
	return nil
}

// collectTestFacts scans a package's test files for fuzz-target type
// references and EncodedSize call sites.
func collectTestFacts(pkg *analysis.Package, fuzzRefs, sizePins map[string]bool) {
	if pkg.Info == nil {
		return
	}
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isFuzz := strings.HasPrefix(fd.Name.Name, "Fuzz")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.Ident:
					if !isFuzz {
						return true
					}
					if tn, ok := pkg.Info.Uses[x].(*types.TypeName); ok {
						if key := taint.TypeKey(tn); key != "" {
							fuzzRefs[key] = true
						}
					}
				case *ast.CallExpr:
					sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "EncodedSize" {
						return true
					}
					if tv, ok := pkg.Info.Types[sel.X]; ok && tv.Type != nil {
						if key := namedKey(tv.Type); key != "" {
							sizePins[key] = true
						}
					}
				}
				return true
			})
		}
	}
}

// checkWireTypes applies the quartet/fuzz/size rules to every named type
// the package declares in non-test files.
func checkWireTypes(mp *analysis.ModulePass, pkg *analysis.Package, fuzzRefs, sizePins map[string]bool) {
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				checkType(mp, pkg, ts, named, fuzzRefs, sizePins)
			}
		}
	}
}

func checkType(mp *analysis.ModulePass, pkg *analysis.Package, ts *ast.TypeSpec, named *types.Named, fuzzRefs, sizePins map[string]bool) {
	have := map[string]bool{}
	hasSize := false
	for i := 0; i < named.NumMethods(); i++ {
		switch name := named.Method(i).Name(); name {
		case "MarshalBinary", "UnmarshalBinary", "WriteTo", "ReadFrom":
			have[name] = true
		case "EncodedSize":
			hasSize = true
		}
	}
	// The gate is the binary-codec pair: a type with only WriteTo (a
	// telemetry exporter, a report renderer) is not board-bound.
	if !have["MarshalBinary"] && !have["UnmarshalBinary"] {
		return
	}
	if len(have) < len(quartet) {
		var missing []string
		for _, m := range quartet {
			if !have[m] {
				missing = append(missing, m)
			}
		}
		sort.Strings(missing)
		mp.Reportf(ts.Pos(), "wire type %s implements %s but not %s; board-crossing types implement the full MarshalBinary/UnmarshalBinary/WriteTo/ReadFrom quartet",
			named.Obj().Name(), joinHave(have), strings.Join(missing, ", "))
		return
	}
	key := taint.TypeKey(named.Obj())
	if !hasSize {
		mp.Reportf(ts.Pos(), "wire type %s has no EncodedSize method; the wire-size model must be explicit for byte accounting", named.Obj().Name())
	}
	if !fuzzRefs[key] {
		mp.Reportf(ts.Pos(), "wire type %s has no Fuzz target exercising its codec; hostile bytes must reach UnmarshalBinary/ReadFrom", named.Obj().Name())
	}
	if hasSize && !sizePins[key] {
		mp.Reportf(ts.Pos(), "wire type %s: EncodedSize is not pinned by any test; the size model can drift silently", named.Obj().Name())
	}
}

func joinHave(have map[string]bool) string {
	var out []string
	for _, m := range quartet {
		if have[m] {
			out = append(out, m)
		}
	}
	return strings.Join(out, ", ")
}

// checkPayloads flags codec-less payload expressions at board publication
// calls in non-test files.
func checkPayloads(mp *analysis.ModulePass, pkg *analysis.Package) {
	boardNames := map[string]bool{"Post": true, "Publish": true, "Broadcast": true}
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pkg, call)
			if fn == nil || fn.Pkg() == nil || !boardNames[fn.Name()] || !boardPkg(fn.Pkg().Path()) {
				return true
			}
			for _, arg := range call.Args {
				if reason := codecless(pkg, arg); reason != "" {
					mp.Reportf(arg.Pos(), "codec-less board payload %s: wire bytes come from a codec (MarshalBinary/encodeWire), not from text", reason)
				}
			}
			return true
		})
	}
}

// codecless reports why an argument is text dressed up as wire bytes:
// a []byte(string) conversion or a fmt.Append* result.
func codecless(pkg *analysis.Package, arg ast.Expr) string {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return ""
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if !isByteSlice(tv.Type) || len(call.Args) != 1 {
			return ""
		}
		if at, ok := pkg.Info.Types[call.Args[0]]; ok && at.Type != nil {
			if b, ok := at.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return "[]byte(" + types.ExprString(call.Args[0]) + ")"
			}
		}
		return ""
	}
	if fn := callee(pkg, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Append") {
		return "fmt." + fn.Name() + "(…)"
	}
	return ""
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// namedKey renders the named type behind t (through pointers) as a
// TypeKey, "" when t is not named.
func namedKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return taint.TypeKey(n.Obj())
	}
	return ""
}

func boardPkg(path string) bool {
	return taint.PathHasSegment(path, "transport") ||
		taint.PathHasSegment(path, "comm") ||
		taint.PathHasSegment(path, "yoso") ||
		taint.PathHasSegment(path, "board")
}

// callee resolves the static callee of a call, if any.
func callee(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
