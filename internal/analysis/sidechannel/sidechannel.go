// Package sidechannel is the execution-trace hygiene analyzer of the
// yosolint suite: it flags secret material influencing what an observer of
// the execution trace can measure — which branch was taken, which memory
// was touched, how long a library call ran.
//
// A YOSO committee member's value lies in being unpredictable until it
// speaks; a secret-dependent branch, loop bound, or table index lets a
// co-located observer (cache timing, port contention) recover share bits
// before the role ever posts. The analyzer reuses secretflow's
// secret-source model — the builtin secret set plus //yosolint:secret
// annotations — and reports four sink classes:
//
//   - branch: a secret-tainted value decides an if/for/switch condition
//     (loop bounds included: conditions of counting loops are CFG control
//     expressions like any other);
//   - index: a secret-tainted value indexes a slice, array, map or string;
//   - compare: a secret flows into a variable-time comparison
//     (bytes.Equal, bytes.Compare, reflect.DeepEqual) — use
//     crypto/subtle.ConstantTimeCompare or crypto/hmac.Equal;
//   - bigint: a secret operand feeds a variable-time math/big operation
//     (Cmp, Div, Mod, Exp, ModInverse, GCD, …) outside the sanctioned
//     kernels.
//
// Sanctioned-call list: crypto/subtle and crypto/hmac consume secrets in
// constant time and are simply never classified as sinks; secretflow's
// sanitizers (Encrypt*, Prove*, modexp's exponentiation engine, crypto/*)
// launder their results here too, so branching on a ciphertext or a
// commitment stays silent. The `paillier`, `field`, and `modexp` kernel
// packages are sanctioned wholesale: field is branchless uint64
// arithmetic, while paillier and modexp are built on math/big and
// documented as variable-time at this layer — their internals are audited
// by hand, and their summaries carry no trace-sink facts, so callers are
// not flagged for using them.
//
// A finding that is acceptable — the compared value is already public at
// that point in the protocol, the timing variation is bounded and
// harmless — is acknowledged in place with `//yosolint:vartime <why>`; the
// justification is mandatory and preserved in -json/-sarif output.
// Analysis is interprocedural: a helper that branches on its parameter
// reports at every call site that passes a secret into it. Test files are
// exempt (a test comparing shares with reflect.DeepEqual is not a timing
// surface).
package sidechannel

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/secretflow"
	"yosompc/internal/analysis/taint"
)

// Analyzer is the sidechannel analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "sidechannel",
	Doc:        "flag secret-dependent branches, memory indexing, and variable-time calls (timing/cache side channels)",
	Directives: []string{"vartime", "ignore"},
	Markers:    []string{"secret"},
	RunModule:  run,
}

func run(mp *analysis.ModulePass) error {
	eng := taint.NewEngine(taint.Config{
		SecretTypes:  secretflow.BuiltinSecretTypes,
		SecretFields: secretflow.BuiltinSecretFields,
		Sinks:        classifySink,
		Sanitizer:    secretflow.IsSanitizer,
		ControlSink:  controlSink,
		IndexSink:    indexSink,
	})
	for _, pkg := range mp.Packages {
		secretflow.MarkSecrets(eng, pkg)
	}
	for _, pkg := range mp.Packages {
		leaks := eng.AddPackage(pkg)
		if pkg.DepOnly {
			continue
		}
		for _, l := range leaks {
			if strings.HasSuffix(mp.Fset.Position(l.Pos).Filename, "_test.go") {
				continue
			}
			mp.Reportf(l.Pos, "%s", message(l))
		}
	}
	return nil
}

// sanctioned reports packages whose internals are exempt from trace-sink
// classification: the modular-arithmetic kernels. field is branchless
// uint64 arithmetic; paillier is built on math/big and documented as
// variable-time at this layer; modexp is the engine package all
// variable-time big-int exponentiation was consolidated into — its
// package doc carries the one-way-function argument the per-site vartime
// directives used to repeat. Suppressing classification (rather than
// filtering reports) also keeps trace-sink facts out of their summaries,
// so callers are not flagged for using the sanctioned kernels.
func sanctioned(path string) bool {
	return taint.PathHasSegment(path, "paillier") ||
		taint.PathHasSegment(path, "field") ||
		taint.PathHasSegment(path, "modexp")
}

// exempt reports positions where trace sinks are not classified at all:
// sanctioned kernel packages, external test packages, and _test.go files
// (whose helpers would otherwise contribute sink facts to summaries).
func exempt(pkg *analysis.Package, pos token.Pos) bool {
	if pkg.Types != nil {
		path := pkg.Types.Path()
		if sanctioned(path) || strings.HasSuffix(path, "_test") {
			return true
		}
	}
	return strings.HasSuffix(pkg.Fset.Position(pos).Filename, "_test.go")
}

// bigVartime maps variable-time *big.Int methods to the operand positions
// whose values drive the running time. Receivers that are pure
// destinations (z in z.Div(x, y)) are not operands; for comparisons the
// receiver is one.
var bigVartime = map[string]struct {
	args []int
	recv bool
}{
	"Cmp":        {args: []int{0}, recv: true},
	"CmpAbs":     {args: []int{0}, recv: true},
	"Div":        {args: []int{0, 1}},
	"Mod":        {args: []int{0, 1}},
	"DivMod":     {args: []int{0, 1}},
	"Quo":        {args: []int{0, 1}},
	"Rem":        {args: []int{0, 1}},
	"QuoRem":     {args: []int{0, 1}},
	"ModInverse": {args: []int{0, 1}},
	"ModSqrt":    {args: []int{0, 1}},
	"GCD":        {args: []int{2, 3}},
	"Exp":        {args: []int{0, 1}},
	"Sqrt":       {args: []int{0}},
}

// classifySink classifies variable-time calls. The constant-time
// alternatives (crypto/subtle, crypto/hmac) are sanctioned by not being
// listed.
func classifySink(pkg *analysis.Package, call *ast.CallExpr, fn *types.Func) *taint.Sink {
	if fn.Pkg() == nil || exempt(pkg, call.Pos()) {
		return nil
	}
	switch fn.Pkg().Path() {
	case "bytes":
		switch fn.Name() {
		case "Equal", "Compare":
			return &taint.Sink{Kind: "compare"}
		}
	case "reflect":
		if fn.Name() == "DeepEqual" {
			return &taint.Sink{Kind: "compare"}
		}
	case "math/big":
		if spec, ok := bigVartime[fn.Name()]; ok && recvIsBigInt(fn) {
			return &taint.Sink{Kind: "bigint", Args: spec.args, Recv: spec.recv}
		}
	}
	return nil
}

func recvIsBigInt(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Int"
}

// controlSink classifies a CFG control expression (if/for condition,
// switch tag, case expression): its atomic tests, minus the ones that
// cannot leak through timing, are checked for secret taint.
func controlSink(pkg *analysis.Package, cond ast.Expr) ([]ast.Expr, string) {
	if exempt(pkg, cond.Pos()) {
		return nil, ""
	}
	atoms := conditionAtoms(pkg, cond, nil)
	if len(atoms) == 0 {
		return nil, ""
	}
	return atoms, "branch"
}

// conditionAtoms decomposes the boolean structure of a condition (&&, ||,
// !, parens) into its atomic tests, dropping nil checks: whether a
// pointer is present is presence information, not the pointed-to value,
// and `if sh == nil` must not count as branching on the share.
func conditionAtoms(pkg *analysis.Package, e ast.Expr, out []ast.Expr) []ast.Expr {
	e = ast.Unparen(e)
	switch b := e.(type) {
	case *ast.BinaryExpr:
		switch b.Op {
		case token.LAND, token.LOR:
			out = conditionAtoms(pkg, b.X, out)
			return conditionAtoms(pkg, b.Y, out)
		case token.EQL, token.NEQ:
			if isNilExpr(pkg, b.X) || isNilExpr(pkg, b.Y) {
				return out
			}
		}
	case *ast.UnaryExpr:
		if b.Op == token.NOT {
			return conditionAtoms(pkg, b.X, out)
		}
	}
	return append(out, e)
}

func isNilExpr(pkg *analysis.Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.IsNil()
}

// indexSink classifies an index expression: the index operand of a real
// memory access (slice, array, map, string) is checked for secret taint.
func indexSink(pkg *analysis.Package, ix *ast.IndexExpr) ([]ast.Expr, string) {
	if exempt(pkg, ix.Pos()) {
		return nil, ""
	}
	// A generic instantiation parses as an IndexExpr too; only value
	// indexing is a memory access.
	if tv, ok := pkg.Info.Types[ix]; !ok || tv.IsType() {
		return nil, ""
	}
	t := pkg.Info.Types[ix.X].Type
	if t == nil {
		return nil, ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
	case *types.Basic:
		if t.Underlying().(*types.Basic).Info()&types.IsString == 0 {
			return nil, ""
		}
	default:
		return nil, ""
	}
	return []ast.Expr{ix.Index}, "index"
}

// message renders one leak. The sink kinds match the classifiers above;
// Via names the helper whose summary carried the secret to the sink.
func message(l taint.Leak) string {
	if l.Via != "" {
		switch l.Sink {
		case "branch":
			return fmt.Sprintf("secret value %s decides a branch inside %s (timing side channel)", l.Expr, short(l.Callee))
		case "index":
			return fmt.Sprintf("secret value %s indexes memory inside %s (cache side channel)", l.Expr, short(l.Callee))
		case "compare":
			return fmt.Sprintf("secret value %s reaches a variable-time comparison inside %s", l.Expr, short(l.Callee))
		case "bigint":
			return fmt.Sprintf("secret value %s reaches a variable-time big.Int operation inside %s", l.Expr, short(l.Callee))
		default:
			return fmt.Sprintf("secret value %s reaches a %s trace sink inside %s", l.Expr, l.Sink, short(l.Callee))
		}
	}
	switch l.Sink {
	case "branch":
		return fmt.Sprintf("secret-dependent branch on %s (timing side channel)", l.Expr)
	case "index":
		return fmt.Sprintf("secret-dependent index %s (cache side channel)", l.Expr)
	case "compare":
		return fmt.Sprintf("secret value %s flows into variable-time %s (use crypto/subtle.ConstantTimeCompare or crypto/hmac.Equal)", l.Expr, short(l.Callee))
	case "bigint":
		return fmt.Sprintf("secret value %s feeds variable-time big.Int operation %s outside the sanctioned kernels", l.Expr, short(l.Callee))
	default:
		return fmt.Sprintf("secret value %s reaches %s trace sink %s", l.Expr, l.Sink, short(l.Callee))
	}
}

// short strips module path noise from a function name for messages.
func short(name string) string {
	name = strings.ReplaceAll(name, "yosompc/internal/", "")
	name = strings.ReplaceAll(name, "yosompc/", "")
	return name
}
