package sidechannel

import (
	"testing"

	"yosompc/internal/analysis/analysistest"
)

// TestFixtures runs the analyzer over the fixture packages: the four sink
// classes with their clean counterparts, the sanctioned kernel package,
// and the caller side of the kernel sanction.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer,
		"sidechan", "paillier", "kernelcall")
}
