// Package kernelcall checks the caller side of the kernel sanction: a
// non-exempt package that hands secrets to the sanctioned kernel stays
// silent, while its own variable-time operations still report.
package kernelcall

import (
	"math/big"

	"yosompc/internal/analysis/sidechannel/testdata/src/paillier"
)

// Exp is a secret exponent share.
//
//yosolint:secret exponent share under test
type Exp struct {
	D *big.Int
}

func UsesKernel(p paillier.Prime, e Exp, x *big.Int) *big.Int {
	r := paillier.Reduce(p, x) // clean: kernel summaries carry no trace-sink facts
	if e.D.Cmp(x) < 0 {        // want `secret value e\.D feeds variable-time big\.Int operation`
		return r
	}
	return x
}
