// Package paillier stands in for the sanctioned kernel packages: its
// path segment matches the kernel sanction, so trace-sink classification
// is suppressed wholesale — the kernels' constant-time story is audited
// by hand, not by this analyzer.
package paillier

import "math/big"

// Prime is a kernel-internal secret.
//
//yosolint:secret kernel-internal prime factor
type Prime struct {
	P *big.Int
}

// Reduce is full of variable-time operations on secret operands; the
// kernel sanction keeps it silent and keeps trace-sink facts out of its
// summary, so callers in other packages stay silent too.
func Reduce(p Prime, x *big.Int) *big.Int {
	if p.P.Cmp(x) < 0 { // clean: sanctioned kernel package
		return new(big.Int).Mod(x, p.P) // clean: sanctioned kernel package
	}
	return x
}
