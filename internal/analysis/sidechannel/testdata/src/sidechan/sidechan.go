// Package sidechan exercises the sidechannel analyzer's four sink
// classes — branch, index, compare, bigint — plus the clean paths: nil
// checks, public fields, length tests, the sanctioned constant-time
// comparisons, and a justified //yosolint:vartime suppression.
package sidechan

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"math/big"
)

// Key carries secret material in Raw; ID is public.
type Key struct {
	ID  int
	Raw []byte //yosolint:secret raw key bytes reconstruct the decryption key
}

// Exponent is a whole-type secret: a threshold exponent share.
//
//yosolint:secret threshold exponent share
type Exponent struct {
	D *big.Int
}

var table [256]int

func Branch(k Key) int {
	if len(k.Raw) == 0 { // clean: a length is a public size
		return 0
	}
	if k.Raw[0] == 0 { // want `secret-dependent branch on k\.Raw\[0\] == 0`
		return 1
	}
	return 2
}

func LoopBound(k Key) int {
	total := 0
	for i := 0; i < int(k.Raw[0]); i++ { // want `secret-dependent branch on i < int\(k\.Raw\[0\]\)`
		total += i
	}
	return total
}

func Index(k Key) int {
	return table[k.Raw[0]] // want `secret-dependent index k\.Raw\[0\] \(cache side channel\)`
}

func Compare(k Key, other []byte) bool {
	return bytes.Equal(k.Raw, other) // want `secret value k\.Raw flows into variable-time bytes\.Equal`
}

func CompareOK(k Key, other []byte) bool {
	return subtle.ConstantTimeCompare(k.Raw, other) == 1 // clean: sanctioned constant-time compare
}

func MacOK(k Key, msg, tag []byte) bool {
	m := hmac.New(sha256.New, k.Raw)
	m.Write(msg)
	return hmac.Equal(m.Sum(nil), tag) // clean: hmac.Equal is constant time
}

func BigCmp(e Exponent, bound *big.Int) bool {
	return e.D.Cmp(bound) < 0 // want `secret value e\.D feeds variable-time big\.Int operation`
}

func BigExp(e Exponent, base, mod *big.Int) *big.Int {
	return new(big.Int).Exp(base, e.D, mod) // want `secret value e\.D feeds variable-time big\.Int operation`
}

// firstNonzero branches on its parameter; callers that pass secret
// material report at the call site, interprocedurally.
func firstNonzero(x []byte) int {
	for i, b := range x {
		if b != 0 {
			return i
		}
	}
	return -1
}

func Helper(k Key) int {
	return firstNonzero(k.Raw) // want `secret value k\.Raw decides a branch inside .*firstNonzero`
}

func NilCheck(e *Exponent) int {
	if e == nil { // clean: presence of a pointer, not its value
		return 0
	}
	return 1
}

func PublicOK(k Key) int {
	if k.ID > 3 { // clean: ID is not marked secret
		return 1
	}
	return 0
}

func Justified(k Key) bool {
	if k.Raw[0] == 1 { //yosolint:vartime fixture: the compared byte is a public test vector, not live key material
		return true
	}
	return false
}
