// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis. The toolchain image this
// repository builds in carries no third-party modules, so the framework is
// implemented directly on the standard library: packages are discovered
// and compiled with `go list -export`, dependencies are imported from the
// build cache's export data via go/importer, and target packages are
// type-checked from source with go/types.
//
// The framework exists to host yosolint, the suite of repo-specific
// analyzers under internal/analysis/{cryptorand,roleonce,fieldops,
// postcheck} that enforce invariants the Go compiler cannot: secret
// randomness comes from crypto/rand, YOSO roles never act after they
// speak, field.Element arithmetic goes through the reduction-preserving
// API, and board/transport errors are never silently dropped.
//
// Diagnostics can be suppressed per line with //yosolint: directives (see
// ParseDirectives and docs/STATIC_ANALYSIS.md).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check over a type-checked package (Run) or over a
// whole load of packages at once (RunModule).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "cryptorand".
	Name string
	// Doc is a short description of the invariant the analyzer enforces.
	Doc string
	// Directives lists the //yosolint: directive names that suppress this
	// analyzer's diagnostics when present on the offending line. Every
	// analyzer should include "ignore"; analyzers with a domain-specific
	// escape hatch (e.g. cryptorand's "simulation", secretflow's
	// "declassify") list it here too.
	Directives []string
	// Markers lists //yosolint: directive names the analyzer consumes as
	// source annotations rather than suppressions (e.g. secretflow's
	// "secret"). They never suppress anything, but registering them here
	// keeps the runner's unknown-directive validation in sync with what
	// the suite actually honors.
	Markers []string
	// Run executes the analyzer on one package, reporting findings
	// through the pass. Nil for module-level analyzers.
	Run func(*Pass) error
	// RunModule, if non-nil, executes the analyzer once over every package
	// of a load (dependency order, dependencies first) instead of
	// package-by-package. Interprocedural analyses that need bottom-up
	// call-graph summaries (secretflow) use this hook.
	RunModule func(*ModulePass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps positions for every file of the package.
	Fset *token.FileSet
	// Files are the parsed source files, including in-package _test.go
	// files when the load requested them.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries a module-level analyzer's view of one whole Load:
// every package, dependencies before dependents, including packages loaded
// only as dependency context (Package.DepOnly).
type ModulePass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps positions for every file of every package of the load.
	Fset *token.FileSet
	// Packages are the loaded packages in dependency order. Analyzers
	// must report findings only against packages with DepOnly == false;
	// DepOnly packages exist to source dataflow summaries and secret-type
	// annotations.
	Packages []*Package

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation.
	Message string
	// Suppressed records that a //yosolint: directive on the finding's
	// line covers it. Suppressed findings do not fail a lint run but are
	// preserved so drivers can audit the active escape hatches (the
	// cmd/yosolint -json output includes them with their justification).
	Suppressed bool
	// Justification is the directive's mandatory reason when Suppressed.
	Justification string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}
