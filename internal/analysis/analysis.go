// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis. The toolchain image this
// repository builds in carries no third-party modules, so the framework is
// implemented directly on the standard library: packages are discovered
// and compiled with `go list -export`, dependencies are imported from the
// build cache's export data via go/importer, and target packages are
// type-checked from source with go/types.
//
// The framework exists to host yosolint, the suite of repo-specific
// analyzers under internal/analysis/{cryptorand,roleonce,fieldops,
// postcheck} that enforce invariants the Go compiler cannot: secret
// randomness comes from crypto/rand, YOSO roles never act after they
// speak, field.Element arithmetic goes through the reduction-preserving
// API, and board/transport errors are never silently dropped.
//
// Diagnostics can be suppressed per line with //yosolint: directives (see
// ParseDirectives and docs/STATIC_ANALYSIS.md).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "cryptorand".
	Name string
	// Doc is a short description of the invariant the analyzer enforces.
	Doc string
	// Directives lists the //yosolint: directive names that suppress this
	// analyzer's diagnostics when present on the offending line. Every
	// analyzer should include "ignore"; analyzers with a domain-specific
	// escape hatch (e.g. cryptorand's "simulation") list it here too.
	Directives []string
	// Run executes the analyzer on one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps positions for every file of the package.
	Fset *token.FileSet
	// Files are the parsed source files, including in-package _test.go
	// files when the load requested them.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation.
	Message string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}
