package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src as a file and returns the CFG of its first
// function.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return New(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reachableCalls returns the callee names appearing in reachable blocks.
func reachableCalls(g *Graph) map[string]bool {
	out := map[string]bool{}
	for _, blk := range g.Reachable() {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					out[id.Name] = true
				}
				return true
			})
		}
	}
	return out
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, "a(); b(); c()")
	calls := reachableCalls(g)
	for _, want := range []string{"a", "b", "c"} {
		if !calls[want] {
			t.Errorf("call %s not reachable", want)
		}
	}
	if len(g.Blocks[0].Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3", len(g.Blocks[0].Nodes))
	}
}

func TestIfElseJoin(t *testing.T) {
	g := buildFunc(t, `
	if cond() {
		a()
	} else {
		b()
	}
	after()`)
	calls := reachableCalls(g)
	for _, want := range []string{"cond", "a", "b", "after"} {
		if !calls[want] {
			t.Errorf("call %s not reachable", want)
		}
	}
	// The then-block must not flow into the else-block.
	for _, blk := range g.Blocks {
		text := blockCalls(blk)
		if strings.Contains(text, "a") && strings.Contains(text, "b") {
			t.Errorf("then and else share a block: %s", text)
		}
	}
}

func TestReturnCutsFlow(t *testing.T) {
	g := buildFunc(t, `
	a()
	return
	b()`)
	calls := reachableCalls(g)
	if !calls["a"] {
		t.Error("a() not reachable")
	}
	if calls["b"] {
		t.Error("b() after return reported reachable")
	}
}

func TestLoopBreakContinue(t *testing.T) {
	g := buildFunc(t, `
	for i := 0; i < n; i++ {
		if skip() {
			continue
		}
		if stop() {
			break
		}
		body()
	}
	after()`)
	calls := reachableCalls(g)
	for _, want := range []string{"skip", "stop", "body", "after"} {
		if !calls[want] {
			t.Errorf("call %s not reachable", want)
		}
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, `
outer:
	for {
		for {
			if done() {
				break outer
			}
			inner()
		}
	}
	after()`)
	calls := reachableCalls(g)
	for _, want := range []string{"done", "inner", "after"} {
		if !calls[want] {
			t.Errorf("call %s not reachable", want)
		}
	}
}

func TestInfiniteLoopNoExit(t *testing.T) {
	g := buildFunc(t, `
	for {
		body()
	}
	after()`)
	calls := reachableCalls(g)
	if !calls["body"] {
		t.Error("loop body not reachable")
	}
	if calls["after"] {
		t.Error("code after `for {}` reported reachable")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `
	switch tag() {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		dflt()
	}
	after()`)
	calls := reachableCalls(g)
	for _, want := range []string{"tag", "one", "two", "dflt", "after"} {
		if !calls[want] {
			t.Errorf("call %s not reachable", want)
		}
	}
}

func TestSelectClauses(t *testing.T) {
	g := buildFunc(t, `
	select {
	case v := <-ch:
		recv(v)
	case ch2 <- x:
		sent()
	default:
		idle()
	}
	after()`)
	calls := reachableCalls(g)
	for _, want := range []string{"recv", "sent", "idle", "after"} {
		if !calls[want] {
			t.Errorf("call %s not reachable", want)
		}
	}
}

func TestGotoForward(t *testing.T) {
	g := buildFunc(t, `
	a()
	goto end
	dead()
end:
	b()`)
	calls := reachableCalls(g)
	if !calls["a"] || !calls["b"] {
		t.Error("goto endpoints not reachable")
	}
	if calls["dead"] {
		t.Error("statement jumped over by goto reported reachable")
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, `
	for _, v := range xs {
		use(v)
	}
	after()`)
	calls := reachableCalls(g)
	if !calls["use"] || !calls["after"] {
		t.Error("range body or successor not reachable")
	}
}

func TestDeferUnwinding(t *testing.T) {
	// Defer statements are plain straight-line nodes: the registration is
	// reachable where it executes, and an early return does not hide it.
	g := buildFunc(t, `
	defer cleanup()
	if cond() {
		return
	}
	body()`)
	calls := reachableCalls(g)
	for _, want := range []string{"cleanup", "cond", "body"} {
		if !calls[want] {
			t.Errorf("call %s not reachable", want)
		}
	}
	// A defer registered after a return never runs — and never registers.
	g = buildFunc(t, `
	a()
	return
	defer dead()`)
	if reachableCalls(g)["dead"] {
		t.Error("defer after return reported reachable")
	}
}

func TestSelectNoDefaultFallsThrough(t *testing.T) {
	// A select without default parks until some case fires; the graph
	// keeps the over-approximating head→done edge so successors stay
	// reachable for flow-sensitive analyses.
	g := buildFunc(t, `
	select {
	case <-ch:
		recv()
	case ch2 <- x:
		sent()
	}
	after()`)
	calls := reachableCalls(g)
	for _, want := range []string{"recv", "sent", "after"} {
		if !calls[want] {
			t.Errorf("call %s not reachable", want)
		}
	}
}

func TestSelectClauseIsolation(t *testing.T) {
	// Each comm clause body is its own block: one arm's effects must not
	// leak into another arm's lockset or taint state.
	g := buildFunc(t, `
	select {
	case <-ch:
		a()
	default:
		b()
	}`)
	for _, blk := range g.Blocks {
		text := blockCalls(blk)
		if strings.Contains(text, "a") && strings.Contains(text, "b") {
			t.Errorf("select arms share a block: %s", text)
		}
	}
}

func TestLabeledContinue(t *testing.T) {
	g := buildFunc(t, `
outer:
	for i := 0; i < n; i++ {
		for {
			if next() {
				continue outer
			}
			inner()
		}
	}
	after()`)
	calls := reachableCalls(g)
	for _, want := range []string{"next", "inner", "after"} {
		if !calls[want] {
			t.Errorf("call %s not reachable", want)
		}
	}
}

func TestMethodValueCalls(t *testing.T) {
	// Method calls and method-value invocations live in reachable nodes
	// like plain calls: analyzers resolve them through go/types, so the
	// graph only has to surface the call expressions.
	g := buildFunc(t, `
	obj.m()
	f := obj.n
	f()
	after()`)
	methods := map[string]bool{}
	for _, blk := range g.Reachable() {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					methods[sel.Sel.Name] = true
				}
				return true
			})
		}
	}
	if !methods["m"] || !methods["n"] {
		t.Errorf("method references not in reachable nodes: %v", methods)
	}
	if !reachableCalls(g)["f"] || !reachableCalls(g)["after"] {
		t.Error("method-value invocation or successor not reachable")
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Blocks) != 1 || len(g.Reachable()) != 1 {
		t.Errorf("nil body graph has %d blocks, want a single entry", len(g.Blocks))
	}
}

func blockCalls(blk *Block) string {
	var b strings.Builder
	for _, n := range blk.Nodes {
		ast.Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					b.WriteString(id.Name + " ")
				}
			}
			return true
		})
	}
	return b.String()
}
