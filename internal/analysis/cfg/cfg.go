// Package cfg builds per-function control-flow graphs from go/ast. It is
// the bottom layer of the analysis framework's dataflow stack: the taint
// engine (internal/analysis/taint) walks only CFG-reachable statements, so
// dead code neither generates taint nor hides a leak report behind an
// unreachable sink.
//
// The graph is deliberately simple — basic blocks of statements in source
// order with successor edges — and approximates the hard corners
// conservatively: a `goto` edge to a label is resolved if the label is
// declared anywhere in the function, `select` treats every communication
// clause as possible, and expression-level control flow (short-circuit
// `&&`/`||`, function literals) stays inside its enclosing statement node.
package cfg

import (
	"go/ast"
	"go/token"
)

// Graph is the control-flow graph of one function body. Blocks[0] is the
// entry block. A block with no successors either returns, terminates
// (panic, os.Exit — not modelled specially, it simply ends), or falls off
// the end of the function.
type Graph struct {
	Blocks []*Block
}

// Block is one basic block: a maximal run of statements with a single
// entry point. Control expressions (an if condition, a switch tag, a
// range operand) are recorded as nodes of the block evaluating them.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the statements and control expressions of the block, in
	// evaluation order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// New builds the CFG of one function body. A nil body (declaration
// without a definition) yields a graph with a single empty entry block.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{graph: &Graph{}, labels: map[string]*Block{}}
	entry := b.newBlock()
	b.current = entry
	if body != nil {
		b.stmtList(body.List)
	}
	return b.graph
}

// Reachable returns the blocks reachable from the entry block.
func (g *Graph) Reachable() []*Block {
	if len(g.Blocks) == 0 {
		return nil
	}
	seen := make([]bool, len(g.Blocks))
	var out []*Block
	stack := []*Block{g.Blocks[0]}
	seen[0] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, blk)
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return out
}

// builder threads the block under construction through the statement walk.
type builder struct {
	graph   *Graph
	current *Block
	// breaks and continues are the innermost-first stacks of jump
	// targets; each entry carries the statement's label (empty when
	// unlabeled).
	breaks    []jumpTarget
	continues []jumpTarget
	// labels maps declared label names to the block they start, created
	// on demand so forward gotos resolve.
	labels map[string]*Block
	// pendingLabel names the label attached to the next loop/switch
	// statement, for labeled break/continue.
	pendingLabel string
}

type jumpTarget struct {
	label string
	block *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// jump adds an edge from the current block to blk.
func (b *builder) jump(blk *Block) {
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, blk)
	}
}

// startBlock finishes the current block and begins blk.
func (b *builder) startBlock(blk *Block) {
	b.current = blk
}

func (b *builder) add(n ast.Node) {
	if b.current != nil && n != nil {
		b.current.Nodes = append(b.current.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelBlock returns (creating if needed) the block a label names.
func (b *builder) labelBlock(name string) *Block {
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock()
		b.labels[name] = blk
	}
	return blk
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		thenBlk, done := b.newBlock(), b.newBlock()
		elseBlk := done
		if s.Else != nil {
			elseBlk = b.newBlock()
		}
		b.jump(thenBlk)
		b.jump(elseBlk)
		b.startBlock(thenBlk)
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.jump(done)
		}
		b.startBlock(done)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head, body, post, done := b.newBlock(), b.newBlock(), b.newBlock(), b.newBlock()
		b.jump(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			head.Succs = append(head.Succs, body, done)
		} else {
			head.Succs = append(head.Succs, body)
		}
		b.pushJumps(label, done, post)
		b.startBlock(body)
		b.stmt(s.Body)
		b.popJumps()
		b.jump(post)
		b.startBlock(post)
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.jump(head)
		b.startBlock(done)

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s)
		head, body, done := b.newBlock(), b.newBlock(), b.newBlock()
		b.jump(head)
		head.Succs = append(head.Succs, body, done)
		b.pushJumps(label, done, head)
		b.startBlock(body)
		b.stmt(s.Body)
		b.popJumps()
		b.jump(head)
		b.startBlock(done)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.caseStmt(s)

	case *ast.LabeledStmt:
		blk := b.labelBlock(s.Label.Name)
		b.jump(blk)
		b.startBlock(blk)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.branchTo(b.breaks, s.Label)
		case token.CONTINUE:
			b.branchTo(b.continues, s.Label)
		case token.GOTO:
			if s.Label != nil {
				b.jump(b.labelBlock(s.Label.Name))
			}
			b.startBlock(b.newBlock())
		case token.FALLTHROUGH:
			// caseStmt already wires the fallthrough edge.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.startBlock(b.newBlock())

	default:
		// Straight-line statements: declarations, assignments, calls,
		// sends, go/defer, inc/dec, empty.
		b.add(s)
	}
}

// takeLabel consumes the label attached to the statement being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushJumps(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, jumpTarget{label, brk})
	if cont != nil {
		b.continues = append(b.continues, jumpTarget{label, cont})
	} else {
		b.continues = append(b.continues, jumpTarget{label, nil})
	}
}

func (b *builder) popJumps() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// branchTo wires a break/continue to the matching enclosing target and
// starts a fresh (unreachable-from-here) block for any trailing code.
func (b *builder) branchTo(stack []jumpTarget, label *ast.Ident) {
	for i := len(stack) - 1; i >= 0; i-- {
		t := stack[i]
		if t.block == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			b.jump(t.block)
			break
		}
	}
	b.startBlock(b.newBlock())
}

// caseStmt builds switch, type-switch and select statements: a head block
// evaluating the tag, one block per clause, and a common done block.
func (b *builder) caseStmt(s ast.Stmt) {
	label := b.takeLabel()
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	head := b.current
	done := b.newBlock()
	hasDefault := false
	// Build each clause block; record them so fallthrough edges can be
	// added between adjacent switch clauses.
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	for i, c := range clauses {
		blk := blocks[i]
		if head != nil {
			head.Succs = append(head.Succs, blk)
		}
		b.startBlock(blk)
		b.pushJumps(label, done, nil)
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				b.add(e)
			}
			b.stmtList(c.Body)
			if fallsThrough(c.Body) && i+1 < len(blocks) {
				b.jump(blocks[i+1])
			}
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				b.stmt(c.Comm)
			}
			b.stmtList(c.Body)
		}
		b.popJumps()
		b.jump(done)
	}
	if !hasDefault && head != nil {
		// No default: the statement may match nothing (switch) — for
		// select without default this over-approximates, which is safe.
		head.Succs = append(head.Succs, done)
	}
	b.startBlock(done)
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}
