package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //yosolint: comment directive.
//
// Syntax: `//yosolint:NAME justification...` — no space before NAME, and a
// non-empty justification is mandatory (the runner reports reason-less and
// unknown directives as findings of their own, so an escape hatch can never
// be used silently).
//
// Placement: a directive written as a trailing comment suppresses matching
// diagnostics on its own line; a directive on a line of its own suppresses
// them on the next line.
type Directive struct {
	// Name is the directive keyword, e.g. "simulation" or "ignore".
	Name string
	// Reason is the justification text following the keyword.
	Reason string
	// Pos is the position of the directive comment.
	Pos token.Pos
	// Line is the source line the directive applies to.
	Line int
}

// KnownDirectives are the accepted //yosolint: keywords.
//
//   - simulation: the flagged randomness is simulation/adversary modelling,
//     not secret protocol randomness (honored by cryptorand).
//   - ignore: blanket per-line suppression, honored by every analyzer.
var KnownDirectives = map[string]bool{
	"simulation": true,
	"ignore":     true,
}

const directivePrefix = "//yosolint:"

// ParseDirectives extracts the //yosolint: directives of one parsed file.
// src must be the file's source bytes (used to decide whether a directive
// is trailing code on its line or stands alone).
func ParseDirectives(fset *token.FileSet, file *ast.File, src []byte) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			line := pos.Line
			if standsAlone(fset, c.Pos(), src) {
				line++
			}
			out = append(out, Directive{
				Name:   strings.TrimSpace(name),
				Reason: strings.TrimSpace(reason),
				Pos:    c.Pos(),
				Line:   line,
			})
		}
	}
	return out
}

// standsAlone reports whether only whitespace precedes pos on its line.
func standsAlone(fset *token.FileSet, pos token.Pos, src []byte) bool {
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	off := tf.Offset(pos)
	start := tf.Offset(tf.LineStart(tf.Line(pos)))
	if start < 0 || off > len(src) {
		return false
	}
	return len(strings.TrimSpace(string(src[start:off]))) == 0
}

// directiveIndex maps filename → line → directives applying to that line.
type directiveIndex map[string]map[int][]Directive

func indexDirectives(pkg *Package) (directiveIndex, []Diagnostic) {
	idx := directiveIndex{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		pos := pkg.Fset.Position(f.Pos())
		src := pkg.Sources[pos.Filename]
		for _, d := range ParseDirectives(pkg.Fset, f, src) {
			dpos := pkg.Fset.Position(d.Pos)
			if !KnownDirectives[d.Name] {
				diags = append(diags, Diagnostic{
					Analyzer: "yosolint",
					Pos:      dpos,
					Message:  "unknown //yosolint: directive " + strconvQuote(d.Name),
				})
				continue
			}
			if d.Reason == "" {
				diags = append(diags, Diagnostic{
					Analyzer: "yosolint",
					Pos:      dpos,
					Message:  "//yosolint:" + d.Name + " directive requires a justifying comment",
				})
				continue
			}
			byLine := idx[dpos.Filename]
			if byLine == nil {
				byLine = map[int][]Directive{}
				idx[dpos.Filename] = byLine
			}
			byLine[d.Line] = append(byLine[d.Line], d)
		}
	}
	return idx, diags
}

// suppresses reports whether a directive at the diagnostic's line covers the
// given analyzer.
func (idx directiveIndex) suppresses(a *Analyzer, d Diagnostic) bool {
	byLine := idx[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, dir := range byLine[d.Pos.Line] {
		for _, name := range a.Directives {
			if dir.Name == name {
				return true
			}
		}
	}
	return false
}

func strconvQuote(s string) string { return `"` + s + `"` }
