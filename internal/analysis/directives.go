package analysis

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// Directive is one //yosolint: comment directive.
//
// Syntax: `//yosolint:NAME justification...` — no space before NAME, and a
// non-empty justification is mandatory (the runner reports reason-less and
// unknown directives as findings of their own, so an escape hatch can never
// be used silently).
//
// Placement: a directive written as a trailing comment suppresses matching
// diagnostics on its own line; a directive on a line of its own suppresses
// them on the next line.
type Directive struct {
	// Name is the directive keyword, e.g. "simulation" or "ignore".
	Name string
	// Reason is the justification text following the keyword.
	Reason string
	// Pos is the position of the directive comment.
	Pos token.Pos
	// Line is the source line the directive applies to.
	Line int
}

// KnownDirectives are the baseline accepted //yosolint: keywords. The
// runner validates directive names against the union of the registered
// analyzers' Directives and Markers lists (so removing an analyzer makes
// its directives rot visibly); this map is the fallback registry used when
// no analyzers are supplied and by tools that parse directives standalone.
//
//   - simulation: the flagged randomness is simulation/adversary modelling,
//     not secret protocol randomness (honored by cryptorand).
//   - ignore: blanket per-line suppression, honored by every analyzer.
//   - secret: marks a type or struct field as secret material; consumed by
//     secretflow as a taint source annotation, suppresses nothing.
//   - declassify: the flagged secret flow is an intentional disclosure
//     (protocol output, simulation transcript); honored by secretflow.
//   - vartime: the flagged secret-dependent operation is deliberately
//     variable-time (public by the time it runs, or inside a blinded
//     path); honored by sidechannel.
//   - owner: documents who wipes a secret buffer handed across a
//     function boundary; honored by zeroize.
var KnownDirectives = map[string]bool{
	"simulation": true,
	"ignore":     true,
	"secret":     true,
	"declassify": true,
	"vartime":    true,
	"owner":      true,
}

// DirectiveAnalyzerName is the pseudo-analyzer under which the runner
// reports directive-hygiene findings (unknown names, missing reasons).
const DirectiveAnalyzerName = "yosolint"

const directivePrefix = "//yosolint:"

// ParseDirectives extracts the //yosolint: directives of one parsed file.
// src must be the file's source bytes (used to decide whether a directive
// is trailing code on its line or stands alone).
func ParseDirectives(fset *token.FileSet, file *ast.File, src []byte) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			name, reason := cutSpace(rest)
			pos := fset.Position(c.Pos())
			line := pos.Line
			if standsAlone(fset, c.Pos(), src) {
				line++
			}
			out = append(out, Directive{
				Name:   strings.TrimSpace(name),
				Reason: strings.TrimSpace(reason),
				Pos:    c.Pos(),
				Line:   line,
			})
		}
	}
	return out
}

// cutSpace splits s at its first whitespace rune, so a tab-separated
// justification parses the same as a space-separated one instead of
// leaking the separator into the directive name.
func cutSpace(s string) (name, reason string) {
	if i := strings.IndexFunc(s, unicode.IsSpace); i >= 0 {
		return s[:i], strings.TrimSpace(s[i:])
	}
	return s, ""
}

// standsAlone reports whether only whitespace precedes pos on its line.
func standsAlone(fset *token.FileSet, pos token.Pos, src []byte) bool {
	tf := fset.File(pos)
	if tf == nil {
		return false
	}
	off := tf.Offset(pos)
	start := tf.Offset(tf.LineStart(tf.Line(pos)))
	if start < 0 || off > len(src) {
		return false
	}
	return len(strings.TrimSpace(string(src[start:off]))) == 0
}

// directiveIndex maps filename → line → directives applying to that line.
type directiveIndex map[string]map[int][]Directive

func indexDirectives(pkg *Package, honored map[string]bool) (directiveIndex, []Diagnostic) {
	if honored == nil {
		honored = KnownDirectives
	}
	idx := directiveIndex{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		pos := pkg.Fset.Position(f.Pos())
		src := pkg.Sources[pos.Filename]
		for _, d := range ParseDirectives(pkg.Fset, f, src) {
			dpos := pkg.Fset.Position(d.Pos)
			if !honored[d.Name] {
				diags = append(diags, Diagnostic{
					Analyzer: DirectiveAnalyzerName,
					Pos:      dpos,
					Message:  "unknown //yosolint: directive " + strconvQuote(d.Name) + " (no registered analyzer honors it)",
				})
				continue
			}
			if d.Reason == "" {
				diags = append(diags, Diagnostic{
					Analyzer: DirectiveAnalyzerName,
					Pos:      dpos,
					Message:  "//yosolint:" + d.Name + " directive requires a justifying comment",
				})
				continue
			}
			byLine := idx[dpos.Filename]
			if byLine == nil {
				byLine = map[int][]Directive{}
				idx[dpos.Filename] = byLine
			}
			byLine[d.Line] = append(byLine[d.Line], d)
		}
	}
	return idx, diags
}

// suppressing returns the directive at the diagnostic's line that covers
// the given analyzer, or nil when none does.
func (idx directiveIndex) suppressing(a *Analyzer, d Diagnostic) *Directive {
	byLine := idx[d.Pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, dir := range byLine[d.Pos.Line] {
		for _, name := range a.Directives {
			if dir.Name == name {
				return &dir
			}
		}
	}
	return nil
}

func strconvQuote(s string) string { return `"` + s + `"` }
