// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against // want comments, mirroring the interface of
// golang.org/x/tools/go/analysis/analysistest on the repo's stdlib-only
// analysis framework.
//
// Fixtures live under <analyzer package>/testdata/src/<pkg>/ — directories
// named testdata are invisible to ./... wildcards, so fixture violations
// never leak into regular builds or the repo-wide lint run, yet `go list`
// still loads them when named explicitly. A fixture line expecting
// diagnostics carries a trailing comment of the form
//
//	code() // want "first regexp" `second regexp`
//
// where each quoted or backquoted string is a regular expression that must
// match exactly one diagnostic reported on that line; diagnostics not
// matched by any want (and wants not matched by any diagnostic) fail the
// test.
package analysistest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"yosompc/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each fixture package dir/src/<pkg>, runs the analyzer on it,
// and checks the reported diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		fixture := filepath.Join(dir, "src", pkg)
		// Deps:true source-loads fixture helper packages (and any real
		// module packages the fixture imports) so module-level analyzers
		// get cross-package summaries, exactly as the cmd/yosolint driver
		// does.
		loaded, err := analysis.Load(analysis.LoadConfig{Dir: root, Tests: true, Deps: true}, fixture)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fixture, err)
		}
		diags, err := analysis.RunPackages(loaded, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
		}
		checkWants(t, loaded, analysis.Unsuppressed(diags))
	}
}

type key struct {
	file string
	line int
}

func checkWants(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		for _, f := range pkg.Files {
			collectWants(t, pkg, f, wants)
		}
	}
	got := map[key][]analysis.Diagnostic{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}
	for k, res := range wants {
		actual := got[k]
		for _, re := range res {
			matched := -1
			for i, d := range actual {
				if re.MatchString(d.Message) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
				continue
			}
			actual = append(actual[:matched], actual[matched+1:]...)
		}
		got[k] = actual
	}
	for k, rest := range got {
		for _, d := range rest {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", k.file, k.line, d.Message, d.Analyzer)
		}
	}
}

var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, pkg *analysis.Package, f *ast.File, wants map[key][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			k := key{pos.Filename, pos.Line}
			specs := wantRE.FindAllString(text[i+len("// want "):], -1)
			if len(specs) == 0 {
				t.Errorf("%s:%d: malformed want comment: %s", k.file, k.line, text)
				continue
			}
			for _, spec := range specs {
				pattern := spec
				if strings.HasPrefix(spec, "\"") {
					unq, err := strconv.Unquote(spec)
					if err != nil {
						t.Errorf("%s:%d: bad want string %s: %v", k.file, k.line, spec, err)
						continue
					}
					pattern = unq
				} else {
					pattern = strings.Trim(spec, "`")
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Errorf("%s:%d: bad want regexp %q: %v", k.file, k.line, pattern, err)
					continue
				}
				wants[k] = append(wants[k], re)
			}
		}
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}
