// Package suite aggregates the yosolint analyzers. The cmd/yosolint
// driver and any future in-process callers (CI helpers, tests) get the
// full, ordered suite from one place.
package suite

import (
	"yosompc/internal/analysis"
	"yosompc/internal/analysis/cryptorand"
	"yosompc/internal/analysis/fieldops"
	"yosompc/internal/analysis/goroleak"
	"yosompc/internal/analysis/lockscope"
	"yosompc/internal/analysis/postcheck"
	"yosompc/internal/analysis/roleonce"
	"yosompc/internal/analysis/secretflow"
	"yosompc/internal/analysis/sidechannel"
	"yosompc/internal/analysis/wirecodec"
	"yosompc/internal/analysis/zeroize"
)

// Analyzers returns the yosolint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cryptorand.Analyzer,
		fieldops.Analyzer,
		goroleak.Analyzer,
		lockscope.Analyzer,
		postcheck.Analyzer,
		roleonce.Analyzer,
		secretflow.Analyzer,
		sidechannel.Analyzer,
		wirecodec.Analyzer,
		zeroize.Analyzer,
	}
}
