// Package zeroize is the secret-lifetime analyzer of the yosolint suite:
// a buffer of secret material created in a function must be wiped before
// the function exits, or its ownership must be documented.
//
// A YOSO role's future-corruption guarantee assumes the share is gone
// when the role has spoken; a coefficient vector or decrypted payload
// left for the garbage collector lingers in heap pages (and potentially
// core dumps and swap) long after the protocol moved on. The analyzer
// tracks a deliberately narrow obligation class so that a clean run means
// something:
//
//   - a fresh randomness buffer returned by a field.RandomVec-style
//     sampler (callee in a `field` package, name Random*/MustRandom*,
//     slice result), or
//   - the byte buffer returned by calling Bytes or Decrypt on a value of
//     secret type (secretflow's builtin set plus //yosolint:secret marks),
//
// bound to a local variable, becomes an obligation. Walking the
// function's CFG, every path from the creation to an exit must hit a
// discharge first:
//
//   - a wipe: the builtin clear, or a call named Zeroize*/Wipe* taking
//     the buffer as receiver or argument — a defer'd wipe discharges
//     every exit path it dominates, so a defer placed after the creation
//     covers early returns while a defer inside one branch does not;
//   - a transfer into a local container (append, element or field store)
//     — tracking ends there, a documented limitation;
//   - an error return propagating the creation's own err result (the
//     buffer never materialized);
//   - a terminating call (panic, os.Exit, log.Fatal*).
//
// Returning the buffer, storing it into a package-level variable, a
// parameter's field, or a channel moves it to a longer-lived owner: those
// sites are reported unless annotated `//yosolint:owner <why>`, which
// documents who wipes it. A source call whose result is never bound
// (`use(sk.Bytes())`) is reported too — an unnamed copy cannot be wiped.
//
// The analyzer runs on the crypto-bearing packages (core, sharing, pke,
// paillier, tte, nizk, field, yoso); test files are exempt. Out of scope,
// documented: big.Int values (no reliable wipe exists — math/big
// reallocates internally), aliasing through plain assignment, and buffers
// captured by closures that outlive the function.
package zeroize

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/cfg"
	"yosompc/internal/analysis/secretflow"
	"yosompc/internal/analysis/taint"
)

// Analyzer is the zeroize analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "zeroize",
	Doc:        "secret buffers must be wiped before leaving scope: flag unwiped drops, undocumented owner transfers, and captures",
	Directives: []string{"owner", "ignore"},
	Markers:    []string{"secret"},
	RunModule:  run,
}

// gatedSegments are the crypto-bearing package path segments the
// obligation model applies to.
var gatedSegments = []string{"core", "sharing", "pke", "paillier", "tte", "nizk", "field", "yoso"}

func gated(path string) bool {
	if strings.HasSuffix(path, "_test") {
		return false
	}
	for _, seg := range gatedSegments {
		if taint.PathHasSegment(path, seg) {
			return true
		}
	}
	return false
}

func run(mp *analysis.ModulePass) error {
	// The taint engine is used purely as the secret-source classifier
	// here: builtin secret types plus //yosolint:secret marks across the
	// whole load decide which receivers' Bytes/Decrypt results are secret
	// buffers.
	eng := taint.NewEngine(taint.Config{
		SecretTypes:  secretflow.BuiltinSecretTypes,
		SecretFields: secretflow.BuiltinSecretFields,
	})
	for _, pkg := range mp.Packages {
		secretflow.MarkSecrets(eng, pkg)
	}
	for _, pkg := range mp.Packages {
		if pkg.DepOnly || pkg.Types == nil || !gated(pkg.Types.Path()) {
			continue
		}
		c := &checker{mp: mp, eng: eng, pkg: pkg, reported: map[token.Pos]bool{}}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					c.funcBody(fd)
				}
			}
		}
	}
	return nil
}

type checker struct {
	mp       *analysis.ModulePass
	eng      *taint.Engine
	pkg      *analysis.Package
	reported map[token.Pos]bool
}

func (c *checker) reportOnce(pos token.Pos, format string, args ...interface{}) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.mp.Reportf(pos, format, args...)
}

// obligation is one secret buffer bound to a local variable.
type obligation struct {
	obj types.Object // the bound local
	// errObj is the err result bound alongside the buffer; a return that
	// propagates it is the aborted-creation path, not a drop.
	errObj types.Object
	pos    token.Pos
	src    string // rendering of the source call, for messages
	block  int    // creation site in the CFG
	node   int
}

func (c *checker) funcBody(decl *ast.FuncDecl) {
	g := cfg.New(decl.Body)
	blocks := g.Reachable()

	// Pass 1: find obligations (bound sources) and note which source
	// calls got a binding.
	var obls []*obligation
	bound := map[*ast.CallExpr]bool{}
	for _, blk := range blocks {
		for ni, n := range blk.Nodes {
			lhs, rhs := assignParts(n)
			if len(rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
			if !ok || !c.isSource(call) {
				continue
			}
			bound[call] = true
			ob := &obligation{pos: call.Pos(), src: types.ExprString(call.Fun), block: blk.Index, node: ni}
			if len(lhs) > 0 {
				ob.obj = localTarget(c.pkg, decl, lhs[0])
			}
			if len(lhs) == 2 {
				ob.errObj = localTarget(c.pkg, decl, lhs[1])
			}
			if ob.obj == nil {
				// Blank or non-local binding: an unnamed copy nobody can
				// wipe.
				c.reportOnce(call.Pos(), "secret buffer from %s is discarded without a wipeable binding (bind it to a local and clear it)", ob.src)
				continue
			}
			obls = append(obls, ob)
		}
	}

	// Pass 2: unbound source calls. Inside a return statement the result
	// is handed to the caller (ownership transfer, annotatable); anywhere
	// else the copy is unreachable the moment the statement ends.
	inReturn := map[*ast.CallExpr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			// Only a call that is itself a result expression hands the
			// buffer to the caller; one nested as an argument is consumed
			// and the copy discarded.
			for _, r := range ret.Results {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && c.isSource(call) {
					inReturn[call] = true
				}
			}
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || bound[call] || !c.isSource(call) {
			return true
		}
		if inReturn[call] {
			c.reportOnce(call.Pos(), "secret buffer from %s is returned without a documented owner (annotate with //yosolint:owner)", types.ExprString(call.Fun))
		} else {
			c.reportOnce(call.Pos(), "secret buffer from %s is discarded without a wipeable binding (bind it to a local and clear it)", types.ExprString(call.Fun))
		}
		return true
	})

	// Pass 3: path analysis per obligation.
	byIndex := map[int]*cfg.Block{}
	for _, blk := range blocks {
		byIndex[blk.Index] = blk
	}
	for _, ob := range obls {
		w := &walker{c: c, decl: decl, ob: ob, byIndex: byIndex, seen: map[int]bool{}}
		start := byIndex[ob.block]
		if start == nil {
			continue
		}
		if w.scan(start.Nodes[ob.node+1:]) == survived {
			for _, s := range start.Succs {
				w.walk(s)
			}
		}
		if w.dropped {
			c.reportOnce(ob.pos, "secret buffer %s (from %s) is not zeroized on every path to function exit (wipe it or defer a wipe after creation)", ob.obj.Name(), ob.src)
		}
	}
}

// walker explores the CFG from one obligation's creation site.
type walker struct {
	c       *checker
	decl    *ast.FuncDecl
	ob      *obligation
	byIndex map[int]*cfg.Block
	seen    map[int]bool
	dropped bool
}

type scanResult int

const (
	survived scanResult = iota // fell off the node list, keep walking
	stopped                    // discharged, terminated, or drop recorded
)

func (w *walker) walk(blk *cfg.Block) {
	if w.seen[blk.Index] {
		return
	}
	w.seen[blk.Index] = true
	if w.scan(blk.Nodes) == stopped {
		return
	}
	if len(blk.Succs) == 0 {
		// Falling off the end of the function is an exit like any other.
		w.dropped = true
		return
	}
	for _, s := range blk.Succs {
		w.walk(s)
	}
}

// scan classifies the nodes of (part of) one block in order.
func (w *walker) scan(nodes []ast.Node) scanResult {
	for _, n := range nodes {
		switch w.classify(n) {
		case actWipe, actTransfer, actReturnErr, actTerminate:
			return stopped
		case actCapture:
			// Reported at the capture site by classify; ownership moved.
			return stopped
		case actReturnObj:
			return stopped
		case actReturnDrop:
			w.dropped = true
			return stopped
		}
	}
	return survived
}

type action int

const (
	actNone action = iota
	actWipe
	actTransfer
	actCapture
	actReturnObj
	actReturnErr
	actReturnDrop
	actTerminate
)

// classify decides what one CFG node means for the obligation. Wipes win
// over everything; then ownership moves; then exits.
func (w *walker) classify(n ast.Node) action {
	if w.wipes(n) {
		return actWipe
	}
	if ret, ok := n.(*ast.ReturnStmt); ok {
		// The buffer itself leaving as a result is an ownership transfer;
		// a result merely computed from it (checksum(buf)) still leaves
		// the buffer behind unwiped.
		for _, r := range ret.Results {
			if carriesObj(w.c.pkg, r, w.ob.obj) {
				w.c.reportOnce(ret.Pos(), "secret buffer %s is returned without a documented owner (annotate with //yosolint:owner)", w.ob.obj.Name())
				return actReturnObj
			}
		}
		if w.ob.errObj != nil && mentionsObj(w.c.pkg, ret, w.ob.errObj) {
			return actReturnErr
		}
		return actReturnDrop
	}
	if act := w.moves(n); act != actNone {
		return act
	}
	if terminates(w.c.pkg, n) {
		return actTerminate
	}
	return actNone
}

// wipes reports whether the node wipes the obligation's buffer: the
// builtin clear, or a Zeroize*/Wipe* call taking it as receiver or
// argument (including inside a defer or a deferred closure).
func (w *walker) wipes(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := w.c.pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "clear" {
				if len(call.Args) == 1 && isObjExpr(w.c.pkg, call.Args[0], w.ob.obj) {
					found = true
				}
				return true
			}
		}
		if !wipeName(calleeName(call)) {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isObjExpr(w.c.pkg, sel.X, w.ob.obj) {
			found = true
		}
		for _, a := range call.Args {
			if isObjExpr(w.c.pkg, a, w.ob.obj) {
				found = true
			}
		}
		return true
	})
	return found
}

func wipeName(name string) bool {
	return strings.HasPrefix(name, "Zeroize") || strings.HasPrefix(name, "Wipe") ||
		strings.HasPrefix(name, "zeroize") || strings.HasPrefix(name, "wipe")
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// moves detects the buffer changing hands: stores into containers and
// channel sends. A store whose base is local keeps the secret in this
// frame (tracking ends, a documented limitation); a store reaching a
// package-level variable, a parameter, or a channel needs a documented
// owner.
func (w *walker) moves(n ast.Node) action {
	act := actNone
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, r := range x.Rhs {
				if !carriesObj(w.c.pkg, r, w.ob.obj) {
					continue
				}
				t := x.Lhs[0]
				if i < len(x.Lhs) {
					t = x.Lhs[i]
				}
				if w.longLived(t) {
					w.c.reportOnce(x.Pos(), "secret buffer %s is captured into a long-lived structure without a documented owner (//yosolint:owner)", w.ob.obj.Name())
					act = actCapture
				} else if act == actNone {
					act = actTransfer
				}
			}
		case *ast.SendStmt:
			if carriesObj(w.c.pkg, x.Value, w.ob.obj) {
				w.c.reportOnce(x.Pos(), "secret buffer %s is sent to a channel without a documented owner (//yosolint:owner)", w.ob.obj.Name())
				act = actCapture
			}
		}
		return true
	})
	return act
}

// longLived reports whether an assignment target outlives the function:
// a selector/index store whose base object is not declared inside the
// function body (package-level variables, parameters, receivers).
func (w *walker) longLived(target ast.Expr) bool {
	switch ast.Unparen(target).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	base := baseObject(w.c.pkg, target)
	if base == nil {
		return false
	}
	body := w.decl.Body
	return base.Pos() < body.Pos() || base.Pos() > body.End()
}

// terminates reports calls that end the process: panic, os.Exit,
// log.Fatal*, runtime.Goexit. The path ends there; post-mortem memory is
// out of the model.
func terminates(pkg *analysis.Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, isBuiltin := pkg.Info.Uses[f].(*types.Builtin); isBuiltin && f.Name == "panic" {
				found = true
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "os":
					if fn.Name() == "Exit" {
						found = true
					}
				case "log":
					if strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic") {
						found = true
					}
				case "runtime":
					if fn.Name() == "Goexit" {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// isSource reports whether a call creates a secret buffer: a field
// randomness sampler, or Bytes/Decrypt on a secret-typed receiver, in
// both cases returning a slice.
func (c *checker) isSource(call *ast.CallExpr) bool {
	fn := resolveCallee(c.pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 || !sliceLike(sig.Results().At(0).Type()) {
		return false
	}
	name := fn.Name()
	if sig.Recv() == nil {
		return taint.PathHasSegment(fn.Pkg().Path(), "field") &&
			(strings.HasPrefix(name, "Random") || strings.HasPrefix(name, "MustRandom"))
	}
	if name != "Bytes" && name != "Decrypt" {
		return false
	}
	return c.eng.IsSecretType(sig.Recv().Type())
}

func sliceLike(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// --- small helpers ------------------------------------------------------

// assignParts extracts lhs/rhs from assignment-shaped nodes.
func assignParts(n ast.Node) (lhs, rhs []ast.Expr) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return n.Lhs, n.Rhs
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					for _, id := range vs.Names {
						lhs = append(lhs, id)
					}
					rhs = vs.Values
					return lhs, rhs
				}
			}
		}
	}
	return nil, nil
}

// localTarget resolves an assignment target to its object when it is a
// plain identifier declared inside the function body.
func localTarget(pkg *analysis.Package, decl *ast.FuncDecl, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	o := pkg.Info.Defs[id]
	if o == nil {
		o = pkg.Info.Uses[id]
	}
	if o == nil {
		return nil
	}
	if o.Pos() < decl.Body.Pos() || o.Pos() > decl.Body.End() {
		return nil
	}
	return o
}

func isObjExpr(pkg *analysis.Package, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pkg.Info.Uses[id] == obj
}

// carriesObj reports whether evaluating the expression yields the
// obligation's buffer itself (or a view of it): the bare identifier, a
// reslice, an append over it, a composite literal or address-of
// embedding it. A call that merely consumes the buffer does not carry
// it.
func carriesObj(pkg *analysis.Package, e ast.Expr, obj types.Object) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[x] == obj
	case *ast.SliceExpr:
		return carriesObj(pkg, x.X, obj)
	case *ast.UnaryExpr:
		return carriesObj(pkg, x.X, obj)
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "append" {
			return false
		}
		for _, a := range x.Args {
			if carriesObj(pkg, a, obj) {
				return true
			}
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if carriesObj(pkg, el, obj) {
				return true
			}
		}
	}
	return false
}

func exprMentions(pkg *analysis.Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

func mentionsObj(pkg *analysis.Package, ret *ast.ReturnStmt, obj types.Object) bool {
	for _, r := range ret.Results {
		if exprMentions(pkg, r, obj) {
			return true
		}
	}
	return false
}

// baseObject finds the root identifier's object behind a chain of
// selectors, indexes, derefs and parens.
func baseObject(pkg *analysis.Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := pkg.Info.Uses[x]; o != nil {
				return o
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return pkg.Info.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// resolveCallee resolves the static callee of a call, if any.
func resolveCallee(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
