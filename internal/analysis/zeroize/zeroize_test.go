package zeroize

import (
	"testing"

	"yosompc/internal/analysis/analysistest"
)

// TestFixtures runs the analyzer over the lifetime fixture: drops, the
// wipe forms, defer coverage of exit paths, ownership transfers, and
// unbound source calls.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "sharing")
}
