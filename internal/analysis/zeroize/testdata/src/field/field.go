// Package field is the fixture stand-in for the real field kernel: its
// path segment makes RandomVec a recognized secret-buffer source, and its
// Zeroize helpers are recognized wipes.
package field

// Element is a fixture field element.
type Element uint64

// Vec is a vector of elements.
type Vec []Element

// RandomVec samples a fresh secret vector.
func RandomVec(n int) (Vec, error) {
	return make(Vec, n), nil
}

// Zeroize wipes a buffer of elements.
func Zeroize(v []Element) {
	for i := range v {
		v[i] = 0
	}
}

// Zeroize wipes the vector.
func (v Vec) Zeroize() { Zeroize(v) }
