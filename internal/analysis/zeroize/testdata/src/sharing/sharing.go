// Package sharing exercises the zeroize analyzer: unwiped drops, wipes
// (direct, builtin clear, method, defer'd — including a defer that does
// not cover every exit path), ownership transfers (returns, captures,
// channel sends) with and without //yosolint:owner, local-container
// transfers, aborted-creation error paths, terminators, and unbound
// source calls on secret-typed receivers.
package sharing

import (
	"yosompc/internal/analysis/zeroize/testdata/src/field"
)

type vault struct {
	stash []field.Element
}

var global vault

func use(v []field.Element) {}

func checksum(b []byte) uint32 {
	var s uint32
	for _, x := range b {
		s += uint32(x)
	}
	return s
}

// secretKey is a locally marked secret carrier with the recognized
// buffer-producing methods.
//
//yosolint:secret role decryption key seed
type secretKey struct {
	seed []byte
}

func (k *secretKey) Bytes() []byte { return append([]byte(nil), k.seed...) }

func (k *secretKey) Decrypt(env []byte) ([]byte, error) {
	return append([]byte(nil), env...), nil
}

func Dropped(n int) error {
	rnd, err := field.RandomVec(n) // want `secret buffer rnd \(from field\.RandomVec\) is not zeroized on every path`
	if err != nil {
		return err
	}
	use(rnd)
	return nil
}

func ExplicitWipe(n int) error {
	rnd, err := field.RandomVec(n)
	if err != nil {
		return err
	}
	use(rnd)
	field.Zeroize(rnd)
	return nil
}

func ClearWipe(n int) error {
	rnd, err := field.RandomVec(n)
	if err != nil {
		return err
	}
	use(rnd)
	clear(rnd)
	return nil
}

func MethodWipe(n int) error {
	rnd, err := field.RandomVec(n)
	if err != nil {
		return err
	}
	use(rnd)
	rnd.Zeroize()
	return nil
}

func DeferWipe(n int, early bool) error {
	rnd, err := field.RandomVec(n)
	if err != nil {
		return err
	}
	defer field.Zeroize(rnd)
	if early {
		return nil // covered: the defer dominates this exit
	}
	use(rnd)
	return nil
}

func DeferInBranch(n int, flag bool) error {
	rnd, err := field.RandomVec(n) // want `secret buffer rnd \(from field\.RandomVec\) is not zeroized on every path`
	if err != nil {
		return err
	}
	if flag {
		defer field.Zeroize(rnd)
	}
	return nil
}

func PartialWipe(n int, flag bool) error {
	rnd, err := field.RandomVec(n) // want `secret buffer rnd \(from field\.RandomVec\) is not zeroized on every path`
	if err != nil {
		return err
	}
	if flag {
		field.Zeroize(rnd)
		return nil
	}
	return nil
}

func Returned(n int) (field.Vec, error) {
	rnd, err := field.RandomVec(n)
	if err != nil {
		return nil, err
	}
	return rnd, nil // want `secret buffer rnd is returned without a documented owner`
}

func ReturnedOwned(n int) (field.Vec, error) {
	rnd, err := field.RandomVec(n)
	if err != nil {
		return nil, err
	}
	return rnd, nil //yosolint:owner fixture: the caller owns the sampled vector and wipes it after packing
}

func Captured(n int) error {
	rnd, err := field.RandomVec(n)
	if err != nil {
		return err
	}
	global.stash = rnd // want `secret buffer rnd is captured into a long-lived structure`
	return nil
}

func Sent(n int, ch chan []field.Element) error {
	rnd, err := field.RandomVec(n)
	if err != nil {
		return err
	}
	ch <- rnd // want `secret buffer rnd is sent to a channel without a documented owner`
	return nil
}

func LocalTransfer(n, m int) error {
	out := make([]field.Vec, m)
	for b := 0; b < m; b++ {
		rnd, err := field.RandomVec(n)
		if err != nil {
			return err
		}
		out[b] = rnd // transfer into a local container: tracking ends here
	}
	for _, v := range out {
		field.Zeroize(v)
	}
	return nil
}

func MustSample(n int) field.Vec {
	rnd, err := field.RandomVec(n)
	if err != nil {
		panic(err) // terminator, not a drop
	}
	return rnd //yosolint:owner fixture: constructor semantics, the caller wipes
}

func Fingerprint(k *secretKey) uint32 {
	return checksum(k.Bytes()) // want `secret buffer from k\.Bytes is discarded without a wipeable binding`
}

func FingerprintBound(k *secretKey) uint32 {
	kb := k.Bytes()
	s := checksum(kb)
	clear(kb)
	return s
}

func OpenDropped(k *secretKey, env []byte) (uint32, error) {
	pt, err := k.Decrypt(env) // want `secret buffer pt \(from k\.Decrypt\) is not zeroized on every path`
	if err != nil {
		return 0, err
	}
	return checksum(pt), nil
}

func OpenWiped(k *secretKey, env []byte) (uint32, error) {
	pt, err := k.Decrypt(env)
	if err != nil {
		return 0, err
	}
	s := checksum(pt)
	clear(pt)
	return s, nil
}
