package analysis

import (
	"fmt"
	"sort"
)

// RunPackages runs every analyzer over every package, applies //yosolint:
// directive suppression, and returns the surviving diagnostics sorted by
// position. Malformed directives (unknown name, missing justification) are
// themselves reported, under the pseudo-analyzer name "yosolint".
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		idx, dirDiags := indexDirectives(pkg)
		all = append(all, dirDiags...)
		for _, a := range analyzers {
			var found []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { found = append(found, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range found {
				if !idx.suppresses(a, d) {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}
