package analysis

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"yosompc/internal/parallel"
)

// AnalyzerTime is the accumulated wall time one analyzer spent across the
// run: the sum of its per-package passes (which overlap in wall-clock
// time when packages are analyzed in parallel) plus its module pass.
type AnalyzerTime struct {
	Name    string
	Elapsed time.Duration
}

// RunPackages runs every analyzer over every package, applies //yosolint:
// directive suppression, and returns the diagnostics sorted by position.
// Suppressed diagnostics are returned too, flagged Suppressed with the
// directive's justification attached, so drivers can audit the active
// escape hatches; callers deciding pass/fail must filter them out.
// Malformed directives (a name no registered analyzer honors, or a missing
// justification) are themselves reported, under the pseudo-analyzer name
// "yosolint".
//
// Package-level analyzers (Run) see one package at a time. Module-level
// analyzers (RunModule) run once over the whole load in dependency order;
// packages loaded only as dependency context (Package.DepOnly) feed them
// summaries but are neither directive-validated nor analyzed themselves.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunPackagesTimed(pkgs, analyzers, 0)
	return diags, err
}

// RunPackagesTimed is RunPackages with the package-level passes fanned out
// over `workers` goroutines (0 means one per CPU, 1 the serial reference
// path) and per-analyzer wall time reported alongside the diagnostics.
// Packages are independent units for package-level analyzers — each pass
// touches only its own package's ASTs and type info — so the fan-out is
// over packages, keeping every analyzer's per-package order intact.
// Module-level passes need the whole load at once and stay serial, after
// the fan-out barrier. Diagnostics are sorted by position at the end, so
// the output is byte-for-byte independent of the worker count.
func RunPackagesTimed(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, []AnalyzerTime, error) {
	honored := honoredDirectives(analyzers)
	var active []*Package
	for _, pkg := range pkgs {
		if !pkg.DepOnly {
			active = append(active, pkg)
		}
	}

	// One result slot per package: workers write only their own slot, and
	// the merge below reads them in package order, so parallelism never
	// reorders anything observable.
	type pkgResult struct {
		idx   directiveIndex
		diags []Diagnostic
	}
	results := make([]pkgResult, len(active))
	elapsed := make([]atomic.Int64, len(analyzers))
	err := parallel.For(context.Background(), workers, len(active), func(i int) error {
		pkg := active[i]
		res := &results[i]
		idx, dirDiags := indexDirectives(pkg, honored)
		res.idx = idx
		res.diags = append(res.diags, dirDiags...)
		for ai, a := range analyzers {
			if a.Run == nil {
				continue
			}
			var found []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { found = append(found, d) },
			}
			start := time.Now()
			runErr := a.Run(pass)
			elapsed[ai].Add(int64(time.Since(start)))
			if runErr != nil {
				return fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, runErr)
			}
			res.diags = append(res.diags, applySuppression(idx, a, found)...)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	merged := directiveIndex{}
	var all []Diagnostic
	for _, res := range results {
		all = append(all, res.diags...)
		for file, byLine := range res.idx {
			merged[file] = byLine
		}
	}

	for ai, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		var found []Diagnostic
		mp := &ModulePass{
			Analyzer: a,
			Packages: pkgs,
			report:   func(d Diagnostic) { found = append(found, d) },
		}
		if len(pkgs) > 0 {
			mp.Fset = pkgs[0].Fset
		}
		start := time.Now()
		runErr := a.RunModule(mp)
		elapsed[ai].Add(int64(time.Since(start)))
		if runErr != nil {
			return nil, nil, fmt.Errorf("analysis: %s (module pass): %w", a.Name, runErr)
		}
		all = append(all, applySuppression(merged, a, found)...)
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	times := make([]AnalyzerTime, len(analyzers))
	for ai, a := range analyzers {
		times[ai] = AnalyzerTime{Name: a.Name, Elapsed: time.Duration(elapsed[ai].Load())}
	}
	return all, times, nil
}

// Unsuppressed filters diags down to the findings that should fail a run.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// applySuppression marks each diagnostic covered by a directive for a.
func applySuppression(idx directiveIndex, a *Analyzer, found []Diagnostic) []Diagnostic {
	for i, d := range found {
		if dir := idx.suppressing(a, d); dir != nil {
			found[i].Suppressed = true
			found[i].Justification = dir.Reason
		}
	}
	return found
}

// honoredDirectives is the union of the registered analyzers' Directives
// and Markers — the set of //yosolint: names that are not "unknown". With
// no analyzers registered it falls back to the baseline KnownDirectives.
func honoredDirectives(analyzers []*Analyzer) map[string]bool {
	out := map[string]bool{}
	for _, a := range analyzers {
		for _, name := range a.Directives {
			out[name] = true
		}
		for _, name := range a.Markers {
			out[name] = true
		}
	}
	if len(out) == 0 {
		return KnownDirectives
	}
	return out
}
