package analysis

import (
	"fmt"
	"sort"
)

// RunPackages runs every analyzer over every package, applies //yosolint:
// directive suppression, and returns the diagnostics sorted by position.
// Suppressed diagnostics are returned too, flagged Suppressed with the
// directive's justification attached, so drivers can audit the active
// escape hatches; callers deciding pass/fail must filter them out.
// Malformed directives (a name no registered analyzer honors, or a missing
// justification) are themselves reported, under the pseudo-analyzer name
// "yosolint".
//
// Package-level analyzers (Run) see one package at a time. Module-level
// analyzers (RunModule) run once over the whole load in dependency order;
// packages loaded only as dependency context (Package.DepOnly) feed them
// summaries but are neither directive-validated nor analyzed themselves.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	honored := honoredDirectives(analyzers)
	merged := directiveIndex{}
	var all []Diagnostic
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		idx, dirDiags := indexDirectives(pkg, honored)
		all = append(all, dirDiags...)
		for file, byLine := range idx {
			merged[file] = byLine
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			var found []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { found = append(found, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			all = append(all, applySuppression(idx, a, found)...)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		var found []Diagnostic
		mp := &ModulePass{
			Analyzer: a,
			Packages: pkgs,
			report:   func(d Diagnostic) { found = append(found, d) },
		}
		if len(pkgs) > 0 {
			mp.Fset = pkgs[0].Fset
		}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("analysis: %s (module pass): %w", a.Name, err)
		}
		all = append(all, applySuppression(merged, a, found)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// Unsuppressed filters diags down to the findings that should fail a run.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// applySuppression marks each diagnostic covered by a directive for a.
func applySuppression(idx directiveIndex, a *Analyzer, found []Diagnostic) []Diagnostic {
	for i, d := range found {
		if dir := idx.suppressing(a, d); dir != nil {
			found[i].Suppressed = true
			found[i].Justification = dir.Reason
		}
	}
	return found
}

// honoredDirectives is the union of the registered analyzers' Directives
// and Markers — the set of //yosolint: names that are not "unknown". With
// no analyzers registered it falls back to the baseline KnownDirectives.
func honoredDirectives(analyzers []*Analyzer) map[string]bool {
	out := map[string]bool{}
	for _, a := range analyzers {
		for _, name := range a.Directives {
			out[name] = true
		}
		for _, name := range a.Markers {
			out[name] = true
		}
	}
	if len(out) == 0 {
		return KnownDirectives
	}
	return out
}
