package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Baseline support: a lint baseline records the fingerprints of known
// findings so CI can fail only on new ones while a triage backlog is
// burned down. A fingerprint identifies a finding by analyzer, file, and
// message — deliberately not by line, so unrelated edits that shift code
// do not churn the baseline. Identical findings in one file (same
// analyzer, same message) are disambiguated by count: the baseline stores
// how many there were, and comparison subtracts counts.

// BaselineVersion is the on-disk format version.
const BaselineVersion = 1

// Baseline is the parsed baseline file: fingerprint → occurrence count.
type Baseline struct {
	Version      int            `json:"version"`
	Tool         string         `json:"tool"`
	Fingerprints map[string]int `json:"fingerprints"`
}

// Fingerprint returns the stable identity of a diagnostic: a SHA-256 over
// the analyzer name, the file path (slash-separated, relative to baseDir
// when beneath it), and the message text. Line and column are excluded on
// purpose.
func Fingerprint(d Diagnostic, baseDir string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s", d.Analyzer, artifactURI(d.Pos.Filename, baseDir), d.Message)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// WriteBaseline records the fingerprints of the given diagnostics.
func WriteBaseline(w io.Writer, diags []Diagnostic, baseDir string) error {
	b := Baseline{Version: BaselineVersion, Tool: "yosolint", Fingerprints: map[string]int{}}
	for _, d := range diags {
		b.Fingerprints[Fingerprint(d, baseDir)]++
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a baseline previously written by WriteBaseline.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("baseline: version %d, want %d", b.Version, BaselineVersion)
	}
	if b.Fingerprints == nil {
		b.Fingerprints = map[string]int{}
	}
	return &b, nil
}

// Filter returns the diagnostics not covered by the baseline, preserving
// order. Each baselined fingerprint absorbs up to its recorded count, so
// a file gaining an additional identical finding still fails.
func (b *Baseline) Filter(diags []Diagnostic, baseDir string) []Diagnostic {
	budget := make(map[string]int, len(b.Fingerprints))
	for fp, n := range b.Fingerprints {
		budget[fp] = n
	}
	var out []Diagnostic
	for _, d := range diags {
		fp := Fingerprint(d, baseDir)
		if budget[fp] > 0 {
			budget[fp]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// Stale returns the baselined fingerprints no longer matched by any
// current diagnostic, sorted, so CI can nudge the baseline shrinking.
func (b *Baseline) Stale(diags []Diagnostic, baseDir string) []string {
	current := map[string]int{}
	for _, d := range diags {
		current[Fingerprint(d, baseDir)]++
	}
	var out []string
	for fp, n := range b.Fingerprints {
		if current[fp] < n {
			out = append(out, fp)
		}
	}
	sort.Strings(out)
	return out
}
