package secretflow

import (
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/analysistest"
)

// TestFixtures runs the analyzer over the seven leak-class fixtures:
// direct sink, sink inside a helper, struct embedding + channel erasure,
// justified declassification, the encrypt-then-post clean path,
// telemetry emitters (span attributes, metric names and samples), and
// the pinned modelling blind spots (closure captures caught, calls
// through function/method values not).
func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer,
		"direct", "helper", "chanembed", "declass", "transport", "telemetrysink", "blindspot")
}

// TestBuiltinSourceSetSync type-checks the real packages behind the
// builtin secret set and asserts every key still resolves: a rename of
// sharing.Share or removal of tte.PartialDec must fail this test, not
// silently hollow out the analyzer.
func TestBuiltinSourceSetSync(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks several packages")
	}
	root := repoRoot(t)

	// Group wanted names by package path. Type keys are pkgpath.TypeName,
	// field keys pkgpath.TypeName.FieldName — split at the last dots.
	type want struct {
		typeName string
		field    string // empty for whole-type keys
	}
	wants := map[string][]want{}
	for key := range BuiltinSecretTypes {
		path, name := splitKey(t, key)
		wants[path] = append(wants[path], want{typeName: name})
	}
	for key := range BuiltinSecretFields {
		typeKey, field := splitKey(t, key)
		path, name := splitKey(t, typeKey)
		wants[path] = append(wants[path], want{typeName: name, field: field})
	}

	var paths []string
	for p := range wants {
		paths = append(paths, "./"+strings.TrimPrefix(p, "yosompc/"))
	}
	sort.Strings(paths)
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: root}, paths...)
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*analysis.Package{}
	for _, p := range pkgs {
		byPath[p.Types.Path()] = p
	}
	for path, ws := range wants {
		pkg := byPath[path]
		if pkg == nil {
			t.Errorf("builtin source package %s did not load", path)
			continue
		}
		for _, w := range ws {
			obj := pkg.Types.Scope().Lookup(w.typeName)
			if obj == nil {
				t.Errorf("builtin source %s.%s no longer exists", path, w.typeName)
				continue
			}
			tn, ok := obj.(*types.TypeName)
			if !ok {
				t.Errorf("builtin source %s.%s is a %T, not a type", path, w.typeName, obj)
				continue
			}
			if w.field == "" {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				t.Errorf("builtin field source %s.%s.%s: type is not a struct", path, w.typeName, w.field)
				continue
			}
			found := false
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Name() == w.field {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("builtin field source %s.%s has no field %s", path, w.typeName, w.field)
			}
		}
	}
}

// TestBuiltinSinkFuncsSync type-checks the package behind every builtin
// sink key and asserts the method still exists with that receiver: a
// telemetry API rename must fail here, not silently stop classifying the
// emitter as a sink.
func TestBuiltinSinkFuncsSync(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks several packages")
	}
	root := repoRoot(t)

	// Sink keys are pkgpath.RecvType.Method (taint.FuncKey form).
	type want struct{ typeName, method string }
	wants := map[string][]want{}
	for key, kind := range BuiltinSinkFuncs {
		if kind != "metric" && kind != "trace" {
			t.Errorf("builtin sink %s has unknown kind %q", key, kind)
		}
		typeKey, method := splitKey(t, key)
		path, name := splitKey(t, typeKey)
		wants[path] = append(wants[path], want{typeName: name, method: method})
	}

	var paths []string
	for p := range wants {
		paths = append(paths, "./"+strings.TrimPrefix(p, "yosompc/"))
	}
	sort.Strings(paths)
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: root}, paths...)
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*analysis.Package{}
	for _, p := range pkgs {
		byPath[p.Types.Path()] = p
	}
	for path, ws := range wants {
		pkg := byPath[path]
		if pkg == nil {
			t.Errorf("builtin sink package %s did not load", path)
			continue
		}
		for _, w := range ws {
			obj := pkg.Types.Scope().Lookup(w.typeName)
			tn, ok := obj.(*types.TypeName)
			if !ok {
				t.Errorf("builtin sink receiver %s.%s no longer exists", path, w.typeName)
				continue
			}
			m, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg.Types, w.method)
			if _, ok := m.(*types.Func); !ok {
				t.Errorf("builtin sink %s.%s has no method %s", path, w.typeName, w.method)
			}
		}
	}
}

// splitKey splits "pkgpath.Name" at the last dot.
func splitKey(t *testing.T, key string) (path, name string) {
	t.Helper()
	i := strings.LastIndex(key, ".")
	if i < 0 {
		t.Fatalf("malformed builtin key %q", key)
	}
	return key[:i], key[i+1:]
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}
