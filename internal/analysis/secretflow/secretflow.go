// Package secretflow is the interprocedural secret-taint analyzer of the
// yosolint suite. It tracks cryptographic secret material — Shamir shares,
// threshold key shares, partial decryptions, Paillier private keys — from
// its sources through assignments, helper calls, struct fields and
// channels, and reports every flow into a disclosure sink: logging,
// error construction, or a plaintext bulletin-board post.
//
// Sources are the builtin secret set below plus any type or struct field
// annotated `//yosolint:secret <why>`. Encryption, hashing, and
// zero-knowledge proving are sanitizers: their results are clean, so the
// encrypt-then-post path stays silent. A reported flow that is an
// intentional disclosure (the protocol's output step, a simulation
// transcript) is acknowledged in place with
// `//yosolint:declassify <why>` — the justification is mandatory and the
// suppression is preserved in cmd/yosolint -json output for audit.
//
// The dataflow machinery lives in internal/analysis/taint (summaries,
// lattice) over internal/analysis/cfg (reachable statements); this package
// contributes only the YOSO-specific policy: what is secret, what
// discloses, what sanitizes. docs/STATIC_ANALYSIS.md documents both the
// model and its blind spots.
package secretflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/taint"
)

// Analyzer is the secretflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "secretflow",
	Doc:        "track secret material interprocedurally; flag flows into logs, errors, and plaintext board posts",
	Directives: []string{"declassify", "ignore"},
	Markers:    []string{"secret"},
	RunModule:  run,
}

// BuiltinSecretTypes are the canonical keys of the repo's well-known
// secret-material types, seeded without annotation so the analyzer guards
// them even if a refactor drops a comment. A sync test asserts each key
// still resolves to a real named type.
var BuiltinSecretTypes = map[string]bool{
	"yosompc/internal/sharing.Share":  true, // Shamir share (packed or plain)
	"yosompc/internal/tte.KeyShare":   true, // threshold key share
	"yosompc/internal/tte.PartialDec": true, // partial decryption (pre-threshold)
	"yosompc/internal/tte.SubShare":   true, // resharing sub-share of a key share
	"yosompc/internal/pke.SecretKey":  true, // role-addressed decryption key
}

// BuiltinSecretFields are field-granular builtin marks: the named field is
// secret while its siblings (indices, evaluation points, the embedded
// public key in paillier.PrivateKey) stay public.
var BuiltinSecretFields = map[string]bool{
	"yosompc/internal/sharing.Share.Value":        true,
	"yosompc/internal/paillier.PrivateKey.P":      true,
	"yosompc/internal/paillier.PrivateKey.Q":      true,
	"yosompc/internal/paillier.PrivateKey.Lambda": true,
	"yosompc/internal/paillier.PrivateKey.Mu":     true,
	"yosompc/internal/paillier.PrivateKey.M":      true,
}

func run(mp *analysis.ModulePass) error {
	eng := taint.NewEngine(taint.Config{
		SecretTypes:  BuiltinSecretTypes,
		SecretFields: BuiltinSecretFields,
		Sinks:        classifySink,
		Sanitizer:    sanitizer,
	})
	// First pass: register every //yosolint:secret annotation across the
	// whole load (including dependency-only packages) so marks are in
	// force before any body is analyzed.
	for _, pkg := range mp.Packages {
		MarkSecrets(eng, pkg)
	}
	// Second pass: dependency order, dependencies first, so callee
	// summaries exist before their call sites. Leaks found in packages
	// loaded only as context are not reported — they belong to that
	// package's own lint run.
	for _, pkg := range mp.Packages {
		leaks := eng.AddPackage(pkg)
		if pkg.DepOnly {
			continue
		}
		for _, l := range leaks {
			mp.Reportf(l.Pos, "%s", message(l))
		}
	}
	return nil
}

// MarkSecrets registers the package's //yosolint:secret annotations: on a
// type declaration line the whole type becomes secret material, on a
// struct field line just that field does. Exported so sibling analyzers
// (sidechannel, zeroize) can seed their engines with the same
// secret-source model, builtin sets plus annotations, that this analyzer
// enforces.
func MarkSecrets(eng *taint.Engine, pkg *analysis.Package) {
	if pkg.Types == nil {
		return
	}
	path := pkg.Types.Path()
	for _, f := range pkg.Files {
		pos := pkg.Fset.Position(f.Pos())
		src := pkg.Sources[pos.Filename]
		lines := map[int]bool{}
		for _, d := range analysis.ParseDirectives(pkg.Fset, f, src) {
			if d.Name == "secret" {
				lines[d.Line] = true
			}
		}
		if len(lines) == 0 {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if lines[pkg.Fset.Position(ts.Pos()).Line] {
					eng.MarkType(path + "." + ts.Name.Name)
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					if !lines[pkg.Fset.Position(fld.Pos()).Line] {
						continue
					}
					for _, name := range fld.Names {
						eng.MarkField(path + "." + ts.Name.Name + "." + name.Name)
					}
				}
			}
		}
	}
}

// logFuncs are the disclosing functions/methods of package log (the
// package-level functions and *log.Logger methods share these names).
var logFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
	"Output": true,
}

// slogFuncs are the disclosing functions/methods of log/slog.
var slogFuncs = map[string]bool{
	"Debug": true, "DebugContext": true,
	"Info": true, "InfoContext": true,
	"Warn": true, "WarnContext": true,
	"Error": true, "ErrorContext": true,
	"Log": true, "LogAttrs": true,
}

// BuiltinSinkFuncs are method-granular builtin sinks, keyed by
// taint.FuncKey (pkgpath.RecvType.Method). Telemetry emitters are
// disclosure surfaces exactly like logs: span attributes, metric names
// and recorded samples end up in trace files, HTTP /metrics responses and
// stamped benchmark results that leave the trust boundary — secret
// material must never be used as a label or sample value. A sync test
// asserts each key still resolves to a real method.
var BuiltinSinkFuncs = map[string]string{
	"yosompc/internal/telemetry.Tracer.Start":       "trace",
	"yosompc/internal/telemetry.Span.Child":         "trace",
	"yosompc/internal/telemetry.Span.SetStr":        "trace",
	"yosompc/internal/telemetry.Span.SetInt":        "trace",
	"yosompc/internal/telemetry.Registry.Counter":   "metric",
	"yosompc/internal/telemetry.Registry.Gauge":     "metric",
	"yosompc/internal/telemetry.Registry.Histogram": "metric",
	"yosompc/internal/telemetry.Counter.Add":        "metric",
	"yosompc/internal/telemetry.Gauge.Set":          "metric",
	"yosompc/internal/telemetry.Gauge.Add":          "metric",
	"yosompc/internal/telemetry.Gauge.Max":          "metric",
	"yosompc/internal/telemetry.Histogram.Observe":  "metric",
}

// classifySink decides whether one resolved callee at one call site is a
// disclosure point, and which arguments it discloses.
func classifySink(pkg *analysis.Package, call *ast.CallExpr, fn *types.Func) *taint.Sink {
	if fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	switch path {
	case "log":
		if logFuncs[name] {
			return &taint.Sink{Kind: "log"}
		}
	case "log/slog":
		if slogFuncs[name] {
			return &taint.Sink{Kind: "log"}
		}
	case "errors":
		if name == "New" {
			return &taint.Sink{Kind: "error"}
		}
	case "fmt":
		switch name {
		case "Errorf":
			return &taint.Sink{Kind: "error"}
		case "Print", "Printf", "Println":
			return &taint.Sink{Kind: "log"}
		case "Fprint", "Fprintf", "Fprintln":
			// A write to an arbitrary io.Writer may be a file or a hash;
			// only the process's standard streams are disclosure.
			if len(call.Args) > 0 && isStdStream(pkg, call.Args[0]) {
				idx := make([]int, 0, len(call.Args)-1)
				for i := 1; i < len(call.Args); i++ {
					idx = append(idx, i)
				}
				return &taint.Sink{Kind: "log", Args: idx}
			}
		}
	}
	// Bulletin-board publication: everyone-sees-everything by definition.
	// Material must be encrypted (sanitized) before it is handed to the
	// board or a role's posting helper.
	if (name == "Post" || name == "Publish" || name == "Broadcast") && boardPkg(path) {
		return &taint.Sink{Kind: "post"}
	}
	if kind, ok := BuiltinSinkFuncs[taint.FuncKey(fn)]; ok {
		return &taint.Sink{Kind: kind}
	}
	return nil
}

func boardPkg(path string) bool {
	return taint.PathHasSegment(path, "transport") ||
		taint.PathHasSegment(path, "comm") ||
		taint.PathHasSegment(path, "yoso") ||
		taint.PathHasSegment(path, "board")
}

// isStdStream reports whether e is the selector os.Stdout or os.Stderr.
func isStdStream(pkg *analysis.Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return pn.Imported().Path() == "os" && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// IsSanitizer exposes the sanitizer predicate to sibling analyzers that
// reuse the secret-source model (a value that went through encryption or
// proving is no longer secret for their policies either).
func IsSanitizer(fn *types.Func) bool { return sanitizer(fn) }

// sanitizer reports callees whose results are clean regardless of input:
// encryption in the crypto-bearing packages, the standard hash/crypto
// primitives, and zero-knowledge proving. Their summaries still run, so a
// leak on an error path inside a sanitizer is not masked.
func sanitizer(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	if path == "crypto" || strings.HasPrefix(path, "crypto/") {
		return true
	}
	if strings.HasPrefix(name, "Encrypt") &&
		(taint.PathHasSegment(path, "pke") || taint.PathHasSegment(path, "tte") || taint.PathHasSegment(path, "paillier")) {
		return true
	}
	if taint.PathHasSegment(path, "nizk") && (strings.Contains(name, "Prove") || name == "Attest") {
		return true
	}
	// Modular exponentiation is a one-way function: g^x publishes a value
	// that hides x by the hardness of discrete log / factoring. The Shoup
	// verification keys v^(Δ·d_i), partial decryptions c^(2Δ·d_i), and
	// sigma-protocol commitments derive from secret exponents exactly this
	// way and are public by design. The modexp engine package is the
	// sanctioned home for these kernels (ExpSigned, ExpCachedSigned,
	// ExpManySigned, MultiExp, FixedBase.Exp, PowerLadder.Pow), alongside
	// paillier's CRT variant of the same operation.
	if taint.PathHasSegment(path, "modexp") && (strings.Contains(name, "Exp") || name == "Pow") {
		return true
	}
	if name == "ExpSignedCRT" && taint.PathHasSegment(path, "paillier") {
		return true
	}
	return false
}

// message renders one leak. The sink kinds match classifySink. When the
// sink is inside a helper (Via set), the call into the helper is the
// reported site.
func message(l taint.Leak) string {
	if l.Via != "" {
		switch l.Sink {
		case "log":
			return fmt.Sprintf("secret value %s reaches a logging sink inside %s", l.Expr, short(l.Callee))
		case "error":
			return fmt.Sprintf("secret value %s is formatted into an error inside %s", l.Expr, short(l.Callee))
		case "post":
			return fmt.Sprintf("secret value %s is posted to the board in plaintext inside %s", l.Expr, short(l.Callee))
		case "metric":
			return fmt.Sprintf("secret value %s flows into a metrics sink inside %s", l.Expr, short(l.Callee))
		case "trace":
			return fmt.Sprintf("secret value %s is recorded as a trace attribute inside %s", l.Expr, short(l.Callee))
		default:
			return fmt.Sprintf("secret value %s reaches a %s sink inside %s", l.Expr, l.Sink, short(l.Callee))
		}
	}
	switch l.Sink {
	case "log":
		return fmt.Sprintf("secret value %s reaches logging sink %s", l.Expr, short(l.Callee))
	case "error":
		return fmt.Sprintf("secret value %s is formatted into an error by %s", l.Expr, short(l.Callee))
	case "post":
		return fmt.Sprintf("secret value %s is posted to the board in plaintext by %s", l.Expr, short(l.Callee))
	case "metric":
		return fmt.Sprintf("secret value %s flows into metrics sink %s", l.Expr, short(l.Callee))
	case "trace":
		return fmt.Sprintf("secret value %s is recorded as a trace attribute by %s", l.Expr, short(l.Callee))
	default:
		return fmt.Sprintf("secret value %s reaches %s sink %s", l.Expr, l.Sink, short(l.Callee))
	}
}

// short strips module path noise from a function name for messages.
func short(name string) string {
	name = strings.ReplaceAll(name, "yosompc/internal/", "")
	name = strings.ReplaceAll(name, "yosompc/", "")
	return name
}
