// Package pke is the fixture encryption helper: its directory name puts
// it in a "pke" path segment, so Encrypt matches the suite's sanitizer
// rule exactly as the real yosompc/internal/pke package does.
package pke

// Ciphertext is an opaque encryption of a message.
type Ciphertext []byte

// Encrypt encrypts msg; the result is safe to publish.
func Encrypt(msg []byte) Ciphertext {
	out := make(Ciphertext, len(msg))
	copy(out, msg)
	return out
}
