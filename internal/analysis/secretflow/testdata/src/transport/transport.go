// Package transport exercises leak class 5, both directions: posting a
// raw share to the board is a leak, while the encrypt-then-post path must
// stay silent (the acceptance bar for false positives). The directory
// name puts the fixture in a "transport" path segment so its Post method
// matches the suite's board-sink rule.
package transport

import (
	"yosompc/internal/analysis/secretflow/testdata/src/pke"
	"yosompc/internal/sharing"
)

// Board is a minimal bulletin board.
type Board struct{ posts []any }

// Post publishes payload for every party to read.
func (b *Board) Post(payload any) {
	b.posts = append(b.posts, payload)
}

// PublishShare posts a share without encrypting it first.
func PublishShare(b *Board, sh sharing.Share) {
	b.Post(sh) // want `secret value sh is posted to the board in plaintext by .*Post`
}

// PublishEncrypted is the clean path: encrypt, then post.
func PublishEncrypted(b *Board, sh sharing.Share) {
	raw := sh.Value.Bytes()
	ct := pke.Encrypt(raw[:])
	b.Post(ct)
	b.Post(sh.Index)
}
