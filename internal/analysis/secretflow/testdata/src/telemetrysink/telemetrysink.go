// Package telemetrysink exercises the telemetry-emitter sinks: span
// attributes and metric names/samples end up in trace files and /metrics
// responses, so secret material flowing into them is a disclosure exactly
// like logging it. The clean paths — recording public indices, sizes and
// durations — must stay silent.
package telemetrysink

import (
	"fmt"

	"yosompc/internal/sharing"
	"yosompc/internal/telemetry"
)

// StampShareOnSpan records a share's secret value as a span attribute.
func StampShareOnSpan(sp *telemetry.Span, sh sharing.Share) {
	sp.SetStr("share", fmt.Sprint(sh.Value)) // want `secret value .* is recorded as a trace attribute by .*SetStr`
}

// CountByShare keys a metric by the secret value itself.
func CountByShare(reg *telemetry.Registry, sh sharing.Share) {
	reg.Counter(fmt.Sprintf("shares.%v", sh.Value)).Inc() // want `secret value .* flows into metrics sink .*Counter`
}

// ObserveShare feeds the secret value into a histogram sample.
func ObserveShare(h *telemetry.Histogram, sh sharing.Share) {
	h.Observe(float64(sh.Value.Uint64())) // want `secret value .* flows into metrics sink .*Observe`
}

// StampMetadata is the clean path: evaluation-point indices, byte sizes
// and names are public by design and must not be flagged.
func StampMetadata(sp *telemetry.Span, reg *telemetry.Registry, sh sharing.Share) {
	sp.SetInt("index", int64(sh.Index))
	sp.SetStr("holder", "off1/3")
	reg.Counter("shares.delivered").Inc()
	reg.Histogram("share.bytes", telemetry.SizeBuckets).Observe(16)
}
