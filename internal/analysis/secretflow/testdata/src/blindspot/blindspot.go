// Package blindspot pins the engine's documented modelling limits
// (docs/STATIC_ANALYSIS.md, "What secretflow cannot see") as executable
// fixtures: the cases that ARE caught carry want comments, and the
// escapes are pinned clean so a future engine change that starts (or
// stops) seeing them fails this test and forces the docs to move in
// lockstep.
package blindspot

import (
	"log"

	"yosompc/internal/sharing"
)

// InlineClosure: closure bodies are analyzed inline in their enclosing
// function, so a sink inside an immediately-invoked closure is caught.
func InlineClosure(sh sharing.Share) {
	func() {
		log.Printf("inline %v", sh) // want `secret value sh reaches logging sink log.Printf`
	}()
}

// CapturedClosure: the closure body is analyzed where it is written, so
// a capture that sinks is caught at the sink line even though the
// closure is only stored, never called here.
func CapturedClosure(sh sharing.Share) func() {
	return func() {
		log.Printf("captured %v", sh) // want `secret value sh reaches logging sink log.Printf`
	}
}

// sinkFn is a named helper whose summary records the sink.
func sinkFn(v any) {
	log.Printf("helper %v", v)
}

// DirectHelperCall: the summary-based interprocedural path — caught.
func DirectHelperCall(sh sharing.Share) {
	sinkFn(sh) // want `secret value sh reaches a logging sink inside .*sinkFn`
}

// FuncValueCall is BLIND SPOT 1: the same helper invoked through a bare
// function value. Calls through function values propagate taint to
// results but perform no summary lookup, so the sink inside sinkFn is
// not attributed to this call site. Pinned clean.
func FuncValueCall(sh sharing.Share) {
	f := sinkFn
	f(sh) // pinned clean: function-value calls have no summary lookup
}

// logger wraps a sinking method for the method-value case.
type logger struct{ prefix string }

func (l *logger) emit(v any) {
	log.Printf("%s %v", l.prefix, v)
}

// MethodCall: ordinary method dispatch resolves the callee — caught.
func MethodCall(sh sharing.Share, l *logger) {
	l.emit(sh) // want `secret value sh reaches a logging sink inside .*emit`
}

// MethodValueCall is BLIND SPOT 2: a method value binds the receiver
// into a function value, and the later call through it resolves no
// callee, so emit's summary is never consulted. Pinned clean.
func MethodValueCall(sh sharing.Share, l *logger) {
	f := l.emit
	f(sh) // pinned clean: method-value calls have no summary lookup
}

// dispatcher stores a callback taking the secret as a parameter; the
// body is analyzed in its defining scope where the parameter is clean.
type dispatcher struct {
	fire func(v any)
}

// DeferredCallback is BLIND SPOT 3: the callback's body sinks its
// parameter, but the body was analyzed with an untainted parameter and
// the invocation site resolves no callee. Pinned clean end to end.
func DeferredCallback(sh sharing.Share) {
	d := &dispatcher{fire: func(v any) {
		log.Printf("deferred %v", v) // clean here: v is not tainted in this scope
	}}
	d.fire(sh) // pinned clean: struct-field function calls have no summary lookup
}
