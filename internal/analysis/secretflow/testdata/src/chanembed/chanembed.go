// Package chanembed exercises leak class 3: secret material hidden behind
// struct composition/embedding and passed through a channel whose element
// type erases the secret's type.
package chanembed

import (
	"log"

	"yosompc/internal/tte"
)

// bundle wraps a key share behind a neutral struct.
type bundle struct {
	label string
	ks    tte.KeyShare
}

// wrapped embeds the secret interface directly.
type wrapped struct {
	tte.KeyShare
	note string
}

func Relay(ks tte.KeyShare, out chan any) {
	b := bundle{label: "kff", ks: ks}
	log.Println("bundle", b) // want `secret value b reaches logging sink log\.Println`
	w := wrapped{KeyShare: ks, note: "epoch 3"}
	log.Println("wrapped", w) // want `secret value w reaches logging sink log\.Println`
	out <- ks
	v := <-out
	log.Println("recv", v) // want `secret value v reaches logging sink log\.Println`
	log.Println("label", b.label)
}
