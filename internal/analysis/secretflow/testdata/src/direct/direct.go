// Package direct exercises leak class 1: secret material handed straight
// to a sink in the same function, from both the builtin source set
// (sharing.Share, its Value field) and a locally //yosolint:secret
// annotated field.
package direct

import (
	"fmt"
	"log"

	"yosompc/internal/sharing"
)

// Key is a locally annotated secret carrier: Raw is secret, ID is not.
type Key struct {
	ID  int
	Raw []byte //yosolint:secret raw key bytes reconstruct the decryption key
}

func Dump(sh sharing.Share, k Key) error {
	log.Printf("share=%v", sh)             // want `secret value sh reaches logging sink log\.Printf`
	fmt.Println(sh.Value)                  // want `secret value sh\.Value reaches logging sink fmt\.Println`
	log.Printf("share index=%d", sh.Index) // clean: Index is a public field
	fmt.Printf("key id=%d\n", k.ID)        // clean: ID is not marked
	fmt.Println(k)                         // want `secret value k reaches logging sink fmt\.Println`
	if len(k.Raw) == 0 {
		return fmt.Errorf("empty key %x", k.Raw) // want `secret value k\.Raw is formatted into an error by fmt\.Errorf`
	}
	return nil
}
