// Package helper exercises leak class 2: the sink is inside a helper
// function, so the leak must cross a call boundary via the helper's
// summary — both for a secret passed into a sinking helper and for taint
// carried out of a formatting helper's result.
package helper

import (
	"fmt"

	"yosompc/internal/sharing"
)

// record formats its argument into an error — a sink behind a call.
func record(v any) error {
	return fmt.Errorf("record: %v", v)
}

// describe launders the share through a formatting result.
func describe(sh sharing.Share) string {
	return fmt.Sprintf("share %v", sh)
}

func Process(sh sharing.Share) error {
	s := describe(sh)
	if err := record(sh); err != nil { // want `secret value sh is formatted into an error inside .*record`
		return err
	}
	return record(s) // want `secret value s is formatted into an error inside .*record`
}

func Clean(sh sharing.Share) error {
	return record(sh.Index) // clean: only the public index crosses into the helper
}
