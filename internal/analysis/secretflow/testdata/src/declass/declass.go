// Package declass exercises leak class 4: a real secret flow that is an
// intentional disclosure, acknowledged in place with a justified
// //yosolint:declassify directive. The analyzer still sees the flow, but
// the suppressed diagnostic carries the justification instead of failing
// the run.
package declass

import (
	"fmt"

	"yosompc/internal/sharing"
)

// Transcript prints the reconstructed output share — the protocol's
// output step, public by design.
func Transcript(sh sharing.Share) {
	fmt.Println("output share", sh.Value) //yosolint:declassify protocol output step discloses the reconstructed value by design
}
