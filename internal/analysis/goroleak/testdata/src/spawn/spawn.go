// Package spawn exercises the goroleak analyzer: every accepted class of
// termination evidence (WaitGroup join, context bound, closed-channel
// signal, receive-only ownership, finite body), the unbounded-loop-spawn
// rule, unanalyzable spawn targets, and the //yosolint:daemon escape
// hatch.
package spawn

import (
	"context"
	"net"
	"net/http"
	"sync"
)

// Joined is the canonical bounded fan-out: Add before spawn, deferred
// Done inside, Wait after the loop.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// CtxBound parks until the context ends.
func CtxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// DoneChannel is the stop-function idiom: the goroutine selects on a
// channel the returned closure closes.
func DoneChannel() (stop func()) {
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// ConsumeStream ranges over a receive-only channel: the producer owns the
// close, so the loop is bounded elsewhere.
func ConsumeStream(entries <-chan int) {
	go func() {
		for range entries {
		}
	}()
}

// worker drains a receive-only channel; spawning it by name resolves the
// declaration like an inline literal.
func worker(jobs <-chan int) {
	for range jobs {
	}
}

// SpawnWorker spawns a named same-package function.
func SpawnWorker(jobs <-chan int) {
	go worker(jobs)
}

// FireAndForget has a finite body: no loops, so it runs to completion.
func FireAndForget(result chan<- int) {
	go func() { result <- 42 }()
}

// LeakForever loops on a channel nobody closes: no evidence at all.
func LeakForever() {
	ch := make(chan int)
	go func() { // want `goroutine has no provable termination path \(no WaitGroup join`
		for v := range ch {
			_ = v
		}
	}()
	ch <- 1
}

// SpawnStorm is context-bounded in lifetime but unbounded in count: each
// iteration leaks a parked goroutine until the context ends.
func SpawnStorm(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		go func() { // want `unbounded goroutine spawn in a loop without a WaitGroup join`
			<-ctx.Done()
		}()
	}
}

// External spawns a function value: nothing to analyze.
func External(f func()) {
	go f() // want `goroutine has no provable termination path \(cannot analyze callee f\)`
}

// DebugServe never returns: http.Serve voids the finite-body evidence.
func DebugServe(srv *http.Server, ln net.Listener) {
	go func() { _ = srv.Serve(ln) }() // want `goroutine has no provable termination path`
}

// Daemon is DebugServe with the process-lifetime intent recorded; the
// mandatory justification keeps the finding suppressed but auditable.
func Daemon(ln net.Listener) {
	go func() { _ = http.Serve(ln, nil) }() //yosolint:daemon debug endpoint lives for the process lifetime
}

// BlockForever is `select {}`: deliberately parked forever, which is not
// a finite body.
func BlockForever() {
	go func() { // want `goroutine has no provable termination path`
		select {}
	}()
}
