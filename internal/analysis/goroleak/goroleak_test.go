package goroleak

import (
	"testing"

	"yosompc/internal/analysis/analysistest"
)

// TestFixtures runs the analyzer over the spawn fixtures: each accepted
// class of termination evidence, the unbounded-loop-spawn rule,
// unanalyzable spawn targets, and the //yosolint:daemon escape hatch.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "spawn")
}
