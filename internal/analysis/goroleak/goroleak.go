// Package goroleak is the goroutine-lifecycle analyzer of the yosolint
// suite. Every `go` statement must carry a provable termination path —
// otherwise a protocol run at n ≈ 20 000 committee members turns each
// stray spawn into twenty thousand leaked stacks. The accepted evidence,
// any one of which clears a spawn:
//
//   - a sync.WaitGroup join: the body calls wg.Done (usually deferred) on
//     a WaitGroup that some function in the package Waits on;
//   - a context bound: the body checks ctx.Done() or ctx.Err();
//   - a close signal: the body receives from, selects on, or ranges over
//     a channel that the package closes, or whose type is receive-only
//     (<-chan E) — a receive-only channel is producer-owned, and the
//     producer's close ends the loop;
//   - a finite body: no loops and no known-nonterminating calls
//     (http.Serve and friends), so the goroutine runs to completion.
//
// Independently of lifetime, a `go` statement inside a loop without a
// WaitGroup join is an unbounded spawn: the bounded fan-out engine in
// internal/parallel is the one place allowed to mass-spawn, because its
// pool joins every worker before returning.
//
// Test files are skipped (the -race CI job owns test goroutine hygiene).
// A process-lifetime goroutine (a debug HTTP listener, a signal pump) is
// acknowledged in place with `//yosolint:daemon <why>`; the justification
// is mandatory and the suppression shows up in cmd/yosolint -json output.
//
// Blind spots, documented in docs/STATIC_ANALYSIS.md: evidence is
// syntactic (a Done on the wrong WaitGroup instance of the right type
// still counts), a finite body assumes its calls return, and receiving
// from a package-closed channel assumes the close is reachable.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/taint"
)

// Analyzer is the goroleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "goroleak",
	Doc:        "require a provable termination path for every goroutine; flag unbounded spawns outside internal/parallel",
	Directives: []string{"daemon", "ignore"},
	Run:        run,
}

func run(pass *analysis.Pass) error {
	pkg := &analysis.Package{
		Path:  pass.Pkg.Path(),
		Name:  pass.Pkg.Name(),
		Fset:  pass.Fset,
		Files: pass.Files,
		Types: pass.Pkg,
		Info:  pass.TypesInfo,
	}
	st := &state{pass: pass, pkg: pkg, bodies: map[*types.Func]*ast.FuncDecl{}}
	st.collectFacts()
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st.walkFunc(fd.Body)
		}
	}
	return nil
}

type state struct {
	pass *analysis.Pass
	pkg  *analysis.Package
	// closedKeys names the channels the package closes somewhere.
	closedKeys map[string]bool
	// waitKeys names the WaitGroups the package Waits on somewhere.
	waitKeys map[string]bool
	// bodies resolves same-package function objects to their declarations,
	// so `go s.handle(conn)` is analyzed like an inline literal.
	bodies map[*types.Func]*ast.FuncDecl
}

// collectFacts indexes package-wide close/Wait sites and function bodies.
// Test files contribute facts too: a Wait in a test joins goroutines the
// non-test code spawns only in exported-for-test paths — but spawns
// themselves are only checked in non-test files.
func (st *state) collectFacts() {
	st.closedKeys = map[string]bool{}
	st.waitKeys = map[string]bool{}
	for _, f := range st.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := st.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(call.Args) == 1 {
					if k := exprKey(st.pkg, call.Args[0]); k != "" {
						st.closedKeys[k] = true
					}
				}
				return true
			}
			if fn := callee(st.pkg, call); fn != nil && fn.Name() == "Wait" && isWaitGroup(fn) {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if k := exprKey(st.pkg, sel.X); k != "" {
						st.waitKeys[k] = true
					}
				}
			}
			return true
		})
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := st.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				st.bodies[obj] = fd
			}
		}
	}
}

// walkFunc visits every go statement in a body (including inside function
// literals), tracking whether the spawn site is lexically inside a loop.
func (st *state) walkFunc(body *ast.BlockStmt) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.ForStmt:
				if x.Init != nil {
					walk(x.Init, inLoop)
				}
				if x.Cond != nil {
					walk(x.Cond, inLoop)
				}
				if x.Post != nil {
					walk(x.Post, inLoop)
				}
				walk(x.Body, true)
				return false
			case *ast.RangeStmt:
				if x.X != nil {
					walk(x.X, inLoop)
				}
				walk(x.Body, true)
				return false
			case *ast.GoStmt:
				st.checkSpawn(x, inLoop)
				// The spawned body's own nested go statements are not in a
				// loop of this function; walk them with a fresh context.
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, false)
				}
				for _, a := range x.Call.Args {
					walk(a, inLoop)
				}
				return false
			case *ast.FuncLit:
				// A literal's body runs whenever it is called — not
				// necessarily in this loop — but spawns inside it still
				// need their own evidence.
				walk(x.Body, false)
				return false
			}
			return true
		})
	}
	walk(body, false)
}

// checkSpawn applies the termination-evidence and bounded-spawn rules to
// one go statement.
func (st *state) checkSpawn(g *ast.GoStmt, inLoop bool) {
	body, calleeName := st.spawnBody(g.Call)
	if body == nil {
		st.pass.Reportf(g.Pos(),
			"goroutine has no provable termination path (cannot analyze callee %s)", calleeName)
		return
	}
	ev := st.evidence(body)
	if !ev.any() {
		st.pass.Reportf(g.Pos(),
			"goroutine has no provable termination path (no WaitGroup join, context check, closed-channel signal, or finite body)")
		return
	}
	if inLoop && !ev.wgJoin && !inParallelPkg(st.pass.Pkg.Path()) {
		st.pass.Reportf(g.Pos(),
			"unbounded goroutine spawn in a loop without a WaitGroup join (use internal/parallel for bounded fan-out)")
	}
}

// spawnBody resolves the body the goroutine will run: an inline literal,
// or a same-package function/method declaration. The fallback name feeds
// the cannot-analyze message.
func (st *state) spawnBody(call *ast.CallExpr) (*ast.BlockStmt, string) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, "func literal"
	}
	if fn := callee(st.pkg, call); fn != nil {
		if fd, ok := st.bodies[fn]; ok {
			return fd.Body, fn.Name()
		}
		return nil, shortFunc(fn)
	}
	return nil, types.ExprString(call.Fun)
}

// spawnEvidence is the set of termination proofs found in a body.
type spawnEvidence struct {
	wgJoin    bool // wg.Done on a package-Waited WaitGroup
	ctxBound  bool // ctx.Done() / ctx.Err() checked
	closeSig  bool // receive/select/range on a closed or receive-only channel
	finite    bool // no loops, no known-nonterminating calls
	selectAll bool // `select {}`: blocks forever, voids finiteness
}

func (ev spawnEvidence) any() bool {
	return ev.wgJoin || ev.ctxBound || ev.closeSig || (ev.finite && !ev.selectAll)
}

// nonterminating are stdlib calls that never return in normal operation:
// a body that reaches one is a daemon, not a finite goroutine.
var nonterminating = map[string]bool{
	"Serve": true, "ListenAndServe": true, "ListenAndServeTLS": true, "ServeTLS": true,
}

// evidence scans a spawn body (whole subtree, nested literals included —
// a join or context check delegated to a helper closure still counts).
func (st *state) evidence(body *ast.BlockStmt) spawnEvidence {
	ev := spawnEvidence{finite: true}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			ev.finite = false
		case *ast.RangeStmt:
			ev.finite = false
			if x.X != nil && st.boundedChannel(x.X) {
				ev.closeSig = true
			}
		case *ast.SelectStmt:
			if len(x.Body.List) == 0 {
				ev.selectAll = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && st.boundedChannel(x.X) {
				ev.closeSig = true
			}
		case *ast.CallExpr:
			fn := callee(st.pkg, x)
			if fn == nil {
				return true
			}
			switch {
			case fn.Name() == "Done" && isWaitGroup(fn):
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if k := exprKey(st.pkg, sel.X); k != "" && st.waitKeys[k] {
						ev.wgJoin = true
					}
				}
			case (fn.Name() == "Done" || fn.Name() == "Err") && isContext(fn):
				ev.ctxBound = true
			case nonterminating[fn.Name()] && isNetServe(fn):
				ev.finite = false
			}
		}
		return true
	})
	return ev
}

// boundedChannel reports whether receiving from e is bounded by a close
// the package performs, or by producer ownership (receive-only type).
func (st *state) boundedChannel(e ast.Expr) bool {
	tv, ok := st.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	if ch.Dir() == types.RecvOnly {
		return true
	}
	k := exprKey(st.pkg, e)
	return k != "" && st.closedKeys[k]
}

// --- classification helpers --------------------------------------------

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

func inParallelPkg(path string) bool {
	return taint.PathHasSegment(path, "parallel")
}

func isWaitGroup(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync" && recvNamed(fn) == "WaitGroup"
}

func isContext(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" {
		return true
	}
	// ctx.Done() resolves to the context.Context interface method; a
	// custom context implementing it counts the same way.
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return sig.Recv().Type().String() == "context.Context"
}

func isNetServe(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "net/http", "net/rpc":
		return true
	}
	return false
}

// recvNamed names the receiver's (possibly pointer-to) named type.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// shortFunc renders a callee as "pkgname.Recv.Name" for messages.
func shortFunc(fn *types.Func) string {
	name := fn.Name()
	if recv := recvNamed(fn); recv != "" {
		name = recv + "." + name
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// callee resolves the static callee of a call, if any.
func callee(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// exprKey names a channel/WaitGroup expression so the same logical object
// matches across functions: owner named type + selector path, a
// package-level variable, or a function-local fallback.
func exprKey(pkg *analysis.Package, e ast.Expr) string {
	var fields []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
					return joinKey(pn.Imported().Name()+"."+x.Sel.Name, fields)
				}
			}
			fields = append([]string{x.Sel.Name}, fields...)
			e = x.X
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			if obj == nil {
				return ""
			}
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return joinKey(obj.Pkg().Name()+"."+obj.Name(), fields)
			}
			if name := namedTypeName(obj.Type()); name != "" {
				return joinKey(name, fields)
			}
			return joinKey("local "+obj.Name(), fields)
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ""
			}
			e = x.X
		default:
			return ""
		}
	}
}

func joinKey(root string, fields []string) string {
	if len(fields) == 0 {
		return root
	}
	return root + "." + strings.Join(fields, ".")
}

// namedTypeName renders a (possibly pointer-to) named type as
// "pkgname.TypeName".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}
