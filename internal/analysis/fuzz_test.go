package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzDirectiveParse feeds arbitrary Go source through ParseDirectives and
// checks the parser's structural invariants: it never panics, every
// extracted directive carries a whitespace-trimmed name and reason, and the
// line a directive applies to is either its own line (trailing form) or the
// next one (standalone form). The directive grammar is the security
// boundary of the suppression mechanism — a parse that silently widened a
// directive's scope would let an escape hatch cover code it was never
// written for.
func FuzzDirectiveParse(f *testing.F) {
	seeds := []string{
		"package p\n",
		"package p\n\nvar x = 1 //yosolint:ignore test helper\n",
		"package p\n\n//yosolint:declassify protocol output step\nvar x = 1\n",
		"package p\n\ntype T struct {\n\tV int //yosolint:secret share payload\n}\n",
		"package p\n\n//yosolint:simulation\nvar x = 1\n",
		"package p\n\n//yosolint:unknown why not\nvar x = 1\n",
		"package p\n\n//yosolint:ignore\treason after tab\nvar x = 1\n",
		"package p\r\n\r\nvar x = 1 //yosolint:ignore crlf line endings\r\n",
		"package p\n\n/* block comment */ var x = 1 //yosolint:ignore after block\n",
		"package p\n\nvar x = 1 // yosolint:ignore space before keyword, not a directive\n",
		"package p\n\n//yosolint:ignore first\n//yosolint:declassify second\nvar x = 1\n",
		"package p\n\nvar x = 1 //yosolint:ignore trailing at EOF",
		"package p\n\n//yosolint:blocking mutex serializes the single connection\nvar x = 1\n",
		"package p\n\nvar x = 1 //yosolint:daemon debug endpoint lives for the process lifetime\n",
		"package p\n\ntype T struct{} //yosolint:wireok local snapshot, never posted\n",
		"package p\n\nvar x = 1 //yosolint:vartime reconstruction-side: the decoder learns the secrets anyway\n",
		"package p\n\n//yosolint:vartime dealer-side one-time keygen\nvar x = 1\n",
		"package p\n\nvar x = 1 //yosolint:owner caller wipes the sampled vector after use\n",
		"package p\n\n//yosolint:owner constructor hands the buffer to the session, wiped in Close\nvar x = 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil || file == nil {
			return
		}
		for _, d := range ParseDirectives(fset, file, src) {
			if d.Name != strings.TrimSpace(d.Name) {
				t.Fatalf("directive name %q not trimmed", d.Name)
			}
			if strings.ContainsAny(d.Name, " \t") {
				t.Fatalf("directive name %q contains whitespace", d.Name)
			}
			if d.Reason != strings.TrimSpace(d.Reason) {
				t.Fatalf("directive reason %q not trimmed", d.Reason)
			}
			if !d.Pos.IsValid() {
				t.Fatalf("directive %q has invalid position", d.Name)
			}
			commentLine := fset.Position(d.Pos).Line
			if d.Line != commentLine && d.Line != commentLine+1 {
				t.Fatalf("directive %q on line %d applies to line %d; must be the same or next line",
					d.Name, commentLine, d.Line)
			}
		}
	})
}
