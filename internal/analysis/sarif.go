package analysis

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 output for GitHub code scanning. The structures below are
// the subset of the spec the suite emits: one run, one driver carrying a
// rule per analyzer, one result per diagnostic. Suppressed findings are
// included as results carrying an inSource suppression with the
// directive's justification, so code scanning shows them as dismissed
// rather than open.

// SARIFSchemaURI and SARIFVersion identify the emitted format.
const (
	SARIFSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	SARIFVersion   = "2.1.0"
)

// SARIFLog is the top-level document.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one invocation of the suite.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool wraps the driver description.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver describes yosolint and its rule table.
type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule is one analyzer.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

// SARIFMessage is the spec's message object.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFResult is one diagnostic.
type SARIFResult struct {
	RuleID              string             `json:"ruleId"`
	RuleIndex           int                `json:"ruleIndex"`
	Level               string             `json:"level"`
	Message             SARIFMessage       `json:"message"`
	Locations           []SARIFLocation    `json:"locations"`
	PartialFingerprints map[string]string  `json:"partialFingerprints,omitempty"`
	Suppressions        []SARIFSuppression `json:"suppressions,omitempty"`
}

// SARIFLocation wraps a physical location.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation is a file/region pair.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

// SARIFArtifactLocation names the file, slash-separated and relative to
// the analysis root.
type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

// SARIFRegion is the 1-based position.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFSuppression records an in-source //yosolint: directive.
type SARIFSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// NewSARIF converts a diagnostic set into a SARIF 2.1.0 log. The rule
// table lists every analyzer in the suite (stable rule indices whether or
// not an analyzer fired); baseDir anchors the artifact URIs.
func NewSARIF(diags []Diagnostic, analyzers []*Analyzer, baseDir string) *SARIFLog {
	rules := make([]SARIFRule, 0, len(analyzers)+1)
	index := map[string]int{}
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, SARIFRule{ID: a.Name, ShortDescription: SARIFMessage{Text: a.Doc}})
	}
	// The framework itself reports directive-hygiene findings under the
	// pseudo-analyzer "yosolint"; give them a rule too.
	if _, ok := index[DirectiveAnalyzerName]; !ok {
		index[DirectiveAnalyzerName] = len(rules)
		rules = append(rules, SARIFRule{ID: DirectiveAnalyzerName, ShortDescription: SARIFMessage{Text: "//yosolint: directive hygiene"}})
	}

	results := make([]SARIFResult, 0, len(diags))
	for _, d := range diags {
		ri, ok := index[d.Analyzer]
		if !ok {
			ri = len(rules)
			index[d.Analyzer] = ri
			rules = append(rules, SARIFRule{ID: d.Analyzer, ShortDescription: SARIFMessage{Text: d.Analyzer}})
		}
		res := SARIFResult{
			RuleID:    d.Analyzer,
			RuleIndex: ri,
			Level:     "error",
			Message:   SARIFMessage{Text: d.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{URI: artifactURI(d.Pos.Filename, baseDir)},
					Region:           SARIFRegion{StartLine: max(d.Pos.Line, 1), StartColumn: d.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{
				"yosolintFingerprint/v1": Fingerprint(d, baseDir),
			},
		}
		if d.Suppressed {
			res.Suppressions = []SARIFSuppression{{Kind: "inSource", Justification: d.Justification}}
		}
		results = append(results, res)
	}
	sort.SliceStable(results, func(i, j int) bool {
		a, b := results[i], results[j]
		au, bu := a.Locations[0].PhysicalLocation.ArtifactLocation.URI, b.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if au != bu {
			return au < bu
		}
		if al, bl := a.Locations[0].PhysicalLocation.Region.StartLine, b.Locations[0].PhysicalLocation.Region.StartLine; al != bl {
			return al < bl
		}
		return a.RuleID < b.RuleID
	})

	return &SARIFLog{
		Schema:  SARIFSchemaURI,
		Version: SARIFVersion,
		Runs: []SARIFRun{{
			Tool:    SARIFTool{Driver: SARIFDriver{Name: "yosolint", Rules: rules}},
			Results: results,
		}},
	}
}

// artifactURI renders a filename as a slash-separated path relative to
// baseDir when it lies beneath it.
func artifactURI(name, baseDir string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return filepath.ToSlash(name)
}

// ValidateSARIF structurally checks a serialized log against the parts of
// the SARIF 2.1.0 schema GitHub code scanning requires: version string,
// runs with a named tool driver, results whose ruleId/ruleIndex resolve
// in the rule table, and locations with a uri and a 1-based startLine.
// It decodes into generic maps so it exercises the emitted bytes, not the
// Go structs.
func ValidateSARIF(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("sarif: not valid JSON: %v", err)
	}
	if v, _ := doc["version"].(string); v != SARIFVersion {
		return fmt.Errorf("sarif: version %q, want %q", v, SARIFVersion)
	}
	if s, _ := doc["$schema"].(string); s != "" && !strings.Contains(s, "sarif-schema-2.1.0") {
		return fmt.Errorf("sarif: $schema %q does not name the 2.1.0 schema", s)
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) == 0 {
		return fmt.Errorf("sarif: missing or empty runs array")
	}
	for ri, r := range runs {
		run, ok := r.(map[string]any)
		if !ok {
			return fmt.Errorf("sarif: runs[%d] is not an object", ri)
		}
		tool, _ := run["tool"].(map[string]any)
		driver, _ := tool["driver"].(map[string]any)
		if driver == nil {
			return fmt.Errorf("sarif: runs[%d] missing tool.driver", ri)
		}
		if name, _ := driver["name"].(string); name == "" {
			return fmt.Errorf("sarif: runs[%d] tool.driver.name is empty", ri)
		}
		ruleIDs := map[string]int{}
		if rules, ok := driver["rules"].([]any); ok {
			for i, rl := range rules {
				rule, ok := rl.(map[string]any)
				if !ok {
					return fmt.Errorf("sarif: runs[%d] rules[%d] is not an object", ri, i)
				}
				id, _ := rule["id"].(string)
				if id == "" {
					return fmt.Errorf("sarif: runs[%d] rules[%d] has no id", ri, i)
				}
				ruleIDs[id] = i
			}
		}
		results, ok := run["results"].([]any)
		if !ok {
			return fmt.Errorf("sarif: runs[%d] missing results array", ri)
		}
		for i, rr := range results {
			res, ok := rr.(map[string]any)
			if !ok {
				return fmt.Errorf("sarif: runs[%d] results[%d] is not an object", ri, i)
			}
			msg, _ := res["message"].(map[string]any)
			if text, _ := msg["text"].(string); text == "" {
				return fmt.Errorf("sarif: runs[%d] results[%d] has no message.text", ri, i)
			}
			id, _ := res["ruleId"].(string)
			want, known := ruleIDs[id]
			if !known {
				return fmt.Errorf("sarif: runs[%d] results[%d] ruleId %q not in rule table", ri, i, id)
			}
			if idx, ok := res["ruleIndex"].(float64); ok && int(idx) != want {
				return fmt.Errorf("sarif: runs[%d] results[%d] ruleIndex %d does not match rule %q at %d", ri, i, int(idx), id, want)
			}
			locs, ok := res["locations"].([]any)
			if !ok || len(locs) == 0 {
				return fmt.Errorf("sarif: runs[%d] results[%d] has no locations", ri, i)
			}
			loc, _ := locs[0].(map[string]any)
			phys, _ := loc["physicalLocation"].(map[string]any)
			art, _ := phys["artifactLocation"].(map[string]any)
			uri, _ := art["uri"].(string)
			if uri == "" {
				return fmt.Errorf("sarif: runs[%d] results[%d] has no artifactLocation.uri", ri, i)
			}
			if strings.Contains(uri, "\\") {
				return fmt.Errorf("sarif: runs[%d] results[%d] uri %q is not slash-separated", ri, i, uri)
			}
			region, _ := phys["region"].(map[string]any)
			if line, _ := region["startLine"].(float64); line < 1 {
				return fmt.Errorf("sarif: runs[%d] results[%d] startLine %v is not 1-based", ri, i, line)
			}
			if sups, ok := res["suppressions"].([]any); ok {
				for j, s := range sups {
					sup, _ := s.(map[string]any)
					if kind, _ := sup["kind"].(string); kind != "inSource" && kind != "external" {
						return fmt.Errorf("sarif: runs[%d] results[%d] suppressions[%d] kind %q invalid", ri, i, j, kind)
					}
				}
			}
		}
	}
	return nil
}
