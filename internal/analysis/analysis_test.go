package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

// TestLoadTypeChecks loads a real package of the module and verifies the
// loader produced full type information via export-data imports.
func TestLoadTypeChecks(t *testing.T) {
	pkgs, err := Load(LoadConfig{Dir: repoRoot(t)}, "./internal/sharing")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Name != "sharing" {
		t.Errorf("package name = %q, want sharing", pkg.Name)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("SharePacked") == nil {
		t.Error("type-checked scope is missing SharePacked")
	}
	if len(pkg.Info.Uses) == 0 {
		t.Error("no use information recorded")
	}
	// The sharing package's Share.Value field must resolve to the imported
	// field.Element named type, proving export data round-trips types.
	share := pkg.Types.Scope().Lookup("Share")
	if share == nil {
		t.Fatal("Share type missing")
	}
	if !strings.Contains(share.Type().Underlying().String(), "field.Element") {
		t.Errorf("Share underlying = %s, want a field.Element member", share.Type().Underlying())
	}
}

// TestLoadWithTests merges in-package _test.go files when requested.
func TestLoadWithTests(t *testing.T) {
	root := repoRoot(t)
	with, err := Load(LoadConfig{Dir: root, Tests: true}, "./internal/field")
	if err != nil {
		t.Fatal(err)
	}
	without, err := Load(LoadConfig{Dir: root}, "./internal/field")
	if err != nil {
		t.Fatal(err)
	}
	if len(with[0].Files) <= len(without[0].Files) {
		t.Errorf("Tests:true loaded %d files, want more than the %d non-test files",
			len(with[0].Files), len(without[0].Files))
	}
}

// TestParseDirectives covers trailing vs standalone directive placement.
func TestParseDirectives(t *testing.T) {
	src := []byte(`package p

import "math/rand" //yosolint:simulation trailing applies to its own line

//yosolint:ignore standalone applies to the next line
var x = rand.Int()

//yosolint:simulation
var missingReason = 0
`)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds := ParseDirectives(fset, f, src)
	if len(ds) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(ds), ds)
	}
	if ds[0].Name != "simulation" || ds[0].Line != 3 || ds[0].Reason == "" {
		t.Errorf("trailing directive parsed as %+v, want simulation on line 3", ds[0])
	}
	if ds[1].Name != "ignore" || ds[1].Line != 6 {
		t.Errorf("standalone directive parsed as %+v, want ignore applying to line 6", ds[1])
	}
	if ds[2].Reason != "" {
		t.Errorf("directive without justification parsed reason %q, want empty", ds[2].Reason)
	}
}

// TestDirectiveValidation verifies malformed directives become findings.
func TestDirectiveValidation(t *testing.T) {
	src := []byte(`package p

//yosolint:simulation
var a = 1

//yosolint:frobnicate because reasons
var b = 2
`)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{
		Fset:    fset,
		Files:   []*ast.File{f},
		Sources: map[string][]byte{"p.go": src},
	}
	_, diags := indexDirectives(pkg, nil)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (missing reason + unknown name): %+v", len(diags), diags)
	}
	var sawReason, sawUnknown bool
	for _, d := range diags {
		if strings.Contains(d.Message, "requires a justifying comment") {
			sawReason = true
		}
		if strings.Contains(d.Message, "unknown //yosolint: directive") {
			sawUnknown = true
		}
	}
	if !sawReason || !sawUnknown {
		t.Errorf("diagnostics missing expected messages: %+v", diags)
	}
}
