package cryptorand_test

import (
	"testing"

	"yosompc/internal/analysis/analysistest"
	"yosompc/internal/analysis/cryptorand"
)

func TestCryptoRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), cryptorand.Analyzer, "sharing")
}
