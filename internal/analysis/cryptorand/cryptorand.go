// Package cryptorand forbids math/rand in the crypto-bearing packages of
// the repository. Secret randomness — sharing polynomials, key material,
// nonces, encryption randomness — must come from crypto/rand; a PRNG
// seeded from a predictable source silently voids every secrecy theorem
// the protocol relies on (the exact footgun lattigo and the MASCOT
// writeup warn about).
//
// The check flags the import of math/rand (and math/rand/v2) and every
// use of the imported package in a protected package's non-test files.
// Deterministic simulation uses — adversary corruption sampling,
// reproducible benchmark inputs — are allowed when the line carries a
// //yosolint:simulation directive with a justification.
package cryptorand

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"yosompc/internal/analysis"
)

// Analyzer is the cryptorand analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "cryptorand",
	Doc:        "forbid math/rand in crypto-bearing packages; secret randomness must use crypto/rand",
	Directives: []string{"simulation", "ignore"},
	Run:        run,
}

// protected names the crypto-bearing package path segments. A package is
// checked when any segment of its import path matches.
var protected = map[string]bool{
	"core":     true,
	"sharing":  true,
	"pke":      true,
	"paillier": true,
	"tte":      true,
	"nizk":     true,
	"field":    true,
	"yoso":     true,
}

// mathRand matches the forbidden import paths.
var mathRand = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func cryptoBearing(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if protected[seg] {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !cryptoBearing(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			// Tests may use deterministic randomness freely.
			continue
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || !mathRand[path] {
				continue
			}
			pass.Reportf(spec.Pos(), "crypto-bearing package %s imports %s; use crypto/rand (or annotate //yosolint:simulation)", pass.Pkg.Path(), path)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || !mathRand[pkgName.Imported().Path()] {
				return true
			}
			pass.Reportf(sel.Pos(), "use of %s.%s in crypto-bearing package; use crypto/rand (or annotate //yosolint:simulation)", pkgName.Imported().Path(), sel.Sel.Name)
			return true
		})
	}
	return nil
}
