package sharing

import "math/rand"

// Test files may use deterministic randomness freely: no diagnostics here.
func helperForTests() int { return rand.Intn(4) }
