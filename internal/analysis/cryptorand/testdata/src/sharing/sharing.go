// Package sharing is a cryptorand fixture: its import path carries the
// crypto-bearing segment "sharing", so math/rand is forbidden outside
// test files and //yosolint:simulation-annotated lines.
package sharing

import (
	crand "crypto/rand"
	"math/rand" // want `crypto-bearing package .* imports math/rand`
)

// SecretByte draws secret randomness the legal way.
func SecretByte() (byte, error) {
	var b [1]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// BadNonce draws protocol randomness from a seeded PRNG.
func BadNonce() int64 {
	return rand.Int63() // want `use of math/rand\.Int63 in crypto-bearing package`
}

// SimulatedCorruption is legal: the line carries a justified directive.
func SimulatedCorruption(n int) []int {
	rng := rand.New(rand.NewSource(1)) //yosolint:simulation fixture models adversarial corruption sampling
	return rng.Perm(n)
}

//yosolint:simulation a standalone directive covers the following line
func SimulatedCoin() int64 { return rand.Int63() }
