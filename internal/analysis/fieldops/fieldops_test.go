package fieldops_test

import (
	"testing"

	"yosompc/internal/analysis/analysistest"
	"yosompc/internal/analysis/fieldops"
)

func TestFieldOps(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), fieldops.Analyzer, "fieldops")
}
