// Package fieldops flags raw arithmetic operators applied to field.Element
// values outside internal/field. Element's underlying type is uint64, so
// `a + b` compiles — and silently skips the modular reduction, producing a
// value outside [0, p) that corrupts every downstream interpolation. All
// arithmetic must go through the reduction-preserving API: field.Element's
// Add, Sub, Mul, Div and friends.
package fieldops

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"yosompc/internal/analysis"
)

// Analyzer is the fieldops analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "fieldops",
	Doc:        "forbid raw +,-,*,/,% on field.Element outside internal/field; use the reduction-preserving API",
	Directives: []string{"ignore"},
	Run:        run,
}

// method names the Element API replacement for each raw operator.
var method = map[token.Token]string{
	token.ADD: "Add",
	token.SUB: "Sub",
	token.MUL: "Mul",
	token.QUO: "Div",
	token.REM: "field.New to reduce",

	token.ADD_ASSIGN: "Add",
	token.SUB_ASSIGN: "Sub",
	token.MUL_ASSIGN: "Mul",
	token.QUO_ASSIGN: "Div",
	token.REM_ASSIGN: "field.New to reduce",
}

func run(pass *analysis.Pass) error {
	if exempt(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if fix, ok := method[n.Op]; ok && (isElement(pass, n.X) || isElement(pass, n.Y)) {
					pass.Reportf(n.OpPos, "raw %s on field.Element skips modular reduction; use %s", n.Op, fix)
				}
			case *ast.AssignStmt:
				if fix, ok := method[n.Tok]; ok && len(n.Lhs) == 1 && (isElement(pass, n.Lhs[0]) || isElement(pass, n.Rhs[0])) {
					pass.Reportf(n.TokPos, "raw %s on field.Element skips modular reduction; use %s", n.Tok, fix)
				}
			case *ast.IncDecStmt:
				if isElement(pass, n.X) {
					pass.Reportf(n.TokPos, "raw %s on field.Element skips modular reduction; use Add/Sub", n.Tok)
				}
			}
			return true
		})
	}
	return nil
}

// exempt reports whether path is the field package itself, the only place
// allowed to manipulate raw representations.
func exempt(path string) bool {
	return path == "field" || path == "field_test" || strings.HasSuffix(path, "/internal/field") || strings.HasSuffix(path, "/internal/field_test")
}

// isElement reports whether the expression's type is the named type
// field.Element.
func isElement(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Element" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "field" || strings.HasSuffix(p, "/internal/field")
}
