// Package fieldops is a fieldops fixture: raw operators on field.Element
// outside internal/field must be flagged; the method API and raw ops on
// ordinary integers stay legal.
package fieldops

import "yosompc/internal/field"

// Bad applies raw operators that silently skip modular reduction.
func Bad(a, b field.Element) field.Element {
	c := a + b // want `raw \+ on field.Element skips modular reduction; use Add`
	c = c * b  // want `raw \* on field.Element skips modular reduction; use Mul`
	c -= a     // want `raw -= on field.Element skips modular reduction; use Sub`
	d := a / b // want `raw / on field.Element skips modular reduction; use Div`
	_ = a % b  // want `raw % on field.Element skips modular reduction`
	c++        // want `raw \+\+ on field.Element skips modular reduction`
	return c.Add(d)
}

// Good uses the reduction-preserving API.
func Good(a, b field.Element) field.Element {
	return a.Add(b).Mul(b.Sub(a))
}

// Unrelated arithmetic on plain integers is untouched.
func Unrelated(x, y uint64) uint64 { return x*y + y%3 }

// Raw comparison operators stay legal: Element is canonical, == is exact.
func Equal(a, b field.Element) bool { return a == b }
