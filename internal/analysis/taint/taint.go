// Package taint is the interprocedural dataflow layer of the analysis
// framework: a flow-insensitive value graph per function (built over the
// CFG-reachable statements from internal/analysis/cfg), combined with
// bottom-up call-graph summaries so taint crosses function and package
// boundaries without whole-program iteration.
//
// The engine is configured with a set of secret named types and struct
// fields (the sources), a sink classifier over resolved callees, and a
// sanitizer predicate (encryption, hashing, zero-knowledge proving). It
// consumes packages in dependency order — dependencies first, as
// `go list -deps` emits them — and for every function computes a summary:
// which results carry taint (always, or conditionally on which
// parameters), which parameters flow into a sink inside the callee, and
// which reference parameters are written with tainted data. Call sites
// instantiate the callee's summary with the concrete argument taint, so a
// secret share passed to a helper that eventually logs it is reported at
// the call, interprocedurally.
//
// Taint values form a small monotone lattice — a definite bit plus a set
// of "tainted if parameter i is tainted" bits — so the per-package
// fixpoint terminates. See docs/STATIC_ANALYSIS.md for the approximations
// (field-insensitive writes, interface dispatch, reflection).
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/cfg"
)

// Sink describes why a call argument position is a disclosure point.
type Sink struct {
	// Kind is a short category for messages: "log", "error", "post", …
	Kind string
	// Args are the call-argument indices that disclose their value; nil
	// means every argument.
	Args []int
	// Recv additionally checks the receiver expression of a method-call
	// sink (big.Int's `z.Cmp(x)` discloses timing about z as much as x;
	// the receiver is not part of Args).
	Recv bool
}

// Config parameterizes an Engine.
type Config struct {
	// SecretTypes are canonical keys ("pkgpath.TypeName") of named types
	// whose values are secret material.
	SecretTypes map[string]bool
	// SecretFields are canonical keys ("pkgpath.TypeName.FieldName") of
	// struct fields whose values are secret even though their type is
	// not (e.g. the field.Element payload of a Share).
	SecretFields map[string]bool
	// Sinks classifies a resolved callee at one call site as a
	// disclosure point; the call and package give access to argument
	// syntax and type information (e.g. to treat fmt.Fprintf as a sink
	// only when writing to os.Stdout/os.Stderr). May be nil (no sinks —
	// pure propagation).
	Sinks func(pkg *analysis.Package, call *ast.CallExpr, fn *types.Func) *Sink
	// Sanitizer reports callees whose results are clean regardless of
	// argument taint: encryption, commitment hashing, ZK proving. May be
	// nil.
	Sanitizer func(fn *types.Func) bool
	// ControlSink, when non-nil, classifies a control expression — an
	// if/for condition, switch tag, or case expression, which the CFG
	// records as a bare expression node — as an execution-trace sink. It
	// returns the subexpressions whose taint constitutes the leak (letting
	// the policy prune nil-checks and length tests) and the sink kind;
	// returning no expressions ignores the control expression. Taint that
	// is conditional on the enclosing function's parameters becomes a sink
	// fact in its summary, so a helper that branches on its argument
	// reports at every call site that passes a secret.
	ControlSink func(pkg *analysis.Package, cond ast.Expr) ([]ast.Expr, string)
	// IndexSink likewise classifies an index expression (e[i] over a
	// slice, array, map or string) as a memory-trace sink. The policy
	// returns the subexpressions to check (typically the index operand)
	// and the sink kind.
	IndexSink func(pkg *analysis.Package, ix *ast.IndexExpr) ([]ast.Expr, string)
}

// Leak is one concrete secret-to-sink flow.
type Leak struct {
	// Pos locates the sink call (or the call into the helper that
	// sinks).
	Pos token.Pos
	// Sink is the sink's kind ("log", "error", "post", "branch", …).
	Sink string
	// Callee is the full name of the called function; empty for non-call
	// trace sinks (branch conditions, index expressions).
	Callee string
	// Expr renders the tainted argument expression.
	Expr string
	// Via names the helper whose summary carried the taint to the sink,
	// empty for direct sinks.
	Via string
}

// taintVal is the lattice value: definitely tainted, and/or tainted
// whenever one of the marked parameters (bit i = param i, receiver first)
// is tainted at the call site.
type taintVal struct {
	always bool
	params uint64
}

func (v taintVal) union(w taintVal) taintVal {
	return taintVal{v.always || w.always, v.params | w.params}
}

func (v taintVal) zero() bool { return !v.always && v.params == 0 }

// summary is one function's interprocedural behavior.
type summary struct {
	// results[i] is the taint of result i.
	results []taintVal
	// sinks[i] is the sink kind parameter i reaches inside the callee
	// (transitively), "" when it reaches none.
	sinks map[int]string
	// writes[i] is the taint written through reference parameter i
	// (slices, maps, pointers) beyond its own incoming taint.
	writes map[int]taintVal
	// nparams is the parameter count including any receiver.
	nparams int
}

// Engine accumulates summaries and leaks across packages.
type Engine struct {
	cfg       Config
	secretsT  map[string]bool
	secretsF  map[string]bool
	summaries map[string]*summary
	// memoDirect caches isDirectSecret, memoCarry caches carriesSecret:
	// 0 unknown/in-progress, 1 secret, -1 clean.
	memoDirect map[types.Type]int8
	memoCarry  map[types.Type]int8
	leaks      []Leak
	leakSeen   map[leakKey]bool
}

type leakKey struct {
	pos  token.Pos
	sink string
	expr string
}

// NewEngine returns an Engine for one load's worth of packages.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		cfg:        cfg,
		secretsT:   map[string]bool{},
		secretsF:   map[string]bool{},
		summaries:  map[string]*summary{},
		memoDirect: map[types.Type]int8{},
		memoCarry:  map[types.Type]int8{},
		leakSeen:   map[leakKey]bool{},
	}
	for k := range cfg.SecretTypes {
		e.secretsT[k] = true
	}
	for k := range cfg.SecretFields {
		e.secretsF[k] = true
	}
	return e
}

// MarkType adds a named type (key "pkgpath.TypeName") to the secret set.
func (e *Engine) MarkType(key string) {
	e.secretsT[key] = true
	e.invalidate()
}

// MarkField adds a struct field (key "pkgpath.TypeName.FieldName") to the
// secret set.
func (e *Engine) MarkField(key string) {
	e.secretsF[key] = true
	e.invalidate()
}

func (e *Engine) invalidate() {
	e.memoDirect = map[types.Type]int8{}
	e.memoCarry = map[types.Type]int8{}
}

// AddPackage analyzes one package: computes summaries for its functions
// and records the concrete leaks found in its bodies. Packages must be
// added dependencies-first; the leaks found in this package are returned
// (and also retained in the engine).
func (e *Engine) AddPackage(pkg *analysis.Package) []Leak {
	before := len(e.leaks)
	fns := collectFuncs(pkg)
	// Intra-package fixpoint: function bodies are re-walked until no
	// object taint, summary entry, or leak changes. The lattice is
	// finite and unions are monotone, so this terminates; the bound is a
	// backstop against bugs, not a semantic limit.
	st := &pkgState{
		engine: e,
		pkg:    pkg,
		obj:    map[types.Object]taintVal{},
	}
	for iter := 0; iter < 32; iter++ {
		st.changed = false
		for _, fn := range fns {
			st.analyzeFunc(fn)
		}
		if !st.changed {
			break
		}
	}
	return e.leaks[before:]
}

// Leaks returns every leak recorded so far, in discovery order.
func (e *Engine) Leaks() []Leak { return e.leaks }

// IsSecretType reports whether values of t ARE secret material under the
// engine's source configuration: a marked named type, or a container of
// one. Exported for sibling analyzers (zeroize, sidechannel) that reuse
// the secret-source model for their own policies.
func (e *Engine) IsSecretType(t types.Type) bool { return e.isDirectSecret(t) }

// CarriesSecret reports whether formatting or serializing a whole value
// of t can expose secret material: direct secrets plus structs with a
// secret (or marked) field, transitively.
func (e *Engine) CarriesSecret(t types.Type) bool { return e.carriesSecret(t) }

// TypeKey returns the canonical key of a named type or alias object.
func TypeKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// FuncKey returns the canonical key of a function or method: pkgpath.Name
// for functions, pkgpath.Recv.Name for methods.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return fn.Pkg().Path() + "." + name + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isDirectSecret reports whether values of t ARE secret material: a
// marked named type, or a container (pointer, slice, array, channel, map)
// of one. Struct types are direct secrets only when marked themselves —
// a struct that merely holds a secret field (the protocol driver's run
// state, an envelope) is "carrying", which matters at sinks but must not
// taint every use of the value (its public fields stay public).
func (e *Engine) isDirectSecret(t types.Type) bool {
	return e.classify(t, e.memoDirect, false)
}

// carriesSecret reports whether formatting/serializing a whole value of t
// can expose secret material: direct secrets plus structs with a secret
// (or marked) field, transitively.
func (e *Engine) carriesSecret(t types.Type) bool {
	return e.classify(t, e.memoCarry, true)
}

func (e *Engine) classify(t types.Type, memo map[types.Type]int8, structs bool) bool {
	if t == nil {
		return false
	}
	if v, ok := memo[t]; ok {
		return v == 1
	}
	memo[t] = 0 // in-progress: cycles resolve to clean
	secret := e.classifyUncached(t, memo, structs)
	if secret {
		memo[t] = 1
	} else {
		memo[t] = -1
	}
	return secret
}

func (e *Engine) classifyUncached(t types.Type, memo map[types.Type]int8, structs bool) bool {
	switch t := t.(type) {
	case *types.Named:
		if e.secretsT[TypeKey(t.Obj())] {
			return true
		}
		if s, ok := t.Underlying().(*types.Struct); ok {
			return structs && e.secretStruct(t.Obj(), s, memo)
		}
		return e.classify(t.Underlying(), memo, structs)
	case *types.Alias:
		return e.classify(types.Unalias(t), memo, structs)
	case *types.Pointer:
		return e.classify(t.Elem(), memo, structs)
	case *types.Slice:
		return e.classify(t.Elem(), memo, structs)
	case *types.Array:
		return e.classify(t.Elem(), memo, structs)
	case *types.Chan:
		return e.classify(t.Elem(), memo, structs)
	case *types.Map:
		return e.classify(t.Key(), memo, structs) || e.classify(t.Elem(), memo, structs)
	case *types.Struct:
		return structs && e.secretStruct(nil, t, memo)
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if e.classify(t.At(i).Type(), memo, structs) {
				return true
			}
		}
	}
	return false
}

func (e *Engine) secretStruct(named types.Object, s *types.Struct, memo map[types.Type]int8) bool {
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if named != nil && e.secretsF[TypeKey(named)+"."+f.Name()] {
			return true
		}
		if e.classify(f.Type(), memo, true) {
			return true
		}
	}
	return false
}

// typeHasMarkedField reports whether the named struct behind t has any
// //yosolint:secret-marked field — i.e. whether its annotation is
// field-granular (unmarked fields are then public by declaration).
func (e *Engine) typeHasMarkedField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	s, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if e.secretsF[TypeKey(n.Obj())+"."+s.Field(i).Name()] {
			return true
		}
	}
	return false
}

// isSecretField reports whether selecting field f of the (named) type of
// base yields secret material because the field itself is marked.
func (e *Engine) isSecretField(baseType types.Type, f *types.Var) bool {
	t := baseType
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return e.secretsF[TypeKey(n.Obj())+"."+f.Name()]
}

// --- per-package analysis ---------------------------------------------

// funcInfo pairs a declaration with its types object.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func collectFuncs(pkg *analysis.Package) []funcInfo {
	var out []funcInfo
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, funcInfo{fd, obj})
		}
	}
	return out
}

// pkgState is the per-package fixpoint state: object taint shared across
// the package's functions (covers package-level variables and closures).
type pkgState struct {
	engine  *Engine
	pkg     *analysis.Package
	obj     map[types.Object]taintVal
	changed bool
}

func (st *pkgState) setObj(o types.Object, v taintVal) {
	if o == nil || v.zero() {
		return
	}
	old := st.obj[o]
	merged := old.union(v)
	if merged != old {
		st.obj[o] = merged
		st.changed = true
	}
}

// fnScope is the view of one function under analysis.
type fnScope struct {
	st     *pkgState
	fn     *types.Func
	key    string
	params map[types.Object]int // param object -> bit index
	sum    *summary
}

func (st *pkgState) analyzeFunc(fn funcInfo) {
	key := FuncKey(fn.obj)
	sum := st.engine.summaries[key]
	sig := fn.obj.Type().(*types.Signature)
	nparams := sig.Params().Len()
	if sig.Recv() != nil {
		nparams++
	}
	if sum == nil {
		sum = &summary{
			results: make([]taintVal, sig.Results().Len()),
			sinks:   map[int]string{},
			writes:  map[int]taintVal{},
			nparams: nparams,
		}
		st.engine.summaries[key] = sum
	}
	sc := &fnScope{st: st, fn: fn.obj, key: key, params: map[types.Object]int{}, sum: sum}
	bit := 0
	if recv := sig.Recv(); recv != nil {
		sc.params[recv] = bit
		bit++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		sc.params[sig.Params().At(i)] = bit
		bit++
	}
	sc.walkBody(fn.decl.Body, sig)
}

// walkBody runs the value-graph pass over the CFG-reachable statements of
// one body (and, recursively, of the function literals it contains).
func (sc *fnScope) walkBody(body *ast.BlockStmt, sig *types.Signature) {
	g := cfg.New(body)
	for _, blk := range g.Reachable() {
		for _, n := range blk.Nodes {
			sc.node(n, sig)
		}
	}
}

// node processes one CFG node: statement-level edges plus a walk of the
// contained expressions for calls (sinks, mutation) and closures.
func (sc *fnScope) node(n ast.Node, sig *types.Signature) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		sc.assign(n.Lhs, n.Rhs)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					sc.assign(lhs, vs.Values)
				}
			}
		}
	case *ast.RangeStmt:
		src := sc.evalFlow(n.X)
		switch typeOf(sc.st.pkg, n.X).Underlying().(type) {
		case *types.Map, *types.Chan:
			sc.assignTo(n.Key, src)
		}
		sc.assignTo(n.Value, src)
	case *ast.SendStmt:
		var elem types.Type
		if ch, ok := typeOf(sc.st.pkg, n.Chan).Underlying().(*types.Chan); ok {
			elem = ch.Elem()
		}
		sc.writeTo(n.Chan, sc.bake(sc.evalFlow(n.Value), typeOf(sc.st.pkg, n.Value), elem))
	case *ast.ReturnStmt:
		if len(n.Results) == 1 && sig.Results().Len() > 1 {
			if call, ok := n.Results[0].(*ast.CallExpr); ok {
				for i, v := range sc.call(call) {
					if i < len(sc.sum.results) {
						sc.mergeResult(i, sc.bake(v, tupleAt(typeOf(sc.st.pkg, call), i), sig.Results().At(i).Type()))
					}
				}
				break
			}
		}
		for i, r := range n.Results {
			if i < len(sc.sum.results) {
				sc.mergeResult(i, sc.bake(sc.evalFlow(r), typeOf(sc.st.pkg, r), sig.Results().At(i).Type()))
			}
		}
	}
	// Control expressions reach the CFG as bare expression nodes; give the
	// policy a chance to classify them as execution-trace sinks.
	if e, ok := n.(ast.Expr); ok && sc.st.engine.cfg.ControlSink != nil {
		if exprs, kind := sc.st.engine.cfg.ControlSink(sc.st.pkg, e); kind != "" {
			for _, x := range exprs {
				sc.traceSink(x, sc.eval(x), kind)
			}
		}
	}
	// Named results assigned through their identifiers.
	if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 0 {
		for i := 0; i < sig.Results().Len(); i++ {
			if v, ok := sc.st.obj[sig.Results().At(i)]; ok {
				sc.mergeResult(i, v)
			}
		}
	}
	// Expression walk: every call gets sink/mutation treatment exactly
	// once (here), and closures get their own CFG walk.
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			sc.call(x)
		case *ast.IndexExpr:
			if sc.st.engine.cfg.IndexSink != nil {
				if exprs, kind := sc.st.engine.cfg.IndexSink(sc.st.pkg, x); kind != "" {
					for _, sub := range exprs {
						sc.traceSink(sub, sc.eval(sub), kind)
					}
				}
			}
		case *ast.FuncLit:
			lit := &fnScope{st: sc.st, fn: sc.fn, key: sc.key, params: sc.params, sum: sc.sum}
			// The closure's own returns do not feed the enclosing
			// function's results: give it a detached summary.
			litSig, _ := typeOf(sc.st.pkg, x).(*types.Signature)
			if litSig == nil {
				return false
			}
			lit.sum = &summary{results: make([]taintVal, litSig.Results().Len()), sinks: sc.sum.sinks, writes: sc.sum.writes, nparams: sc.sum.nparams}
			lit.walkBody(x.Body, litSig)
			return false
		}
		return true
	})
}

func (sc *fnScope) mergeResult(i int, v taintVal) {
	old := sc.sum.results[i]
	merged := old.union(v)
	if merged != old {
		sc.sum.results[i] = merged
		sc.st.changed = true
	}
}

func (sc *fnScope) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value: a call, a map index, a receive, or a type
		// assertion. Calls get per-result precision; the rest apply the
		// single source value to every target.
		if call, ok := rhs[0].(*ast.CallExpr); ok {
			res := sc.call(call)
			rt := typeOf(sc.st.pkg, call)
			for i, l := range lhs {
				if i < len(res) {
					sc.store(l, res[i], tupleAt(rt, i))
				}
			}
			return
		}
		// Each target gets its own element of the recorded tuple type:
		// the comma-ok bool of a secret-map lookup carries the lookup's
		// flow taint but not the element type's secrecy — presence is not
		// the value.
		v := sc.evalFlow(rhs[0])
		rt := typeOf(sc.st.pkg, rhs[0])
		for i, l := range lhs {
			sc.store(l, v, tupleAt(rt, i))
		}
		return
	}
	for i := range lhs {
		if i < len(rhs) {
			sc.store(lhs[i], sc.evalFlow(rhs[i]), typeOf(sc.st.pkg, rhs[i]))
		}
	}
}

// store routes a value into an assignment target, first baking in the
// source's type-based secrecy when the target's type erases it. Variables
// hold only flow taint: a Share-typed local is not itself "tainted" — its
// type speaks at every use — so projecting its public Index stays clean.
// But assigning a secret-typed value into a wider type (any, interface)
// loses that type information, so the secrecy is baked into the stored
// flow value instead.
func (sc *fnScope) store(target ast.Expr, v taintVal, rhsType types.Type) {
	sc.assignTo(target, sc.bake(v, rhsType, typeOf(sc.st.pkg, target)))
}

// bake adds the definite-taint bit when a direct-secret-typed value lands
// in a location whose static type is not itself direct-secret.
func (sc *fnScope) bake(v taintVal, rhsType, lhsType types.Type) taintVal {
	if rhsType != nil && sc.st.engine.isDirectSecret(rhsType) && !sc.st.engine.isDirectSecret(lhsType) {
		v.always = true
	}
	return v
}

// assignTo routes a value into an assignment target. Writes through a
// selector or index taint the base object (field-insensitively).
func (sc *fnScope) assignTo(target ast.Expr, v taintVal) {
	if target == nil || v.zero() {
		return
	}
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		if o := objOf(sc.st.pkg, t); o != nil {
			sc.setObjOrParamWrite(o, v)
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		sc.writeTo(t, v)
	}
}

// writeTo taints the base object behind a write target expression.
func (sc *fnScope) writeTo(target ast.Expr, v taintVal) {
	if v.zero() {
		return
	}
	if o := baseObject(sc.st.pkg, target); o != nil {
		sc.setObjOrParamWrite(o, v)
	}
}

// setObjOrParamWrite taints an object; writes into reference parameters
// are additionally recorded in the summary so call sites can taint the
// caller's argument.
func (sc *fnScope) setObjOrParamWrite(o types.Object, v taintVal) {
	sc.st.setObj(o, v)
	if bit, ok := sc.params[o]; ok && referenceType(o.Type()) {
		old := sc.sum.writes[bit]
		merged := old.union(v)
		if merged != old {
			sc.sum.writes[bit] = merged
			sc.st.changed = true
		}
	}
}

// eval computes the taint of an expression, including the contribution of
// its own type (a value of direct secret type is always tainted).
func (sc *fnScope) eval(e ast.Expr) taintVal {
	if e == nil {
		return taintVal{}
	}
	v := sc.evalFlow(e)
	if sc.st.engine.isDirectSecret(typeOf(sc.st.pkg, e)) {
		v.always = true
	}
	return v
}

// evalFlow computes the dataflow component of an expression's taint,
// without the expression's own type-based contribution. Selecting a
// public field (share.Index) from a value of secret type must stay clean;
// only the flow through the graph, marked fields, and secret-typed
// subexpressions propagate.
func (sc *fnScope) evalFlow(e ast.Expr) taintVal {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return sc.identTaint(e)
	case *ast.SelectorExpr:
		// Qualified package identifier?
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := sc.st.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return sc.identTaint(e.Sel)
			}
		}
		if sel, ok := sc.st.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if f, ok := sel.Obj().(*types.Var); ok {
				baseT := typeOf(sc.st.pkg, e.X)
				if sc.st.engine.isSecretField(baseT, f) {
					return taintVal{always: true}
				}
				if sc.st.engine.isDirectSecret(f.Type()) {
					return taintVal{always: true}
				}
				if sc.st.engine.isDirectSecret(baseT) {
					// Selecting from a marked struct type: with
					// field-granular marks, unmarked fields are public by
					// declaration (Share.Index); with a whole-type mark
					// (paillier.PrivateKey) every field is secret.
					if sc.st.engine.typeHasMarkedField(baseT) {
						return taintVal{}
					}
					return taintVal{always: true}
				}
				if sc.st.engine.carriesSecret(baseT) {
					// The base struct carries secrets in specific other
					// fields (caught by their own types/marks); its flow
					// taint is field-insensitive, so selecting this
					// public-typed field stays clean.
					return taintVal{}
				}
			}
		}
		return sc.evalFlow(e.X)
	case *ast.IndexExpr:
		return sc.evalFlow(e.X)
	case *ast.SliceExpr:
		return sc.evalFlow(e.X)
	case *ast.StarExpr:
		return sc.evalFlow(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return sc.evalFlow(e.X)
		}
		return sc.eval(e.X)
	case *ast.BinaryExpr:
		return sc.eval(e.X).union(sc.eval(e.Y))
	case *ast.CallExpr:
		res := sc.call(e)
		var v taintVal
		for _, r := range res {
			v = v.union(r)
		}
		return v
	case *ast.CompositeLit:
		var v taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			v = v.union(sc.eval(el))
		}
		return v
	case *ast.TypeAssertExpr:
		v := sc.eval(e.X)
		// Narrowing drops the whole-value taint when the target type
		// re-declares the secrecy on its own terms: asserting a marked
		// interface (tte.SubShare) down to its concrete struct moves the
		// authority from the interface mark to the struct's marked value
		// fields — or to nothing, when the concrete type holds no secret
		// material (a simulation stub of indices and sizes). Without this
		// the interface taint sticks to the concrete value's public
		// fields field-insensitively.
		if t := typeOf(sc.st.pkg, e); t != nil && !sc.st.engine.isDirectSecret(t) {
			xt := typeOf(sc.st.pkg, e.X)
			if sc.st.engine.carriesSecret(t) ||
				(xt != nil && sc.st.engine.isDirectSecret(xt)) {
				return taintVal{}
			}
		}
		return v
	case *ast.FuncLit:
		return taintVal{}
	}
	return taintVal{}
}

func (sc *fnScope) identTaint(id *ast.Ident) taintVal {
	o := objOf(sc.st.pkg, id)
	if o == nil {
		return taintVal{}
	}
	v := sc.st.obj[o]
	if bit, ok := sc.params[o]; ok {
		v = v.union(taintVal{params: paramBit(bit)})
	}
	return v
}

func paramBit(i int) uint64 {
	if i > 63 {
		i = 63
	}
	return uint64(1) << uint(i)
}

// call processes a call expression: sink checks, summary instantiation,
// mutation-through-reference effects. It returns the taint of each
// result. Conversions and builtins are handled inline.
func (sc *fnScope) call(call *ast.CallExpr) []taintVal {
	pkg := sc.st.pkg
	// Type conversion: T(x) propagates x.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []taintVal{sc.eval(call.Args[0])}
		}
		return nil
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			return sc.builtin(b.Name(), call)
		}
	}
	fn := calleeFunc(pkg, call)
	args := callArgs(pkg, call, fn)

	// Sink check: every listed argument position with concrete taint is
	// a leak; conditional taint becomes a sink fact about the enclosing
	// function's parameters. A sink consumes what it receives: the leak
	// is accounted exactly once, at the sink, so the call's results (the
	// error fmt.Errorf built, a board sequence number) come back clean
	// rather than re-reporting at every downstream use of the value.
	if fn != nil && sc.st.engine.cfg.Sinks != nil {
		if s := sc.st.engine.cfg.Sinks(pkg, call, fn); s != nil {
			idx := s.Args
			if idx == nil {
				idx = make([]int, len(call.Args))
				for i := range idx {
					idx[i] = i
				}
			}
			for _, i := range idx {
				if i < 0 || i >= len(call.Args) {
					continue
				}
				sc.sinkArg(call.Args[i], sc.eval(call.Args[i]), s.Kind, fn, "")
			}
			if s.Recv {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					sc.sinkArg(sel.X, sc.eval(sel.X), s.Kind, fn, "")
				}
			}
			return make([]taintVal, resultCount(fn))
		}
	}

	// A sanitized call (Encrypt, a hash, a ZK prover) still runs its
	// summary — a leak on the callee's error path must surface — but its
	// results come back clean.
	sanitized := fn != nil && sc.st.engine.cfg.Sanitizer != nil && sc.st.engine.cfg.Sanitizer(fn)

	if fn != nil {
		if sum, ok := sc.st.engine.summaries[FuncKey(fn)]; ok {
			res := sc.applySummary(call, fn, sum, args)
			if sanitized {
				return make([]taintVal, len(res))
			}
			return res
		}
	}
	if sanitized {
		return make([]taintVal, resultCount(fn))
	}

	// An in-package callee whose summary has not been computed yet this
	// fixpoint round is bottom (clean, no effects): the iteration
	// re-walks every body until summaries stabilize, so the conservative
	// model below is reserved for code the engine will never see. Without
	// this, a first-iteration pass over a caller analyzed before its
	// callee poisons the monotone summary maps with writes and sink facts
	// no later iteration can retract.
	if fn != nil && !isInterfaceMethod(fn) &&
		fn.Pkg() != nil && fn.Pkg() == pkg.Types {
		return make([]taintVal, resultCount(fn))
	}

	// Unknown callee (standard library, interface dispatch, function
	// values): default model. Dynamic interface methods do not propagate
	// their receiver into results — a secret KeyShare's Index() is an
	// int, not a secret — but static functions propagate every argument
	// to every result and may mutate reference arguments.
	dynamic := fn != nil && isInterfaceMethod(fn)
	argVals := make([]taintVal, len(args))
	var v taintVal
	for i, a := range args {
		if dynamic && i == 0 {
			continue
		}
		argVals[i] = sc.eval(a.expr)
		v = v.union(argVals[i])
	}
	if !v.zero() && fn != nil {
		// A mutating callee can move taint between its arguments, but
		// writing an argument's own taint back into itself is a no-op —
		// modelling it would taint the argument's base object (and so its
		// public siblings, field-insensitively) for free. An unknown
		// method's mutation lands in its receiver (the big.Int idiom:
		// z.Exp(x, y, m) writes z, never its operands); only a plain
		// function may scatter taint across any reference argument. A
		// call through a bare function value (fn == nil) gets no
		// write-back at all: it is almost always a local closure whose
		// body is walked in the enclosing scope, so its real effects are
		// already recorded, and the scatter model would only smear taint
		// across unrelated arguments.
		if method := len(args) == len(call.Args)+1; method {
			others := taintVal{}
			for _, av := range argVals[1:] {
				others = others.union(av)
			}
			if !others.zero() && referenceType(typeOf(pkg, args[0].expr)) {
				sc.writeTo(args[0].expr, others)
			}
		} else {
			for i, a := range args {
				others := taintVal{}
				for j := range args {
					if j != i {
						others = others.union(argVals[j])
					}
				}
				if !others.zero() && referenceType(typeOf(pkg, a.expr)) {
					sc.writeTo(a.expr, others)
				}
			}
		}
	}
	var results *types.Tuple
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			results = sig.Results()
		}
	} else if sig, ok := typeOf(pkg, call.Fun).Underlying().(*types.Signature); ok {
		results = sig.Results()
	}
	n := 1
	if results != nil {
		n = results.Len()
	}
	out := make([]taintVal, n)
	for i := range out {
		// An error result from an unseen callee stays clean: error
		// construction is the accountable sink, and every in-module
		// constructor is analyzed. Out-of-module formatting that folds an
		// operand into an error message is a documented blind spot —
		// tainting every err from every library call with a secret
		// argument would drown the signal.
		if results != nil && isErrorType(results.At(i).Type()) {
			continue
		}
		out[i] = v
	}
	return out
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// callArg pairs an argument expression with its parameter bit.
type callArg struct {
	expr ast.Expr
	bit  int
}

// callArgs aligns a call's receiver and arguments with parameter bits.
func callArgs(pkg *analysis.Package, call *ast.CallExpr, fn *types.Func) []callArg {
	var out []callArg
	bit := 0
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				out = append(out, callArg{sel.X, 0})
				bit = 1
			}
		}
	}
	for _, a := range call.Args {
		out = append(out, callArg{a, bit})
		bit++
	}
	return out
}

// applySummary instantiates a callee summary at a call site.
func (sc *fnScope) applySummary(call *ast.CallExpr, fn *types.Func, sum *summary, args []callArg) []taintVal {
	vals := make([]taintVal, sum.nparams)
	for _, a := range args {
		b := a.bit
		if b >= len(vals) {
			b = len(vals) - 1 // variadic tail
		}
		if b >= 0 {
			vals[b] = vals[b].union(sc.eval(a.expr))
		}
	}
	instantiate := func(dep taintVal) taintVal {
		out := taintVal{always: dep.always}
		for b := 0; b < len(vals); b++ {
			if dep.params&paramBit(b) != 0 {
				out = out.union(vals[b])
			}
		}
		return out
	}
	// Parameters that reach a sink inside the callee.
	for _, a := range args {
		b := a.bit
		if b >= len(vals) {
			b = len(vals) - 1
		}
		kind, ok := sum.sinks[b]
		if !ok {
			continue
		}
		sc.sinkArg(a.expr, sc.eval(a.expr), kind, fn, FuncKey(fn))
	}
	// Writes through reference parameters.
	for b, w := range sum.writes {
		inst := instantiate(w)
		if inst.zero() {
			continue
		}
		for _, a := range args {
			ab := a.bit
			if ab >= len(vals) {
				ab = len(vals) - 1
			}
			if ab == b && referenceType(typeOf(sc.st.pkg, a.expr)) {
				sc.writeTo(a.expr, inst)
			}
		}
	}
	out := make([]taintVal, len(sum.results))
	for i, r := range sum.results {
		out[i] = instantiate(r)
	}
	return out
}

// sinkArg records the consequence of a (possibly conditionally) tainted
// value meeting a sink: a concrete leak, or a sink fact on the enclosing
// function's parameters. At a direct sink, handing over a whole value
// whose type carries secret fields (a struct holding key shares) is a
// leak regardless of flow — formatting it prints the secret members.
func (sc *fnScope) sinkArg(arg ast.Expr, v taintVal, kind string, fn *types.Func, via string) {
	if via == "" && !v.always && sc.st.engine.carriesSecret(typeOf(sc.st.pkg, arg)) {
		v.always = true
	}
	if v.always {
		sc.st.engine.recordLeak(Leak{
			Pos:    arg.Pos(),
			Sink:   kind,
			Callee: fn.FullName(),
			Expr:   types.ExprString(arg),
			Via:    via,
		})
	}
	sc.sinkParams(v, kind)
}

// traceSink records a tainted value meeting a non-call sink (a branch
// condition, a memory index): a concrete leak when the taint is definite,
// and a sink fact on the enclosing function's parameters when conditional
// — so a helper that branches on its argument reports interprocedurally
// at each call site that passes a secret.
func (sc *fnScope) traceSink(arg ast.Expr, v taintVal, kind string) {
	if v.always {
		sc.st.engine.recordLeak(Leak{
			Pos:  arg.Pos(),
			Sink: kind,
			Expr: types.ExprString(arg),
		})
	}
	sc.sinkParams(v, kind)
}

// sinkParams registers "parameter b reaches a kind sink" facts in the
// enclosing function's summary.
func (sc *fnScope) sinkParams(v taintVal, kind string) {
	if v.params == 0 {
		return
	}
	for b := 0; b < sc.sum.nparams && b < 64; b++ {
		if v.params&paramBit(b) != 0 {
			if _, ok := sc.sum.sinks[b]; !ok {
				sc.sum.sinks[b] = kind
				sc.st.changed = true
			}
		}
	}
}

func (e *Engine) recordLeak(l Leak) {
	k := leakKey{l.Pos, l.Sink, l.Expr}
	if e.leakSeen[k] {
		return
	}
	e.leakSeen[k] = true
	e.leaks = append(e.leaks, l)
}

// builtin models the built-in functions.
func (sc *fnScope) builtin(name string, call *ast.CallExpr) []taintVal {
	switch name {
	case "append", "min", "max":
		var v taintVal
		for _, a := range call.Args {
			v = v.union(sc.eval(a))
		}
		return []taintVal{v}
	case "copy":
		if len(call.Args) == 2 {
			sc.writeTo(call.Args[0], sc.eval(call.Args[1]))
		}
		return []taintVal{{}}
	case "len", "cap", "new", "make", "delete", "clear", "close", "panic", "print", "println", "recover":
		return []taintVal{{}}
	}
	return []taintVal{{}}
}

// --- small helpers -----------------------------------------------------

func typeOf(pkg *analysis.Package, e ast.Expr) types.Type {
	if e == nil {
		return types.Typ[types.Invalid]
	}
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if o := objOf(pkg, id); o != nil {
			return o.Type()
		}
	}
	return types.Typ[types.Invalid]
}

// tupleAt returns element i of a tuple type, t itself for non-tuples at
// index 0, and nil otherwise.
func tupleAt(t types.Type, i int) types.Type {
	if tup, ok := t.(*types.Tuple); ok {
		if i < tup.Len() {
			return tup.At(i).Type()
		}
		return nil
	}
	if i == 0 {
		return t
	}
	return nil
}

func objOf(pkg *analysis.Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

// baseObject finds the root identifier's object behind a chain of
// selectors, indexes, derefs and parens.
func baseObject(pkg *analysis.Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return objOf(pkg, x)
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return objOf(pkg, x.Sel)
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// calleeFunc resolves the static callee of a call, if any.
func calleeFunc(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return fn // qualified package function
		}
	}
	return nil
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

func resultCount(fn *types.Func) int {
	if sig, ok := fn.Type().(*types.Signature); ok {
		return sig.Results().Len()
	}
	return 0
}

// referenceType reports whether writes through a value of type t are
// visible to other holders of the value.
func referenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// PathHasSegment reports whether an import path contains seg as a "/"
// separated segment — the convention the suite's package classifiers use
// (and which makes testdata fixture trees named like real packages match
// the same rules).
func PathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
