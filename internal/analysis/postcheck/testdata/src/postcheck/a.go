// Package postcheck is a postcheck fixture: errors returned by the
// transport layer's Post/Publish/Close must be handled or explicitly
// discarded, never silently dropped by a bare call statement.
package postcheck

import (
	"yosompc/internal/comm"
	"yosompc/internal/transport"
)

// Bad drops board errors on the floor.
func Bad(c *transport.Client) {
	c.Post("r", comm.PhaseOnline, comm.CatInput, []byte("x")) // want `error from transport\.Post dropped`
	c.Close()                                                 // want `error from transport\.Close dropped`
}

// Suppressed demonstrates the per-line escape hatch.
func Suppressed(c *transport.Client) {
	c.Close() //yosolint:ignore fixture demonstrates directive suppression
}

// Good handles or explicitly discards every error.
func Good(c *transport.Client) error {
	if _, err := c.Post("r", comm.PhaseOnline, comm.CatInput, []byte("x")); err != nil {
		return err
	}
	defer c.Close() // deferred teardown stays legal
	_, _ = c.Post("r", comm.PhaseOnline, comm.CatInput, []byte("y"))
	return nil
}

// Unrelated: Board.Post returns no error, so a bare call is fine.
func Unrelated(b *transport.Board) {
	b.Post("r", comm.PhaseOnline, comm.CatInput, nil, nil)
}
