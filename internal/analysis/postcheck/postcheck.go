// Package postcheck flags silently dropped errors from the transport and
// comm layers' Post, Publish and Close calls. A posting that never reached
// the board is a liveness failure the protocol must react to, not ignore —
// a dropped error there turns a detectable network fault into silent
// divergence between the local view and the bulletin board.
//
// Only bare call statements are flagged. An explicit `_ =` (or `_, _ =`)
// assignment is a deliberate, reviewable opt-out and stays legal, as do
// `defer c.Close()` statements, whose error has no useful handler on most
// teardown paths.
package postcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"yosompc/internal/analysis"
)

// Analyzer is the postcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "postcheck",
	Doc:        "flag dropped errors from transport/board Post, Publish and Close calls",
	Directives: []string{"ignore"},
	Run:        run,
}

// checked names the methods whose errors must not be dropped.
var checked = map[string]bool{
	"Post":    true,
	"Publish": true,
	"Close":   true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass, call)
			if fn == nil || !checked[fn.Name()] {
				return true
			}
			if pkg := fn.Pkg(); pkg == nil || !transportPkg(pkg.Path()) {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			pass.Reportf(call.Pos(), "error from %s.%s dropped; a failed board operation must be handled (assign it, or discard explicitly with _)",
				fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	return nil
}

// callee resolves the called function or method object.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified package-level function: pkg.F(...).
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func transportPkg(path string) bool {
	return path == "transport" || path == "comm" ||
		strings.HasSuffix(path, "/internal/transport") || strings.HasSuffix(path, "/internal/comm")
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}
