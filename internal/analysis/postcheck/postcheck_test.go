package postcheck_test

import (
	"testing"

	"yosompc/internal/analysis/analysistest"
	"yosompc/internal/analysis/postcheck"
)

func TestPostCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), postcheck.Analyzer, "postcheck")
}
