// Package locks exercises the lockscope analyzer's core rules: blocking
// operations under a held mutex (channel ops, sync waits, transitive
// callees), must-hold precision (unlock-first and select-with-default stay
// clean), self-deadlocks, lock-order inversions, and the
// //yosolint:blocking escape hatch.
package locks

import "sync"

// Guard owns a mutex and a channel.
type Guard struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	out chan int
}

// SendUnderLock blocks on a channel send while holding the guard.
func (g *Guard) SendUnderLock() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while holding locks.Guard.mu`
	g.mu.Unlock()
}

// ReceiveUnderRLock blocks on a receive while read-locked.
func (g *Guard) ReceiveUnderRLock() int {
	g.rw.RLock()
	v := <-g.ch // want `channel receive while holding locks.Guard.rw`
	g.rw.RUnlock()
	return v
}

// WaitWithDeferredUnlock: the deferred unlock keeps the lock held for the
// whole body, so the wait happens under it.
func (g *Guard) WaitWithDeferredUnlock(wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	wg.Wait() // want `blocking wait \(sync.WaitGroup.Wait\) while holding locks.Guard.mu`
}

// NonBlockingSelect never blocks: the select has a default clause.
func (g *Guard) NonBlockingSelect() {
	g.mu.Lock()
	select {
	case g.ch <- 1:
	case v := <-g.out:
		_ = v
	default:
	}
	g.mu.Unlock()
}

// BlockingSelect has no default: each clause can block the goroutine.
func (g *Guard) BlockingSelect() {
	g.mu.Lock()
	select {
	case g.ch <- 1: // want `channel send while holding locks.Guard.mu`
	}
	g.mu.Unlock()
}

// UnlockFirst releases before waiting — must-hold tracking keeps it clean.
func (g *Guard) UnlockFirst(wg *sync.WaitGroup) {
	g.mu.Lock()
	g.mu.Unlock()
	wg.Wait()
}

// RangeUnderLock drains a channel while holding the guard.
func (g *Guard) RangeUnderLock() {
	g.mu.Lock()
	for v := range g.ch { // want `channel receive \(range\) while holding locks.Guard.mu`
		_ = v
	}
	g.mu.Unlock()
}

// helperWaits is a blocking helper; calling it under a lock must be
// reported at the call site, interprocedurally.
func (g *Guard) helperWaits(wg *sync.WaitGroup) {
	wg.Wait()
}

// CallsHelper holds the guard across a callee that blocks.
func (g *Guard) CallsHelper(wg *sync.WaitGroup) {
	g.mu.Lock()
	g.helperWaits(wg) // want `call to locks.Guard.helperWaits may block \(blocking wait \(sync.WaitGroup.Wait\)\) while holding locks.Guard.mu`
	g.mu.Unlock()
}

// DoubleAcquire locks the same mutex twice: guaranteed self-deadlock.
func (g *Guard) DoubleAcquire() {
	g.mu.Lock()
	g.mu.Lock() // want `acquires locks.Guard.mu while already holding it`
	g.mu.Unlock()
	g.mu.Unlock()
}

// relock acquires the guard; calling it with the guard held deadlocks.
func (g *Guard) relock() {
	g.mu.Lock()
	g.mu.Unlock()
}

// CallsRelock deadlocks through the callee.
func (g *Guard) CallsRelock() {
	g.mu.Lock()
	g.relock() // want `call to locks.Guard.relock acquires locks.Guard.mu, which is already held`
	g.mu.Unlock()
}

// AB holds two mutexes that two methods acquire in opposite orders.
type AB struct {
	a sync.Mutex
	b sync.Mutex
}

// ForwardOrder takes a then b.
func (x *AB) ForwardOrder() {
	x.a.Lock()
	x.b.Lock() // want `acquires locks.AB.b while holding locks.AB.a, but .* acquires them in the opposite order`
	x.b.Unlock()
	x.a.Unlock()
}

// ReverseOrder takes b then a.
func (x *AB) ReverseOrder() {
	x.b.Lock()
	x.a.Lock() // want `acquires locks.AB.a while holding locks.AB.b, but .* acquires them in the opposite order`
	x.a.Unlock()
	x.b.Unlock()
}

// Justified serializes waits under the guard by design; the mandatory
// justification keeps the finding suppressed but auditable.
func (g *Guard) Justified(wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() //yosolint:blocking the guard exists to serialize waits on one connection
	g.mu.Unlock()
}

// SpawnDoesNotBlock: the goroutine body runs with its own empty lockset,
// and the spawn itself never blocks the holder.
func (g *Guard) SpawnDoesNotBlock() {
	g.mu.Lock()
	go func() {
		g.ch <- 1
	}()
	g.mu.Unlock()
}
