// Package transport exercises the board-post rule: the fixture directory
// puts it in a "transport" path segment, so its Post method matches the
// suite's board classifier and posting under a lock is reported.
package transport

import "sync"

// Board is a minimal bulletin board.
type Board struct{ entries []int }

// Post publishes x for every party to read.
func (b *Board) Post(x int) { b.entries = append(b.entries, x) }

// Mirror forwards postings while holding its own state lock — the exact
// shape lockscope exists to catch: board I/O under a mutex.
type Mirror struct {
	mu    sync.Mutex
	board *Board
	seen  int
}

// Forward posts under the mirror lock.
func (m *Mirror) Forward(x int) {
	m.mu.Lock()
	m.seen++
	m.board.Post(x) // want `board post \(transport.Board.Post\) while holding transport.Mirror.mu`
	m.mu.Unlock()
}

// ForwardUnlocked snapshots under the lock and posts outside it — the
// clean restructuring the analyzer pushes toward.
func (m *Mirror) ForwardUnlocked(x int) {
	m.mu.Lock()
	m.seen++
	m.mu.Unlock()
	m.board.Post(x)
}
