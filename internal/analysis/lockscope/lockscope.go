// Package lockscope is the lockset analyzer of the yosolint suite. For
// every function it computes, over the CFG from internal/analysis/cfg,
// the set of mutexes that must be held at each statement, and reports
//
//   - blocking operations performed while holding a lock: bulletin-board
//     posts and streams (transport Post/Tail/Dial), network and buffered
//     I/O, channel operations outside a select with default,
//     sync.WaitGroup waits, internal/parallel pool fan-outs, time.Sleep,
//     and modular exponentiation (the Paillier/TTE hot primitive);
//   - acquiring a lock that is already held (self-deadlock), directly or
//     through a callee; and
//   - inconsistent lock-acquisition order across the whole load: if one
//     function acquires B while holding A and another acquires A while
//     holding B, both sites are reported (lock-order inversion).
//
// The analysis is interprocedural in the style of internal/analysis/taint:
// packages are consumed dependencies-first and every function gets a
// bottom-up summary (may it block? which locks does it acquire,
// transitively?) that call sites instantiate, so holding a mutex across a
// helper that eventually flushes a TCP connection is reported at the call.
//
// Locks are identified by their owner's named type plus the selector path
// ("transport.Server.mu", "sharing.domainMu"), which matches the same
// logical lock across methods and packages. The lockset is a must-hold
// set (intersection at joins), so a lock released on any path to a
// statement no longer counts — the analyzer under-approximates holding to
// keep every report actionable.
//
// A deliberate block under a lock (a mutex that exists to serialize I/O
// on one connection) is acknowledged in place with
// `//yosolint:blocking <why>`; the justification is mandatory and the
// suppression shows up in cmd/yosolint -json output for audit.
package lockscope

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"yosompc/internal/analysis"
	"yosompc/internal/analysis/cfg"
	"yosompc/internal/analysis/taint"
)

// Analyzer is the lockscope analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "lockscope",
	Doc:        "flag blocking operations under a held mutex, self-deadlocks, and lock-order inversions",
	Directives: []string{"blocking", "ignore"},
	RunModule:  run,
}

// summary is one function's interprocedural locking behavior.
type summary struct {
	// mayBlock reports that the function can perform a blocking
	// operation, directly or through a callee.
	mayBlock bool
	// blockDesc describes the root blocking primitive for messages.
	blockDesc string
	// acquires are the lock keys the function (transitively) acquires.
	acquires map[string]bool
}

// edgeKey is one lock-order fact: acquired was locked while held was held.
type edgeKey struct{ held, acquired string }

// edgeSite is the first site establishing an edge; reportable sites (in a
// target package) are preferred so inversions surface where they can be
// fixed or justified.
type edgeSite struct {
	pos        token.Pos
	reportable bool
}

type engine struct {
	mp    *analysis.ModulePass
	sums  map[string]*summary
	edges map[edgeKey]*edgeSite
}

func run(mp *analysis.ModulePass) error {
	e := &engine{mp: mp, sums: map[string]*summary{}, edges: map[edgeKey]*edgeSite{}}
	for _, pkg := range mp.Packages {
		e.addPackage(pkg)
	}
	e.reportInversions()
	return nil
}

// addPackage converges the package's function summaries (bottom-up, with
// an intra-package fixpoint for mutual recursion), then re-walks each
// function once for reporting.
func (e *engine) addPackage(pkg *analysis.Package) {
	if pkg.Types == nil {
		return
	}
	fns := collectFuncs(pkg)
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, fn := range fns {
			sc := &funcScope{engine: e, pkg: pkg}
			sc.analyze(fn.obj, fn.decl.Body, false)
			if sc.changed {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if pkg.DepOnly {
		// Summaries only: findings (and order edges) in dependency-context
		// packages belong to that package's own lint run.
		return
	}
	for _, fn := range fns {
		sc := &funcScope{engine: e, pkg: pkg}
		sc.analyze(fn.obj, fn.decl.Body, true)
	}
}

// funcInfo pairs a declaration with its types object.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

// collectFuncs gathers the package's analyzable function declarations,
// skipping test files: tests hold locks across deliberate blocking tricks
// (barrier channels, raced posts) that the -race CI job covers instead.
func collectFuncs(pkg *analysis.Package) []funcInfo {
	var out []funcInfo
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, funcInfo{fd, obj})
		}
	}
	return out
}

func isTestFile(pkg *analysis.Package, f *ast.File) bool {
	return strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
}

// funcScope analyzes one function (or function literal) body.
type funcScope struct {
	engine  *engine
	pkg     *analysis.Package
	report  bool
	changed bool
	// sum is the summary under construction; nil for function literals,
	// whose run time (goroutine, deferred, stored callback) is unknown, so
	// their behavior must not leak into the enclosing function's summary.
	sum *summary
	// nonBlockingComm marks the communication statements of selects that
	// have a default clause: they never block.
	nonBlockingComm map[ast.Node]bool
	// lits are the function literals found in the body, analyzed
	// separately with an empty entry lockset.
	lits []*ast.FuncLit
}

// lockset is the must-hold set of lock keys at a program point. top marks
// the not-yet-computed lattice element (identity for intersection).
type lockset struct {
	top  bool
	held map[string]bool
}

func (ls lockset) clone() lockset {
	out := lockset{held: map[string]bool{}}
	for k := range ls.held {
		out.held[k] = true
	}
	return out
}

// meet intersects two locksets (top is the identity).
func meet(a, b lockset) lockset {
	if a.top {
		return b.clone()
	}
	if b.top {
		return a.clone()
	}
	out := lockset{held: map[string]bool{}}
	for k := range a.held {
		if b.held[k] {
			out.held[k] = true
		}
	}
	return out
}

func (ls lockset) equal(o lockset) bool {
	if ls.top != o.top || len(ls.held) != len(o.held) {
		return false
	}
	for k := range ls.held {
		if !o.held[k] {
			return false
		}
	}
	return true
}

func (ls lockset) keys() string {
	keys := make([]string, 0, len(ls.held))
	for k := range ls.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " and ")
}

// analyze runs the lockset dataflow over one body. fn is nil for function
// literals. In summary mode (report=false) it grows fn's summary; in
// report mode it emits diagnostics and order edges from the converged
// locksets.
func (sc *funcScope) analyze(fn *types.Func, body *ast.BlockStmt, report bool) {
	sc.report = report
	if fn != nil {
		key := taint.FuncKey(fn)
		sum := sc.engine.sums[key]
		if sum == nil {
			sum = &summary{acquires: map[string]bool{}}
			sc.engine.sums[key] = sum
		}
		if !report {
			sc.sum = sum
		}
	}
	sc.nonBlockingComm = map[ast.Node]bool{}
	sc.lits = nil
	markNonBlockingComm(body, sc.nonBlockingComm)
	collectLits(body, &sc.lits)

	g := cfg.New(body)
	reach := g.Reachable()
	in := make([]lockset, len(g.Blocks))
	for i := range in {
		in[i] = lockset{top: true}
	}
	if len(g.Blocks) > 0 {
		in[0] = lockset{held: map[string]bool{}}
	}
	// Fixpoint: propagate must-hold sets until stable. The transfer
	// function only adds/removes keys, the meet only shrinks sets, and the
	// key universe is finite, so this terminates; the bound is a backstop.
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, blk := range reach {
			out := sc.transferBlock(blk, in[blk.Index], false)
			for _, s := range blk.Succs {
				merged := meet(in[s.Index], out)
				if !merged.equal(in[s.Index]) {
					in[s.Index] = merged
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Final pass over converged in-sets: summary growth and/or reporting.
	for _, blk := range reach {
		sc.transferBlock(blk, in[blk.Index], true)
	}
	// Function literals run with their own empty lockset, in report mode
	// only (their summaries are anonymous — a documented approximation).
	lits := sc.lits
	for _, lit := range lits {
		inner := &funcScope{engine: sc.engine, pkg: sc.pkg}
		inner.analyze(nil, lit.Body, report)
	}
}

// transferBlock applies the block's nodes to ls and returns the out-set.
// When act is true, summary/report side effects fire.
func (sc *funcScope) transferBlock(blk *cfg.Block, ls lockset, act bool) lockset {
	ls = ls.clone()
	for _, n := range blk.Nodes {
		sc.transferNode(n, &ls, act)
	}
	return ls
}

// transferNode walks one CFG node in evaluation order, adjusting the
// lockset at Lock/Unlock calls and (when act) reporting blocking
// operations and lock-order edges.
func (sc *funcScope) transferNode(n ast.Node, ls *lockset, act bool) {
	// A RangeStmt appears as a node of the block evaluating its operand,
	// while its body statements are separate nodes of the loop's body
	// blocks: walking only the operand avoids double-processing the body
	// under the wrong lockset.
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.X != nil {
			sc.transferNode(rs.X, ls, act)
			if act && isChanType(sc.pkg, rs.X) {
				sc.blocked(rs.X.Pos(), "channel receive (range)", *ls)
			}
		}
		return
	}
	skipComm := sc.nonBlockingComm[n]
	switch s := n.(type) {
	case *ast.GoStmt:
		// The spawned goroutine starts with its own empty lockset; the
		// spawn itself never blocks. Argument expressions evaluate here.
		for _, a := range s.Call.Args {
			sc.transferNode(a, ls, act)
		}
		return
	case *ast.DeferStmt:
		// Deferred calls run during return, when the lockset at each exit
		// differs; modelling them here would mis-attribute. A deferred
		// Unlock deliberately keeps the lock held for the rest of the
		// body — exactly the defer-unwinding behavior we want.
		for _, a := range s.Call.Args {
			sc.transferNode(a, ls, act)
		}
		return
	case *ast.SendStmt:
		sc.transferNode(s.Chan, ls, act)
		sc.transferNode(s.Value, ls, act)
		if !skipComm && act {
			sc.blocked(s.Pos(), "channel send", *ls)
		}
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // analyzed separately with an empty lockset
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !skipComm && !sc.nonBlockingComm[x] && act {
				sc.blocked(x.Pos(), "channel receive", *ls)
			}
		case *ast.CallExpr:
			sc.call(x, ls, act)
		}
		return true
	})
}

// call handles one call site: lock-state transitions, blocking
// classification, and callee-summary instantiation.
func (sc *funcScope) call(call *ast.CallExpr, ls *lockset, act bool) {
	fn := callee(sc.pkg, call)
	if fn == nil {
		return
	}
	if op := lockOp(fn); op != 0 {
		key := sc.receiverKey(call)
		if key == "" {
			return
		}
		switch op {
		case opLock:
			if act {
				if ls.held[key] {
					sc.reportf(call.Pos(), "acquires %s while already holding it (possible self-deadlock)", key)
				}
				for held := range ls.held {
					if held != key {
						sc.edge(held, key, call.Pos())
					}
				}
			}
			sc.acquire(key)
			ls.held[key] = true
		case opUnlock:
			delete(ls.held, key)
		}
		return
	}
	if desc := blockingPrimitive(fn); desc != "" {
		if act && len(ls.held) > 0 {
			sc.blocked(call.Pos(), desc, *ls)
		}
		sc.setBlock(desc)
		return
	}
	if sum, ok := sc.engine.sums[taint.FuncKey(fn)]; ok {
		if act {
			for acq := range sum.acquires {
				if ls.held[acq] {
					sc.reportf(call.Pos(), "call to %s acquires %s, which is already held (possible self-deadlock)", shortFunc(fn), acq)
					continue
				}
				for held := range ls.held {
					sc.edge(held, acq, call.Pos())
				}
			}
			if sum.mayBlock && len(ls.held) > 0 {
				sc.reportf(call.Pos(), "call to %s may block (%s) while holding %s", shortFunc(fn), sum.blockDesc, ls.keys())
			}
		}
		for acq := range sum.acquires {
			sc.acquire(acq)
		}
		if sum.mayBlock {
			sc.setBlock(sum.blockDesc)
		}
	}
}

// blocked reports a direct blocking operation and records it in the
// summary.
func (sc *funcScope) blocked(pos token.Pos, desc string, ls lockset) {
	if len(ls.held) > 0 {
		sc.reportf(pos, "%s while holding %s", desc, ls.keys())
	}
	sc.setBlock(desc)
}

func (sc *funcScope) reportf(pos token.Pos, format string, args ...any) {
	if sc.report {
		sc.engine.mp.Reportf(pos, format, args...)
	}
}

func (sc *funcScope) setBlock(desc string) {
	if sc.sum == nil || sc.sum.mayBlock {
		return
	}
	sc.sum.mayBlock = true
	sc.sum.blockDesc = desc
	sc.changed = true
}

func (sc *funcScope) acquire(key string) {
	if sc.sum == nil || sc.sum.acquires[key] {
		return
	}
	sc.sum.acquires[key] = true
	sc.changed = true
}

// edge records one lock-order fact for the module-wide inversion check.
// Local locks are anonymous across functions, so they carry no order.
func (sc *funcScope) edge(held, acquired string, pos token.Pos) {
	if !sc.report || held == acquired ||
		strings.HasPrefix(held, "local ") || strings.HasPrefix(acquired, "local ") {
		return
	}
	k := edgeKey{held, acquired}
	site, ok := sc.engine.edges[k]
	if !ok {
		sc.engine.edges[k] = &edgeSite{pos: pos, reportable: true}
		return
	}
	if !site.reportable {
		site.pos, site.reportable = pos, true
	}
}

// reportInversions flags every pair of locks acquired in both orders.
func (e *engine) reportInversions() {
	var keys []edgeKey
	for k := range e.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].held != keys[j].held {
			return keys[i].held < keys[j].held
		}
		return keys[i].acquired < keys[j].acquired
	})
	for _, k := range keys {
		rev := edgeKey{k.acquired, k.held}
		other, ok := e.edges[rev]
		if !ok || k.held > k.acquired {
			continue // unpaired, or already handled from the other side
		}
		site := e.edges[k]
		e.reportPair(site, k, other)
		e.reportPair(other, rev, site)
	}
}

func (e *engine) reportPair(site *edgeSite, k edgeKey, other *edgeSite) {
	if !site.reportable {
		return
	}
	op := e.mp.Fset.Position(other.pos)
	e.mp.Reportf(site.pos,
		"acquires %s while holding %s, but %s acquires them in the opposite order (lock-order inversion)",
		k.acquired, k.held, fmt.Sprintf("%s:%d", op.Filename, op.Line))
}

// --- classification ----------------------------------------------------

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies sync.Mutex/RWMutex lock-state transitions. TryLock is
// not an acquisition for must-hold purposes (it may fail).
func lockOp(fn *types.Func) lockOpKind {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone
	}
	recv := recvNamed(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return opNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return opLock
	case "Unlock", "RUnlock":
		return opUnlock
	}
	return opNone
}

// ioFuncs are the blocking entry points of the stdlib stream packages.
var ioFuncs = map[string]bool{
	"Read": true, "Write": true, "Flush": true, "ReadFull": true,
	"ReadAll": true, "WriteString": true, "Copy": true, "CopyN": true,
	"ReadByte": true, "ReadBytes": true, "ReadString": true, "ReadRune": true,
	"WriteByte": true, "WriteRune": true, "Accept": true, "Serve": true,
	"ListenAndServe": true, "Dial": true, "DialTimeout": true,
}

// boardFuncs are the publication/stream entry points of the repo's
// board-facing packages (same path convention as secretflow's sink rule).
var boardFuncs = map[string]bool{
	"Post": true, "Publish": true, "Broadcast": true, "Tail": true, "Dial": true,
}

// blockingPrimitive classifies a resolved callee as a known blocking
// operation, returning a description for messages ("" when not blocking).
func blockingPrimitive(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "sync":
		if name == "Wait" { // WaitGroup.Wait, Cond.Wait
			return "blocking wait (sync." + recvNamed(fn) + ".Wait)"
		}
	case "time":
		if name == "Sleep" {
			return "sleep (time.Sleep)"
		}
	case "math/big":
		if name == "Exp" {
			return "modular exponentiation (big.Int.Exp)"
		}
	case "crypto/rand":
		if name == "Prime" {
			return "prime generation (crypto/rand.Prime)"
		}
	case "net", "bufio", "io", "net/http", "os":
		if ioFuncs[name] {
			return "stream I/O (" + shortFunc(fn) + ")"
		}
	}
	if boardFuncs[name] && boardPkg(path) {
		return "board post (" + shortFunc(fn) + ")"
	}
	if taint.PathHasSegment(path, "parallel") &&
		(name == "For" || name == "ForObserved" || name == "ForWorker") {
		return "worker-pool wait (parallel." + name + ")"
	}
	// The streaming halves of the wire-codec quartet write into live
	// connections: treat them as I/O wherever they are declared.
	if name == "WriteTo" || name == "ReadFrom" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Params().Len() == 1 {
			pt := sig.Params().At(0).Type().String()
			if pt == "io.Writer" || pt == "io.Reader" {
				return "stream I/O (" + shortFunc(fn) + ")"
			}
		}
	}
	return ""
}

func boardPkg(path string) bool {
	return taint.PathHasSegment(path, "transport") ||
		taint.PathHasSegment(path, "comm") ||
		taint.PathHasSegment(path, "yoso") ||
		taint.PathHasSegment(path, "board")
}

// --- lock identity ------------------------------------------------------

// receiverKey names the lock behind the receiver of a Lock/Unlock call.
func (sc *funcScope) receiverKey(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return exprKey(sc.pkg, sel.X)
}

// exprKey names a lock (or channel) expression so the same logical object
// matches across functions: the owner's named type plus the selector path
// ("transport.Server.mu"), a package-level variable ("sharing.domainMu"),
// or a function-local fallback ("local mu", anonymous across functions).
func exprKey(pkg *analysis.Package, e ast.Expr) string {
	var fields []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
					return joinKey(pn.Imported().Name()+"."+x.Sel.Name, fields)
				}
			}
			fields = append([]string{x.Sel.Name}, fields...)
			e = x.X
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			if obj == nil {
				return ""
			}
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return joinKey(obj.Pkg().Name()+"."+obj.Name(), fields)
			}
			if name := namedTypeName(obj.Type()); name != "" {
				return joinKey(name, fields)
			}
			return joinKey("local "+obj.Name(), fields)
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ""
			}
			e = x.X
		default:
			return ""
		}
	}
}

func joinKey(root string, fields []string) string {
	if len(fields) == 0 {
		return root
	}
	return root + "." + strings.Join(fields, ".")
}

// namedTypeName renders a (possibly pointer-to) named type as
// "pkgname.TypeName".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

// shortFunc renders a callee as "pkgname.Recv.Name" for messages.
func shortFunc(fn *types.Func) string {
	name := fn.Name()
	if recv := recvNamed(fn); recv != "" {
		name = recv + "." + name
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isChanType reports whether e's static type is a channel.
func isChanType(pkg *analysis.Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// callee resolves the static callee of a call, if any.
func callee(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return fn // qualified package function
		}
	}
	return nil
}

// --- pre-passes ---------------------------------------------------------

// markNonBlockingComm records the communication statements of selects
// that have a default clause — those never block.
func markNonBlockingComm(body *ast.BlockStmt, out map[ast.Node]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm] = true
				// The receive expression inside an assignment comm clause
				// is visited as part of the statement walk: mark it too.
				ast.Inspect(cc.Comm, func(x ast.Node) bool {
					if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						out[u] = true
					}
					_, isLit := x.(*ast.FuncLit)
					return !isLit
				})
			}
		}
		return true
	})
}

// collectLits gathers the top-level function literals of a body; literals
// nested inside another literal are found when that literal is analyzed.
func collectLits(body *ast.BlockStmt, out *[]*ast.FuncLit) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			*out = append(*out, lit)
			return false
		}
		return true
	}
	for _, s := range body.List {
		ast.Inspect(s, walk)
	}
}
