package lockscope

import (
	"testing"

	"yosompc/internal/analysis/analysistest"
)

// TestFixtures runs the analyzer over the lockset fixtures: blocking
// operations under a held mutex (channel ops, waits, transitive callees,
// board posts), must-hold precision, self-deadlocks, lock-order
// inversions, and the //yosolint:blocking escape hatch.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), Analyzer, "locks", "transport")
}
