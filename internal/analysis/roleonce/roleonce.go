// Package roleonce enforces the YOSO speak-once discipline statically: a
// role that has received the Spoke token is dead — its state is erased and
// any further protocol action through it is a bug the runtime only catches
// by panicking mid-protocol. The analyzer flags state-bearing uses of a
// yoso.Role after its Spoke() call (Post, SecretKey, a second Spoke) and
// of a yoso.Committee after SpeakAll, within the same function.
//
// The check is a lexical straight-line approximation: a use is "after" a
// kill when it appears later in the same function body. Loops that
// resurrect a variable across iterations are out of scope, and reads of
// public, erased-state-free accessors (Name, HasSpoken, PublicKey, the
// exported identity fields) stay legal after death — only the methods
// touching erased secret state or the board are flagged. Test files are
// skipped: tests legitimately provoke the runtime panic on purpose.
package roleonce

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"yosompc/internal/analysis"
)

// Analyzer is the roleonce analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "roleonce",
	Doc:        "flag uses of a YOSO role or committee after its Spoke/SpeakAll call in the same function",
	Directives: []string{"ignore"},
	Run:        run,
}

// killMethods maps a yoso type to the method that kills values of it.
var killMethods = map[string]string{
	"Role":      "Spoke",
	"Committee": "SpeakAll",
}

// deadMethods maps a yoso type to the methods illegal on a dead value.
var deadMethods = map[string]map[string]bool{
	"Role":      {"Post": true, "SecretKey": true, "Spoke": true},
	"Committee": {"SpeakAll": true},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// First pass: record where each role/committee variable is killed.
	kills := map[types.Object]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, typeName := receiverObject(pass, call.Fun)
		if obj == nil {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		if killMethods[typeName] != sel.Sel.Name {
			return true
		}
		if prev, ok := kills[obj]; !ok || call.Pos() < prev {
			kills[obj] = call.Pos()
		}
		return true
	})
	if len(kills) == 0 {
		return
	}
	// Second pass: flag state-bearing uses lexically after the kill.
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, typeName := receiverObject(pass, sel)
		if obj == nil {
			return true
		}
		killPos, killed := kills[obj]
		if !killed || sel.Pos() <= killPos {
			return true
		}
		if !deadMethods[typeName][sel.Sel.Name] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "%s.%s called after the %s spoke at line %d; a YOSO role speaks once and is then dead",
			obj.Name(), sel.Sel.Name, strings.ToLower(typeName), pass.Fset.Position(killPos).Line)
		return true
	})
}

// receiverObject resolves expr as a selector `ident.Method` whose ident is
// a variable of type yoso.Role or yoso.Committee (or pointer to one),
// returning the variable's object and the type name.
func receiverObject(pass *analysis.Pass, expr ast.Expr) (types.Object, string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil, ""
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil, ""
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return nil, ""
	}
	p := tn.Pkg().Path()
	if p != "yoso" && !strings.HasSuffix(p, "/internal/yoso") {
		return nil, ""
	}
	if _, ok := killMethods[tn.Name()]; !ok {
		return nil, ""
	}
	return obj, tn.Name()
}
