// Package roleonce is a roleonce fixture: state-bearing uses of a role
// after its Spoke token (or of a committee after SpeakAll) violate the
// YOSO speak-once discipline and must be flagged.
package roleonce

import (
	"yosompc/internal/comm"
	"yosompc/internal/yoso"
)

// Bad keeps acting through a role that already spoke.
func Bad(r *yoso.Role) {
	r.Post(comm.PhaseOnline, comm.CatInput, []byte("p"), "payload")
	r.Spoke()
	r.Post(comm.PhaseOnline, comm.CatInput, []byte("l"), "late") // want `r\.Post called after the role spoke`
	_ = r.SecretKey()                                            // want `r\.SecretKey called after the role spoke`
	r.Spoke()                                                    // want `r\.Spoke called after the role spoke`
}

// BadCommittee double-kills a committee.
func BadCommittee(c *yoso.Committee) {
	c.SpeakAll()
	c.SpeakAll() // want `c\.SpeakAll called after the committee spoke`
}

// Good reads only public, erased-state-free accessors after death.
func Good(r *yoso.Role) {
	r.Post(comm.PhaseOnline, comm.CatInput, []byte("p"), "payload")
	r.Spoke()
	_ = r.HasSpoken()
	_ = r.Name()
	_ = r.PublicKey()
}

// Fresh roles are unconstrained: no kill, no findings.
func Fresh(r *yoso.Role) {
	_ = r.SecretKey()
	r.Post(comm.PhaseOnline, comm.CatInput, []byte("p"), "payload")
}
