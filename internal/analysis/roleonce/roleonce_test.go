package roleonce_test

import (
	"testing"

	"yosompc/internal/analysis/analysistest"
	"yosompc/internal/analysis/roleonce"
)

func TestRoleOnce(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), roleonce.Analyzer, "roleonce")
}
