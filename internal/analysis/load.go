package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package import path. External test packages get the
	// conventional "_test" suffix appended.
	Path string
	// Name is the package name.
	Name string
	// Dir is the directory holding the package sources.
	Dir string
	// Fset is shared by all packages of one Load call.
	Fset *token.FileSet
	// Files are the parsed sources, in load order.
	Files []*ast.File
	// Sources holds the raw bytes of each file, keyed by filename, for
	// line-layout queries (directive placement).
	Sources map[string][]byte
	// Types is the type-checked package.
	Types *types.Package
	// Info records type and object resolution for Files.
	Info *types.Info
	// DepOnly marks a package loaded from source only as dependency
	// context for module-level analyses (LoadConfig.Deps). DepOnly
	// packages supply call-graph summaries and //yosolint:secret
	// annotations but are not themselves analyzed or directive-validated.
	DepOnly bool
}

// LoadConfig controls Load.
type LoadConfig struct {
	// Dir is the working directory for go list invocations — normally the
	// module root. Empty means the current directory.
	Dir string
	// Tests includes _test.go files: in-package test files are merged into
	// their package, and external (package foo_test) files become a
	// separate Package with an import path suffixed "_test".
	Tests bool
	// Deps additionally loads the targets' non-standard-library
	// dependencies from source, marked Package.DepOnly, so module-level
	// analyses can compute bottom-up summaries for helper packages that
	// the patterns did not match (`go list -deps` emits dependencies
	// before their importers, and Load preserves that order).
	Deps bool
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	ForTest      string
	Error        *listedError
	DepsErrors   []*listedError
	Incomplete   bool
	Match        []string
	TestImports  []string
	XTestImports []string
}

type listedError struct {
	Pos string
	Err string
}

// Load discovers the packages matching patterns with the go tool,
// type-checks them from source, and returns them ready for analysis.
// Dependencies (including standard-library packages) are imported from
// compiler export data, so a Load costs one `go list -export` walk plus
// parsing and checking only the target packages themselves.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if cfg.Tests {
		// -test adds the test variants, whose dependency closure covers
		// imports that appear only in _test.go files (testing, os/exec, …).
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	listed, err := goList(cfg.Dir, args...)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []*listedPkg
	seen := map[string]bool{}
	nTargets := 0
	for _, p := range listed {
		if p.Export != "" {
			if _, ok := exports[p.ImportPath]; !ok {
				exports[p.ImportPath] = p.Export
			}
		}
		// Test variants ("foo [foo.test]", ForTest set) and synthesized
		// test binaries ("foo.test") are never loaded directly.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.DepOnly {
			// Dependencies are loaded from source only when requested,
			// and only module-local ones: the standard library has no
			// yosolint annotations, and its sources may not parse with
			// the framework's plain go/parser configuration. A broken or
			// fileless dependency is silently skipped — its importers
			// still type-check from export data.
			if !cfg.Deps || p.Standard || p.Error != nil || len(p.GoFiles) == 0 || seen[p.ImportPath] {
				continue
			}
			seen[p.ImportPath] = true
			pp := p
			targets = append(targets, &pp)
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 && !(cfg.Tests && (len(p.TestGoFiles) > 0 || len(p.XTestGoFiles) > 0)) {
			continue
		}
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		nTargets++
		pp := p
		targets = append(targets, &pp)
	}
	if nTargets == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, cfg.Dir, exports)

	var out []*Package
	for _, t := range targets {
		files := append([]string{}, t.GoFiles...)
		if cfg.Tests && !t.DepOnly {
			files = append(files, t.TestGoFiles...)
		}
		if len(files) > 0 {
			pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, files)
			if err != nil {
				if t.DepOnly {
					continue
				}
				return nil, err
			}
			pkg.DepOnly = t.DepOnly
			out = append(out, pkg)
		}
		if cfg.Tests && !t.DepOnly && len(t.XTestGoFiles) > 0 {
			pkg, err := checkPackage(fset, imp, t.ImportPath+"_test", t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
	}
	return out, nil
}

// checkPackage parses and type-checks one set of files as a package.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	sources := map[string][]byte{}
	for _, name := range fileNames {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", full, err)
		}
		files = append(files, f)
		sources[full] = src
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	name := path
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(typeErrs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:    path,
		Name:    name,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Sources: sources,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// exportImporter resolves imports from compiler export data files located
// by `go list -export`, falling back to an on-demand go list for paths
// (typically test-only dependencies) missing from the initial walk.
type exportImporter struct {
	dir     string
	exports map[string]string
	gc      types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, dir string, exports map[string]string) *exportImporter {
	e := &exportImporter{dir: dir, exports: exports}
	e.gc = importer.ForCompiler(fset, "gc", e.lookup).(types.ImporterFrom)
	return e
}

func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := e.exports[path]
	if !ok {
		listed, err := goList(e.dir, "list", "-e", "-export", "-json", "--", path)
		if err != nil {
			return nil, fmt.Errorf("analysis: resolving import %q: %w", path, err)
		}
		for _, p := range listed {
			if p.Export != "" {
				e.exports[p.ImportPath] = p.Export
			}
		}
		file, ok = e.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(file)
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, e.dir, 0)
}

func (e *exportImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	return e.gc.ImportFrom(path, srcDir, mode)
}

// goList runs the go tool in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var out []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
