package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// A process-attributed tracer stamps its Chrome export with the metadata
// the cross-process trace merge reads back: the process name and the
// tracer epoch in Unix microseconds.
func TestChromeTraceProcMetadata(t *testing.T) {
	tr := NewTracer()
	tr.SetProc("client-a")
	sp := tr.Start("phase:setup")
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metadata struct {
			Proc    string `json:"proc"`
			EpochUS int64  `json:"epoch_us"`
		} `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metadata.Proc != "client-a" {
		t.Errorf("metadata proc = %q", doc.Metadata.Proc)
	}
	if doc.Metadata.EpochUS != tr.EpochMicros() || doc.Metadata.EpochUS <= 0 {
		t.Errorf("metadata epoch_us = %d, tracer epoch %d", doc.Metadata.EpochUS, tr.EpochMicros())
	}

	// Without SetProc the document shape is unchanged (no metadata key).
	plain := NewTracer()
	plain.Start("x").End()
	buf.Reset()
	if err := plain.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("metadata")) {
		t.Error("unattributed tracer emitted metadata")
	}
}

func TestTracerProcNilSafety(t *testing.T) {
	var tr *Tracer
	tr.SetProc("x") // must not panic
	if tr.Proc() != "" || tr.EpochMicros() != 0 {
		t.Errorf("nil tracer proc/epoch = %q, %d", tr.Proc(), tr.EpochMicros())
	}
}
