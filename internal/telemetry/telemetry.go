// Package telemetry is the observability layer of the YOSO MPC stack:
// hierarchical wall-clock spans (protocol → phase → committee step → role
// or gate batch), a concurrent metrics registry, and exporters for JSONL,
// Chrome trace_event, and an HTTP exposition surface.
//
// Everything is stdlib-only and zero-cost when disabled: a nil *Tracer,
// *Span, *Registry, *Counter, *Gauge, or *Histogram is a valid no-op
// receiver, and none of the hot-path methods allocate when the receiver
// is nil (asserted by an AllocsPerRun test). Instrumented code therefore
// never guards a call site with an "enabled" branch — it just calls.
//
// Spans bridge into comm.Meter: a tracer bound to a meter snapshots it at
// span start and diffs at span end, so every span carries the bytes and
// postings the whole protocol put on the board while it was open.
//
// Security: span names, attribute keys/values, and metric names are
// disclosure surfaces — they end up in trace files, HTTP responses, and
// CI artifacts. The secretflow analyzer registers every emitting method
// of this package as a sink, so a Shamir share, key share, or partial
// decryption flowing into a label is a lint failure, not a leak.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"yosompc/internal/comm"
)

// Tracer collects completed spans. The zero value is not used; construct
// with NewTracer. A nil *Tracer is the disabled tracer: Start returns a
// nil *Span and no state is touched.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu    sync.Mutex
	done  []SpanRecord
	meter *comm.Meter
	proc  string
}

// NewTracer returns an empty tracer whose span timestamps are offsets
// from now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// BindMeter attaches a communication meter: from now on every span
// records the board bytes and postings accumulated between its Start and
// End. Bind before the first Start.
func (t *Tracer) BindMeter(m *comm.Meter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meter = m
	t.mu.Unlock()
}

// SetProc names the OS process this tracer belongs to. The name and the
// tracer epoch land in the Chrome export's metadata, which is what lets a
// trace merge correlate spans from different processes via the board's
// shared timeline.
func (t *Tracer) SetProc(proc string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.proc = proc
	t.mu.Unlock()
}

// Proc returns the configured process name ("" on nil or when unset).
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.proc
}

// EpochMicros returns the tracer epoch as Unix microseconds (0 on nil):
// span StartUS offsets plus this epoch are absolute poster-clock times.
func (t *Tracer) EpochMicros() int64 {
	if t == nil {
		return 0
	}
	return t.epoch.UnixMicro()
}

// Start opens a root span. On a nil tracer it returns nil, and every
// method of the nil span is a no-op.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0)
}

func (t *Tracer) newSpan(name string, parent uint64) *Span {
	s := &Span{
		tracer: t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		worker: -1,
	}
	t.mu.Lock()
	if t.meter != nil {
		s.startBytes = t.meter.Snapshot()
		s.metered = true
	}
	t.mu.Unlock()
	return s
}

// Spans returns the completed spans in deterministic order (start time,
// then ID). Open spans are not included.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.done))
	copy(out, t.done)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Span is one timed region of protocol work. Spans form a tree via Child.
// A span belongs to the goroutine that started it until End; End may be
// called from any goroutine, exactly once. All methods are no-ops on a
// nil receiver.
type Span struct {
	tracer     *Tracer
	id, parent uint64
	name       string
	start      time.Time
	startBytes comm.Report
	metered    bool
	worker     int
	ints       []intAttr
	strs       []strAttr
}

type intAttr struct {
	k string
	v int64
}

type strAttr struct {
	k, v string
}

// ID returns the span's tracer-unique ID; 0 for the nil span, so log
// events stamped with a span ID degrade cleanly when tracing is off.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a sub-span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(name, s.id)
}

// SetInt attaches an integer attribute. Fixed arity keeps the disabled
// path allocation-free (a variadic signature would build a slice at every
// call site before the nil check can run).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.ints = append(s.ints, intAttr{key, v})
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.strs = append(s.strs, strAttr{key, v})
}

// SetWorker attributes the span to one worker slot of the parallel
// engine (0-based). Unattributed spans carry worker -1.
func (s *Span) SetWorker(w int) {
	if s == nil {
		return
	}
	s.worker = w
}

// End closes the span and files its record with the tracer.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(s.tracer.epoch).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Worker:  s.worker,
	}
	if len(s.ints) > 0 {
		rec.Ints = make(map[string]int64, len(s.ints))
		for _, a := range s.ints {
			rec.Ints[a.k] = a.v
		}
	}
	if len(s.strs) > 0 {
		rec.Strs = make(map[string]string, len(s.strs))
		for _, a := range s.strs {
			rec.Strs[a.k] = a.v
		}
	}
	t := s.tracer
	t.mu.Lock()
	if s.metered && t.meter != nil {
		d := t.meter.Snapshot().Diff(s.startBytes)
		rec.Bytes = d.Total
		rec.Postings = d.Postings
	}
	t.done = append(t.done, rec)
	t.mu.Unlock()
}

// SpanRecord is one completed span, shaped for JSONL export.
type SpanRecord struct {
	// ID is unique within the tracer; Parent is 0 for root spans.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUS is microseconds since the tracer epoch; DurUS the span's
	// wall-clock duration in microseconds.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Worker is the parallel-engine slot the span ran on, -1 when the
	// span is not worker-attributed.
	Worker int `json:"worker"`
	// Bytes and Postings are the board traffic recorded while the span
	// was open (whole-protocol attribution via the bound comm.Meter).
	Bytes    int64             `json:"bytes,omitempty"`
	Postings int64             `json:"postings,omitempty"`
	Ints     map[string]int64  `json:"ints,omitempty"`
	Strs     map[string]string `json:"strs,omitempty"`
}
