package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns the HTTP exposition surface:
//
//	/metrics       registry snapshot as JSON
//	/trace         completed spans as a Chrome trace_event document
//	/trace.jsonl   completed spans as JSONL
//	/debug/vars    expvar (Go runtime memstats and cmdline)
//	/debug/pprof/  net/http/pprof profiles (heap, goroutine, CPU, ...)
//
// reg and tr may be nil; their endpoints then serve empty documents. The
// handler is mounted behind an explicit flag by the commands — profiling
// endpoints are never on by default.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChromeTrace(w)
	})
	mux.HandleFunc("/trace.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = tr.WriteJSONL(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
