package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// ProgressFunc supplies the current protocol-progress document for the
// /progress endpoint — typically a monitor's Snapshot method. It must be
// safe for concurrent use.
type ProgressFunc func() any

// Handler returns the HTTP exposition surface:
//
//	/metrics       registry snapshot as JSON (histograms carry p50/p95/p99)
//	/trace         completed spans as a Chrome trace_event document
//	/trace.jsonl   completed spans as JSONL
//	/progress      protocol progress as JSON (empty object without a monitor)
//	/debug/vars    expvar (Go runtime memstats and cmdline)
//	/debug/pprof/  net/http/pprof profiles (heap, goroutine, CPU, ...)
//
// reg and tr may be nil; their endpoints then serve empty documents. The
// handler is mounted behind an explicit flag by the commands — profiling
// endpoints are never on by default.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	return HandlerWithProgress(reg, tr, nil)
}

// HandlerWithProgress is Handler with a live /progress source attached. A
// nil progress serves an empty JSON object.
func HandlerWithProgress(reg *Registry, tr *Tracer, progress ProgressFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChromeTrace(w)
	})
	mux.HandleFunc("/trace.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = tr.WriteJSONL(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if progress == nil {
			_, _ = w.Write([]byte("{}\n"))
			return
		}
		_ = enc.Encode(progress())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is the telemetry HTTP surface with an orderly stop path: it
// owns its listener and serve goroutine, and Shutdown/Close release both.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener

	wg       sync.WaitGroup
	serveErr error // written by the serve goroutine, read after wg.Wait

	mu     sync.Mutex
	closed bool
}

// ListenAndServe binds addr (e.g. "127.0.0.1:0") and serves h on it in the
// background. Stop with Shutdown (graceful) or Close (immediate).
func ListenAndServe(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{srv: &http.Server{Handler: h}, ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Serve returns http.ErrServerClosed after Shutdown/Close; anything
		// else is a real serve failure surfaced by Shutdown.
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting connections, waits for in-flight requests to
// drain (bounded by ctx), then waits for the serve goroutine to exit. If
// ctx expires first the remaining connections are closed immediately. It
// returns the first error among the drain, the serve loop and the listener
// close, and is idempotent.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Context expired: fall back to hard close so Wait cannot hang on
		// a stuck connection.
		_ = s.srv.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		err = s.serveErr
	}
	return err
}

// Close stops the server immediately, dropping in-flight connections, and
// waits for the serve goroutine to exit.
func (s *HTTPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Close()
	s.wg.Wait()
	return err
}
