package telemetry

import "testing"

// TestDisabledPathZeroAlloc pins the zero-cost-when-disabled contract:
// every span and metric call on nil receivers — the exact calls the
// instrumented hot paths make when telemetry is off — performs zero
// allocations.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var (
		tr  *Tracer
		reg *Registry
	)
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x", DurationBuckets)
	if allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Start("phase")
		b := s.Child("batch")
		b.SetInt("gates", 8)
		b.SetStr("backend", "sim")
		b.SetWorker(3)
		_ = b.ID()
		b.End()
		s.End()
		c.Inc()
		c.Add(7)
		g.Set(2)
		g.Max(4)
		h.Observe(1e6)
	}); allocs != 0 {
		t.Fatalf("disabled telemetry allocates %v times per op, want 0", allocs)
	}
	// Handle lookup on a nil registry is also allocation-free, so even
	// un-hoisted lookups cost nothing when disabled.
	if allocs := testing.AllocsPerRun(1000, func() {
		reg.Counter("lookup").Inc()
	}); allocs != 0 {
		t.Fatalf("nil registry lookup allocates %v times per op, want 0", allocs)
	}
}
