package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"
)

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRegistryBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("posts")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if reg.Counter("posts") != c {
		t.Fatal("second lookup must return the same handle")
	}
	g := reg.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	g.Max(3)
	if g.Value() != 5 {
		t.Fatal("Max must not lower the gauge")
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Fatal("Max must raise the gauge")
	}

	h := reg.Histogram("lat", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	snap := reg.Snapshot()
	hs := snap.Histograms["lat"]
	if hs.Count != 3 || hs.Sum != 5055 {
		t.Fatalf("hist count/sum = %d/%v", hs.Count, hs.Sum)
	}
	want := []int64{1, 1, 1}
	for i, c := range hs.Counts {
		if c != want[i] {
			t.Fatalf("bucket counts = %v, want %v", hs.Counts, want)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		reg := NewRegistry()
		reg.Counter("b").Add(2)
		reg.Counter("a").Add(1)
		reg.Gauge("z").Set(3)
		reg.Histogram("h", []float64{1}).Observe(0.5)
		return reg.Snapshot()
	}
	j1, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshots differ:\n%s\n%s", j1, j2)
	}
}

func TestRegistryConcurrentRace(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Counter("c").Inc()
				reg.Gauge("g").Set(int64(i))
				reg.Histogram("h", DurationBuckets).Observe(float64(i))
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := reg.Snapshot().Histograms["h"].Count; got != 8*500 {
		t.Fatalf("hist count = %d, want %d", got, 8*500)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay 0")
	}
	g := reg.Gauge("y")
	g.Set(1)
	g.Max(2)
	h := reg.Histogram("z", DurationBuckets)
	h.Observe(1)
	s := reg.Snapshot()
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot not zero: %+v", s)
	}
	if NewPoolStats(reg, "p", 4) != nil {
		t.Fatal("NewPoolStats on nil registry must be nil")
	}
}

func TestPoolStats(t *testing.T) {
	reg := NewRegistry()
	ps := NewPoolStats(reg, "pool", 2)
	ps.TaskDone(0, 0, 3*time.Millisecond, 5)
	ps.TaskDone(1, 1, time.Millisecond, 4)
	ps.TaskDone(0, 2, time.Millisecond, 0)
	s := reg.Snapshot()
	if s.Counters["pool.tasks"] != 3 {
		t.Fatalf("tasks = %d", s.Counters["pool.tasks"])
	}
	if s.Counters["pool.busy_ns"] != 5e6 {
		t.Fatalf("busy = %d", s.Counters["pool.busy_ns"])
	}
	if s.Counters["pool.busy_ns.w0"] != 4e6 || s.Counters["pool.busy_ns.w1"] != 1e6 {
		t.Fatalf("per-worker busy = %v", s.Counters)
	}
	if s.Gauges["pool.queue_depth"] != 0 || s.Gauges["pool.workers"] != 2 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if s.Histograms["pool.task_ns"].Count != 3 {
		t.Fatalf("task_ns count = %d", s.Histograms["pool.task_ns"].Count)
	}
	// Out-of-range worker must not panic.
	ps.TaskDone(99, 3, time.Millisecond, 0)
	var nilPS *PoolStats
	nilPS.TaskDone(0, 0, time.Millisecond, 0)
}
