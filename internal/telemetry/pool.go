package telemetry

import (
	"fmt"
	"time"
)

// PoolStats adapts a Registry to the parallel engine's Observer contract
// (structural — this package does not import internal/parallel): one
// TaskDone event per completed loop iteration yields worker-utilization
// counters and a queue-depth gauge under a caller-chosen prefix.
//
// Metrics emitted, for prefix P and worker slot w:
//
//	P.tasks            counter, completed iterations
//	P.busy_ns          counter, summed task wall-clock across workers
//	P.busy_ns.w<w>     counter, per-worker busy time (utilization numerator)
//	P.task_ns          histogram of per-task durations
//	P.queue_depth      gauge, tasks not yet started when the event fired
//	P.workers          gauge, pool size the stats were built for
//
// Utilization over an interval is busy_ns / (workers · interval).
type PoolStats struct {
	tasks  *Counter
	busy   *Counter
	taskNS *Histogram
	queue  *Gauge
	perW   []*Counter
}

// NewPoolStats registers the pool metrics for a pool of the given
// (normalized) size. A nil registry returns nil; callers must then pass a
// nil Observer to the engine rather than boxing the nil *PoolStats into a
// non-nil interface.
func NewPoolStats(reg *Registry, prefix string, workers int) *PoolStats {
	if reg == nil {
		return nil
	}
	p := &PoolStats{
		tasks:  reg.Counter(prefix + ".tasks"),
		busy:   reg.Counter(prefix + ".busy_ns"),
		taskNS: reg.Histogram(prefix+".task_ns", DurationBuckets),
		queue:  reg.Gauge(prefix + ".queue_depth"),
		perW:   make([]*Counter, workers),
	}
	for w := range p.perW {
		p.perW[w] = reg.Counter(fmt.Sprintf("%s.busy_ns.w%d", prefix, w))
	}
	reg.Gauge(prefix + ".workers").Set(int64(workers))
	return p
}

// TaskDone implements the parallel engine's Observer.
func (p *PoolStats) TaskDone(worker, task int, d time.Duration, queued int) {
	if p == nil {
		return
	}
	ns := d.Nanoseconds()
	p.tasks.Inc()
	p.busy.Add(ns)
	p.taskNS.Observe(float64(ns))
	p.queue.Set(int64(queued))
	if worker >= 0 && worker < len(p.perW) {
		p.perW[worker].Add(ns)
	}
}
