package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"yosompc/internal/comm"
)

func TestSpanHierarchyAndOrder(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("protocol")
	a := root.Child("offline")
	a.SetInt("muls", 12)
	a.SetStr("backend", "sim")
	a.SetWorker(3)
	time.Sleep(time.Millisecond)
	a.End()
	b := root.Child("online")
	b.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Deterministic order: by start time, so root first.
	if spans[0].Name != "protocol" || spans[1].Name != "offline" || spans[2].Name != "online" {
		t.Fatalf("order = %s,%s,%s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[1].Parent != spans[0].ID || spans[2].Parent != spans[0].ID {
		t.Fatalf("children not parented to root: %+v", spans)
	}
	if spans[1].Ints["muls"] != 12 || spans[1].Strs["backend"] != "sim" {
		t.Fatalf("attrs lost: %+v", spans[1])
	}
	if spans[1].Worker != 3 || spans[0].Worker != -1 {
		t.Fatalf("worker attribution: got %d/%d", spans[1].Worker, spans[0].Worker)
	}
	if spans[1].DurUS < 900 {
		t.Fatalf("offline span duration %dµs, slept 1ms", spans[1].DurUS)
	}
	if spans[0].DurUS < spans[1].DurUS {
		t.Fatalf("root shorter than child: %d < %d", spans[0].DurUS, spans[1].DurUS)
	}
}

func TestSpanMeterBridge(t *testing.T) {
	m := &comm.Meter{}
	tr := NewTracer()
	tr.BindMeter(m)

	m.Add(comm.PhaseSetup, comm.CatCRS, 10) // before the span: excluded
	s := tr.Start("offline")
	m.Add(comm.PhaseOffline, comm.CatBeaver, 100)
	m.Add(comm.PhaseOffline, comm.CatProof, 11)
	s.End()
	m.Add(comm.PhaseOnline, comm.CatMu, 5) // after the span: excluded

	spans := tr.Spans()
	if spans[0].Bytes != 111 || spans[0].Postings != 2 {
		t.Fatalf("span bytes/postings = %d/%d, want 111/2", spans[0].Bytes, spans[0].Postings)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer must start nil spans")
	}
	c := s.Child("y")
	c.SetInt("k", 1)
	c.SetStr("k", "v")
	c.SetWorker(2)
	c.End()
	s.End()
	if s.ID() != 0 {
		t.Fatal("nil span ID must be 0")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer spans = %v", got)
	}
	tr.BindMeter(&comm.Meter{})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer JSONL: err=%v len=%d", err, buf.Len())
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := NewTracer()
	tr.BindMeter(&comm.Meter{})
	root := tr.Start("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := root.Child("member")
				s.SetWorker(g)
				s.SetInt("i", int64(i))
				s.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 8*50+1 {
		t.Fatalf("got %d spans, want %d", got, 8*50+1)
	}
}

func TestWriteJSONLParses(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("a")
	s.Child("b").End()
	s.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var n int
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("got %d JSONL lines, want 2", n)
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("phase")
	c := s.Child("batch")
	c.SetWorker(1)
	c.SetInt("gates", 4)
	c.End()
	s.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil {
			t.Fatalf("event not a complete event: %+v", ev)
		}
	}
	// Worker-attributed span lands on its worker lane.
	if doc.TraceEvents[1].Tid != 2 {
		t.Fatalf("batch tid = %d, want 2 (worker 1)", doc.TraceEvents[1].Tid)
	}
	if doc.TraceEvents[1].Args["gates"] != float64(4) {
		t.Fatalf("args lost: %+v", doc.TraceEvents[1].Args)
	}
}

func TestWriteTraceFileFormats(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer()
	tr.Start("x").End()

	jl := dir + "/trace.jsonl"
	if err := WriteTraceFile(jl, tr); err != nil {
		t.Fatal(err)
	}
	ct := dir + "/trace.json"
	if err := WriteTraceFile(ct, tr); err != nil {
		t.Fatal(err)
	}
	jlb, ctb := mustRead(t, jl), mustRead(t, ct)
	if !json.Valid([]byte(strings.TrimSpace(string(jlb)))) {
		t.Fatal("jsonl line is not valid JSON")
	}
	var doc map[string]any
	if err := json.Unmarshal(ctb, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("chrome trace missing traceEvents")
	}
}
