package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("board.posts").Add(3)
	tr := NewTracer()
	tr.Start("phase").End()

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if snap.Counters["board.posts"] != 3 {
		t.Fatalf("/metrics counters = %v", snap.Counters)
	}

	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/trace"), &doc); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("/trace events = %d, want 1", len(doc.TraceEvents))
	}

	var rec SpanRecord
	if err := json.Unmarshal(get("/trace.jsonl"), &rec); err != nil {
		t.Fatalf("/trace.jsonl: %v", err)
	}
	if rec.Name != "phase" {
		t.Fatalf("/trace.jsonl span = %+v", rec)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing memstats")
	}

	if len(get("/debug/pprof/")) == 0 {
		t.Fatal("/debug/pprof/ empty")
	}
}

func TestHandlerNilBackends(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if !json.Valid(b) {
		t.Fatalf("/metrics with nil registry not JSON: %q", b)
	}
}
