package telemetry

import (
	"encoding/json"
	"testing"
)

// TestHistogramQuantiles pins the bucket-interpolated quantile estimates
// and their exact JSON rendering in /metrics snapshots.
func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", []float64{10, 20})
	for i := 0; i < 5; i++ {
		h.Observe(5) // first bucket (≤10)
	}
	for i := 0; i < 5; i++ {
		h.Observe(15) // second bucket (10, 20]
	}
	hs := reg.Snapshot().Histograms["q"]
	if hs.P50 != 10 || hs.P95 != 19 || hs.P99 != 19.8 {
		t.Errorf("quantiles = p50 %v, p95 %v, p99 %v; want 10, 19, 19.8", hs.P50, hs.P95, hs.P99)
	}
	// Snapshot test: the quantile summary lines are part of the /metrics
	// document shape; this is the committed rendering.
	got, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := `{"histograms":{"q":{"count":10,"sum":100,"p50":10,"p95":19,"p99":19.8,"bounds":[10,20],"counts":[5,5,0]}}}`
	if string(got) != want {
		t.Errorf("snapshot JSON:\n got %s\nwant %s", got, want)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	if got := (HistSnap{}).Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %v, want 0", got)
	}
	// Every observation in the unbounded overflow bucket: the estimate is
	// clamped to the last finite bound rather than invented.
	over := HistSnap{Count: 5, Bounds: []float64{10}, Counts: []int64{0, 5}}
	if got := over.Quantile(0.5); got != 10 {
		t.Errorf("overflow-only quantile = %v, want 10 (clamped)", got)
	}
	// A single observation interpolates inside its bucket.
	one := HistSnap{Count: 1, Bounds: []float64{8}, Counts: []int64{1, 0}}
	if got := one.Quantile(1); got != 8 {
		t.Errorf("single-observation p100 = %v, want 8", got)
	}
}
