package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteJSONL writes one completed SpanRecord per line in deterministic
// order — the grep/jq-friendly export.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range t.Spans() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event entry. "ph":"X" is a complete event:
// name + start + duration, the shape chrome://tracing and Perfetto load
// directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object trace container. Metadata carries the
// process name and tracer epoch (Unix µs) when the tracer is
// process-attributed — the fields the cross-process trace merge reads
// back to place this document on the board's shared timeline.
type chromeDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteChromeTrace writes the spans as a Chrome trace_event document.
// Worker-attributed spans land on thread lane worker+1; everything else
// (the protocol and phase spans) on lane 0.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	if proc := t.Proc(); proc != "" {
		doc.Metadata = map[string]any{"proc": proc, "epoch_us": t.EpochMicros()}
	}
	for _, rec := range spans {
		ev := chromeEvent{
			Name: rec.Name,
			Ph:   "X",
			Ts:   rec.StartUS,
			Dur:  rec.DurUS,
			Pid:  1,
			Tid:  rec.Worker + 1,
		}
		args := map[string]any{"id": rec.ID}
		if rec.Parent != 0 {
			args["parent"] = rec.Parent
		}
		if rec.Bytes != 0 {
			args["bytes"] = rec.Bytes
			args["postings"] = rec.Postings
		}
		for k, v := range rec.Ints {
			args[k] = v
		}
		for k, v := range rec.Strs {
			args[k] = v
		}
		ev.Args = args
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteTraceFile writes the tracer to path, choosing the format by
// extension: ".jsonl" gets the line-oriented span export, anything else
// the Chrome trace_event document.
func WriteTraceFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = t.WriteJSONL(f)
	} else {
		err = t.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("telemetry: write trace %s: %w", path, err)
	}
	return nil
}

// WriteMetricsFile writes the registry snapshot as indented JSON.
func WriteMetricsFile(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(r.Snapshot())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("telemetry: write metrics %s: %w", path, err)
	}
	return nil
}
