package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// The telemetry HTTP server serves the exposition surface and has an
// orderly stop path: after Shutdown the listener is released and new
// connections are refused.
func TestHTTPServerServeAndShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Inc()
	srv, err := ListenAndServe("127.0.0.1:0", Handler(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), `"up": 1`) {
		t.Fatalf("GET /metrics = %d, %s", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after Shutdown")
	}
	// Idempotent: a second Shutdown (and a Close) are clean no-ops.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Shutdown: %v", err)
	}
}

// Shutdown with an already-expired context still terminates: in-flight
// connections are hard-closed instead of waited on forever.
func TestHTTPServerShutdownExpiredContext(t *testing.T) {
	release := make(chan struct{})
	handled := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, _ *http.Request) {
		close(handled)
		<-release // parked until the test releases it
	})
	srv, err := ListenAndServe("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/hang")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-handled
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Shutdown with expired context and a hung request returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on an in-flight request despite expired context")
	}
}

// Close stops the server immediately and is idempotent.
func TestHTTPServerClose(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", Handler(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// /progress serves the attached monitor's snapshot, and an empty object
// when no progress source is wired.
func TestProgressEndpoint(t *testing.T) {
	progress := func() any {
		return map[string]any{"complete": true, "committees": 9}
	}
	srv, err := ListenAndServe("127.0.0.1:0", HandlerWithProgress(nil, nil, progress))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/progress")
	if code != http.StatusOK {
		t.Fatalf("GET /progress = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("progress not JSON: %v\n%s", err, body)
	}
	if doc["complete"] != true || doc["committees"] != float64(9) {
		t.Errorf("progress doc = %v", doc)
	}

	bare, err := ListenAndServe("127.0.0.1:0", Handler(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	code, body = get(t, "http://"+bare.Addr()+"/progress")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "{}" {
		t.Errorf("GET /progress without monitor = %d, %q", code, body)
	}
}
