package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent metrics registry. Metric handles are looked up
// once (allocating only on first registration) and then updated lock-free
// on the hot path. A nil *Registry is the disabled registry: every lookup
// returns a nil handle whose methods are no-ops.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, registering it with
// the given upper bounds on first use. Bounds must be sorted ascending;
// an implicit overflow bucket catches everything above the last bound.
// Later lookups of an existing histogram ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer. Nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable integer level. Nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max raises the gauge to v if v is greater than the current level.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets. Nil-safe. Observe is
// lock-free: per-bucket atomic adds plus an atomic bit-packed sum.
type Histogram struct {
	bounds  []float64
	counts  []int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddInt64(&h.counts[i], 1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// DurationBuckets are exponential nanosecond bounds (1µs … 10s) suited to
// latency histograms fed with time.Duration nanoseconds.
var DurationBuckets = []float64{
	1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
}

// SizeBuckets are exponential byte-size bounds (64 B … 16 MiB) suited to
// message-size histograms.
var SizeBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 16 << 20,
}

// Snapshot is a deterministic point-in-time copy of a registry. Maps
// marshal with sorted keys, so two snapshots of identical state produce
// identical JSON.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Histograms map[string]HistSnap `json:"histograms,omitempty"`
}

// HistSnap is one histogram's snapshot: Counts[i] observations at or
// below Bounds[i], with Counts[len(Bounds)] the overflow bucket. P50/P95/
// P99 are bucket-interpolated quantile estimates (see Quantile) rendered
// alongside the raw buckets so /metrics is readable without
// post-processing; they are 0 when the histogram is empty.
type HistSnap struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// inside the bucket holding the target rank, the standard fixed-bucket
// estimate. The first bucket interpolates from 0; a rank landing in the
// unbounded overflow bucket is clamped to the last finite bound. An empty
// snapshot returns 0.
func (h HistSnap) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		return lo + (h.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot copies every metric's current value. Concurrent updates keep
// running; each individual metric is read atomically. A nil registry
// snapshots to the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for n, c := range r.counts {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnap, len(r.hists))
		for n, h := range r.hists {
			hs := HistSnap{
				Count:  h.count.Load(),
				Sum:    math.Float64frombits(h.sumBits.Load()),
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = atomic.LoadInt64(&h.counts[i])
			}
			hs.P50 = hs.Quantile(0.50)
			hs.P95 = hs.Quantile(0.95)
			hs.P99 = hs.Quantile(0.99)
			s.Histograms[n] = hs
		}
	}
	return s
}
