// Package comm measures and reports communication: every byte posted to
// the broadcast channel is attributed to a protocol phase and a message
// category. Communication complexity is the paper's metric, so the meter
// is the instrument every experiment reads.
package comm

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Phase names a protocol phase.
type Phase string

// The protocol's phases.
const (
	PhaseSetup   Phase = "setup"
	PhaseOffline Phase = "offline"
	PhaseOnline  Phase = "online"
	// PhaseSystem carries board metadata that is not protocol traffic —
	// expected-speaker manifests and other observability records. It is
	// deliberately outside the three protocol phases so the cost-model
	// comparisons (which pin setup/offline/online bytes exactly) never see
	// monitoring overhead.
	PhaseSystem Phase = "system"
)

// Category names a message category within a phase.
type Category string

// Message categories used by the protocols.
const (
	CatBeaver    Category = "beaver-triples"
	CatLambda    Category = "wire-randomness"
	CatPacking   Category = "packing-helpers"
	CatPartial   Category = "partial-decryptions"
	CatReshare   Category = "key-resharing"
	CatReencrypt Category = "re-encryptions"
	CatKFF       Category = "keys-for-future"
	CatProof     Category = "proofs"
	CatMu        Category = "mu-openings"
	CatInput     Category = "client-inputs"
	CatOutput    Category = "client-outputs"
	CatRoleKeys  Category = "role-keys"
	CatCRS       Category = "crs"
	// CatManifest is the expected-speaker manifest a committee former posts
	// under PhaseSystem before the committee speaks: the public record the
	// monitor derives progress and fail-stop margins from.
	CatManifest Category = "progress-manifests"
)

// Meter accumulates byte counts. The zero value is ready to use and safe
// for concurrent use.
type Meter struct {
	mu       sync.Mutex
	total    int64
	postings int64
	byPhase  map[Phase]int64
	byCat    map[Phase]map[Category]int64
}

// Add records size bytes in the given phase and category.
func (m *Meter) Add(phase Phase, cat Category, size int) {
	if size < 0 {
		panic(fmt.Sprintf("comm: negative size %d", size))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.byPhase == nil {
		m.byPhase = map[Phase]int64{}
		m.byCat = map[Phase]map[Category]int64{}
	}
	m.total += int64(size)
	m.postings++
	m.byPhase[phase] += int64(size)
	if m.byCat[phase] == nil {
		m.byCat[phase] = map[Category]int64{}
	}
	m.byCat[phase][cat] += int64(size)
}

// Report returns an immutable snapshot.
func (m *Meter) Report() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := Report{
		Total:    m.total,
		Postings: m.postings,
		ByPhase:  map[Phase]int64{},
		ByCat:    map[Phase]map[Category]int64{},
	}
	for p, v := range m.byPhase {
		r.ByPhase[p] = v
	}
	for p, cats := range m.byCat {
		r.ByCat[p] = map[Category]int64{}
		for c, v := range cats {
			r.ByCat[p][c] = v
		}
	}
	return r
}

// Snapshot returns an immutable copy of the meter's current counts. It is
// Report under a name that states its purpose: pairing two snapshots around
// a region of work and diffing them yields the bytes attributable to that
// region even while other goroutines keep calling Add.
func (m *Meter) Snapshot() Report { return m.Report() }

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total = 0
	m.postings = 0
	m.byPhase = nil
	m.byCat = nil
}

// Report is a snapshot of a Meter.
type Report struct {
	// Total is the number of bytes posted across all phases.
	Total int64
	// Postings is the number of individual posts.
	Postings int64
	// ByPhase breaks Total down by phase.
	ByPhase map[Phase]int64
	// ByCat breaks each phase down by category.
	ByCat map[Phase]map[Category]int64
}

// Phase returns the byte count of one phase.
func (r Report) Phase(p Phase) int64 { return r.ByPhase[p] }

// Diff returns the difference r − prev: the traffic recorded between the
// moment prev was snapshotted and the moment r was. Phases and categories
// whose delta is zero are omitted, so an idle interval diffs to the zero
// Report. prev must be an earlier snapshot of the same meter; counts only
// grow, so every delta is non-negative.
func (r Report) Diff(prev Report) Report {
	d := Report{
		Total:    r.Total - prev.Total,
		Postings: r.Postings - prev.Postings,
		ByPhase:  map[Phase]int64{},
		ByCat:    map[Phase]map[Category]int64{},
	}
	for p, v := range r.ByPhase {
		if dv := v - prev.ByPhase[p]; dv != 0 {
			d.ByPhase[p] = dv
		}
	}
	for p, cats := range r.ByCat {
		for c, v := range cats {
			var prevV int64
			if prev.ByCat[p] != nil {
				prevV = prev.ByCat[p][c]
			}
			if dv := v - prevV; dv != 0 {
				if d.ByCat[p] == nil {
					d.ByCat[p] = map[Category]int64{}
				}
				d.ByCat[p][c] = dv
			}
		}
	}
	return d
}

// Merge returns the sum of two reports — the inverse of Diff, used to
// combine per-span deltas from independent meters (or disjoint intervals)
// into one aggregate.
func (r Report) Merge(other Report) Report {
	s := Report{
		Total:    r.Total + other.Total,
		Postings: r.Postings + other.Postings,
		ByPhase:  map[Phase]int64{},
		ByCat:    map[Phase]map[Category]int64{},
	}
	for _, src := range []Report{r, other} {
		for p, v := range src.ByPhase {
			s.ByPhase[p] += v
		}
		for p, cats := range src.ByCat {
			if s.ByCat[p] == nil {
				s.ByCat[p] = map[Category]int64{}
			}
			for c, v := range cats {
				s.ByCat[p][c] += v
			}
		}
	}
	return s
}

// PerGate returns phase bytes divided by the gate count.
func (r Report) PerGate(p Phase, gates int) float64 {
	if gates == 0 {
		return 0
	}
	return float64(r.ByPhase[p]) / float64(gates)
}

// String renders a human-readable table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total: %s in %d postings\n", HumanBytes(r.Total), r.Postings)
	phases := make([]string, 0, len(r.ByPhase))
	for p := range r.ByPhase {
		phases = append(phases, string(p))
	}
	sort.Strings(phases)
	for _, ps := range phases {
		p := Phase(ps)
		fmt.Fprintf(&b, "  %-8s %s\n", p, HumanBytes(r.ByPhase[p]))
		cats := make([]string, 0, len(r.ByCat[p]))
		for c := range r.ByCat[p] {
			cats = append(cats, string(c))
		}
		sort.Strings(cats)
		for _, cs := range cats {
			fmt.Fprintf(&b, "    %-22s %s\n", cs, HumanBytes(r.ByCat[p][Category(cs)]))
		}
	}
	return b.String()
}

// MarshalJSON renders the report as a stable JSON document for tooling.
func (r Report) MarshalJSON() ([]byte, error) {
	type phaseDoc struct {
		Total      int64            `json:"total"`
		Categories map[string]int64 `json:"categories"`
	}
	doc := struct {
		Total    int64               `json:"total"`
		Postings int64               `json:"postings"`
		Phases   map[string]phaseDoc `json:"phases"`
	}{
		Total:    r.Total,
		Postings: r.Postings,
		Phases:   map[string]phaseDoc{},
	}
	for p, v := range r.ByPhase {
		pd := phaseDoc{Total: v, Categories: map[string]int64{}}
		for c, cv := range r.ByCat[p] {
			pd.Categories[string(c)] = cv
		}
		doc.Phases[string(p)] = pd
	}
	return json.Marshal(doc)
}

// HumanBytes renders a byte count with a binary unit suffix.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Ratio returns a/b as a float, 0 when b is 0 — used for improvement
// factors between baseline and packed online phases.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
