package comm

import (
	"sync"
	"testing"
)

// TestMeterSnapshotConcurrent hammers Add and Snapshot from many
// goroutines. Run under -race it proves Snapshot never observes the
// meter mid-update; the final total check proves no Add is lost.
func TestMeterSnapshotConcurrent(t *testing.T) {
	m := &Meter{}
	const (
		writers = 8
		readers = 4
		adds    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			phase := [...]Phase{PhaseSetup, PhaseOffline, PhaseOnline}[w%3]
			for i := 0; i < adds; i++ {
				m.Add(phase, CatMu, 3)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev Report
			for i := 0; i < adds; i++ {
				snap := m.Snapshot()
				// Snapshots of a grow-only meter are monotone; a diff
				// against any earlier snapshot must be non-negative.
				d := snap.Diff(prev)
				if d.Total < 0 || d.Postings < 0 {
					t.Errorf("snapshot went backwards: %+v before %+v", prev, snap)
					return
				}
				for p, v := range d.ByPhase {
					if v < 0 {
						t.Errorf("phase %s delta negative: %d", p, v)
						return
					}
				}
				prev = snap
			}
		}()
	}
	wg.Wait()
	want := int64(writers * adds * 3)
	if got := m.Snapshot().Total; got != want {
		t.Fatalf("final total = %d, want %d", got, want)
	}
	if got := m.Snapshot().Postings; got != int64(writers*adds) {
		t.Fatalf("final postings = %d, want %d", got, writers*adds)
	}
}

func TestReportDiffMerge(t *testing.T) {
	m := &Meter{}
	m.Add(PhaseOffline, CatBeaver, 100)
	m.Add(PhaseOffline, CatProof, 40)
	before := m.Snapshot()

	m.Add(PhaseOffline, CatBeaver, 25)
	m.Add(PhaseOnline, CatMu, 7)
	after := m.Snapshot()

	d := after.Diff(before)
	if d.Total != 32 || d.Postings != 2 {
		t.Fatalf("diff total/postings = %d/%d, want 32/2", d.Total, d.Postings)
	}
	if d.ByPhase[PhaseOffline] != 25 || d.ByPhase[PhaseOnline] != 7 {
		t.Fatalf("diff phases = %+v", d.ByPhase)
	}
	if _, ok := d.ByCat[PhaseOffline][CatProof]; ok {
		t.Fatalf("unchanged category must be omitted from diff: %+v", d.ByCat)
	}
	if d.ByCat[PhaseOffline][CatBeaver] != 25 || d.ByCat[PhaseOnline][CatMu] != 7 {
		t.Fatalf("diff categories = %+v", d.ByCat)
	}

	// Diff then Merge reconstructs the later snapshot.
	back := before.Merge(d)
	if back.Total != after.Total || back.Postings != after.Postings {
		t.Fatalf("merge total/postings = %d/%d, want %d/%d",
			back.Total, back.Postings, after.Total, after.Postings)
	}
	for p, v := range after.ByPhase {
		if back.ByPhase[p] != v {
			t.Fatalf("merge phase %s = %d, want %d", p, back.ByPhase[p], v)
		}
	}
	for p, cats := range after.ByCat {
		for c, v := range cats {
			if back.ByCat[p][c] != v {
				t.Fatalf("merge %s/%s = %d, want %d", p, c, back.ByCat[p][c], v)
			}
		}
	}

	// Idle interval: diff of a snapshot with itself is empty.
	z := after.Diff(after)
	if z.Total != 0 || z.Postings != 0 || len(z.ByPhase) != 0 || len(z.ByCat) != 0 {
		t.Fatalf("self-diff not empty: %+v", z)
	}
}
