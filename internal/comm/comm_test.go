package comm

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMeterZeroValueUsable(t *testing.T) {
	var m Meter
	m.Add(PhaseSetup, CatCRS, 10)
	if m.Report().Total != 10 {
		t.Error("zero-value meter broken")
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add(PhaseOnline, CatMu, 1)
			}
		}()
	}
	wg.Wait()
	r := m.Report()
	if r.Total != 8000 || r.Postings != 8000 {
		t.Errorf("total=%d postings=%d, want 8000 each", r.Total, r.Postings)
	}
}

func TestMeterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size accepted")
		}
	}()
	var m Meter
	m.Add(PhaseSetup, CatCRS, -1)
}

func TestReportIsSnapshot(t *testing.T) {
	var m Meter
	m.Add(PhaseOnline, CatMu, 5)
	r := m.Report()
	m.Add(PhaseOnline, CatMu, 5)
	if r.Total != 5 {
		t.Error("report mutated after snapshot")
	}
	// Mutating the snapshot's maps must not affect the meter.
	r.ByPhase[PhaseOnline] = 999
	if m.Report().Phase(PhaseOnline) != 10 {
		t.Error("snapshot aliases meter state")
	}
}

func TestReportTotalsConsistent(t *testing.T) {
	f := func(sizes []uint16) bool {
		var m Meter
		var want int64
		for i, s := range sizes {
			phase := PhaseOffline
			if i%2 == 0 {
				phase = PhaseOnline
			}
			m.Add(phase, CatProof, int(s))
			want += int64(s)
		}
		r := m.Report()
		var sum int64
		for _, v := range r.ByPhase {
			sum += v
		}
		var catSum int64
		for _, cats := range r.ByCat {
			for _, v := range cats {
				catSum += v
			}
		}
		return r.Total == want && sum == want && catSum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReportStringStable(t *testing.T) {
	var m Meter
	m.Add(PhaseOffline, CatBeaver, 100)
	m.Add(PhaseOffline, CatLambda, 50)
	m.Add(PhaseSetup, CatCRS, 1)
	s1 := m.Report().String()
	s2 := m.Report().String()
	if s1 != s2 {
		t.Error("report rendering not deterministic")
	}
	for _, want := range []string{"offline", "setup", "beaver-triples", "wire-randomness"} {
		if !strings.Contains(s1, want) {
			t.Errorf("report missing %q:\n%s", want, s1)
		}
	}
}

func TestHumanBytesBoundaries(t *testing.T) {
	cases := map[int64]string{
		0:         "0 B",
		1023:      "1023 B",
		1024:      "1.00 KiB",
		1<<20 - 1: "1024.00 KiB",
		1 << 20:   "1.00 MiB",
		1 << 30:   "1.00 GiB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestReportJSON(t *testing.T) {
	var m Meter
	m.Add(PhaseOffline, CatBeaver, 100)
	m.Add(PhaseOnline, CatMu, 8)
	buf, err := m.Report().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(buf)
	for _, want := range []string{`"total":108`, `"postings":2`, `"beaver-triples":100`, `"mu-openings":8`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
}
