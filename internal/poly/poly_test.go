package poly

import (
	"testing"
	"testing/quick"

	"yosompc/internal/field"
)

func elems(vs ...uint64) []field.Element {
	out := make([]field.Element, len(vs))
	for i, v := range vs {
		out[i] = field.New(v)
	}
	return out
}

func TestNewTrimsTrailingZeros(t *testing.T) {
	p := New(elems(1, 2, 0, 0))
	if p.Degree() != 1 {
		t.Errorf("degree = %d, want 1", p.Degree())
	}
	if Zero().Degree() != -1 {
		t.Errorf("zero degree = %d, want -1", Zero().Degree())
	}
}

func TestEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x²
	p := New(elems(3, 2, 1))
	cases := []struct{ x, want uint64 }{
		{0, 3}, {1, 6}, {2, 11}, {10, 123},
	}
	for _, c := range cases {
		if got := p.Eval(field.New(c.x)); got != field.New(c.want) {
			t.Errorf("p(%d) = %v, want %d", c.x, got, c.want)
		}
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(as, bs []uint64) bool {
		pa := New(fieldVec(as))
		pb := New(fieldVec(bs))
		return pa.Add(pb).Sub(pb).Equal(pa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulDegree(t *testing.T) {
	p := New(elems(1, 1))    // 1+x
	q := New(elems(2, 0, 1)) // 2+x²
	r := p.Mul(q)
	if r.Degree() != 3 {
		t.Errorf("degree = %d, want 3", r.Degree())
	}
	// (1+x)(2+x²) = 2 + 2x + x² + x³
	want := New(elems(2, 2, 1, 1))
	if !r.Equal(want) {
		t.Errorf("product = %v, want %v", r.Coefficients(), want.Coefficients())
	}
}

func TestMulEvalHomomorphism(t *testing.T) {
	f := func(as, bs []uint64, x uint64) bool {
		pa, pb := New(fieldVec(as)), New(fieldVec(bs))
		xe := field.New(x)
		return pa.Mul(pb).Eval(xe) == pa.Eval(xe).Mul(pb.Eval(xe))
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMulZero(t *testing.T) {
	p := New(elems(1, 2, 3))
	if !p.Mul(Zero()).IsZero() {
		t.Error("p·0 != 0")
	}
	if !Zero().Mul(p).IsZero() {
		t.Error("0·p != 0")
	}
}

func TestScalarMul(t *testing.T) {
	p := New(elems(1, 2))
	got := p.ScalarMul(field.New(3))
	if !got.Equal(New(elems(3, 6))) {
		t.Errorf("3·p = %v", got.Coefficients())
	}
	if !p.ScalarMul(field.Zero).IsZero() {
		t.Error("0·p != 0")
	}
}

func TestInterpolateExact(t *testing.T) {
	// Interpolating d+1 points of a degree-d polynomial recovers it.
	orig := MustRandom(7)
	xs := make([]field.Element, 8)
	for i := range xs {
		xs[i] = field.New(uint64(i + 1))
	}
	ys := orig.EvalMany(xs)
	rec, err := Interpolate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Equal(orig) {
		t.Error("interpolation did not recover polynomial")
	}
}

func TestInterpolateNegativePoints(t *testing.T) {
	// Packed sharing uses slot points 0, -1, -2, ...; make sure interpolation
	// through "negative" points (p-1, p-2, ...) is exact.
	orig := MustRandom(4)
	xs := []field.Element{
		field.NewInt64(0), field.NewInt64(-1), field.NewInt64(-2),
		field.NewInt64(-3), field.NewInt64(-4),
	}
	ys := orig.EvalMany(xs)
	rec, err := Interpolate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Equal(orig) {
		t.Error("interpolation through slot points failed")
	}
}

func TestInterpolateDuplicatePoints(t *testing.T) {
	xs := elems(1, 1)
	ys := elems(2, 3)
	if _, err := Interpolate(xs, ys); err == nil {
		t.Error("Interpolate accepted duplicate points")
	}
}

func TestInterpolateLengthMismatch(t *testing.T) {
	if _, err := Interpolate(elems(1, 2), elems(1)); err == nil {
		t.Error("Interpolate accepted length mismatch")
	}
}

func TestLagrangeBasisProperty(t *testing.T) {
	xs := elems(1, 2, 3, 4)
	basis, err := LagrangeBasis(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, li := range basis {
		for j, xj := range xs {
			got := li.Eval(xj)
			want := field.Zero
			if i == j {
				want = field.One
			}
			if got != want {
				t.Errorf("L_%d(x_%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestLagrangeCoeffsMatchEval(t *testing.T) {
	orig := MustRandom(5)
	xs := make([]field.Element, 6)
	for i := range xs {
		xs[i] = field.New(uint64(i + 10))
	}
	ys := orig.EvalMany(xs)
	at := field.New(12345)
	coeffs, err := LagrangeCoeffs(xs, at)
	if err != nil {
		t.Fatal(err)
	}
	if got := field.InnerProduct(coeffs, ys); got != orig.Eval(at) {
		t.Errorf("Σ c_i y_i = %v, want %v", got, orig.Eval(at))
	}
}

func TestEvalAt(t *testing.T) {
	orig := MustRandom(3)
	xs := elems(1, 2, 3, 4)
	ys := orig.EvalMany(xs)
	got, err := EvalAt(xs, ys, field.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if got != orig.Eval(field.New(99)) {
		t.Errorf("EvalAt = %v, want %v", got, orig.Eval(field.New(99)))
	}
}

func TestEvalAtErrors(t *testing.T) {
	if _, err := EvalAt(elems(1, 2), elems(1), field.Zero); err == nil {
		t.Error("EvalAt accepted length mismatch")
	}
	if _, err := EvalAt(elems(1, 1), elems(1, 2), field.Zero); err == nil {
		t.Error("EvalAt accepted duplicate points")
	}
}

func TestRandomDegree(t *testing.T) {
	p := MustRandom(10)
	if p.Degree() > 10 {
		t.Errorf("degree = %d > 10", p.Degree())
	}
	if !MustRandom(-1).IsZero() {
		t.Error("Random(-1) not zero")
	}
}

func TestCoefficientOutOfRange(t *testing.T) {
	p := New(elems(1, 2))
	if p.Coefficient(-1) != field.Zero || p.Coefficient(5) != field.Zero {
		t.Error("out-of-range Coefficient not zero")
	}
}

func fieldVec(vs []uint64) []field.Element {
	out := make([]field.Element, len(vs))
	for i, v := range vs {
		out[i] = field.New(v)
	}
	return out
}

func BenchmarkInterpolate64(b *testing.B) {
	orig := MustRandom(63)
	xs := make([]field.Element, 64)
	for i := range xs {
		xs[i] = field.New(uint64(i + 1))
	}
	ys := orig.EvalMany(xs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Interpolate(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLagrangeCoeffs64(b *testing.B) {
	xs := make([]field.Element, 64)
	for i := range xs {
		xs[i] = field.New(uint64(i + 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LagrangeCoeffs(xs, field.Zero); err != nil {
			b.Fatal(err)
		}
	}
}
