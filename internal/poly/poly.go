// Package poly implements univariate polynomials over the MPC field,
// including Lagrange interpolation at arbitrary point sets. The packed
// secret-sharing layer and the homomorphic packing step of the offline phase
// are built on these primitives.
package poly

import (
	"errors"
	"fmt"

	"yosompc/internal/field"
)

// Polynomial is a polynomial over F_p in coefficient form, little-endian:
// coeffs[i] is the coefficient of x^i. The empty polynomial is the zero
// polynomial.
type Polynomial struct {
	coeffs []field.Element
}

// ErrDuplicatePoint is returned when interpolation points repeat.
var ErrDuplicatePoint = errors.New("poly: duplicate interpolation point")

// New builds a polynomial from little-endian coefficients. Trailing zero
// coefficients are trimmed so that Degree is canonical.
func New(coeffs []field.Element) Polynomial {
	end := len(coeffs)
	for end > 0 && coeffs[end-1].IsZero() {
		end--
	}
	return Polynomial{coeffs: field.CloneVec(coeffs[:end])}
}

// Zero returns the zero polynomial.
func Zero() Polynomial { return Polynomial{} }

// Zeroize wipes the coefficient buffer in place. Sharing layers call it
// (usually via defer) on polynomials that interpolated secret values —
// a packed sharing polynomial's coefficients determine every secret slot,
// so they must not outlive the share computation.
func (f Polynomial) Zeroize() { field.Zeroize(f.coeffs) }

// Constant returns the degree-0 polynomial c.
func Constant(c field.Element) Polynomial {
	if c.IsZero() {
		return Polynomial{}
	}
	return Polynomial{coeffs: []field.Element{c}}
}

// Random returns a uniformly random polynomial of degree at most deg.
func Random(deg int) (Polynomial, error) {
	if deg < 0 {
		return Polynomial{}, nil
	}
	coeffs, err := field.RandomVec(deg + 1)
	if err != nil {
		return Polynomial{}, err
	}
	return Polynomial{coeffs: coeffs}, nil
}

// MustRandom is Random panicking on randomness failure.
func MustRandom(deg int) Polynomial {
	p, err := Random(deg)
	if err != nil {
		panic(err)
	}
	return p
}

// Degree returns the degree of p; the zero polynomial has degree -1.
func (p Polynomial) Degree() int { return len(p.coeffs) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Polynomial) IsZero() bool { return len(p.coeffs) == 0 }

// Coefficients returns a copy of the little-endian coefficients.
func (p Polynomial) Coefficients() []field.Element { return field.CloneVec(p.coeffs) }

// Coefficient returns the coefficient of x^i (zero beyond the degree).
func (p Polynomial) Coefficient(i int) field.Element {
	if i < 0 || i >= len(p.coeffs) {
		return field.Zero
	}
	return p.coeffs[i]
}

// Eval evaluates p at x by Horner's rule.
func (p Polynomial) Eval(x field.Element) field.Element {
	var acc field.Element
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(p.coeffs[i])
	}
	return acc
}

// EvalMany evaluates p at every point in xs.
func (p Polynomial) EvalMany(xs []field.Element) []field.Element {
	out := make([]field.Element, len(xs))
	for i, x := range xs {
		out[i] = p.Eval(x)
	}
	return out
}

// Add returns p + q.
func (p Polynomial) Add(q Polynomial) Polynomial {
	longer, shorter := p.coeffs, q.coeffs
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	out := field.CloneVec(longer)
	for i := range shorter {
		out[i] = out[i].Add(shorter[i])
	}
	return New(out)
}

// Sub returns p - q.
func (p Polynomial) Sub(q Polynomial) Polynomial {
	n := len(p.coeffs)
	if len(q.coeffs) > n {
		n = len(q.coeffs)
	}
	out := make([]field.Element, n)
	for i := range out {
		out[i] = p.Coefficient(i).Sub(q.Coefficient(i))
	}
	return New(out)
}

// Mul returns p · q by schoolbook multiplication. Degrees in this codebase
// are committee-sized (≤ a few thousand), so O(d²) is acceptable.
func (p Polynomial) Mul(q Polynomial) Polynomial {
	if p.IsZero() || q.IsZero() {
		return Polynomial{}
	}
	out := make([]field.Element, len(p.coeffs)+len(q.coeffs)-1)
	for i, a := range p.coeffs {
		if a.IsZero() {
			continue
		}
		for j, b := range q.coeffs {
			out[i+j] = out[i+j].Add(a.Mul(b))
		}
	}
	return New(out)
}

// ScalarMul returns c·p.
func (p Polynomial) ScalarMul(c field.Element) Polynomial {
	if c.IsZero() {
		return Polynomial{}
	}
	return New(field.ScalarMulVec(c, p.coeffs))
}

// Equal reports whether p and q are identical polynomials.
func (p Polynomial) Equal(q Polynomial) bool { return field.EqualVec(p.coeffs, q.coeffs) }

// String implements fmt.Stringer for debugging output.
func (p Polynomial) String() string {
	if p.IsZero() {
		return "0"
	}
	return fmt.Sprintf("poly(deg=%d)", p.Degree())
}

// Interpolate returns the unique polynomial of degree < len(xs) passing
// through all (xs[i], ys[i]). The xs must be pairwise distinct.
//
// The construction is Newton's divided differences — O(n²) field
// operations — not the O(n³) sum of scaled Lagrange basis polynomials
// (which remains available through LagrangeBasis for callers that need
// the basis itself). Interpolation is unique, so the two constructions
// return bit-identical polynomials; TestInterpolateMatchesLagrangeBasis
// pins that.
func Interpolate(xs, ys []field.Element) (Polynomial, error) {
	if len(xs) != len(ys) {
		return Polynomial{}, fmt.Errorf("poly: interpolate: %d points vs %d values", len(xs), len(ys))
	}
	if err := checkDistinct(xs); err != nil {
		return Polynomial{}, err
	}
	return interpolateNewton(xs, ys)
}

// LagrangeBasis returns the Lagrange basis polynomials L_i for the point set
// xs: L_i(xs[i]) = 1 and L_i(xs[j]) = 0 for j != i.
func LagrangeBasis(xs []field.Element) ([]Polynomial, error) {
	if err := checkDistinct(xs); err != nil {
		return nil, err
	}
	denoms := make([]field.Element, len(xs))
	nums := make([]Polynomial, len(xs))
	for i, xi := range xs {
		num := Constant(field.One)
		denom := field.One
		for j, xj := range xs {
			if j == i {
				continue
			}
			// num *= (x - xj)
			num = num.Mul(New([]field.Element{xj.Neg(), field.One}))
			denom = denom.Mul(xi.Sub(xj))
		}
		nums[i], denoms[i] = num, denom
	}
	invs, err := field.BatchInv(denoms)
	if err != nil {
		return nil, fmt.Errorf("poly: lagrange basis: %w", err)
	}
	basis := make([]Polynomial, len(xs))
	for i := range xs {
		basis[i] = nums[i].ScalarMul(invs[i])
	}
	return basis, nil
}

// LagrangeCoeffs returns the coefficients c_i such that for any polynomial f
// of degree < len(xs): f(at) = Σ c_i · f(xs[i]). This is the workhorse of
// share reconstruction and of the homomorphic packing step (offline Step 4),
// where the same coefficients are applied inside the threshold encryption.
func LagrangeCoeffs(xs []field.Element, at field.Element) ([]field.Element, error) {
	if err := checkDistinct(xs); err != nil {
		return nil, err
	}
	nums := make([]field.Element, len(xs))
	denoms := make([]field.Element, len(xs))
	for i, xi := range xs {
		num, denom := field.One, field.One
		for j, xj := range xs {
			if j == i {
				continue
			}
			num = num.Mul(at.Sub(xj))
			denom = denom.Mul(xi.Sub(xj))
		}
		nums[i], denoms[i] = num, denom
	}
	invs, err := field.BatchInv(denoms)
	if err != nil {
		return nil, fmt.Errorf("poly: lagrange coeffs: %w", err)
	}
	coeffs := make([]field.Element, len(xs))
	for i := range xs {
		coeffs[i] = nums[i].Mul(invs[i])
	}
	return coeffs, nil
}

// EvalAt interpolates through (xs, ys) and evaluates at `at` directly,
// without constructing the polynomial. O(len(xs)²).
func EvalAt(xs, ys []field.Element, at field.Element) (field.Element, error) {
	if len(xs) != len(ys) {
		return field.Zero, fmt.Errorf("poly: evalAt: %d points vs %d values", len(xs), len(ys))
	}
	coeffs, err := LagrangeCoeffs(xs, at)
	if err != nil {
		return field.Zero, err
	}
	return field.InnerProduct(coeffs, ys), nil
}

func checkDistinct(xs []field.Element) error {
	seen := make(map[field.Element]struct{}, len(xs))
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			return fmt.Errorf("%w: %v", ErrDuplicatePoint, x)
		}
		seen[x] = struct{}{}
	}
	return nil
}
