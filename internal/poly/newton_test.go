package poly

import (
	"errors"
	"testing"
	"testing/quick"

	"yosompc/internal/field"
)

// interpolateLagrange is the original O(n³) construction, kept in tests
// as the reference the Newton path is differentially pinned against.
func interpolateLagrange(t *testing.T, xs, ys []field.Element) Polynomial {
	t.Helper()
	basis, err := LagrangeBasis(xs)
	if err != nil {
		t.Fatal(err)
	}
	acc := Zero()
	for i := range ys {
		acc = acc.Add(basis[i].ScalarMul(ys[i]))
	}
	return acc
}

func TestInterpolateMatchesLagrangeBasis(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33} {
		xs := make([]field.Element, n)
		for i := range xs {
			// Mix of slot-style negatives and share-style positives.
			if i%2 == 0 {
				xs[i] = field.NewInt64(int64(-i))
			} else {
				xs[i] = field.New(uint64(i))
			}
		}
		ys := field.MustRandomVec(n)
		got, err := Interpolate(xs, ys)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if want := interpolateLagrange(t, xs, ys); !got.Equal(want) {
			t.Fatalf("n=%d: Newton and Lagrange interpolants differ", n)
		}
	}
}

func TestInterpolateDistinct(t *testing.T) {
	xs := elems(1, 2, 3, 4, 5)
	ys := field.MustRandomVec(5)
	fast, err := InterpolateDistinct(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Interpolate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Equal(slow) {
		t.Error("InterpolateDistinct differs from Interpolate")
	}
	if _, err := InterpolateDistinct(elems(1, 2), elems(1)); err == nil {
		t.Error("InterpolateDistinct accepted length mismatch")
	}
	// Duplicates must still fail closed, via the zero denominator.
	if _, err := InterpolateDistinct(elems(3, 1, 3), elems(1, 2, 3)); !errors.Is(err, ErrDuplicatePoint) {
		t.Errorf("InterpolateDistinct on duplicates: %v, want ErrDuplicatePoint", err)
	}
}

func TestInterpolateNewtonRoundTripQuick(t *testing.T) {
	f := func(raw []uint64, deg uint8) bool {
		n := 1 + int(deg)%12
		xs := make([]field.Element, n)
		for i := range xs {
			xs[i] = field.New(uint64(i * 7))
		}
		p := MustRandom(n - 1)
		ys := p.EvalMany(xs)
		rec, err := InterpolateDistinct(xs, ys)
		return err == nil && rec.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBarycentricWeightsMatchLagrangeCoeffs(t *testing.T) {
	xs := []field.Element{
		field.NewInt64(0), field.NewInt64(-1), field.NewInt64(-2),
		field.New(1), field.New(2), field.New(3),
	}
	ws, err := BarycentricWeights(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []field.Element{field.New(9), field.New(1 << 40), field.NewInt64(-7)} {
		want, err := LagrangeCoeffs(xs, at)
		if err != nil {
			t.Fatal(err)
		}
		got := EvalCoeffsFromWeights(xs, ws, at)
		if !field.EqualVec(got, want) {
			t.Errorf("coefficient row at %v differs from LagrangeCoeffs", at)
		}
	}
}

func TestBarycentricWeightsDuplicate(t *testing.T) {
	if _, err := BarycentricWeights(elems(5, 6, 5)); !errors.Is(err, ErrDuplicatePoint) {
		t.Errorf("BarycentricWeights on duplicates: %v, want ErrDuplicatePoint", err)
	}
}

func TestEvalCoeffsAtInterpolationPoint(t *testing.T) {
	// When `at` is one of the xs the row must degenerate to the indicator
	// of that point — the property the reconstruction fast path leans on
	// when a consistency-check share repeats a prefix index.
	xs := elems(4, 9, 2, 11)
	ws, err := BarycentricWeights(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, at := range xs {
		row := EvalCoeffsFromWeights(xs, ws, at)
		for j := range xs {
			want := field.Zero
			if j == i {
				want = field.One
			}
			if row[j] != want {
				t.Errorf("row(at=x_%d)[%d] = %v, want %v", i, j, row[j], want)
			}
		}
	}
}

func TestEvalRowsFromWeights(t *testing.T) {
	xs := elems(1, 2, 3)
	ws, err := BarycentricWeights(xs)
	if err != nil {
		t.Fatal(err)
	}
	p := MustRandom(2)
	ats := []field.Element{field.New(17), field.NewInt64(-4), field.New(2)}
	rows := EvalRowsFromWeights(xs, ws, ats)
	ys := p.EvalMany(xs)
	for i, at := range ats {
		if got := field.InnerProduct(rows[i], ys); got != p.Eval(at) {
			t.Errorf("row %d: %v, want f(%v) = %v", i, got, at, p.Eval(at))
		}
	}
	if len(EvalCoeffsFromWeights(nil, nil, field.One)) != 0 {
		t.Error("empty point set should produce an empty row")
	}
}

func BenchmarkInterpolate(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		xs := make([]field.Element, n)
		for i := range xs {
			xs[i] = field.New(uint64(i + 1))
		}
		ys := field.MustRandomVec(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Interpolate(xs, ys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 64:
		return "n=64"
	case 256:
		return "n=256"
	case 1024:
		return "n=1024"
	}
	return "n=?"
}
