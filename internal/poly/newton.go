package poly

import (
	"errors"
	"fmt"

	"yosompc/internal/field"
)

// Newton-form interpolation and barycentric evaluation: the O(n²)
// replacements for the Lagrange-basis construction (which multiplies n
// degree-(n-1) polynomials together per call — O(n³) field operations).
// The Lagrange path survives as LagrangeBasis for callers that need the
// basis polynomials themselves and as the reference implementation the
// differential tests pin the fast paths against.

// interpolateNewton builds the unique interpolating polynomial through
// (xs[i], ys[i]) by divided differences in O(n²): one table sweep with a
// single batched inversion per level, then a Horner-style expansion of
// the Newton form into monomial coefficients. The xs must be pairwise
// distinct; a duplicate surfaces as a zero denominator and is reported as
// ErrDuplicatePoint.
func interpolateNewton(xs, ys []field.Element) (Polynomial, error) {
	n := len(xs)
	if n == 0 {
		return Polynomial{}, nil
	}
	// dd starts as the values and is overwritten level by level with the
	// divided differences dd[i] = f[x_{i-level}, ..., x_i].
	dd := field.CloneVec(ys)
	denoms := make([]field.Element, 0, n-1)
	for level := 1; level < n; level++ {
		denoms = denoms[:0]
		for i := n - 1; i >= level; i-- {
			denoms = append(denoms, xs[i].Sub(xs[i-level]))
		}
		invs, err := field.BatchInv(denoms)
		if err != nil {
			// A zero x_i - x_{i-level} means two interpolation points
			// coincide (the points need not be sorted, so the pair is not
			// identified here; checkDistinct pinpoints it for callers that
			// asked for the check).
			return Polynomial{}, fmt.Errorf("%w (found at divided-difference level %d)", ErrDuplicatePoint, level)
		}
		for j, i := 0, n-1; i >= level; j, i = j+1, i-1 {
			dd[i] = dd[i].Sub(dd[i-1]).Mul(invs[j])
		}
	}
	// Expand the Newton form f = dd[0] + (x-x_0)(dd[1] + (x-x_1)(...))
	// into monomial coefficients, highest term first.
	coeffs := make([]field.Element, 1, n)
	coeffs[0] = dd[n-1]
	for i := n - 2; i >= 0; i-- {
		// coeffs ← coeffs·(x - xs[i]) + dd[i].
		coeffs = append(coeffs, coeffs[len(coeffs)-1])
		for j := len(coeffs) - 2; j >= 1; j-- {
			coeffs[j] = coeffs[j-1].Sub(coeffs[j].Mul(xs[i]))
		}
		coeffs[0] = dd[i].Sub(coeffs[0].Mul(xs[i]))
	}
	return New(coeffs), nil
}

// InterpolateDistinct is Interpolate for callers whose point sets are
// distinct by construction (e.g. the packed-sharing geometry of slot
// points 0,-1,... and share indices 1..n): it skips the per-call
// distinctness map. A duplicate still fails closed with
// ErrDuplicatePoint — it is detected as a zero divided-difference
// denominator rather than up front.
func InterpolateDistinct(xs, ys []field.Element) (Polynomial, error) {
	if len(xs) != len(ys) {
		return Polynomial{}, fmt.Errorf("poly: interpolate: %d points vs %d values", len(xs), len(ys))
	}
	return interpolateNewton(xs, ys)
}

// BarycentricWeights returns the weights w_i = 1/Π_{j≠i}(x_i - x_j) of
// the point set xs — the precomputation behind O(n)-per-point Lagrange
// coefficient rows (EvalCoeffsFromWeights). O(n²) multiplications and a
// single batched inversion; duplicates are reported as ErrDuplicatePoint.
func BarycentricWeights(xs []field.Element) ([]field.Element, error) {
	denoms := make([]field.Element, len(xs))
	for i, xi := range xs {
		d := field.One
		for j, xj := range xs {
			if j != i {
				d = d.Mul(xi.Sub(xj))
			}
		}
		denoms[i] = d
	}
	ws, err := field.BatchInv(denoms)
	if err != nil {
		if errors.Is(err, field.ErrNotInvertible) {
			return nil, fmt.Errorf("%w (zero barycentric denominator)", ErrDuplicatePoint)
		}
		return nil, err
	}
	return ws, nil
}

// EvalCoeffsFromWeights returns the Lagrange coefficient row c with
// f(at) = Σ c_i·f(xs[i]) for any polynomial of degree < len(xs), given
// the precomputed barycentric weights of xs. O(n) per call with no
// inversions: c_i = w_i·Π_{j≠i}(at - x_j), assembled from prefix and
// suffix products of the differences. Exact even when `at` coincides
// with a point of xs (the row degenerates to the indicator of that
// point), so callers need no special casing.
func EvalCoeffsFromWeights(xs, ws []field.Element, at field.Element) []field.Element {
	n := len(xs)
	out := make([]field.Element, n)
	if n == 0 {
		return out
	}
	// prefix[i] = Π_{j<i}(at - x_j); suffix accumulates Π_{j>i}(at - x_j)
	// in the backward sweep, so out[i] = w_i·prefix[i]·suffix.
	prefix := make([]field.Element, n)
	acc := field.One
	for i := 0; i < n; i++ {
		prefix[i] = acc
		acc = acc.Mul(at.Sub(xs[i]))
	}
	suffix := field.One
	for i := n - 1; i >= 0; i-- {
		out[i] = ws[i].Mul(prefix[i]).Mul(suffix)
		suffix = suffix.Mul(at.Sub(xs[i]))
	}
	return out
}

// EvalRowsFromWeights returns one coefficient row per evaluation point in
// `ats` — the dense interpolation matrix from values on xs to values on
// ats. O(len(ats)·len(xs)) total; the workhorse the sharing domain uses
// to precompute its share-generation and reconstruction matrices.
func EvalRowsFromWeights(xs, ws []field.Element, ats []field.Element) [][]field.Element {
	rows := make([][]field.Element, len(ats))
	for i, at := range ats {
		rows[i] = EvalCoeffsFromWeights(xs, ws, at)
	}
	return rows
}
