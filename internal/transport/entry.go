package transport

import (
	"encoding"
	"fmt"
	"io"

	"yosompc/internal/wire"
)

// Entry is the wire form of one posting: the public board record carrying
// the real encoded payload bytes. Layout (big-endian, docs/WIRE.md):
//
//	u8 version | u32 seq | str8 from | str8 phase | str8 category |
//	trace context | u32 payload len | payload
//
// Size is derived — always len(Payload) — and is therefore measured, not
// claimed; it is kept as a field so auditors and the CLI read one number.
type Entry struct {
	Seq      int
	From     string
	Phase    string
	Category string
	// Trace is the cross-process correlation record: posting process,
	// open span, and the post/receive timestamps (see TraceContext).
	Trace TraceContext
	// Size is the measured payload length in bytes, len(Payload).
	Size int
	// Payload is the message's binary encoding.
	Payload []byte
}

// EncodedSize returns the exact encoded length in bytes.
func (e Entry) EncodedSize() int {
	return 1 + 4 + 1 + len(e.From) + 1 + len(e.Phase) + 1 + len(e.Category) +
		e.Trace.EncodedSize() + 4 + len(e.Payload)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (e Entry) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, e.EncodedSize())
	out = append(out, wire.Version)
	out = wire.AppendUint32(out, uint32(e.Seq))
	out = wire.AppendString8(out, e.From)
	out = wire.AppendString8(out, e.Phase)
	out = wire.AppendString8(out, e.Category)
	out = e.Trace.appendTo(out)
	return wire.AppendBytes32(out, e.Payload), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The encoding must
// consume the whole buffer.
func (e *Entry) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("%w: empty entry", wire.ErrMalformed)
	}
	if data[0] != wire.Version {
		return fmt.Errorf("%w: entry version %d, want %d", wire.ErrMalformed, data[0], wire.Version)
	}
	seq, rest, err := wire.Uint32(data[1:])
	if err != nil {
		return err
	}
	from, rest, err := wire.String8(rest)
	if err != nil {
		return err
	}
	phase, rest, err := wire.String8(rest)
	if err != nil {
		return err
	}
	cat, rest, err := wire.String8(rest)
	if err != nil {
		return err
	}
	var tc TraceContext
	rest, err = tc.consume(rest)
	if err != nil {
		return err
	}
	payload, rest, err := wire.Bytes32(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after entry", wire.ErrMalformed, len(rest))
	}
	*e = Entry{Seq: int(seq), From: from, Phase: phase, Category: cat, Trace: tc, Size: len(payload), Payload: payload}
	return nil
}

// WriteTo implements io.WriterTo.
func (e Entry) WriteTo(w io.Writer) (int64, error) {
	return wire.WriteBinary(w, e)
}

// ReadFrom implements io.ReaderFrom, reading exactly one entry frame. A
// clean EOF before the version byte returns io.EOF; an EOF mid-frame
// returns io.ErrUnexpectedEOF.
func (e *Entry) ReadFrom(r io.Reader) (int64, error) {
	var ver [1]byte
	n, err := io.ReadFull(r, ver[:])
	if err != nil {
		return int64(n), err
	}
	if ver[0] != wire.Version {
		return int64(n), fmt.Errorf("%w: entry version %d, want %d", wire.ErrMalformed, ver[0], wire.Version)
	}
	fail := func(m int, err error) (int64, error) {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return int64(n + m), err
	}
	seq, m, err := wire.ReadUint32(r)
	n += m
	if err != nil {
		return fail(0, err)
	}
	from, m, err := wire.ReadString8(r)
	n += m
	if err != nil {
		return fail(0, err)
	}
	phase, m, err := wire.ReadString8(r)
	n += m
	if err != nil {
		return fail(0, err)
	}
	cat, m, err := wire.ReadString8(r)
	n += m
	if err != nil {
		return fail(0, err)
	}
	var tc TraceContext
	m64, err := tc.ReadFrom(r)
	n += int(m64)
	if err != nil {
		return fail(0, err)
	}
	payload, m, err := wire.ReadBytes32(r)
	n += m
	if err != nil {
		return fail(0, err)
	}
	*e = Entry{Seq: int(seq), From: from, Phase: phase, Category: cat, Trace: tc, Size: len(payload), Payload: payload}
	return int64(n), nil
}

var (
	_ encoding.BinaryMarshaler   = Entry{}
	_ encoding.BinaryUnmarshaler = (*Entry)(nil)
	_ io.WriterTo                = Entry{}
	_ io.ReaderFrom              = (*Entry)(nil)
)
