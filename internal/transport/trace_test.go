package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"yosompc/internal/wire"
)

// TestTraceContextGoldenWire pins the byte-exact context layout
// (docs/WIRE.md): str8 proc | u64 span | u64 post_us | u64 recv_us. The
// context carries no version byte — the enclosing entry or post frame
// versions it.
func TestTraceContextGoldenWire(t *testing.T) {
	tc := TraceContext{Proc: "p1", Span: 9, PostUS: 1000, RecvUS: 1500}
	golden := []byte{
		0x02, 'p', '1', // proc
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x09, // span
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0xe8, // post_us
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x05, 0xdc, // recv_us
	}
	enc, err := tc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, golden) {
		t.Errorf("encoded context:\n got %x\nwant %x", enc, golden)
	}
	if len(enc) != tc.EncodedSize() {
		t.Errorf("EncodedSize = %d, encoded %d bytes", tc.EncodedSize(), len(enc))
	}
	var dec TraceContext
	if err := dec.UnmarshalBinary(golden); err != nil {
		t.Fatal(err)
	}
	if dec != tc {
		t.Errorf("decoded = %+v, want %+v", dec, tc)
	}
}

func TestTraceContextStreamRoundTrip(t *testing.T) {
	in := []TraceContext{
		{}, // zero context is valid: unattributed
		{Proc: "client-a", Span: 42, PostUS: 1722000000000000, RecvUS: 1722000000000123},
		{Proc: "", Span: 0, PostUS: -5, RecvUS: 0}, // negative survives the u64 cast
	}
	var buf bytes.Buffer
	for _, tc := range in {
		if _, err := tc.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range in {
		var got TraceContext
		if _, err := got.ReadFrom(&buf); err != nil {
			t.Fatalf("context %d: %v", i, err)
		}
		if got != want {
			t.Errorf("context %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestTraceContextDecodeRejectsMalformed(t *testing.T) {
	good, _ := TraceContext{Proc: "x", Span: 1, PostUS: 2, RecvUS: 3}.MarshalBinary()
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte{}, good...), 0x00),
	}
	for name, data := range cases {
		var tc TraceContext
		if err := tc.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		} else if name == "trailing" && !errors.Is(err, wire.ErrMalformed) {
			t.Errorf("%s: err = %v, not wire.ErrMalformed", name, err)
		}
	}
	// Mid-field EOF on a stream is io.ErrUnexpectedEOF, never a silent stop.
	var tc TraceContext
	if _, err := tc.ReadFrom(bytes.NewReader(good[:len(good)-1])); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-field stream EOF = %v, want io.ErrUnexpectedEOF", err)
	}
}

// FuzzTraceContextRoundTrip feeds arbitrary bytes through the TraceContext
// decoder: it must never panic, and anything it accepts must re-encode to
// the exact same bytes (canonical encoding).
func FuzzTraceContextRoundTrip(f *testing.F) {
	seed, _ := TraceContext{Proc: "p", Span: 7, PostUS: 11, RecvUS: 13}.MarshalBinary()
	f.Add(seed)
	zero, _ := TraceContext{}.MarshalBinary()
	f.Add(zero)
	f.Add([]byte{})
	f.Add([]byte{0x01, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tc TraceContext
		if err := tc.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := tc.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encoding accepted context: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not byte-identical:\n in %x\nout %x", data, re)
		}
	})
}
