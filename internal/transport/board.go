// Package transport provides the broadcast bulletin board of the YOSO
// execution: an append-only sequence of postings, each attributed to a
// role, a phase and a category, with every byte metered.
//
// In YOSO, point-to-point messages to future (anonymous) roles are posted
// as encrypted envelopes on the same board — one-to-one costs the same as
// one-to-all (paper §3.3). The board therefore carries both broadcast
// values and addressed ciphertexts uniformly.
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"yosompc/internal/comm"
	"yosompc/internal/telemetry"
)

// Posting is one board entry.
type Posting struct {
	// Seq is the global sequence number, assigned by the board.
	Seq int
	// From identifies the posting role (free-form, e.g. "off1/3").
	From string
	// Phase and Category attribute the bytes for reporting.
	Phase    comm.Phase
	Category comm.Category
	// Trace is the correlation record stamped at Post time: the board's
	// process name and current span (SetProc / SetTraceSpan) plus the
	// posting timestamp. For the in-process board the post and receive
	// clocks coincide, so PostUS == RecvUS.
	Trace TraceContext
	// Size is the metered wire size in bytes — always len(Bytes).
	Size int
	// Bytes is the message's binary encoding, the authoritative wire
	// artifact (docs/WIRE.md). Consumers must treat it as immutable.
	Bytes []byte
	// Payload is the in-process representation of the posted message.
	// Consumers must treat it as immutable.
	Payload any
}

// Board is the append-only bulletin board. It is safe for concurrent use.
type Board struct {
	mu        sync.Mutex
	postings  []Posting
	meter     *comm.Meter
	observers []func(Posting)

	// Trace-context state stamped onto postings. proc is set once before
	// traffic; span follows the protocol's open phase/step span.
	proc string
	span atomic.Uint64

	// Telemetry instruments; nil (no-op, zero cost) until Instrument is
	// called.
	postCount *telemetry.Counter   // board.posts
	postBytes *telemetry.Histogram // board.post_bytes
}

// Instrument registers the in-process board's posting metrics on reg
// (board.posts counter, board.post_bytes size histogram). Call it before
// the board takes traffic; a nil registry is a no-op.
func (b *Board) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	b.postCount = reg.Counter("board.posts")
	b.postBytes = reg.Histogram("board.post_bytes", telemetry.SizeBuckets)
}

// NewBoard creates a board writing byte counts to meter. A nil meter
// creates a private one.
func NewBoard(meter *comm.Meter) *Board {
	if meter == nil {
		meter = &comm.Meter{}
	}
	return &Board{meter: meter}
}

// SetProc names the OS process this board belongs to; postings (and any
// mirror forwarding them) carry it in their trace context so a shared
// boardd can tell concurrent runs apart. Set it before the board takes
// traffic.
func (b *Board) SetProc(proc string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.proc = proc
}

// SetTraceSpan records the telemetry span ID subsequent postings are
// attributed to — the protocol driver stamps the open phase or committee
// step span here. Zero clears the attribution.
func (b *Board) SetTraceSpan(id uint64) { b.span.Store(id) }

// Post appends a posting carrying the message's binary encoding and meters
// the measured encoded length — the posting's Size is len(wire) by
// construction, never a caller claim. The caller must not modify wire
// after posting. payload is the optional in-process form consumed by the
// protocol drivers. Post returns the assigned sequence number.
func (b *Board) Post(from string, phase comm.Phase, cat comm.Category, wire []byte, payload any) int {
	size := len(wire)
	b.meter.Add(phase, cat, size)
	b.postCount.Inc()
	b.postBytes.Observe(float64(size))
	tc := TraceContext{Span: b.span.Load()}
	b.mu.Lock()
	// Stamped under the append lock so timestamps are monotone with Seq;
	// the in-process board's post and receive clocks coincide.
	now := time.Now().UnixMicro()
	tc.PostUS, tc.RecvUS = now, now
	tc.Proc = b.proc
	seq := len(b.postings)
	p := Posting{Seq: seq, From: from, Phase: phase, Category: cat, Trace: tc, Size: size, Bytes: wire, Payload: payload}
	b.postings = append(b.postings, p)
	observers := b.observers
	b.mu.Unlock()
	for _, fn := range observers {
		fn(p)
	}
	return seq
}

// Observe registers a callback invoked synchronously after every posting —
// the hook mirrors and monitors attach to. Callbacks must be fast and must
// not post back to the board.
func (b *Board) Observe(fn func(Posting)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.observers = append(b.observers, fn)
}

// Len returns the number of postings.
func (b *Board) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.postings)
}

// Get returns posting seq.
func (b *Board) Get(seq int) (Posting, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq < 0 || seq >= len(b.postings) {
		return Posting{}, fmt.Errorf("transport: no posting %d (board has %d)", seq, len(b.postings))
	}
	return b.postings[seq], nil
}

// All returns a snapshot of all postings.
func (b *Board) All() []Posting {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Posting, len(b.postings))
	copy(out, b.postings)
	return out
}

// Meter returns the board's meter.
func (b *Board) Meter() *comm.Meter { return b.meter }

// Report returns the current communication report.
func (b *Board) Report() comm.Report { return b.meter.Report() }
