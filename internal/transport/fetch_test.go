package transport

import (
	"testing"
	"time"

	"yosompc/internal/comm"
)

// The server stamps every accepted post with its own receive clock — the
// shared timeline trace merging aligns per-process clocks against — and
// preserves the poster's process/span/send-time attribution.
func TestRemotePostStampsReceiveTime(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := time.Now().UnixMicro()
	tc := TraceContext{Proc: "proc-a", Span: 42, PostUS: before, RecvUS: 777}
	if _, err := c.PostCtx("off1/1", comm.PhaseOffline, comm.CatBeaver, []byte{1, 2}, tc); err != nil {
		t.Fatal(err)
	}
	after := time.Now().UnixMicro()
	es := s.Entries(0)
	if len(es) != 1 {
		t.Fatalf("entries = %d, want 1", len(es))
	}
	got := es[0].Trace
	if got.Proc != "proc-a" || got.Span != 42 || got.PostUS != before {
		t.Errorf("poster attribution not preserved: %+v", got)
	}
	// The client-claimed RecvUS (777) must be overwritten by the server.
	if got.RecvUS < before || got.RecvUS > after {
		t.Errorf("RecvUS = %d, want a server stamp in [%d, %d]", got.RecvUS, before, after)
	}
}

// Fetch returns a one-shot snapshot over the dump opcode, trace stamps
// included, and respects `since`.
func TestFetchSnapshot(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		tc := TraceContext{Proc: "p", PostUS: time.Now().UnixMicro()}
		if _, err := c.PostCtx("onC1/1", comm.PhaseOnline, comm.CatMu, []byte{byte(i)}, tc); err != nil {
			t.Fatal(err)
		}
	}
	all, err := Fetch(s.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].Seq != 0 || all[2].Seq != 2 {
		t.Fatalf("full fetch = %+v", all)
	}
	for i, e := range all {
		if e.Trace.Proc != "p" || e.Trace.RecvUS == 0 {
			t.Errorf("entry %d lost its trace stamp: %+v", i, e.Trace)
		}
	}
	later, err := Fetch(s.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(later) != 1 || later[0].Seq != 2 {
		t.Fatalf("fetch since 2 = %+v", later)
	}
	if empty, err := Fetch(s.Addr(), 99); err != nil || len(empty) != 0 {
		t.Fatalf("fetch past end = %v entries, err %v", len(empty), err)
	}
}

// Server.Observe delivers every accepted post to in-server monitors.
func TestServerObserve(t *testing.T) {
	s := startServer(t)
	seen := make(chan Entry, 4)
	s.Observe(func(e Entry) { seen <- e })
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Post("offR/2", comm.PhaseOffline, comm.CatLambda, []byte{7}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-seen:
		if e.From != "offR/2" || e.Seq != 0 || e.Trace.RecvUS == 0 {
			t.Errorf("observed entry = %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("observer not called")
	}
}

// The in-process board stamps postings with its configured process name,
// the current trace span, and a post==recv timestamp pair.
func TestBoardTraceStamping(t *testing.T) {
	b := NewBoard(nil)
	b.SetProc("local-run")
	b.SetTraceSpan(11)
	before := time.Now().UnixMicro()
	b.Post("offB1/1", comm.PhaseOffline, comm.CatBeaver, []byte{1}, nil)
	b.SetTraceSpan(12)
	b.Post("offB1/2", comm.PhaseOffline, comm.CatBeaver, []byte{2}, nil)
	after := time.Now().UnixMicro()
	ps := b.All()
	if ps[0].Trace.Proc != "local-run" || ps[0].Trace.Span != 11 || ps[1].Trace.Span != 12 {
		t.Errorf("stamped contexts = %+v, %+v", ps[0].Trace, ps[1].Trace)
	}
	for i, p := range ps {
		if p.Trace.PostUS != p.Trace.RecvUS {
			t.Errorf("posting %d: in-process post/recv clocks differ: %+v", i, p.Trace)
		}
		if p.Trace.PostUS < before || p.Trace.PostUS > after {
			t.Errorf("posting %d: stamp %d outside [%d, %d]", i, p.Trace.PostUS, before, after)
		}
	}
}
