package transport

import (
	"bufio"
	"net"
	"runtime"
	"testing"
	"time"

	"yosompc/internal/comm"
	"yosompc/internal/telemetry"
)

// Regression: the Tail reader goroutine used to block forever on `out <- e`
// when the consumer stopped draining, leaking the goroutine and pinning the
// TCP connection even after the closer was called.
func TestTailStopUnblocksReader(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// More than the Tail channel capacity (64), so the reader goroutine
	// ends up blocked mid-send once the consumer stops draining.
	const posts = 100
	for i := 0; i < posts; i++ {
		if _, err := c.Post("r", comm.PhaseOnline, comm.CatMu, make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	base := runtime.NumGoroutine()
	entries, stop, err := Tail(s.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the reader to fill the channel; by then it is blocked
	// trying to deliver entry 65 to a consumer that will never read.
	deadline := time.Now().Add(5 * time.Second)
	for len(entries) < cap(entries) {
		if time.Now().After(deadline) {
			t.Fatalf("tail channel never filled: %d/%d", len(entries), cap(entries))
		}
		time.Sleep(time.Millisecond)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	// The reader goroutine (and the server-side handler it was connected
	// to) must exit even though nobody drained the channel.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after stop: %d > %d before Tail", runtime.NumGoroutine(), base)
}

// Regression: Server.post used to silently drop entries for tailers whose
// channel was full; a slow consumer would see a gap in the sequence and
// never learn about the lost postings. The board must instead re-sync the
// subscription from the entry log: every Seq exactly once, in order.
func TestSlowTailerSeesEverySeq(t *testing.T) {
	// A synchronous pipe (no socket buffering) makes the tail loop block
	// on its first write, so posts deterministically overflow the
	// subscription channel and exercise the gapped/re-sync path.
	s := &Server{meter: &comm.Meter{}, subs: map[*subscriber]struct{}{}}
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.tail(srv, bufio.NewWriter(srv), 0)
	}()

	// Wait until the subscription is registered, so the posts below go
	// through the live channel (and overflow it) rather than being picked
	// up as backlog — backlog delivery never gaps.
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.subs)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("tail subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// Overflow the subscription channel (capacity tailBuffer) while the
	// consumer reads nothing: the excess posts must mark the sub gapped.
	const posts = 3 * tailBuffer
	for i := 0; i < posts; i++ {
		if _, err := s.post(postRequest{from: "r", phase: "online", category: "mu", claimed: 1, payload: []byte{0}}); err != nil {
			t.Fatal(err)
		}
	}

	br := bufio.NewReader(cli)
	for want := 0; want < posts; want++ {
		var e Entry
		if _, err := e.ReadFrom(br); err != nil {
			t.Fatalf("decode entry %d: %v", want, err)
		}
		if e.Seq != want {
			t.Fatalf("entry %d has seq %d (gap or duplicate)", want, e.Seq)
		}
	}

	// The subscription must still be live for later posts.
	if _, err := s.post(postRequest{from: "r", phase: "online", category: "mu", claimed: 1, payload: []byte{0}}); err != nil {
		t.Fatal(err)
	}
	var e Entry
	if _, err := e.ReadFrom(br); err != nil {
		t.Fatal(err)
	}
	if e.Seq != posts {
		t.Fatalf("post after drain has seq %d, want %d", e.Seq, posts)
	}

	// The slow tailer must be visible in the transport metrics: the
	// overflow forced at least one gapped re-sync, the lag gauge records
	// how much log the re-sync replayed, and every post was counted.
	snap := reg.Snapshot()
	if snap.Counters["transport.tail_resyncs"] == 0 {
		t.Error("transport.tail_resyncs never incremented despite overflow")
	}
	if snap.Gauges["transport.tail_lag_max"] <= 0 {
		t.Errorf("transport.tail_lag_max = %d, want > 0", snap.Gauges["transport.tail_lag_max"])
	}
	if got := snap.Counters["transport.posts"]; got != posts+1 {
		t.Errorf("transport.posts = %d, want %d", got, posts+1)
	}
	if got := snap.Histograms["transport.post_bytes"].Count; got != posts+1 {
		t.Errorf("transport.post_bytes count = %d, want %d", got, posts+1)
	}
	if snap.Histograms["transport.tail_write_ns"].Count == 0 {
		t.Error("transport.tail_write_ns histogram empty")
	}

	cli.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tail loop did not exit after connection close")
	}
}

// A tailer that goes away without unsubscribing must be reaped by the
// connection watcher — and the reap must be observable via the
// transport.conn_reaps counter.
func TestDeadTailerReapCounted(t *testing.T) {
	s := startServer(t)
	reg := telemetry.NewRegistry()
	s.Instrument(reg)

	// Open a tail subscription with no posts pending: the tail loop parks
	// on its subscription channel, so only the conn watcher can notice the
	// client dying.
	entries, stop, err := Tail(s.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the subscription is registered server-side.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.subs)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tail subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}

	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if reg.Snapshot().Counters["transport.conn_reaps"] == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := reg.Snapshot().Counters["transport.conn_reaps"]; got != 1 {
		t.Fatalf("transport.conn_reaps = %d, want 1", got)
	}
	// Drain whatever the closed channel held.
	for range entries {
	}
}
