package transport

import (
	"encoding"
	"fmt"
	"io"

	"yosompc/internal/wire"
)

// Manifest is the expected-speaker record a committee former posts under
// comm.PhaseSystem / comm.CatManifest before the committee's members speak:
// the committee name, the phase its speeches belong to, how many speakers
// are expected, and the reconstruction quorum. Because roles are named
// "committee/index" with index 1..N, the speaker set is fully derived from
// the manifest — the monitor needs no in-process hook to know who is
// missing. Layout (big-endian, docs/WIRE.md):
//
//	u8 version | str8 committee | str8 phase | u32 n | u32 quorum
type Manifest struct {
	// Committee is the committee name ("offB1", "on-layer2", ...).
	Committee string
	// Phase is the protocol phase the committee's speeches are metered
	// under ("setup", "offline", "online").
	Phase string
	// N is the number of expected speakers; member i posts as
	// "Committee/i" for i in 1..N.
	N int
	// Quorum is the minimum number of posted speakers reconstruction
	// needs; N−Quorum is the tolerated fail-stop count (§5.4's 2(k−1)
	// margin in the packed protocol, t+1 in the baseline).
	Quorum int
}

// Speaker returns the role name of member i (1-based), the From string its
// board posts carry.
func (m Manifest) Speaker(i int) string {
	return fmt.Sprintf("%s/%d", m.Committee, i)
}

// EncodedSize returns the exact encoded length in bytes.
func (m Manifest) EncodedSize() int {
	return 1 + 1 + len(m.Committee) + 1 + len(m.Phase) + 4 + 4
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m Manifest) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, m.EncodedSize())
	out = append(out, wire.Version)
	out = wire.AppendString8(out, m.Committee)
	out = wire.AppendString8(out, m.Phase)
	out = wire.AppendUint32(out, uint32(m.N))
	return wire.AppendUint32(out, uint32(m.Quorum)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The encoding must
// consume the whole buffer.
func (m *Manifest) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("%w: empty manifest", wire.ErrMalformed)
	}
	if data[0] != wire.Version {
		return fmt.Errorf("%w: manifest version %d, want %d", wire.ErrMalformed, data[0], wire.Version)
	}
	committee, rest, err := wire.String8(data[1:])
	if err != nil {
		return err
	}
	phase, rest, err := wire.String8(rest)
	if err != nil {
		return err
	}
	n, rest, err := wire.Uint32(rest)
	if err != nil {
		return err
	}
	quorum, rest, err := wire.Uint32(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after manifest", wire.ErrMalformed, len(rest))
	}
	*m = Manifest{Committee: committee, Phase: phase, N: int(n), Quorum: int(quorum)}
	return nil
}

// WriteTo implements io.WriterTo.
func (m Manifest) WriteTo(w io.Writer) (int64, error) {
	return wire.WriteBinary(w, m)
}

// ReadFrom implements io.ReaderFrom, reading exactly one manifest frame. A
// clean EOF before the version byte returns io.EOF; an EOF mid-frame
// returns io.ErrUnexpectedEOF.
func (m *Manifest) ReadFrom(r io.Reader) (int64, error) {
	var ver [1]byte
	n, err := io.ReadFull(r, ver[:])
	if err != nil {
		return int64(n), err
	}
	if ver[0] != wire.Version {
		return int64(n), fmt.Errorf("%w: manifest version %d, want %d", wire.ErrMalformed, ver[0], wire.Version)
	}
	fail := func(err error) (int64, error) {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return int64(n), err
	}
	committee, mm, err := wire.ReadString8(r)
	n += mm
	if err != nil {
		return fail(err)
	}
	phase, mm, err := wire.ReadString8(r)
	n += mm
	if err != nil {
		return fail(err)
	}
	cn, mm, err := wire.ReadUint32(r)
	n += mm
	if err != nil {
		return fail(err)
	}
	quorum, mm, err := wire.ReadUint32(r)
	n += mm
	if err != nil {
		return fail(err)
	}
	*m = Manifest{Committee: committee, Phase: phase, N: int(cn), Quorum: int(quorum)}
	return int64(n), nil
}

var (
	_ encoding.BinaryMarshaler   = Manifest{}
	_ encoding.BinaryUnmarshaler = (*Manifest)(nil)
	_ io.WriterTo                = Manifest{}
	_ io.ReaderFrom              = (*Manifest)(nil)
)
