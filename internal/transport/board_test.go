package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"yosompc/internal/comm"
)

func TestBoardAppendOnly(t *testing.T) {
	b := NewBoard(nil)
	for i := 0; i < 10; i++ {
		seq := b.Post(fmt.Sprintf("r%d", i), comm.PhaseOffline, comm.CatLambda, make([]byte, i), i)
		if seq != i {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := 0; i < 10; i++ {
		p, err := b.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if p.Payload != i || p.Size != i || len(p.Bytes) != i {
			t.Errorf("posting %d = %+v", i, p)
		}
	}
}

func TestBoardGetOutOfRange(t *testing.T) {
	b := NewBoard(nil)
	if _, err := b.Get(0); err == nil {
		t.Error("Get on empty board succeeded")
	}
	if _, err := b.Get(-1); err == nil {
		t.Error("Get(-1) succeeded")
	}
}

func TestBoardSharedMeter(t *testing.T) {
	m := &comm.Meter{}
	b1 := NewBoard(m)
	b2 := NewBoard(m)
	b1.Post("a", comm.PhaseOnline, comm.CatMu, make([]byte, 10), nil)
	b2.Post("b", comm.PhaseOnline, comm.CatMu, make([]byte, 20), nil)
	if m.Report().Total != 30 {
		t.Errorf("shared meter total = %d, want 30", m.Report().Total)
	}
	if b1.Meter() != m {
		t.Error("Meter() does not return the shared meter")
	}
}

func TestBoardConcurrentPosts(t *testing.T) {
	b := NewBoard(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Post(fmt.Sprintf("g%d", g), comm.PhaseOffline, comm.CatBeaver, []byte{0}, nil)
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 800 {
		t.Errorf("Len = %d, want 800", b.Len())
	}
	// Sequence numbers must be dense and unique.
	seen := map[int]bool{}
	for _, p := range b.All() {
		if seen[p.Seq] {
			t.Fatalf("duplicate seq %d", p.Seq)
		}
		seen[p.Seq] = true
	}
	if b.Report().Postings != 800 {
		t.Errorf("postings = %d", b.Report().Postings)
	}
}

func TestBoardAllIsSnapshot(t *testing.T) {
	b := NewBoard(nil)
	b.Post("a", comm.PhaseSetup, comm.CatCRS, []byte{1}, "x")
	all := b.All()
	b.Post("b", comm.PhaseSetup, comm.CatCRS, []byte{2}, "y")
	if len(all) != 1 {
		t.Error("All() snapshot grew")
	}
}

// The board's Size is measured from the posted bytes, never claimed: a nil
// payload encoding meters zero, and the stored bytes round-trip unchanged.
func TestBoardSizeIsMeasured(t *testing.T) {
	b := NewBoard(nil)
	b.Post("a", comm.PhaseSetup, comm.CatCRS, nil, "empty")
	wire := []byte{0xde, 0xad, 0xbe, 0xef}
	b.Post("b", comm.PhaseOnline, comm.CatMu, wire, "four")
	p0, _ := b.Get(0)
	if p0.Size != 0 || len(p0.Bytes) != 0 {
		t.Errorf("nil-encoding post: size %d bytes %d, want 0/0", p0.Size, len(p0.Bytes))
	}
	p1, _ := b.Get(1)
	if p1.Size != 4 || !bytes.Equal(p1.Bytes, wire) {
		t.Errorf("post bytes = %x size %d, want %x size 4", p1.Bytes, p1.Size, wire)
	}
	if got := b.Report().Total; got != 4 {
		t.Errorf("metered total = %d, want 4", got)
	}
}
