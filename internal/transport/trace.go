package transport

import (
	"encoding"
	"fmt"
	"io"

	"yosompc/internal/wire"
)

// TraceContext is the compact correlation record every board entry carries:
// which OS process posted it, which telemetry span was open at the poster,
// and the post/receive timestamps that let a trace merge align per-process
// clocks onto the board's shared timeline. Layout (big-endian,
// docs/WIRE.md):
//
//	str8 proc | u64 span | u64 post_us | u64 recv_us
//
// The context is versioned by the enclosing frame (entry or post request),
// so it carries no version byte of its own. Timestamps are Unix
// microseconds; PostUS is stamped by the poster's clock, RecvUS by the
// receiving board's clock (for the in-process board the two clocks are the
// same). A zero context is valid and means "unattributed".
type TraceContext struct {
	// Proc names the posting OS process ("" when unattributed). Two
	// protocol runs mirroring into one boardd are disambiguated by it.
	Proc string
	// Span is the poster's open telemetry span ID (0 when tracing is off).
	Span uint64
	// PostUS is the poster-clock Unix-microsecond send time (0 if unset).
	PostUS int64
	// RecvUS is the board-clock Unix-microsecond receive time (0 if
	// unset). The difference RecvUS−PostUS across many entries estimates
	// the poster's clock offset to the board.
	RecvUS int64
}

// EncodedSize returns the exact encoded length in bytes.
func (tc TraceContext) EncodedSize() int {
	return 1 + len(tc.Proc) + 8 + 8 + 8
}

// appendTo appends the context's encoding — the shared body of
// MarshalBinary and the enclosing entry/post-frame encoders.
func (tc TraceContext) appendTo(dst []byte) []byte {
	dst = wire.AppendString8(dst, tc.Proc)
	dst = wire.AppendUint64(dst, tc.Span)
	dst = wire.AppendUint64(dst, uint64(tc.PostUS))
	return wire.AppendUint64(dst, uint64(tc.RecvUS))
}

// consume decodes one context from the front of data and returns the
// remainder — the shared body of UnmarshalBinary and the enclosing
// decoders.
func (tc *TraceContext) consume(data []byte) ([]byte, error) {
	proc, rest, err := wire.String8(data)
	if err != nil {
		return nil, fmt.Errorf("%w: trace proc: %w", wire.ErrMalformed, err)
	}
	span, rest, err := wire.Uint64(rest)
	if err != nil {
		return nil, err
	}
	post, rest, err := wire.Uint64(rest)
	if err != nil {
		return nil, err
	}
	recv, rest, err := wire.Uint64(rest)
	if err != nil {
		return nil, err
	}
	*tc = TraceContext{Proc: proc, Span: span, PostUS: int64(post), RecvUS: int64(recv)}
	return rest, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (tc TraceContext) MarshalBinary() ([]byte, error) {
	return tc.appendTo(make([]byte, 0, tc.EncodedSize())), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The encoding must
// consume the whole buffer.
func (tc *TraceContext) UnmarshalBinary(data []byte) error {
	rest, err := tc.consume(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after trace context", wire.ErrMalformed, len(rest))
	}
	return nil
}

// WriteTo implements io.WriterTo.
func (tc TraceContext) WriteTo(w io.Writer) (int64, error) {
	return wire.WriteBinary(w, tc)
}

// ReadFrom implements io.ReaderFrom, reading exactly one context. A clean
// EOF before the first byte returns io.EOF; an EOF mid-field returns
// io.ErrUnexpectedEOF.
func (tc *TraceContext) ReadFrom(r io.Reader) (int64, error) {
	proc, n, err := wire.ReadString8(r)
	if err != nil {
		return int64(n), err
	}
	fail := func(err error) (int64, error) {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return int64(n), err
	}
	span, m, err := wire.ReadUint64(r)
	n += m
	if err != nil {
		return fail(err)
	}
	post, m, err := wire.ReadUint64(r)
	n += m
	if err != nil {
		return fail(err)
	}
	recv, m, err := wire.ReadUint64(r)
	n += m
	if err != nil {
		return fail(err)
	}
	*tc = TraceContext{Proc: proc, Span: span, PostUS: int64(post), RecvUS: int64(recv)}
	return int64(n), nil
}

var (
	_ encoding.BinaryMarshaler   = TraceContext{}
	_ encoding.BinaryUnmarshaler = (*TraceContext)(nil)
	_ io.WriterTo                = TraceContext{}
	_ io.ReaderFrom              = (*TraceContext)(nil)
)
