package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"yosompc/internal/wire"
)

// TestEntryGoldenWire pins the committed byte-exact frame layout
// (docs/WIRE.md): u8 version | u32 seq | str8 from | str8 phase |
// str8 category | trace context | u32 payload len | payload. Changing any
// of these bytes is a wire-format break and must bump wire.Version (v2
// added the trace-context field).
func TestEntryGoldenWire(t *testing.T) {
	e := Entry{
		Seq:      7,
		From:     "off1/3",
		Phase:    "offline",
		Category: "beaver",
		Trace:    TraceContext{Proc: "p1", Span: 9, PostUS: 1000, RecvUS: 1500},
		Size:     4,
		Payload:  []byte{0xde, 0xad, 0xbe, 0xef},
	}
	golden := []byte{
		0x02,                   // version
		0x00, 0x00, 0x00, 0x07, // seq
		0x06, 'o', 'f', 'f', '1', '/', '3', // from
		0x07, 'o', 'f', 'f', 'l', 'i', 'n', 'e', // phase
		0x06, 'b', 'e', 'a', 'v', 'e', 'r', // category
		0x02, 'p', '1', // trace: proc
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x09, // trace: span
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0xe8, // trace: post_us
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x05, 0xdc, // trace: recv_us
		0x00, 0x00, 0x00, 0x04, // payload length
		0xde, 0xad, 0xbe, 0xef, // payload
	}
	enc, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, golden) {
		t.Errorf("encoded frame:\n got %x\nwant %x", enc, golden)
	}
	if len(enc) != e.EncodedSize() {
		t.Errorf("EncodedSize = %d, encoded %d bytes", e.EncodedSize(), len(enc))
	}
	var dec Entry
	if err := dec.UnmarshalBinary(golden); err != nil {
		t.Fatal(err)
	}
	if dec.Seq != 7 || dec.From != "off1/3" || dec.Phase != "offline" ||
		dec.Category != "beaver" || dec.Trace != e.Trace ||
		dec.Size != 4 || !bytes.Equal(dec.Payload, e.Payload) {
		t.Errorf("decoded = %+v", dec)
	}
}

func TestEntryStreamRoundTrip(t *testing.T) {
	in := []Entry{
		{Seq: 0, From: "a", Phase: "setup", Category: "crs", Size: 0, Payload: nil},
		{Seq: 1, From: "off1/1", Phase: "offline", Category: "lambda",
			Trace: TraceContext{Proc: "proc-a", Span: 17, PostUS: 12345, RecvUS: 12399},
			Size:  3, Payload: []byte{1, 2, 3}},
		{Seq: 2, From: "on/4", Phase: "online", Category: "mu", Size: 1, Payload: []byte{9}},
	}
	var buf bytes.Buffer
	for _, e := range in {
		if _, err := e.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range in {
		var got Entry
		if _, err := got.ReadFrom(&buf); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.From != want.From || got.Trace != want.Trace ||
			got.Size != want.Size || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("entry %d = %+v, want %+v", i, got, want)
		}
	}
	var extra Entry
	if _, err := extra.ReadFrom(&buf); err != io.EOF {
		t.Errorf("read past stream end = %v, want io.EOF", err)
	}
}

func TestEntryDecodeRejectsMalformed(t *testing.T) {
	good, _ := Entry{Seq: 1, From: "r", Phase: "online", Category: "mu", Size: 2, Payload: []byte{1, 2}}.MarshalBinary()
	cases := map[string][]byte{
		"empty":         {},
		"wrong version": append([]byte{0x7f}, good[1:]...),
		"truncated":     good[:len(good)-1],
		"trailing":      append(append([]byte{}, good...), 0x00),
	}
	for name, data := range cases {
		var e Entry
		if err := e.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		} else if name != "truncated" && !errors.Is(err, wire.ErrMalformed) {
			t.Errorf("%s: err = %v, not wire.ErrMalformed", name, err)
		}
	}
	// Mid-frame EOF on a stream is io.ErrUnexpectedEOF, never a silent stop.
	var e Entry
	if _, err := e.ReadFrom(bytes.NewReader(good[:len(good)-1])); err != io.ErrUnexpectedEOF {
		t.Errorf("mid-frame stream EOF = %v, want io.ErrUnexpectedEOF", err)
	}
}

// FuzzWireRoundTrip feeds arbitrary bytes through the Entry decoder: it
// must never panic, and anything it accepts must re-encode to the exact
// same bytes (a canonical encoding, so measured sizes are reproducible).
func FuzzWireRoundTrip(f *testing.F) {
	seed, _ := Entry{Seq: 3, From: "off1/2", Phase: "offline", Category: "reshare",
		Trace: TraceContext{Proc: "p", Span: 1, PostUS: 2, RecvUS: 3},
		Size:  5, Payload: []byte{1, 2, 3, 4, 5}}.MarshalBinary()
	f.Add(seed)
	empty, _ := Entry{From: "", Phase: "", Category: ""}.MarshalBinary()
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte{0x02})
	f.Add([]byte{0x02, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var e Entry
		if err := e.UnmarshalBinary(data); err != nil {
			return
		}
		if e.Size != len(e.Payload) {
			t.Fatalf("decoded Size %d != len(Payload) %d", e.Size, len(e.Payload))
		}
		re, err := e.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encoding accepted entry: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not byte-identical:\n in %x\nout %x", data, re)
		}
	})
}
