package transport

import (
	"sync"
	"testing"
	"time"

	"yosompc/internal/comm"
)

// Hammer the server with concurrent posters and tailers, then Close while
// traffic is still in flight. Run with -race; the invariants checked are
// "no deadlock, no panic, tailers observe a prefix of the log in order".
func TestServerConcurrentPostTailClose(t *testing.T) {
	ln := startServer(t)
	const posters, each, tailers = 4, 100, 3
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(ln.Addr())
			if err != nil {
				return // server may already be closing
			}
			defer c.Close()
			for i := 0; i < each; i++ {
				if _, err := c.Post("w", comm.PhaseOffline, comm.CatLambda, []byte{0}); err != nil {
					return
				}
			}
		}()
	}
	for i := 0; i < tailers; i++ {
		wg.Add(1)
		go func(slow bool) {
			defer wg.Done()
			entries, stop, err := Tail(ln.Addr(), 0)
			if err != nil {
				return
			}
			defer stop()
			last := -1
			for e := range entries {
				if e.Seq != last+1 {
					t.Errorf("tailer saw seq %d after %d", e.Seq, last)
					return
				}
				last = e.Seq
				if slow {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(i == 0)
	}
	// Let traffic build up, then tear the server down underneath it all.
	time.Sleep(20 * time.Millisecond)
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent post/tail/Close deadlocked")
	}
}

// The in-process Board under concurrent Post, Observe, Len, Get and All.
func TestBoardConcurrentUse(t *testing.T) {
	board := NewBoard(nil)
	const posters, each = 8, 200
	var observed sync.Map
	board.Observe(func(p Posting) { observed.Store(p.Seq, p.From) })
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				board.Post("w", comm.PhaseOnline, comm.CatMu, []byte{0, 1}, nil)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for board.Len() < posters*each {
			all := board.All()
			for i, p := range all {
				if p.Seq != i {
					t.Errorf("snapshot posting %d has seq %d", i, p.Seq)
					return
				}
			}
			if len(all) > 0 {
				if _, err := board.Get(len(all) - 1); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if board.Len() != posters*each {
		t.Fatalf("len = %d, want %d", board.Len(), posters*each)
	}
	if got := board.Report().Total; got != 2*posters*each {
		t.Fatalf("total = %d, want %d", got, 2*posters*each)
	}
	count := 0
	observed.Range(func(_, _ any) bool { count++; return true })
	if count != posters*each {
		t.Fatalf("observer saw %d postings, want %d", count, posters*each)
	}
}
